// Package repro's benchmarks regenerate every table and figure of the paper
// at a reduced (benchmark-friendly) scale, reporting the headline quantities
// as custom metrics so `go test -bench=. -benchmem` doubles as a quick
// reproduction pass. cmd/verus-bench runs the same harnesses at the paper's
// full scale.
package repro

import (
	"runtime"
	"testing"
	"time"

	"repro/internal/experiments"
)

func quickMacro() experiments.MacroOptions {
	o := experiments.QuickMacroOptions()
	o.Duration = 30 * time.Second
	return o
}

func quickMicro() experiments.MicroOptions {
	o := experiments.QuickMicroOptions()
	o.Duration = 60 * time.Second
	return o
}

// BenchmarkParallelSpeedup measures the experiment runner's wall-clock win:
// the same Figure 8 quick pass serial (-parallel 1) and on GOMAXPROCS
// workers, reporting the ratio as the speedup metric. The two passes render
// byte-identical results (the determinism golden tests pin that); only the
// wall-clock differs.
func BenchmarkParallelSpeedup(b *testing.B) {
	for i := 0; i < b.N; i++ {
		o := quickMacro()
		o.Reps = 2

		o.Parallel = 1
		start := time.Now()
		experiments.Figure8(o)
		serial := time.Since(start)

		o.Parallel = 0 // GOMAXPROCS workers
		start = time.Now()
		experiments.Figure8(o)
		parallel := time.Since(start)

		b.ReportMetric(serial.Seconds()/parallel.Seconds(), "speedup")
		b.ReportMetric(float64(runtime.GOMAXPROCS(0)), "workers")
		b.ReportMetric(serial.Seconds(), "serial-s")
		b.ReportMetric(parallel.Seconds(), "parallel-s")
	}
}

// BenchmarkFigure1 regenerates the LTE burst-arrival scatter (paper Fig. 1).
func BenchmarkFigure1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Figure1(int64(i + 1))
		b.ReportMetric(float64(r.Bursts), "bursts")
	}
}

// BenchmarkFigure2 regenerates the burst-size/inter-arrival PDFs (Fig. 2).
func BenchmarkFigure2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Figure2(30*time.Second, int64(i+1), 0)
		b.ReportMetric(r.MeanBurstBytes[0], "3G-burst-B")
		b.ReportMetric(r.MeanBurstBytes[2], "LTE-burst-B")
	}
}

// BenchmarkFigure3 regenerates the competing-traffic delay bars (Fig. 3).
func BenchmarkFigure3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Figure3(int64(i+1), 0, nil)
		b.ReportMetric(r.DelayOnMs[2], "on-delay-ms")
		b.ReportMetric(r.DelayOffMs[2], "off-delay-ms")
	}
}

// BenchmarkFigure4 regenerates the windowed-throughput views (Fig. 4).
func BenchmarkFigure4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Figure4(int64(i + 1))
		b.ReportMetric(r.CV20, "cv-20ms")
		b.ReportMetric(r.CV100, "cv-100ms")
	}
}

// BenchmarkPredictorStudy regenerates the §3 unpredictability result.
func BenchmarkPredictorStudy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.PredictorStudy(int64(i + 1))
		b.ReportMetric(r.Results[1].NRMSE, "linear-nrmse")
	}
}

// BenchmarkFigure5 regenerates an example delay profile (Fig. 5).
func BenchmarkFigure5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Figure5(int64(i + 1))
		b.ReportMetric(float64(len(r.Windows)), "profile-points")
	}
}

// BenchmarkFigure7 regenerates the delay-profile evolution (Fig. 7).
func BenchmarkFigure7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Figure7(60*time.Second, int64(i+1))
		b.ReportMetric(float64(len(r.Curves)), "snapshots")
	}
}

// BenchmarkFigure8 regenerates the 3G/LTE macro comparison (Fig. 8).
func BenchmarkFigure8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Figure8(quickMacro())
		b.ReportMetric(r.Points[0][2].Mbps, "verus-3g-mbps")
		b.ReportMetric(r.Points[0][2].DelaySec*1000, "verus-3g-delay-ms")
		b.ReportMetric(r.Points[0][0].DelaySec*1000, "cubic-3g-delay-ms")
	}
}

// BenchmarkFigure9 regenerates the Verus R sweep (Fig. 9).
func BenchmarkFigure9(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Figure9(quickMacro())
		b.ReportMetric(r.Points[0][0].DelaySec*1000, "R2-delay-ms")
		b.ReportMetric(r.Points[0][2].DelaySec*1000, "R6-delay-ms")
	}
}

// BenchmarkFigure10 regenerates the trace-driven contention scatter (Fig. 10).
func BenchmarkFigure10(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Figure10(quickMacro())
		b.ReportMetric(r.Summary[0][2].DelaySec*1000, "verusR2-delay-ms")
		b.ReportMetric(r.Summary[0][0].DelaySec*1000, "cubic-delay-ms")
	}
}

// BenchmarkTable1 regenerates the Jain fairness table (Table 1).
func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		o := quickMacro()
		o.Reps = 2
		r := experiments.Table1(o)
		b.ReportMetric(r.Index[4][2]*100, "verus-20u-jain-pct")
	}
}

// BenchmarkFigure11ScenarioI regenerates the 10-100 Mbps comparison (Fig. 11a).
func BenchmarkFigure11ScenarioI(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Figure11(quickMicro(), false)
		b.ReportMetric(r.MeanMbps[0], "verus-mbps")
		b.ReportMetric(r.MeanMbps[3], "sprout-mbps")
	}
}

// BenchmarkFigure11ScenarioII regenerates the 2-20 Mbps Verus/Sprout duel
// (Fig. 11b).
func BenchmarkFigure11ScenarioII(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Figure11(quickMicro(), true)
		b.ReportMetric(r.MeanMbps[0], "verus-mbps")
		b.ReportMetric(r.MeanMbps[1], "sprout-mbps")
	}
}

// BenchmarkFigure12 regenerates the newly-arriving-flows run (Fig. 12).
func BenchmarkFigure12(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Figure12(quickMicro())
		b.ReportMetric(r.JainAllActive, "jain")
	}
}

// BenchmarkFigure13 regenerates the mixed-RTT fairness run (Fig. 13).
func BenchmarkFigure13(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Figure13(quickMicro())
		b.ReportMetric(r.MaxMinRatio, "maxmin-ratio")
	}
}

// BenchmarkFigure14 regenerates the Verus-vs-Cubic coexistence run (Fig. 14).
func BenchmarkFigure14(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Figure14(quickMicro())
		b.ReportMetric(r.ShareVerus, "verus-share")
	}
}

// BenchmarkFigure15 regenerates the static-vs-updating profile ablation
// (Fig. 15).
func BenchmarkFigure15(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Figure15(quickMicro())
		b.ReportMetric(r.UpdatingMbps[0], "updating-mbps")
		b.ReportMetric(r.StaticMbps[0], "static-mbps")
	}
}

// BenchmarkSensitivity regenerates the §5.3 parameter study.
func BenchmarkSensitivity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Sensitivity(20*time.Second, int64(i+1), 0, nil)
		b.ReportMetric(float64(len(r.Rows)), "rows")
	}
}
