package verus

import (
	"fmt"
	"os"
	"testing"
	"time"

	"repro/internal/netsim"
)

// TestDebugTrace is a diagnostic aid; run with -run TestDebugTrace -v.
func TestDebugTrace(t *testing.T) {
	if os.Getenv("VERUS_DEBUG_TRACE") == "" {
		t.Skip("diagnostic only; set VERUS_DEBUG_TRACE=1 to run")
	}
	sim := netsim.NewSim()
	v := New(DefaultConfig())
	d := netsim.NewDumbbell(sim, func(dst netsim.Receiver) netsim.Link {
		return netsim.NewFixedLink(sim, netsim.NewDropTail(1_000_000), 10, 10*time.Millisecond, dst, 1)
	}, 1400, []netsim.FlowSpec{{Ctrl: v, AckDelay: 10 * time.Millisecond}})
	sim.Every(250*time.Millisecond, func() {
		fmt.Printf("t=%6v st=%-13s W=%7.1f quota=%6.1f dEst=%6.1fms dMin=%5.1fms dMax=%6.1fms srtt=%v sent=%d rcvd=%d loss=%d to=%d\n",
			sim.Now(), v.State(), v.Window(), v.quota, v.dEst*1000, v.dMin*1000, v.dMax*1000, v.srtt,
			d.Metrics[0].Sent, d.Metrics[0].Received, d.Metrics[0].LossDetected, d.Metrics[0].Timeouts)
	})
	d.Run(5 * time.Second)
}
