package verus

import (
	"math"
	"testing"
)

// benchProfile builds a delay profile with n knots at windows 1..n, refit
// and ready for lookups — the steady state of a long-running flow.
func benchProfile(n int) *delayProfile {
	p := newDelayProfile(0.875)
	for w := 1; w <= n; w++ {
		p.update(w, 0.02+0.0004*math.Pow(float64(w), 1.3), 1)
	}
	p.refit(1)
	return p
}

// BenchmarkProfileUpdate measures folding an ack's (window, delay) sample
// into an existing knot — the per-ack hot path.
func BenchmarkProfileUpdate(b *testing.B) {
	p := benchProfile(256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.update(1+i%256, 0.025, int64(i))
	}
}

// BenchmarkProfileRefit measures re-interpolating a 256-knot profile, the
// once-per-second (plus range-growth-triggered) spline rebuild.
func BenchmarkProfileRefit(b *testing.B) {
	p := benchProfile(256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.dirty = true
		p.refit(int64(i + 2))
	}
}

// BenchmarkProfileLookup measures the per-epoch window lookup at the steps
// clamp (hi=2048 -> 4096 grid evaluations), the dominant cost of Tick.
func BenchmarkProfileLookup(b *testing.B) {
	p := benchProfile(256)
	target := p.delayAt(128)
	b.ReportAllocs()
	b.ResetTimer()
	var sink float64
	for i := 0; i < b.N; i++ {
		w, _ := p.lookup(target, 2048)
		sink += w
	}
	_ = sink
}

// BenchmarkProfileLookupSmall measures the lookup at the steps floor
// (hi<32 -> 64 grid evaluations), the small-window regime.
func BenchmarkProfileLookupSmall(b *testing.B) {
	p := benchProfile(16)
	target := p.delayAt(8)
	b.ReportAllocs()
	b.ResetTimer()
	var sink float64
	for i := 0; i < b.N; i++ {
		w, _ := p.lookup(target, 16)
		sink += w
	}
	_ = sink
}
