package verus

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/spline"
)

// refProfile is the pre-PR2 delay profile, verbatim: a map[int] knot store
// with a collect-sort-delete aging pass and a fresh sort + spline.Fit per
// refit. It pins the sorted-slice store bit-for-bit: same surviving knots,
// same EWMA values, same fitted curve, same lookup results.
type refProfilePoint struct {
	delay float64
	stamp int64
}

type refProfile struct {
	alpha      float64
	points     map[int]refProfilePoint
	maxW       int
	spl        *spline.Spline
	dirty      bool
	staleAfter int64
}

func newRefProfile(alpha float64) *refProfile {
	return &refProfile{alpha: alpha, points: make(map[int]refProfilePoint)}
}

func (p *refProfile) update(w int, delay float64, now int64) {
	if w < 1 || delay <= 0 {
		return
	}
	if old, ok := p.points[w]; ok {
		p.points[w] = refProfilePoint{delay: p.alpha*old.delay + (1-p.alpha)*delay, stamp: now}
	} else {
		p.points[w] = refProfilePoint{delay: delay, stamp: now}
	}
	if w > p.maxW {
		p.maxW = w
	}
	p.dirty = true
}

func (p *refProfile) refit(now int64) {
	if p.staleAfter > 0 && len(p.points) > 2 {
		var stale []int
		for w, pt := range p.points {
			if now-pt.stamp > p.staleAfter {
				stale = append(stale, w)
			}
		}
		sort.Ints(stale)
		for _, w := range stale {
			if len(p.points) <= 2 {
				break
			}
			delete(p.points, w)
			p.dirty = true
		}
		p.maxW = 0
		for w := range p.points {
			if w > p.maxW {
				p.maxW = w
			}
		}
	}
	if !p.dirty || len(p.points) < 2 {
		return
	}
	xs := make([]float64, 0, len(p.points))
	for w := range p.points {
		xs = append(xs, float64(w))
	}
	sort.Float64s(xs)
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = p.points[int(x)].delay
	}
	if s, err := spline.Fit(xs, ys); err == nil {
		p.spl = s
	}
	p.dirty = false
}

func (p *refProfile) lookup(target, hi float64) (w float64, found bool) {
	if p.spl == nil {
		return 1, false
	}
	if hi < 1 {
		hi = 1
	}
	steps := int(hi) * 2
	if steps < 64 {
		steps = 64
	}
	if steps > 4096 {
		steps = 4096
	}
	best := 1.0
	argmin := 1.0
	minDelay := math.Inf(1)
	argminCeil := float64(p.maxW)
	if argminCeil < 1 {
		argminCeil = 1
	}
	dAtMaxW := p.spl.Eval(argminCeil)
	step := (hi - 1) / float64(steps-1)
	for k := 0; k < steps; k++ {
		x := 1 + float64(k)*step
		d := p.spl.Eval(x)
		if x > argminCeil && d < dAtMaxW {
			d = dAtMaxW
		}
		if d <= target {
			best = x
			found = true
		}
		if x <= argminCeil && d < minDelay {
			minDelay = d
			argmin = x
		}
	}
	if !found {
		return argmin, false
	}
	return best, true
}

// TestProfileMatchesReference drives the sorted-slice profile and the
// map-based reference through identical randomized update/refit/lookup
// sequences (with staleness aging enabled) and requires bit-identical knot
// stores, curves, and lookup results throughout.
func TestProfileMatchesReference(t *testing.T) {
	for trial := 0; trial < 20; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)))
		p := newDelayProfile(0.875)
		p.staleAfter = 40
		ref := newRefProfile(0.875)
		ref.staleAfter = 40
		var now int64
		for step := 0; step < 3000; step++ {
			now++
			w := 1 + rng.Intn(120)
			d := 0.01 + rng.Float64()*0.2
			p.update(w, d, now)
			ref.update(w, d, now)
			if step%50 == 0 {
				p.refit(now)
				ref.refit(now)
				wins, delays := p.snapshotPoints()
				if len(wins) != len(ref.points) {
					t.Fatalf("trial %d step %d: %d knots, reference has %d", trial, step, len(wins), len(ref.points))
				}
				for i, w := range wins {
					rp, ok := ref.points[w]
					if !ok {
						t.Fatalf("trial %d step %d: knot %d missing from reference", trial, step, w)
					}
					if delays[i] != rp.delay {
						t.Fatalf("trial %d step %d: knot %d delay %v, reference %v", trial, step, w, delays[i], rp.delay)
					}
				}
				if p.maxW != ref.maxW {
					t.Fatalf("trial %d step %d: maxW %d, reference %d", trial, step, p.maxW, ref.maxW)
				}
				target := 0.01 + rng.Float64()*0.25
				hi := 1 + rng.Float64()*300
				gw, gf := p.lookup(target, hi)
				ww, wf := ref.lookup(target, hi)
				if gw != ww || gf != wf {
					t.Fatalf("trial %d step %d: lookup(%v,%v) = (%v,%v), reference (%v,%v)",
						trial, step, target, hi, gw, gf, ww, wf)
				}
				if p.ready() && ref.spl != nil {
					for q := 0; q < 20; q++ {
						x := 1 + rng.Float64()*200
						if got, want := p.delayAt(x), ref.spl.Eval(x); got != want {
							t.Fatalf("trial %d step %d: delayAt(%v) = %v, reference %v", trial, step, x, got, want)
						}
					}
				}
			}
		}
	}
}

// TestProfileUpdateZeroAllocs asserts the per-ack hot path — folding a
// sample into an existing knot — never allocates.
func TestProfileUpdateZeroAllocs(t *testing.T) {
	p := benchProfile(128)
	now := int64(1)
	allocs := testing.AllocsPerRun(1000, func() {
		now++
		p.update(1+int(now)%128, 0.03, now)
	})
	if allocs != 0 {
		t.Errorf("update of existing knot: %v allocs/run, want 0", allocs)
	}
}

// TestProfileRefitZeroAllocs asserts a warm refit — scratch buffers and
// spline buffers at their high-water mark — never allocates, including the
// stale-aging compaction pass.
func TestProfileRefitZeroAllocs(t *testing.T) {
	p := benchProfile(128)
	p.staleAfter = 1 << 40 // aging pass runs, nothing is stale
	p.refit(2)
	now := int64(2)
	allocs := testing.AllocsPerRun(100, func() {
		now++
		p.update(1+int(now)%128, 0.03, now)
		p.refit(now)
	})
	if allocs != 0 {
		t.Errorf("warm refit: %v allocs/run, want 0", allocs)
	}
}

// TestProfileLookupZeroAllocs asserts the per-epoch lookup grid scan never
// allocates (the Evaluator cursor lives on the stack).
func TestProfileLookupZeroAllocs(t *testing.T) {
	p := benchProfile(128)
	target := p.delayAt(64)
	allocs := testing.AllocsPerRun(100, func() {
		p.lookup(target, 2048)
	})
	if allocs != 0 {
		t.Errorf("lookup: %v allocs/run, want 0", allocs)
	}
}

// TestProfileStaleAgingFloor pins the aging floor across the compaction
// rewrite: aging never drops the store below two knots even when everything
// is stale, and the two lowest-window knots are the survivors (deletion
// scans ascending).
func TestProfileStaleAgingFloor(t *testing.T) {
	p := newDelayProfile(0.875)
	p.staleAfter = 5
	for w := 1; w <= 10; w++ {
		p.update(w, float64(w)*0.01, 1)
	}
	p.refit(100) // everything is stale
	wins, _ := p.snapshotPoints()
	if len(wins) != 2 {
		t.Fatalf("aging floor: %d knots survive, want 2", len(wins))
	}
	// Ascending deletion order keeps the two highest windows.
	if wins[0] != 9 || wins[1] != 10 {
		t.Errorf("survivors = %v, want [9 10]", wins)
	}
	if p.maxW != 10 {
		t.Errorf("maxW = %d, want 10", p.maxW)
	}
}
