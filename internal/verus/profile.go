package verus

import (
	"math"
	"sort"

	"repro/internal/spline"
)

// profilePoint is one (window → delay) knot with its last-update time.
type profilePoint struct {
	delay float64
	stamp int64 // epoch counter of the last update
}

// delayProfile tracks the relationship between sending window and observed
// packet delay — the paper's central data structure (§4 "Delay Profiler",
// Fig. 5). Each acknowledgement updates the point for the window the packet
// was sent under (EWMA, §5.1); the curve is re-interpolated with a cubic
// spline at fixed intervals because interpolation after every ack would be
// too expensive (§5.1).
//
// Points that have not been refreshed for staleAfter epochs are dropped at
// refit time: only visited windows ever receive updates, so after a channel
// change the unvisited region of the curve is pure history. Left in place,
// a wall of stale high-delay knots blocks the window from ever growing into
// a newly fast channel; dropping them hands that region back to the spline's
// extrapolation, which is the mechanism Verus uses to explore anyway.
type delayProfile struct {
	alpha      float64
	points     map[int]profilePoint
	maxW       int
	spl        *spline.Spline
	dirty      bool
	staleAfter int64 // epochs; 0 disables aging
}

func newDelayProfile(alpha float64) *delayProfile {
	return &delayProfile{alpha: alpha, points: make(map[int]profilePoint)}
}

// update folds a (window, delay) observation into the profile at epoch now.
func (p *delayProfile) update(w int, delay float64, now int64) {
	if w < 1 || delay <= 0 {
		return
	}
	if old, ok := p.points[w]; ok {
		p.points[w] = profilePoint{delay: p.alpha*old.delay + (1-p.alpha)*delay, stamp: now}
	} else {
		p.points[w] = profilePoint{delay: delay, stamp: now}
	}
	if w > p.maxW {
		p.maxW = w
	}
	p.dirty = true
}

// refit ages out stale points and re-interpolates the spline. It is a no-op
// while fewer than two points exist or nothing changed.
func (p *delayProfile) refit(now int64) {
	if p.staleAfter > 0 && len(p.points) > 2 {
		// Collect stale windows and delete them in sorted order: ranging over
		// the map directly would make the survivors of the len>2 floor depend
		// on Go's randomized map iteration order, and with it the whole
		// protocol trajectory — run-to-run nondeterminism the experiment
		// harnesses' byte-identical-output contract forbids.
		var stale []int
		for w, pt := range p.points {
			if now-pt.stamp > p.staleAfter {
				stale = append(stale, w)
			}
		}
		sort.Ints(stale)
		for _, w := range stale {
			if len(p.points) <= 2 {
				break
			}
			delete(p.points, w)
			p.dirty = true
		}
		p.maxW = 0
		for w := range p.points {
			if w > p.maxW {
				p.maxW = w
			}
		}
	}
	if !p.dirty || len(p.points) < 2 {
		return
	}
	xs := make([]float64, 0, len(p.points))
	for w := range p.points {
		xs = append(xs, float64(w))
	}
	sort.Float64s(xs)
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = p.points[int(x)].delay
	}
	if s, err := spline.Fit(xs, ys); err == nil {
		p.spl = s
	}
	p.dirty = false
}

// ready reports whether the profile has an interpolated curve to query.
func (p *delayProfile) ready() bool { return p.spl != nil }

// lookup returns the largest window whose interpolated delay does not exceed
// target, searching up to hi (which may extend past the observed range; the
// spline extrapolates linearly there, which is how Verus explores windows it
// has not yet tried). When no window satisfies the target — the target sits
// at or below the historical minimum delay, which Eq. 4's floor regularly
// produces — it reports found=false and returns the window with the lowest
// predicted delay instead of collapsing to one packet. Callers should treat
// a not-found result as "do not grow".
func (p *delayProfile) lookup(target, hi float64) (w float64, found bool) {
	if p.spl == nil {
		return 1, false
	}
	if hi < 1 {
		hi = 1
	}
	steps := int(hi) * 2
	if steps < 64 {
		steps = 64
	}
	if steps > 4096 {
		steps = 4096
	}
	best := 1.0
	argmin := 1.0
	minDelay := math.Inf(1)
	// The argmin fallback must stay within the observed knot range: beyond
	// maxW the curve is extrapolation, and a slightly negative slope there
	// would otherwise make "the least-delay window" an arbitrarily large
	// unexplored one.
	argminCeil := float64(p.maxW)
	if argminCeil < 1 {
		argminCeil = 1
	}
	// Beyond the observed range the curve is linear extrapolation; clamp it
	// from below at the last observed delay. A noisy negative tail slope
	// must not promise that huge unexplored windows delay *less* than
	// anything ever measured — that false promise compounds into a window
	// runaway.
	dAtMaxW := p.spl.Eval(argminCeil)
	step := (hi - 1) / float64(steps-1)
	for k := 0; k < steps; k++ {
		x := 1 + float64(k)*step
		d := p.spl.Eval(x)
		if x > argminCeil && d < dAtMaxW {
			d = dAtMaxW
		}
		if d <= target {
			best = x
			found = true
		}
		if x <= argminCeil && d < minDelay {
			minDelay = d
			argmin = x
		}
	}
	if !found {
		return argmin, false
	}
	return best, true
}

// delayAt evaluates the interpolated curve at window w (clamped at >= 1).
// Returns 0 when no curve exists yet.
func (p *delayProfile) delayAt(w float64) float64 {
	if p.spl == nil {
		return 0
	}
	if w < 1 {
		w = 1
	}
	return p.spl.Eval(w)
}

// snapshotPoints returns the profile's raw points sorted by window.
func (p *delayProfile) snapshotPoints() (windows []int, delays []float64) {
	windows = make([]int, 0, len(p.points))
	for w := range p.points {
		windows = append(windows, w)
	}
	sort.Ints(windows)
	delays = make([]float64, len(windows))
	for i, w := range windows {
		delays[i] = p.points[w].delay
	}
	return windows, delays
}
