package verus

import (
	"math"
	"sort"

	"repro/internal/spline"
)

// delayProfile tracks the relationship between sending window and observed
// packet delay — the paper's central data structure (§4 "Delay Profiler",
// Fig. 5). Each acknowledgement updates the point for the window the packet
// was sent under (EWMA, §5.1); the curve is re-interpolated with a cubic
// spline at fixed intervals because interpolation after every ack would be
// too expensive (§5.1).
//
// Points that have not been refreshed for staleAfter epochs are dropped at
// refit time: only visited windows ever receive updates, so after a channel
// change the unvisited region of the curve is pure history. Left in place,
// a wall of stale high-delay knots blocks the window from ever growing into
// a newly fast channel; dropping them hands that region back to the spline's
// extrapolation, which is the mechanism Verus uses to explore anyway.
//
// The knot store is three parallel slices sorted by window (wins ascending,
// delays/stamps aligned), not a map: update is a binary search plus an
// in-place EWMA fold (allocation-free in steady state, when the window has
// been seen before), stale aging is a single compaction pass, and refit
// reads the knots off in order with no sort and no per-refit allocation —
// the xs/ys scratch and the spline's own buffers are reused across refits.
// Sorted order also makes determinism structural: there is no map iteration
// anywhere, so no randomized-order hazard to defend against.
type delayProfile struct {
	alpha float64

	// Parallel knot arrays, sorted by wins ascending. wins are distinct.
	wins   []int
	delays []float64
	stamps []int64 // epoch counter of each knot's last update

	maxW       int
	spl        spline.Spline // refitted in place; valid once splReady
	splReady   bool
	dirty      bool
	staleAfter int64 // epochs; 0 disables aging

	// Refit scratch, reused across refits.
	xs, ys []float64
	// Lookup grid scratch, reused across lookups (at most 4096 entries).
	grid []float64
}

func newDelayProfile(alpha float64) *delayProfile {
	return &delayProfile{alpha: alpha}
}

// numPoints returns the current knot count.
func (p *delayProfile) numPoints() int { return len(p.wins) }

// reset discards every knot and the fitted curve, returning the profile to
// its just-constructed state (§4.2 recovery: after a blackout the learned
// window→delay relationship describes a bearer that no longer exists, so
// re-learning from scratch beats trusting stale knots). Scratch buffers are
// kept so the rebuild does not re-allocate.
func (p *delayProfile) reset() {
	p.wins = p.wins[:0]
	p.delays = p.delays[:0]
	p.stamps = p.stamps[:0]
	p.maxW = 0
	p.splReady = false
	p.dirty = false
}

// update folds a (window, delay) observation into the profile at epoch now.
// The common case — an ack for an already-visited window — is a binary
// search and two stores; a first visit inserts a knot, shifting the tail.
func (p *delayProfile) update(w int, delay float64, now int64) {
	if w < 1 || delay <= 0 {
		return
	}
	i := sort.SearchInts(p.wins, w)
	if i < len(p.wins) && p.wins[i] == w {
		p.delays[i] = p.alpha*p.delays[i] + (1-p.alpha)*delay
		p.stamps[i] = now
	} else {
		p.wins = append(p.wins, 0)
		copy(p.wins[i+1:], p.wins[i:])
		p.wins[i] = w
		p.delays = append(p.delays, 0)
		copy(p.delays[i+1:], p.delays[i:])
		p.delays[i] = delay
		p.stamps = append(p.stamps, 0)
		copy(p.stamps[i+1:], p.stamps[i:])
		p.stamps[i] = now
	}
	if w > p.maxW {
		p.maxW = w
	}
	p.dirty = true
}

// refit ages out stale points and re-interpolates the spline. It is a no-op
// while fewer than two points exist or nothing changed. With warm buffers
// (knot count at or below its high-water mark) it performs no allocation.
func (p *delayProfile) refit(now int64) {
	if p.staleAfter > 0 && len(p.wins) > 2 {
		// Compact stale knots in ascending window order, but never below two
		// survivors: the floor is checked before each drop, so when only two
		// knots remain every later knot is kept — the same semantics as the
		// pre-compaction implementation, which deleted from a sorted stale
		// list and stopped at the floor.
		n := len(p.wins)
		kept, removed := 0, 0
		for i := 0; i < n; i++ {
			if now-p.stamps[i] > p.staleAfter && n-removed > 2 {
				removed++
				continue
			}
			p.wins[kept] = p.wins[i]
			p.delays[kept] = p.delays[i]
			p.stamps[kept] = p.stamps[i]
			kept++
		}
		if removed > 0 {
			p.wins = p.wins[:kept]
			p.delays = p.delays[:kept]
			p.stamps = p.stamps[:kept]
			p.dirty = true
		}
		p.maxW = 0
		if len(p.wins) > 0 {
			p.maxW = p.wins[len(p.wins)-1]
		}
	}
	if !p.dirty || len(p.wins) < 2 {
		return
	}
	p.xs = p.xs[:0]
	p.ys = p.ys[:0]
	for i, w := range p.wins {
		p.xs = append(p.xs, float64(w))
		p.ys = append(p.ys, p.delays[i])
	}
	if err := p.spl.RefitSorted(p.xs, p.ys); err == nil {
		p.splReady = true
	}
	p.dirty = false
}

// ready reports whether the profile has an interpolated curve to query.
func (p *delayProfile) ready() bool { return p.splReady }

// lookup returns the largest window whose interpolated delay does not exceed
// target, searching up to hi (which may extend past the observed range; the
// spline extrapolates linearly there, which is how Verus explores windows it
// has not yet tried). When no window satisfies the target — the target sits
// at or below the historical minimum delay, which Eq. 4's floor regularly
// produces — it reports found=false and returns the window with the lowest
// predicted delay instead of collapsing to one packet. Callers should treat
// a not-found result as "do not grow".
//
// The curve is evaluated with spline.EvalGrid into a reused scratch buffer:
// the grid is rising, so the whole evaluation pass costs O(knots + steps)
// with the segment coefficients hoisted out of the inner loop, instead of a
// binary search per step — bit-identical values to point-wise Eval.
func (p *delayProfile) lookup(target, hi float64) (w float64, found bool) {
	if !p.splReady {
		return 1, false
	}
	if hi < 1 {
		hi = 1
	}
	steps := int(hi) * 2
	if steps < 64 {
		steps = 64
	}
	if steps > 4096 {
		steps = 4096
	}
	best := 1.0
	argmin := 1.0
	minDelay := math.Inf(1)
	// The argmin fallback must stay within the observed knot range: beyond
	// maxW the curve is extrapolation, and a slightly negative slope there
	// would otherwise make "the least-delay window" an arbitrarily large
	// unexplored one.
	argminCeil := float64(p.maxW)
	if argminCeil < 1 {
		argminCeil = 1
	}
	// Beyond the observed range the curve is linear extrapolation; clamp it
	// from below at the last observed delay. A noisy negative tail slope
	// must not promise that huge unexplored windows delay *less* than
	// anything ever measured — that false promise compounds into a window
	// runaway.
	dAtMaxW := p.spl.Eval(argminCeil)
	step := (hi - 1) / float64(steps-1)
	if cap(p.grid) < steps {
		p.grid = make([]float64, steps)
	}
	grid := p.grid[:steps]
	p.spl.EvalGrid(1, step, grid)
	for k := 0; k < steps; k++ {
		x := 1 + float64(k)*step
		d := grid[k]
		if x > argminCeil && d < dAtMaxW {
			d = dAtMaxW
		}
		if d <= target {
			best = x
			found = true
		}
		if x <= argminCeil && d < minDelay {
			minDelay = d
			argmin = x
		}
	}
	if !found {
		return argmin, false
	}
	return best, true
}

// delayAt evaluates the interpolated curve at window w (clamped at >= 1).
// Returns 0 when no curve exists yet.
func (p *delayProfile) delayAt(w float64) float64 {
	if !p.splReady {
		return 0
	}
	if w < 1 {
		w = 1
	}
	return p.spl.Eval(w)
}

// snapshotPoints returns a copy of the profile's raw points sorted by window.
func (p *delayProfile) snapshotPoints() (windows []int, delays []float64) {
	windows = append([]int(nil), p.wins...)
	delays = append([]float64(nil), p.delays...)
	return windows, delays
}
