package verus

import (
	"testing"
	"time"

	"repro/internal/cellular"
	"repro/internal/netsim"
)

// TestVerusOnFixedLink runs the full closed loop on the simulator: Verus
// should achieve a solid fraction of a stable link while holding queueing
// delay near R × base delay rather than filling the buffer.
func TestVerusOnFixedLink(t *testing.T) {
	sim := netsim.NewSim()
	v := New(DefaultConfig()) // R = 2
	d := netsim.NewDumbbell(sim, func(dst netsim.Receiver) netsim.Link {
		// 10 Mbps, 10 ms base one-way, 1 MB buffer (≈ 800 ms if filled).
		return netsim.NewFixedLink(sim, netsim.NewDropTail(1_000_000), 10, 10*time.Millisecond, dst, 1)
	}, 1400, []netsim.FlowSpec{{Ctrl: v, AckDelay: 10 * time.Millisecond}})
	d.Run(30 * time.Second)

	m := d.Metrics[0]
	tput := m.MeanMbps(30 * time.Second)
	if tput < 5 {
		t.Errorf("throughput = %.2f Mbps on a 10 Mbps link, want >= 5", tput)
	}
	if tput > 10.5 {
		t.Errorf("throughput = %.2f Mbps exceeds link capacity", tput)
	}
	// Base one-way is ~11 ms (prop + serialization). R=2 targets RTT ≈
	// 2×RTTmin, i.e. one-way well under 100 ms; a buffer-filling protocol
	// would sit at ~800 ms. Judge steady state (after the slow-start
	// overshoot drains) via the per-second delay means from t = 5 s on.
	means := m.DelayOverTime.Means()
	if len(means) < 30 {
		t.Fatalf("missing delay windows: %d", len(means))
	}
	for w := 5; w < 30; w++ {
		if means[w] > 0.15 {
			t.Errorf("steady-state delay %.0f ms in window %d; buffer-filling behaviour", means[w]*1000, w)
		}
	}
	if m.Timeouts > 2 {
		t.Errorf("timeouts = %d on a clean link", m.Timeouts)
	}
}

// TestVerusOnCellularTrace runs Verus over the bursty cellular channel model
// and checks it stays functional: meaningful utilization, bounded delay.
func TestVerusOnCellularTrace(t *testing.T) {
	model := cellular.NewModel(cellular.Config{
		Tech:     cellular.Tech3G,
		Scenario: cellular.CampusStationary,
		MeanMbps: 8,
		Seed:     17,
	})
	tr := model.Trace(40 * time.Second)

	sim := netsim.NewSim()
	v := New(DefaultConfig())
	d := netsim.NewDumbbell(sim, func(dst netsim.Receiver) netsim.Link {
		return netsim.NewTraceLink(sim, netsim.NewDropTail(2_000_000), tr, 10*time.Millisecond, dst, false, 2)
	}, 1400, []netsim.FlowSpec{{Ctrl: v, AckDelay: 10 * time.Millisecond}})
	d.Run(40 * time.Second)

	m := d.Metrics[0]
	tput := m.MeanMbps(40 * time.Second)
	cap := tr.MeanMbps()
	if tput < 0.3*cap {
		t.Errorf("throughput %.2f Mbps is under 30%% of the %.2f Mbps channel", tput, cap)
	}
	if delay := m.Delay.Mean(); delay > 0.4 {
		t.Errorf("mean one-way delay %.0f ms too high on cellular channel", delay*1000)
	}
	epochs, _, _, refits := v.Stats()
	if epochs == 0 || refits == 0 {
		t.Errorf("protocol not exercised: epochs=%d refits=%d", epochs, refits)
	}
}

// TestVerusAdaptsToCapacityDrop verifies the rapid-adaptation property
// (paper §7): after a sudden capacity drop the delay must return near the
// target rather than stay inflated.
func TestVerusAdaptsToCapacityDrop(t *testing.T) {
	sim := netsim.NewSim()
	v := New(DefaultConfig())
	var link *netsim.FixedLink
	d := netsim.NewDumbbell(sim, func(dst netsim.Receiver) netsim.Link {
		link = netsim.NewFixedLink(sim, netsim.NewDropTail(2_000_000), 20, 5*time.Millisecond, dst, 1)
		return link
	}, 1400, []netsim.FlowSpec{{Ctrl: v, AckDelay: 5 * time.Millisecond}})
	sim.Schedule(15*time.Second, func() { link.SetRateMbps(2) })
	d.Run(30 * time.Second)

	m := d.Metrics[0]
	// Delay in the last 5 seconds (10 s after the drop) must be moderate:
	// a 2 Mbps link with a 2 MB queue would show ~8 s delay if unadapted.
	delays := m.DelayOverTime.Means()
	if len(delays) < 30 {
		t.Fatalf("missing delay windows: %d", len(delays))
	}
	for _, dl := range delays[25:30] {
		if dl > 0.5 {
			t.Fatalf("delay %.2f s long after capacity drop; did not adapt", dl)
		}
	}
	// Still moving data on the 2 Mbps link.
	mbps := m.Throughput.Mbps()
	var late float64
	for _, x := range mbps[25:30] {
		late += x
	}
	if late/5 < 0.5 {
		t.Fatalf("late throughput %.2f Mbps; flow died after drop", late/5)
	}
}
