package verus

import (
	"math"
	"testing"
	"time"

	"repro/internal/cc"
)

func msd(n float64) time.Duration { return time.Duration(n * float64(time.Millisecond)) }

// ack feeds one acknowledgement with the given RTT and send tag.
func ack(v *Verus, rtt time.Duration, tag int) {
	v.OnAck(0, cc.AckSample{RTT: rtt, SentWindow: tag, Bytes: 1400})
}

func TestConfigValidation(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	mutations := []func(*Config){
		func(c *Config) { c.Epoch = 0 },
		func(c *Config) { c.ProfileUpdateEvery = c.Epoch / 2 },
		func(c *Config) { c.Delta1 = 0 },
		func(c *Config) { c.Delta2 = 0 },
		func(c *Config) { c.Delta1 = 3 * time.Millisecond }, // δ1 > δ2
		func(c *Config) { c.R = 1 },
		func(c *Config) { c.AlphaMaxDelay = 0 },
		func(c *Config) { c.AlphaMaxDelay = 1.5 },
		func(c *Config) { c.AlphaProfile = -1 },
		func(c *Config) { c.SlowStartExitN = 1 },
		func(c *Config) { c.MultDecrease = 0 },
		func(c *Config) { c.MultDecrease = 1 },
		func(c *Config) { c.MaxWindow = 0 },
		func(c *Config) { c.GrowthCap = 1 },
		func(c *Config) { c.InflightCap = 0.5 },
	}
	for i, mut := range mutations {
		c := DefaultConfig()
		mut(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestNewPanicsOnInvalidConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("invalid config did not panic")
		}
	}()
	New(Config{})
}

func TestNameIncludesR(t *testing.T) {
	cfg := DefaultConfig()
	cfg.R = 6
	if got := New(cfg).Name(); got != "verus(R=6)" {
		t.Fatalf("Name = %q", got)
	}
}

func TestSlowStartGrowsPerAck(t *testing.T) {
	v := New(DefaultConfig())
	if v.State() != "slow-start" {
		t.Fatalf("initial state %q", v.State())
	}
	if got := v.Allowance(0, 0); got != 1 {
		t.Fatalf("initial allowance = %d, want 1", got)
	}
	for i := 0; i < 10; i++ {
		ack(v, 20*time.Millisecond, 1+i)
	}
	// ssW = 1 + 10 acks = 11 → exponential growth as acks double.
	if got := v.Allowance(0, 0); got != 11 {
		t.Fatalf("allowance after 10 acks = %d, want 11", got)
	}
	if v.State() != "slow-start" {
		t.Fatal("should still be in slow start at low delay")
	}
}

func TestSlowStartExitsOnDelayThreshold(t *testing.T) {
	v := New(DefaultConfig())
	ack(v, 10*time.Millisecond, 1) // dMin = 10 ms
	for i := 0; i < 5; i++ {
		ack(v, 20*time.Millisecond, 2+i)
	}
	if v.State() != "slow-start" {
		t.Fatal("exited too early")
	}
	ack(v, 200*time.Millisecond, 8) // > 15 × 10 ms
	if v.State() != "normal" {
		t.Fatalf("state = %q after threshold delay, want normal", v.State())
	}
	if v.DelayTarget() < 0.01 {
		t.Fatalf("delay target %v not anchored", v.DelayTarget())
	}
}

func TestSlowStartExitBuildsProfile(t *testing.T) {
	v := New(DefaultConfig())
	// Monotone window→delay relationship during slow start.
	for i := 1; i <= 30; i++ {
		ack(v, msd(10+float64(i)*2), i)
	}
	ack(v, msd(200), 31)
	if v.State() != "normal" {
		t.Fatalf("state = %q", v.State())
	}
	wins, pts, curve := v.ProfileSnapshot()
	if len(wins) < 20 || len(pts) != len(wins) {
		t.Fatalf("profile has %d points", len(wins))
	}
	if curve == nil {
		t.Fatal("no interpolated curve after slow-start exit")
	}
}

func TestEquation4RatioCaseDecrements(t *testing.T) {
	v := primedVerus(t)
	before := v.DelayTarget()
	// Feed an epoch whose delay ratio exceeds R: dMin 10 ms, delays 100 ms.
	ack(v, 100*time.Millisecond, 10)
	v.Tick(0)
	if v.DelayTarget() >= before {
		t.Fatalf("target should fall in ratio case: %v -> %v", before, v.DelayTarget())
	}
}

func TestEquation4DeltaPositiveDecrementsByDelta1(t *testing.T) {
	cfg := DefaultConfig()
	cfg.R = 1000 // never trigger the ratio case
	v := primedVerusCfg(t, cfg)
	// Establish a steady dMax, then raise it slightly.
	for i := 0; i < 50; i++ {
		ack(v, 15*time.Millisecond, 10)
		v.Tick(0)
	}
	before := v.DelayTarget()
	ack(v, 30*time.Millisecond, 10) // ΔD > 0
	v.Tick(0)
	got := before - v.DelayTarget()
	want := cfg.Delta1.Seconds()
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("ΔD>0 decrement = %v, want δ1 = %v", got, want)
	}
}

func TestEquation4ImprovingChannelIncrements(t *testing.T) {
	cfg := DefaultConfig()
	cfg.R = 1000
	v := primedVerusCfg(t, cfg)
	// Decreasing delays → ΔD < 0 → target grows by δ2.
	for i := 0; i < 5; i++ {
		ack(v, msd(40), 10)
		v.Tick(0)
	}
	before := v.DelayTarget()
	ack(v, msd(20), 10)
	v.Tick(0)
	got := v.DelayTarget() - before
	if math.Abs(got-cfg.Delta2.Seconds()) > 1e-9 {
		t.Fatalf("increment = %v, want δ2 = %v", got, cfg.Delta2.Seconds())
	}
}

func TestTargetNeverFallsBelowDMin(t *testing.T) {
	v := primedVerus(t)
	for i := 0; i < 500; i++ {
		ack(v, 100*time.Millisecond, 10) // ratio case forever
		v.Tick(0)
	}
	if v.DelayTarget() < v.MinDelay()-1e-12 {
		t.Fatalf("target %v below dMin %v", v.DelayTarget(), v.MinDelay())
	}
}

func TestTargetCappedNearRTimesDMin(t *testing.T) {
	v := primedVerus(t) // R = 2, dMin = 10 ms
	for i := 0; i < 500; i++ {
		ack(v, msd(10), 10) // steadily low delay → increments
		v.Tick(0)
	}
	ceiling := v.cfg.R*v.MinDelay() + v.cfg.Delta2.Seconds()
	if v.DelayTarget() > ceiling+1e-12 {
		t.Fatalf("target %v exceeds ceiling %v", v.DelayTarget(), ceiling)
	}
}

func TestNoSampleEpochLeavesTargetAlone(t *testing.T) {
	v := primedVerus(t)
	before := v.DelayTarget()
	for i := 0; i < 10; i++ {
		v.Tick(0) // no acks in between
	}
	if v.DelayTarget() != before {
		t.Fatalf("target moved without samples: %v -> %v", before, v.DelayTarget())
	}
}

func TestEquation5Quota(t *testing.T) {
	v := primedVerus(t)
	// S = wNext + (2-n)/(n-1)·w with n = ⌈srtt/ε⌉ (clamped ≥ 2).
	w := v.w
	n := math.Ceil(v.srtt.Seconds() / v.cfg.Epoch.Seconds())
	if n < 2 {
		n = 2
	}
	v.quota = 0   // drop any carried credit so the formula is exact
	v.setQuota(w) // steady state: wNext == w
	want := math.Max(0, w+(2-n)/(n-1)*w)
	if math.Abs(v.quota-want) > 1e-9 {
		t.Fatalf("quota = %v, want %v (n=%v)", v.quota, want, n)
	}
}

func TestEquation5QuotaNeverNegative(t *testing.T) {
	v := primedVerus(t)
	v.w = 100
	v.setQuota(1) // big drop
	if v.quota < 0 {
		t.Fatalf("quota = %v", v.quota)
	}
}

func TestOnSendConsumesQuota(t *testing.T) {
	v := primedVerus(t)
	// After a window drop Eq. 5 can legitimately yield S = 0 for an epoch
	// or two; run epochs until a positive quota appears.
	q0 := 0
	for i := 0; i < 20 && q0 <= 0; i++ {
		ack(v, msd(20), 10)
		v.Tick(0)
		q0 = v.Allowance(0, 0)
	}
	if q0 <= 0 {
		t.Fatalf("no quota after settling (q=%d)", q0)
	}
	v.OnSend(0, 1, 1)
	if got := v.Allowance(0, 1); got != q0-1-0 && got != q0-1 {
		// Inflight also rose by one; the cap may bind. Accept either exact
		// decrement.
		t.Fatalf("allowance after send = %d, want %d", got, q0-1)
	}
}

func TestInflightCapBindsDuringStall(t *testing.T) {
	v := primedVerus(t)
	ack(v, msd(20), 10)
	v.Tick(0)
	huge := int(v.cfg.InflightCap*v.w) + 50
	if got := v.Allowance(0, huge); got != 0 {
		t.Fatalf("allowance with %d inflight = %d, want 0", huge, got)
	}
}

func TestLossMultiplicativeDecrease(t *testing.T) {
	v := primedVerus(t)
	v.OnLoss(0, cc.LossEvent{SentWindow: 40})
	if v.State() != "loss-recovery" {
		t.Fatalf("state = %q", v.State())
	}
	if got := v.Window(); math.Abs(got-20) > 1 {
		t.Fatalf("window after loss = %v, want M·W_loss = 20", got)
	}
}

func TestLossUsesWlossNotCurrentWindow(t *testing.T) {
	v := primedVerus(t)
	v.w = 100
	v.OnLoss(0, cc.LossEvent{SentWindow: 10})
	if got := v.Window(); math.Abs(got-5) > 1 {
		t.Fatalf("window = %v, want M·10 = 5", got)
	}
}

func TestSecondLossDuringRecoveryIgnored(t *testing.T) {
	v := primedVerus(t)
	v.OnLoss(0, cc.LossEvent{SentWindow: 40})
	w := v.Window()
	v.OnLoss(0, cc.LossEvent{SentWindow: 40})
	if v.Window() != w {
		t.Fatal("recovery loss caused second decrease")
	}
	_, losses, _, _ := v.Stats()
	if losses != 1 {
		t.Fatalf("losses = %d, want 1", losses)
	}
}

func TestRecoveryGrowsOnePerWindow(t *testing.T) {
	v := primedVerus(t)
	v.OnLoss(0, cc.LossEvent{SentWindow: 40})
	w := v.Window()
	ack(v, msd(20), 100) // old big tag: stays in recovery
	if got := v.Window(); math.Abs(got-(w+1/w)) > 1e-9 {
		t.Fatalf("recovery growth: %v -> %v, want +1/W", w, got)
	}
	if v.State() != "loss-recovery" {
		t.Fatal("old-tag ack should not end recovery")
	}
}

func TestRecoveryExitsOnPostLossAck(t *testing.T) {
	v := primedVerus(t)
	v.OnLoss(0, cc.LossEvent{SentWindow: 40})
	ack(v, msd(20), int(v.Window())) // tag ≤ current window
	if v.State() != "normal" {
		t.Fatalf("state = %q after post-loss ack", v.State())
	}
}

func TestProfileFrozenDuringRecovery(t *testing.T) {
	v := primedVerus(t)
	v.OnLoss(0, cc.LossEvent{SentWindow: 40})
	wins0, _, _ := v.ProfileSnapshot()
	ack(v, msd(20), 999) // would create a new point if not in recovery
	wins1, _, _ := v.ProfileSnapshot()
	if len(wins1) != len(wins0) {
		t.Fatal("profile updated during loss recovery")
	}
}

func TestTimeoutReentersSlowStart(t *testing.T) {
	v := primedVerus(t)
	v.OnTimeout(0)
	if v.State() != "slow-start" {
		t.Fatalf("state = %q after timeout", v.State())
	}
	if got := v.Allowance(0, 0); got != 1 {
		t.Fatalf("allowance after timeout = %d, want 1", got)
	}
	_, _, timeouts, _ := v.Stats()
	if timeouts != 1 {
		t.Fatalf("timeouts = %d", timeouts)
	}
}

func TestSendTagAtLeastOne(t *testing.T) {
	v := New(DefaultConfig())
	if v.SendTag() < 1 {
		t.Fatalf("SendTag = %d", v.SendTag())
	}
}

func TestStaticProfileFreezes(t *testing.T) {
	cfg := DefaultConfig()
	cfg.StaticProfile = true
	v := primedVerusCfg(t, cfg)
	wins0, pts0, _ := v.ProfileSnapshot()
	// Feed many acks at a new window value; frozen profile must not change.
	for i := 0; i < 50; i++ {
		ack(v, msd(33), 77)
		v.Tick(0)
	}
	wins1, pts1, _ := v.ProfileSnapshot()
	if len(wins1) != len(wins0) {
		t.Fatal("static profile gained points")
	}
	for i := range pts0 {
		if pts0[i] != pts1[i] {
			t.Fatal("static profile point moved")
		}
	}
}

func TestProfileRefitCadence(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ProfileUpdateEvery = 50 * time.Millisecond // 10 epochs
	v := primedVerusCfg(t, cfg)
	_, _, _, refits0 := v.Stats()
	for i := 0; i < 25; i++ {
		ack(v, msd(20), 10)
		v.Tick(0)
	}
	_, _, _, refits1 := v.Stats()
	if got := refits1 - refits0; got < 2 || got > 3 {
		t.Fatalf("refits over 25 epochs = %d, want 2-3", got)
	}
}

func TestWindowRespondsToChannel(t *testing.T) {
	// A full closed-loop sanity check without the simulator: synthesize a
	// channel where delay grows linearly with window; Verus should settle
	// near the window whose delay matches R×dMin.
	cfg := DefaultConfig()
	v := New(cfg)
	delayFor := func(w float64) time.Duration {
		return msd(10 + w) // 10 ms base + 1 ms per window unit
	}
	// Slow start with realistic feedback until exit.
	for i := 1; v.State() == "slow-start" && i < 10000; i++ {
		w := v.Window()
		v.OnAck(0, cc.AckSample{RTT: delayFor(w), SentWindow: int(w)})
	}
	if v.State() != "normal" {
		t.Fatalf("slow start never exited (delay threshold 15×10 ms at W≈140)")
	}
	// Run epochs with feedback.
	for i := 0; i < 4000; i++ {
		w := v.Window()
		v.OnAck(0, cc.AckSample{RTT: delayFor(w), SentWindow: int(w)})
		v.Tick(0)
	}
	// Equilibrium: delay ≈ R × dMin = 2×10 ms → 10 + w = 20 → w ≈ 10.
	got := v.Window()
	if got < 3 || got > 30 {
		t.Fatalf("equilibrium window = %v, want ≈10", got)
	}
}

// primedVerus returns a controller in normal state with dMin = 10 ms, a
// monotone profile over windows 1..40, and srtt ≈ 20 ms.
func primedVerus(t *testing.T) *Verus { return primedVerusCfg(t, DefaultConfig()) }

func primedVerusCfg(t *testing.T, cfg Config) *Verus {
	t.Helper()
	v := New(cfg)
	ack(v, msd(10), 1) // dMin
	for i := 2; i <= 40; i++ {
		ack(v, msd(10+float64(i)/2), i)
	}
	// Trip the slow-start exit.
	ack(v, msd(10*cfg.SlowStartExitN+5), 41)
	if v.State() != "normal" {
		t.Fatalf("priming failed: state %q", v.State())
	}
	// Pull srtt down toward 20 ms, then run one epoch so no samples are
	// pending and the target has been through Eq. 4 once.
	for i := 0; i < 30; i++ {
		ack(v, msd(20), 20)
	}
	v.Tick(0)
	return v
}
