// Package verus implements the Verus congestion-control protocol from
// "Adaptive Congestion Control for Unpredictable Cellular Networks"
// (Zaki et al., SIGCOMM 2015).
//
// Verus is a delay-based protocol for channels too variable to predict.
// Instead of forecasting the channel it continuously learns a delay profile
// — the relationship between sending window and end-to-end packet delay —
// and each short epoch ε moves a delay target D_est up or down by small
// steps, then reads the next sending window off the profile:
//
//	W(t+1) = f(d(t) + δ(t))            (paper Eq. 1)
//
// The four components of §4 map to this package as follows: the Delay
// Estimator is the per-epoch max-delay EWMA and ΔD computation in Tick
// (Eq. 2, 3); the Delay Profiler is the delayProfile type (Fig. 5); the
// Window Estimator is the Eq. 4 target update plus the Eq. 5 epoch quota;
// and the Loss Handler is the multiplicative decrease of Eq. 6 with the
// loss-recovery phase of §4/§5.
//
// The type is a pure state machine implementing cc.Controller, so the same
// code runs in the discrete-event simulator and in the real UDP transport.
package verus

import (
	"fmt"
	"math"
	"strconv"
	"time"

	"repro/internal/cc"
	"repro/internal/obs"
)

// Config holds the protocol parameters. Defaults follow §5.3 of the paper.
type Config struct {
	// Epoch is ε, the interval at which Verus re-estimates how many packets
	// to send. The paper finds 5 ms tracks fast fading well.
	Epoch time.Duration
	// ProfileUpdateEvery is the spline re-interpolation interval (1 s in
	// the paper: shorter is needlessly aggressive, longer misses slow
	// fading).
	ProfileUpdateEvery time.Duration
	// Delta1 is the restrictive decrement applied to the delay target when
	// delay increased this epoch (1 ms in the paper).
	Delta1 time.Duration
	// Delta2 is the aggressive step: the increment when delay decreased,
	// and the decrement when the delay budget R is exceeded (2 ms).
	Delta2 time.Duration
	// R is the maximum tolerable ratio D_max/D_min; it tunes the
	// throughput/delay trade-off (2, 4, or 6 in the paper's evaluation).
	R float64
	// AlphaMaxDelay is the EWMA history weight for the per-epoch maximum
	// delay (Eq. 2's α).
	AlphaMaxDelay float64
	// AlphaProfile is the EWMA history weight for delay-profile point
	// updates (§5.1).
	AlphaProfile float64
	// SlowStartExitN ends slow start when the observed delay exceeds
	// N × D_min (the paper suggests N = 15).
	SlowStartExitN float64
	// MultDecrease is M in Eq. 6, the multiplicative decrease applied to
	// the window of the lost packet. The paper does not publish a value;
	// 0.5 (TCP-like) is the default here.
	MultDecrease float64
	// MaxWindow is a safety cap on the sending window, in packets.
	MaxWindow int
	// GrowthCap bounds how far a profile lookup may grow the window in one
	// epoch, as a multiplicative factor on the current window. Exploration
	// beyond the observed range rides the spline's linear extrapolation;
	// compounding per 5 ms epoch, even 3%% covers two decades per second,
	// while keeping the overshoot within one feedback delay small.
	GrowthCap float64
	// InflightCap bounds outstanding packets at InflightCap × W so that a
	// stalled channel cannot accumulate unbounded in-flight data before the
	// RTO fires.
	InflightCap float64
	// DMinWindow is the rolling horizon over which the minimum delay D_min
	// is tracked. A finite horizon lets the floor rise when the network's
	// delay floor rises (competing traffic, path change).
	DMinWindow time.Duration
	// ProfileStaleAfter drops delay-profile points that have not been
	// refreshed within this horizon (see delayProfile). 0 disables aging.
	ProfileStaleAfter time.Duration
	// StaticProfile freezes the delay profile after its first
	// interpolation — the ablation of paper Fig. 15.
	StaticProfile bool
	// RelearnTimeouts, when positive, discards the learned delay profile
	// and delay floor after this many consecutive timeouts with no
	// intervening ack — the signature of a blackout (§4.2). Every knot and
	// the D_min floor describe the pre-outage bearer; re-learning from
	// scratch beats reading windows off a curve for a channel that no
	// longer exists. 0 (the default) keeps the pre-PR-4 behavior: the
	// profile survives timeouts.
	RelearnTimeouts int
	// TimeoutEpochs, when set, opens a timeout epoch at each RTO: acks
	// inferred to have been sent before the most recent timeout (send time
	// ≈ now − RTT) are discarded rather than folded into the estimators.
	// After an outage or handover the network bursts out exactly such
	// ghosts — packets queued before the stall whose delays say nothing
	// about the recovered channel — and without the epoch check they both
	// poison the profile and double-drive the restarted slow start. Off by
	// default (pre-PR-4 behavior).
	TimeoutEpochs bool
}

// DefaultConfig returns the paper's parameter settings with R = 2 (the value
// the paper uses "unless otherwise stated").
func DefaultConfig() Config {
	return Config{
		Epoch:              5 * time.Millisecond,
		ProfileUpdateEvery: time.Second,
		Delta1:             time.Millisecond,
		Delta2:             2 * time.Millisecond,
		R:                  2,
		AlphaMaxDelay:      0.875,
		AlphaProfile:       0.875,
		SlowStartExitN:     15,
		MultDecrease:       0.5,
		MaxWindow:          100_000,
		GrowthCap:          1.03,
		InflightCap:        1.25,
		DMinWindow:         120 * time.Second,
		ProfileStaleAfter:  10 * time.Second,
	}
}

// ResilientConfig returns DefaultConfig with the §4.2 recovery behaviors
// enabled: timeout-epoch ack filtering and profile re-learning after two
// consecutive timeouts. This is the configuration the fault scenarios and
// the chaos suite run.
func ResilientConfig() Config {
	cfg := DefaultConfig()
	cfg.RelearnTimeouts = 2
	cfg.TimeoutEpochs = true
	return cfg
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case c.Epoch <= 0:
		return fmt.Errorf("verus: epoch must be positive, got %v", c.Epoch)
	case c.ProfileUpdateEvery < c.Epoch:
		return fmt.Errorf("verus: profile update interval %v shorter than epoch %v", c.ProfileUpdateEvery, c.Epoch)
	case c.Delta1 <= 0 || c.Delta2 <= 0:
		return fmt.Errorf("verus: deltas must be positive")
	case c.Delta1 > c.Delta2:
		return fmt.Errorf("verus: δ1 (%v) must not exceed δ2 (%v), per §5.3", c.Delta1, c.Delta2)
	case c.R <= 1:
		return fmt.Errorf("verus: R must exceed 1, got %v", c.R)
	case c.AlphaMaxDelay <= 0 || c.AlphaMaxDelay > 1:
		return fmt.Errorf("verus: αₘₐₓ must be in (0,1], got %v", c.AlphaMaxDelay)
	case c.AlphaProfile <= 0 || c.AlphaProfile > 1:
		return fmt.Errorf("verus: α_profile must be in (0,1], got %v", c.AlphaProfile)
	case c.SlowStartExitN <= 1:
		return fmt.Errorf("verus: slow-start exit multiple must exceed 1")
	case c.MultDecrease <= 0 || c.MultDecrease >= 1:
		return fmt.Errorf("verus: multiplicative decrease must be in (0,1), got %v", c.MultDecrease)
	case c.MaxWindow < 1:
		return fmt.Errorf("verus: max window must be >= 1")
	case c.GrowthCap <= 1:
		return fmt.Errorf("verus: growth cap must exceed 1")
	case c.InflightCap < 1:
		return fmt.Errorf("verus: inflight cap must be >= 1")
	case c.DMinWindow < 2*c.Epoch:
		return fmt.Errorf("verus: D_min window must cover at least two epochs")
	case c.RelearnTimeouts < 0:
		return fmt.Errorf("verus: relearn-timeouts threshold must be >= 0, got %d", c.RelearnTimeouts)
	}
	return nil
}

// state is the protocol phase.
type state int

const (
	stateSlowStart state = iota
	stateNormal
	stateRecovery
)

func (s state) String() string {
	switch s {
	case stateSlowStart:
		return "slow-start"
	case stateNormal:
		return "normal"
	default:
		return "loss-recovery"
	}
}

// Verus is the protocol state machine. It implements cc.Controller and must
// be driven from a single goroutine.
type Verus struct {
	cfg Config

	st      state
	profile *delayProfile

	// Delay estimator state (Eq. 2/3). Delays in seconds.
	epochMax   float64 // max delay observed in the current epoch
	haveSample bool    // any delay sample this epoch?
	dMax       float64 // EWMA'd per-epoch maximum delay (D_max,i)
	dMaxPrev   float64 // previous epoch's value, for ΔD
	dMaxPrimed bool
	dMin       float64 // rolling-window minimum delay (D_min)
	dEst       float64 // current delay target (D_est,i)

	// dMin is a rolling minimum over two half-window buckets so it can rise
	// again when the floor changes — e.g. when competing flows impose a
	// standing queue the all-time minimum would never reflect (the paper
	// only says "the minimum delay experienced by Verus"; an all-time
	// minimum starves the flow against loss-based competitors because
	// Eq. 4's ratio case then never releases).
	dMinBuckets  [2]float64
	dMinTicks    int
	ticksPerDMin int

	// Window state.
	w     float64 // current sending window W_i (packets)
	quota float64 // packets still allowed in the current epoch
	ssW   float64 // slow-start window
	ssCap float64 // restarted slow starts exit at this window (ssthresh analogue)
	srtt  time.Duration

	// Loss recovery (Eq. 6 and §4 "Loss Handler").
	wLossExit int // recovery ends when an ack's send tag ≤ current window

	// Profile refit pacing: refit once per ProfileUpdateEvery of epoch
	// ticks. wAtRefit bounds how far the window may explore between refits:
	// lookups in between run against a stale curve, so unbounded per-epoch
	// compounding would outrun the feedback entirely.
	ticksPerRefit int
	tickCount     int
	wAtRefit      float64
	maxWAtRefit   int
	frozen        bool // StaticProfile: profile locked after first fit

	// epochNow is a monotonically increasing epoch counter used to stamp
	// delay-profile points for staleness aging.
	epochNow int64

	// Timeout-epoch recovery state (§4.2, RelearnTimeouts/TimeoutEpochs).
	consecTimeouts int           // RTOs since the last fresh ack
	timeoutAt      time.Duration // when the open timeout epoch began
	timeoutOpen    bool          // a timeout epoch is open

	// Telemetry. Counters are obs instruments so Observe can register them
	// with a metrics registry without copying; Stats/RecoveryStats remain
	// thin adapters reading the same instruments.
	epochs    obs.Counter
	losses    obs.Counter
	timeouts  obs.Counter
	refits    obs.Counter
	staleAcks obs.Counter
	relearns  obs.Counter

	// Observability (nil unless Observe attached one). Purely passive:
	// events carry copies of estimator state; nothing reads back.
	o       *obs.Observer
	obsRun  int64
	obsFlow int32
	gWindow *obs.Gauge
	gTarget *obs.Gauge
}

var _ cc.Controller = (*Verus)(nil)

// New returns a Verus controller with the given configuration; it panics on
// an invalid one (catch with Config.Validate first if the config is
// user-supplied).
func New(cfg Config) *Verus {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	v := &Verus{
		cfg:           cfg,
		st:            stateSlowStart,
		profile:       newDelayProfile(cfg.AlphaProfile),
		ssW:           1,
		ssCap:         math.Inf(1),
		w:             1,
		dMin:          math.Inf(1),
		ticksPerRefit: int(cfg.ProfileUpdateEvery / cfg.Epoch),
		ticksPerDMin:  int(cfg.DMinWindow / (2 * cfg.Epoch)),
	}
	if v.ticksPerRefit < 1 {
		v.ticksPerRefit = 1
	}
	if v.ticksPerDMin < 1 {
		v.ticksPerDMin = 1
	}
	v.dMinBuckets[0] = math.Inf(1)
	v.dMinBuckets[1] = math.Inf(1)
	if cfg.ProfileStaleAfter > 0 {
		v.profile.staleAfter = int64(cfg.ProfileStaleAfter / cfg.Epoch)
	}
	return v
}

// Name implements cc.Controller.
func (v *Verus) Name() string { return fmt.Sprintf("verus(R=%g)", v.cfg.R) }

// State returns the current phase name (for instrumentation).
func (v *Verus) State() string { return v.st.String() }

// Window returns the current sending window estimate in packets.
func (v *Verus) Window() float64 {
	if v.st == stateSlowStart {
		return v.ssW
	}
	return v.w
}

// DelayTarget returns D_est in seconds (0 before slow start exits).
func (v *Verus) DelayTarget() float64 { return v.dEst }

// MinDelay returns D_min in seconds (+Inf before the first ack).
func (v *Verus) MinDelay() float64 { return v.dMin }

// TickInterval implements cc.Controller: Verus is epoch-driven.
func (v *Verus) TickInterval() time.Duration { return v.cfg.Epoch }

// OnAck implements cc.Controller.
func (v *Verus) OnAck(now time.Duration, ack cc.AckSample) {
	d := ack.RTT.Seconds()
	if d <= 0 {
		return
	}
	// Timeout-epoch filter (§4.2): an ack whose packet left before the most
	// recent RTO is a ghost of the pre-outage channel — typically the
	// burst-release after a handover or blackout. Its delay describes a
	// queue that has since been declared dead; folding it into D_min, the
	// estimators, or the profile poisons all three, and letting it clock
	// the restarted slow start double-counts data the timeout already wrote
	// off.
	if v.cfg.TimeoutEpochs && v.timeoutOpen {
		if now-ack.RTT < v.timeoutAt {
			v.staleAcks.Inc()
			return
		}
		v.timeoutOpen = false
		if v.o != nil {
			v.o.Emit(obs.Event{At: now, Kind: obs.KindVerusTimeoutEpoch, Flow: v.obsFlow, Run: v.obsRun,
				Str: "close", V0: float64(v.staleAcks.Value())})
		}
	}
	v.consecTimeouts = 0
	if d < v.dMinBuckets[1] {
		v.dMinBuckets[1] = d
	}
	if d < v.dMin {
		v.dMin = d
	}
	if d > v.epochMax {
		v.epochMax = d
	}
	v.haveSample = true
	if v.srtt == 0 {
		v.srtt = ack.RTT
	} else {
		v.srtt = (7*v.srtt + ack.RTT) / 8
	}

	// The profile reflects what can be sent without losses, so it is not
	// updated during loss recovery (§4): post-loss packets see drained
	// buffers and would bias the curve down. A frozen (static) profile is
	// never updated after its first fit.
	if v.st != stateRecovery && !v.frozen {
		v.profile.update(ack.SentWindow, d, v.epochNow)
	}

	switch v.st {
	case stateSlowStart:
		v.ssW++
		exceedsDelay := v.dMin > 0 && !math.IsInf(v.dMin, 1) && d > v.cfg.SlowStartExitN*v.dMin
		if exceedsDelay || v.ssW >= v.ssCap {
			v.exitSlowStart(now, d)
		}
	case stateRecovery:
		// TCP-like additive growth while recovering: W += 1/W per ack.
		if v.w < float64(v.cfg.MaxWindow) {
			v.w += 1 / math.Max(v.w, 1)
		}
		// Exit once packets sent after the decrease are being acked.
		if ack.SentWindow <= v.wLossExit || ack.SentWindow <= int(v.w+0.5) {
			v.exitRecovery(now)
		}
	}
}

// exitSlowStart transitions to normal operation: the tuples recorded during
// slow start become the initial delay profile (§5.1).
func (v *Verus) exitSlowStart(now time.Duration, currentDelay float64) {
	v.profile.refit(v.epochNow)
	if v.cfg.StaticProfile && v.profile.ready() {
		v.frozen = true
	}
	v.st = stateNormal
	v.w = v.ssW
	// Anchor the target at the observed delay, but never above the delay
	// budget: a slow start that overshot into a loaded queue must not spend
	// seconds stepping its target back down.
	v.dEst = math.Min(math.Max(currentDelay, v.dMin), v.ceiling())
	v.dMax = currentDelay
	v.dMaxPrev = currentDelay
	v.dMaxPrimed = true
	v.quota = 0 // next epoch computes the first S
	v.emitState(now)
}

// exitRecovery resumes delay-profile control after a loss episode. The delay
// target is re-anchored to what the profile predicts for the post-decrease
// window.
func (v *Verus) exitRecovery(now time.Duration) {
	v.st = stateNormal
	if v.profile.ready() {
		if d := v.profile.delayAt(v.w); d > 0 {
			v.dEst = math.Min(math.Max(d, v.dMin), v.ceiling())
		}
	}
	v.quota = 0
	v.emitState(now)
}

// emitState records a protocol phase transition when tracing is attached.
func (v *Verus) emitState(now time.Duration) {
	if v.o == nil {
		return
	}
	v.o.Emit(obs.Event{At: now, Kind: obs.KindVerusState, Flow: v.obsFlow, Run: v.obsRun,
		Str: v.st.String(), V0: v.Window(), V1: v.dEst})
}

// ceiling returns the delay budget: R × D_min plus one aggressive step, the
// level at which Eq. 4's ratio case pushes back.
func (v *Verus) ceiling() float64 {
	if math.IsInf(v.dMin, 1) {
		return math.Inf(1)
	}
	return v.cfg.R*v.dMin + v.cfg.Delta2.Seconds()
}

// OnLoss implements cc.Controller (Eq. 6). Further losses during recovery
// are absorbed by the ongoing episode, like TCP NewReno's one-reduction-per-
// window rule.
func (v *Verus) OnLoss(now time.Duration, loss cc.LossEvent) {
	if v.st == stateRecovery {
		return
	}
	v.losses.Inc()
	wLoss := float64(loss.SentWindow)
	if wLoss <= 0 {
		wLoss = v.Window()
	}
	v.w = math.Max(1, v.cfg.MultDecrease*wLoss)
	v.wLossExit = int(v.w + 0.5)
	v.st = stateRecovery
	v.quota = 0
	v.emitState(now)
}

// OnTimeout implements cc.Controller. The paper: "Verus also uses a timeout
// mechanism similar to TCP in case all packets are lost" — the window
// collapses and the protocol re-probes with slow start (keeping the learned
// profile and D_min).
func (v *Verus) OnTimeout(now time.Duration) {
	v.timeouts.Inc()
	v.consecTimeouts++
	if v.cfg.TimeoutEpochs {
		v.timeoutAt = now
		v.timeoutOpen = true
	}
	// Restarted slow starts must not blast exponentially back into a loaded
	// network: like TCP's ssthresh, exit at half the pre-timeout window.
	v.ssCap = math.Max(2, v.cfg.MultDecrease*v.Window())
	v.st = stateSlowStart
	v.ssW = 1
	v.w = 1
	v.quota = 0
	v.epochMax = 0
	v.haveSample = false
	if v.o != nil {
		v.o.Emit(obs.Event{At: now, Kind: obs.KindVerusTimeout, Flow: v.obsFlow, Run: v.obsRun,
			V0: float64(v.consecTimeouts), V1: v.ssCap})
		if v.cfg.TimeoutEpochs {
			v.o.Emit(obs.Event{At: now, Kind: obs.KindVerusTimeoutEpoch, Flow: v.obsFlow, Run: v.obsRun,
				Str: "open", V0: float64(v.staleAcks.Value())})
		}
	}
	if v.cfg.RelearnTimeouts > 0 && v.consecTimeouts >= v.cfg.RelearnTimeouts {
		v.relearn(now)
	}
}

// relearn discards everything Verus knows about the channel — the delay
// profile, the D_min floor, the delay estimator state — and starts over, as
// §4.2 prescribes after a blackout: repeated RTOs with no ack in between
// mean the bearer the knots were learned on is gone, and a window read off
// that curve is an arbitrary number. The restarted slow start re-probes the
// recovered channel from scratch.
func (v *Verus) relearn(now time.Duration) {
	v.relearns.Inc()
	if v.o != nil {
		v.o.Emit(obs.Event{At: now, Kind: obs.KindVerusRelearn, Flow: v.obsFlow, Run: v.obsRun,
			V0: float64(v.relearns.Value())})
	}
	v.consecTimeouts = 0
	v.profile.reset()
	v.frozen = false // a StaticProfile refreezes after its first new fit
	v.dMin = math.Inf(1)
	v.dMinBuckets[0] = math.Inf(1)
	v.dMinBuckets[1] = math.Inf(1)
	v.dMinTicks = 0
	v.dMax = 0
	v.dMaxPrev = 0
	v.dMaxPrimed = false
	v.dEst = 0
	v.wAtRefit = 0
	v.maxWAtRefit = 0
	// With no floor, a restarted slow start cannot exit on the N×D_min
	// test; let it probe to the ssthresh cap set above.
}

// Tick implements cc.Controller: the per-epoch estimation loop of §4.
func (v *Verus) Tick(now time.Duration) {
	v.epochNow++
	v.dMinTicks++
	if v.dMinTicks >= v.ticksPerDMin {
		v.dMinTicks = 0
		v.rotateDMin()
	}
	v.tickCount++
	// Refit on the paper's 1 s cadence, and additionally whenever the
	// explored window range has outgrown the last interpolation by 50% —
	// exploration against a stale curve is how feedback gets outrun.
	if v.tickCount >= v.ticksPerRefit || v.profile.maxW > v.maxWAtRefit+v.maxWAtRefit/2+1 {
		v.tickCount = 0
		v.wAtRefit = v.w
		v.maxWAtRefit = v.profile.maxW
		if !v.frozen {
			v.profile.refit(v.epochNow)
			v.refits.Inc()
			if v.o != nil {
				v.o.Emit(obs.Event{At: now, Kind: obs.KindVerusRefit, Flow: v.obsFlow, Run: v.obsRun,
					V0: float64(v.profile.numPoints()), V1: float64(v.profile.maxW)})
			}
			if v.cfg.StaticProfile && v.profile.ready() {
				v.frozen = true
			}
		}
	}
	if v.st != stateNormal {
		// Slow start and recovery are ack-clocked; epochs do not drive them.
		v.epochMax = 0
		v.haveSample = false
		return
	}
	v.epochs.Inc()

	// Delay Estimator (Eq. 2, 3). With no samples this epoch there is no
	// new information; carry the previous estimate and leave the target
	// alone rather than inventing an ΔD of zero and growing blindly.
	if v.haveSample {
		if v.dMaxPrimed {
			v.dMax = v.cfg.AlphaMaxDelay*v.dMax + (1-v.cfg.AlphaMaxDelay)*v.epochMax
		} else {
			v.dMax = v.epochMax
			v.dMaxPrimed = true
		}
		deltaD := v.dMax - v.dMaxPrev
		v.dMaxPrev = v.dMax
		v.updateTarget(deltaD)
	}
	v.epochMax = 0
	v.haveSample = false

	// Window Estimator: W_{i+1} from the delay profile (Eq. 1/Fig. 5), then
	// the epoch send quota S_{i+1} (Eq. 5).
	if v.profile.ready() {
		hi := math.Max(v.w*v.cfg.GrowthCap+1, 8)
		// Between refits the curve is stale: bound total exploration since
		// the last refit, or compounding would outrun the re-interpolation
		// feedback by orders of magnitude. Range growth forces refits (see
		// Tick), so this allows roughly one doubling per refresh.
		if v.wAtRefit > 0 {
			hi = math.Min(hi, math.Max(2*v.wAtRefit, 8))
		}
		hi = math.Min(hi, float64(v.cfg.MaxWindow))
		wNext, _ := v.profile.lookup(v.dEst, hi)
		v.setQuota(wNext)
	} else {
		// No profile yet (e.g. slow start exited on loss after very few
		// acks): keep a one-packet-per-epoch trickle so acks keep coming.
		v.quota = 1
	}
	if v.o != nil {
		v.o.Emit(obs.Event{At: now, Kind: obs.KindVerusEpoch, Flow: v.obsFlow, Run: v.obsRun,
			V0: v.dMax, V1: v.dEst, V2: v.w, V3: v.quota})
		v.gWindow.Set(v.w)
		v.gTarget.Set(v.dEst)
	}
}

// rotateDMin advances the rolling-minimum window: the older half-bucket is
// discarded and D_min becomes the minimum over the remaining half plus new
// samples. If no samples arrived in the whole window, the previous D_min is
// kept (a silent channel should not erase the floor).
func (v *Verus) rotateDMin() {
	v.dMinBuckets[0] = v.dMinBuckets[1]
	v.dMinBuckets[1] = math.Inf(1)
	m := math.Min(v.dMinBuckets[0], v.dMinBuckets[1])
	if !math.IsInf(m, 1) {
		v.dMin = m
	}
}

// updateTarget applies Eq. 4. The floor is D_min + δ1 rather than the bare
// D_min of the paper's second case: a target exactly at the historical
// minimum is unreachable on the delay profile (every point sits above the
// minimum by construction), which would collapse the window to nothing each
// time the ratio case overshoots. One restrictive step of headroom keeps the
// lookup meaningful while preserving the floor's intent.
func (v *Verus) updateTarget(deltaD float64) {
	d1 := v.cfg.Delta1.Seconds()
	d2 := v.cfg.Delta2.Seconds()
	floor := v.dMin + d1
	switch {
	case v.dMax/v.dMin > v.cfg.R:
		v.dEst = math.Max(floor, v.dEst-d2)
	case deltaD > 0:
		v.dEst = math.Max(floor, v.dEst-d1)
	default:
		v.dEst += d2
	}
	// The target cannot meaningfully exceed the delay budget by much; keep
	// it within R×D_min plus one aggressive step so it can still trigger
	// the ratio case above.
	if c := v.ceiling(); v.dEst > c {
		v.dEst = c
	}
}

// setQuota computes S_{i+1} (Eq. 5) for the epoch that just started. S is
// fractional (with n epochs per RTT it is roughly W/n), so the fractional
// part of any unspent credit carries over; otherwise a quota below one
// packet per epoch would floor to zero sends forever. Unsent whole packets
// do not carry (they would burst after a stall).
func (v *Verus) setQuota(wNext float64) {
	n := math.Ceil(v.srtt.Seconds() / v.cfg.Epoch.Seconds())
	if n < 2 {
		n = 2
	}
	s := wNext + (2-n)/(n-1)*v.w
	if s < 0 {
		s = 0
	}
	carry := v.quota - math.Floor(v.quota)
	if carry < 0 {
		carry = 0
	}
	v.w = wNext
	v.quota = carry + s
}

// Allowance implements cc.Controller.
func (v *Verus) Allowance(now time.Duration, inflight int) int {
	switch v.st {
	case stateSlowStart:
		return int(v.ssW) - inflight
	case stateRecovery:
		return int(v.w) - inflight
	default:
		q := int(v.quota)
		cap := int(v.cfg.InflightCap*v.w) - inflight
		if cap < 0 {
			cap = 0
		}
		if q > cap {
			q = cap
		}
		return q
	}
}

// SendTag implements cc.Controller: packets are stamped with the sending
// window they belong to, so delays and losses can be attributed to it.
func (v *Verus) SendTag() int {
	w := int(v.Window() + 0.5)
	if w < 1 {
		w = 1
	}
	return w
}

// OnSend implements cc.Controller.
func (v *Verus) OnSend(now time.Duration, seq int64, inflight int) {
	if v.st == stateNormal {
		v.quota--
		if v.quota < 0 {
			v.quota = 0
		}
	}
}

// ProfileSnapshot returns the current delay-profile points and, when a curve
// exists, its interpolated values sampled at each integer window up to the
// largest observed one — the data behind paper Fig. 5 and Fig. 7b.
func (v *Verus) ProfileSnapshot() (windows []int, pointDelays []float64, curve []float64) {
	windows, pointDelays = v.profile.snapshotPoints()
	if v.profile.ready() && v.profile.maxW >= 1 {
		curve = make([]float64, v.profile.maxW)
		for w := 1; w <= v.profile.maxW; w++ {
			curve[w-1] = v.profile.delayAt(float64(w))
		}
	}
	return windows, pointDelays, curve
}

// Stats returns counters for instrumentation: epochs run, losses handled,
// timeouts, and profile refits. It is a thin adapter over the same obs
// counters Observe registers with a metrics registry.
func (v *Verus) Stats() (epochs, losses, timeouts, refits int64) {
	return v.epochs.Value(), v.losses.Value(), v.timeouts.Value(), v.refits.Value()
}

// RecoveryStats returns the §4.2 recovery-path counters: acks discarded by
// the timeout-epoch filter and full profile re-learns after consecutive
// timeouts. Both stay zero under DefaultConfig. Like Stats, it reads the
// registry-visible instruments.
func (v *Verus) RecoveryStats() (staleAcks, relearns int64) {
	return v.staleAcks.Value(), v.relearns.Value()
}

// Observe implements obs.Observable: it attaches the observer for event
// tracing and registers the telemetry counters under per-flow, per-run
// labeled series. Call before driving the controller; a nil observer (or
// never calling Observe) leaves the disabled nil-check fast path in place.
func (v *Verus) Observe(o *obs.Observer, run int64, flow int) {
	if o == nil {
		return
	}
	v.o = o
	v.obsRun = run
	v.obsFlow = int32(flow)
	label := func(name string) string {
		return obs.Labeled(name, "flow", strconv.Itoa(flow), "run", strconv.FormatInt(run, 10))
	}
	o.RegisterCounter(label("verus_epochs_total"), &v.epochs)
	o.RegisterCounter(label("verus_losses_total"), &v.losses)
	o.RegisterCounter(label("verus_timeouts_total"), &v.timeouts)
	o.RegisterCounter(label("verus_refits_total"), &v.refits)
	o.RegisterCounter(label("verus_stale_acks_total"), &v.staleAcks)
	o.RegisterCounter(label("verus_relearns_total"), &v.relearns)
	v.gWindow = o.Gauge(label("verus_window_pkts"))
	v.gTarget = o.Gauge(label("verus_delay_target_seconds"))
}
