package verus

import (
	"fmt"

	"repro/internal/snap"
)

// Checkpoint support (DESIGN.md §15). The controller serializes every mutable
// field of the state machine plus the delay profile; configuration and the
// derived tick divisors are rebuilt. Infinities (the unprimed D_min, the
// unset ssthresh cap) round-trip bit-exactly through the F64 codec.

// snapshot writes the profile's knots and, when a curve is fitted, the exact
// (xs, ys) inputs of the last successful refit. The spline itself is not
// serialized: Restore re-runs RefitSorted on those inputs, which is
// deterministic, so the restored curve is bit-identical. Re-fitting from the
// *current* knots instead would be wrong — knots updated since the last refit
// (dirty profile) would produce a curve the live run does not have yet.
func (p *delayProfile) snapshot(e *snap.Encoder) {
	e.Tag("profile")
	wins := make([]int64, len(p.wins))
	for i, w := range p.wins {
		wins[i] = int64(w)
	}
	e.I64s(wins)
	e.F64s(p.delays)
	e.I64s(p.stamps)
	e.Int(p.maxW)
	e.Bool(p.dirty)
	e.Bool(p.splReady)
	if p.splReady {
		e.F64s(p.xs)
		e.F64s(p.ys)
	}
}

// restore consumes snapshot's fields and re-interpolates the saved curve.
func (p *delayProfile) restore(d *snap.Decoder) {
	d.Expect("profile")
	wins := d.I64s()
	delays := d.F64s()
	stamps := d.I64s()
	maxW := d.Int()
	dirty := d.Bool()
	splReady := d.Bool()
	if d.Err() != nil {
		return
	}
	if len(wins) != len(delays) || len(wins) != len(stamps) {
		d.Fail(fmt.Errorf("verus: profile snapshot has %d windows, %d delays, %d stamps", len(wins), len(delays), len(stamps)))
		return
	}
	p.wins = p.wins[:0]
	for _, w := range wins {
		p.wins = append(p.wins, int(w))
	}
	p.delays = append(p.delays[:0], delays...)
	p.stamps = append(p.stamps[:0], stamps...)
	p.maxW = maxW
	p.dirty = dirty
	p.splReady = false
	if splReady {
		xs := d.F64s()
		ys := d.F64s()
		if d.Err() != nil {
			return
		}
		p.xs = append(p.xs[:0], xs...)
		p.ys = append(p.ys[:0], ys...)
		if err := p.spl.RefitSorted(p.xs, p.ys); err != nil {
			d.Fail(fmt.Errorf("verus: re-interpolating checkpointed profile: %w", err))
			return
		}
		p.splReady = true
	}
}

// Snapshot implements snap.Snapshotter.
func (v *Verus) Snapshot(e *snap.Encoder) {
	e.Tag("verus")
	e.Int(int(v.st))
	v.profile.snapshot(e)
	e.F64(v.epochMax)
	e.Bool(v.haveSample)
	e.F64(v.dMax)
	e.F64(v.dMaxPrev)
	e.Bool(v.dMaxPrimed)
	e.F64(v.dMin)
	e.F64(v.dEst)
	e.F64(v.dMinBuckets[0])
	e.F64(v.dMinBuckets[1])
	e.Int(v.dMinTicks)
	e.F64(v.w)
	e.F64(v.quota)
	e.F64(v.ssW)
	e.F64(v.ssCap)
	e.Dur(v.srtt)
	e.Int(v.wLossExit)
	e.Int(v.tickCount)
	e.F64(v.wAtRefit)
	e.Int(v.maxWAtRefit)
	e.Bool(v.frozen)
	e.I64(v.epochNow)
	e.Int(v.consecTimeouts)
	e.Dur(v.timeoutAt)
	e.Bool(v.timeoutOpen)
	e.I64(v.epochs.Value())
	e.I64(v.losses.Value())
	e.I64(v.timeouts.Value())
	e.I64(v.refits.Value())
	e.I64(v.staleAcks.Value())
	e.I64(v.relearns.Value())
}

// Restore implements snap.Snapshotter. Observability attachments (Observe)
// are re-made by the rebuild; only the counter values carry over.
func (v *Verus) Restore(d *snap.Decoder) {
	d.Expect("verus")
	st := d.Int()
	if st < int(stateSlowStart) || st > int(stateRecovery) {
		d.Fail(fmt.Errorf("verus: snapshot has unknown protocol state %d", st))
		return
	}
	v.st = state(st)
	v.profile.restore(d)
	v.epochMax = d.F64()
	v.haveSample = d.Bool()
	v.dMax = d.F64()
	v.dMaxPrev = d.F64()
	v.dMaxPrimed = d.Bool()
	v.dMin = d.F64()
	v.dEst = d.F64()
	v.dMinBuckets[0] = d.F64()
	v.dMinBuckets[1] = d.F64()
	v.dMinTicks = d.Int()
	v.w = d.F64()
	v.quota = d.F64()
	v.ssW = d.F64()
	v.ssCap = d.F64()
	v.srtt = d.Dur()
	v.wLossExit = d.Int()
	v.tickCount = d.Int()
	v.wAtRefit = d.F64()
	v.maxWAtRefit = d.Int()
	v.frozen = d.Bool()
	v.epochNow = d.I64()
	v.consecTimeouts = d.Int()
	v.timeoutAt = d.Dur()
	v.timeoutOpen = d.Bool()
	v.epochs.Restore(d.I64())
	v.losses.Restore(d.I64())
	v.timeouts.Restore(d.I64())
	v.refits.Restore(d.I64())
	v.staleAcks.Restore(d.I64())
	v.relearns.Restore(d.I64())
}
