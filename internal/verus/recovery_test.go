package verus

import (
	"math"
	"testing"
	"time"

	"repro/internal/cc"
)

// Unit pins for the §4.2 loss/timeout recovery paths. Until PR 4 these
// transitions were exercised only incidentally through integration runs;
// these tests nail each one down at the state-machine level.

// toNormal drives a fresh controller out of slow start into the normal
// state: a few low-delay acks establish D_min and profile points, then one
// ack above N×D_min triggers the exit.
func toNormal(t *testing.T, v *Verus) {
	t.Helper()
	for i := 1; i <= 20; i++ {
		ack(v, msd(10+float64(i%3)), i)
	}
	ack(v, msd(10*float64(v.cfg.SlowStartExitN)+50), 21)
	if v.st != stateNormal {
		t.Fatalf("setup: state = %v after delay spike, want normal", v.st)
	}
}

// TestEq6MultiplicativeDecrease pins Eq. 6: on loss the window becomes
// M × W_i where W_i is the send tag of the lost packet, and the controller
// enters loss recovery.
func TestEq6MultiplicativeDecrease(t *testing.T) {
	v := New(DefaultConfig())
	toNormal(t, v)
	v.OnLoss(time.Second, cc.LossEvent{Seq: 1, SentWindow: 40})
	if v.st != stateRecovery {
		t.Fatalf("state after loss = %v, want recovery", v.st)
	}
	if got, want := v.Window(), 0.5*40.0; got != want {
		t.Fatalf("window after loss = %v, want M×W_loss = %v", got, want)
	}

	// One reduction per episode: a second loss inside recovery must not
	// halve again (NewReno-style).
	v.OnLoss(time.Second, cc.LossEvent{Seq: 2, SentWindow: 18})
	if got := v.Window(); got != 20 {
		t.Fatalf("second loss inside recovery changed window to %v, want 20", got)
	}
	if _, losses, _, _ := v.Stats(); losses != 1 {
		t.Fatalf("losses counter = %d, want 1 (episode absorbs later losses)", losses)
	}

	// Eq. 6 floors at one packet.
	v2 := New(DefaultConfig())
	toNormal(t, v2)
	v2.OnLoss(time.Second, cc.LossEvent{Seq: 1, SentWindow: 1})
	if got := v2.Window(); got != 1 {
		t.Fatalf("window after loss of tag-1 packet = %v, want floor of 1", got)
	}
}

// TestRecoveryExit pins the episode end: recovery exits once an ack arrives
// for a packet sent at or below the post-decrease window, and the delay
// target re-anchors to the profile's prediction for the new window.
func TestRecoveryExit(t *testing.T) {
	v := New(DefaultConfig())
	toNormal(t, v)
	v.OnLoss(time.Second, cc.LossEvent{Seq: 1, SentWindow: 40})
	// Acks tagged above both the exit tag (20) and the current window keep
	// the episode open and grow the window additively.
	wBefore := v.Window()
	ack(v, msd(12), 39)
	if v.st != stateRecovery {
		t.Fatal("high-tag ack ended recovery early")
	}
	if got := v.Window(); got <= wBefore {
		t.Fatalf("recovery ack did not grow window additively: %v -> %v", wBefore, got)
	}
	// An ack tagged at the exit window closes the episode.
	ack(v, msd(12), 20)
	if v.st != stateNormal {
		t.Fatalf("state after exit-tag ack = %v, want normal", v.st)
	}
	if v.dEst <= 0 {
		t.Fatal("recovery exit left no delay target")
	}
	if c := v.ceiling(); v.dEst > c {
		t.Fatalf("re-anchored target %v above the delay budget %v", v.dEst, c)
	}
}

// TestTimeoutEntersCappedSlowStart pins the R_timeout transition: the window
// collapses to 1, the state returns to slow start, and the restarted slow
// start exits at M × the pre-timeout window (the ssthresh analogue).
func TestTimeoutEntersCappedSlowStart(t *testing.T) {
	v := New(DefaultConfig())
	toNormal(t, v)
	v.w = 60
	v.OnTimeout(2 * time.Second)
	if v.st != stateSlowStart {
		t.Fatalf("state after timeout = %v, want slow-start", v.st)
	}
	if got := v.Window(); got != 1 {
		t.Fatalf("window after timeout = %v, want 1", got)
	}
	if got, want := v.ssCap, 30.0; got != want {
		t.Fatalf("ssCap = %v, want M × pre-timeout window = %v", got, want)
	}
	// Low-delay acks now grow the restarted slow start; it must cap at
	// ssCap instead of probing exponentially past the old operating point.
	for i := 0; i < 60 && v.st == stateSlowStart; i++ {
		ack(v, msd(10), 5)
	}
	if v.st != stateNormal {
		t.Fatal("restarted slow start never exited at its cap")
	}
	if got := v.Window(); got > 31 {
		t.Fatalf("restarted slow start exited at window %v, past ssCap 30", got)
	}
}

// TestTimeoutEpochFiltersStaleAcks pins the TimeoutEpochs behavior: after an
// RTO, acks for packets sent before the timeout (burst-released ghosts) are
// discarded — they touch neither the slow-start clock, D_min, nor the
// profile — while a fresh ack closes the epoch and is processed normally.
func TestTimeoutEpochFiltersStaleAcks(t *testing.T) {
	cfg := ResilientConfig()
	cfg.RelearnTimeouts = 0 // isolate the epoch filter
	v := New(cfg)
	toNormal(t, v)
	at := 10 * time.Second
	v.OnTimeout(at)
	dMinBefore := v.dMin
	ssWBefore := v.ssW

	// Sent at 9.7 s (RTT 400 ms from 10.1 s), i.e. before the timeout:
	// a queue ghost with a huge delay. Must be dropped entirely.
	v.OnAck(at+100*time.Millisecond, cc.AckSample{RTT: 400 * time.Millisecond, SentWindow: 50, Bytes: 1400})
	if v.ssW != ssWBefore {
		t.Fatal("stale ack advanced the restarted slow start")
	}
	if v.dMin != dMinBefore {
		t.Fatal("stale ack moved D_min")
	}
	if stale, _ := v.RecoveryStats(); stale != 1 {
		t.Fatalf("staleAcks = %d, want 1", stale)
	}

	// A very small RTT also filters: what matters is the send time, not
	// the delay magnitude. Sent at 10.05 − 0.2 = 9.85 s < 10 s.
	v.OnAck(at+50*time.Millisecond, cc.AckSample{RTT: 200 * time.Millisecond, SentWindow: 2, Bytes: 1400})
	if stale, _ := v.RecoveryStats(); stale != 2 {
		t.Fatalf("staleAcks = %d, want 2", stale)
	}

	// Fresh ack: sent at 10.35 s, after the timeout. Processed, closes the
	// epoch, and subsequent pre-timeout send times are irrelevant.
	v.OnAck(at+400*time.Millisecond, cc.AckSample{RTT: 50 * time.Millisecond, SentWindow: 2, Bytes: 1400})
	if v.ssW != ssWBefore+1 {
		t.Fatal("fresh ack did not advance slow start")
	}
	if stale, _ := v.RecoveryStats(); stale != 2 {
		t.Fatal("fresh ack was filtered")
	}

	// Under DefaultConfig the filter is off: the same ghost ack would have
	// been processed (digest-preserving default).
	vOff := New(DefaultConfig())
	toNormal(t, vOff)
	vOff.OnTimeout(at)
	before := vOff.ssW
	vOff.OnAck(at+100*time.Millisecond, cc.AckSample{RTT: 400 * time.Millisecond, SentWindow: 50, Bytes: 1400})
	if vOff.ssW != before+1 {
		t.Fatal("DefaultConfig filtered a stale ack; recovery behaviors must be opt-in")
	}
}

// TestRelearnAfterConsecutiveTimeouts pins the blackout recovery: two RTOs
// with no intervening ack wipe the profile and delay floor, while a single
// timeout — or two separated by an ack — keeps the learned state.
func TestRelearnAfterConsecutiveTimeouts(t *testing.T) {
	v := New(ResilientConfig())
	toNormal(t, v)
	if v.profile.numPoints() == 0 {
		t.Fatal("setup: no profile points learned")
	}

	v.OnTimeout(5 * time.Second)
	if _, relearns := v.RecoveryStats(); relearns != 0 {
		t.Fatal("single timeout triggered a relearn; threshold is 2")
	}
	if v.profile.numPoints() == 0 {
		t.Fatal("single timeout wiped the profile")
	}

	// An ack (fresh: sent after the RTO) resets the consecutive count.
	v.OnAck(6*time.Second, cc.AckSample{RTT: 20 * time.Millisecond, SentWindow: 2, Bytes: 1400})
	v.OnTimeout(7 * time.Second)
	if _, relearns := v.RecoveryStats(); relearns != 0 {
		t.Fatal("ack-separated timeouts triggered a relearn")
	}

	// Second consecutive RTO: blackout. Everything resets.
	v.OnTimeout(8 * time.Second)
	if _, relearns := v.RecoveryStats(); relearns != 1 {
		t.Fatal("two consecutive timeouts did not trigger a relearn")
	}
	if v.profile.numPoints() != 0 || v.profile.ready() {
		t.Fatal("relearn kept stale profile knots")
	}
	if !math.IsInf(v.dMin, 1) {
		t.Fatalf("relearn kept stale D_min = %v", v.dMin)
	}
	if v.dEst != 0 || v.dMaxPrimed {
		t.Fatal("relearn kept stale delay-estimator state")
	}

	// The controller re-learns: post-outage acks rebuild floor and profile.
	for i := 1; i <= 30; i++ {
		v.OnAck(9*time.Second+time.Duration(i)*time.Millisecond,
			cc.AckSample{RTT: 30 * time.Millisecond, SentWindow: i, Bytes: 1400})
	}
	if v.profile.numPoints() == 0 {
		t.Fatal("profile did not rebuild after relearn")
	}
	if math.IsInf(v.dMin, 1) {
		t.Fatal("D_min did not rebuild after relearn")
	}

	// DefaultConfig never relearns, however many timeouts pile up.
	vOff := New(DefaultConfig())
	toNormal(t, vOff)
	for i := 0; i < 5; i++ {
		vOff.OnTimeout(time.Duration(10+i) * time.Second)
	}
	if _, relearns := vOff.RecoveryStats(); relearns != 0 {
		t.Fatal("DefaultConfig relearned; recovery behaviors must be opt-in")
	}
	if vOff.profile.numPoints() == 0 {
		t.Fatal("DefaultConfig wiped the profile on timeouts")
	}
}
