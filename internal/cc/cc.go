// Package cc defines the congestion-controller interface shared by the Verus
// protocol, the legacy TCP baselines, and the Sprout-like forecaster. A
// Controller is a pure decision engine: it never touches sockets or
// simulator internals, so the same implementation runs unchanged inside the
// discrete-event simulator (internal/netsim) and the real UDP transport
// (internal/transport).
package cc

import "time"

// AckSample carries everything a controller may need from one received
// acknowledgement.
type AckSample struct {
	// Seq is the sequence number of the acknowledged packet.
	Seq int64
	// RTT is the measured round-trip time of the acknowledged packet.
	RTT time.Duration
	// SentWindow is the controller-provided tag recorded when the packet
	// was sent (see Controller.SendTag). Verus uses it to attribute delays
	// to the window size that caused them.
	SentWindow int
	// Inflight is the number of unacknowledged packets after processing
	// this acknowledgement.
	Inflight int
	// Bytes is the size of the acknowledged packet.
	Bytes int
}

// LossEvent describes one detected packet loss.
type LossEvent struct {
	// Seq is the sequence number of the lost packet.
	Seq int64
	// SentWindow is the tag recorded when the lost packet was sent: the
	// paper's W_loss, "the sending window in which the loss occurred".
	SentWindow int
	// Inflight is the number of unacknowledged packets after removing the
	// lost one.
	Inflight int
}

// Controller is the congestion-control decision engine. All methods are
// invoked from a single goroutine (the simulator loop or the transport's
// event loop); implementations need no internal locking.
type Controller interface {
	// Name identifies the algorithm in reports (e.g. "verus", "cubic").
	Name() string

	// OnAck is invoked for every acknowledgement received.
	OnAck(now time.Duration, ack AckSample)

	// OnLoss is invoked when the host detects a packet loss (duplicate-ack
	// style or per-packet timer). Controllers implement their own recovery
	// logic, including ignoring further losses while already recovering.
	OnLoss(now time.Duration, loss LossEvent)

	// OnTimeout is invoked on a retransmission timeout (the whole window is
	// presumed lost).
	OnTimeout(now time.Duration)

	// TickInterval returns the period at which Tick must be called, or 0 if
	// the controller is purely ack-clocked. Verus returns its epoch ε.
	TickInterval() time.Duration

	// Tick advances controller time; called every TickInterval when that is
	// positive, never otherwise.
	Tick(now time.Duration)

	// Allowance reports how many packets the host may transmit right now,
	// given the current number of unacknowledged packets. Window-based
	// controllers return window − inflight; epoch-based controllers return
	// the unspent part of the current epoch's quota. The host calls this
	// after every event and sends min(Allowance, available data) packets.
	Allowance(now time.Duration, inflight int) int

	// SendTag returns the value to stamp on an outgoing packet; it is
	// echoed back in AckSample.SentWindow / LossEvent.SentWindow. Verus
	// returns its current sending window; others may return 0.
	SendTag() int

	// OnSend informs the controller that one packet was transmitted.
	OnSend(now time.Duration, seq int64, inflight int)
}
