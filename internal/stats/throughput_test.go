package stats

import (
	"math"
	"testing"
	"time"
)

func TestThroughputSeriesWindows(t *testing.T) {
	s := NewThroughputSeries(time.Second)
	s.Add(100*time.Millisecond, 125_000) // 1 Mbit in window 0
	s.Add(1500*time.Millisecond, 250_000)
	s.Add(1600*time.Millisecond, 0)
	mbps := s.Mbps()
	if len(mbps) != 2 {
		t.Fatalf("windows = %d, want 2", len(mbps))
	}
	if math.Abs(mbps[0]-1.0) > 1e-12 {
		t.Errorf("window 0 = %v Mbps, want 1", mbps[0])
	}
	if math.Abs(mbps[1]-2.0) > 1e-12 {
		t.Errorf("window 1 = %v Mbps, want 2", mbps[1])
	}
	if math.Abs(s.MeanMbps()-1.5) > 1e-12 {
		t.Errorf("mean = %v, want 1.5", s.MeanMbps())
	}
	if s.TotalBytes() != 375_000 {
		t.Errorf("total = %d, want 375000", s.TotalBytes())
	}
}

func TestThroughputSeriesOutOfOrder(t *testing.T) {
	s := NewThroughputSeries(100 * time.Millisecond)
	s.Add(950*time.Millisecond, 10)
	s.Add(50*time.Millisecond, 20)
	if s.NumWindows() != 10 {
		t.Fatalf("windows = %d, want 10", s.NumWindows())
	}
	mbps := s.Mbps()
	if mbps[0] <= 0 || mbps[9] <= 0 {
		t.Fatal("out-of-order adds lost")
	}
	for i := 1; i < 9; i++ {
		if mbps[i] != 0 {
			t.Fatalf("window %d should be empty", i)
		}
	}
}

func TestThroughputSeriesNegativeTimeIgnored(t *testing.T) {
	s := NewThroughputSeries(time.Second)
	s.Add(-time.Second, 100)
	if s.NumWindows() != 0 || s.TotalBytes() != 0 {
		t.Fatal("negative-time sample should be dropped")
	}
}

func TestThroughputSeriesEmptyMean(t *testing.T) {
	s := NewThroughputSeries(time.Second)
	if s.MeanMbps() != 0 {
		t.Fatal("empty mean should be 0")
	}
}

func TestThroughputSeriesInvalidWindowPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero window did not panic")
		}
	}()
	NewThroughputSeries(0)
}
