package stats

import (
	"math"
	"strings"
	"testing"
)

func TestLogHistogramBucketing(t *testing.T) {
	h := NewLogHistogram(1, 10, 4) // edges 1, 10, 100, 1000, 10000
	h.Add(5)                       // bucket 0
	h.Add(50)                      // bucket 1
	h.Add(500)                     // bucket 2
	h.Add(5000)                    // bucket 3
	h.Add(1e9)                     // clamps to bucket 3
	h.Add(0.5)                     // underflow
	if h.Total() != 6 {
		t.Fatalf("Total = %d, want 6", h.Total())
	}
	centers, dens := h.PDF()
	if len(centers) != 4 {
		t.Fatalf("non-empty buckets = %d, want 4", len(centers))
	}
	for i := 1; i < len(centers); i++ {
		if centers[i] <= centers[i-1] {
			t.Fatal("PDF centers not increasing")
		}
	}
	// Bucket 3 holds 2 of 6 samples over width 10000-1000.
	wantDensity := 2.0 / 6.0 / 9000.0
	if math.Abs(dens[3]-wantDensity) > 1e-15 {
		t.Fatalf("density[3] = %v, want %v", dens[3], wantDensity)
	}
}

func TestLogHistogramEdges(t *testing.T) {
	h := NewLogHistogram(2, 2, 8)
	if got := h.BucketEdge(0); got != 2 {
		t.Fatalf("edge 0 = %v, want 2", got)
	}
	if got := h.BucketEdge(3); math.Abs(got-16) > 1e-12 {
		t.Fatalf("edge 3 = %v, want 16", got)
	}
}

func TestLogHistogramEmptyPDF(t *testing.T) {
	h := NewLogHistogram(1, 2, 4)
	c, d := h.PDF()
	if c != nil || d != nil {
		t.Fatal("empty histogram should return nil PDF")
	}
	if h.String() != "" {
		t.Fatal("empty histogram should stringify to empty")
	}
}

func TestLogHistogramPDFIntegratesToCapturedFraction(t *testing.T) {
	h := NewLogHistogram(1, 2, 20)
	for i := 1; i <= 1000; i++ {
		h.Add(float64(i))
	}
	centers, dens := h.PDF()
	var integral float64
	for i := range centers {
		// Width of the bucket the center belongs to.
		k := int(math.Log(centers[i]) / math.Log(2))
		lo := h.BucketEdge(k)
		hi := h.BucketEdge(k + 1)
		integral += dens[i] * (hi - lo)
	}
	if math.Abs(integral-1) > 1e-9 {
		t.Fatalf("PDF should integrate to 1 (no underflow), got %v", integral)
	}
}

func TestLogHistogramString(t *testing.T) {
	h := NewLogHistogram(1, 10, 3)
	h.Add(5)
	h.Add(50)
	s := h.String()
	if !strings.Contains(s, "0.5") {
		t.Fatalf("expected per-bucket fraction 0.5 in %q", s)
	}
}

func TestLogHistogramInvalidParamsPanics(t *testing.T) {
	cases := []struct {
		min, base float64
		n         int
	}{
		{0, 2, 4}, {1, 1, 4}, {1, 2, 0},
	}
	for _, c := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewLogHistogram(%v,%v,%d) did not panic", c.min, c.base, c.n)
				}
			}()
			NewLogHistogram(c.min, c.base, c.n)
		}()
	}
}
