package stats

import "time"

// WindowedMean accumulates (time, value) samples into fixed windows and
// reports the per-window mean — used for delay-over-time plots (Fig. 11) and
// any other time series of averages.
type WindowedMean struct {
	window time.Duration
	sums   []float64
	counts []int64
}

// NewWindowedMean returns a series with the given window size.
func NewWindowedMean(window time.Duration) *WindowedMean {
	if window <= 0 {
		panic("stats: windowed mean window must be positive")
	}
	return &WindowedMean{window: window}
}

// Add records one sample at time t.
func (s *WindowedMean) Add(t time.Duration, v float64) {
	if t < 0 {
		return
	}
	w := int(t / s.window)
	for len(s.sums) <= w {
		s.sums = append(s.sums, 0)
		s.counts = append(s.counts, 0)
	}
	s.sums[w] += v
	s.counts[w]++
}

// Means returns the per-window means; windows with no samples are NaN-free
// zeros.
func (s *WindowedMean) Means() []float64 {
	out := make([]float64, len(s.sums))
	for i := range s.sums {
		if s.counts[i] > 0 {
			out[i] = s.sums[i] / float64(s.counts[i])
		}
	}
	return out
}

// NumWindows returns the number of windows spanned so far.
func (s *WindowedMean) NumWindows() int { return len(s.sums) }
