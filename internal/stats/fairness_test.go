package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestJainPerfectFairness(t *testing.T) {
	if got := JainIndex([]float64{5, 5, 5, 5}); math.Abs(got-1) > 1e-12 {
		t.Fatalf("equal allocations: got %v, want 1", got)
	}
}

func TestJainWorstCase(t *testing.T) {
	// One user hogs everything: index = 1/n.
	got := JainIndex([]float64{10, 0, 0, 0})
	if math.Abs(got-0.25) > 1e-12 {
		t.Fatalf("single hog of 4: got %v, want 0.25", got)
	}
}

func TestJainKnownValue(t *testing.T) {
	// (1+2+3)^2 / (3 * (1+4+9)) = 36/42
	got := JainIndex([]float64{1, 2, 3})
	want := 36.0 / 42.0
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestJainDegenerate(t *testing.T) {
	if JainIndex(nil) != 1 {
		t.Error("empty allocation should be 1")
	}
	if JainIndex([]float64{0, 0}) != 1 {
		t.Error("all-zero allocation should be 1")
	}
}

// Property: Jain's index lies in [1/n, 1] and is scale-invariant.
func TestJainBoundsAndScaleInvariance(t *testing.T) {
	f := func(raw []float64, scaleSeed uint8) bool {
		x := make([]float64, 0, len(raw))
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			// Keep magnitudes where v*v and their sum stay finite.
			if a := math.Abs(v); a < 1e150 {
				x = append(x, a)
			}
		}
		if len(x) == 0 {
			return true
		}
		idx := JainIndex(x)
		n := float64(len(x))
		if idx < 1/n-1e-9 || idx > 1+1e-9 {
			return false
		}
		scale := 1 + float64(scaleSeed)
		scaled := make([]float64, len(x))
		allFinite := true
		for i, v := range x {
			scaled[i] = v * scale
			if math.IsInf(scaled[i], 0) {
				allFinite = false
			}
		}
		if !allFinite {
			return true
		}
		idx2 := JainIndex(scaled)
		return math.Abs(idx-idx2) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestWindowedJain(t *testing.T) {
	// Two flows, perfectly fair in window 0, totally unfair in window 1.
	series := [][]float64{
		{1, 2},
		{1, 0},
	}
	got := WindowedJain(series)
	want := (1.0 + 0.5) / 2
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestWindowedJainSkipsIdleWindows(t *testing.T) {
	series := [][]float64{
		{0, 4},
		{0, 4},
	}
	if got := WindowedJain(series); math.Abs(got-1) > 1e-12 {
		t.Fatalf("idle window should be skipped: got %v", got)
	}
}

func TestWindowedJainRaggedRows(t *testing.T) {
	series := [][]float64{
		{2, 2, 2},
		{2},
	}
	// Window 0: {2,2} -> 1. Windows 1,2: {2} alone -> 1.
	if got := WindowedJain(series); math.Abs(got-1) > 1e-12 {
		t.Fatalf("got %v, want 1", got)
	}
}

func TestWindowedJainEmpty(t *testing.T) {
	if WindowedJain(nil) != 1 {
		t.Error("no series should yield 1")
	}
	if WindowedJain([][]float64{{}, {}}) != 1 {
		t.Error("empty rows should yield 1")
	}
}
