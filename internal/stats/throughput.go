package stats

import "time"

// ThroughputSeries accumulates (time, bytes) delivery events into fixed-size
// windows and reports per-window throughput in bits per second. It backs the
// windowed-throughput plots (Fig. 4, 11-14) and the 1-second fairness windows
// of Table 1.
type ThroughputSeries struct {
	window time.Duration
	bytes  []int64
}

// NewThroughputSeries returns a series with the given window size.
func NewThroughputSeries(window time.Duration) *ThroughputSeries {
	if window <= 0 {
		panic("stats: throughput window must be positive")
	}
	return &ThroughputSeries{window: window}
}

// Add records that n bytes were delivered at time t (relative to the start of
// the measurement). Events may arrive out of order.
func (s *ThroughputSeries) Add(t time.Duration, n int) {
	if t < 0 {
		return
	}
	w := int(t / s.window)
	for len(s.bytes) <= w {
		s.bytes = append(s.bytes, 0)
	}
	s.bytes[w] += int64(n)
}

// Window returns the configured window size.
func (s *ThroughputSeries) Window() time.Duration { return s.window }

// NumWindows returns the number of windows spanned so far.
func (s *ThroughputSeries) NumWindows() int { return len(s.bytes) }

// Mbps returns per-window throughput in megabits per second.
func (s *ThroughputSeries) Mbps() []float64 {
	out := make([]float64, len(s.bytes))
	secs := s.window.Seconds()
	for i, b := range s.bytes {
		out[i] = float64(b) * 8 / secs / 1e6
	}
	return out
}

// MeanMbps returns the average throughput across all complete windows, or 0
// if nothing was recorded.
func (s *ThroughputSeries) MeanMbps() float64 {
	if len(s.bytes) == 0 {
		return 0
	}
	var total int64
	for _, b := range s.bytes {
		total += b
	}
	return float64(total) * 8 / (float64(len(s.bytes)) * s.window.Seconds()) / 1e6
}

// TotalBytes returns the total bytes recorded.
func (s *ThroughputSeries) TotalBytes() int64 {
	var total int64
	for _, b := range s.bytes {
		total += b
	}
	return total
}
