package stats

import (
	"fmt"
	"time"
)

// Delay attribution (DESIGN.md §16): every delivered packet's one-way delay
// decomposes into the exhaustive component set below. The components are
// accumulated as integer nanoseconds along the packet's lifecycle (netsim
// stamps the transitions), so their sum telescopes exactly — in integer
// arithmetic, not floating point — to the measured send→sink delay. The
// Attribution aggregate here is the per-cell/per-class rollup: component
// totals, an identity-violation ledger, and fixed log-spaced histograms of
// per-packet component durations.

// DelayComp identifies one component of a packet's one-way delay.
type DelayComp uint8

const (
	// DelayQueue is time spent waiting in a bottleneck buffer before
	// serialization starts.
	DelayQueue DelayComp = iota
	// DelaySerialize is time on the wire: first bit served to last bit
	// served (spanning multiple trace opportunities under RLC segmentation).
	DelaySerialize
	// DelayPropagate is fixed propagation toward the destination.
	DelayPropagate
	// DelayFaultHold is time attributable to fault processes: handover-stall
	// holds, stall-deferral at the home cell, and reorder re-delivery delays.
	DelayFaultHold
	// DelayDetour is time on inter-cell backhaul hops while a handed-over
	// user's traffic bounces via its serving sector.
	DelayDetour

	// NumDelayComps is the component count; arrays indexed by DelayComp use
	// it as their length.
	NumDelayComps = int(iota)
)

// delayCompNames are the short stable names used by renders and exporters.
var delayCompNames = [NumDelayComps]string{"queue", "ser", "prop", "fault", "detour"}

// String returns the component's short stable name ("queue", "ser", ...).
func (c DelayComp) String() string {
	if int(c) < NumDelayComps {
		return delayCompNames[c]
	}
	return fmt.Sprintf("DelayComp(%d)", uint8(c))
}

// attribBuckets is the per-component histogram resolution: log-spaced bucket
// edges at 1 ms · 2^k, mirroring obs.DelayBuckets (1 ms .. ~33 s), plus an
// implicit zero/underflow bucket below and an overflow bucket above.
const attribBuckets = 16

// attribBucketEdge returns the upper edge of bucket k as a duration.
func attribBucketEdge(k int) time.Duration {
	return time.Millisecond << k
}

// Attribution aggregates per-packet delay decompositions: integer component
// sums (exact, order-independent), per-component duration histograms, and the
// accounting-identity ledger. The zero value is ready to use. Attribution is
// not goroutine-safe; in the metro mesh each instance is owned by one cell
// timeline.
type Attribution struct {
	// CompNs[c] is the summed duration of component c across all recorded
	// packets, in nanoseconds.
	CompNs [NumDelayComps]int64
	// TotalNs is the summed measured one-way delay in nanoseconds.
	TotalNs int64
	// Count is the number of packets recorded.
	Count int64
	// Violations counts packets whose component sum did not equal the
	// measured delay — always zero unless a stamp point is missing or
	// misordered (the property tests and the attribution renders pin it).
	Violations int64
	// Negatives counts packets with a negative component — a misordered
	// stamp (marks must be monotone in virtual time).
	Negatives int64

	// buckets[c][k] counts packets whose component c fell in bucket k:
	// k=0 holds d < 1 ms (including exact zeros), k=1..attribBuckets-1 hold
	// edge(k-1) <= d < edge(k), and k=attribBuckets holds the overflow.
	buckets [NumDelayComps][attribBuckets + 1]int64
	// totBuckets is the same layout over the measured one-way delay.
	totBuckets [attribBuckets + 1]int64
}

// attribBucketOf returns the bucket index for duration d.
func attribBucketOf(d time.Duration) int {
	for k := 0; k < attribBuckets; k++ {
		if d < attribBucketEdge(k) {
			return k
		}
	}
	return attribBuckets
}

// Record folds one delivered packet's decomposition into the aggregate.
// total is the measured one-way delay; comps are the stamped components.
func (a *Attribution) Record(comps [NumDelayComps]time.Duration, total time.Duration) {
	a.Count++
	a.TotalNs += int64(total)
	var sum time.Duration
	for c := 0; c < NumDelayComps; c++ {
		d := comps[c]
		sum += d
		a.CompNs[c] += int64(d)
		if d < 0 {
			a.Negatives++
			continue
		}
		a.buckets[c][attribBucketOf(d)]++
	}
	if sum != total {
		a.Violations++
	}
	if total >= 0 {
		a.totBuckets[attribBucketOf(total)]++
	}
}

// Merge folds o into a, leaving o untouched.
func (a *Attribution) Merge(o *Attribution) {
	if o == nil {
		return
	}
	a.Count += o.Count
	a.TotalNs += o.TotalNs
	a.Violations += o.Violations
	a.Negatives += o.Negatives
	for c := 0; c < NumDelayComps; c++ {
		a.CompNs[c] += o.CompNs[c]
		for k := range a.buckets[c] {
			a.buckets[c][k] += o.buckets[c][k]
		}
	}
	for k := range a.totBuckets {
		a.totBuckets[k] += o.totBuckets[k]
	}
}

// MeanSeconds returns the mean per-packet duration of component c.
func (a *Attribution) MeanSeconds(c DelayComp) float64 {
	if a.Count == 0 {
		return 0
	}
	return float64(a.CompNs[c]) / float64(a.Count) / 1e9
}

// MeanTotalSeconds returns the mean measured one-way delay.
func (a *Attribution) MeanTotalSeconds() float64 {
	if a.Count == 0 {
		return 0
	}
	return float64(a.TotalNs) / float64(a.Count) / 1e9
}

// Share returns component c's fraction of the summed total delay (0 with no
// recorded delay).
func (a *Attribution) Share(c DelayComp) float64 {
	if a.TotalNs == 0 {
		return 0
	}
	return float64(a.CompNs[c]) / float64(a.TotalNs)
}

// quantileEdge walks a cumulative bucket array to the bucket containing the
// q-th (0..1) packet and returns that bucket's upper edge in seconds — a
// deterministic upper bound on the true quantile at the histogram's
// resolution. The overflow bucket reports the last finite edge doubled.
func quantileEdge(buckets *[attribBuckets + 1]int64, count int64, q float64) float64 {
	if count == 0 {
		return 0
	}
	want := int64(q * float64(count))
	if want >= count {
		want = count - 1
	}
	var cum int64
	for k := 0; k <= attribBuckets; k++ {
		cum += buckets[k]
		if cum > want {
			if k >= attribBuckets {
				return (2 * attribBucketEdge(attribBuckets-1)).Seconds()
			}
			return attribBucketEdge(k).Seconds()
		}
	}
	return (2 * attribBucketEdge(attribBuckets - 1)).Seconds()
}

// QuantileSeconds returns a bucket-resolution upper bound on the q-th
// percentile (0..100) of component c's per-packet duration.
func (a *Attribution) QuantileSeconds(c DelayComp, q float64) float64 {
	return quantileEdge(&a.buckets[c], a.Count, q/100)
}

// TotalQuantileSeconds is QuantileSeconds over the measured one-way delay.
func (a *Attribution) TotalQuantileSeconds(q float64) float64 {
	return quantileEdge(&a.totBuckets, a.Count, q/100)
}
