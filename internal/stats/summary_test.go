package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestSummaryBasics(t *testing.T) {
	s := NewSummary(4)
	for _, v := range []float64{4, 1, 3, 2} {
		s.Add(v)
	}
	if s.N() != 4 {
		t.Fatalf("N = %d, want 4", s.N())
	}
	if got := s.Mean(); got != 2.5 {
		t.Errorf("Mean = %v, want 2.5", got)
	}
	if got := s.Min(); got != 1 {
		t.Errorf("Min = %v, want 1", got)
	}
	if got := s.Max(); got != 4 {
		t.Errorf("Max = %v, want 4", got)
	}
	if got := s.Median(); got != 2.5 {
		t.Errorf("Median = %v, want 2.5", got)
	}
	want := math.Sqrt(1.25) // population stddev of 1..4
	if got := s.Stddev(); math.Abs(got-want) > 1e-12 {
		t.Errorf("Stddev = %v, want %v", got, want)
	}
}

func TestSummaryEmpty(t *testing.T) {
	s := NewSummary(0)
	if s.Mean() != 0 || s.Stddev() != 0 || s.Percentile(50) != 0 {
		t.Error("empty summary should report zeros")
	}
	if !math.IsInf(s.Min(), 1) || !math.IsInf(s.Max(), -1) {
		t.Error("empty summary min/max should be infinities")
	}
}

func TestSummaryAddAfterPercentile(t *testing.T) {
	s := NewSummary(0)
	s.Add(10)
	s.Add(20)
	_ = s.Median() // forces sort
	s.Add(5)
	if got := s.Min(); got != 5 {
		t.Fatalf("Min after late Add = %v, want 5", got)
	}
	if got := s.Mean(); math.Abs(got-35.0/3) > 1e-12 {
		t.Fatalf("Mean = %v", got)
	}
}

func TestSummaryPercentileInterpolation(t *testing.T) {
	s := NewSummary(0)
	for _, v := range []float64{0, 10} {
		s.Add(v)
	}
	if got := s.Percentile(25); got != 2.5 {
		t.Fatalf("P25 of {0,10} = %v, want 2.5", got)
	}
	if got := s.Percentile(0); got != 0 {
		t.Fatalf("P0 = %v, want 0", got)
	}
	if got := s.Percentile(100); got != 10 {
		t.Fatalf("P100 = %v, want 10", got)
	}
}

// Property: percentiles are monotone in p and bounded by min/max.
func TestSummaryPercentileMonotone(t *testing.T) {
	f := func(raw []float64) bool {
		s := NewSummary(len(raw))
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			s.Add(v)
		}
		if s.N() == 0 {
			return true
		}
		prev := s.Min()
		for p := 0.0; p <= 100; p += 7 {
			v := s.Percentile(p)
			if v < prev-1e-9 {
				return false
			}
			prev = v
		}
		return s.Percentile(100) == s.Max()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: the median of a sorted copy matches Percentile(50).
func TestSummaryMedianAgainstSort(t *testing.T) {
	f := func(raw []float64) bool {
		var clean []float64
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				clean = append(clean, v)
			}
		}
		if len(clean) == 0 {
			return true
		}
		s := NewSummary(len(clean))
		for _, v := range clean {
			s.Add(v)
		}
		sort.Float64s(clean)
		n := len(clean)
		var want float64
		if n%2 == 1 {
			want = clean[n/2]
		} else {
			want = (clean[n/2-1] + clean[n/2]) / 2
		}
		diff := math.Abs(s.Median() - want)
		scale := 1 + math.Abs(want)
		return diff <= 1e-9*scale
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
