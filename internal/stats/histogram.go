package stats

import (
	"fmt"
	"math"
	"strings"
)

// LogHistogram bins positive samples into logarithmically spaced buckets and
// reports an empirical PDF, matching the log-log burst-size and inter-arrival
// distributions of Figure 2 in the paper.
type LogHistogram struct {
	base       float64 // bucket edges grow by this factor
	minEdge    float64 // left edge of bucket 0
	counts     []int
	total      int
	underflow  int
	numBuckets int
}

// NewLogHistogram returns a histogram with numBuckets buckets whose edges are
// minEdge·base^k for k = 0..numBuckets. Samples below minEdge are counted as
// underflow; samples beyond the last edge land in the final bucket.
func NewLogHistogram(minEdge, base float64, numBuckets int) *LogHistogram {
	if minEdge <= 0 || base <= 1 || numBuckets <= 0 {
		panic("stats: invalid LogHistogram parameters")
	}
	return &LogHistogram{
		base:       base,
		minEdge:    minEdge,
		counts:     make([]int, numBuckets),
		numBuckets: numBuckets,
	}
}

// Add records one sample. Non-positive samples count as underflow.
func (h *LogHistogram) Add(v float64) {
	h.total++
	if v < h.minEdge {
		h.underflow++
		return
	}
	k := int(math.Log(v/h.minEdge) / math.Log(h.base))
	if k >= h.numBuckets {
		k = h.numBuckets - 1
	}
	h.counts[k]++
}

// Total returns the number of samples recorded, including underflow.
func (h *LogHistogram) Total() int { return h.total }

// BucketEdge returns the left edge of bucket k.
func (h *LogHistogram) BucketEdge(k int) float64 {
	return h.minEdge * math.Pow(h.base, float64(k))
}

// PDF returns (center, density) pairs for each non-empty bucket. Density is
// the fraction of all samples per unit of x, so the series integrates to
// roughly the captured fraction, as in the paper's Figure 2 PDFs.
func (h *LogHistogram) PDF() (centers, densities []float64) {
	if h.total == 0 {
		return nil, nil
	}
	for k, c := range h.counts {
		if c == 0 {
			continue
		}
		lo := h.BucketEdge(k)
		hi := h.BucketEdge(k + 1)
		centers = append(centers, math.Sqrt(lo*hi))
		densities = append(densities, float64(c)/float64(h.total)/(hi-lo))
	}
	return centers, densities
}

// String renders the non-empty buckets as "edge: fraction" lines.
func (h *LogHistogram) String() string {
	var b strings.Builder
	for k, c := range h.counts {
		if c == 0 {
			continue
		}
		fmt.Fprintf(&b, "%10.4g: %.4g\n", h.BucketEdge(k), float64(c)/float64(h.total))
	}
	return b.String()
}
