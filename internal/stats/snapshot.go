package stats

import (
	"fmt"

	"repro/internal/snap"
)

// Checkpoint support (DESIGN.md §15). Accumulators snapshot their running
// state bit-exactly: float sums are stored as IEEE-754 bit patterns, never
// recomputed from samples — re-summing in a different order would drift the
// low bits and move a golden digest. Sample order is preserved verbatim for
// the same reason (Summary.Percentile sorts lazily in place, so the
// in-memory order at snapshot time is part of the observable state).

// Snapshot writes the summary's samples and running moments.
func (s *Summary) Snapshot(e *snap.Encoder) {
	e.Tag("summary")
	e.F64s(s.samples)
	e.Bool(s.sorted)
	e.F64(s.sum)
	e.F64(s.sumSq)
}

// Restore replaces the summary's state with a snapshot.
func (s *Summary) Restore(d *snap.Decoder) {
	d.Expect("summary")
	samples := d.F64s()
	sorted := d.Bool()
	sum := d.F64()
	sumSq := d.F64()
	if d.Err() != nil {
		return
	}
	s.samples = append(s.samples[:0], samples...)
	s.sorted = sorted
	s.sum = sum
	s.sumSq = sumSq
}

// Snapshot writes the per-window byte totals.
func (s *ThroughputSeries) Snapshot(e *snap.Encoder) {
	e.Tag("tput")
	e.Dur(s.window)
	e.I64s(s.bytes)
}

// Restore replaces the series' state with a snapshot, cross-checking the
// configured window size against the rebuilt value.
func (s *ThroughputSeries) Restore(d *snap.Decoder) {
	d.Expect("tput")
	w := d.Dur()
	bytes := d.I64s()
	if d.Err() != nil {
		return
	}
	if w != s.window {
		d.Fail(fmt.Errorf("stats: throughput window %v in snapshot, %v rebuilt", w, s.window))
		return
	}
	s.bytes = append(s.bytes[:0], bytes...)
}

// Snapshot writes the per-window sums and counts.
func (s *WindowedMean) Snapshot(e *snap.Encoder) {
	e.Tag("wmean")
	e.Dur(s.window)
	e.F64s(s.sums)
	e.I64s(s.counts)
}

// Restore replaces the series' state with a snapshot, cross-checking the
// configured window size against the rebuilt value.
func (s *WindowedMean) Restore(d *snap.Decoder) {
	d.Expect("wmean")
	w := d.Dur()
	sums := d.F64s()
	counts := d.I64s()
	if d.Err() != nil {
		return
	}
	if w != s.window {
		d.Fail(fmt.Errorf("stats: windowed-mean window %v in snapshot, %v rebuilt", w, s.window))
		return
	}
	if len(sums) != len(counts) {
		d.Fail(fmt.Errorf("stats: windowed-mean snapshot has %d sums but %d counts", len(sums), len(counts)))
		return
	}
	s.sums = append(s.sums[:0], sums...)
	s.counts = append(s.counts[:0], counts...)
}

// Snapshot writes the attribution aggregate: component sums, the identity
// ledger, and every histogram bucket — all integers, so the restore is
// bit-exact by construction.
func (a *Attribution) Snapshot(e *snap.Encoder) {
	e.Tag("attrib")
	e.I64s(a.CompNs[:])
	e.I64(a.TotalNs)
	e.I64(a.Count)
	e.I64(a.Violations)
	e.I64(a.Negatives)
	for c := range a.buckets {
		e.I64s(a.buckets[c][:])
	}
	e.I64s(a.totBuckets[:])
}

// Restore replaces the aggregate's state with a snapshot.
func (a *Attribution) Restore(d *snap.Decoder) {
	d.Expect("attrib")
	comps := d.I64s()
	totalNs := d.I64()
	count := d.I64()
	violations := d.I64()
	negatives := d.I64()
	if d.Err() != nil {
		return
	}
	if len(comps) != NumDelayComps {
		d.Fail(fmt.Errorf("stats: attribution snapshot has %d components, this build has %d", len(comps), NumDelayComps))
		return
	}
	copy(a.CompNs[:], comps)
	a.TotalNs = totalNs
	a.Count = count
	a.Violations = violations
	a.Negatives = negatives
	for c := range a.buckets {
		b := d.I64s()
		if d.Err() != nil {
			return
		}
		if len(b) != len(a.buckets[c]) {
			d.Fail(fmt.Errorf("stats: attribution snapshot bucket row has %d cells, this build has %d", len(b), len(a.buckets[c])))
			return
		}
		copy(a.buckets[c][:], b)
	}
	tb := d.I64s()
	if d.Err() != nil {
		return
	}
	if len(tb) != len(a.totBuckets) {
		d.Fail(fmt.Errorf("stats: attribution snapshot total row has %d cells, this build has %d", len(tb), len(a.totBuckets)))
		return
	}
	copy(a.totBuckets[:], tb)
}
