// Package stats provides the statistical primitives used throughout the
// repository: exponentially weighted moving averages, running summaries,
// log-binned probability densities, windowed throughput series, and Jain's
// fairness index.
//
// All types are plain values with no hidden goroutines; they are safe for use
// from a single goroutine (the simulator event loop or a transport's ack
// loop). Wrap them in a mutex if shared.
package stats

// EWMA is an exponentially weighted moving average
//
//	v' = alpha*v + (1-alpha)*sample
//
// matching the form used in the Verus paper (Eq. 2), where alpha close to 1
// weights history heavily. The zero value is not ready for use; construct
// with NewEWMA.
type EWMA struct {
	alpha float64
	value float64
	set   bool
}

// NewEWMA returns an EWMA with the given history weight alpha in (0, 1].
// The first observed sample initializes the average directly.
func NewEWMA(alpha float64) *EWMA {
	if alpha <= 0 || alpha > 1 {
		panic("stats: EWMA alpha must be in (0,1]")
	}
	return &EWMA{alpha: alpha}
}

// Update folds sample into the average and returns the new value.
func (e *EWMA) Update(sample float64) float64 {
	if !e.set {
		e.value = sample
		e.set = true
		return e.value
	}
	e.value = e.alpha*e.value + (1-e.alpha)*sample
	return e.value
}

// Value returns the current average, or 0 if no samples have been observed.
func (e *EWMA) Value() float64 { return e.value }

// Initialized reports whether at least one sample has been observed.
func (e *EWMA) Initialized() bool { return e.set }

// Reset discards all history.
func (e *EWMA) Reset() { e.value, e.set = 0, false }
