package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary accumulates samples and reports mean, standard deviation, min, max,
// and percentiles. Percentile queries sort a private copy lazily; the sorted
// order is cached until the next Add.
type Summary struct {
	samples []float64
	sorted  bool
	sum     float64
	sumSq   float64
}

// NewSummary returns an empty Summary with capacity hint n.
func NewSummary(n int) *Summary {
	return &Summary{samples: make([]float64, 0, n)}
}

// Add records one sample.
func (s *Summary) Add(v float64) {
	s.samples = append(s.samples, v)
	s.sum += v
	s.sumSq += v * v
	s.sorted = false
}

// Merge folds every sample of o into s, leaving o untouched. The metro
// harness uses it to build aggregate delay distributions across thousands of
// per-flow summaries.
func (s *Summary) Merge(o *Summary) {
	if o == nil || len(o.samples) == 0 {
		return
	}
	s.samples = append(s.samples, o.samples...)
	s.sum += o.sum
	s.sumSq += o.sumSq
	s.sorted = false
}

// N returns the number of samples recorded.
func (s *Summary) N() int { return len(s.samples) }

// Mean returns the arithmetic mean, or 0 with no samples.
func (s *Summary) Mean() float64 {
	if len(s.samples) == 0 {
		return 0
	}
	return s.sum / float64(len(s.samples))
}

// Stddev returns the population standard deviation, or 0 with fewer than two
// samples.
func (s *Summary) Stddev() float64 {
	n := float64(len(s.samples))
	if n < 2 {
		return 0
	}
	mean := s.sum / n
	v := s.sumSq/n - mean*mean
	if v < 0 { // guard tiny negative from rounding
		v = 0
	}
	return math.Sqrt(v)
}

// Min returns the smallest sample, or +Inf with no samples.
func (s *Summary) Min() float64 {
	if len(s.samples) == 0 {
		return math.Inf(1)
	}
	s.ensureSorted()
	return s.samples[0]
}

// Max returns the largest sample, or -Inf with no samples.
func (s *Summary) Max() float64 {
	if len(s.samples) == 0 {
		return math.Inf(-1)
	}
	s.ensureSorted()
	return s.samples[len(s.samples)-1]
}

// Percentile returns the p-th percentile (0 <= p <= 100) using linear
// interpolation between closest ranks. It returns 0 with no samples.
func (s *Summary) Percentile(p float64) float64 {
	n := len(s.samples)
	if n == 0 {
		return 0
	}
	if p <= 0 {
		return s.Min()
	}
	if p >= 100 {
		return s.Max()
	}
	s.ensureSorted()
	rank := p / 100 * float64(n-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return s.samples[lo]
	}
	frac := rank - float64(lo)
	return s.samples[lo]*(1-frac) + s.samples[hi]*frac
}

// Median returns the 50th percentile.
func (s *Summary) Median() float64 { return s.Percentile(50) }

// String renders a one-line summary.
func (s *Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.4g std=%.4g min=%.4g p50=%.4g p95=%.4g max=%.4g",
		s.N(), s.Mean(), s.Stddev(), s.Min(), s.Median(), s.Percentile(95), s.Max())
}

func (s *Summary) ensureSorted() {
	if !s.sorted {
		sort.Float64s(s.samples)
		s.sorted = true
	}
}
