package stats

// JainIndex computes Jain's fairness index (paper Eq. 7)
//
//	f(x1..xn) = (Σ xi)² / (n · Σ xi²)
//
// over the given allocations. The result is in [1/n, 1]; 1 is perfect
// fairness. With no allocations, or when every allocation is zero, it
// returns 1 (an idle system is trivially fair).
func JainIndex(x []float64) float64 {
	if len(x) == 0 {
		return 1
	}
	var sum, sumSq float64
	for _, v := range x {
		sum += v
		sumSq += v * v
	}
	if sumSq == 0 {
		return 1
	}
	return sum * sum / (float64(len(x)) * sumSq)
}

// WindowedJain computes Jain's index over consecutive windows and returns the
// average of the per-window indices, the method used for Table 1 of the
// paper: "We compute Jain's fairness index over windows of one second and
// average these one second fairness values."
//
// series[i][w] is flow i's throughput in window w. Rows may have different
// lengths; each window uses the flows that have a sample for it. Windows in
// which every flow is zero are skipped.
func WindowedJain(series [][]float64) float64 {
	maxW := 0
	for _, row := range series {
		if len(row) > maxW {
			maxW = len(row)
		}
	}
	if maxW == 0 {
		return 1
	}
	var total float64
	var count int
	window := make([]float64, 0, len(series))
	for w := 0; w < maxW; w++ {
		window = window[:0]
		anyNonzero := false
		for _, row := range series {
			if w < len(row) {
				window = append(window, row[w])
				if row[w] != 0 {
					anyNonzero = true
				}
			}
		}
		if !anyNonzero {
			continue
		}
		total += JainIndex(window)
		count++
	}
	if count == 0 {
		return 1
	}
	return total / float64(count)
}
