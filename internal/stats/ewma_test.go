package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestEWMAFirstSampleInitializes(t *testing.T) {
	e := NewEWMA(0.9)
	if e.Initialized() {
		t.Fatal("fresh EWMA reports initialized")
	}
	got := e.Update(42)
	if got != 42 {
		t.Fatalf("first sample: got %v, want 42", got)
	}
	if !e.Initialized() {
		t.Fatal("EWMA not initialized after first sample")
	}
}

func TestEWMAWeighting(t *testing.T) {
	e := NewEWMA(0.5)
	e.Update(0)
	got := e.Update(10)
	if got != 5 {
		t.Fatalf("alpha=0.5 blend of 0 and 10: got %v, want 5", got)
	}
	got = e.Update(5)
	if got != 5 {
		t.Fatalf("steady state: got %v, want 5", got)
	}
}

func TestEWMAAlphaOneFreezesValue(t *testing.T) {
	e := NewEWMA(1)
	e.Update(7)
	e.Update(100)
	e.Update(-3)
	if e.Value() != 7 {
		t.Fatalf("alpha=1 should keep first sample, got %v", e.Value())
	}
}

func TestEWMAReset(t *testing.T) {
	e := NewEWMA(0.5)
	e.Update(3)
	e.Reset()
	if e.Initialized() || e.Value() != 0 {
		t.Fatal("reset did not clear state")
	}
	if got := e.Update(9); got != 9 {
		t.Fatalf("after reset first sample should initialize, got %v", got)
	}
}

func TestEWMAInvalidAlphaPanics(t *testing.T) {
	for _, alpha := range []float64{0, -0.1, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("alpha=%v did not panic", alpha)
				}
			}()
			NewEWMA(alpha)
		}()
	}
}

// Property: the EWMA always stays within the range of observed samples.
func TestEWMABoundedByObservedRange(t *testing.T) {
	f := func(alphaSeed uint8, samples []float64) bool {
		alpha := 0.01 + float64(alphaSeed)/256*0.98
		e := NewEWMA(alpha)
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, s := range samples {
			if math.IsNaN(s) || math.IsInf(s, 0) {
				continue
			}
			if s < lo {
				lo = s
			}
			if s > hi {
				hi = s
			}
			v := e.Update(s)
			if v < lo-1e-9*(1+math.Abs(lo)) || v > hi+1e-9*(1+math.Abs(hi)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: with constant input the EWMA converges to that input.
func TestEWMAConvergesToConstant(t *testing.T) {
	e := NewEWMA(0.875)
	for i := 0; i < 500; i++ {
		e.Update(3.25)
	}
	if math.Abs(e.Value()-3.25) > 1e-9 {
		t.Fatalf("did not converge: %v", e.Value())
	}
}
