// Package faults is a deterministic fault-injection layer for the Verus
// testbed. It composes impairments — full outages, handover stalls,
// Gilbert-Elliott loss bursts, per-packet corruption, duplication, and
// bounded reordering — onto an existing netsim link (Link decorator) or onto
// the real UDP transport (Proxy), without touching either one's internals.
//
// Everything here is a pure function of a seed. Timed events (outages,
// stalls) run on netsim virtual time; per-packet decisions draw from a
// rand.Rand seeded by the caller, which in the experiments harness is a
// runner.DeriveSeed product — so serial and -parallel N runs of a fault
// scenario are byte-identical, the same contract the rest of the simulator
// honors (DESIGN.md §7, §10).
//
// The fault layer never hides bytes: every packet it removes, delays, or
// copies is accounted in Counters, and the netsim conservation identity
// extends through it (see link_test.go). Importing this package outside the
// simulation/bench layer is rejected statically by the nofaultsinprod
// analyzer.
package faults

import (
	"fmt"
	"sort"
	"time"
)

// EventKind distinguishes the timed impairment events in a Plan.
type EventKind int

const (
	// Outage is a full blackout: the bottleneck queue is drained on entry
	// (a cell reselection flushes the eNodeB buffer) and nothing is
	// accepted or delivered until the outage ends.
	Outage EventKind = iota
	// Handover is a stall-then-burst: deliveries freeze for the duration,
	// the frozen packets are buffered, and at the end the buffer is
	// released back-to-back — the delivery signature of an LTE handover.
	Handover
)

// String implements fmt.Stringer for diagnostics.
func (k EventKind) String() string {
	switch k {
	case Outage:
		return "outage"
	case Handover:
		return "handover"
	default:
		return fmt.Sprintf("EventKind(%d)", int(k))
	}
}

// Event is one timed impairment window.
type Event struct {
	Kind EventKind
	// At is the window start, measured from the start of the run.
	At time.Duration
	// Dur is the window length.
	Dur time.Duration
}

// GilbertElliott parameterizes the classic two-state Markov loss model: a
// good state with residual loss and a bad state with bursty loss. The chain
// advances once per packet.
type GilbertElliott struct {
	// PGoodBad is the per-packet probability of moving good→bad.
	PGoodBad float64
	// PBadGood is the per-packet probability of moving bad→good.
	PBadGood float64
	// LossGood is the loss probability while in the good state.
	LossGood float64
	// LossBad is the loss probability while in the bad state.
	LossBad float64
}

func (g *GilbertElliott) validate() error {
	for _, p := range []struct {
		name string
		v    float64
	}{
		{"PGoodBad", g.PGoodBad}, {"PBadGood", g.PBadGood},
		{"LossGood", g.LossGood}, {"LossBad", g.LossBad},
	} {
		if p.v < 0 || p.v > 1 || p.v != p.v {
			return fmt.Errorf("faults: GilbertElliott.%s = %v out of [0,1]", p.name, p.v)
		}
	}
	return nil
}

// Plan is a schedulable program of impairments. The zero value (and nil) is
// the no-fault plan: every packet passes through untouched.
type Plan struct {
	// Name labels the plan in reports and bench output.
	Name string
	// Events are the timed outage/handover windows. Validate requires them
	// sorted by At and non-overlapping.
	Events []Event
	// Loss, when non-nil, applies Gilbert-Elliott loss to every delivery.
	Loss *GilbertElliott
	// CorruptProb is the per-packet probability that a delivered packet is
	// corrupted in flight. The simulator models the receiver's checksum
	// discard (the packet is counted and dropped); the UDP proxy flips a
	// header byte so the real receiver's parse rejects it.
	CorruptProb float64
	// DupProb is the per-packet probability that a delivery is duplicated.
	DupProb float64
	// ReorderProb is the per-packet probability that a delivery is delayed
	// by ReorderDelay, letting later packets overtake it.
	ReorderProb float64
	// ReorderDelay bounds the extra delay of a reordered packet. Required
	// positive when ReorderProb > 0.
	ReorderDelay time.Duration
}

// IsZero reports whether the plan injects nothing.
func (p *Plan) IsZero() bool {
	return p == nil || (len(p.Events) == 0 && p.Loss == nil &&
		p.CorruptProb == 0 && p.DupProb == 0 && p.ReorderProb == 0)
}

// Validate checks the plan's internal consistency: probabilities in [0,1],
// events sorted and non-overlapping, positive durations.
func (p *Plan) Validate() error {
	if p == nil {
		return nil
	}
	for _, pr := range []struct {
		name string
		v    float64
	}{
		{"CorruptProb", p.CorruptProb}, {"DupProb", p.DupProb}, {"ReorderProb", p.ReorderProb},
	} {
		if pr.v < 0 || pr.v > 1 || pr.v != pr.v {
			return fmt.Errorf("faults: %s = %v out of [0,1]", pr.name, pr.v)
		}
	}
	if p.ReorderProb > 0 && p.ReorderDelay <= 0 {
		return fmt.Errorf("faults: ReorderProb set but ReorderDelay = %v", p.ReorderDelay)
	}
	if p.Loss != nil {
		if err := p.Loss.validate(); err != nil {
			return err
		}
	}
	if !sort.SliceIsSorted(p.Events, func(i, j int) bool { return p.Events[i].At < p.Events[j].At }) {
		return fmt.Errorf("faults: events not sorted by start time")
	}
	for i, ev := range p.Events {
		if ev.At < 0 || ev.Dur <= 0 {
			return fmt.Errorf("faults: event %d (%s) has At=%v Dur=%v; need At >= 0, Dur > 0", i, ev.Kind, ev.At, ev.Dur)
		}
		if i > 0 {
			prev := p.Events[i-1]
			if prev.At+prev.Dur > ev.At {
				return fmt.Errorf("faults: event %d (%s at %v) overlaps event %d ending %v",
					i, ev.Kind, ev.At, i-1, prev.At+prev.Dur)
			}
		}
	}
	return nil
}

// LastImpairmentEnd returns the end of the latest timed event, the reference
// point the chaos liveness suite measures recovery from. Stochastic
// processes (loss, corruption) have no end; they bound throughput, not
// liveness.
func (p *Plan) LastImpairmentEnd() time.Duration {
	if p == nil {
		return 0
	}
	var end time.Duration
	for _, ev := range p.Events {
		if e := ev.At + ev.Dur; e > end {
			end = e
		}
	}
	return end
}

// Counters account every packet the fault layer touches. All fields count
// packets; gauges are noted. The conservation identity through a wrapped
// link is (at quiescence, with Held and ReorderPending both zero):
//
//	innerDelivered = EgressDropped + BurstLost + Corrupted
//	               + (Delivered - Duplicated)
//
// and on the ingress side every Send either reached the inner link or is in
// SendDropped; queue drains at outage onset land in QueueDrained.
type Counters struct {
	// SendDropped counts packets rejected at ingress during an outage.
	SendDropped int64
	// QueueDrained counts packets flushed from the inner queue at outage
	// onset.
	QueueDrained int64
	// EgressDropped counts packets that exited the inner link during an
	// outage (in-flight at onset, or released into one) and were discarded.
	EgressDropped int64
	// BurstLost counts Gilbert-Elliott losses.
	BurstLost int64
	// Corrupted counts corruption discards.
	Corrupted int64
	// Duplicated counts extra copies delivered (each adds one Delivered).
	Duplicated int64
	// Reordered counts deliveries that were delayed by ReorderDelay.
	Reordered int64
	// Released counts packets burst-released at the end of handover stalls.
	Released int64
	// Held is a gauge: packets currently frozen by an active stall.
	Held int64
	// ReorderPending is a gauge: reordered packets not yet re-delivered.
	ReorderPending int64
	// Delivered counts every packet handed to the downstream receiver,
	// duplicates included.
	Delivered int64
}

// Add accumulates o into c field by field (gauges included); the harness
// uses it to total ledgers across repetitions.
func (c *Counters) Add(o Counters) {
	c.SendDropped += o.SendDropped
	c.QueueDrained += o.QueueDrained
	c.EgressDropped += o.EgressDropped
	c.BurstLost += o.BurstLost
	c.Corrupted += o.Corrupted
	c.Duplicated += o.Duplicated
	c.Reordered += o.Reordered
	c.Released += o.Released
	c.Held += o.Held
	c.ReorderPending += o.ReorderPending
	c.Delivered += o.Delivered
}
