package faults_test

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/faults"
	"repro/internal/netsim"
	"repro/internal/stats"
)

// TestFaultAttributionIdentity is the accounting-identity property test over
// the fault layer: across 30 random fault plans — outages, handover stalls
// with burst release, Gilbert-Elliott loss, corruption, duplication, and
// reorder re-delivery — every delivered packet's stamped components must sum
// exactly (integer nanoseconds) to its measured one-way delay. Violations
// and negative components are both pinned at zero; a missing or misordered
// stamp point in the fault paths shows up here as a nonzero ledger.
func TestFaultAttributionIdentity(t *testing.T) {
	var totalCount, faultHeld int64
	for seed := int64(0); seed < 30; seed++ {
		rng := rand.New(rand.NewSource(seed ^ 0x5eed))
		stop := time.Duration(2+rng.Intn(4)) * time.Second
		plan := randomPlan(rng, stop)
		if err := plan.Validate(); err != nil {
			t.Fatalf("seed %d: generated invalid plan: %v", seed, err)
		}

		sim := netsim.NewSim()
		q := randomQueue(rng)
		rate := 1 + rng.Float64()*30
		prop := time.Duration(rng.Intn(40)) * time.Millisecond
		specs := randomSpecs(rng, stop)
		d := netsim.NewDumbbell(sim, func(dst netsim.Receiver) netsim.Link {
			return faults.Wrap(sim, plan, seed+7, dst, func(fdst netsim.Receiver) netsim.Link {
				return netsim.NewFixedLink(sim, q, rate, prop, fdst, seed+100)
			})
		}, 1400, specs)
		var agg stats.Attribution
		for _, c := range d.CBRs {
			if c != nil {
				c.SetAttribution(&agg)
			}
		}
		for _, s := range d.Sources {
			if s != nil {
				s.SetAttribution(&agg)
			}
		}

		// Quiescence: past the flows, the last timed event, and any pending
		// reorder delay.
		until := stop
		if e := plan.LastImpairmentEnd(); e > until {
			until = e
		}
		until += 5*time.Second + plan.ReorderDelay
		sim.Run(until)

		if agg.Count == 0 {
			t.Fatalf("seed %d: no deliveries; identity check vacuous", seed)
		}
		if agg.Violations != 0 || agg.Negatives != 0 {
			t.Errorf("seed %d: identity broken: %d violations, %d negatives over %d packets",
				seed, agg.Violations, agg.Negatives, agg.Count)
		}
		var sum int64
		for c := 0; c < stats.NumDelayComps; c++ {
			sum += agg.CompNs[c]
		}
		if sum != agg.TotalNs {
			t.Errorf("seed %d: aggregate sum %d ns != total %d ns", seed, sum, agg.TotalNs)
		}
		totalCount += agg.Count
		faultHeld += agg.CompNs[int(stats.DelayFaultHold)]
	}
	// Across the plan population, handover stalls and reorder delays must
	// actually have charged the fault component — otherwise the property
	// never exercised the stamps it exists to verify.
	if faultHeld == 0 {
		t.Fatalf("no fault-hold time charged across %d delivered packets; stamps unexercised", totalCount)
	}
}
