package faults

import (
	"fmt"
	"time"

	"repro/internal/cellular"
)

// This file holds the canned fault plans exposed by verus-bench -faults and
// the experiments harness. Each builder takes the run duration and lays out
// timed events proportionally, so the same scenario scales from a quick
// 30-second golden render to a multi-minute bench run. The builders are
// pure: all randomness lives in the per-run seed handed to Wrap.

// Canned scenario names, in the stable order Names returns.
const (
	ScenarioTunnelOutage    = "tunnel-outage"
	ScenarioHighwayHandover = "highway-handover"
	ScenarioCityLoss        = "city-loss"
)

// Names returns the canned scenario names in a stable order.
func Names() []string {
	return []string{ScenarioTunnelOutage, ScenarioHighwayHandover, ScenarioCityLoss}
}

// ByName builds the canned plan for a run of duration d. Unknown names
// return an error listing the valid ones.
func ByName(name string, d time.Duration) (*Plan, error) {
	switch name {
	case ScenarioTunnelOutage:
		return TunnelOutage(d), nil
	case ScenarioHighwayHandover:
		return HandoverTrain(cellular.HighwayDriving, d), nil
	case ScenarioCityLoss:
		return CityDrive(d), nil
	default:
		return nil, fmt.Errorf("faults: unknown scenario %q (valid: %v)", name, Names())
	}
}

// TunnelOutage models a drive through two tunnels: a short blackout at 30%
// of the run and a longer one at 65%. Both drain the bottleneck queue on
// entry — exactly the "stale knots" situation §4.2's recovery path exists
// for: every delay measurement Verus learned before the tunnel describes a
// bearer that no longer exists.
func TunnelOutage(d time.Duration) *Plan {
	short := maxDur(2*time.Second, d/20)
	long := maxDur(4*time.Second, d/12)
	return &Plan{
		Name: ScenarioTunnelOutage,
		Events: []Event{
			{Kind: Outage, At: 3 * d / 10, Dur: short},
			{Kind: Outage, At: 65 * d / 100, Dur: long},
		},
	}
}

// HandoverTrain lays a periodic train of handover stalls sized by the
// scenario's mobility parameters (HandoverEvery / HandoverStall). A
// stationary scenario yields an empty plan.
func HandoverTrain(sc cellular.Scenario, d time.Duration) *Plan {
	p := &Plan{Name: ScenarioHighwayHandover}
	if sc.HandoverEvery <= 0 || sc.HandoverStall <= 0 {
		return p
	}
	for at := sc.HandoverEvery / 2; at+sc.HandoverStall < d; at += sc.HandoverEvery {
		p.Events = append(p.Events, Event{Kind: Handover, At: at, Dur: sc.HandoverStall})
	}
	return p
}

// CityDrive models a bursty city drive: Gilbert-Elliott loss bursts
// (street-canyon fading), residual corruption, occasional duplication and
// reordering from bearer reconfiguration, plus the city-driving handover
// train.
func CityDrive(d time.Duration) *Plan {
	train := HandoverTrain(cellular.CityDriving, d)
	return &Plan{
		Name:   ScenarioCityLoss,
		Events: train.Events,
		Loss: &GilbertElliott{
			PGoodBad: 0.008,
			PBadGood: 0.15,
			LossGood: 0.0005,
			LossBad:  0.25,
		},
		CorruptProb:  0.001,
		DupProb:      0.0005,
		ReorderProb:  0.002,
		ReorderDelay: 30 * time.Millisecond,
	}
}

func maxDur(a, b time.Duration) time.Duration {
	if a > b {
		return a
	}
	return b
}
