package faults

import (
	"math/rand"
	"time"

	"repro/internal/netsim"
	"repro/internal/obs"
)

// Link decorates a netsim.Link with a fault Plan. It interposes on both
// sides of the inner link: ingress (Send) to reject traffic during outages,
// and egress (the inner link's receiver) to apply loss, corruption,
// duplication, reordering, and stall buffering before packets reach the real
// destination. The inner link itself — its queue discipline, serialization,
// and conservation counters — is untouched.
//
// Link runs entirely inside the netsim event loop and is therefore
// single-goroutine, like everything else in the simulator.
type Link struct {
	sim   *netsim.Sim
	inner netsim.Link
	dst   netsim.Receiver
	plan  *Plan
	rng   *rand.Rand

	inOutage bool
	inStall  bool
	geBad    bool
	held     []*netsim.Packet

	// reorderRecv is the one receiver reused for every reordered packet's
	// re-arrival, so reordering schedules no closures.
	reorderRecv netsim.Receiver

	// passive is fixed at Wrap: the plan has no per-packet stochastic
	// impairment, so deliveries outside event windows never touch the RNG.
	passive bool
	// fast caches passive && !inOutage && !inStall — the egress fast path
	// that keeps a zero plan's per-packet cost to one branch (the ≤2%
	// no-fault budget, BENCH_pr4.json). Recomputed on every event toggle.
	fast bool

	// Observability: fault-window events only (begin/end), never per-packet
	// — the inner link already traces those. Nil when disabled.
	obs    *obs.Observer
	obsRun int64

	// Counters accounts every packet the decorator touches.
	Counters
}

// Instrument attaches an observer; fault-plan windows (outages, handovers)
// are emitted as begin/end event pairs labeled with run. Flow is -1: a
// fault window affects the whole link, not one flow.
func (l *Link) Instrument(o *obs.Observer, run int64) {
	l.obs = o
	l.obsRun = run
}

// emitFault records a fault-window edge when tracing is attached.
func (l *Link) emitFault(kind obs.Kind, str string, v0, v1 float64) {
	if l.obs == nil {
		return
	}
	l.obs.Emit(obs.Event{At: l.sim.Now(), Kind: kind, Flow: -1, Run: l.obsRun,
		Str: str, V0: v0, V1: v1})
}

// Wrap builds the inner link via mk — pointed at the decorator's egress tap
// instead of dst — schedules the plan's timed events on sim, and returns the
// decorated link. A nil or zero plan yields a passthrough decorator whose
// per-packet cost is a few branch tests (benchmarked ≤2% end to end, see
// BENCH_pr4.json).
//
// Event times in the plan are measured from the moment Wrap is called
// (normally simulation time zero). Wrap panics on an invalid plan, matching
// netsim's constructor convention.
func Wrap(sim *netsim.Sim, plan *Plan, seed int64, dst netsim.Receiver, mk func(dst netsim.Receiver) netsim.Link) *Link {
	if err := plan.Validate(); err != nil {
		panic(err)
	}
	l := &Link{
		sim:  sim,
		dst:  dst,
		plan: plan,
		rng:  rand.New(rand.NewSource(seed)),
	}
	l.passive = plan == nil || (plan.Loss == nil &&
		plan.CorruptProb == 0 && plan.DupProb == 0 && plan.ReorderProb == 0)
	l.fast = l.passive
	l.reorderRecv = netsim.ReceiverFunc(func(p *netsim.Packet) {
		l.ReorderPending--
		l.arrive(p)
	})
	l.inner = mk(netsim.ReceiverFunc(l.egress))
	if plan != nil {
		base := sim.Now()
		for _, ev := range plan.Events {
			ev := ev
			switch ev.Kind {
			case Outage:
				sim.Schedule(base+ev.At, func() { l.startOutage(ev.Dur) })
			case Handover:
				sim.Schedule(base+ev.At, func() { l.startStall(ev.Dur) })
			}
		}
	}
	return l
}

// Inner returns the wrapped link (for instrumentation: TraceLink counters,
// rate changes on a FixedLink).
func (l *Link) Inner() netsim.Link { return l.inner }

// Queue implements netsim.Link by exposing the inner link's buffer.
func (l *Link) Queue() netsim.Queue { return l.inner.Queue() }

// Send implements netsim.Link. During an outage the packet is discarded at
// ingress — the radio is gone, nothing reaches the bottleneck buffer.
func (l *Link) Send(p *netsim.Packet) {
	if l.inOutage {
		l.SendDropped++
		l.sim.FreePacket(p)
		return
	}
	l.inner.Send(p)
}

// updateFast recomputes the egress fast path after an event toggles.
func (l *Link) updateFast() {
	l.fast = l.passive && !l.inOutage && !l.inStall
}

// egress receives every packet the inner link delivers and routes it through
// the active impairments.
func (l *Link) egress(p *netsim.Packet) {
	if l.fast {
		l.Delivered++
		l.dst.Receive(p)
		return
	}
	if l.inOutage {
		// In service or propagating when the outage hit.
		l.EgressDropped++
		l.sim.FreePacket(p)
		return
	}
	if l.inStall {
		l.held = append(l.held, p)
		l.Held++
		return
	}
	l.deliver(p)
}

// deliver applies the stochastic impairments — Gilbert-Elliott loss,
// corruption, duplication, reordering — and hands survivors to arrive.
func (l *Link) deliver(p *netsim.Packet) {
	if g := l.plan.lossModel(); g != nil {
		lossP := g.LossGood
		if l.geBad {
			lossP = g.LossBad
		}
		drop := lossP > 0 && l.rng.Float64() < lossP
		// Advance the chain once per packet, regardless of the loss draw.
		if l.geBad {
			if l.rng.Float64() < g.PBadGood {
				l.geBad = false
			}
		} else if l.rng.Float64() < g.PGoodBad {
			l.geBad = true
		}
		if drop {
			l.BurstLost++
			l.sim.FreePacket(p)
			return
		}
	}
	if l.plan != nil && l.plan.CorruptProb > 0 && l.rng.Float64() < l.plan.CorruptProb {
		// The receiver's checksum rejects the mangled packet; in the
		// simulator that collapses to an accounted drop.
		l.Corrupted++
		l.sim.FreePacket(p)
		return
	}
	if l.plan != nil && l.plan.ReorderProb > 0 && l.rng.Float64() < l.plan.ReorderProb {
		l.Reordered++
		l.ReorderPending++
		l.sim.SchedulePacketAfter(l.plan.ReorderDelay, l.reorderRecv, p)
		return
	}
	// The duplicate draw happens before p is handed downstream: once arrived,
	// p may already be released (a CBR sink frees on delivery), so the copy
	// must be cloned from it first. arrive consumes no randomness and the
	// draw order (reorder, then duplicate) matches the historical code, so
	// the RNG stream is unchanged. The clone is consumed in the same branch
	// that takes it, which also lets poolleak verify its custody per path.
	if l.plan != nil && l.plan.DupProb > 0 && l.rng.Float64() < l.plan.DupProb {
		l.Duplicated++
		dup := l.sim.ClonePacket(p)
		l.arrive(p)
		l.arrive(dup)
		return
	}
	l.arrive(p)
}

// arrive is the final gate before the destination. A packet that was held
// back (reordering) re-checks the outage/stall state at its new delivery
// time.
func (l *Link) arrive(p *netsim.Packet) {
	if l.inOutage {
		l.EgressDropped++
		l.sim.FreePacket(p)
		return
	}
	if l.inStall {
		l.held = append(l.held, p)
		l.Held++
		return
	}
	l.Delivered++
	l.dst.Receive(p)
}

// lossModel tolerates a nil plan in the per-packet hot path.
func (p *Plan) lossModel() *GilbertElliott {
	if p == nil {
		return nil
	}
	return p.Loss
}

func (l *Link) startOutage(dur time.Duration) {
	l.inOutage = true
	l.updateFast()
	// Queue-drain semantics: the bottleneck buffer empties when the radio
	// bearer is torn down. Every drained packet is accounted — the netsim
	// conservation identity extends through the fault layer.
	q := l.inner.Queue()
	now := l.sim.Now()
	var drained float64
	for p := q.Dequeue(now); p != nil; p = q.Dequeue(now) {
		l.QueueDrained++
		drained++
		l.sim.FreePacket(p)
	}
	// A stall interrupted by an outage loses its held packets too.
	if l.inStall || len(l.held) > 0 {
		l.EgressDropped += int64(len(l.held))
		l.Held -= int64(len(l.held))
		for i, p := range l.held {
			l.sim.FreePacket(p)
			l.held[i] = nil
		}
		l.held = l.held[:0]
	}
	l.emitFault(obs.KindFaultBegin, "outage", dur.Seconds(), drained)
	l.sim.After(dur, func() {
		l.inOutage = false
		l.updateFast()
		l.emitFault(obs.KindFaultEnd, "outage", 0, 0)
	})
}

func (l *Link) startStall(dur time.Duration) {
	l.inStall = true
	l.updateFast()
	l.emitFault(obs.KindFaultBegin, "handover", dur.Seconds(), 0)
	l.sim.After(dur, func() {
		l.inStall = false
		l.updateFast()
		// Burst-release: the handover completes and the target cell drains
		// the forwarded buffer back-to-back. Released packets still face
		// the stochastic impairments — they cross the air interface now.
		held := l.held
		l.held = nil
		l.Held -= int64(len(held))
		l.Released += int64(len(held))
		l.emitFault(obs.KindFaultEnd, "handover", float64(len(held)), 0)
		for _, p := range held {
			l.deliver(p)
		}
	})
}
