package faults

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/snap"
	"repro/internal/stats"
)

// Link decorates a netsim.Link with a fault Plan. It interposes on both
// sides of the inner link: ingress (Send) to reject traffic during outages,
// and egress (the inner link's receiver) to apply loss, corruption,
// duplication, reordering, and stall buffering before packets reach the real
// destination. The inner link itself — its queue discipline, serialization,
// and conservation counters — is untouched.
//
// Link runs entirely inside the netsim event loop and is therefore
// single-goroutine, like everything else in the simulator.
type Link struct {
	sim   *netsim.Sim
	inner netsim.Link
	dst   netsim.Receiver
	plan  *Plan
	rng   *rand.Rand
	// src is the counting source behind rng, making the impairment-draw
	// stream position checkpointable.
	src *snap.Source

	inOutage bool
	inStall  bool
	geBad    bool
	held     []*netsim.Packet

	// reorderRecv is the one receiver reused for every reordered packet's
	// re-arrival, so reordering schedules no closures. It is a pointer type
	// (not a ReceiverFunc) so pending re-arrivals can checkpoint by id.
	reorderRecv *reorderTap

	// endOutageID/endStallID are the registry ids of the window-end
	// callbacks, registered at Wrap so the pending end events checkpoint.
	endOutageID int64
	endStallID  int64

	// passive is fixed at Wrap: the plan has no per-packet stochastic
	// impairment, so deliveries outside event windows never touch the RNG.
	passive bool
	// fast caches passive && !inOutage && !inStall — the egress fast path
	// that keeps a zero plan's per-packet cost to one branch (the ≤2%
	// no-fault budget, BENCH_pr4.json). Recomputed on every event toggle.
	fast bool

	// Observability: fault-window events only (begin/end), never per-packet
	// — the inner link already traces those. Nil when disabled.
	obs    *obs.Observer
	obsRun int64

	// Counters accounts every packet the decorator touches.
	Counters
}

// Instrument attaches an observer; fault-plan windows (outages, handovers)
// are emitted as begin/end event pairs labeled with run. Flow is -1: a
// fault window affects the whole link, not one flow.
func (l *Link) Instrument(o *obs.Observer, run int64) {
	l.obs = o
	l.obsRun = run
}

// emitFault records a fault-window edge when tracing is attached.
func (l *Link) emitFault(kind obs.Kind, str string, v0, v1 float64) {
	if l.obs == nil {
		return
	}
	l.obs.Emit(obs.Event{At: l.sim.Now(), Kind: kind, Flow: -1, Run: l.obsRun,
		Str: str, V0: v0, V1: v1})
}

// Wrap builds the inner link via mk — pointed at the decorator's egress tap
// instead of dst — schedules the plan's timed events on sim, and returns the
// decorated link. A nil or zero plan yields a passthrough decorator whose
// per-packet cost is a few branch tests (benchmarked ≤2% end to end, see
// BENCH_pr4.json).
//
// Event times in the plan are measured from the moment Wrap is called
// (normally simulation time zero). Wrap panics on an invalid plan, matching
// netsim's constructor convention.
func Wrap(sim *netsim.Sim, plan *Plan, seed int64, dst netsim.Receiver, mk func(dst netsim.Receiver) netsim.Link) *Link {
	if err := plan.Validate(); err != nil {
		panic(err)
	}
	src := snap.NewSource(seed)
	l := &Link{
		sim:  sim,
		dst:  dst,
		plan: plan,
		rng:  rand.New(src),
		src:  src,
	}
	l.passive = plan == nil || (plan.Loss == nil &&
		plan.CorruptProb == 0 && plan.DupProb == 0 && plan.ReorderProb == 0)
	l.fast = l.passive
	l.reorderRecv = &reorderTap{l: l}
	sim.RegisterReceiver(l.reorderRecv)
	tap := &egressTap{l: l}
	sim.RegisterReceiver(tap)
	l.inner = mk(tap)
	l.endOutageID = sim.RegisterFunc(l.endOutage)
	l.endStallID = sim.RegisterFunc(l.endStall)
	if plan != nil {
		base := sim.Now()
		for _, ev := range plan.Events {
			ev := ev
			switch ev.Kind {
			case Outage:
				sim.ScheduleTracked(base+ev.At, func() { l.startOutage(ev.Dur) })
			case Handover:
				sim.ScheduleTracked(base+ev.At, func() { l.startStall(ev.Dur) })
			}
		}
	}
	return l
}

// egressTap is the receiver interposed between the inner link and the
// impairments; a pointer type so pending propagation deliveries checkpoint.
type egressTap struct{ l *Link }

// Receive implements netsim.Receiver.
func (t *egressTap) Receive(p *netsim.Packet) { t.l.egress(p) }

// reorderTap re-delivers a reordered packet after its extra delay.
type reorderTap struct{ l *Link }

// Receive implements netsim.Receiver.
func (t *reorderTap) Receive(p *netsim.Packet) {
	t.l.ReorderPending--
	t.l.arrive(p)
}

// Inner returns the wrapped link (for instrumentation: TraceLink counters,
// rate changes on a FixedLink).
func (l *Link) Inner() netsim.Link { return l.inner }

// Queue implements netsim.Link by exposing the inner link's buffer.
func (l *Link) Queue() netsim.Queue { return l.inner.Queue() }

// Send implements netsim.Link. During an outage the packet is discarded at
// ingress — the radio is gone, nothing reaches the bottleneck buffer.
func (l *Link) Send(p *netsim.Packet) {
	if l.inOutage {
		l.SendDropped++
		l.sim.FreePacket(p)
		return
	}
	l.inner.Send(p)
}

// updateFast recomputes the egress fast path after an event toggles.
func (l *Link) updateFast() {
	l.fast = l.passive && !l.inOutage && !l.inStall
}

// egress receives every packet the inner link delivers and routes it through
// the active impairments.
func (l *Link) egress(p *netsim.Packet) {
	if l.fast {
		l.Delivered++
		l.dst.Receive(p)
		return
	}
	if l.inOutage {
		// In service or propagating when the outage hit.
		l.EgressDropped++
		l.sim.FreePacket(p)
		return
	}
	if l.inStall {
		// Close the propagation interval and open a fault hold; the stall
		// (until burst release) is charged to the fault, not the link.
		p.MarkDelay(l.sim.Now(), stats.DelayFaultHold)
		l.held = append(l.held, p)
		l.Held++
		return
	}
	l.deliver(p)
}

// deliver applies the stochastic impairments — Gilbert-Elliott loss,
// corruption, duplication, reordering — and hands survivors to arrive.
func (l *Link) deliver(p *netsim.Packet) {
	if g := l.plan.lossModel(); g != nil {
		lossP := g.LossGood
		if l.geBad {
			lossP = g.LossBad
		}
		drop := lossP > 0 && l.rng.Float64() < lossP
		// Advance the chain once per packet, regardless of the loss draw.
		if l.geBad {
			if l.rng.Float64() < g.PBadGood {
				l.geBad = false
			}
		} else if l.rng.Float64() < g.PGoodBad {
			l.geBad = true
		}
		if drop {
			l.BurstLost++
			l.sim.FreePacket(p)
			return
		}
	}
	if l.plan != nil && l.plan.CorruptProb > 0 && l.rng.Float64() < l.plan.CorruptProb {
		// The receiver's checksum rejects the mangled packet; in the
		// simulator that collapses to an accounted drop.
		l.Corrupted++
		l.sim.FreePacket(p)
		return
	}
	if l.plan != nil && l.plan.ReorderProb > 0 && l.rng.Float64() < l.plan.ReorderProb {
		l.Reordered++
		l.ReorderPending++
		// The extra reorder delay is fault-induced hold time.
		p.MarkDelay(l.sim.Now(), stats.DelayFaultHold)
		l.sim.SchedulePacketAfter(l.plan.ReorderDelay, l.reorderRecv, p)
		return
	}
	// The duplicate draw happens before p is handed downstream: once arrived,
	// p may already be released (a CBR sink frees on delivery), so the copy
	// must be cloned from it first. arrive consumes no randomness and the
	// draw order (reorder, then duplicate) matches the historical code, so
	// the RNG stream is unchanged. The clone is consumed in the same branch
	// that takes it, which also lets poolleak verify its custody per path.
	if l.plan != nil && l.plan.DupProb > 0 && l.rng.Float64() < l.plan.DupProb {
		l.Duplicated++
		dup := l.sim.ClonePacket(p)
		l.arrive(p)
		l.arrive(dup)
		return
	}
	l.arrive(p)
}

// arrive is the final gate before the destination. A packet that was held
// back (reordering) re-checks the outage/stall state at its new delivery
// time.
func (l *Link) arrive(p *netsim.Packet) {
	if l.inOutage {
		l.EgressDropped++
		l.sim.FreePacket(p)
		return
	}
	if l.inStall {
		// A reordered packet re-arriving into a stall keeps accruing fault
		// hold time until the burst release.
		p.MarkDelay(l.sim.Now(), stats.DelayFaultHold)
		l.held = append(l.held, p)
		l.Held++
		return
	}
	l.Delivered++
	l.dst.Receive(p)
}

// lossModel tolerates a nil plan in the per-packet hot path.
func (p *Plan) lossModel() *GilbertElliott {
	if p == nil {
		return nil
	}
	return p.Loss
}

func (l *Link) startOutage(dur time.Duration) {
	l.inOutage = true
	l.updateFast()
	// Queue-drain semantics: the bottleneck buffer empties when the radio
	// bearer is torn down. Every drained packet is accounted — the netsim
	// conservation identity extends through the fault layer.
	q := l.inner.Queue()
	now := l.sim.Now()
	var drained float64
	for p := q.Dequeue(now); p != nil; p = q.Dequeue(now) {
		l.QueueDrained++
		drained++
		l.sim.FreePacket(p)
	}
	// A stall interrupted by an outage loses its held packets too.
	if l.inStall || len(l.held) > 0 {
		l.EgressDropped += int64(len(l.held))
		l.Held -= int64(len(l.held))
		for i, p := range l.held {
			l.sim.FreePacket(p)
			l.held[i] = nil
		}
		l.held = l.held[:0]
	}
	l.emitFault(obs.KindFaultBegin, "outage", dur.Seconds(), drained)
	l.sim.AfterRegistered(dur, l.endOutageID)
}

// endOutage restores service when an outage window closes.
func (l *Link) endOutage() {
	l.inOutage = false
	l.updateFast()
	l.emitFault(obs.KindFaultEnd, "outage", 0, 0)
}

func (l *Link) startStall(dur time.Duration) {
	l.inStall = true
	l.updateFast()
	l.emitFault(obs.KindFaultBegin, "handover", dur.Seconds(), 0)
	l.sim.AfterRegistered(dur, l.endStallID)
}

// endStall completes a handover: the stall lifts and the held buffer is
// burst-released. Released packets still face the stochastic impairments —
// they cross the air interface now.
func (l *Link) endStall() {
	l.inStall = false
	l.updateFast()
	held := l.held
	l.held = nil
	l.Held -= int64(len(held))
	l.Released += int64(len(held))
	l.emitFault(obs.KindFaultEnd, "handover", float64(len(held)), 0)
	for _, p := range held {
		l.deliver(p)
	}
}

// Snapshot implements snap.Snapshotter: the fault flags, the Gilbert-Elliott
// chain state, the impairment RNG position, the held (stalled) packets, the
// counter ledger, and the wrapped inner link. The pending window-begin and
// window-end events are restored with the heap.
func (l *Link) Snapshot(e *snap.Encoder) {
	e.Tag("faultlink")
	inner, ok := l.inner.(snap.Snapshotter)
	if !ok {
		e.Fail(fmt.Errorf("faults: inner link %T is not checkpointable", l.inner))
		return
	}
	e.Bool(l.inOutage)
	e.Bool(l.inStall)
	e.Bool(l.geBad)
	l.src.Snapshot(e)
	e.U32(uint32(len(l.held)))
	for _, p := range l.held {
		netsim.SnapshotPacket(e, p)
	}
	e.I64(l.SendDropped)
	e.I64(l.QueueDrained)
	e.I64(l.EgressDropped)
	e.I64(l.BurstLost)
	e.I64(l.Corrupted)
	e.I64(l.Duplicated)
	e.I64(l.Reordered)
	e.I64(l.Released)
	e.I64(l.Held)
	e.I64(l.ReorderPending)
	e.I64(l.Delivered)
	inner.Snapshot(e)
}

// Restore implements snap.Snapshotter.
func (l *Link) Restore(d *snap.Decoder) {
	d.Expect("faultlink")
	inner, ok := l.inner.(snap.Snapshotter)
	if !ok {
		d.Fail(fmt.Errorf("faults: inner link %T is not checkpointable", l.inner))
		return
	}
	l.inOutage = d.Bool()
	l.inStall = d.Bool()
	l.geBad = d.Bool()
	l.src.Restore(d)
	n := int(d.U32())
	l.held = l.held[:0]
	for i := 0; i < n; i++ {
		p := netsim.RestorePacket(d)
		if d.Err() != nil {
			return
		}
		l.held = append(l.held, p)
	}
	l.SendDropped = d.I64()
	l.QueueDrained = d.I64()
	l.EgressDropped = d.I64()
	l.BurstLost = d.I64()
	l.Corrupted = d.I64()
	l.Duplicated = d.I64()
	l.Reordered = d.I64()
	l.Released = d.I64()
	l.Held = d.I64()
	l.ReorderPending = d.I64()
	l.Delivered = d.I64()
	inner.Restore(d)
	l.updateFast()
}
