package faults

import (
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// Proxy is a UDP relay that applies a fault Plan to real transport traffic.
// It sits between a transport.Sender and transport.Receiver:
//
//	sender --> proxy.Addr() --> forward (impaired) --> receiver
//	sender <-- reverse (outage/stall only) <--------- receiver
//
// The forward (data) direction carries the full plan — loss bursts,
// corruption, duplication, reordering, outages, stalls. The reverse (ack)
// direction honors only the timed events: a blackout or handover severs the
// bearer in both directions, but the stochastic air-interface impairments
// are modeled downlink-only to keep the two relay goroutines free of shared
// RNG state.
//
// Time is injected: now reports elapsed time on the same axis as the plan's
// event offsets. Timed windows are evaluated purely from now() — the proxy
// sets no timers of its own. The one consequence: packets frozen by a
// handover stall are flushed when the first datagram after the stall's end
// crosses the proxy, not at the exact end instant. Transports retransmit, so
// traffic always arrives to trigger the flush.
type Proxy struct {
	plan *Plan
	now  func() time.Duration
	rng  *rand.Rand // forward goroutine only

	lc *net.UDPConn // client-facing socket
	sc *net.UDPConn // server-facing socket (connected)

	mu     sync.Mutex
	client *net.UDPAddr

	// Forward-goroutine state (unshared).
	geBad       bool
	reorderHold []byte
	fwdHeld     [][]byte
	// Reverse-goroutine state (unshared).
	revHeld [][]byte

	c       Counters // incremented atomically
	closeCh chan struct{}
	wg      sync.WaitGroup
}

// NewProxy starts a relay on an ephemeral localhost port that forwards to
// serverAddr through plan. now supplies elapsed time on the plan's axis
// (e.g. time.Since(start) closed over by the caller — the caller owns the
// wall clock; this package must stay off it).
func NewProxy(serverAddr string, plan *Plan, seed int64, now func() time.Duration) (*Proxy, error) {
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	sa, err := net.ResolveUDPAddr("udp", serverAddr)
	if err != nil {
		return nil, err
	}
	lc, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		return nil, err
	}
	sc, err := net.DialUDP("udp", nil, sa)
	if err != nil {
		lc.Close()
		return nil, err
	}
	p := &Proxy{
		plan:    plan,
		now:     now,
		rng:     rand.New(rand.NewSource(seed)),
		lc:      lc,
		sc:      sc,
		closeCh: make(chan struct{}),
	}
	p.wg.Add(2)
	go p.forward()
	go p.reverse()
	return p, nil
}

// Addr returns the address the sender should dial.
func (p *Proxy) Addr() string { return p.lc.LocalAddr().String() }

// Stats returns a snapshot of the proxy's counters.
func (p *Proxy) Stats() Counters {
	var s Counters
	s.SendDropped = atomic.LoadInt64(&p.c.SendDropped)
	s.EgressDropped = atomic.LoadInt64(&p.c.EgressDropped)
	s.BurstLost = atomic.LoadInt64(&p.c.BurstLost)
	s.Corrupted = atomic.LoadInt64(&p.c.Corrupted)
	s.Duplicated = atomic.LoadInt64(&p.c.Duplicated)
	s.Reordered = atomic.LoadInt64(&p.c.Reordered)
	s.Released = atomic.LoadInt64(&p.c.Released)
	s.Delivered = atomic.LoadInt64(&p.c.Delivered)
	return s
}

// Close stops both relay goroutines and releases the sockets.
func (p *Proxy) Close() error {
	select {
	case <-p.closeCh:
	default:
		close(p.closeCh)
	}
	err1 := p.lc.Close()
	err2 := p.sc.Close()
	p.wg.Wait()
	if err1 != nil {
		return err1
	}
	return err2
}

// activeEvent returns the timed event covering now, if any.
func (p *Proxy) activeEvent(now time.Duration) (Event, bool) {
	for _, ev := range p.plan.events() {
		if now < ev.At {
			break
		}
		if now < ev.At+ev.Dur {
			return ev, true
		}
	}
	return Event{}, false
}

func (p *Plan) events() []Event {
	if p == nil {
		return nil
	}
	return p.Events
}

// gate applies the timed-event policy shared by both directions to one
// datagram: drop during outages, buffer during stalls, and flush a stall
// buffer once its window has passed. It returns the datagrams to relay now
// (flushed ones first, in arrival order) and the updated hold buffer.
func (p *Proxy) gate(pkt []byte, held [][]byte) (out [][]byte, newHeld [][]byte) {
	now := p.now()
	ev, active := p.activeEvent(now)
	if active && ev.Kind == Outage {
		// The bearer is gone: the datagram and anything a stall was holding
		// are lost.
		if pkt != nil {
			atomic.AddInt64(&p.c.SendDropped, 1)
		}
		atomic.AddInt64(&p.c.EgressDropped, int64(len(held)))
		return nil, held[:0]
	}
	if active && ev.Kind == Handover {
		if pkt != nil {
			cp := append([]byte(nil), pkt...)
			held = append(held, cp)
			atomic.AddInt64(&p.c.Held, 1)
		}
		return nil, held
	}
	// No active window: release any stall backlog ahead of the new arrival.
	if len(held) > 0 {
		atomic.AddInt64(&p.c.Held, -int64(len(held)))
		atomic.AddInt64(&p.c.Released, int64(len(held)))
		out = append(out, held...)
		held = held[:0]
	}
	if pkt != nil {
		out = append(out, pkt)
	}
	return out, held
}

func (p *Proxy) forward() {
	defer p.wg.Done()
	buf := make([]byte, 65536)
	for {
		n, addr, err := p.lc.ReadFromUDP(buf)
		if err != nil {
			return
		}
		p.mu.Lock()
		p.client = addr
		p.mu.Unlock()
		var out [][]byte
		out, p.fwdHeld = p.gate(buf[:n], p.fwdHeld)
		for _, pkt := range out {
			p.impair(pkt)
		}
	}
}

// impair runs one forward datagram through the stochastic processes and
// writes the survivors to the server socket.
func (p *Proxy) impair(pkt []byte) {
	if g := p.plan.lossModel(); g != nil {
		lossP := g.LossGood
		if p.geBad {
			lossP = g.LossBad
		}
		drop := lossP > 0 && p.rng.Float64() < lossP
		if p.geBad {
			if p.rng.Float64() < g.PBadGood {
				p.geBad = false
			}
		} else if p.rng.Float64() < g.PGoodBad {
			p.geBad = true
		}
		if drop {
			atomic.AddInt64(&p.c.BurstLost, 1)
			return
		}
	}
	if p.plan != nil && p.plan.CorruptProb > 0 && p.rng.Float64() < p.plan.CorruptProb {
		// Mangle the header type byte; the receiver's ParseHeader rejects
		// the datagram, which is how corruption surfaces to a real stack.
		atomic.AddInt64(&p.c.Corrupted, 1)
		if len(pkt) > 0 {
			pkt[0] ^= 0x7f
		}
		p.send(pkt)
		return
	}
	if p.plan != nil && p.plan.ReorderProb > 0 && p.rng.Float64() < p.plan.ReorderProb && p.reorderHold == nil {
		// Bounded reordering: hold exactly one datagram; it departs right
		// after the next one, i.e. displaced by a single packet.
		atomic.AddInt64(&p.c.Reordered, 1)
		p.reorderHold = append([]byte(nil), pkt...)
		return
	}
	p.send(pkt)
	if p.reorderHold != nil {
		held := p.reorderHold
		p.reorderHold = nil
		p.send(held)
	}
	if p.plan != nil && p.plan.DupProb > 0 && p.rng.Float64() < p.plan.DupProb {
		atomic.AddInt64(&p.c.Duplicated, 1)
		p.send(pkt)
	}
}

func (p *Proxy) send(pkt []byte) {
	atomic.AddInt64(&p.c.Delivered, 1)
	p.sc.Write(pkt)
}

func (p *Proxy) reverse() {
	defer p.wg.Done()
	buf := make([]byte, 65536)
	for {
		n, err := p.sc.Read(buf)
		if err != nil {
			return
		}
		var out [][]byte
		out, p.revHeld = p.gate(buf[:n], p.revHeld)
		p.mu.Lock()
		client := p.client
		p.mu.Unlock()
		if client == nil {
			continue
		}
		for _, pkt := range out {
			p.lc.WriteToUDP(pkt, client)
		}
	}
}
