package faults_test

import (
	"testing"
	"time"

	"repro/internal/faults"
	"repro/internal/netsim"
)

// The -2% budget of ISSUE 4: wrapping a link in a zero plan must cost at
// most a few branch tests per packet. BenchmarkFixedLinkBare vs
// BenchmarkFixedLinkNoopWrapped is the pair BENCH_pr4.json reports; both
// run the identical 10-second, two-CBR-flow dumbbell, differing only in
// whether the decorator sits on the path.

func benchRun(b *testing.B, wrap bool) {
	const horizon = 10 * time.Second
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sim := netsim.NewSim()
		mk := func(dst netsim.Receiver) netsim.Link {
			return netsim.NewFixedLink(sim, netsim.NewDropTail(200_000), 10, 20*time.Millisecond, dst, 7)
		}
		build := mk
		if wrap {
			build = func(dst netsim.Receiver) netsim.Link {
				return faults.Wrap(sim, &faults.Plan{}, 7, dst, mk)
			}
		}
		d := netsim.NewDumbbell(sim, build, 1400, []netsim.FlowSpec{
			{CBRMbps: 6, Stop: horizon},
			{CBRMbps: 6, Stop: horizon},
		})
		d.Run(horizon)
		if d.Metrics[0].Received == 0 {
			b.Fatal("no delivery")
		}
	}
}

func BenchmarkFixedLinkBare(b *testing.B)        { benchRun(b, false) }
func BenchmarkFixedLinkNoopWrapped(b *testing.B) { benchRun(b, true) }

// BenchmarkFaultPlanActive prices a full stochastic plan (the city-loss
// mix), for the record rather than a budget.
func BenchmarkFaultPlanActive(b *testing.B) {
	const horizon = 10 * time.Second
	plan := faults.CityDrive(horizon)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sim := netsim.NewSim()
		d := netsim.NewDumbbell(sim, func(dst netsim.Receiver) netsim.Link {
			return faults.Wrap(sim, plan, 7, dst, func(fdst netsim.Receiver) netsim.Link {
				return netsim.NewFixedLink(sim, netsim.NewDropTail(200_000), 10, 20*time.Millisecond, fdst, 7)
			})
		}, 1400, []netsim.FlowSpec{
			{CBRMbps: 6, Stop: horizon},
			{CBRMbps: 6, Stop: horizon},
		})
		d.Run(horizon)
	}
}
