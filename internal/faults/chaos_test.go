package faults_test

import (
	"testing"
	"time"

	"repro/internal/cc"
	"repro/internal/faults"
	"repro/internal/netsim"
	"repro/internal/tcp"
	"repro/internal/verus"
)

// The chaos liveness suite: every canned fault plan is swept against the
// hardened Verus and the TCP baselines, and every flow must resume delivery
// within a bounded recovery time after the last timed impairment. This is
// the acceptance bar of ISSUE 4 — the point of the recovery paths is that
// no plan leaves a flow dead. CI runs this under -race (the chaos smoke
// job); the netsim runs here are single-goroutine, and the companion
// transport-level suite exercises the real goroutine paths.

// recoveryBound is how long after the last outage/handover a flow may stay
// silent. It covers a full RTO backoff ladder (the worst post-blackout
// wakeup: 200 ms → 60 s is not reachable in these runs; observed worst
// cases sit near 4-6 s for Verus after the long tunnel) plus a restarted
// slow start.
const recoveryBound = 15 * time.Second

func chaosControllers() map[string]func() cc.Controller {
	return map[string]func() cc.Controller{
		"verus-resilient": func() cc.Controller { return verus.New(verus.ResilientConfig()) },
		"cubic":           func() cc.Controller { return tcp.NewCubic() },
		"newreno":         func() cc.Controller { return tcp.NewNewReno() },
	}
}

func TestChaosLivenessSweep(t *testing.T) {
	const runFor = 60 * time.Second
	names := []string{"verus-resilient", "cubic", "newreno"}
	ctrls := chaosControllers()
	for _, plan := range faults.Names() {
		for _, ctrlName := range names {
			plan, ctrlName := plan, ctrlName
			t.Run(plan+"/"+ctrlName, func(t *testing.T) {
				t.Parallel()
				p, err := faults.ByName(plan, runFor)
				if err != nil {
					t.Fatal(err)
				}
				sim := netsim.NewSim()
				q := netsim.NewDropTail(256 * 1400)
				var fl *faults.Link
				d := netsim.NewDumbbell(sim, func(dst netsim.Receiver) netsim.Link {
					fl = faults.Wrap(sim, p, 42, dst, func(fdst netsim.Receiver) netsim.Link {
						return netsim.NewFixedLink(sim, q, 12, 20*time.Millisecond, fdst, 43)
					})
					return fl
				}, 1400, []netsim.FlowSpec{
					{Ctrl: ctrls[ctrlName](), AckDelay: 20 * time.Millisecond},
					{Ctrl: ctrls[ctrlName](), AckDelay: 20 * time.Millisecond},
				})

				lastEnd := p.LastImpairmentEnd()
				if lastEnd == 0 {
					// Pure stochastic plan: measure from mid-run instead.
					lastEnd = runFor / 2
				}
				sim.Run(lastEnd)
				before := make([]int64, len(d.Metrics))
				for i, m := range d.Metrics {
					before[i] = m.Received
				}
				sim.Run(lastEnd + recoveryBound)
				for i, m := range d.Metrics {
					if m.Received <= before[i] {
						t.Errorf("flow %d dead: no delivery within %v after the last impairment (received stuck at %d; sent %d, timeouts %d)",
							i, recoveryBound, m.Received, m.Sent, m.Timeouts)
					}
				}
				// Sanity: the plan actually did something to this run.
				c := fl.Counters
				touched := c.SendDropped + c.QueueDrained + c.EgressDropped +
					c.BurstLost + c.Corrupted + c.Released
				if touched == 0 {
					t.Errorf("plan %s injected nothing over %v", plan, runFor)
				}
			})
		}
	}
}

// TestChaosRecoveryRebuildsVerus checks the §4.2 integration end to end: a
// double tunnel outage must trigger the resilient config's profile relearn,
// and the flow must still deliver meaningful traffic afterwards.
func TestChaosRecoveryRebuildsVerus(t *testing.T) {
	const runFor = 60 * time.Second
	p, err := faults.ByName(faults.ScenarioTunnelOutage, runFor)
	if err != nil {
		t.Fatal(err)
	}
	v := verus.New(verus.ResilientConfig())
	sim := netsim.NewSim()
	q := netsim.NewDropTail(256 * 1400)
	d := netsim.NewDumbbell(sim, func(dst netsim.Receiver) netsim.Link {
		return faults.Wrap(sim, p, 7, dst, func(fdst netsim.Receiver) netsim.Link {
			return netsim.NewFixedLink(sim, q, 12, 20*time.Millisecond, fdst, 8)
		})
	}, 1400, []netsim.FlowSpec{{Ctrl: v, AckDelay: 20 * time.Millisecond}})
	sim.Run(runFor)

	if _, _, timeouts, _ := v.Stats(); timeouts == 0 {
		t.Fatal("tunnel outages produced no Verus timeout; the scenario is too weak to test recovery")
	}
	if _, relearns := v.RecoveryStats(); relearns == 0 {
		t.Error("consecutive blackout timeouts never triggered a profile relearn")
	}
	m := d.Metrics[0]
	if m.Received == 0 {
		t.Fatal("flow delivered nothing at all")
	}
	// The two tunnels cover ~7 s of a 60 s run; a recovered flow should
	// still land a substantial fraction of what it sent.
	if got := float64(m.Received) / float64(m.Sent); got < 0.5 {
		t.Errorf("delivery ratio %.2f after recovery; the flow never properly resumed", got)
	}
}
