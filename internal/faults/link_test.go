package faults_test

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/faults"
	"repro/internal/netsim"
)

// The netsim conservation identity, extended through the fault layer: every
// packet a source sends is accounted exactly once — rejected at ingress
// during an outage, dropped by the queue, drained at outage onset, lost by
// the inner link, removed by a fault process, or delivered (duplicates add
// to both sides). These tests are the property-level proof that the
// decorator hides no bytes.

func queueDrops(q netsim.Queue) int64 {
	switch q := q.(type) {
	case *netsim.DropTail:
		return int64(q.Drops)
	case *netsim.RED:
		return int64(q.Drops)
	default:
		panic("unknown queue type")
	}
}

func randomQueue(rng *rand.Rand) netsim.Queue {
	if rng.Intn(2) == 0 {
		return netsim.NewDropTail(20_000 + rng.Intn(400_000))
	}
	min := 10_000 + rng.Intn(50_000)
	max := min*2 + rng.Intn(200_000)
	return netsim.NewRED(min, max, 0.02+rng.Float64()*0.3, rng.Int63())
}

func randomSpecs(rng *rand.Rand, stop time.Duration) []netsim.FlowSpec {
	specs := make([]netsim.FlowSpec, 1+rng.Intn(4))
	for i := range specs {
		specs[i] = netsim.FlowSpec{
			CBRMbps: 0.5 + rng.Float64()*10,
			Stop:    stop,
			MTU:     200 + rng.Intn(1400),
		}
	}
	return specs
}

// randomPlan exercises every impairment with randomized parameters. Events
// are laid out by walking time forward, so they are sorted and disjoint by
// construction.
func randomPlan(rng *rand.Rand, span time.Duration) *faults.Plan {
	p := &faults.Plan{Name: "random"}
	at := time.Duration(rng.Int63n(int64(span / 4)))
	for at < span*3/4 {
		dur := time.Duration(50+rng.Intn(700)) * time.Millisecond
		kind := faults.Outage
		if rng.Intn(2) == 0 {
			kind = faults.Handover
		}
		p.Events = append(p.Events, faults.Event{Kind: kind, At: at, Dur: dur})
		at += dur + time.Duration(200+rng.Intn(2000))*time.Millisecond
	}
	if rng.Intn(2) == 0 {
		p.Loss = &faults.GilbertElliott{
			PGoodBad: rng.Float64() * 0.05,
			PBadGood: 0.05 + rng.Float64()*0.3,
			LossGood: rng.Float64() * 0.01,
			LossBad:  rng.Float64() * 0.5,
		}
	}
	p.CorruptProb = rng.Float64() * 0.01
	p.DupProb = rng.Float64() * 0.01
	if rng.Intn(2) == 0 {
		p.ReorderProb = rng.Float64() * 0.02
		p.ReorderDelay = time.Duration(1+rng.Intn(50)) * time.Millisecond
	}
	return p
}

type faultRun struct {
	sim   *netsim.Sim
	d     *netsim.Dumbbell
	fl    *faults.Link
	inner *netsim.FixedLink
	q     netsim.Queue
}

func runFaultDumbbell(seed int64, plan *faults.Plan, rng *rand.Rand, stop, until time.Duration) faultRun {
	sim := netsim.NewSim()
	var r faultRun
	r.sim = sim
	r.q = randomQueue(rng)
	rate := 1 + rng.Float64()*30
	prop := time.Duration(rng.Intn(40)) * time.Millisecond
	specs := randomSpecs(rng, stop)
	r.d = netsim.NewDumbbell(sim, func(dst netsim.Receiver) netsim.Link {
		r.fl = faults.Wrap(sim, plan, seed+7, dst, func(fdst netsim.Receiver) netsim.Link {
			r.inner = netsim.NewFixedLink(sim, r.q, rate, prop, fdst, seed+100)
			return r.inner
		})
		return r.fl
	}, 1400, specs)
	sim.Run(until)
	return r
}

func TestFaultConservationFixedLink(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		rng := rand.New(rand.NewSource(seed))
		stop := time.Duration(3+rng.Intn(5)) * time.Second
		plan := randomPlan(rng, stop)
		if err := plan.Validate(); err != nil {
			t.Fatalf("seed %d: generated invalid plan: %v", seed, err)
		}
		// Quiescence: past the flows, the last timed event, the queue
		// drain, and any pending reorder delay.
		until := stop
		if e := plan.LastImpairmentEnd(); e > until {
			until = e
		}
		until += 5*time.Second + plan.ReorderDelay
		r := runFaultDumbbell(seed, plan, rng, stop, until)

		var sent, received int64
		for _, m := range r.d.Metrics {
			sent += m.Sent
			received += m.Received
		}
		c := r.fl.Counters
		if r.q.Len() != 0 {
			t.Fatalf("seed %d: queue not drained: %d packets", seed, r.q.Len())
		}
		if c.Held != 0 || c.ReorderPending != 0 {
			t.Fatalf("seed %d: not quiescent: held=%d reorderPending=%d", seed, c.Held, c.ReorderPending)
		}
		// Ingress side: every sent packet reached the inner link, was
		// rejected during an outage, was dropped by the queue, or was
		// drained at an outage onset.
		ingress := c.SendDropped + queueDrops(r.q) + c.QueueDrained + r.inner.Lost + r.inner.Delivered
		if ingress != sent {
			t.Errorf("seed %d: ingress conservation: sent=%d but sendDropped=%d + qDrops=%d + drained=%d + lost=%d + delivered=%d = %d",
				seed, sent, c.SendDropped, queueDrops(r.q), c.QueueDrained, r.inner.Lost, r.inner.Delivered, ingress)
		}
		// Egress side: everything the inner link delivered was dropped by
		// an outage, a loss burst, or corruption — or reached the sinks
		// (duplicates inflate Delivered by exactly Duplicated).
		egress := c.EgressDropped + c.BurstLost + c.Corrupted + c.Delivered - c.Duplicated
		if egress != r.inner.Delivered {
			t.Errorf("seed %d: egress conservation: inner delivered %d but egressDropped=%d + burstLost=%d + corrupted=%d + (delivered=%d - dup=%d) = %d",
				seed, r.inner.Delivered, c.EgressDropped, c.BurstLost, c.Corrupted, c.Delivered, c.Duplicated, egress)
		}
		if received != c.Delivered {
			t.Errorf("seed %d: sinks received %d but fault layer delivered %d", seed, received, c.Delivered)
		}
	}
}

// TestFaultPlanDeterminism pins the byte-identical contract: the same seed
// replays the same impairment decisions, packet for packet.
func TestFaultPlanDeterminism(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		run := func() (faults.Counters, []netsim.FlowMetrics) {
			rng := rand.New(rand.NewSource(seed))
			stop := 4 * time.Second
			plan := randomPlan(rng, stop)
			r := runFaultDumbbell(seed, plan, rng, stop, stop+6*time.Second)
			var ms []netsim.FlowMetrics
			for _, m := range r.d.Metrics {
				ms = append(ms, *m)
			}
			return r.fl.Counters, ms
		}
		c1, m1 := run()
		c2, m2 := run()
		if c1 != c2 {
			t.Fatalf("seed %d: counters differ across identical runs:\n%+v\n%+v", seed, c1, c2)
		}
		for i := range m1 {
			if m1[i].Sent != m2[i].Sent || m1[i].Received != m2[i].Received {
				t.Fatalf("seed %d flow %d: metrics differ: sent %d/%d received %d/%d",
					seed, i, m1[i].Sent, m2[i].Sent, m1[i].Received, m2[i].Received)
			}
		}
	}
}

// TestOutageSemantics scripts one blackout and checks the queue-drain and
// delivery-freeze behavior at exact virtual times.
func TestOutageSemantics(t *testing.T) {
	sim := netsim.NewSim()
	plan := &faults.Plan{
		Name:   "one-outage",
		Events: []faults.Event{{Kind: faults.Outage, At: 1 * time.Second, Dur: 2 * time.Second}},
	}
	q := netsim.NewDropTail(1 << 20)
	var fl *faults.Link
	d := netsim.NewDumbbell(sim, func(dst netsim.Receiver) netsim.Link {
		fl = faults.Wrap(sim, plan, 1, dst, func(fdst netsim.Receiver) netsim.Link {
			// 1 Mbps bottleneck fed at 4 Mbps: the queue is non-empty when
			// the outage hits, so the drain is observable.
			return netsim.NewFixedLink(sim, q, 1, 5*time.Millisecond, fdst, 2)
		})
		return fl
	}, 1400, []netsim.FlowSpec{{CBRMbps: 4, Stop: 6 * time.Second}})

	sim.Run(1100 * time.Millisecond) // inside the outage
	if q.Len() != 0 {
		t.Fatalf("queue holds %d packets during outage; drain should have emptied it", q.Len())
	}
	if fl.QueueDrained == 0 {
		t.Fatal("outage onset drained nothing; expected a backlog at a 4:1 overload")
	}
	atOutage := d.Metrics[0].Received
	sim.Run(2900 * time.Millisecond) // still inside
	if got := d.Metrics[0].Received; got != atOutage {
		t.Fatalf("sink received %d packets during the blackout (had %d)", got-atOutage, atOutage)
	}
	if fl.SendDropped == 0 {
		t.Fatal("no ingress drops during a 2 s outage under a live CBR source")
	}
	sim.Run(8 * time.Second) // after recovery and drain
	if got := d.Metrics[0].Received; got <= atOutage {
		t.Fatal("delivery did not resume after the outage")
	}
}

// TestHandoverSemantics scripts one stall and checks freeze-then-burst:
// nothing is delivered inside the window, and the held packets arrive after
// it ends.
func TestHandoverSemantics(t *testing.T) {
	sim := netsim.NewSim()
	plan := &faults.Plan{
		Name:   "one-handover",
		Events: []faults.Event{{Kind: faults.Handover, At: 1 * time.Second, Dur: 500 * time.Millisecond}},
	}
	q := netsim.NewDropTail(1 << 20)
	var fl *faults.Link
	d := netsim.NewDumbbell(sim, func(dst netsim.Receiver) netsim.Link {
		fl = faults.Wrap(sim, plan, 1, dst, func(fdst netsim.Receiver) netsim.Link {
			return netsim.NewFixedLink(sim, q, 8, 5*time.Millisecond, fdst, 2)
		})
		return fl
	}, 1400, []netsim.FlowSpec{{CBRMbps: 4, Stop: 3 * time.Second}})

	sim.Run(1 * time.Second)
	atStall := d.Metrics[0].Received
	sim.Run(1490 * time.Millisecond) // just before the stall ends
	if got := d.Metrics[0].Received; got != atStall {
		t.Fatalf("sink received %d packets during the stall", got-atStall)
	}
	if fl.Held == 0 {
		t.Fatal("stall held nothing; the link should be freezing deliveries")
	}
	sim.Run(5 * time.Second)
	if fl.Held != 0 {
		t.Fatalf("%d packets still held after the stall", fl.Held)
	}
	if fl.Released == 0 {
		t.Fatal("stall released nothing at its end")
	}
	var sent int64
	sent = d.Metrics[0].Sent
	total := queueDrops(q) + fl.Counters.Delivered
	if total != sent {
		t.Fatalf("handover leaked packets: sent=%d, qDrops+delivered=%d", sent, total)
	}
}

func TestPlanValidate(t *testing.T) {
	cases := []struct {
		name string
		p    *faults.Plan
		ok   bool
	}{
		{"nil", nil, true},
		{"zero", &faults.Plan{}, true},
		{"negative prob", &faults.Plan{CorruptProb: -0.1}, false},
		{"prob above one", &faults.Plan{DupProb: 1.5}, false},
		{"reorder without delay", &faults.Plan{ReorderProb: 0.1}, false},
		{"unsorted events", &faults.Plan{Events: []faults.Event{
			{Kind: faults.Outage, At: 2 * time.Second, Dur: time.Second},
			{Kind: faults.Outage, At: 1 * time.Second, Dur: time.Second},
		}}, false},
		{"overlapping events", &faults.Plan{Events: []faults.Event{
			{Kind: faults.Outage, At: time.Second, Dur: 2 * time.Second},
			{Kind: faults.Handover, At: 2 * time.Second, Dur: time.Second},
		}}, false},
		{"zero duration", &faults.Plan{Events: []faults.Event{
			{Kind: faults.Outage, At: time.Second},
		}}, false},
		{"bad GE", &faults.Plan{Loss: &faults.GilbertElliott{PGoodBad: 2}}, false},
		{"valid full", &faults.Plan{
			Events: []faults.Event{
				{Kind: faults.Outage, At: time.Second, Dur: time.Second},
				{Kind: faults.Handover, At: 3 * time.Second, Dur: time.Second},
			},
			Loss:         &faults.GilbertElliott{PGoodBad: 0.01, PBadGood: 0.2, LossBad: 0.3},
			CorruptProb:  0.001,
			DupProb:      0.001,
			ReorderProb:  0.01,
			ReorderDelay: 10 * time.Millisecond,
		}, true},
	}
	for _, tc := range cases {
		err := tc.p.Validate()
		if tc.ok && err != nil {
			t.Errorf("%s: unexpected error %v", tc.name, err)
		}
		if !tc.ok && err == nil {
			t.Errorf("%s: validation passed, want error", tc.name)
		}
	}
}

func TestCannedScenarios(t *testing.T) {
	d := 60 * time.Second
	for _, name := range faults.Names() {
		p, err := faults.ByName(name, d)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := p.Validate(); err != nil {
			t.Errorf("%s: invalid plan: %v", name, err)
		}
		if p.IsZero() {
			t.Errorf("%s: canned plan injects nothing", name)
		}
		if e := p.LastImpairmentEnd(); e > d {
			t.Errorf("%s: last event ends at %v, past the %v run", name, e, d)
		}
	}
	if _, err := faults.ByName("no-such-plan", d); err == nil {
		t.Error("unknown scenario name did not error")
	}
	// The handover train derives from scenario mobility parameters; a
	// stationary scenario must produce no events.
	if p, _ := faults.ByName(faults.ScenarioHighwayHandover, d); len(p.Events) == 0 {
		t.Error("highway handover train is empty over 60 s")
	}
}
