package faults_test

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/netsim"
)

// TestFaultPathPoolConservation is the pool-level twin of the counter
// conservation identity: after a randomized fault run reaches quiescence,
// every packet checked out of the sim's pool has been released exactly once
// — through whichever exit it took (ingress rejection, queue drop, outage
// drain, inner-link loss, burst loss, corruption discard, stall-hold
// release, reorder re-delivery, duplication, or plain delivery to a sink).
// A single retained pointer shows up as Live() != 0, so this catches leaks
// on any branch the counters alone cannot see. Run with -tags pooldebug for
// the complementary direction (double releases panic).
func TestFaultPathPoolConservation(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		rng := rand.New(rand.NewSource(seed))
		stop := time.Duration(3+rng.Intn(5)) * time.Second
		plan := randomPlan(rng, stop)
		until := stop
		if e := plan.LastImpairmentEnd(); e > until {
			until = e
		}
		until += 5*time.Second + plan.ReorderDelay
		r := runFaultDumbbell(seed, plan, rng, stop, until)

		// Quiescence first: a packet parked in a queue or a stall hold is
		// live by design, and would make the leak check meaningless.
		if r.q.Len() != 0 || r.fl.Held != 0 || r.fl.ReorderPending != 0 {
			t.Fatalf("seed %d: not quiescent: qlen=%d held=%d reorderPending=%d",
				seed, r.q.Len(), r.fl.Held, r.fl.ReorderPending)
		}
		st := r.sim.PoolStats()
		if st.Gets == 0 {
			t.Fatalf("seed %d: no pool traffic; leak check vacuous", seed)
		}
		if st.Live() != 0 {
			t.Errorf("seed %d: pool leak: %d live packets after drain (gets=%d frees=%d, counters=%+v)",
				seed, st.Live(), st.Gets, st.Frees, r.fl.Counters)
		}
		// Duplicates allocate through ClonePacket, so gets exceed sends; the
		// ledger still has to balance exactly.
		if st.Frees != st.Gets {
			t.Errorf("seed %d: pool ledger imbalance: gets=%d frees=%d", seed, st.Gets, st.Frees)
		}
	}
}

// TestFaultPathPoolRecycles checks the pool actually recycles under fault
// churn: far fewer heap allocations than checkouts once the working set is
// warm. This is the perf claim of the PR in property form — the fault layer
// rides the free list, it does not defeat it.
func TestFaultPathPoolRecycles(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	// Long enough that heap growth (sized by the peak in-flight set during
	// the first outage/queue ramp) is small next to total checkouts.
	stop := 25 * time.Second
	plan := randomPlan(rng, stop)
	r := runFaultDumbbell(42, plan, rng, stop, stop+5*time.Second+plan.ReorderDelay)
	st := r.sim.PoolStats()
	if st.Gets < 1000 {
		t.Fatalf("only %d checkouts; workload too small to judge recycling", st.Gets)
	}
	if st.Allocated*10 > st.Gets {
		t.Fatalf("pool barely recycles: %d heap allocations for %d checkouts (want <10%%)",
			st.Allocated, st.Gets)
	}
	_ = netsim.PoolDebug // document the tag exists in both build modes
}
