package snap

import (
	"fmt"
	"math/rand"
)

// Source is a math/rand Source64 that remembers its seed and counts state
// advances, which makes the stream position serializable: a snapshot is the
// pair (seed, draws), and restore reseeds and replays that many advances.
//
// Counting happens at the source level, not the rand.Rand API level, on
// purpose: rand.Rand methods consume a variable number of source draws
// (Int63n rejection-samples, Float64 re-draws values that round to 1), so an
// API-level count would not locate the stream position. Every source-level
// call — Int63 or Uint64 — advances the underlying generator exactly one
// step, so one counter captures the position regardless of which mix of
// rand.Rand methods produced the draws.
//
// The wrapped source is rand.NewSource(seed), so rand.New(NewSource(seed))
// produces bit-for-bit the value stream of rand.New(rand.NewSource(seed)) —
// adopting Source inside a component cannot move a golden digest.
type Source struct {
	seed  int64
	draws uint64
	src   rand.Source64
}

// NewSource returns a counting source seeded with seed.
func NewSource(seed int64) *Source {
	src, ok := rand.NewSource(seed).(rand.Source64)
	if !ok {
		// rand.NewSource has returned a Source64 since Go 1.8; a runtime
		// that breaks that would silently fork every RNG stream here.
		panic("snap: rand.NewSource does not implement rand.Source64")
	}
	return &Source{seed: seed, src: src}
}

// Int63 implements rand.Source.
func (s *Source) Int63() int64 {
	s.draws++
	return s.src.Int63()
}

// Uint64 implements rand.Source64.
func (s *Source) Uint64() uint64 {
	s.draws++
	return s.src.Uint64()
}

// Seed implements rand.Source, resetting the draw count with the stream.
func (s *Source) Seed(seed int64) {
	s.seed = seed
	s.draws = 0
	s.src.Seed(seed)
}

// Draws returns the number of state advances since the last seed.
func (s *Source) Draws() uint64 { return s.draws }

// Snapshot writes the stream position.
func (s *Source) Snapshot(e *Encoder) {
	e.I64(s.seed)
	e.U64(s.draws)
}

// Restore reseeds and fast-forwards to the snapshotted position. Each
// Int63 and Uint64 call advances the generator exactly one step, so
// replaying with Uint64 reproduces the state no matter which methods
// performed the original draws.
func (s *Source) Restore(d *Decoder) {
	seed := d.I64()
	draws := d.U64()
	if d.Err() != nil {
		return
	}
	const maxReplay = 1 << 34 // ~17e9 draws; far beyond any simulated trial
	if draws > maxReplay {
		d.Fail(fmt.Errorf("snap: RNG draw count %d exceeds replay bound", draws))
		return
	}
	s.Seed(seed)
	for i := uint64(0); i < draws; i++ {
		s.src.Uint64()
	}
	s.draws = draws
}
