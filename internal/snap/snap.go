// Package snap is the checkpoint codec for the simulator: a deterministic,
// length-prefixed binary format with a version header and a CRC-32 trailer
// (DESIGN.md §15).
//
// The format is deliberately dumb. Every value is written little-endian at a
// fixed width (or with an explicit u32 length prefix for byte strings), so
// an encoding is a pure function of the value sequence — no maps, no
// reflection, no varints whose width depends on the platform. Section tags
// (Tag/Expect) are part of the byte stream: they cost a few bytes per
// component but turn an encode/decode order skew — the classic snapshot bug
// — into an immediate, named error instead of a silently corrupt restore.
//
// Error handling is sticky on both sides. An Encoder that has failed ignores
// further writes; a Decoder that has failed (short read, tag mismatch,
// Fail()) returns zero values from then on and reports the first error from
// Err. Callers check once, at the end, which keeps Snapshot/Restore
// implementations free of per-field error plumbing.
//
// A complete snapshot file is
//
//	magic "VSNP" | u32 version | payload ... | u32 crc32(IEEE, magic..payload)
//
// and Decode verifies magic, version, and CRC before handing out a single
// payload byte — a truncated, corrupted, or wrong-version file fails closed,
// never a partial restore.
package snap

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"
	"time"
)

// Magic identifies a snapshot file.
const Magic = "VSNP"

// Version is the current snapshot format version. Bump it whenever the
// payload layout of any component changes; Decode rejects every other
// version, so a stale checkpoint can never be half-applied to new code.
// Version 2: packets and flow metrics carry delay-attribution state, and
// metro trials carry per-cell attribution aggregates.
const Version uint32 = 2

// ErrTruncated reports a payload that ended mid-value.
var ErrTruncated = errors.New("snap: truncated snapshot")

// Encoder accumulates a snapshot payload. The zero value is ready to use.
type Encoder struct {
	buf []byte
	err error
}

// NewEncoder returns an empty encoder.
func NewEncoder() *Encoder { return &Encoder{} }

// Fail marks the encoder failed; subsequent writes are ignored.
func (e *Encoder) Fail(err error) {
	if e.err == nil && err != nil {
		e.err = err
	}
}

// Err returns the first error recorded by Fail.
func (e *Encoder) Err() error { return e.err }

// Len returns the current payload size in bytes.
func (e *Encoder) Len() int { return len(e.buf) }

// U8 writes one byte.
func (e *Encoder) U8(v uint8) {
	if e.err != nil {
		return
	}
	e.buf = append(e.buf, v)
}

// U32 writes a little-endian uint32.
func (e *Encoder) U32(v uint32) {
	if e.err != nil {
		return
	}
	e.buf = binary.LittleEndian.AppendUint32(e.buf, v)
}

// U64 writes a little-endian uint64.
func (e *Encoder) U64(v uint64) {
	if e.err != nil {
		return
	}
	e.buf = binary.LittleEndian.AppendUint64(e.buf, v)
}

// I64 writes an int64 as its two's-complement uint64 image.
func (e *Encoder) I64(v int64) { e.U64(uint64(v)) }

// Int writes a platform int as int64.
func (e *Encoder) Int(v int) { e.I64(int64(v)) }

// Bool writes a bool as one byte (0 or 1).
func (e *Encoder) Bool(v bool) {
	if v {
		e.U8(1)
	} else {
		e.U8(0)
	}
}

// F64 writes a float64 as its IEEE-754 bit pattern — bit-exact, including
// NaN payloads and signed zeros.
func (e *Encoder) F64(v float64) { e.U64(math.Float64bits(v)) }

// Dur writes a time.Duration as int64 nanoseconds.
func (e *Encoder) Dur(v time.Duration) { e.I64(int64(v)) }

// Bytes writes a u32 length prefix followed by the raw bytes.
func (e *Encoder) Bytes(v []byte) {
	if len(v) > math.MaxUint32 {
		e.Fail(fmt.Errorf("snap: byte string of %d bytes exceeds u32 length prefix", len(v)))
		return
	}
	e.U32(uint32(len(v)))
	if e.err != nil {
		return
	}
	e.buf = append(e.buf, v...)
}

// Str writes a string as Bytes.
func (e *Encoder) Str(v string) {
	if len(v) > math.MaxUint32 {
		e.Fail(fmt.Errorf("snap: string of %d bytes exceeds u32 length prefix", len(v)))
		return
	}
	e.U32(uint32(len(v)))
	if e.err != nil {
		return
	}
	e.buf = append(e.buf, v...)
}

// I64s writes a u32 count followed by each element.
func (e *Encoder) I64s(v []int64) {
	e.U32(uint32(len(v)))
	for _, x := range v {
		e.I64(x)
	}
}

// F64s writes a u32 count followed by each element's bit pattern.
func (e *Encoder) F64s(v []float64) {
	e.U32(uint32(len(v)))
	for _, x := range v {
		e.F64(x)
	}
}

// Tag writes a section marker. Decoder.Expect with the same name consumes
// it; a mismatch is a hard decode error naming both sides.
func (e *Encoder) Tag(name string) { e.Str(name) }

// Encode frames the payload into a complete snapshot: magic, version,
// payload, CRC trailer. It returns the encoder's sticky error, if any.
func (e *Encoder) Encode(version uint32) ([]byte, error) {
	if e.err != nil {
		return nil, e.err
	}
	out := make([]byte, 0, len(Magic)+8+len(e.buf)+4)
	out = append(out, Magic...)
	out = binary.LittleEndian.AppendUint32(out, version)
	out = append(out, e.buf...)
	crc := crc32.ChecksumIEEE(out)
	out = binary.LittleEndian.AppendUint32(out, crc)
	return out, nil
}

// Decoder consumes a snapshot payload produced by Encoder.
type Decoder struct {
	buf []byte
	off int
	err error
}

// Decode verifies the framing of a complete snapshot — magic, version, CRC
// trailer — and returns a decoder positioned at the payload. Any framing
// violation is an error before a single payload byte is exposed.
func Decode(data []byte, wantVersion uint32) (*Decoder, error) {
	if len(data) < len(Magic)+4+4 {
		return nil, fmt.Errorf("snap: file of %d bytes is too short to be a snapshot: %w", len(data), ErrTruncated)
	}
	body, trailer := data[:len(data)-4], data[len(data)-4:]
	if got, want := crc32.ChecksumIEEE(body), binary.LittleEndian.Uint32(trailer); got != want {
		return nil, fmt.Errorf("snap: CRC mismatch (file %08x, computed %08x): snapshot is corrupted or truncated", want, got)
	}
	if string(body[:len(Magic)]) != Magic {
		return nil, fmt.Errorf("snap: bad magic %q, not a snapshot file", body[:len(Magic)])
	}
	if v := binary.LittleEndian.Uint32(body[len(Magic):]); v != wantVersion {
		return nil, fmt.Errorf("snap: format version %d, this build reads version %d", v, wantVersion)
	}
	return &Decoder{buf: body[len(Magic)+4:]}, nil
}

// Fail marks the decoder failed; subsequent reads return zero values.
func (d *Decoder) Fail(err error) {
	if d.err == nil && err != nil {
		d.err = err
	}
}

// Err returns the first error recorded by a read or Fail.
func (d *Decoder) Err() error { return d.err }

// Remaining returns the number of unconsumed payload bytes.
func (d *Decoder) Remaining() int { return len(d.buf) - d.off }

// Done verifies the payload was consumed exactly: no sticky error and no
// trailing bytes. Call it once after the last field.
func (d *Decoder) Done() error {
	if d.err != nil {
		return d.err
	}
	if n := d.Remaining(); n != 0 {
		return fmt.Errorf("snap: %d trailing bytes after final field", n)
	}
	return nil
}

// take consumes n payload bytes, failing the decoder on a short read.
func (d *Decoder) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if d.Remaining() < n {
		d.Fail(fmt.Errorf("snap: need %d bytes at offset %d, have %d: %w", n, d.off, d.Remaining(), ErrTruncated))
		return nil
	}
	b := d.buf[d.off : d.off+n]
	d.off += n
	return b
}

// U8 reads one byte.
func (d *Decoder) U8() uint8 {
	b := d.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

// U32 reads a little-endian uint32.
func (d *Decoder) U32() uint32 {
	b := d.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

// U64 reads a little-endian uint64.
func (d *Decoder) U64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

// I64 reads an int64.
func (d *Decoder) I64() int64 { return int64(d.U64()) }

// Int reads an int written by Encoder.Int.
func (d *Decoder) Int() int { return int(d.I64()) }

// Bool reads a bool, rejecting any byte other than 0 or 1.
func (d *Decoder) Bool() bool {
	switch v := d.U8(); v {
	case 0:
		return false
	case 1:
		return true
	default:
		d.Fail(fmt.Errorf("snap: invalid bool byte %d", v))
		return false
	}
}

// F64 reads a float64 bit pattern.
func (d *Decoder) F64() float64 { return math.Float64frombits(d.U64()) }

// Dur reads a time.Duration.
func (d *Decoder) Dur() time.Duration { return time.Duration(d.I64()) }

// Bytes reads a length-prefixed byte string into a fresh slice.
func (d *Decoder) Bytes() []byte {
	n := int(d.U32())
	b := d.take(n)
	if b == nil {
		return nil
	}
	out := make([]byte, n)
	copy(out, b)
	return out
}

// Str reads a length-prefixed string.
func (d *Decoder) Str() string {
	n := int(d.U32())
	b := d.take(n)
	if b == nil {
		return ""
	}
	return string(b)
}

// I64s reads a counted int64 slice. A zero count yields a nil slice.
func (d *Decoder) I64s() []int64 {
	n := int(d.U32())
	if d.err != nil || n == 0 {
		return nil
	}
	if d.Remaining() < 8*n {
		d.Fail(fmt.Errorf("snap: int64 slice of %d elements overruns payload: %w", n, ErrTruncated))
		return nil
	}
	out := make([]int64, n)
	for i := range out {
		out[i] = d.I64()
	}
	return out
}

// F64s reads a counted float64 slice. A zero count yields a nil slice.
func (d *Decoder) F64s() []float64 {
	n := int(d.U32())
	if d.err != nil || n == 0 {
		return nil
	}
	if d.Remaining() < 8*n {
		d.Fail(fmt.Errorf("snap: float64 slice of %d elements overruns payload: %w", n, ErrTruncated))
		return nil
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = d.F64()
	}
	return out
}

// Expect consumes a section tag written by Encoder.Tag and fails the decode
// if it does not match — the guard against encode/decode order skew.
func (d *Decoder) Expect(name string) {
	if d.err != nil {
		return
	}
	got := d.Str()
	if d.err == nil && got != name {
		d.Fail(fmt.Errorf("snap: section tag mismatch: decoding %q, stream has %q", name, got))
	}
}

// WriteFile frames the encoder's payload and writes it atomically: the bytes
// land in a temp file in the destination directory, which is fsynced and
// renamed over path. A crash mid-write leaves the previous complete
// checkpoint in place, never a torn file.
func WriteFile(path string, e *Encoder, version uint32) error {
	data, err := e.Encode(version)
	if err != nil {
		return err
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// ReadFile reads and verifies a snapshot file written by WriteFile.
func ReadFile(path string, version uint32) (*Decoder, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	d, err := Decode(data, version)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return d, nil
}

// Snapshotter is implemented by every component that participates in a
// checkpoint: Snapshot appends the component's mutable state to the
// encoder, Restore consumes the same fields in the same order. Restore
// implementations record failures on the decoder (Fail) rather than
// returning errors; the orchestrator checks Err once at the end.
type Snapshotter interface {
	Snapshot(*Encoder)
	Restore(*Decoder)
}
