package snap

import (
	"errors"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// TestRoundTrip drives every codec primitive through an encode/decode cycle
// and requires exact recovery, including float bit patterns.
func TestRoundTrip(t *testing.T) {
	e := NewEncoder()
	e.Tag("header")
	e.U8(7)
	e.U32(0xDEADBEEF)
	e.U64(math.MaxUint64)
	e.I64(-42)
	e.Int(123456)
	e.Bool(true)
	e.Bool(false)
	e.F64(-0.0)
	e.F64(math.Inf(-1))
	e.F64(3.14159)
	e.Dur(1500 * time.Millisecond)
	e.Bytes([]byte{1, 2, 3})
	e.Bytes(nil)
	e.Str("hello")
	e.I64s([]int64{-1, 0, 1})
	e.F64s([]float64{0.5, -0.25})
	e.Tag("trailer")
	data, err := e.Encode(Version)
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}

	d, err := Decode(data, Version)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	d.Expect("header")
	if v := d.U8(); v != 7 {
		t.Errorf("U8 = %d", v)
	}
	if v := d.U32(); v != 0xDEADBEEF {
		t.Errorf("U32 = %#x", v)
	}
	if v := d.U64(); v != math.MaxUint64 {
		t.Errorf("U64 = %d", v)
	}
	if v := d.I64(); v != -42 {
		t.Errorf("I64 = %d", v)
	}
	if v := d.Int(); v != 123456 {
		t.Errorf("Int = %d", v)
	}
	if v := d.Bool(); v != true {
		t.Errorf("Bool = %v", v)
	}
	if v := d.Bool(); v != false {
		t.Errorf("Bool = %v", v)
	}
	if v := d.F64(); math.Float64bits(v) != math.Float64bits(-0.0) {
		t.Errorf("F64 negative zero lost: %v", v)
	}
	if v := d.F64(); !math.IsInf(v, -1) {
		t.Errorf("F64 -Inf lost: %v", v)
	}
	if v := d.F64(); v != 3.14159 {
		t.Errorf("F64 = %v", v)
	}
	if v := d.Dur(); v != 1500*time.Millisecond {
		t.Errorf("Dur = %v", v)
	}
	if v := d.Bytes(); len(v) != 3 || v[0] != 1 || v[2] != 3 {
		t.Errorf("Bytes = %v", v)
	}
	if v := d.Bytes(); len(v) != 0 {
		t.Errorf("nil Bytes = %v", v)
	}
	if v := d.Str(); v != "hello" {
		t.Errorf("Str = %q", v)
	}
	if v := d.I64s(); len(v) != 3 || v[0] != -1 || v[2] != 1 {
		t.Errorf("I64s = %v", v)
	}
	if v := d.F64s(); len(v) != 2 || v[0] != 0.5 || v[1] != -0.25 {
		t.Errorf("F64s = %v", v)
	}
	d.Expect("trailer")
	if err := d.Done(); err != nil {
		t.Fatalf("Done: %v", err)
	}
}

// TestFramingRejections proves the fail-closed framing contract: truncation,
// corruption, wrong version, and bad magic all refuse to decode.
func TestFramingRejections(t *testing.T) {
	e := NewEncoder()
	e.Tag("body")
	e.U64(12345)
	data, err := e.Encode(Version)
	if err != nil {
		t.Fatal(err)
	}

	if _, err := Decode(data, Version); err != nil {
		t.Fatalf("pristine file rejected: %v", err)
	}
	if _, err := Decode(data[:len(data)-1], Version); err == nil {
		t.Error("truncated file accepted")
	}
	if _, err := Decode(data[:5], Version); !errors.Is(err, ErrTruncated) {
		t.Errorf("short file: got %v, want ErrTruncated", err)
	}
	if _, err := Decode(nil, Version); !errors.Is(err, ErrTruncated) {
		t.Errorf("empty file: got %v, want ErrTruncated", err)
	}
	for i := 0; i < len(data); i++ {
		bad := append([]byte(nil), data...)
		bad[i] ^= 0x40
		if _, err := Decode(bad, Version); err == nil {
			t.Fatalf("single-bit corruption at byte %d accepted", i)
		}
	}
	if _, err := Decode(data, Version+1); err == nil {
		t.Error("wrong version accepted")
	}
	// Wrong-version detection must win over a generic CRC story when the
	// file is otherwise intact: re-frame at a future version.
	e2 := NewEncoder()
	e2.Tag("body")
	e2.U64(12345)
	future, err := e2.Encode(Version + 9)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Decode(future, Version); err == nil || !contains(err.Error(), "version") {
		t.Errorf("future-version file: got %v, want version error", err)
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

// TestStickyErrors locks in the sticky-error contract: a failed decoder
// returns zero values and keeps the first error.
func TestStickyErrors(t *testing.T) {
	e := NewEncoder()
	e.U8(1)
	data, err := e.Encode(Version)
	if err != nil {
		t.Fatal(err)
	}
	d, err := Decode(data, Version)
	if err != nil {
		t.Fatal(err)
	}
	_ = d.U8()
	if v := d.U64(); v != 0 {
		t.Errorf("overread returned %d, want 0", v)
	}
	first := d.Err()
	if first == nil {
		t.Fatal("overread did not set error")
	}
	_ = d.Str()
	if d.Err() != first {
		t.Error("second failure replaced the first error")
	}
	if err := d.Done(); err != first {
		t.Errorf("Done = %v, want first error", err)
	}

	// Tag mismatch names both sides.
	e2 := NewEncoder()
	e2.Tag("mesh")
	data2, _ := e2.Encode(Version)
	d2, _ := Decode(data2, Version)
	d2.Expect("heap")
	if err := d2.Err(); err == nil || !contains(err.Error(), "mesh") || !contains(err.Error(), "heap") {
		t.Errorf("tag mismatch error %v does not name both tags", err)
	}

	// A failed encoder refuses to frame.
	e3 := NewEncoder()
	e3.Fail(errors.New("component refused"))
	e3.U64(1)
	if _, err := e3.Encode(Version); err == nil {
		t.Error("failed encoder framed a payload")
	}
}

// TestWriteReadFile exercises the atomic file path end to end, including
// on-disk truncation and corruption rejection.
func TestWriteReadFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ckpt.snap")
	e := NewEncoder()
	e.Tag("file")
	e.I64(-7)
	if err := WriteFile(path, e, Version); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	d, err := ReadFile(path, Version)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	d.Expect("file")
	if v := d.I64(); v != -7 {
		t.Errorf("payload = %d", v)
	}
	if err := d.Done(); err != nil {
		t.Fatal(err)
	}
	// No temp litter after a successful write.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Errorf("directory has %d entries after WriteFile, want 1", len(entries))
	}

	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, raw[:len(raw)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFile(path, Version); err == nil {
		t.Error("truncated on-disk file accepted")
	}
	raw[len(raw)/2] ^= 0xFF
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFile(path, Version); err == nil {
		t.Error("corrupted on-disk file accepted")
	}
	if _, err := ReadFile(filepath.Join(dir, "missing.snap"), Version); err == nil {
		t.Error("missing file accepted")
	}
}

// TestSourceStreamIdentity proves adopting Source inside a component cannot
// change a digest: the rand.Rand value stream matches rand.NewSource exactly
// across the full method surface components use.
func TestSourceStreamIdentity(t *testing.T) {
	ref := rand.New(rand.NewSource(99))
	got := rand.New(NewSource(99))
	for i := 0; i < 10000; i++ {
		switch i % 5 {
		case 0:
			if a, b := ref.Float64(), got.Float64(); a != b {
				t.Fatalf("Float64 diverged at draw %d: %v vs %v", i, a, b)
			}
		case 1:
			if a, b := ref.Int63(), got.Int63(); a != b {
				t.Fatalf("Int63 diverged at draw %d", i)
			}
		case 2:
			if a, b := ref.Intn(1000), got.Intn(1000); a != b {
				t.Fatalf("Intn diverged at draw %d", i)
			}
		case 3:
			if a, b := ref.Uint64(), got.Uint64(); a != b {
				t.Fatalf("Uint64 diverged at draw %d", i)
			}
		case 4:
			if a, b := ref.NormFloat64(), got.NormFloat64(); a != b {
				t.Fatalf("NormFloat64 diverged at draw %d", i)
			}
		}
	}
}

// TestSourceSnapshotRestore proves the (seed, draws) pair relocates the
// stream exactly: a restored source continues with the same values the
// original produced, from any position and any mix of draw methods.
func TestSourceSnapshotRestore(t *testing.T) {
	src := NewSource(1234)
	r := rand.New(src)
	for i := 0; i < 777; i++ {
		switch i % 3 {
		case 0:
			r.Float64()
		case 1:
			r.Intn(17) // rejection sampling: variable source draws per call
		case 2:
			r.Uint64()
		}
	}
	e := NewEncoder()
	src.Snapshot(e)
	data, err := e.Encode(Version)
	if err != nil {
		t.Fatal(err)
	}

	d, err := Decode(data, Version)
	if err != nil {
		t.Fatal(err)
	}
	src2 := NewSource(0)
	src2.Restore(d)
	if err := d.Done(); err != nil {
		t.Fatal(err)
	}
	r2 := rand.New(src2)
	for i := 0; i < 1000; i++ {
		if a, b := r.Float64(), r2.Float64(); a != b {
			t.Fatalf("restored stream diverged at draw %d: %v vs %v", i, a, b)
		}
	}
	if src.Draws() != src2.Draws() {
		t.Errorf("draw counters diverged: %d vs %d", src.Draws(), src2.Draws())
	}
}
