package netsim

import "time"

// Packet pooling (DESIGN.md §13): the steady-state hot path must not touch
// the allocator, so every Packet is recycled through a per-Sim free list
// instead of being garbage. Ownership follows the timeline, not the
// allocation site: a packet is always released into the pool of the Sim
// whose event is executing at the release point, so a mesh cell only ever
// touches its own free list and sharded execution needs no synchronization
// (packets that migrate across cells simply change pools).
//
// The release points are threaded through the full packet lifecycle and
// exist exactly once per path:
//
//   - queue rejection        → linkCore.ingress
//   - i.i.d. link loss       → linkCore.finish
//   - fault-layer discards   → faults.Link (outage, stall-interrupt,
//     burst loss, corruption), via Sim.FreePacket
//   - duplication            → the copy is a pool clone (Sim.ClonePacket);
//     each copy is released independently
//   - delivery               → the flow's ack path (Source.Receive) for
//     controlled flows, the Sink for feedback-free (CBR) flows
//
// Everything else — queues, events, lookahead channels — only borrows the
// packet. Building with -tags pooldebug arms release poisoning that panics
// on double-release and use-after-release (see pooldebug_on.go).

// PacketPoolStats is a snapshot of one Sim's pool counters.
type PacketPoolStats struct {
	// Allocated counts fresh heap allocations (pool misses).
	Allocated uint64
	// Gets counts every packet handed out (NewPacket + ClonePacket).
	Gets uint64
	// Frees counts every packet returned.
	Frees uint64
}

// Live returns the number of packets currently checked out of this pool:
// gets minus frees. Note that in a mesh, packets migrate between cell pools,
// so per-cell Live can go negative; sum across cells for the topology-wide
// leak count.
func (st PacketPoolStats) Live() int64 { return int64(st.Gets) - int64(st.Frees) }

// packetPool is a LIFO free list of packets, owned by exactly one Sim.
type packetPool struct {
	free  []*Packet
	stats PacketPoolStats
}

// get returns a packet with unspecified field values; every caller must
// overwrite all of them.
func (pp *packetPool) get() *Packet {
	pp.stats.Gets++
	if n := len(pp.free); n > 0 {
		p := pp.free[n-1]
		pp.free[n-1] = nil
		pp.free = pp.free[:n-1]
		p.markLive()
		return p
	}
	pp.stats.Allocated++
	//lint:poolrelease pool-internal -- the pool's own backing allocation: every other &Packet{} in sim code must go through NewPacket/ClonePacket
	return &Packet{}
}

// NewPacket checks a packet out of this Sim's pool with every field set.
// It is the only sanctioned way for simulation code to create a Packet
// (enforced by the poolrelease analyzer); the packet must eventually be
// handed back with FreePacket by whichever component ends its life.
func (s *Sim) NewPacket(flow int, seq int64, bytes int, sentAt time.Duration, window int) *Packet {
	p := s.pool.get()
	p.Flow = flow
	p.Seq = seq
	p.Bytes = bytes
	p.SentAt = sentAt
	p.Window = window
	p.resetAttrib(sentAt)
	return p
}

// ClonePacket checks out a field-for-field copy of p — the duplication
// primitive: a decorator that delivers a packet twice must deliver the
// original and a clone, never the same pointer, so each copy can be
// released exactly once.
func (s *Sim) ClonePacket(p *Packet) *Packet {
	AssertLive(p, "ClonePacket")
	q := s.pool.get()
	q.Flow = p.Flow
	q.Seq = p.Seq
	q.Bytes = p.Bytes
	q.SentAt = p.SentAt
	q.Window = p.Window
	q.comps = p.comps
	q.mark = p.mark
	q.pend = p.pend
	return q
}

// FreePacket returns a packet to this Sim's free list. The caller must hold
// the only live reference; any later use is a use-after-release (caught
// under -tags pooldebug). Freeing nil is a no-op so drop paths can stay
// unconditional.
func (s *Sim) FreePacket(p *Packet) {
	if p == nil {
		return
	}
	p.markFreed()
	s.pool.stats.Frees++
	s.pool.free = append(s.pool.free, p)
}

// PoolStats returns this Sim's packet-pool counters.
func (s *Sim) PoolStats() PacketPoolStats { return s.pool.stats }

// PoolStats sums the per-cell pool counters of every cell in the mesh; its
// Live is the topology-wide count of packets not yet released.
func (m *Mesh) PoolStats() PacketPoolStats {
	var st PacketPoolStats
	for _, c := range m.cells {
		st.Allocated += c.pool.stats.Allocated
		st.Gets += c.pool.stats.Gets
		st.Frees += c.pool.stats.Frees
	}
	return st
}
