package netsim

import (
	"fmt"
	"reflect"
	"strings"
	"testing"
	"time"
)

// The mesh equivalence contract: for any topology and any workload, RunSingle
// (the reference merged-heap executor) and RunSharded at every shard count
// produce byte-identical per-cell event logs, final clocks, and cross-message
// counts. The table below exercises the protocol's sharp edges — events
// exactly on window boundaries, cross delays exactly at the lookahead, idle
// cells, grid-aligned and unaligned horizons — and the property/fuzz suites
// (mesh_equiv_test.go, mesh_fuzz_test.go) cover the random space.

// meshCase is one deterministic topology+workload. build wires events into a
// fresh mesh; add(cell, tag) appends a line to that cell's log stamped with
// the cell's current virtual time.
type meshCase struct {
	name      string
	cells     int
	lookahead time.Duration
	until     time.Duration
	build     func(m *Mesh, until time.Duration, add func(cell int, tag string))
}

func meshCases() []meshCase {
	return []meshCase{
		{
			// A message circulates cell→cell with delay exactly equal to the
			// lookahead, so every cross arrival lands exactly on a window
			// boundary — the half-open-window edge case. Local competitors are
			// scheduled at the same instants to exercise same-time tiebreaks
			// between a cross arrival and a locally created event.
			name:      "ping-pong-boundary",
			cells:     2,
			lookahead: 10 * time.Millisecond,
			until:     95 * time.Millisecond,
			build: func(m *Mesh, _ time.Duration, add func(int, string)) {
				var hop func(cell, n int)
				hop = func(cell, n int) {
					add(cell, fmt.Sprintf("hop%d", n))
					if n >= 30 {
						return
					}
					next := (cell + 1) % m.Cells()
					m.Send(cell, next, m.Lookahead(), func() { hop(next, n+1) })
				}
				m.Cell(0).Schedule(0, func() { hop(0, 0) })
				for k := 1; k <= 9; k++ {
					at := time.Duration(k) * m.Lookahead()
					cell := k % m.Cells()
					m.Cell(cell).Schedule(at, func() { add(cell, "local") })
				}
			},
		},
		{
			// Only cell 0 has events; the rest must still reach `until` via
			// the null-message advance, and one late fan-out checks messages
			// into otherwise-idle timelines.
			name:      "fan-out-idle",
			cells:     6,
			lookahead: 7 * time.Millisecond,
			until:     100 * time.Millisecond,
			build: func(m *Mesh, _ time.Duration, add func(int, string)) {
				m.Cell(0).Schedule(40*time.Millisecond, func() {
					add(0, "fan")
					for d := 1; d < m.Cells(); d++ {
						dst := d
						m.Send(0, dst, m.Lookahead()+time.Duration(dst)*time.Millisecond,
							func() { add(dst, "leaf") })
					}
				})
			},
		},
		{
			// `until` is an exact multiple of the lookahead and events sit
			// exactly at `until`: the final inclusive pass must run them, and
			// cross sends from them land strictly beyond the run.
			name:      "grid-aligned-until",
			cells:     3,
			lookahead: 5 * time.Millisecond,
			until:     50 * time.Millisecond,
			build: func(m *Mesh, until time.Duration, add func(int, string)) {
				for i := 0; i < m.Cells(); i++ {
					cell := i
					m.Cell(cell).Schedule(until, func() {
						add(cell, "at-until")
						// Arrival beyond `until`: must stay pending, not run.
						m.Send(cell, (cell+1)%m.Cells(), m.Lookahead(), func() {
							add((cell+1)%m.Cells(), "beyond-until")
						})
					})
					m.Cell(cell).Schedule(0, func() { add(cell, "at-zero") })
				}
			},
		},
		{
			// Dense periodic traffic on every cell (recurring timers) with
			// cross messages every few ticks — the heaviest table workload.
			name:      "storm",
			cells:     5,
			lookahead: 4 * time.Millisecond,
			until:     200 * time.Millisecond,
			build: func(m *Mesh, _ time.Duration, add func(int, string)) {
				for i := 0; i < m.Cells(); i++ {
					cell := i
					tick := 0
					m.Cell(cell).Every(time.Duration(1+cell)*time.Millisecond, func() {
						tick++
						add(cell, fmt.Sprintf("tick%d", tick))
						if tick%3 == 0 {
							dst := (cell + tick) % m.Cells()
							if dst != cell {
								n := tick
								m.Send(cell, dst, m.Lookahead()+time.Millisecond,
									func() { add(dst, fmt.Sprintf("from%d#%d", cell, n)) })
							}
						}
					})
				}
			},
		},
		{
			// Many senders converge on cell 0 with arrivals at the identical
			// instant: delivery order must follow the creation-time order keys
			// (creating cell, then per-cell counter), not arrival plumbing.
			name:      "convergent-same-time",
			cells:     8,
			lookahead: 10 * time.Millisecond,
			until:     60 * time.Millisecond,
			build: func(m *Mesh, _ time.Duration, add func(int, string)) {
				for i := 1; i < m.Cells(); i++ {
					src := i
					m.Cell(src).Schedule(10*time.Millisecond, func() {
						for j := 0; j < 3; j++ {
							n := j
							m.Send(src, 0, 2*m.Lookahead(), func() {
								add(0, fmt.Sprintf("src%d#%d", src, n))
							})
						}
					})
				}
				m.Cell(0).Schedule(30*time.Millisecond, func() { add(0, "local-competitor") })
			},
		},
	}
}

// meshRunResult is everything an executor run produces that the equivalence
// contract covers.
type meshRunResult struct {
	logs    [][]string
	nows    []time.Duration
	pending []int // per-cell heap backlog after the run (events beyond until)
	cross   uint64
}

// runMeshCase builds a fresh mesh for c and executes it with exec.
func runMeshCase(c meshCase, exec func(m *Mesh)) meshRunResult {
	m := NewMesh(c.cells, c.lookahead)
	logs := make([][]string, c.cells)
	add := func(cell int, tag string) {
		logs[cell] = append(logs[cell], fmt.Sprintf("%s@%v", tag, m.Cell(cell).Now()))
	}
	c.build(m, c.until, add)
	exec(m)
	r := meshRunResult{logs: logs, cross: m.CrossDelivered()}
	for i := 0; i < c.cells; i++ {
		r.nows = append(r.nows, m.Cell(i).Now())
		r.pending = append(r.pending, m.Cell(i).Pending())
	}
	return r
}

// executors enumerates the run strategies every case must agree across:
// the reference merged heap, sharded at several counts (including more
// shards than cells), split runs that stop and resume mid-simulation, and a
// mixed run that switches executor between segments.
func executors(c meshCase) map[string]func(m *Mesh) {
	ex := map[string]func(m *Mesh){
		"single": func(m *Mesh) { m.RunSingle(c.until) },
	}
	for _, k := range []int{1, 2, 3, 4, 8, 16} {
		k := k
		ex[fmt.Sprintf("sharded-%d", k)] = func(m *Mesh) { m.RunSharded(c.until, k) }
	}
	ex["sharded-4-split"] = func(m *Mesh) {
		m.RunSharded(c.until/3, 4)
		m.RunSharded(c.until, 4)
	}
	ex["mixed-single-then-sharded"] = func(m *Mesh) {
		m.RunSingle(c.until / 2)
		m.RunSharded(c.until, 3)
	}
	ex["mixed-sharded-then-single"] = func(m *Mesh) {
		m.RunSharded(c.until/2, 2)
		m.RunSingle(c.until)
	}
	return ex
}

func TestMeshExecutorEquivalence(t *testing.T) {
	for _, c := range meshCases() {
		c := c
		t.Run(c.name, func(t *testing.T) {
			ref := runMeshCase(c, func(m *Mesh) { m.RunSingle(c.until) })
			if total := len(ref.logs[0]); c.cells > 0 && total == 0 && c.name != "fan-out-idle" {
				t.Fatalf("reference run produced no events in cell 0; workload is vacuous")
			}
			for name, exec := range executors(c) {
				got := runMeshCase(c, exec)
				if !reflect.DeepEqual(got.logs, ref.logs) {
					t.Errorf("%s: event logs diverge from single-heap reference\nref:  %v\ngot:  %v",
						name, ref.logs, got.logs)
				}
				if !reflect.DeepEqual(got.nows, ref.nows) {
					t.Errorf("%s: final clocks %v, want %v", name, got.nows, ref.nows)
				}
				if !reflect.DeepEqual(got.pending, ref.pending) {
					t.Errorf("%s: pending backlogs %v, want %v", name, got.pending, ref.pending)
				}
				if got.cross != ref.cross {
					t.Errorf("%s: %d cross messages delivered, want %d", name, got.cross, ref.cross)
				}
			}
		})
	}
}

// TestMeshNullMessageAdvance pins the liveness half of the protocol: cells
// with no events still reach every window edge and the final horizon.
func TestMeshNullMessageAdvance(t *testing.T) {
	m := NewMesh(4, 10*time.Millisecond)
	fired := false
	m.Cell(0).Schedule(25*time.Millisecond, func() { fired = true })
	m.RunSharded(95*time.Millisecond, 4)
	if !fired {
		t.Fatal("scheduled event did not fire")
	}
	for i := 0; i < m.Cells(); i++ {
		if got := m.Cell(i).Now(); got != 95*time.Millisecond {
			t.Errorf("cell %d clock %v after run, want 95ms (null-message advance)", i, got)
		}
	}
	if m.Now() != 95*time.Millisecond {
		t.Errorf("mesh clock %v, want 95ms", m.Now())
	}
	if m.Windows() == 0 {
		t.Error("no windows recorded")
	}
}

// TestMeshConstructionRejections pins the fail-fast surface: invalid
// topologies and sends are construction-time panics with messages that name
// the problem, never silent misbehavior.
func TestMeshConstructionRejections(t *testing.T) {
	mustPanic := func(name, fragment string, f func()) {
		t.Run(name, func(t *testing.T) {
			defer func() {
				r := recover()
				if r == nil {
					t.Fatalf("no panic; want one mentioning %q", fragment)
				}
				msg := fmt.Sprint(r)
				if !strings.Contains(msg, fragment) {
					t.Fatalf("panic %q does not mention %q", msg, fragment)
				}
			}()
			f()
		})
	}
	mustPanic("zero-cells", "at least one cell", func() { NewMesh(0, time.Millisecond) })
	mustPanic("zero-lookahead", "zero-delay", func() { NewMesh(2, 0) })
	mustPanic("negative-lookahead", "zero-delay", func() { NewMesh(2, -time.Second) })
	mustPanic("sub-lookahead-delay", "below mesh lookahead", func() {
		m := NewMesh(2, 10*time.Millisecond)
		m.Send(0, 1, 9*time.Millisecond, func() {})
	})
	mustPanic("unknown-dst", "unknown cell", func() {
		m := NewMesh(2, time.Millisecond)
		m.Send(0, 2, time.Millisecond, func() {})
	})
	mustPanic("negative-dst", "unknown cell", func() {
		m := NewMesh(2, time.Millisecond)
		m.Send(0, -1, time.Millisecond, func() {})
	})
	mustPanic("zero-shards", "shard count", func() {
		NewMesh(2, time.Millisecond).RunSharded(time.Second, 0)
	})
}

// TestMeshWatchdog is the deadlock/livelock check for the null-message
// protocol: under a dense 8-cell workload sharded 4 ways, (a) the run
// finishes within a generous wall-clock budget, (b) after every window
// barrier all cells sit exactly at the window horizon — no shard lags its
// peers by any amount, let alone more than one lookahead — and (c) horizons
// advance strictly monotonically in steps of at most one lookahead.
func TestMeshWatchdog(t *testing.T) {
	const lookahead = 5 * time.Millisecond
	const until = 500 * time.Millisecond
	m := NewMesh(8, lookahead)
	for i := 0; i < m.Cells(); i++ {
		cell := i
		n := 0
		m.Cell(cell).Every(time.Duration(1+cell%3)*time.Millisecond, func() {
			n++
			if n%5 == 0 {
				dst := (cell + 1) % m.Cells()
				m.Send(cell, dst, lookahead, func() {})
			}
		})
	}
	var horizons []time.Duration
	m.windowHook = func(h time.Duration) {
		for i := 0; i < m.Cells(); i++ {
			if now := m.Cell(i).Now(); now != h {
				t.Errorf("cell %d at %v after barrier for horizon %v: shard stalled", i, now, h)
			}
		}
		horizons = append(horizons, h)
	}
	done := make(chan struct{})
	go func() {
		m.RunSharded(until, 4)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Minute):
		t.Fatal("RunSharded did not complete: null-message protocol deadlocked or livelocked")
	}
	if len(horizons) == 0 {
		t.Fatal("no window barriers observed")
	}
	prev := time.Duration(-1)
	for i, h := range horizons {
		// The final inclusive pass repeats the last horizon; every exclusive
		// window before it must advance by (0, lookahead].
		if i == len(horizons)-1 {
			if h != until {
				t.Errorf("final pass at %v, want %v", h, until)
			}
			break
		}
		if h <= prev {
			t.Errorf("window %d horizon %v did not advance past %v", i, h, prev)
		}
		if prev >= 0 && h-prev > lookahead {
			t.Errorf("window %d jumped %v (> lookahead %v): a shard could have seen an unsynchronized message", i, h-prev, lookahead)
		}
		prev = h
	}
	if m.Now() != until {
		t.Errorf("mesh clock %v after run, want %v", m.Now(), until)
	}
}

// TestMeshShardClamp checks that asking for more shards than cells degrades
// to one shard per cell rather than spawning empty workers.
func TestMeshShardClamp(t *testing.T) {
	m := NewMesh(2, time.Millisecond)
	ran := false
	m.Cell(1).Schedule(500*time.Microsecond, func() { ran = true })
	m.RunSharded(2*time.Millisecond, 64)
	if !ran {
		t.Fatal("event lost under shard clamp")
	}
}

// TestOrderKeyRoundTrip pins the composite key codec: pack/unpack is the
// identity, keys preserve (cell, seq) lexicographic order, and both overflow
// guards trip.
func TestOrderKeyRoundTrip(t *testing.T) {
	samples := []struct {
		cell uint32
		seq  uint64
	}{
		{0, 0}, {0, 1}, {0, cellSeqMask}, {1, 0}, {1, cellSeqMask},
		{7, 12345}, {1<<20 - 1, 0}, {1<<20 - 1, cellSeqMask},
	}
	for _, s := range samples {
		k := orderKey(s.cell, s.seq)
		cell, seq := orderKeyParts(k)
		if cell != s.cell || seq != s.seq {
			t.Errorf("roundtrip (%d,%d) → %d → (%d,%d)", s.cell, s.seq, k, cell, seq)
		}
	}
	for i, a := range samples {
		for j, b := range samples {
			ka, kb := orderKey(a.cell, a.seq), orderKey(b.cell, b.seq)
			lexLess := a.cell < b.cell || (a.cell == b.cell && a.seq < b.seq)
			if (ka < kb) != lexLess {
				t.Errorf("key order disagrees with (cell,seq) order for samples %d,%d", i, j)
			}
		}
	}
	for name, f := range map[string]func(){
		"seq-overflow":  func() { orderKey(0, cellSeqMask+1) },
		"cell-overflow": func() { orderKey(1<<20, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			f()
		}()
	}
}

// TestStandaloneSimKeysUnchanged guards the zero-cost property the golden
// digests depend on: a standalone Sim (cell id 0) issues order keys equal to
// its bare insertion counter, bit for bit.
func TestStandaloneSimKeysUnchanged(t *testing.T) {
	s := NewSim()
	for want := uint64(1); want <= 100; want++ {
		if got := s.nextKey(); got != want {
			t.Fatalf("standalone key %d, want bare counter %d", got, want)
		}
	}
}
