package netsim

import (
	"time"

	"repro/internal/obs"
	"repro/internal/snap"
	"repro/internal/stats"
)

// CBR is a constant-bit-rate sender with an optional ON/OFF duty cycle — the
// traffic generator behind the paper's §3 measurements (a UDP tool sending
// at fixed intervals) and the competing-traffic experiment of Fig. 3 (a
// second user "set to operate in ON/OFF periods of one minute intervals").
type CBR struct {
	sim     *Sim
	flow    int
	link    Link
	mtu     int
	metrics *FlowMetrics
	sink    *Sink

	interval time.Duration
	onFor    time.Duration // 0 = always on
	offFor   time.Duration
	nextSeq  int64
	stopped  bool
	runFn    func() // the one self-rescheduling callback, bound once
	runID    int64  // runFn's registry id, so pending sends checkpoint
}

// NewCBR creates a constant-rate flow of rateMbps using mtu-sized packets,
// starting at `start` and stopping at `stop` (0 = forever). When onFor and
// offFor are positive the flow alternates between sending for onFor and
// staying silent for offFor, beginning with an ON period.
func NewCBR(sim *Sim, flow int, link Link, mtu int, rateMbps float64,
	start, stop, onFor, offFor time.Duration) (*CBR, *FlowMetrics) {
	if rateMbps <= 0 {
		panic("netsim: CBR rate must be positive")
	}
	if mtu <= 0 {
		panic("netsim: MTU must be positive")
	}
	m := NewFlowMetrics(flow)
	c := &CBR{
		sim:      sim,
		flow:     flow,
		link:     link,
		mtu:      mtu,
		metrics:  m,
		interval: time.Duration(float64(mtu*8) / (rateMbps * 1e6) * float64(time.Second)),
		onFor:    onFor,
		offFor:   offFor,
	}
	c.sink = &Sink{sim: sim, metrics: m} // no src: CBR needs no ACKs
	sim.RegisterReceiver(c.sink)
	c.runFn = c.run
	c.runID = sim.RegisterFunc(c.runFn)
	sim.scheduleTagged(start, c.runID, c.runFn)
	if stop > 0 {
		haltID := sim.RegisterFunc(c.halt)
		sim.scheduleTagged(stop, haltID, c.halt)
	}
	return c, m
}

// halt ends the flow; it is the registered form of the old stop closure.
func (c *CBR) halt() { c.stopped = true }

// Metrics returns the flow's metric sink.
func (c *CBR) Metrics() *FlowMetrics { return c.metrics }

// Sink returns the flow's receiver, to be registered with the link
// dispatcher.
func (c *CBR) Sink() Receiver { return c.sink }

// Instrument attaches an observer to the flow's sink, as on Source.
func (c *CBR) Instrument(o *obs.Observer, run int64) {
	c.sink.obs = newSinkObs(o, run)
}

// SetAttribution points the flow's sink at a shared attribution aggregate,
// as on Source.
func (c *CBR) SetAttribution(a *stats.Attribution) { c.sink.attrib = a }

func (c *CBR) run() {
	if c.stopped {
		return
	}
	if c.onFor > 0 && c.offFor > 0 {
		cycle := c.onFor + c.offFor
		phase := c.sim.Now() % cycle
		if phase >= c.onFor {
			// In an OFF period: sleep until the next ON boundary.
			c.sim.afterTagged(cycle-phase, c.runID, c.runFn)
			return
		}
	}
	c.send()
	c.sim.afterTagged(c.interval, c.runID, c.runFn)
}

func (c *CBR) send() {
	p := c.sim.NewPacket(c.flow, c.nextSeq, c.mtu, c.sim.Now(), 0)
	c.nextSeq++
	c.metrics.Sent++
	c.link.Send(p)
}

// Snapshot implements Snapshotter: sequence position, the stop flag, and the
// flow's metrics. The pending send (or ON-boundary wakeup) event is restored
// with the heap.
func (c *CBR) Snapshot(e *snap.Encoder) {
	e.Tag("cbr")
	e.I64(c.nextSeq)
	e.Bool(c.stopped)
	c.metrics.Snapshot(e)
}

// Restore implements Snapshotter.
func (c *CBR) Restore(d *snap.Decoder) {
	d.Expect("cbr")
	c.nextSeq = d.I64()
	c.stopped = d.Bool()
	c.metrics.Restore(d)
}
