package netsim_test

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"time"

	"repro/internal/experiments/runner"
	"repro/internal/faults"
	"repro/internal/netsim"
)

// Property-based executor equivalence over real simulation entities: random
// multi-cell topologies (1–8 cells), random CBR traffic with cross-cell
// forwarding, and random per-cell fault plans, built only from the exported
// netsim/faults API. For every seed the full observable state — per-cell
// delivery logs, flow counters, link and queue ledgers, fault counters — is
// hashed into one digest, and the digest must be identical for the
// single-heap reference and for every shard count 1–8. Two seeds are pinned
// as golden digests so cross-version drift is caught even if both executors
// drift together.

// equivCell is the per-cell plumbing of one random topology.
type equivCell struct {
	link    netsim.Link         // fault-wrapped bottleneck
	flink   *faults.Link        // the wrapper, for its counters (nil if no plan)
	inner   *netsim.FixedLink   // the raw link, for Delivered/Lost
	queue   netsim.Queue        //
	metrics []*netsim.FlowMetrics
	log     []string
}

func equivQueueDrops(q netsim.Queue) int64 {
	switch q := q.(type) {
	case *netsim.DropTail:
		return int64(q.Drops)
	case *netsim.RED:
		return int64(q.Drops)
	default:
		panic("unknown queue type")
	}
}

// randomFaultPlan draws a fault plan (possibly nil) with sorted,
// non-overlapping outage/handover windows and stochastic impairments.
func randomFaultPlan(rng *rand.Rand, horizon time.Duration) *faults.Plan {
	if rng.Intn(3) == 0 {
		return nil
	}
	p := &faults.Plan{Name: "equiv-random"}
	at := time.Duration(rng.Int63n(int64(horizon / 4)))
	for i := 0; i < rng.Intn(4); i++ {
		dur := time.Duration(1+rng.Int63n(100)) * time.Millisecond
		kind := faults.Outage
		if rng.Intn(2) == 0 {
			kind = faults.Handover
		}
		p.Events = append(p.Events, faults.Event{Kind: kind, At: at, Dur: dur})
		at += dur + time.Duration(1+rng.Int63n(200))*time.Millisecond
	}
	if rng.Intn(2) == 0 {
		p.Loss = &faults.GilbertElliott{
			PGoodBad: rng.Float64() * 0.05,
			PBadGood: 0.1 + rng.Float64()*0.5,
			LossGood: rng.Float64() * 0.01,
			LossBad:  0.1 + rng.Float64()*0.4,
		}
	}
	if rng.Intn(2) == 0 {
		p.CorruptProb = rng.Float64() * 0.02
	}
	if rng.Intn(2) == 0 {
		p.DupProb = rng.Float64() * 0.02
	}
	if rng.Intn(2) == 0 {
		p.ReorderProb = rng.Float64() * 0.05
		p.ReorderDelay = time.Duration(1+rng.Int63n(20)) * time.Millisecond
	}
	return p
}

// buildEquivTopology wires a random topology into m, drawing every random
// choice from rng at construction time. Runtime behavior (cross-cell
// forwarding) depends only on packet fields, so it cannot diverge between
// executors. Flow ids encode the origin cell as flow/100; a delivered packet
// whose origin is the local cell and whose Seq%3 == 0 is handed to the next
// cell's link over the mesh, so cross-shard traffic flows continuously.
func buildEquivTopology(rng *rand.Rand, m *Mesh, stop time.Duration) []*equivCell {
	n := m.Cells()
	cells := make([]*equivCell, n)
	fwdDelay := make([]time.Duration, n)
	for i := range fwdDelay {
		fwdDelay[i] = m.Lookahead() + time.Duration(rng.Int63n(int64(5*time.Millisecond)))
	}
	for i := 0; i < n; i++ {
		i := i
		ec := &equivCell{}
		cells[i] = ec
		sim := m.Cell(i)
		if rng.Intn(2) == 0 {
			ec.queue = netsim.NewDropTail(30_000 + rng.Intn(200_000))
		} else {
			min := 10_000 + rng.Intn(40_000)
			ec.queue = netsim.NewRED(min, min*2+rng.Intn(100_000), 0.02+rng.Float64()*0.2, rng.Int63())
		}
		rate := 2 + rng.Float64()*20
		prop := time.Duration(rng.Intn(30)) * time.Millisecond
		loss := 0.0
		if rng.Intn(3) == 0 {
			loss = rng.Float64() * 0.03
		}
		recv := netsim.ReceiverFunc(func(p *netsim.Packet) {
			ec.log = append(ec.log, fmt.Sprintf("f%d s%d @%v", p.Flow, p.Seq, sim.Now()))
			if n > 1 && p.Flow/100 == i && p.Seq%3 == 0 {
				dst := (i + 1 + int(p.Seq)%(n-1)) % n
				pkt := p
				m.Send(i, dst, fwdDelay[i], func() { cells[dst].link.Send(pkt) })
			}
		})
		plan := randomFaultPlan(rng, stop)
		mk := func(dst netsim.Receiver) netsim.Link {
			ec.inner = netsim.NewFixedLink(sim, ec.queue, rate, prop, dst, rng.Int63())
			if loss > 0 {
				ec.inner.SetLossProb(loss)
			}
			return ec.inner
		}
		if plan != nil {
			ec.flink = faults.Wrap(sim, plan, rng.Int63(), recv, mk)
			ec.link = ec.flink
		} else {
			ec.link = mk(recv)
		}
		for j := 0; j < 1+rng.Intn(3); j++ {
			_, fm := netsim.NewCBR(sim, i*100+j, ec.link, 300+rng.Intn(1100),
				0.5+rng.Float64()*4,
				time.Duration(rng.Int63n(int64(200*time.Millisecond))), stop, 0, 0)
			ec.metrics = append(ec.metrics, fm)
		}
	}
	return cells
}

// Mesh aliases keep the harness readable inside the external test package.
type Mesh = netsim.Mesh

// equivDigest hashes everything the equivalence contract covers into one
// comparable string.
func equivDigest(m *Mesh, cells []*equivCell) string {
	h := sha256.New()
	for i, ec := range cells {
		fmt.Fprintf(h, "cell %d now=%v pending=%d\n", i, m.Cell(i).Now(), m.Cell(i).Pending())
		for _, line := range ec.log {
			fmt.Fprintln(h, line)
		}
		fmt.Fprintf(h, "link delivered=%d lost=%d qdrops=%d qlen=%d\n",
			ec.inner.Delivered, ec.inner.Lost, equivQueueDrops(ec.queue), ec.queue.Len())
		if ec.flink != nil {
			fmt.Fprintf(h, "faults %+v\n", ec.flink.Counters)
		}
		for _, fm := range ec.metrics {
			fmt.Fprintf(h, "flow %d sent=%d bytes=%d\n", fm.Flow, fm.Sent, fm.Throughput.TotalBytes())
		}
	}
	fmt.Fprintf(h, "cross=%d\n", m.CrossDelivered())
	return hex.EncodeToString(h.Sum(nil))
}

// runEquivTrial builds the seed's topology on a fresh mesh and runs it with
// exec, returning the state digest.
func runEquivTrial(seed int64, exec func(m *Mesh, until time.Duration)) string {
	rng := runner.NewRand(seed)
	cellN := 1 + rng.Intn(8)
	lookahead := time.Duration(1+rng.Intn(10)) * time.Millisecond
	m := netsim.NewMesh(cellN, lookahead)
	const stop = 1500 * time.Millisecond
	const until = 2 * time.Second
	cells := buildEquivTopology(rng, m, stop)
	exec(m, until)
	return equivDigest(m, cells)
}

// equivGolden pins two random-topology digests. If an intentional behavior
// change moves them, re-derive with:
//
//	go test ./internal/netsim/ -run TestMeshEquivalenceProperty -v
//
// and copy the logged digests here.
var equivGolden = map[int64]string{
	1: "3271f817e601ebcd6216c36d68ae24918d152e52d9c05404869e582ae61b9b84",
	2: "80bfe742d0f439a724586c7bbae2647f8f78b346da512a2eaed502cbbb902778",
}

func TestMeshEquivalenceProperty(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed-%d", seed), func(t *testing.T) {
			ref := runEquivTrial(seed, func(m *Mesh, until time.Duration) { m.RunSingle(until) })
			t.Logf("seed %d digest %s", seed, ref)
			if want, ok := equivGolden[seed]; ok && ref != want {
				t.Errorf("single-heap digest drifted from golden:\nwant %s\ngot  %s", want, ref)
			}
			for shards := 1; shards <= 8; shards++ {
				got := runEquivTrial(seed, func(m *Mesh, until time.Duration) { m.RunSharded(until, shards) })
				if got != ref {
					t.Errorf("sharded-%d digest %s != single-heap %s", shards, got, ref)
				}
			}
			// Split execution across several calls must not change anything
			// either (clock resumption + mid-run drains).
			got := runEquivTrial(seed, func(m *Mesh, until time.Duration) {
				m.RunSharded(until/4, 3)
				m.RunSingle(until / 2)
				m.RunSharded(until, 5)
			})
			if got != ref {
				t.Errorf("segmented mixed-executor digest %s != single-heap %s", got, ref)
			}
		})
	}
}

// TestMeshEquivalenceFlowStats spot-checks that equivalence extends to the
// externally visible flow statistics a harness would report, not only the
// hashed internal state.
func TestMeshEquivalenceFlowStats(t *testing.T) {
	collect := func(exec func(m *Mesh, until time.Duration)) string {
		rng := runner.NewRand(99)
		m := netsim.NewMesh(4, 5*time.Millisecond)
		cells := buildEquivTopology(rng, m, time.Second)
		exec(m, 1500*time.Millisecond)
		var b strings.Builder
		for _, ec := range cells {
			for _, fm := range ec.metrics {
				fmt.Fprintf(&b, "flow %d sent=%d mean=%.9f delayN=%d\n",
					fm.Flow, fm.Sent, fm.MeanMbps(1500*time.Millisecond), fm.Delay.N())
			}
		}
		return b.String()
	}
	ref := collect(func(m *Mesh, until time.Duration) { m.RunSingle(until) })
	for _, shards := range []int{1, 4} {
		shards := shards
		if got := collect(func(m *Mesh, until time.Duration) { m.RunSharded(until, shards) }); got != ref {
			t.Errorf("sharded-%d flow stats diverge:\nref:\n%s\ngot:\n%s", shards, ref, got)
		}
	}
}
