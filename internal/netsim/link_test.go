package netsim

import (
	"math"
	"testing"
	"time"

	"repro/internal/trace"
)

type collector struct {
	pkts  []*Packet
	times []time.Duration
	sim   *Sim
}

func (c *collector) Receive(p *Packet) {
	c.pkts = append(c.pkts, p)
	c.times = append(c.times, c.sim.Now())
}

func TestFixedLinkSerialization(t *testing.T) {
	sim := NewSim()
	dst := &collector{sim: sim}
	// 8 Mbps, no prop delay: a 1000-byte packet takes 1 ms on the wire.
	l := NewFixedLink(sim, NewDropTail(1_000_000), 8, 0, dst, 1)
	sim.Schedule(0, func() {
		l.Send(pkt(0, 0, 1000))
		l.Send(pkt(0, 1, 1000))
	})
	sim.Run(time.Second)
	if len(dst.pkts) != 2 {
		t.Fatalf("delivered %d, want 2", len(dst.pkts))
	}
	if dst.times[0] != time.Millisecond || dst.times[1] != 2*time.Millisecond {
		t.Fatalf("delivery times %v", dst.times)
	}
}

func TestFixedLinkPropDelay(t *testing.T) {
	sim := NewSim()
	dst := &collector{sim: sim}
	l := NewFixedLink(sim, NewDropTail(1_000_000), 8, 10*time.Millisecond, dst, 1)
	sim.Schedule(0, func() { l.Send(pkt(0, 0, 1000)) })
	sim.Run(time.Second)
	if dst.times[0] != 11*time.Millisecond {
		t.Fatalf("delivery at %v, want 11ms", dst.times[0])
	}
}

func TestFixedLinkRateChange(t *testing.T) {
	sim := NewSim()
	dst := &collector{sim: sim}
	l := NewFixedLink(sim, NewDropTail(1_000_000), 8, 0, dst, 1)
	sim.Schedule(0, func() { l.Send(pkt(0, 0, 1000)) })
	sim.Schedule(500*time.Microsecond, func() { l.SetRateMbps(80) }) // mid-serialization
	sim.Schedule(2*time.Millisecond, func() { l.Send(pkt(0, 1, 1000)) })
	sim.Run(time.Second)
	// First packet keeps old rate (1 ms); second serializes at 0.1 ms.
	if dst.times[0] != time.Millisecond {
		t.Fatalf("first delivery %v", dst.times[0])
	}
	want := 2*time.Millisecond + 100*time.Microsecond
	if dst.times[1] != want {
		t.Fatalf("second delivery %v, want %v", dst.times[1], want)
	}
	if l.RateMbps() != 80 {
		t.Fatalf("RateMbps = %v", l.RateMbps())
	}
}

func TestFixedLinkLoss(t *testing.T) {
	sim := NewSim()
	dst := &collector{sim: sim}
	l := NewFixedLink(sim, NewDropTail(10_000_000), 100, 0, dst, 3)
	l.SetLossProb(0.5)
	sim.Schedule(0, func() {
		for i := int64(0); i < 1000; i++ {
			l.Send(pkt(0, i, 100))
		}
	})
	sim.Run(time.Minute)
	got := float64(len(dst.pkts)) / 1000
	if math.Abs(got-0.5) > 0.08 {
		t.Fatalf("delivery ratio %v with 50%% loss", got)
	}
	if int(l.Delivered)+int(l.Lost) != 1000 {
		t.Fatalf("accounting: delivered %d + lost %d != 1000", l.Delivered, l.Lost)
	}
}

func TestFixedLinkValidation(t *testing.T) {
	sim := NewSim()
	for _, f := range []func(){
		func() { NewFixedLink(sim, NewDropTail(1000), 0, 0, ReceiverFunc(func(*Packet) {}), 1) },
		func() {
			l := NewFixedLink(sim, NewDropTail(1000), 1, 0, ReceiverFunc(func(*Packet) {}), 1)
			l.SetRateMbps(-1)
		},
		func() {
			l := NewFixedLink(sim, NewDropTail(1000), 1, 0, ReceiverFunc(func(*Packet) {}), 1)
			l.SetLossProb(1.5)
		},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid link parameter accepted")
				}
			}()
			f()
		}()
	}
}

func traceOf(ops ...trace.Opportunity) *trace.Trace {
	tr := &trace.Trace{Name: "t", Ops: ops}
	if len(ops) > 0 {
		tr.Duration = ops[len(ops)-1].At + time.Millisecond
	}
	return tr
}

func TestTraceLinkDeliversAtOpportunities(t *testing.T) {
	sim := NewSim()
	dst := &collector{sim: sim}
	tr := traceOf(
		trace.Opportunity{At: 5 * time.Millisecond, Bytes: 2000},
		trace.Opportunity{At: 9 * time.Millisecond, Bytes: 1000},
	)
	l := NewTraceLink(sim, NewDropTail(1_000_000), tr, 0, dst, false, 1)
	sim.Schedule(0, func() {
		for i := int64(0); i < 3; i++ {
			l.Send(pkt(0, i, 1000))
		}
	})
	sim.Run(time.Second)
	if len(dst.pkts) != 3 {
		t.Fatalf("delivered %d, want 3", len(dst.pkts))
	}
	if dst.times[0] != 5*time.Millisecond || dst.times[1] != 5*time.Millisecond {
		t.Fatalf("first opportunity deliveries at %v", dst.times[:2])
	}
	if dst.times[2] != 9*time.Millisecond {
		t.Fatalf("second opportunity delivery at %v", dst.times[2])
	}
}

func TestTraceLinkSegmentationCarriesOver(t *testing.T) {
	sim := NewSim()
	dst := &collector{sim: sim}
	// A 1500-byte packet served by two 1000-byte opportunities.
	tr := traceOf(
		trace.Opportunity{At: 1 * time.Millisecond, Bytes: 1000},
		trace.Opportunity{At: 2 * time.Millisecond, Bytes: 1000},
	)
	l := NewTraceLink(sim, NewDropTail(1_000_000), tr, 0, dst, false, 1)
	sim.Schedule(0, func() { l.Send(pkt(0, 0, 1500)) })
	sim.Run(time.Second)
	if len(dst.pkts) != 1 {
		t.Fatalf("delivered %d, want 1", len(dst.pkts))
	}
	if dst.times[0] != 2*time.Millisecond {
		t.Fatalf("packet completed at %v, want 2ms", dst.times[0])
	}
}

func TestTraceLinkWastesIdleCapacity(t *testing.T) {
	sim := NewSim()
	dst := &collector{sim: sim}
	tr := traceOf(
		trace.Opportunity{At: 1 * time.Millisecond, Bytes: 5000}, // idle: wasted
		trace.Opportunity{At: 10 * time.Millisecond, Bytes: 1000},
	)
	l := NewTraceLink(sim, NewDropTail(1_000_000), tr, 0, dst, false, 1)
	sim.Schedule(5*time.Millisecond, func() { l.Send(pkt(0, 0, 1000)) })
	sim.Run(time.Second)
	if l.WastedBytes != 5000 {
		t.Fatalf("WastedBytes = %d, want 5000", l.WastedBytes)
	}
	if len(dst.pkts) != 1 || dst.times[0] != 10*time.Millisecond {
		t.Fatalf("delivery: %d pkts, times %v", len(dst.pkts), dst.times)
	}
}

func TestTraceLinkLoops(t *testing.T) {
	sim := NewSim()
	dst := &collector{sim: sim}
	tr := traceOf(trace.Opportunity{At: 1 * time.Millisecond, Bytes: 1000})
	tr.Duration = 2 * time.Millisecond
	l := NewTraceLink(sim, NewDropTail(1_000_000), tr, 0, dst, true, 1)
	sim.Schedule(0, func() {
		for i := int64(0); i < 3; i++ {
			l.Send(pkt(0, i, 1000))
		}
	})
	sim.Run(10 * time.Millisecond)
	if len(dst.pkts) != 3 {
		t.Fatalf("looped trace delivered %d, want 3", len(dst.pkts))
	}
	// Opportunities at 1, 3, 5 ms.
	want := []time.Duration{1 * time.Millisecond, 3 * time.Millisecond, 5 * time.Millisecond}
	for i, w := range want {
		if dst.times[i] != w {
			t.Fatalf("delivery %d at %v, want %v", i, dst.times[i], w)
		}
	}
}

func TestTraceLinkEndsWithoutLoop(t *testing.T) {
	sim := NewSim()
	dst := &collector{sim: sim}
	tr := traceOf(trace.Opportunity{At: 1 * time.Millisecond, Bytes: 1000})
	l := NewTraceLink(sim, NewDropTail(1_000_000), tr, 0, dst, false, 1)
	sim.Schedule(2*time.Millisecond, func() { l.Send(pkt(0, 0, 1000)) })
	sim.Run(time.Second)
	if len(dst.pkts) != 0 {
		t.Fatal("packet delivered after trace ended")
	}
	if l.Queue().Len() != 1 {
		t.Fatal("packet should remain queued")
	}
}

func TestTraceLinkLoss(t *testing.T) {
	sim := NewSim()
	dst := &collector{sim: sim}
	ops := make([]trace.Opportunity, 1000)
	for i := range ops {
		ops[i] = trace.Opportunity{At: time.Duration(i+1) * time.Millisecond, Bytes: 1000}
	}
	l := NewTraceLink(sim, NewDropTail(10_000_000), traceOf(ops...), 0, dst, false, 5)
	l.SetLossProb(0.3)
	sim.Schedule(0, func() {
		for i := int64(0); i < 1000; i++ {
			l.Send(pkt(0, i, 1000))
		}
	})
	sim.Run(time.Hour)
	got := float64(len(dst.pkts)) / 1000
	if math.Abs(got-0.7) > 0.08 {
		t.Fatalf("delivery ratio %v with 30%% loss", got)
	}
}

func TestTraceLinkRequiresOps(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("empty trace should panic")
		}
	}()
	NewTraceLink(NewSim(), NewDropTail(1000), &trace.Trace{}, 0, ReceiverFunc(func(*Packet) {}), false, 1)
}
