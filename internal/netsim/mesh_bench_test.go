package netsim

import (
	"fmt"
	"testing"
	"time"
)

// runMeshWorkload is the fixed 8-cell workload behind BenchmarkMeshSharded
// and the alloc-ceiling pin: every cell runs a dense self-rescheduling timer
// train with synthetic per-event protocol work, and every fifth event sends
// a pooled packet to the next cell over the mesh. Cross-cell traffic rides
// SendPacket — receiver + pooled packet, no closures — so the steady state
// exercises the PR 7 zero-alloc path end to end.
func runMeshWorkload(b *testing.B, shards, work int) {
	const (
		cells     = 8
		lookahead = time.Millisecond
		tick      = 50 * time.Microsecond
		until     = 100 * time.Millisecond
	)
	var totalEvents int64
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m := NewMesh(cells, lookahead)
		counts := make([]int64, cells)
		sink := 0.0
		// One receiver per cell: counts the arrival and releases the packet
		// into the receiving cell's pool (ownership migrates with the packet).
		recvs := make([]ReceiverFunc, cells)
		for c := 0; c < cells; c++ {
			c := c
			sim := m.Cell(c)
			recvs[c] = func(p *Packet) {
				counts[c]++
				sim.FreePacket(p)
			}
		}
		for c := 0; c < cells; c++ {
			c := c
			sim := m.Cell(c)
			var step func()
			step = func() {
				counts[c]++
				// A dash of floating-point work stands in for per-packet
				// congestion-control arithmetic, so the benchmark measures
				// more than bare heap churn.
				x := float64(counts[c])
				for k := 0; k < work; k++ {
					x = x*1.0000001 + float64(k)
				}
				if c == 0 {
					sink += x // defeat dead-code elimination (single writer: cell 0)
				}
				if counts[c]%5 == 0 {
					dst := (c + 1) % cells
					p := sim.NewPacket(c, counts[c], 1400, sim.Now(), 0)
					m.SendPacket(c, dst, lookahead, recvs[dst], p)
				}
				if sim.Now()+tick <= until {
					sim.After(tick, step)
				}
			}
			sim.After(tick, step)
		}
		if shards == 0 {
			m.RunSingle(until)
		} else {
			m.RunSharded(until, shards)
		}
		for _, n := range counts {
			totalEvents += n
		}
	}
	b.ReportMetric(float64(totalEvents)/b.Elapsed().Seconds(), "events/sec")
}

// BenchmarkMeshSharded measures event throughput (events/sec, reported as a
// custom metric) of the mesh executors. The "light" variant (32 flops/event)
// is barrier-dominated — windowed execution beats the single-heap scan but
// extra workers do not pay; the "heavy" variant (2048 flops/event, the order
// of a real Verus profile lookup + window computation) is where shard
// parallelism shows through. The single-heap reference is the scaling
// baseline; BENCH_pr6.json records the pre-pool trajectory and
// BENCH_pr7.json the pooled one.
func BenchmarkMeshSharded(b *testing.B) {
	for _, w := range []struct {
		name string
		work int
	}{{"light", 32}, {"heavy", 2048}} {
		w := w
		b.Run(w.name+"/single-heap", func(b *testing.B) { runMeshWorkload(b, 0, w.work) })
		for _, shards := range []int{1, 2, 4, 8} {
			shards := shards
			b.Run(fmt.Sprintf("%s/shards-%d", w.name, shards), func(b *testing.B) { runMeshWorkload(b, shards, w.work) })
		}
	}
}

// meshAllocCeiling pins BenchmarkMeshSharded heavy/single-heap allocs/op.
// The pre-pool baseline was ~3,300 allocs/op (one boxed closure per
// cross-cell send plus per-packet event closures); the pooled path leaves
// only per-iteration setup — the mesh, cells, receivers, and first-lap
// warm-up of heaps, rings, and pools — observed at ~530/op. The ceiling
// sits just above that and well under a fifth of the baseline, so CI fails
// if per-packet allocation sneaks back onto the path.
const meshAllocCeiling = 600

// TestMeshShardedAllocCeiling is the bench-diff gate: it runs the heavy
// single-heap workload under testing.Benchmark and fails on regression above
// meshAllocCeiling. A Go test rather than CI-side benchmark parsing, so it
// guards local runs too.
func TestMeshShardedAllocCeiling(t *testing.T) {
	if testing.Short() {
		t.Skip("bench-diff gate skipped in -short")
	}
	res := testing.Benchmark(func(b *testing.B) { runMeshWorkload(b, 0, 2048) })
	if a := res.AllocsPerOp(); a > meshAllocCeiling {
		t.Fatalf("BenchmarkMeshSharded heavy/single-heap allocates %d/op, above the pinned ceiling %d (pre-pool baseline ~3300)", a, meshAllocCeiling)
	}
}
