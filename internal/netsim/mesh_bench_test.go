package netsim

import (
	"fmt"
	"testing"
	"time"
)

// BenchmarkMeshSharded measures event throughput (events/sec, reported as a
// custom metric) of the mesh executors on a fixed 8-cell workload: every cell
// runs a dense self-rescheduling timer train with synthetic per-event
// protocol work, and every fifth event crosses to the next cell. The "light"
// variant (32 flops/event) is barrier-dominated — windowed execution beats
// the single-heap scan but extra workers do not pay; the "heavy" variant
// (2048 flops/event, the order of a real Verus profile lookup + window
// computation) is where shard parallelism shows through. The single-heap
// reference is the scaling baseline; BENCH_pr6.json records the
// 1/2/4/8-shard numbers for both.
func BenchmarkMeshSharded(b *testing.B) {
	run := func(b *testing.B, shards, work int) {
		const (
			cells     = 8
			lookahead = time.Millisecond
			tick      = 50 * time.Microsecond
			until     = 100 * time.Millisecond
		)
		var totalEvents int64
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			m := NewMesh(cells, lookahead)
			counts := make([]int64, cells)
			sink := 0.0
			for c := 0; c < cells; c++ {
				c := c
				sim := m.Cell(c)
				var step func()
				step = func() {
					counts[c]++
					// A dash of floating-point work stands in for per-packet
					// congestion-control arithmetic, so the benchmark measures
					// more than bare heap churn.
					x := float64(counts[c])
					for k := 0; k < work; k++ {
						x = x*1.0000001 + float64(k)
					}
					if c == 0 {
						sink += x // defeat dead-code elimination (single writer: cell 0)
					}
					if counts[c]%5 == 0 {
						dst := (c + 1) % cells
						m.Send(c, dst, lookahead, func() { counts[dst]++ })
					}
					if sim.Now()+tick <= until {
						sim.After(tick, step)
					}
				}
				sim.After(tick, step)
			}
			if shards == 0 {
				m.RunSingle(until)
			} else {
				m.RunSharded(until, shards)
			}
			for _, n := range counts {
				totalEvents += n
			}
		}
		b.ReportMetric(float64(totalEvents)/b.Elapsed().Seconds(), "events/sec")
	}
	for _, w := range []struct {
		name string
		work int
	}{{"light", 32}, {"heavy", 2048}} {
		w := w
		b.Run(w.name+"/single-heap", func(b *testing.B) { run(b, 0, w.work) })
		for _, shards := range []int{1, 2, 4, 8} {
			shards := shards
			b.Run(fmt.Sprintf("%s/shards-%d", w.name, shards), func(b *testing.B) { run(b, shards, w.work) })
		}
	}
}
