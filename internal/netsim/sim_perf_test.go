package netsim

import (
	"container/heap"
	"math/rand"
	"testing"
	"time"
)

// refHeap is the pre-PR2 event heap, verbatim: container/heap over a slice
// with interface boxing. It pins the 4-ary heap's pop order — (at, seq) is a
// strict total order, so any correct heap must produce the identical
// sequence.
type refEvent struct {
	at  time.Duration
	seq uint64
}

type refHeap []refEvent

func (h refHeap) Len() int { return len(h) }
func (h refHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h refHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *refHeap) Push(x interface{}) { *h = append(*h, x.(refEvent)) }
func (h *refHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// TestHeapMatchesContainerHeap drives the Sim's 4-ary heap and the reference
// container/heap with the same randomized interleaving of pushes and pops
// (duplicate times included, so the seq tiebreak is load-bearing) and
// requires identical pop sequences.
func TestHeapMatchesContainerHeap(t *testing.T) {
	for trial := 0; trial < 30; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)))
		s := NewSim()
		var ref refHeap
		var seq uint64
		var got, want []refEvent
		for op := 0; op < 2000; op++ {
			if s.Pending() == 0 || rng.Intn(3) > 0 {
				at := time.Duration(rng.Intn(50)) // dense: many ties
				seq++
				s.push(event{at: at, seq: seq})
				heap.Push(&ref, refEvent{at: at, seq: seq})
			} else {
				e := s.pop()
				got = append(got, refEvent{e.at, e.seq})
				want = append(want, heap.Pop(&ref).(refEvent))
			}
		}
		for s.Pending() > 0 {
			e := s.pop()
			got = append(got, refEvent{e.at, e.seq})
			want = append(want, heap.Pop(&ref).(refEvent))
		}
		if len(got) != len(want) {
			t.Fatalf("trial %d: popped %d events, reference popped %d", trial, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("trial %d: pop %d = %+v, reference %+v", trial, i, got[i], want[i])
			}
		}
	}
}

// TestScheduleZeroAllocs asserts the steady-state schedule/run cycle
// allocates nothing: pushing into warmed slice capacity and popping must not
// touch the allocator (the old container/heap boxed every event).
func TestScheduleZeroAllocs(t *testing.T) {
	s := NewSim()
	fn := func() {}
	// Warm the slice capacity past anything the loop below reaches.
	for i := 0; i < 256; i++ {
		s.Schedule(time.Duration(i), fn)
	}
	s.Run(time.Duration(256))
	next := time.Duration(256)
	allocs := testing.AllocsPerRun(1000, func() {
		next++
		s.Schedule(next, fn)
		s.Run(next)
	})
	if allocs != 0 {
		t.Errorf("steady-state Schedule+Run: %v allocs/run, want 0", allocs)
	}
}

// TestEveryTickZeroAllocs asserts a recurring timer's ticks allocate
// nothing: one timer object lives for the registration's lifetime and each
// firing reschedules the same entry.
func TestEveryTickZeroAllocs(t *testing.T) {
	s := NewSim()
	ticks := 0
	stop := s.Every(time.Millisecond, func() { ticks++ })
	defer stop()
	s.Run(10 * time.Millisecond) // warm
	until := 10 * time.Millisecond
	allocs := testing.AllocsPerRun(1000, func() {
		until += time.Millisecond
		s.Run(until)
	})
	if allocs != 0 {
		t.Errorf("steady-state Every tick: %v allocs/run, want 0", allocs)
	}
	if ticks < 1000 {
		t.Fatalf("timer did not tick (ticks=%d)", ticks)
	}
}

// TestEveryStopReleasesEntry pins the stop semantics across the timer
// rewrite: a stopped timer's already-queued entry drains without firing and
// without rescheduling.
func TestEveryStopReleasesEntry(t *testing.T) {
	s := NewSim()
	ticks := 0
	stop := s.Every(time.Millisecond, func() { ticks++ })
	s.Run(3 * time.Millisecond)
	if ticks != 3 {
		t.Fatalf("ticks = %d, want 3", ticks)
	}
	stop()
	s.Run(10 * time.Millisecond)
	if ticks != 3 {
		t.Errorf("ticks after stop = %d, want 3", ticks)
	}
	if got := s.Pending(); got != 0 {
		t.Errorf("stopped timer left %d pending events", got)
	}
}

// TestEveryStopFromCallback pins stopping a timer from inside its own
// callback: the current firing completes, no reschedule happens.
func TestEveryStopFromCallback(t *testing.T) {
	s := NewSim()
	ticks := 0
	var stop func()
	stop = s.Every(time.Millisecond, func() {
		ticks++
		if ticks == 2 {
			stop()
		}
	})
	s.Run(10 * time.Millisecond)
	if ticks != 2 {
		t.Errorf("ticks = %d, want 2 (stop from callback must halt rescheduling)", ticks)
	}
}
