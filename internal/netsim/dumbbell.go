package netsim

import (
	"fmt"
	"time"

	"repro/internal/cc"
	"repro/internal/snap"
)

// Dispatcher routes packets leaving the shared bottleneck to per-flow sinks.
type Dispatcher struct {
	sinks map[int]Receiver
}

// NewDispatcher returns an empty dispatcher.
func NewDispatcher() *Dispatcher { return &Dispatcher{sinks: make(map[int]Receiver)} }

// Register adds a flow's sink.
func (d *Dispatcher) Register(flow int, r Receiver) { d.sinks[flow] = r }

// Receive implements Receiver.
func (d *Dispatcher) Receive(p *Packet) {
	if r, ok := d.sinks[p.Flow]; ok {
		r.Receive(p)
	}
}

// FlowSpec describes one flow in a dumbbell experiment.
type FlowSpec struct {
	// Ctrl is the congestion controller. Leave nil for a CBR flow.
	Ctrl cc.Controller
	// CBRMbps is the constant rate for CBR flows (Ctrl == nil).
	CBRMbps float64
	// OnFor/OffFor give CBR flows a duty cycle (both zero = always on).
	OnFor, OffFor time.Duration
	// AckDelay is the reverse-path one-way delay.
	AckDelay time.Duration
	// Start and Stop bound the flow's active period (Stop 0 = forever).
	Start, Stop time.Duration
	// MTU overrides the dumbbell's default packet size when positive.
	MTU int
}

// Dumbbell is the canonical topology of both the paper's OPNET evaluation
// and its §7 micro-benchmarks: N senders share a single bottleneck
// queue+link; every delivered packet is acknowledged back to its sender
// after the flow's reverse-path delay.
type Dumbbell struct {
	Sim        *Sim
	Link       Link
	Dispatcher *Dispatcher
	Sources    []*Source      // congestion-controlled flows (nil entries for CBR)
	CBRs       []*CBR         // CBR flows (nil entries for controlled)
	Metrics    []*FlowMetrics // one per flow, in spec order
}

// NewDumbbell assembles the topology. makeLink constructs the shared
// bottleneck given the dispatcher (so TraceLink and FixedLink can both be
// used). defaultMTU applies to flows that do not override it.
func NewDumbbell(sim *Sim, makeLink func(dst Receiver) Link, defaultMTU int, specs []FlowSpec) *Dumbbell {
	d := &Dumbbell{Sim: sim, Dispatcher: NewDispatcher()}
	// The dispatcher takes every bottleneck delivery, so it must be
	// registered for pending deliveries to survive a checkpoint. Its routing
	// table is static per topology and rebuilt, never serialized.
	sim.RegisterReceiver(d.Dispatcher)
	d.Link = makeLink(d.Dispatcher)
	for i, spec := range specs {
		mtu := defaultMTU
		if spec.MTU > 0 {
			mtu = spec.MTU
		}
		if spec.Ctrl != nil {
			src, m := NewSource(sim, i, spec.Ctrl, d.Link, mtu, spec.AckDelay, spec.Start, spec.Stop)
			d.Dispatcher.Register(i, src.Sink())
			d.Sources = append(d.Sources, src)
			d.CBRs = append(d.CBRs, nil)
			d.Metrics = append(d.Metrics, m)
			continue
		}
		cbr, m := NewCBR(sim, i, d.Link, mtu, spec.CBRMbps, spec.Start, spec.Stop, spec.OnFor, spec.OffFor)
		d.Dispatcher.Register(i, cbr.Sink())
		d.Sources = append(d.Sources, nil)
		d.CBRs = append(d.CBRs, cbr)
		d.Metrics = append(d.Metrics, m)
	}
	return d
}

// Run advances the simulation to the given time.
func (d *Dumbbell) Run(until time.Duration) { d.Sim.Run(until) }

// Snapshot implements snap.Snapshotter: sim core, bottleneck, every flow (a
// Source or CBR snapshot carries its metrics), then the event heap — the
// order the two-phase restore depends on. The bottleneck link must itself be
// a Snapshotter.
func (d *Dumbbell) Snapshot(e *snap.Encoder) {
	e.Tag("dumbbell")
	d.Sim.SnapshotState(e)
	l, ok := d.Link.(snap.Snapshotter)
	if !ok {
		e.Fail(fmt.Errorf("netsim: dumbbell bottleneck %T is not checkpointable", d.Link))
		return
	}
	l.Snapshot(e)
	for i := range d.Sources {
		if d.Sources[i] != nil {
			d.Sources[i].Snapshot(e)
		} else {
			d.CBRs[i].Snapshot(e)
		}
		if e.Err() != nil {
			return
		}
	}
	d.Sim.SnapshotHeap(e)
}

// Restore implements snap.Snapshotter over a freshly rebuilt dumbbell.
func (d *Dumbbell) Restore(dec *snap.Decoder) {
	dec.Expect("dumbbell")
	d.Sim.RestoreState(dec)
	if dec.Err() != nil {
		return
	}
	l, ok := d.Link.(snap.Snapshotter)
	if !ok {
		dec.Fail(fmt.Errorf("netsim: dumbbell bottleneck %T is not checkpointable", d.Link))
		return
	}
	l.Restore(dec)
	for i := range d.Sources {
		if d.Sources[i] != nil {
			d.Sources[i].Restore(dec)
		} else {
			d.CBRs[i].Restore(dec)
		}
		if dec.Err() != nil {
			return
		}
	}
	d.Sim.RestoreHeap(dec)
}
