package netsim

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/trace"
)

// Packet-conservation properties over randomized dumbbell runs: every packet
// a source sends is accounted for exactly once — dropped at the queue, lost
// on the link, still queued, in flight, or delivered — and the per-flow
// Metrics agree with the link's own counters.

// queueDrops reads the drop counter of either queue implementation.
func queueDrops(q Queue) int64 {
	switch q := q.(type) {
	case *DropTail:
		return int64(q.Drops)
	case *RED:
		return int64(q.Drops)
	default:
		panic("unknown queue type")
	}
}

// randomQueue builds a DropTail or RED queue from the rng.
func randomQueue(rng *rand.Rand) Queue {
	if rng.Intn(2) == 0 {
		return NewDropTail(20_000 + rng.Intn(400_000))
	}
	min := 10_000 + rng.Intn(50_000)
	max := min*2 + rng.Intn(200_000)
	return NewRED(min, max, 0.02+rng.Float64()*0.3, rng.Int63())
}

// randomSpecs builds 1-5 CBR flows with random rates, duty cycles, and MTUs.
// CBR flows stop cleanly at `stop`, which lets the bottleneck drain fully.
func randomSpecs(rng *rand.Rand, stop time.Duration) []FlowSpec {
	specs := make([]FlowSpec, 1+rng.Intn(5))
	for i := range specs {
		specs[i] = FlowSpec{
			CBRMbps: 0.5 + rng.Float64()*15,
			Stop:    stop,
			MTU:     200 + rng.Intn(1400),
		}
		if rng.Intn(3) == 0 {
			specs[i].OnFor = time.Duration(1+rng.Intn(3)) * time.Second
			specs[i].OffFor = time.Duration(1+rng.Intn(3)) * time.Second
		}
	}
	return specs
}

func checkFlowAccounting(t *testing.T, d *Dumbbell, specs []FlowSpec) {
	t.Helper()
	for i, m := range d.Metrics {
		mtu := specs[i].MTU
		if got, want := m.Throughput.TotalBytes(), m.Received*int64(mtu); got != want {
			t.Errorf("flow %d: throughput accounts %d B, but %d packets × %d B = %d",
				i, got, m.Received, mtu, want)
		}
	}
}

func TestConservationFixedLinkDrained(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		rng := rand.New(rand.NewSource(seed))
		sim := NewSim()
		rate := 1 + rng.Float64()*40
		q := randomQueue(rng)
		lossProb := 0.0
		if rng.Intn(2) == 0 {
			lossProb = rng.Float64() * 0.05
		}
		var link *FixedLink
		stop := time.Duration(3+rng.Intn(8)) * time.Second
		specs := randomSpecs(rng, stop)
		d := NewDumbbell(sim, func(dst Receiver) Link {
			link = NewFixedLink(sim, q, rate, time.Duration(rng.Intn(50))*time.Millisecond, dst, seed+100)
			link.SetLossProb(lossProb)
			return link
		}, 1400, specs)

		// Mid-run: a packet may sit between Dequeue and its serialization
		// completion, so the identity holds with at most one in service.
		sim.Run(stop / 2)
		var sent int64
		for _, m := range d.Metrics {
			sent += m.Sent
		}
		inService := sent - queueDrops(q) - link.Delivered - link.Lost - int64(q.Len())
		if inService < 0 || inService > 1 {
			t.Errorf("seed %d mid-run: sent=%d drops=%d delivered=%d lost=%d queued=%d → %d in service (want 0 or 1)",
				seed, sent, queueDrops(q), link.Delivered, link.Lost, q.Len(), inService)
		}

		// After the flows stop, run long enough for the queue to serialize
		// out and the last propagation events to land.
		drain := time.Duration(float64(q.Bytes()*8)/(rate*1e6)*float64(time.Second)) + 2*time.Second
		sim.Run(stop + drain)

		sent = 0
		for _, m := range d.Metrics {
			sent += m.Sent
		}
		if q.Len() != 0 || q.Bytes() != 0 {
			t.Fatalf("seed %d: queue not drained: %d packets / %d B", seed, q.Len(), q.Bytes())
		}
		if got := queueDrops(q) + link.Delivered + link.Lost; got != sent {
			t.Errorf("seed %d: conservation broken: sent=%d but drops=%d + delivered=%d + lost=%d = %d",
				seed, sent, queueDrops(q), link.Delivered, link.Lost, got)
		}
		var received int64
		for _, m := range d.Metrics {
			received += m.Received
		}
		if received != link.Delivered {
			t.Errorf("seed %d: sinks received %d packets but link delivered %d", seed, received, link.Delivered)
		}
		checkFlowAccounting(t, d, specs)
	}
}

// syntheticTrace builds a periodic delivery-opportunity trace of the given
// aggregate rate for TraceLink conservation runs.
func syntheticTrace(rng *rand.Rand, d time.Duration) *trace.Trace {
	tr := &trace.Trace{Duration: d}
	every := time.Duration(1+rng.Intn(10)) * time.Millisecond
	bytes := 1500 * (1 + rng.Intn(10))
	for at := time.Duration(0); at < d; at += every {
		tr.Ops = append(tr.Ops, trace.Opportunity{At: at, Bytes: bytes})
	}
	return tr
}

// chaosIngress is a minimal upstream fault decorator: before a packet
// reaches the bottleneck queue it may be dropped or duplicated. It models
// what internal/faults does from outside the package, so these invariants
// hold for any conforming decorator, not just ours.
type chaosIngress struct {
	sim      *Sim
	inner    Link
	rng      *rand.Rand
	dropP    float64
	dupP     float64
	drops    int64
	dups     int64
	ingested int64 // packets actually offered to the inner link
}

func (c *chaosIngress) Queue() Queue { return c.inner.Queue() }

func (c *chaosIngress) Send(p *Packet) {
	if c.rng.Float64() < c.dropP {
		c.drops++
		c.sim.FreePacket(p)
		return
	}
	c.ingested++
	// A conforming duplicator clones through the pool before handing the
	// original downstream (inner.Send may release a rejected packet
	// immediately), and each copy is then dropped/delivered/released
	// independently.
	var dup *Packet
	if c.rng.Float64() < c.dupP {
		c.dups++
		c.ingested++
		dup = c.sim.ClonePacket(p)
	}
	c.inner.Send(p)
	if dup != nil {
		c.inner.Send(dup)
	}
}

// TestConservationUpstreamFaults drives random CBR mixes through a
// drop/duplicate decorator into both queue disciplines and checks that the
// queue's own accounting (Drops, Len, Bytes) plus the link counters still
// balance: conservation must hold for the packets the queue actually saw,
// with duplicates counted per copy.
func TestConservationUpstreamFaults(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		rng := rand.New(rand.NewSource(seed ^ 0x5eed))
		sim := NewSim()
		q := randomQueue(rng)
		rate := 1 + rng.Float64()*30
		var link *FixedLink
		var chaos *chaosIngress
		stop := time.Duration(3+rng.Intn(5)) * time.Second
		specs := randomSpecs(rng, stop)
		d := NewDumbbell(sim, func(dst Receiver) Link {
			link = NewFixedLink(sim, q, rate, time.Duration(rng.Intn(40))*time.Millisecond, dst, seed+300)
			chaos = &chaosIngress{
				sim:   sim,
				inner: link,
				rng:   rand.New(rand.NewSource(seed + 400)),
				dropP: rng.Float64() * 0.2,
				dupP:  rng.Float64() * 0.2,
			}
			return chaos
		}, 1400, specs)

		drainTime := stop + 10*time.Second
		sim.Run(drainTime)

		var sent int64
		for _, m := range d.Metrics {
			sent += m.Sent
		}
		// Decorator ledger: every source packet was either dropped upstream
		// or offered to the queue; duplicates add offered copies.
		if got := chaos.drops + chaos.ingested - chaos.dups; got != sent {
			t.Errorf("seed %d: decorator ledger: sent=%d but drops=%d + ingested=%d - dups=%d = %d",
				seed, sent, chaos.drops, chaos.ingested, chaos.dups, got)
		}
		// Queue+link ledger over offered copies: each was tail/RED-dropped,
		// lost, delivered, or still queued (zero after drain).
		if q.Len() != 0 || q.Bytes() != 0 {
			t.Fatalf("seed %d: queue not drained: %d packets / %d B", seed, q.Len(), q.Bytes())
		}
		if got := queueDrops(q) + link.Delivered + link.Lost; got != chaos.ingested {
			t.Errorf("seed %d: queue conservation under faults: offered=%d but drops=%d + delivered=%d + lost=%d = %d",
				seed, chaos.ingested, queueDrops(q), link.Delivered, link.Lost, got)
		}
		var received int64
		for _, m := range d.Metrics {
			received += m.Received
		}
		if received != link.Delivered {
			t.Errorf("seed %d: sinks received %d but link delivered %d", seed, received, link.Delivered)
		}
	}
}

// shardLedger is the per-cell accounting for the cross-shard conservation
// runs: forwards[i] counts packets cell i handed into a lookahead channel,
// arrivals[i] counts channel packets that have reached cell i's timeline and
// been re-offered to its link. Each cell's entries are written only from that
// cell's timeline, so the ledger is race-free under sharded execution.
type shardLedger struct {
	forwards []int64
	arrivals []int64
}

// buildConservationMesh wires cells cells each with a FixedLink fed by CBR
// flows; every delivered packet with Seq%3 == 0 still in its origin cell is
// forwarded over the mesh into the next cell's link (one hop max, so traffic
// always drains). Returns per-cell links, queues, metrics, and the ledger.
func buildConservationMesh(rng *rand.Rand, m *Mesh, stop time.Duration) (
	links []*FixedLink, queues []Queue, metrics []*FlowMetrics, led *shardLedger) {
	n := m.Cells()
	led = &shardLedger{forwards: make([]int64, n), arrivals: make([]int64, n)}
	links = make([]*FixedLink, n)
	queues = make([]Queue, n)
	for i := 0; i < n; i++ {
		i := i
		sim := m.Cell(i)
		queues[i] = randomQueue(rng)
		rate := 2 + rng.Float64()*20
		loss := 0.0
		if rng.Intn(3) == 0 {
			loss = rng.Float64() * 0.04
		}
		recv := ReceiverFunc(func(p *Packet) {
			if n > 1 && p.Flow/100 == i && p.Seq%3 == 0 {
				dst := (i + 1) % n
				pkt := p
				led.forwards[i]++
				m.Send(i, dst, m.Lookahead()+2*time.Millisecond, func() {
					led.arrivals[dst]++
					links[dst].Send(pkt)
				})
			}
		})
		links[i] = NewFixedLink(sim, queues[i], rate, time.Duration(rng.Intn(20))*time.Millisecond, recv, rng.Int63())
		if loss > 0 {
			links[i].SetLossProb(loss)
		}
		for j := 0; j < 1+rng.Intn(3); j++ {
			_, fm := NewCBR(sim, i*100+j, links[i], 300+rng.Intn(1100),
				0.5+rng.Float64()*4, 0, stop, 0, 0)
			metrics = append(metrics, fm)
		}
	}
	return links, queues, metrics, led
}

// TestConservationAcrossShards extends the packet-conservation identity over
// shard boundaries: every packet offered to any link — by a source or by a
// cross-cell arrival — is dropped, lost, delivered, queued, or in service,
// and packets inside lookahead channels at snapshot time (forwarded but not
// yet arrived) balance the forward/arrival ledgers exactly. The identity
// must hold mid-run and exactly at quiescence, on both executors, and the
// totals must agree between them.
func TestConservationAcrossShards(t *testing.T) {
	type totals struct {
		sent, arrived, drops, lost, delivered, forwards int64
	}
	for seed := int64(0); seed < 10; seed++ {
		byMode := map[string]totals{}
		for _, mode := range []string{"single", "sharded"} {
			rng := rand.New(rand.NewSource(seed ^ 0x5ca1e))
			cells := 2 + rng.Intn(5)
			m := NewMesh(cells, time.Duration(1+rng.Intn(8))*time.Millisecond)
			stop := 1500 * time.Millisecond
			links, queues, metrics, led := buildConservationMesh(rng, m, stop)
			shards := 1 + rng.Intn(cells)
			run := func(until time.Duration) {
				if mode == "single" {
					m.RunSingle(until)
				} else {
					m.RunSharded(until, shards)
				}
			}
			snapshot := func(label string, wantExact bool) totals {
				var tt totals
				for _, fm := range metrics {
					tt.sent += fm.Sent
				}
				var queued int64
				for i := range links {
					tt.drops += queueDrops(queues[i])
					tt.lost += links[i].Lost
					tt.delivered += links[i].Delivered
					queued += int64(queues[i].Len())
					tt.forwards += led.forwards[i]
					tt.arrived += led.arrivals[i]
				}
				// Offered = source sends + channel arrivals; every offer is
				// accounted, with at most one packet in service per cell.
				offered := tt.sent + tt.arrived
				accounted := tt.drops + tt.lost + tt.delivered + queued
				inService := offered - accounted
				if wantExact {
					if inService != 0 || queued != 0 {
						t.Errorf("seed %d %s %s: not quiescent: inService=%d queued=%d",
							seed, mode, label, inService, queued)
					}
					if tt.forwards != tt.arrived {
						t.Errorf("seed %d %s %s: %d packets still in lookahead channels at quiescence",
							seed, mode, label, tt.forwards-tt.arrived)
					}
				} else if inService < 0 || inService > int64(len(links)) {
					t.Errorf("seed %d %s %s: conservation broken: offered=%d accounted=%d (inService=%d, want 0..%d)",
						seed, mode, label, offered, accounted, inService, len(links))
				}
				// The lookahead-channel population can never go negative, and
				// after a run every channel message has been merged into its
				// destination heap (even if its arrival time is still ahead).
				if inChannel := tt.forwards - tt.arrived; inChannel < 0 {
					t.Errorf("seed %d %s %s: ledger inverted: arrivals %d > forwards %d",
						seed, mode, label, tt.arrived, tt.forwards)
				}
				if got := m.PendingCross(); got != 0 {
					t.Errorf("seed %d %s %s: %d messages left undrained between runs", seed, mode, label, got)
				}
				return tt
			}
			run(stop / 2)
			snapshot("mid-run", false)
			run(stop)
			snapshot("at-stop", false)
			run(stop + 15*time.Second)
			byMode[mode] = snapshot("drained", true)
		}
		if byMode["single"] != byMode["sharded"] {
			t.Errorf("seed %d: executor totals diverge: single=%+v sharded=%+v",
				seed, byMode["single"], byMode["sharded"])
		}
	}
}

// TestDropTailDuplicateBytes pins the byte accounting when the same *Packet
// is enqueued twice: Bytes() must count each copy, and both dequeues must
// return the packet.
func TestDropTailDuplicateBytes(t *testing.T) {
	q := NewDropTail(10_000)
	p := &Packet{Bytes: 1400}
	if !q.Enqueue(p, 0) || !q.Enqueue(p, 0) {
		t.Fatal("duplicate enqueue rejected below the byte limit")
	}
	if got := q.Bytes(); got != 2800 {
		t.Fatalf("Bytes() = %d after double enqueue, want 2800", got)
	}
	if q.Dequeue(0) != p || q.Dequeue(0) != p {
		t.Fatal("dequeues did not return both copies")
	}
	if got := q.Bytes(); got != 0 {
		t.Fatalf("Bytes() = %d after draining duplicates, want 0", got)
	}
}

// TestREDIdleDecayAfterUpstreamOutage pins RED's idle handling around a
// fault window: if an upstream outage starves the queue, the average must
// decay during the idle gap rather than freeze at its peak and blackhole
// the post-outage burst.
func TestREDIdleDecayAfterUpstreamOutage(t *testing.T) {
	q := NewRED(10_000, 30_000, 0.1, 1)
	now := time.Duration(0)
	// Drive the average well above the min threshold.
	for i := 0; i < 200; i++ {
		p := &Packet{Bytes: 1400}
		q.Enqueue(p, now)
		now += time.Millisecond
		if q.Bytes() > 25_000 {
			q.Dequeue(now)
		}
	}
	if q.AvgBytes() < float64(q.MinBytes) {
		t.Skipf("average %f never crossed min threshold; test setup too weak", q.AvgBytes())
	}
	for q.Len() > 0 {
		q.Dequeue(now)
	}
	peak := q.AvgBytes()
	// A 10 s starvation gap (outage upstream), then traffic resumes.
	now += 10 * time.Second
	if !q.Enqueue(&Packet{Bytes: 1400}, now) {
		t.Fatal("first post-outage packet dropped; idle decay failed")
	}
	if got := q.AvgBytes(); got >= peak {
		t.Fatalf("average did not decay across the idle gap: %f → %f", peak, got)
	}
}

func TestConservationTraceLinkInvariant(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		rng := rand.New(rand.NewSource(seed))
		sim := NewSim()
		q := randomQueue(rng)
		tr := syntheticTrace(rng, 2*time.Second)
		var link *TraceLink
		stop := time.Duration(3+rng.Intn(5)) * time.Second
		specs := randomSpecs(rng, stop)
		d := NewDumbbell(sim, func(dst Receiver) Link {
			link = NewTraceLink(sim, q, tr, time.Duration(rng.Intn(40))*time.Millisecond, dst, true, seed+200)
			if rng.Intn(2) == 0 {
				link.SetLossProb(rng.Float64() * 0.05)
			}
			return link
		}, 1400, specs)

		// TraceLink counts a packet the instant it is dequeued, so the
		// conservation identity is exact at every observation point.
		check := func(at time.Duration) {
			sim.Run(at)
			var sent int64
			for _, m := range d.Metrics {
				sent += m.Sent
			}
			if got := queueDrops(q) + link.Delivered + link.Lost + int64(q.Len()); got != sent {
				t.Errorf("seed %d at %v: sent=%d but drops=%d + delivered=%d + lost=%d + queued=%d = %d",
					seed, at, sent, queueDrops(q), link.Delivered, link.Lost, q.Len(), got)
			}
		}
		check(stop / 2)
		check(stop)
		check(stop + 10*time.Second) // loop=true: the trace keeps draining

		if q.Len() != 0 {
			t.Fatalf("seed %d: queue not drained after 10 s of idle channel: %d packets", seed, q.Len())
		}
		var received int64
		for _, m := range d.Metrics {
			received += m.Received
		}
		if received != link.Delivered {
			t.Errorf("seed %d: sinks received %d packets but link delivered %d", seed, received, link.Delivered)
		}
		checkFlowAccounting(t, d, specs)
	}
}
