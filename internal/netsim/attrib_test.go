package netsim

import (
	"testing"
	"time"

	"repro/internal/snap"
	"repro/internal/stats"
)

// TestPacketAttribTelescopes pins the accounting identity at the primitive
// level: MarkDelay charges each closed interval to the pending component, so
// after CloseDelay the components sum exactly — integer nanoseconds — to
// now-SentAt, and a clone taken mid-life carries the same ledger.
func TestPacketAttribTelescopes(t *testing.T) {
	sim := NewSim()
	p := sim.NewPacket(1, 0, 1000, time.Millisecond, 0)
	p.MarkDelay(3*time.Millisecond, stats.DelaySerialize)
	q := sim.ClonePacket(p)
	for _, pk := range []*Packet{p, q} {
		pk.MarkDelay(5*time.Millisecond, stats.DelayPropagate)
		pk.CloseDelay(9 * time.Millisecond)
	}
	if p.DelayComps() != q.DelayComps() {
		t.Fatalf("clone ledger diverges: %v vs %v", p.DelayComps(), q.DelayComps())
	}
	comps := p.DelayComps()
	want := [stats.NumDelayComps]time.Duration{
		stats.DelayQueue:     2 * time.Millisecond,
		stats.DelaySerialize: 2 * time.Millisecond,
		stats.DelayPropagate: 4 * time.Millisecond,
	}
	if comps != want {
		t.Fatalf("components = %v, want %v", comps, want)
	}
	var sum time.Duration
	for _, c := range comps {
		sum += c
	}
	if sum != 8*time.Millisecond {
		t.Fatalf("component sum = %v, want 8ms (= close - SentAt)", sum)
	}
	sim.FreePacket(p)
	sim.FreePacket(q)
}

// TestSnapshotPacketRoundTripsAttribution checks the checkpoint codec carries
// the attribution ledger: a packet snapshotted mid-interval restores with the
// same closed components AND the same open interval, so closing both at the
// same instant yields identical decompositions.
func TestSnapshotPacketRoundTripsAttribution(t *testing.T) {
	sim := NewSim()
	p := sim.NewPacket(2, 5, 1400, 2*time.Millisecond, 1)
	p.MarkDelay(6*time.Millisecond, stats.DelayFaultHold)

	e := snap.NewEncoder()
	SnapshotPacket(e, p)
	if err := e.Err(); err != nil {
		t.Fatal(err)
	}
	blob, err := e.Encode(snap.Version)
	if err != nil {
		t.Fatal(err)
	}
	d, err := snap.Decode(blob, snap.Version)
	if err != nil {
		t.Fatal(err)
	}
	q := RestorePacket(d)
	if err := d.Err(); err != nil {
		t.Fatal(err)
	}
	p.CloseDelay(11 * time.Millisecond)
	q.CloseDelay(11 * time.Millisecond)
	if p.DelayComps() != q.DelayComps() {
		t.Fatalf("restored ledger diverges: %v vs %v", q.DelayComps(), p.DelayComps())
	}
	comps := q.DelayComps()
	if comps[stats.DelayQueue] != 4*time.Millisecond || comps[stats.DelayFaultHold] != 5*time.Millisecond {
		t.Fatalf("restored components = %v, want queue 4ms / fault 5ms", comps)
	}
	sim.FreePacket(p)
	sim.FreePacket(q)
}

// TestSinkAttribIdentityEndToEnd runs controlled and CBR flows over a fixed
// dumbbell with attribution aggregates attached and requires the accounting
// identity to hold for every delivered packet — zero violations, zero
// negative components — with nonzero serialization and propagation charged.
func TestSinkAttribIdentityEndToEnd(t *testing.T) {
	sim := NewSim()
	d := NewDumbbell(sim, func(dst Receiver) Link {
		// Shallow lossy queue: drops, dup-acks, and retransmissions exercise
		// the ledger beyond the happy path.
		l := NewFixedLink(sim, NewDropTail(64_000), 6, 15*time.Millisecond, dst, 7)
		l.SetLossProb(0.02)
		return l
	}, 1400, []FlowSpec{
		{Ctrl: &fixedWindow{w: 12}, AckDelay: 10 * time.Millisecond},
		{CBRMbps: 2},
	})
	var agg stats.Attribution
	d.Sources[0].SetAttribution(&agg)
	d.CBRs[1].SetAttribution(&agg)
	sim.Run(5 * time.Second)

	if agg.Count == 0 {
		t.Fatal("no deliveries recorded; identity check vacuous")
	}
	if agg.Violations != 0 || agg.Negatives != 0 {
		t.Fatalf("accounting identity broken: %d violations, %d negatives over %d packets",
			agg.Violations, agg.Negatives, agg.Count)
	}
	var sum int64
	for c := 0; c < stats.NumDelayComps; c++ {
		sum += agg.CompNs[c]
	}
	if sum != agg.TotalNs {
		t.Fatalf("aggregate sum %d ns != total %d ns", sum, agg.TotalNs)
	}
	if agg.CompNs[stats.DelaySerialize] == 0 || agg.CompNs[stats.DelayPropagate] == 0 {
		t.Fatalf("expected nonzero serialization and propagation: %v", agg.CompNs)
	}
	// Per-flow compact totals mirror the aggregate.
	var flowSum int64
	for _, m := range d.Metrics {
		for c := 0; c < stats.NumDelayComps; c++ {
			flowSum += m.AttribNs[c]
		}
	}
	if flowSum != agg.TotalNs {
		t.Fatalf("per-flow AttribNs sum %d != aggregate total %d", flowSum, agg.TotalNs)
	}
}

// TestAttribPathZeroAllocs extends the steady-state allocation pin to the
// attribution-enabled delivery path: stamping lives inside the pooled packet
// and Attribution.Record is pure integer arithmetic, so the pin stays at
// exactly zero allocations per packet.
func TestAttribPathZeroAllocs(t *testing.T) {
	sim := NewSim()
	d := NewDumbbell(sim, func(dst Receiver) Link {
		return NewFixedLink(sim, NewDropTail(1<<20), 100, time.Millisecond, dst, 1)
	}, 1400, []FlowSpec{{CBRMbps: 60}})
	var agg stats.Attribution
	d.CBRs[0].SetAttribution(&agg)
	sim.Run(200 * time.Millisecond) // warm heap, ring, and pool
	next := sim.Now()
	allocs := testing.AllocsPerRun(100, func() {
		next += 20 * time.Millisecond
		sim.Run(next)
	})
	if allocs != 0 {
		t.Fatalf("attribution path allocates %.1f/run in steady state, want 0", allocs)
	}
	if agg.Count == 0 || agg.Violations != 0 {
		t.Fatalf("implausible aggregate after warm run: %+v", agg)
	}
}
