package netsim

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"time"
)

// Fuzz coverage for the cross-shard handoff layer: the order-key codec that
// every cross message carries, and the executor-equivalence property under
// arbitrary topologies with timestamps pushed onto the lookahead grid (the
// window-boundary edge the conservative protocol must get exactly right).

// FuzzOrderKey exercises the composite key codec across the whole valid
// domain: pack/unpack must be the identity and uint64 comparison of packed
// keys must agree with lexicographic (cell, seq) comparison.
func FuzzOrderKey(f *testing.F) {
	f.Add(uint32(0), uint64(0), uint32(0), uint64(1))
	f.Add(uint32(1), uint64(0), uint32(0), uint64(1<<40))
	f.Add(uint32(1<<20-1), uint64(0), uint32(5), uint64(cellSeqMask))
	f.Fuzz(func(t *testing.T, cellA uint32, seqA uint64, cellB uint32, seqB uint64) {
		cellA, cellB = cellA%(1<<20), cellB%(1<<20)
		seqA, seqB = seqA&cellSeqMask, seqB&cellSeqMask
		ka, kb := orderKey(cellA, seqA), orderKey(cellB, seqB)
		if c, s := orderKeyParts(ka); c != cellA || s != seqA {
			t.Fatalf("roundtrip (%d,%d) → %d → (%d,%d)", cellA, seqA, ka, c, s)
		}
		lexLess := cellA < cellB || (cellA == cellB && seqA < seqB)
		if (ka < kb) != lexLess {
			t.Fatalf("packed order (%d<%d)=%v disagrees with lexicographic (%d,%d)<(%d,%d)=%v",
				ka, kb, ka < kb, cellA, seqA, cellB, seqB, lexLess)
		}
		if (ka == kb) != (cellA == cellB && seqA == seqB) {
			t.Fatalf("distinct (cell,seq) pairs collided: (%d,%d) and (%d,%d) → %d",
				cellA, seqA, cellB, seqB, ka)
		}
	})
}

// fuzzHop is one precomputed step of a cross-cell message chain. All
// randomness is drawn at construction time on a single goroutine; the
// runtime closures just walk the precomputed chain, so the workload itself
// can never introduce executor-dependent divergence.
type fuzzHop struct {
	dst   int
	delay time.Duration
}

// buildFuzzWorkload populates m with a workload derived deterministically
// from rng: scattered one-shot events (many on exact window-grid instants)
// and cross-cell chains whose delays are frequently exactly the lookahead,
// so arrivals land exactly on shard-boundary timestamps.
func buildFuzzWorkload(m *Mesh, rng *rand.Rand, until time.Duration, add func(cell int, tag string)) {
	n := m.Cells()
	L := m.Lookahead()
	gridOr := func() time.Duration {
		if rng.Intn(2) == 0 {
			// Exactly on the window grid, including 0 and `until`.
			k := rng.Intn(int(until/L) + 1)
			return time.Duration(k) * L
		}
		return time.Duration(rng.Int63n(int64(until) + 1))
	}
	crossDelay := func() time.Duration {
		if rng.Intn(2) == 0 {
			return L // arrival exactly one horizon ahead
		}
		return L + time.Duration(rng.Int63n(int64(2*L)))
	}
	for i := 0; i < 10+rng.Intn(30); i++ {
		cell := rng.Intn(n)
		tag := fmt.Sprintf("one%d", i)
		m.Cell(cell).Schedule(gridOr(), func() { add(cell, tag) })
	}
	for c := 0; c < 3+rng.Intn(6); c++ {
		src := rng.Intn(n)
		start := gridOr()
		hops := make([]fuzzHop, 1+rng.Intn(12))
		for h := range hops {
			hops[h] = fuzzHop{dst: rng.Intn(n), delay: crossDelay()}
		}
		id := c
		var walk func(cell int, rest []fuzzHop)
		walk = func(cell int, rest []fuzzHop) {
			add(cell, fmt.Sprintf("chain%d", id))
			if len(rest) == 0 {
				return
			}
			hop := rest[0]
			if hop.dst == cell {
				// Same-cell step: a local event at exactly the lookahead
				// horizon, racing any cross arrivals at that instant.
				m.Cell(cell).After(hop.delay, func() { walk(cell, rest[1:]) })
				return
			}
			m.Send(cell, hop.dst, hop.delay, func() { walk(hop.dst, rest[1:]) })
		}
		m.Cell(src).Schedule(start, func() { walk(src, hops) })
	}
}

// FuzzMeshCrossOrdering is the executor-equivalence property under fuzzed
// topologies: for any (seed, cells, lookahead, shards) the sharded run's
// per-cell logs, clocks, backlog, and cross counts must be byte-identical to
// the single-heap reference.
func FuzzMeshCrossOrdering(f *testing.F) {
	f.Add(int64(1), uint8(2), uint8(10), uint8(2))
	f.Add(int64(2), uint8(8), uint8(1), uint8(4))
	f.Add(int64(3), uint8(5), uint8(7), uint8(3))
	f.Add(int64(42), uint8(1), uint8(20), uint8(8))
	f.Fuzz(func(t *testing.T, seed int64, nc, lookMs, shards uint8) {
		cells := int(nc)%8 + 1
		L := time.Duration(int(lookMs)%20+1) * time.Millisecond
		k := int(shards)%8 + 1
		until := 20 * L // multiple of the lookahead: grid-aligned end

		run := func(exec func(m *Mesh, until time.Duration)) meshRunResult {
			m := NewMesh(cells, L)
			logs := make([][]string, cells)
			add := func(cell int, tag string) {
				logs[cell] = append(logs[cell], fmt.Sprintf("%s@%v", tag, m.Cell(cell).Now()))
			}
			buildFuzzWorkload(m, rand.New(rand.NewSource(seed)), until, add)
			exec(m, until)
			r := meshRunResult{logs: logs, cross: m.CrossDelivered()}
			for i := 0; i < cells; i++ {
				r.nows = append(r.nows, m.Cell(i).Now())
				r.pending = append(r.pending, m.Cell(i).Pending())
			}
			return r
		}
		ref := run(func(m *Mesh, until time.Duration) { m.RunSingle(until) })
		got := run(func(m *Mesh, until time.Duration) { m.RunSharded(until, k) })
		if !reflect.DeepEqual(got, ref) {
			t.Fatalf("sharded-%d diverges from single-heap reference on seed=%d cells=%d L=%v\nref: %+v\ngot: %+v",
				k, seed, cells, L, ref, got)
		}
	})
}

// FuzzMeshRejection pins the construction-time rejection surface under
// arbitrary inputs: non-positive lookahead (zero-delay links) must panic
// with the documented message, and valid constructions must never panic.
func FuzzMeshRejection(f *testing.F) {
	f.Add(int8(2), int64(0))
	f.Add(int8(3), int64(-5))
	f.Add(int8(1), int64(1))
	f.Fuzz(func(t *testing.T, nc int8, lookNs int64) {
		defer func() {
			r := recover()
			valid := nc > 0 && lookNs > 0
			if valid && r != nil {
				t.Fatalf("valid mesh (%d cells, %dns) panicked: %v", nc, lookNs, r)
			}
			if !valid && r == nil {
				t.Fatalf("invalid mesh (%d cells, %dns) accepted", nc, lookNs)
			}
		}()
		m := NewMesh(int(nc), time.Duration(lookNs))
		m.RunSharded(time.Duration(lookNs)*4, 2)
	})
}
