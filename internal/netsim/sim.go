// Package netsim is a discrete-event network simulator, the substitute for
// the OPNET testbed in the Verus paper's trace-driven evaluation (§6.2) and
// for the tc-controlled dumbbell of the micro-evaluation (§7).
//
// The building blocks mirror the paper's topology: congestion-controlled
// Sources feed a shared bottleneck (a Queue drained by a Link whose service
// process is either a fixed rate or a recorded cellular trace); a Sink
// acknowledges every packet over a delayed return path; and per-flow metrics
// capture throughput and per-packet delay.
package netsim

import (
	"container/heap"
	"time"
)

// Event is a scheduled callback.
type event struct {
	at  time.Duration
	seq uint64 // tiebreaker: FIFO among same-time events
	fn  func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// Sim is the event loop. The zero value is not usable; construct with NewSim.
// All simulation entities must be driven from a single goroutine.
type Sim struct {
	now  time.Duration
	heap eventHeap
	seq  uint64
}

// NewSim returns an empty simulation at time zero.
func NewSim() *Sim { return &Sim{} }

// Now returns the current simulated time.
func (s *Sim) Now() time.Duration { return s.now }

// Schedule runs fn at the given absolute simulated time. Times in the past
// are clamped to now (the event runs next).
func (s *Sim) Schedule(at time.Duration, fn func()) {
	if at < s.now {
		at = s.now
	}
	s.seq++
	heap.Push(&s.heap, event{at: at, seq: s.seq, fn: fn})
}

// After runs fn d from now.
func (s *Sim) After(d time.Duration, fn func()) { s.Schedule(s.now+d, fn) }

// Every runs fn every interval, starting one interval from now, until the
// returned stop function is called.
func (s *Sim) Every(interval time.Duration, fn func()) (stop func()) {
	if interval <= 0 {
		panic("netsim: Every interval must be positive")
	}
	stopped := false
	var tick func()
	tick = func() {
		if stopped {
			return
		}
		fn()
		if !stopped {
			s.After(interval, tick)
		}
	}
	s.After(interval, tick)
	return func() { stopped = true }
}

// Run processes events in time order until the queue empties or the next
// event is beyond `until`, then advances the clock to `until`.
func (s *Sim) Run(until time.Duration) {
	for len(s.heap) > 0 && s.heap[0].at <= until {
		e := heap.Pop(&s.heap).(event)
		s.now = e.at
		e.fn()
	}
	if until > s.now {
		s.now = until
	}
}

// Pending returns the number of queued events (useful in tests).
func (s *Sim) Pending() int { return len(s.heap) }
