// Package netsim is a discrete-event network simulator, the substitute for
// the OPNET testbed in the Verus paper's trace-driven evaluation (§6.2) and
// for the tc-controlled dumbbell of the micro-evaluation (§7).
//
// The building blocks mirror the paper's topology: congestion-controlled
// Sources feed a shared bottleneck (a Queue drained by a Link whose service
// process is either a fixed rate or a recorded cellular trace); a Sink
// acknowledges every packet over a delayed return path; and per-flow metrics
// capture throughput and per-packet delay.
package netsim

import "time"

// event is a scheduled callback. One-shot events carry fn; recurring events
// carry a timer and reschedule themselves when they fire, so an Every tick
// reuses one timer allocation for the lifetime of the timer instead of
// growing a closure chain.
type event struct {
	at time.Duration
	// seq is the same-time tiebreaker: FIFO among same-time events. In a
	// standalone Sim it is a plain insertion counter. In a Mesh cell it is a
	// composite order key — the owning cell's id in the high bits, the
	// cell-local insertion counter in the low bits (see orderKey) — assigned
	// at creation time by whichever cell created the event. Creation-time
	// assignment is what makes the key independent of the executor: the
	// merged single-heap run and the sharded run order every event by the
	// exact same (at, seq) pair.
	seq uint64
	fn  func()
	// fid is the registry id of fn when the callback was scheduled through
	// a tagged path (see snapshot.go). Zero means unregistered: the event
	// still fires normally, but a checkpoint cannot serialize it. Only the
	// snapshot encoder reads fid — the hot path never touches it.
	fid int64
	t   *timer // non-nil for recurring events; fn is nil then
	// r/p carry a packet delivery without boxing a closure: the event fires
	// as r.Receive(p). Packet deliveries dominate the hot path, so giving
	// them a closure-free representation is what makes the steady state
	// allocation-free (the pooled Packet is recycled, the Receiver is a
	// long-lived component).
	r Receiver
	p *Packet
}

// cellSeqBits is the width of the cell-local counter inside a composite
// order key: 2^44 ≈ 1.7e13 events per cell before overflow, with the
// remaining 20 high bits holding the cell id (up to ~1M cells). A standalone
// Sim has id 0, so its keys are the bare counter — ordering is bit-for-bit
// what it was before meshes existed.
const cellSeqBits = 44

// cellSeqMask masks the cell-local counter out of a composite order key.
const cellSeqMask = (uint64(1) << cellSeqBits) - 1

// orderKey composes a cell id and a cell-local insertion counter into one
// uint64 that compares like the lexicographic pair (cell, seq). Panics on
// overflow of either field rather than silently corrupting event order.
func orderKey(cell uint32, seq uint64) uint64 {
	if seq > cellSeqMask {
		panic("netsim: cell event counter overflow")
	}
	if uint64(cell) > uint64(1)<<(64-cellSeqBits)-1 {
		panic("netsim: cell id overflows order key")
	}
	return uint64(cell)<<cellSeqBits | seq
}

// orderKeyParts splits a composite order key back into (cell, seq) — the
// inverse of orderKey, used by introspection and the fuzz harness.
func orderKeyParts(key uint64) (cell uint32, seq uint64) {
	return uint32(key >> cellSeqBits), key & cellSeqMask
}

// timer is the Sim-owned state of one Every registration. id is the
// registry id under which snapshot-aware components registered the timer
// (zero for plain Every registrations, which cannot be checkpointed).
type timer struct {
	interval time.Duration
	fn       func()
	stopped  bool
	id       int64
}

// eventLess orders events by (time, insertion sequence) — a strict total
// order, so the pop sequence is identical for any heap arity or layout.
func eventLess(a, b event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// Sim is the event loop. The zero value is not usable; construct with NewSim.
// All simulation entities must be driven from a single goroutine.
//
// The pending set is a 4-ary heap in a flat []event: no container/heap
// interface boxing (which allocated on every push), shallower sift paths
// than a binary heap, and slice storage whose capacity is reused across
// push/pop cycles — steady-state scheduling allocates nothing.
type Sim struct {
	now    time.Duration
	events []event
	seq    uint64
	// id and mesh are set when this Sim is one cell of a Mesh (see mesh.go).
	// A standalone Sim has id 0 and a nil mesh; every code path below then
	// behaves exactly as it did before meshes existed.
	id   uint32
	mesh *Mesh
	// outbox buffers cross-cell messages originated by this cell while the
	// mesh is executing a sharded window; the coordinator drains it at the
	// next barrier. Only the goroutine executing this cell appends to it.
	outbox []crossMsg
	// pool is this Sim's packet free list (see pool.go). Owned per cell, so
	// sharded mesh execution recycles packets with no synchronization.
	pool packetPool
	// reg maps stable ids to the long-lived callbacks, receivers, and timers
	// a checkpoint needs to serialize heap entries (see snapshot.go). All
	// maps are touched at construction and restore time only — never on the
	// event hot path.
	reg simRegistry
}

// NewSim returns an empty simulation at time zero.
func NewSim() *Sim { return &Sim{} }

// Now returns the current simulated time.
func (s *Sim) Now() time.Duration { return s.now }

// push inserts e, restoring the heap invariant by sifting up.
func (s *Sim) push(e event) {
	s.events = append(s.events, e)
	i := len(s.events) - 1
	for i > 0 {
		p := (i - 1) / 4
		if !eventLess(s.events[i], s.events[p]) {
			break
		}
		s.events[i], s.events[p] = s.events[p], s.events[i]
		i = p
	}
}

// pop removes and returns the earliest event, sifting the displaced tail
// element down. The vacated slot is zeroed so the slice does not pin the
// callback (and whatever it closes over) after the event has fired.
func (s *Sim) pop() event {
	ev := s.events[0]
	last := len(s.events) - 1
	s.events[0] = s.events[last]
	s.events[last] = event{}
	s.events = s.events[:last]
	n := last
	i := 0
	for {
		first := 4*i + 1
		if first >= n {
			break
		}
		min := first
		end := first + 4
		if end > n {
			end = n
		}
		for c := first + 1; c < end; c++ {
			if eventLess(s.events[c], s.events[min]) {
				min = c
			}
		}
		if !eventLess(s.events[min], s.events[i]) {
			break
		}
		s.events[i], s.events[min] = s.events[min], s.events[i]
		i = min
	}
	return ev
}

// nextKey claims the next order key from this cell's insertion counter.
func (s *Sim) nextKey() uint64 {
	s.seq++
	return orderKey(s.id, s.seq)
}

// pushKeyed inserts an externally-created event (a cross-cell arrival) whose
// order key was already claimed by the sending cell. The key travels with
// the message, so the insertion moment — immediate in the merged reference
// executor, barrier-deferred in the sharded one — never affects ordering.
func (s *Sim) pushKeyed(at time.Duration, key uint64, fn func()) {
	s.push(event{at: at, seq: key, fn: fn})
}

// pushKeyedPacket is pushKeyed for a packet delivery: the event fires as
// r.Receive(p) with no closure.
func (s *Sim) pushKeyedPacket(at time.Duration, key uint64, r Receiver, p *Packet) {
	s.push(event{at: at, seq: key, r: r, p: p})
}

// SchedulePacket delivers p to r at the given absolute simulated time,
// without allocating a closure. Times in the past are clamped to now, same
// as Schedule.
func (s *Sim) SchedulePacket(at time.Duration, r Receiver, p *Packet) {
	if at < s.now {
		at = s.now
	}
	s.push(event{at: at, seq: s.nextKey(), r: r, p: p})
}

// SchedulePacketAfter delivers p to r d from now.
func (s *Sim) SchedulePacketAfter(d time.Duration, r Receiver, p *Packet) {
	s.SchedulePacket(s.now+d, r, p)
}

// Schedule runs fn at the given absolute simulated time. Times in the past
// are clamped to now (the event runs next).
func (s *Sim) Schedule(at time.Duration, fn func()) {
	if at < s.now {
		at = s.now
	}
	s.push(event{at: at, seq: s.nextKey(), fn: fn})
}

// After runs fn d from now.
func (s *Sim) After(d time.Duration, fn func()) { s.Schedule(s.now+d, fn) }

// scheduleTagged is Schedule with the callback's registry id attached, so a
// checkpoint can serialize the pending event. Key claiming is identical to
// Schedule — tagging never moves a digest.
func (s *Sim) scheduleTagged(at time.Duration, id int64, fn func()) {
	if at < s.now {
		at = s.now
	}
	s.push(event{at: at, seq: s.nextKey(), fn: fn, fid: id})
}

// afterTagged is After with the callback's registry id attached.
func (s *Sim) afterTagged(d time.Duration, id int64, fn func()) {
	s.scheduleTagged(s.now+d, id, fn)
}

// Every runs fn every interval, starting one interval from now, until the
// returned stop function is called. The registration is one timer object
// for its whole lifetime: each firing reschedules the same entry, so
// steady-state ticking allocates nothing.
func (s *Sim) Every(interval time.Duration, fn func()) (stop func()) {
	if interval <= 0 {
		panic("netsim: Every interval must be positive")
	}
	t := &timer{interval: interval, fn: fn}
	s.push(event{at: s.now + interval, seq: s.nextKey(), t: t})
	return func() { t.stopped = true }
}

// everyTagged is Every with the timer registered under id in this Sim's
// snapshot registry, making its pending tick serializable. Key claiming is
// identical to Every.
func (s *Sim) everyTagged(id int64, interval time.Duration, fn func()) (stop func()) {
	if interval <= 0 {
		panic("netsim: Every interval must be positive")
	}
	t := &timer{interval: interval, fn: fn, id: id}
	s.reg.registerTimer(id, t)
	s.push(event{at: s.now + interval, seq: s.nextKey(), t: t})
	return func() { t.stopped = true }
}

// Run processes events in time order until the queue empties or the next
// event is beyond `until`, then advances the clock to `until`.
//
// A recurring event fires its timer's callback first and reschedules after,
// claiming a fresh sequence number at that point — the same ordering the
// previous closure-chain Every produced, so same-time FIFO behavior is
// unchanged.
func (s *Sim) Run(until time.Duration) {
	for len(s.events) > 0 && s.events[0].at <= until {
		s.step()
	}
	if until > s.now {
		s.now = until
	}
}

// step pops and executes the earliest event, advancing the clock to it.
// Recurring timers reschedule themselves with a fresh order key, exactly as
// the inline loop in Run used to.
func (s *Sim) step() {
	e := s.pop()
	s.now = e.at
	if e.t != nil {
		t := e.t
		if t.stopped {
			return
		}
		t.fn()
		if !t.stopped {
			s.push(event{at: s.now + t.interval, seq: s.nextKey(), t: t})
		}
		return
	}
	if e.r != nil {
		e.r.Receive(e.p)
		return
	}
	e.fn()
}

// headBefore reports whether the earliest pending event falls strictly
// before horizon (or at/below it when inclusive), i.e. whether this cell has
// work inside the current conservative window.
func (s *Sim) headBefore(horizon time.Duration, inclusive bool) bool {
	if len(s.events) == 0 {
		return false
	}
	if inclusive {
		return s.events[0].at <= horizon
	}
	return s.events[0].at < horizon
}

// headKey returns the (at, seq) key of the earliest pending event; callers
// must have checked the heap is non-empty.
func (s *Sim) headKey() (time.Duration, uint64) {
	return s.events[0].at, s.events[0].seq
}

// runWindow executes every pending event strictly before horizon (or at/
// below it when inclusive) and then advances the clock to the horizon — the
// null-message advance: even an idle cell's clock reaches the window edge,
// which is what tells its peers they may proceed past it.
func (s *Sim) runWindow(horizon time.Duration, inclusive bool) {
	for s.headBefore(horizon, inclusive) {
		s.step()
	}
	if horizon > s.now {
		s.now = horizon
	}
}

// Pending returns the number of queued events (useful in tests).
func (s *Sim) Pending() int { return len(s.events) }
