// Package netsim is a discrete-event network simulator, the substitute for
// the OPNET testbed in the Verus paper's trace-driven evaluation (§6.2) and
// for the tc-controlled dumbbell of the micro-evaluation (§7).
//
// The building blocks mirror the paper's topology: congestion-controlled
// Sources feed a shared bottleneck (a Queue drained by a Link whose service
// process is either a fixed rate or a recorded cellular trace); a Sink
// acknowledges every packet over a delayed return path; and per-flow metrics
// capture throughput and per-packet delay.
package netsim

import "time"

// event is a scheduled callback. One-shot events carry fn; recurring events
// carry a timer and reschedule themselves when they fire, so an Every tick
// reuses one timer allocation for the lifetime of the timer instead of
// growing a closure chain.
type event struct {
	at  time.Duration
	seq uint64 // tiebreaker: FIFO among same-time events
	fn  func()
	t   *timer // non-nil for recurring events; fn is nil then
}

// timer is the Sim-owned state of one Every registration.
type timer struct {
	interval time.Duration
	fn       func()
	stopped  bool
}

// eventLess orders events by (time, insertion sequence) — a strict total
// order, so the pop sequence is identical for any heap arity or layout.
func eventLess(a, b event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// Sim is the event loop. The zero value is not usable; construct with NewSim.
// All simulation entities must be driven from a single goroutine.
//
// The pending set is a 4-ary heap in a flat []event: no container/heap
// interface boxing (which allocated on every push), shallower sift paths
// than a binary heap, and slice storage whose capacity is reused across
// push/pop cycles — steady-state scheduling allocates nothing.
type Sim struct {
	now    time.Duration
	events []event
	seq    uint64
}

// NewSim returns an empty simulation at time zero.
func NewSim() *Sim { return &Sim{} }

// Now returns the current simulated time.
func (s *Sim) Now() time.Duration { return s.now }

// push inserts e, restoring the heap invariant by sifting up.
func (s *Sim) push(e event) {
	s.events = append(s.events, e)
	i := len(s.events) - 1
	for i > 0 {
		p := (i - 1) / 4
		if !eventLess(s.events[i], s.events[p]) {
			break
		}
		s.events[i], s.events[p] = s.events[p], s.events[i]
		i = p
	}
}

// pop removes and returns the earliest event, sifting the displaced tail
// element down. The vacated slot is zeroed so the slice does not pin the
// callback (and whatever it closes over) after the event has fired.
func (s *Sim) pop() event {
	ev := s.events[0]
	last := len(s.events) - 1
	s.events[0] = s.events[last]
	s.events[last] = event{}
	s.events = s.events[:last]
	n := last
	i := 0
	for {
		first := 4*i + 1
		if first >= n {
			break
		}
		min := first
		end := first + 4
		if end > n {
			end = n
		}
		for c := first + 1; c < end; c++ {
			if eventLess(s.events[c], s.events[min]) {
				min = c
			}
		}
		if !eventLess(s.events[min], s.events[i]) {
			break
		}
		s.events[i], s.events[min] = s.events[min], s.events[i]
		i = min
	}
	return ev
}

// Schedule runs fn at the given absolute simulated time. Times in the past
// are clamped to now (the event runs next).
func (s *Sim) Schedule(at time.Duration, fn func()) {
	if at < s.now {
		at = s.now
	}
	s.seq++
	s.push(event{at: at, seq: s.seq, fn: fn})
}

// After runs fn d from now.
func (s *Sim) After(d time.Duration, fn func()) { s.Schedule(s.now+d, fn) }

// Every runs fn every interval, starting one interval from now, until the
// returned stop function is called. The registration is one timer object
// for its whole lifetime: each firing reschedules the same entry, so
// steady-state ticking allocates nothing.
func (s *Sim) Every(interval time.Duration, fn func()) (stop func()) {
	if interval <= 0 {
		panic("netsim: Every interval must be positive")
	}
	t := &timer{interval: interval, fn: fn}
	s.seq++
	s.push(event{at: s.now + interval, seq: s.seq, t: t})
	return func() { t.stopped = true }
}

// Run processes events in time order until the queue empties or the next
// event is beyond `until`, then advances the clock to `until`.
//
// A recurring event fires its timer's callback first and reschedules after,
// claiming a fresh sequence number at that point — the same ordering the
// previous closure-chain Every produced, so same-time FIFO behavior is
// unchanged.
func (s *Sim) Run(until time.Duration) {
	for len(s.events) > 0 && s.events[0].at <= until {
		e := s.pop()
		s.now = e.at
		if e.t != nil {
			t := e.t
			if t.stopped {
				continue
			}
			t.fn()
			if !t.stopped {
				s.seq++
				s.push(event{at: s.now + t.interval, seq: s.seq, t: t})
			}
			continue
		}
		e.fn()
	}
	if until > s.now {
		s.now = until
	}
}

// Pending returns the number of queued events (useful in tests).
func (s *Sim) Pending() int { return len(s.events) }
