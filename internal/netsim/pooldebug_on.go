//go:build pooldebug

package netsim

import "fmt"

// pooldebug build: every packet carries a released bit, FreePacket panics on
// double-release, released packets are field-poisoned so any read after
// release produces conspicuously broken values (negative flow ids, negative
// sizes — which queues, metrics, and conservation identities all reject),
// and AssertLive turns key touch points into hard panics. The tag exists
// for CI and tests only; release builds compile the hooks away
// (pooldebug_off.go).

// PoolDebug reports whether release poisoning is compiled in.
const PoolDebug = true

// Poison field values written into a released packet.
const (
	poisonFlow  = -0xDEAD
	poisonSeq   = -0xDEAD
	poisonBytes = -0xDEAD
)

// poolMeta is the per-packet pool state.
type poolMeta struct {
	freed bool
}

func (p *Packet) markLive() { p.freed = false }

func (p *Packet) markFreed() {
	if p.freed {
		panic(fmt.Sprintf("netsim: double release of packet flow=%d seq=%d (pooldebug)", p.Flow, p.Seq))
	}
	p.freed = true
	p.Flow = poisonFlow
	p.Seq = poisonSeq
	p.Bytes = poisonBytes
	p.SentAt = -1
	p.Window = poisonFlow
}

// AssertLive panics if p has been released back to a pool, naming the touch
// point that observed the stale reference.
func AssertLive(p *Packet, ctx string) {
	if p != nil && p.freed {
		panic(fmt.Sprintf("netsim: use-after-release at %s (pooldebug)", ctx))
	}
}
