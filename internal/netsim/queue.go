package netsim

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"repro/internal/snap"
	"repro/internal/stats"
)

// Packet is the unit of transfer in the simulator. Packets are pooled: sim
// code obtains them from Sim.NewPacket/ClonePacket and returns them with
// Sim.FreePacket when their life ends (see pool.go for the ownership rules).
type Packet struct {
	poolMeta
	// Flow identifies the sending flow.
	Flow int
	// Seq is the flow-local sequence number.
	Seq int64
	// Bytes is the packet size on the wire.
	Bytes int
	// SentAt is when the source transmitted the packet.
	SentAt time.Duration
	// Window is the controller's SendTag at transmission time (Verus W_i).
	Window int

	// Delay attribution (DESIGN.md §16): the lifecycle stamps ride inside the
	// pooled packet so the decomposition costs no allocation. comps accumulate
	// closed intervals per component; mark is the open interval's start and
	// pend the component it will be charged to. NewPacket opens the first
	// interval at SentAt charged to queue wait; every transition closes the
	// open interval via MarkDelay; the sink closes the last one. Because each
	// charge is now-mark in integer nanoseconds and the marks are contiguous,
	// the component sum telescopes exactly to the measured one-way delay.
	comps [stats.NumDelayComps]time.Duration
	mark  time.Duration
	pend  stats.DelayComp
}

// MarkDelay closes the packet's open attribution interval at now — charging
// now-mark to the pending component — and opens a new interval charged to
// next. Stamp points call it at component transitions; it is pure integer
// arithmetic with no observability dependency, so it runs unconditionally.
func (p *Packet) MarkDelay(now time.Duration, next stats.DelayComp) {
	p.comps[p.pend] += now - p.mark
	p.mark = now
	p.pend = next
}

// CloseDelay closes the open interval at delivery time without opening a new
// one; after it, DelayComps sums exactly to now-SentAt.
func (p *Packet) CloseDelay(now time.Duration) {
	p.comps[p.pend] += now - p.mark
	p.mark = now
}

// DelayComps returns the accumulated per-component durations.
func (p *Packet) DelayComps() [stats.NumDelayComps]time.Duration { return p.comps }

// resetAttrib opens the first attribution interval: queue wait from sentAt.
func (p *Packet) resetAttrib(sentAt time.Duration) {
	p.comps = [stats.NumDelayComps]time.Duration{}
	p.mark = sentAt
	p.pend = stats.DelayQueue
}

// Queue is a bottleneck buffer. Enqueue returns false when the packet is
// dropped (tail drop or AQM decision); the caller keeps ownership of a
// rejected packet (and typically releases it).
type Queue interface {
	Enqueue(p *Packet, now time.Duration) bool
	Dequeue(now time.Duration) *Packet
	// Len returns the number of queued packets.
	Len() int
	// Bytes returns the total queued bytes.
	Bytes() int
}

// pktRing is a FIFO of packets over a power-of-two circular buffer. The old
// `fifo = fifo[1:]` reslicing walked the backing array forward so append had
// to reallocate perpetually even at a constant queue depth; the ring reuses
// its slots, which is what lets a saturated bottleneck run allocation-free.
type pktRing struct {
	buf  []*Packet
	head int
	n    int
}

func (r *pktRing) push(p *Packet) {
	if r.n == len(r.buf) {
		r.grow()
	}
	r.buf[(r.head+r.n)&(len(r.buf)-1)] = p
	r.n++
}

func (r *pktRing) grow() {
	nc := len(r.buf) * 2
	if nc == 0 {
		nc = 16
	}
	nb := make([]*Packet, nc)
	for i := 0; i < r.n; i++ {
		nb[i] = r.buf[(r.head+i)&(len(r.buf)-1)]
	}
	r.buf = nb
	r.head = 0
}

func (r *pktRing) pop() *Packet {
	if r.n == 0 {
		return nil
	}
	p := r.buf[r.head]
	r.buf[r.head] = nil
	r.head = (r.head + 1) & (len(r.buf) - 1)
	r.n--
	return p
}

func (r *pktRing) peek() *Packet {
	if r.n == 0 {
		return nil
	}
	return r.buf[r.head]
}

// DropTail is a FIFO with a byte capacity.
type DropTail struct {
	limit int
	ring  pktRing
	bytes int
	// Drops counts enqueue rejections.
	Drops int
}

// NewDropTail returns a FIFO that holds at most limitBytes.
func NewDropTail(limitBytes int) *DropTail {
	if limitBytes <= 0 {
		panic("netsim: DropTail limit must be positive")
	}
	return &DropTail{limit: limitBytes}
}

// Enqueue implements Queue.
func (q *DropTail) Enqueue(p *Packet, _ time.Duration) bool {
	AssertLive(p, "DropTail.Enqueue")
	if q.bytes+p.Bytes > q.limit {
		q.Drops++
		return false
	}
	q.ring.push(p)
	q.bytes += p.Bytes
	return true
}

// Dequeue implements Queue.
func (q *DropTail) Dequeue(_ time.Duration) *Packet {
	p := q.ring.pop()
	if p == nil {
		return nil
	}
	q.bytes -= p.Bytes
	return p
}

// Peek returns the head-of-line packet without dequeuing it (nil when empty).
func (q *DropTail) Peek() *Packet { return q.ring.peek() }

// Len implements Queue.
func (q *DropTail) Len() int { return q.ring.n }

// Bytes implements Queue.
func (q *DropTail) Bytes() int { return q.bytes }

// RED is Random Early Detection queue management (Floyd & Jacobson 1993),
// the discipline the paper's OPNET traffic shaper uses: "a shared queue with
// Random Early Detection (RED) ... minimum queue size 3 MBit, maximum queue
// size 9 MBit, and drop probability 10%."
type RED struct {
	// MinBytes and MaxBytes are the average-queue thresholds.
	MinBytes, MaxBytes int
	// MaxP is the drop probability as the average approaches MaxBytes.
	MaxP float64
	// Wq is the EWMA weight for the average queue estimate.
	Wq float64
	// HardLimitBytes caps the instantaneous queue (tail drop beyond it).
	HardLimitBytes int

	rng *rand.Rand
	// src is the counting source behind rng, making the drop-draw stream
	// position checkpointable (see snapshot.go).
	src    *snap.Source
	ring   pktRing
	bytes  int
	avg    float64
	count  int // packets since last drop, for uniformized drop spacing
	idleAt time.Duration
	idle   bool
	// Drops counts all dropped packets (early + tail).
	Drops int
	// EarlyDrops counts probabilistic RED drops only.
	EarlyDrops int
}

// PaperRED returns a RED queue with the paper's OPNET parameters: 3 Mbit
// min, 9 Mbit max, 10% drop probability. The hard limit is twice the max
// threshold.
func PaperRED(seed int64) *RED {
	return NewRED(3_000_000/8, 9_000_000/8, 0.10, seed)
}

// NewRED returns a RED queue with the given thresholds (bytes) and max drop
// probability. Wq defaults to 0.002 (the classic recommendation); the hard
// limit defaults to 2×maxBytes.
func NewRED(minBytes, maxBytes int, maxP float64, seed int64) *RED {
	if minBytes <= 0 || maxBytes <= minBytes || maxP <= 0 || maxP > 1 {
		panic("netsim: invalid RED parameters")
	}
	src := snap.NewSource(seed)
	return &RED{
		MinBytes:       minBytes,
		MaxBytes:       maxBytes,
		MaxP:           maxP,
		Wq:             0.002,
		HardLimitBytes: 2 * maxBytes,
		rng:            rand.New(src),
		src:            src,
		idle:           true,
	}
}

// Enqueue implements Queue.
func (q *RED) Enqueue(p *Packet, now time.Duration) bool {
	AssertLive(p, "RED.Enqueue")
	// Update the average queue size. After an idle period the average decays
	// as if small packets had been draining (approximation: decay toward 0
	// with the idle time measured in packet transmission slots). The idle
	// state must persist across *rejected* enqueues — clearing it on a drop
	// would freeze the average near its peak and blackhole the queue until
	// enough doomed arrivals nudge it down.
	if q.idle {
		slots := float64(now-q.idleAt) / float64(time.Millisecond)
		if slots > 0 {
			q.avg *= math.Pow(1-q.Wq, slots)
		}
		q.idleAt = now // decay accounted up to now; stay idle until a packet lands
	}
	q.avg = q.avg + q.Wq*(float64(q.bytes)-q.avg)

	if q.bytes+p.Bytes > q.HardLimitBytes {
		q.Drops++
		q.count = 0
		return false
	}
	switch {
	case q.avg < float64(q.MinBytes):
		q.count = -1
	case q.avg >= float64(q.MaxBytes):
		q.Drops++
		q.EarlyDrops++
		q.count = 0
		return false
	default:
		q.count++
		pb := q.MaxP * (q.avg - float64(q.MinBytes)) / float64(q.MaxBytes-q.MinBytes)
		pa := pb / (1 - float64(q.count)*pb)
		if pa < 0 || pa > 1 {
			pa = 1
		}
		if q.rng.Float64() < pa {
			q.Drops++
			q.EarlyDrops++
			q.count = 0
			return false
		}
	}
	q.ring.push(p)
	q.bytes += p.Bytes
	q.idle = false
	return true
}

// Dequeue implements Queue.
func (q *RED) Dequeue(now time.Duration) *Packet {
	p := q.ring.pop()
	if p == nil {
		return nil
	}
	q.bytes -= p.Bytes
	if q.ring.n == 0 {
		q.idle = true
		q.idleAt = now
	}
	return p
}

// Peek returns the head-of-line packet without dequeuing it (nil when empty).
func (q *RED) Peek() *Packet { return q.ring.peek() }

// Len implements Queue.
func (q *RED) Len() int { return q.ring.n }

// Bytes implements Queue.
func (q *RED) Bytes() int { return q.bytes }

// AvgBytes returns RED's smoothed queue-size estimate.
func (q *RED) AvgBytes() float64 { return q.avg }

// snapshotRing writes the ring's packets in FIFO order.
func (r *pktRing) snapshot(e *snap.Encoder) {
	e.U32(uint32(r.n))
	for i := 0; i < r.n; i++ {
		SnapshotPacket(e, r.buf[(r.head+i)&(len(r.buf)-1)])
	}
}

// restoreRing rematerializes the ring's packets in FIFO order into a ring
// the rebuild left empty.
func (r *pktRing) restore(d *snap.Decoder) {
	n := int(d.U32())
	if d.Err() != nil {
		return
	}
	if r.n != 0 {
		d.Fail(fmt.Errorf("netsim: restoring a queue ring that already holds %d packets", r.n))
		return
	}
	for i := 0; i < n; i++ {
		p := RestorePacket(d)
		if d.Err() != nil {
			return
		}
		if p == nil {
			d.Fail(fmt.Errorf("netsim: nil packet in queue ring snapshot"))
			return
		}
		r.push(p)
	}
}

// Snapshot implements Snapshotter: the queued packets and drop counter. The
// byte limit is configuration, written only as a cross-check.
func (q *DropTail) Snapshot(e *snap.Encoder) {
	e.Tag("droptail")
	e.Int(q.limit)
	e.Int(q.Drops)
	q.ring.snapshot(e)
}

// Restore implements Snapshotter.
func (q *DropTail) Restore(d *snap.Decoder) {
	d.Expect("droptail")
	limit := d.Int()
	drops := d.Int()
	if d.Err() != nil {
		return
	}
	if limit != q.limit {
		d.Fail(fmt.Errorf("netsim: DropTail limit %d in snapshot, %d rebuilt", limit, q.limit))
		return
	}
	q.Drops = drops
	q.ring.restore(d)
	q.bytes = 0
	for i := 0; i < q.ring.n; i++ {
		q.bytes += q.ring.buf[(q.ring.head+i)&(len(q.ring.buf)-1)].Bytes
	}
}

// Snapshot implements Snapshotter: queued packets, the RNG stream position,
// and every piece of RED's drop-decision state (average, count, idle clock).
// Thresholds are configuration, written only as a cross-check.
func (q *RED) Snapshot(e *snap.Encoder) {
	e.Tag("red")
	if q.src == nil {
		e.Fail(fmt.Errorf("netsim: RED queue was not built with NewRED and has no checkpointable RNG"))
		return
	}
	e.Int(q.MinBytes)
	e.Int(q.MaxBytes)
	e.F64(q.MaxP)
	e.F64(q.Wq)
	e.Int(q.HardLimitBytes)
	q.src.Snapshot(e)
	e.F64(q.avg)
	e.Int(q.count)
	e.Dur(q.idleAt)
	e.Bool(q.idle)
	e.Int(q.Drops)
	e.Int(q.EarlyDrops)
	q.ring.snapshot(e)
}

// Restore implements Snapshotter.
func (q *RED) Restore(d *snap.Decoder) {
	d.Expect("red")
	if q.src == nil {
		d.Fail(fmt.Errorf("netsim: RED queue was not built with NewRED and has no checkpointable RNG"))
		return
	}
	minB, maxB := d.Int(), d.Int()
	maxP, wq := d.F64(), d.F64()
	hard := d.Int()
	if d.Err() != nil {
		return
	}
	if minB != q.MinBytes || maxB != q.MaxBytes || maxP != q.MaxP || wq != q.Wq || hard != q.HardLimitBytes {
		d.Fail(fmt.Errorf("netsim: RED thresholds in snapshot differ from the rebuilt queue"))
		return
	}
	q.src.Restore(d)
	q.avg = d.F64()
	q.count = d.Int()
	q.idleAt = d.Dur()
	q.idle = d.Bool()
	q.Drops = d.Int()
	q.EarlyDrops = d.Int()
	q.ring.restore(d)
	q.bytes = 0
	for i := 0; i < q.ring.n; i++ {
		q.bytes += q.ring.buf[(q.ring.head+i)&(len(q.ring.buf)-1)].Bytes
	}
}

// snapshotQueue dispatches a Queue's snapshot through its concrete type, the
// same closed set TraceLink.peek relies on.
func snapshotQueue(e *snap.Encoder, q Queue) {
	switch q := q.(type) {
	case *DropTail:
		e.U8(0)
		q.Snapshot(e)
	case *RED:
		e.U8(1)
		q.Snapshot(e)
	default:
		e.Fail(fmt.Errorf("netsim: queue type %T is not checkpointable", q))
	}
}

// restoreQueue mirrors snapshotQueue against the rebuilt queue.
func restoreQueue(d *snap.Decoder, q Queue) {
	kind := d.U8()
	if d.Err() != nil {
		return
	}
	switch q := q.(type) {
	case *DropTail:
		if kind != 0 {
			d.Fail(fmt.Errorf("netsim: snapshot queue kind %d, rebuilt a DropTail", kind))
			return
		}
		q.Restore(d)
	case *RED:
		if kind != 1 {
			d.Fail(fmt.Errorf("netsim: snapshot queue kind %d, rebuilt a RED", kind))
			return
		}
		q.Restore(d)
	default:
		d.Fail(fmt.Errorf("netsim: queue type %T is not checkpointable", q))
	}
}
