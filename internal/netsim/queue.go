package netsim

import (
	"math"
	"math/rand"
	"time"
)

// Packet is the unit of transfer in the simulator.
type Packet struct {
	// Flow identifies the sending flow.
	Flow int
	// Seq is the flow-local sequence number.
	Seq int64
	// Bytes is the packet size on the wire.
	Bytes int
	// SentAt is when the source transmitted the packet.
	SentAt time.Duration
	// Window is the controller's SendTag at transmission time (Verus W_i).
	Window int
}

// Queue is a bottleneck buffer. Enqueue returns false when the packet is
// dropped (tail drop or AQM decision).
type Queue interface {
	Enqueue(p *Packet, now time.Duration) bool
	Dequeue(now time.Duration) *Packet
	// Len returns the number of queued packets.
	Len() int
	// Bytes returns the total queued bytes.
	Bytes() int
}

// DropTail is a FIFO with a byte capacity.
type DropTail struct {
	limit int
	fifo  []*Packet
	bytes int
	// Drops counts enqueue rejections.
	Drops int
}

// NewDropTail returns a FIFO that holds at most limitBytes.
func NewDropTail(limitBytes int) *DropTail {
	if limitBytes <= 0 {
		panic("netsim: DropTail limit must be positive")
	}
	return &DropTail{limit: limitBytes}
}

// Enqueue implements Queue.
func (q *DropTail) Enqueue(p *Packet, _ time.Duration) bool {
	if q.bytes+p.Bytes > q.limit {
		q.Drops++
		return false
	}
	q.fifo = append(q.fifo, p)
	q.bytes += p.Bytes
	return true
}

// Dequeue implements Queue.
func (q *DropTail) Dequeue(_ time.Duration) *Packet {
	if len(q.fifo) == 0 {
		return nil
	}
	p := q.fifo[0]
	q.fifo[0] = nil
	q.fifo = q.fifo[1:]
	q.bytes -= p.Bytes
	return p
}

// Len implements Queue.
func (q *DropTail) Len() int { return len(q.fifo) }

// Bytes implements Queue.
func (q *DropTail) Bytes() int { return q.bytes }

// RED is Random Early Detection queue management (Floyd & Jacobson 1993),
// the discipline the paper's OPNET traffic shaper uses: "a shared queue with
// Random Early Detection (RED) ... minimum queue size 3 MBit, maximum queue
// size 9 MBit, and drop probability 10%."
type RED struct {
	// MinBytes and MaxBytes are the average-queue thresholds.
	MinBytes, MaxBytes int
	// MaxP is the drop probability as the average approaches MaxBytes.
	MaxP float64
	// Wq is the EWMA weight for the average queue estimate.
	Wq float64
	// HardLimitBytes caps the instantaneous queue (tail drop beyond it).
	HardLimitBytes int

	rng    *rand.Rand
	fifo   []*Packet
	bytes  int
	avg    float64
	count  int // packets since last drop, for uniformized drop spacing
	idleAt time.Duration
	idle   bool
	// Drops counts all dropped packets (early + tail).
	Drops int
	// EarlyDrops counts probabilistic RED drops only.
	EarlyDrops int
}

// PaperRED returns a RED queue with the paper's OPNET parameters: 3 Mbit
// min, 9 Mbit max, 10% drop probability. The hard limit is twice the max
// threshold.
func PaperRED(seed int64) *RED {
	return NewRED(3_000_000/8, 9_000_000/8, 0.10, seed)
}

// NewRED returns a RED queue with the given thresholds (bytes) and max drop
// probability. Wq defaults to 0.002 (the classic recommendation); the hard
// limit defaults to 2×maxBytes.
func NewRED(minBytes, maxBytes int, maxP float64, seed int64) *RED {
	if minBytes <= 0 || maxBytes <= minBytes || maxP <= 0 || maxP > 1 {
		panic("netsim: invalid RED parameters")
	}
	return &RED{
		MinBytes:       minBytes,
		MaxBytes:       maxBytes,
		MaxP:           maxP,
		Wq:             0.002,
		HardLimitBytes: 2 * maxBytes,
		rng:            rand.New(rand.NewSource(seed)),
		idle:           true,
	}
}

// Enqueue implements Queue.
func (q *RED) Enqueue(p *Packet, now time.Duration) bool {
	// Update the average queue size. After an idle period the average decays
	// as if small packets had been draining (approximation: decay toward 0
	// with the idle time measured in packet transmission slots). The idle
	// state must persist across *rejected* enqueues — clearing it on a drop
	// would freeze the average near its peak and blackhole the queue until
	// enough doomed arrivals nudge it down.
	if q.idle {
		slots := float64(now-q.idleAt) / float64(time.Millisecond)
		if slots > 0 {
			q.avg *= math.Pow(1-q.Wq, slots)
		}
		q.idleAt = now // decay accounted up to now; stay idle until a packet lands
	}
	q.avg = q.avg + q.Wq*(float64(q.bytes)-q.avg)

	if q.bytes+p.Bytes > q.HardLimitBytes {
		q.Drops++
		q.count = 0
		return false
	}
	switch {
	case q.avg < float64(q.MinBytes):
		q.count = -1
	case q.avg >= float64(q.MaxBytes):
		q.Drops++
		q.EarlyDrops++
		q.count = 0
		return false
	default:
		q.count++
		pb := q.MaxP * (q.avg - float64(q.MinBytes)) / float64(q.MaxBytes-q.MinBytes)
		pa := pb / (1 - float64(q.count)*pb)
		if pa < 0 || pa > 1 {
			pa = 1
		}
		if q.rng.Float64() < pa {
			q.Drops++
			q.EarlyDrops++
			q.count = 0
			return false
		}
	}
	q.fifo = append(q.fifo, p)
	q.bytes += p.Bytes
	q.idle = false
	return true
}

// Dequeue implements Queue.
func (q *RED) Dequeue(now time.Duration) *Packet {
	if len(q.fifo) == 0 {
		return nil
	}
	p := q.fifo[0]
	q.fifo[0] = nil
	q.fifo = q.fifo[1:]
	q.bytes -= p.Bytes
	if len(q.fifo) == 0 {
		q.idle = true
		q.idleAt = now
	}
	return p
}

// Len implements Queue.
func (q *RED) Len() int { return len(q.fifo) }

// Bytes implements Queue.
func (q *RED) Bytes() int { return q.bytes }

// AvgBytes returns RED's smoothed queue-size estimate.
func (q *RED) AvgBytes() float64 { return q.avg }
