package netsim

import (
	"math"
	"math/rand"
	"time"
)

// Packet is the unit of transfer in the simulator. Packets are pooled: sim
// code obtains them from Sim.NewPacket/ClonePacket and returns them with
// Sim.FreePacket when their life ends (see pool.go for the ownership rules).
type Packet struct {
	poolMeta
	// Flow identifies the sending flow.
	Flow int
	// Seq is the flow-local sequence number.
	Seq int64
	// Bytes is the packet size on the wire.
	Bytes int
	// SentAt is when the source transmitted the packet.
	SentAt time.Duration
	// Window is the controller's SendTag at transmission time (Verus W_i).
	Window int
}

// Queue is a bottleneck buffer. Enqueue returns false when the packet is
// dropped (tail drop or AQM decision); the caller keeps ownership of a
// rejected packet (and typically releases it).
type Queue interface {
	Enqueue(p *Packet, now time.Duration) bool
	Dequeue(now time.Duration) *Packet
	// Len returns the number of queued packets.
	Len() int
	// Bytes returns the total queued bytes.
	Bytes() int
}

// pktRing is a FIFO of packets over a power-of-two circular buffer. The old
// `fifo = fifo[1:]` reslicing walked the backing array forward so append had
// to reallocate perpetually even at a constant queue depth; the ring reuses
// its slots, which is what lets a saturated bottleneck run allocation-free.
type pktRing struct {
	buf  []*Packet
	head int
	n    int
}

func (r *pktRing) push(p *Packet) {
	if r.n == len(r.buf) {
		r.grow()
	}
	r.buf[(r.head+r.n)&(len(r.buf)-1)] = p
	r.n++
}

func (r *pktRing) grow() {
	nc := len(r.buf) * 2
	if nc == 0 {
		nc = 16
	}
	nb := make([]*Packet, nc)
	for i := 0; i < r.n; i++ {
		nb[i] = r.buf[(r.head+i)&(len(r.buf)-1)]
	}
	r.buf = nb
	r.head = 0
}

func (r *pktRing) pop() *Packet {
	if r.n == 0 {
		return nil
	}
	p := r.buf[r.head]
	r.buf[r.head] = nil
	r.head = (r.head + 1) & (len(r.buf) - 1)
	r.n--
	return p
}

func (r *pktRing) peek() *Packet {
	if r.n == 0 {
		return nil
	}
	return r.buf[r.head]
}

// DropTail is a FIFO with a byte capacity.
type DropTail struct {
	limit int
	ring  pktRing
	bytes int
	// Drops counts enqueue rejections.
	Drops int
}

// NewDropTail returns a FIFO that holds at most limitBytes.
func NewDropTail(limitBytes int) *DropTail {
	if limitBytes <= 0 {
		panic("netsim: DropTail limit must be positive")
	}
	return &DropTail{limit: limitBytes}
}

// Enqueue implements Queue.
func (q *DropTail) Enqueue(p *Packet, _ time.Duration) bool {
	AssertLive(p, "DropTail.Enqueue")
	if q.bytes+p.Bytes > q.limit {
		q.Drops++
		return false
	}
	q.ring.push(p)
	q.bytes += p.Bytes
	return true
}

// Dequeue implements Queue.
func (q *DropTail) Dequeue(_ time.Duration) *Packet {
	p := q.ring.pop()
	if p == nil {
		return nil
	}
	q.bytes -= p.Bytes
	return p
}

// Peek returns the head-of-line packet without dequeuing it (nil when empty).
func (q *DropTail) Peek() *Packet { return q.ring.peek() }

// Len implements Queue.
func (q *DropTail) Len() int { return q.ring.n }

// Bytes implements Queue.
func (q *DropTail) Bytes() int { return q.bytes }

// RED is Random Early Detection queue management (Floyd & Jacobson 1993),
// the discipline the paper's OPNET traffic shaper uses: "a shared queue with
// Random Early Detection (RED) ... minimum queue size 3 MBit, maximum queue
// size 9 MBit, and drop probability 10%."
type RED struct {
	// MinBytes and MaxBytes are the average-queue thresholds.
	MinBytes, MaxBytes int
	// MaxP is the drop probability as the average approaches MaxBytes.
	MaxP float64
	// Wq is the EWMA weight for the average queue estimate.
	Wq float64
	// HardLimitBytes caps the instantaneous queue (tail drop beyond it).
	HardLimitBytes int

	rng    *rand.Rand
	ring   pktRing
	bytes  int
	avg    float64
	count  int // packets since last drop, for uniformized drop spacing
	idleAt time.Duration
	idle   bool
	// Drops counts all dropped packets (early + tail).
	Drops int
	// EarlyDrops counts probabilistic RED drops only.
	EarlyDrops int
}

// PaperRED returns a RED queue with the paper's OPNET parameters: 3 Mbit
// min, 9 Mbit max, 10% drop probability. The hard limit is twice the max
// threshold.
func PaperRED(seed int64) *RED {
	return NewRED(3_000_000/8, 9_000_000/8, 0.10, seed)
}

// NewRED returns a RED queue with the given thresholds (bytes) and max drop
// probability. Wq defaults to 0.002 (the classic recommendation); the hard
// limit defaults to 2×maxBytes.
func NewRED(minBytes, maxBytes int, maxP float64, seed int64) *RED {
	if minBytes <= 0 || maxBytes <= minBytes || maxP <= 0 || maxP > 1 {
		panic("netsim: invalid RED parameters")
	}
	return &RED{
		MinBytes:       minBytes,
		MaxBytes:       maxBytes,
		MaxP:           maxP,
		Wq:             0.002,
		HardLimitBytes: 2 * maxBytes,
		rng:            rand.New(rand.NewSource(seed)),
		idle:           true,
	}
}

// Enqueue implements Queue.
func (q *RED) Enqueue(p *Packet, now time.Duration) bool {
	AssertLive(p, "RED.Enqueue")
	// Update the average queue size. After an idle period the average decays
	// as if small packets had been draining (approximation: decay toward 0
	// with the idle time measured in packet transmission slots). The idle
	// state must persist across *rejected* enqueues — clearing it on a drop
	// would freeze the average near its peak and blackhole the queue until
	// enough doomed arrivals nudge it down.
	if q.idle {
		slots := float64(now-q.idleAt) / float64(time.Millisecond)
		if slots > 0 {
			q.avg *= math.Pow(1-q.Wq, slots)
		}
		q.idleAt = now // decay accounted up to now; stay idle until a packet lands
	}
	q.avg = q.avg + q.Wq*(float64(q.bytes)-q.avg)

	if q.bytes+p.Bytes > q.HardLimitBytes {
		q.Drops++
		q.count = 0
		return false
	}
	switch {
	case q.avg < float64(q.MinBytes):
		q.count = -1
	case q.avg >= float64(q.MaxBytes):
		q.Drops++
		q.EarlyDrops++
		q.count = 0
		return false
	default:
		q.count++
		pb := q.MaxP * (q.avg - float64(q.MinBytes)) / float64(q.MaxBytes-q.MinBytes)
		pa := pb / (1 - float64(q.count)*pb)
		if pa < 0 || pa > 1 {
			pa = 1
		}
		if q.rng.Float64() < pa {
			q.Drops++
			q.EarlyDrops++
			q.count = 0
			return false
		}
	}
	q.ring.push(p)
	q.bytes += p.Bytes
	q.idle = false
	return true
}

// Dequeue implements Queue.
func (q *RED) Dequeue(now time.Duration) *Packet {
	p := q.ring.pop()
	if p == nil {
		return nil
	}
	q.bytes -= p.Bytes
	if q.ring.n == 0 {
		q.idle = true
		q.idleAt = now
	}
	return p
}

// Peek returns the head-of-line packet without dequeuing it (nil when empty).
func (q *RED) Peek() *Packet { return q.ring.peek() }

// Len implements Queue.
func (q *RED) Len() int { return q.ring.n }

// Bytes implements Queue.
func (q *RED) Bytes() int { return q.bytes }

// AvgBytes returns RED's smoothed queue-size estimate.
func (q *RED) AvgBytes() float64 { return q.avg }
