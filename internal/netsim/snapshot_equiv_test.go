package netsim

import (
	"reflect"
	"testing"
	"time"

	"repro/internal/cc"
	"repro/internal/snap"
)

// Checkpoint equivalence and pool-conservation properties on the dumbbell
// topology (DESIGN.md §15): a restore overlaid on a deterministic rebuild
// must conserve the packet-pool accounting exactly and continue to the same
// final state a never-interrupted run reaches.

// snapWindow is a minimal checkpoint-aware fixed-window controller.
type snapWindow struct {
	w    int
	acks int
}

func (f *snapWindow) Name() string                            { return "snapfixed" }
func (f *snapWindow) OnAck(_ time.Duration, _ cc.AckSample)   { f.acks++ }
func (f *snapWindow) OnLoss(_ time.Duration, _ cc.LossEvent)  {}
func (f *snapWindow) OnTimeout(time.Duration)                 {}
func (f *snapWindow) TickInterval() time.Duration             { return 0 }
func (f *snapWindow) Tick(time.Duration)                      {}
func (f *snapWindow) Allowance(_ time.Duration, inflight int) int {
	return f.w - inflight
}
func (f *snapWindow) SendTag() int                     { return f.w }
func (f *snapWindow) OnSend(time.Duration, int64, int) {}

// Snapshot implements snap.Snapshotter.
func (f *snapWindow) Snapshot(e *snap.Encoder) {
	e.Tag("snapwin")
	e.Int(f.acks)
}

// Restore implements snap.Snapshotter.
func (f *snapWindow) Restore(d *snap.Decoder) {
	d.Expect("snapwin")
	f.acks = d.Int()
}

// buildSnapDumbbell is the deterministic topology both sides of a
// checkpoint run: every flow stops, so a long-enough run reaches pool
// quiescence, and the queue is small enough to force tail drops (the
// free-on-drop pool path).
func buildSnapDumbbell() *Dumbbell {
	sim := NewSim()
	return NewDumbbell(sim, func(dst Receiver) Link {
		return NewFixedLink(sim, NewDropTail(8_000), 6, 5*time.Millisecond, dst, 1)
	}, 1000, []FlowSpec{
		{Ctrl: &snapWindow{w: 6}, AckDelay: 5 * time.Millisecond, Stop: 1200 * time.Millisecond},
		{Ctrl: &snapWindow{w: 3}, AckDelay: 7 * time.Millisecond, Start: 200 * time.Millisecond, Stop: 900 * time.Millisecond},
		{CBRMbps: 1.5, OnFor: 300 * time.Millisecond, OffFor: 200 * time.Millisecond, Stop: time.Second},
	})
}

// TestPoolSnapshotConservationAcrossRestore is the satellite pool property:
// PoolStats (Allocated/Gets/Frees, hence Live) survive snapshot→restore
// exactly, and a restored run reaches Live()==0 at quiescence just as the
// uninterrupted run does, with byte-identical flow metrics. Under
// -tags pooldebug the restored packets are rematerialized live, so every
// AssertLive checkpoint and double-free poison stays armed.
func TestPoolSnapshotConservationAcrossRestore(t *testing.T) {
	const barrier = 700 * time.Millisecond
	const horizon = 3 * time.Second

	ref := buildSnapDumbbell()
	ref.Run(barrier)
	before := ref.Sim.PoolStats()
	if before.Live() == 0 {
		t.Fatal("barrier reached with no live packets; the conservation property would be vacuous")
	}
	e := snap.NewEncoder()
	ref.Snapshot(e)
	if err := e.Err(); err != nil {
		t.Fatal(err)
	}
	blob, err := e.Encode(snap.Version)
	if err != nil {
		t.Fatal(err)
	}

	dec, err := snap.Decode(blob, snap.Version)
	if err != nil {
		t.Fatal(err)
	}
	res := buildSnapDumbbell()
	res.Restore(dec)
	if err := dec.Err(); err != nil {
		t.Fatal(err)
	}
	if err := dec.Done(); err != nil {
		t.Fatal(err)
	}
	if after := res.Sim.PoolStats(); after != before {
		t.Fatalf("pool stats not conserved through restore: %+v -> %+v", before, after)
	}

	ref.Run(horizon)
	res.Run(horizon)
	if got, want := res.Sim.PoolStats(), ref.Sim.PoolStats(); got != want {
		t.Fatalf("post-restore pool stats diverge: restored %+v, straight %+v", got, want)
	}
	if live := res.Sim.PoolStats().Live(); live != 0 {
		t.Fatalf("post-restore quiescence leaves %d live packets", live)
	}
	if !reflect.DeepEqual(res.Metrics, ref.Metrics) {
		t.Fatalf("post-restore flow metrics diverge:\nrestored %+v\nstraight %+v", res.Metrics, ref.Metrics)
	}
	if res.Sim.Pending() != ref.Sim.Pending() || res.Sim.Now() != ref.Sim.Now() {
		t.Fatalf("post-restore sim state diverges: pending %d/%d, now %v/%v",
			res.Sim.Pending(), ref.Sim.Pending(), res.Sim.Now(), ref.Sim.Now())
	}
}

// TestSnapshotRejectsUntrackedEvents pins the all-or-nothing contract: a
// pending callback scheduled outside the registry (plain Schedule) must fail
// the whole snapshot with a named error, never be silently dropped.
func TestSnapshotRejectsUntrackedEvents(t *testing.T) {
	d := buildSnapDumbbell()
	d.Sim.Schedule(2*time.Second, func() {})
	d.Run(100 * time.Millisecond)
	e := snap.NewEncoder()
	d.Snapshot(e)
	if e.Err() == nil {
		t.Fatal("snapshot of an untagged pending callback succeeded; checkpoints must capture everything or nothing")
	}
}
