package netsim

import (
	"math"
	"testing"
	"time"

	"repro/internal/cc"
)

// fixedWindow is a minimal window-based controller for exercising the host
// machinery.
type fixedWindow struct {
	w        int
	acks     int
	losses   []cc.LossEvent
	timeouts int
	lastRTT  time.Duration
	tick     time.Duration
	ticks    int
}

func (f *fixedWindow) Name() string { return "fixed" }
func (f *fixedWindow) OnAck(_ time.Duration, a cc.AckSample) {
	f.acks++
	f.lastRTT = a.RTT
}
func (f *fixedWindow) OnLoss(_ time.Duration, l cc.LossEvent) { f.losses = append(f.losses, l) }
func (f *fixedWindow) OnTimeout(time.Duration)                { f.timeouts++ }
func (f *fixedWindow) TickInterval() time.Duration            { return f.tick }
func (f *fixedWindow) Tick(time.Duration)                     { f.ticks++ }
func (f *fixedWindow) Allowance(_ time.Duration, inflight int) int {
	return f.w - inflight
}
func (f *fixedWindow) SendTag() int                     { return f.w }
func (f *fixedWindow) OnSend(time.Duration, int64, int) {}

func newTestDumbbell(ctrl cc.Controller, rateMbps float64, queueBytes int) *Dumbbell {
	sim := NewSim()
	return NewDumbbell(sim, func(dst Receiver) Link {
		return NewFixedLink(sim, NewDropTail(queueBytes), rateMbps, 5*time.Millisecond, dst, 1)
	}, 1000, []FlowSpec{{Ctrl: ctrl, AckDelay: 5 * time.Millisecond}})
}

func TestSourceRespectsWindow(t *testing.T) {
	ctrl := &fixedWindow{w: 4}
	d := newTestDumbbell(ctrl, 8, 1_000_000)
	d.Run(5 * time.Second)
	m := d.Metrics[0]
	if m.Sent == 0 || m.Received == 0 {
		t.Fatal("no traffic")
	}
	// Window 4, RTT ≈ 10 ms + queueing: throughput is window-limited well
	// below the 8 Mbps link: 4 pkts of 1000 B per ~11 ms ≈ 2.9 Mbps.
	got := m.MeanMbps(5 * time.Second)
	if got > 4 || got < 1 {
		t.Fatalf("window-limited throughput = %v Mbps, want ~3", got)
	}
	if ctrl.acks == 0 {
		t.Fatal("controller saw no acks")
	}
	if ctrl.lastRTT < 10*time.Millisecond {
		t.Fatalf("RTT %v below base RTT", ctrl.lastRTT)
	}
}

func TestSourceMeasuresQueueingDelay(t *testing.T) {
	// A big window on a slow link builds a standing queue; one-way delay
	// must reflect it.
	ctrl := &fixedWindow{w: 100}
	d := newTestDumbbell(ctrl, 1, 1_000_000)
	d.Run(10 * time.Second)
	m := d.Metrics[0]
	// 100 packets × 8000 bits at 1 Mbps = 800 ms of queue.
	if m.Delay.Mean() < 0.2 {
		t.Fatalf("mean one-way delay %v s; standing queue not visible", m.Delay.Mean())
	}
}

func TestSourceDetectsLossViaDupAcks(t *testing.T) {
	ctrl := &fixedWindow{w: 16}
	sim := NewSim()
	var link *FixedLink
	d := NewDumbbell(sim, func(dst Receiver) Link {
		link = NewFixedLink(sim, NewDropTail(1_000_000), 10, 2*time.Millisecond, dst, 7)
		return link
	}, 1000, []FlowSpec{{Ctrl: ctrl, AckDelay: 2 * time.Millisecond}})
	sim.Schedule(time.Second, func() { link.SetLossProb(0.05) })
	d.Run(10 * time.Second)
	if len(ctrl.losses) == 0 {
		t.Fatal("no losses detected despite 5% drop rate")
	}
	for _, l := range ctrl.losses {
		if l.SentWindow != 16 {
			t.Fatalf("loss event window tag = %d, want 16", l.SentWindow)
		}
	}
	if d.Metrics[0].LossDetected != int64(len(ctrl.losses)) {
		t.Fatal("metrics and controller disagree on loss count")
	}
}

func TestSourceRTOOnBlackout(t *testing.T) {
	ctrl := &fixedWindow{w: 8}
	sim := NewSim()
	var link *FixedLink
	d := NewDumbbell(sim, func(dst Receiver) Link {
		link = NewFixedLink(sim, NewDropTail(1_000_000), 10, 2*time.Millisecond, dst, 7)
		return link
	}, 1000, []FlowSpec{{Ctrl: ctrl, AckDelay: 2 * time.Millisecond}})
	// Total blackout after 1 s.
	sim.Schedule(time.Second, func() { link.SetLossProb(1.0) })
	d.Run(4 * time.Second)
	if ctrl.timeouts == 0 {
		t.Fatal("no RTO during blackout")
	}
	if d.Metrics[0].Timeouts == 0 {
		t.Fatal("metrics missed the timeout")
	}
}

func TestSourceTicksController(t *testing.T) {
	ctrl := &fixedWindow{w: 2, tick: 5 * time.Millisecond}
	d := newTestDumbbell(ctrl, 8, 1_000_000)
	d.Run(time.Second)
	// ~200 ticks in 1 s.
	if ctrl.ticks < 150 || ctrl.ticks > 210 {
		t.Fatalf("ticks = %d, want ~200", ctrl.ticks)
	}
}

func TestSourceStartStop(t *testing.T) {
	ctrl := &fixedWindow{w: 4}
	sim := NewSim()
	d := NewDumbbell(sim, func(dst Receiver) Link {
		return NewFixedLink(sim, NewDropTail(1_000_000), 8, time.Millisecond, dst, 1)
	}, 1000, []FlowSpec{{
		Ctrl: ctrl, AckDelay: time.Millisecond,
		Start: time.Second, Stop: 2 * time.Second,
	}})
	d.Run(3 * time.Second)
	m := d.Metrics[0]
	if m.Sent == 0 {
		t.Fatal("flow never started")
	}
	mbps := m.Throughput.Mbps()
	if len(mbps) == 0 || mbps[0] != 0 {
		t.Fatalf("traffic before start: %v", mbps)
	}
	// Nothing delivered after stop (+1 window slack).
	if m.Throughput.NumWindows() > 3 {
		t.Fatalf("traffic long after stop: %d windows", m.Throughput.NumWindows())
	}
}

func TestCBRRate(t *testing.T) {
	sim := NewSim()
	d := NewDumbbell(sim, func(dst Receiver) Link {
		return NewFixedLink(sim, NewDropTail(10_000_000), 100, time.Millisecond, dst, 1)
	}, 1250, []FlowSpec{{CBRMbps: 10}})
	d.Run(10 * time.Second)
	got := d.Metrics[0].MeanMbps(10 * time.Second)
	if math.Abs(got-10) > 0.5 {
		t.Fatalf("CBR delivered %v Mbps, want 10", got)
	}
}

func TestCBROnOff(t *testing.T) {
	sim := NewSim()
	d := NewDumbbell(sim, func(dst Receiver) Link {
		return NewFixedLink(sim, NewDropTail(10_000_000), 100, time.Millisecond, dst, 1)
	}, 1250, []FlowSpec{{
		CBRMbps: 10,
		OnFor:   time.Second, OffFor: time.Second,
	}})
	d.Run(4 * time.Second)
	mbps := d.Metrics[0].Throughput.Mbps()
	if len(mbps) < 4 {
		t.Fatalf("windows = %d", len(mbps))
	}
	if mbps[0] < 8 || mbps[2] < 8 {
		t.Fatalf("ON windows too slow: %v", mbps)
	}
	if mbps[1] > 1 || mbps[3] > 1 {
		t.Fatalf("OFF windows not silent: %v", mbps)
	}
}

func TestCBRValidation(t *testing.T) {
	sim := NewSim()
	link := NewFixedLink(sim, NewDropTail(1000), 1, 0, ReceiverFunc(func(*Packet) {}), 1)
	for _, f := range []func(){
		func() { NewCBR(sim, 0, link, 1000, 0, 0, 0, 0, 0) },
		func() { NewCBR(sim, 0, link, 0, 1, 0, 0, 0, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid CBR accepted")
				}
			}()
			f()
		}()
	}
}

func TestDispatcherRouting(t *testing.T) {
	d := NewDispatcher()
	var got []int
	d.Register(1, ReceiverFunc(func(p *Packet) { got = append(got, 1) }))
	d.Register(2, ReceiverFunc(func(p *Packet) { got = append(got, 2) }))
	d.Receive(pkt(2, 0, 100))
	d.Receive(pkt(1, 0, 100))
	d.Receive(pkt(99, 0, 100)) // unknown: dropped silently
	if len(got) != 2 || got[0] != 2 || got[1] != 1 {
		t.Fatalf("routing = %v", got)
	}
}

func TestDumbbellSharedBottleneckFairness(t *testing.T) {
	// Two identical fixed-window flows share a link: long-run throughputs
	// should be close.
	sim := NewSim()
	specs := []FlowSpec{
		{Ctrl: &fixedWindow{w: 10}, AckDelay: 2 * time.Millisecond},
		{Ctrl: &fixedWindow{w: 10}, AckDelay: 2 * time.Millisecond},
	}
	d := NewDumbbell(sim, func(dst Receiver) Link {
		return NewFixedLink(sim, NewDropTail(50_000), 5, 2*time.Millisecond, dst, 1)
	}, 1000, specs)
	d.Run(20 * time.Second)
	a := d.Metrics[0].MeanMbps(20 * time.Second)
	b := d.Metrics[1].MeanMbps(20 * time.Second)
	if a == 0 || b == 0 {
		t.Fatal("a flow starved completely")
	}
	ratio := a / b
	if ratio < 0.7 || ratio > 1.4 {
		t.Fatalf("unfair split: %v vs %v Mbps", a, b)
	}
}
