package netsim

import (
	"strconv"
	"time"

	"repro/internal/obs"
	"repro/internal/stats"
)

// linkObs is a link's observability attachment: trace events for the packet
// life cycle (enqueue, drop, deliver) plus aggregate counters and a sojourn
// histogram in the metrics registry. A nil *linkObs is the disabled state.
// Call sites guard with `l.obs != nil` so the disabled per-packet path is a
// single predictable branch — the methods are too large to inline, and their
// arguments (Queue.Len/Bytes interface calls) must not be evaluated when no
// observer is attached. The nil checks inside each method are a safety net,
// not the fast path.
type linkObs struct {
	o         *obs.Observer
	run       int64
	enqueued  *obs.Counter
	dropped   *obs.Counter
	delivered *obs.Counter
	sojourn   *obs.Histogram
}

// newLinkObs resolves the link metric instruments, labeled by run so
// parallel trials sharing one observer stay distinct. Returns nil for a nil
// observer.
func newLinkObs(o *obs.Observer, run int64) *linkObs {
	if o == nil {
		return nil
	}
	label := func(name string) string {
		return obs.Labeled(name, "run", strconv.FormatInt(run, 10))
	}
	return &linkObs{
		o:         o,
		run:       run,
		enqueued:  o.Counter(label("netsim_enqueued_total")),
		dropped:   o.Counter(label("netsim_dropped_total")),
		delivered: o.Counter(label("netsim_delivered_total")),
		sojourn:   o.Histogram(label("netsim_sojourn_seconds"), obs.DelayBuckets),
	}
}

func (lo *linkObs) onEnqueue(now time.Duration, p *Packet, qlen, qbytes int) {
	if lo == nil {
		return
	}
	lo.enqueued.Inc()
	lo.o.Emit(obs.Event{At: now, Kind: obs.KindNetEnqueue, Flow: int32(p.Flow), Run: lo.run,
		V0: float64(p.Bytes), V1: float64(qlen), V2: float64(qbytes)})
}

func (lo *linkObs) onDrop(now time.Duration, p *Packet, cause string) {
	if lo == nil {
		return
	}
	lo.dropped.Inc()
	lo.o.Emit(obs.Event{At: now, Kind: obs.KindNetDrop, Flow: int32(p.Flow), Run: lo.run,
		Str: cause, V0: float64(p.Bytes)})
}

func (lo *linkObs) onDeliver(now time.Duration, p *Packet) {
	if lo == nil {
		return
	}
	lo.delivered.Inc()
	soj := (now - p.SentAt).Seconds()
	lo.sojourn.Observe(soj)
	lo.o.Emit(obs.Event{At: now, Kind: obs.KindNetDeliver, Flow: int32(p.Flow), Run: lo.run,
		V0: float64(p.Bytes), V1: soj})
}

// sinkObs is a flow sink's observability attachment: one net.attrib event
// per delivery carrying the packet's full delay decomposition, plus a
// per-component delay histogram family in the metrics registry. A nil
// *sinkObs is the disabled state, guarded at the call site like linkObs.
type sinkObs struct {
	o    *obs.Observer
	run  int64
	hist [stats.NumDelayComps]*obs.Histogram
}

// newSinkObs resolves the attribution instruments, labeled by run and
// component. Returns nil for a nil observer.
func newSinkObs(o *obs.Observer, run int64) *sinkObs {
	if o == nil {
		return nil
	}
	so := &sinkObs{o: o, run: run}
	runLabel := strconv.FormatInt(run, 10)
	for c := 0; c < stats.NumDelayComps; c++ {
		name := obs.Labeled("netsim_attrib_seconds", "comp", stats.DelayComp(c).String(), "run", runLabel)
		so.hist[c] = o.Histogram(name, obs.DelayBuckets)
	}
	return so
}

// onAttrib records one delivery's decomposition: the event's V0..V4 are the
// component durations in seconds (queue, ser, prop, fault, detour) and V5
// the measured one-way delay.
func (so *sinkObs) onAttrib(now time.Duration, p *Packet, comps [stats.NumDelayComps]time.Duration, oneWay time.Duration) {
	if so == nil {
		return
	}
	for c := 0; c < stats.NumDelayComps; c++ {
		so.hist[c].Observe(comps[c].Seconds())
	}
	so.o.Emit(obs.Event{At: now, Kind: obs.KindNetAttrib, Flow: int32(p.Flow), Run: so.run,
		V0: comps[stats.DelayQueue].Seconds(),
		V1: comps[stats.DelaySerialize].Seconds(),
		V2: comps[stats.DelayPropagate].Seconds(),
		V3: comps[stats.DelayFaultHold].Seconds(),
		V4: comps[stats.DelayDetour].Seconds(),
		V5: oneWay.Seconds(),
	})
}
