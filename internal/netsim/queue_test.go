package netsim

import (
	"testing"
	"time"
)

func pkt(flow int, seq int64, bytes int) *Packet {
	return &Packet{Flow: flow, Seq: seq, Bytes: bytes}
}

func TestDropTailFIFO(t *testing.T) {
	q := NewDropTail(10_000)
	for i := int64(0); i < 5; i++ {
		if !q.Enqueue(pkt(0, i, 1000), 0) {
			t.Fatalf("enqueue %d rejected", i)
		}
	}
	if q.Len() != 5 || q.Bytes() != 5000 {
		t.Fatalf("len=%d bytes=%d", q.Len(), q.Bytes())
	}
	for i := int64(0); i < 5; i++ {
		p := q.Dequeue(0)
		if p == nil || p.Seq != i {
			t.Fatalf("dequeue %d: got %+v", i, p)
		}
	}
	if q.Dequeue(0) != nil {
		t.Fatal("empty dequeue should be nil")
	}
}

func TestDropTailLimit(t *testing.T) {
	q := NewDropTail(2500)
	if !q.Enqueue(pkt(0, 0, 1000), 0) || !q.Enqueue(pkt(0, 1, 1000), 0) {
		t.Fatal("packets within limit rejected")
	}
	if q.Enqueue(pkt(0, 2, 1000), 0) {
		t.Fatal("over-limit packet accepted")
	}
	if q.Drops != 1 {
		t.Fatalf("Drops = %d, want 1", q.Drops)
	}
	q.Dequeue(0)
	if !q.Enqueue(pkt(0, 3, 1000), 0) {
		t.Fatal("space freed but enqueue rejected")
	}
}

func TestDropTailInvalidLimit(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero limit should panic")
		}
	}()
	NewDropTail(0)
}

func TestREDBelowMinNeverDrops(t *testing.T) {
	q := NewRED(10_000, 30_000, 0.1, 1)
	for i := int64(0); i < 5; i++ {
		if !q.Enqueue(pkt(0, i, 1000), time.Duration(i)*time.Millisecond) {
			t.Fatalf("drop below min threshold at %d", i)
		}
	}
	if q.Drops != 0 {
		t.Fatalf("Drops = %d below min threshold", q.Drops)
	}
}

func TestREDHardLimit(t *testing.T) {
	q := NewRED(1000, 2000, 0.1, 1)
	// Hard limit = 4000 bytes.
	accepted := 0
	for i := int64(0); i < 10; i++ {
		if q.Enqueue(pkt(0, i, 1000), 0) {
			accepted++
		}
	}
	if q.Bytes() > q.HardLimitBytes {
		t.Fatalf("queue %d exceeds hard limit %d", q.Bytes(), q.HardLimitBytes)
	}
	if accepted > 4 {
		t.Fatalf("accepted %d packets past the hard limit", accepted)
	}
}

func TestREDEarlyDropsUnderSustainedLoad(t *testing.T) {
	q := NewRED(5_000, 15_000, 0.5, 42)
	// Hold the instantaneous queue around 12 KB so the average climbs
	// between min and max; early drops must appear.
	now := time.Duration(0)
	for i := int64(0); i < 5000; i++ {
		now += 100 * time.Microsecond
		q.Enqueue(pkt(0, i, 1000), now)
		if q.Bytes() > 12_000 {
			q.Dequeue(now)
			q.Dequeue(now)
		}
	}
	if q.EarlyDrops == 0 {
		t.Fatal("no early drops despite average above min threshold")
	}
}

func TestREDAverageDecaysWhenIdle(t *testing.T) {
	q := NewRED(5_000, 15_000, 0.1, 7)
	now := time.Duration(0)
	for i := int64(0); i < 2000; i++ {
		now += 50 * time.Microsecond
		q.Enqueue(pkt(0, i, 1000), now)
		if q.Bytes() > 10_000 {
			q.Dequeue(now)
		}
	}
	// Drain fully, then come back much later: the average must have decayed.
	for q.Dequeue(now) != nil {
	}
	before := q.AvgBytes()
	now += 10 * time.Second
	q.Enqueue(pkt(0, 9999, 1000), now)
	if q.AvgBytes() >= before {
		t.Fatalf("average did not decay across idle: %v -> %v", before, q.AvgBytes())
	}
}

func TestREDPaperParameters(t *testing.T) {
	q := PaperRED(1)
	if q.MinBytes != 375_000 || q.MaxBytes != 1_125_000 {
		t.Fatalf("paper thresholds wrong: min=%d max=%d", q.MinBytes, q.MaxBytes)
	}
	if q.MaxP != 0.10 {
		t.Fatalf("paper maxP = %v", q.MaxP)
	}
}

func TestREDInvalidParams(t *testing.T) {
	cases := []struct {
		min, max int
		p        float64
	}{
		{0, 100, 0.1}, {100, 100, 0.1}, {100, 200, 0}, {100, 200, 1.5},
	}
	for _, c := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewRED(%d,%d,%v) accepted", c.min, c.max, c.p)
				}
			}()
			NewRED(c.min, c.max, c.p, 1)
		}()
	}
}

func TestREDFIFOOrder(t *testing.T) {
	q := NewRED(100_000, 200_000, 0.1, 1)
	for i := int64(0); i < 10; i++ {
		q.Enqueue(pkt(0, i, 100), 0)
	}
	for i := int64(0); i < 10; i++ {
		p := q.Dequeue(0)
		if p == nil || p.Seq != i {
			t.Fatalf("RED not FIFO at %d", i)
		}
	}
}
