package netsim

import (
	"fmt"
	"strconv"
	"sync"
	"time"

	"repro/internal/obs"
)

// Mesh partitions a simulation into per-cell event heaps with deterministic
// conservative synchronization, the substrate for multi-cell "metro"
// topologies (DESIGN.md §12). Each cell is an ordinary *Sim — links, queues,
// and flows are built against it exactly as against a standalone simulator —
// and cross-cell interactions travel over lookahead channels: Send schedules
// a callback in another cell's timeline at least `lookahead` in the future.
//
// Two executors run the same mesh:
//
//   - RunSingle is the reference single-heap executor: one merged event
//     order over every cell, popped strictly by (time, order key).
//   - RunSharded is the conservative parallel executor: cells are grouped
//     into shards, each shard executes lookahead-wide windows on its own
//     goroutine, and cross-cell messages are exchanged at window barriers.
//     An idle shard still advances its clock to each window edge — the
//     null-message advance — so no shard ever stalls more than one
//     lookahead behind its peers.
//
// The two are byte-identical, for any shard count, because of two
// structural properties. First, every event's order key — (cell id,
// cell-local insertion counter) packed by orderKey — is claimed at creation
// time by the cell that creates it and travels with the event, so heap
// order never depends on when a message is physically delivered. Second,
// cross-cell delays are at least the lookahead, so two events in different
// cells closer together than one window can never interact; any execution
// interleaving between cells inside a window observes the same state.
// Within one cell, events execute in identical (time, key) order under both
// executors, by induction over windows.
type Mesh struct {
	cells     []*Sim
	lookahead time.Duration
	clock     time.Duration

	// buffering is true while RunSharded windows execute: Send then appends
	// to the source cell's outbox (owned by the executing shard goroutine)
	// instead of pushing into the destination heap, and the coordinator
	// drains outboxes at barriers. It is written only by the coordinating
	// goroutine before workers start and after they join.
	buffering bool

	windows        uint64 // completed sharded windows (barrier count)
	crossDelivered uint64 // cross-cell messages delivered into a heap

	// windowHook, when non-nil, runs on the coordinating goroutine after
	// each sharded window's barrier with that window's horizon — the
	// liveness probe the watchdog tests use.
	windowHook func(horizon time.Duration)

	obs *meshObs
}

// NewMesh returns a mesh of n cells synchronized at the given lookahead —
// the minimum cross-cell propagation delay. A non-positive lookahead is
// rejected at construction: a zero-delay cross-cell link would make
// conservative synchronization impossible (no window in which cells are
// independent), so it is a topology error, not a runtime condition.
func NewMesh(n int, lookahead time.Duration) *Mesh {
	if n <= 0 {
		panic("netsim: mesh needs at least one cell")
	}
	if lookahead <= 0 {
		panic("netsim: mesh lookahead must be positive — zero-delay cross-cell links cannot be conservatively synchronized")
	}
	m := &Mesh{cells: make([]*Sim, n), lookahead: lookahead}
	for i := range m.cells {
		m.cells[i] = &Sim{id: uint32(i), mesh: m}
	}
	return m
}

// Cells returns the number of cells.
func (m *Mesh) Cells() int { return len(m.cells) }

// Cell returns cell i's simulator. Entities owned by cell i must be
// constructed against this Sim and touched only from its timeline.
func (m *Mesh) Cell(i int) *Sim { return m.cells[i] }

// Lookahead returns the synchronization horizon.
func (m *Mesh) Lookahead() time.Duration { return m.lookahead }

// Now returns the virtual time the whole mesh has reached.
func (m *Mesh) Now() time.Duration { return m.clock }

// Windows returns how many conservative windows RunSharded has completed.
func (m *Mesh) Windows() uint64 { return m.windows }

// CrossDelivered returns how many cross-cell messages have been delivered
// into a destination heap so far.
func (m *Mesh) CrossDelivered() uint64 { return m.crossDelivered }

// PendingCross returns the number of cross-cell messages sitting in
// lookahead channels (sent but not yet delivered into a destination heap).
// Only meaningful between Run calls.
func (m *Mesh) PendingCross() int {
	n := 0
	for _, c := range m.cells {
		n += len(c.outbox)
	}
	return n
}

// crossMsg is one message in a lookahead channel: a callback — or a packet
// delivery (r/p set, fn nil) — bound for another cell, carrying the arrival
// time and the order key its sending cell claimed for it. The packet variant
// is the cross-shard envelope of the pooled path: no closure is boxed, and
// the packet simply migrates to the destination cell (whose pool it will be
// released into).
type crossMsg struct {
	dst int32
	at  time.Duration
	key uint64
	fn  func()
	r   Receiver
	p   *Packet
}

// Send schedules fn in cell dst's timeline at the sending cell's now+delay.
// It must be called from within cell src's event execution (or during
// setup, before any executor runs). The delay must be at least the mesh
// lookahead; anything shorter would let the message arrive inside the
// window its sender is still executing, which the conservative protocol
// cannot order.
func (m *Mesh) Send(src, dst int, delay time.Duration, fn func()) {
	if delay < m.lookahead {
		panic(fmt.Sprintf("netsim: cross-cell delay %v below mesh lookahead %v", delay, m.lookahead))
	}
	if dst < 0 || dst >= len(m.cells) {
		panic(fmt.Sprintf("netsim: cross-cell send to unknown cell %d (mesh has %d)", dst, len(m.cells)))
	}
	s := m.cells[src]
	at := s.now + delay
	key := s.nextKey()
	if m.buffering {
		s.outbox = append(s.outbox, crossMsg{dst: int32(dst), at: at, key: key, fn: fn})
		return
	}
	m.deliver(crossMsg{dst: int32(dst), at: at, key: key, fn: fn})
}

// SendPacket is Send for a packet delivery: p arrives at Receiver r in cell
// dst's timeline at now+delay, with no closure boxed into the channel. Same
// preconditions as Send; the packet must not be touched by the sending cell
// after the call (ownership migrates with it).
func (m *Mesh) SendPacket(src, dst int, delay time.Duration, r Receiver, p *Packet) {
	if delay < m.lookahead {
		panic(fmt.Sprintf("netsim: cross-cell delay %v below mesh lookahead %v", delay, m.lookahead))
	}
	if dst < 0 || dst >= len(m.cells) {
		panic(fmt.Sprintf("netsim: cross-cell send to unknown cell %d (mesh has %d)", dst, len(m.cells)))
	}
	AssertLive(p, "Mesh.SendPacket")
	s := m.cells[src]
	at := s.now + delay
	key := s.nextKey()
	if m.buffering {
		s.outbox = append(s.outbox, crossMsg{dst: int32(dst), at: at, key: key, r: r, p: p})
		return
	}
	m.deliver(crossMsg{dst: int32(dst), at: at, key: key, r: r, p: p})
}

// deliver pushes one channel message into its destination heap.
func (m *Mesh) deliver(msg crossMsg) {
	if msg.r != nil {
		m.cells[msg.dst].pushKeyedPacket(msg.at, msg.key, msg.r, msg.p)
	} else {
		m.cells[msg.dst].pushKeyed(msg.at, msg.key, msg.fn)
	}
	m.crossDelivered++
}

// drain moves every buffered channel message into its destination heap, in
// cell-id order. Because order keys were claimed at send time, drain order
// cannot influence event order; the fixed iteration keeps the merge
// deterministic anyway (and keeps allocation behavior reproducible).
func (m *Mesh) drain() {
	for _, c := range m.cells {
		for i := range c.outbox {
			m.deliver(c.outbox[i])
			c.outbox[i] = crossMsg{} // release the closure
		}
		c.outbox = c.outbox[:0]
	}
	if m.obs != nil {
		m.obs.sync(m)
	}
}

// RunSingle advances the mesh to `until` on the reference single-heap
// executor: every cell's pending events merged into one global order by
// (time, order key) and executed on the calling goroutine. It exists as the
// executable specification the sharded executor is tested against — and as
// the debug path when a sharded run needs to be bisected.
func (m *Mesh) RunSingle(until time.Duration) {
	m.drain()
	for {
		best := -1
		var bestAt time.Duration
		var bestKey uint64
		for i, c := range m.cells {
			if !c.headBefore(until, true) {
				continue
			}
			at, key := c.headKey()
			if best < 0 || at < bestAt || (at == bestAt && key < bestKey) {
				best, bestAt, bestKey = i, at, key
			}
		}
		if best < 0 {
			break
		}
		m.cells[best].step()
	}
	for _, c := range m.cells {
		if until > c.now {
			c.now = until
		}
	}
	if until > m.clock {
		m.clock = until
	}
	if m.obs != nil {
		m.obs.sync(m)
	}
}

// RunSharded advances the mesh to `until` on the conservative executor with
// the given shard count. Cells are assigned round-robin (cell i → shard
// i%shards); each shard runs on its own goroutine. Execution proceeds in
// lookahead-wide windows on a grid anchored at zero: within a window every
// shard executes its cells' events strictly before the horizon, buffering
// cross-cell sends; at the barrier the coordinator drains every channel in
// cell-id order and all clocks advance to the horizon (the null-message
// advance for idle shards). Events exactly at `until` run in a final
// inclusive pass, mirroring Sim.Run's at<=until semantics.
//
// Output is byte-identical to RunSingle for every shard count; see the type
// comment for why.
func (m *Mesh) RunSharded(until time.Duration, shards int) {
	if shards <= 0 {
		panic("netsim: shard count must be positive")
	}
	if shards > len(m.cells) {
		shards = len(m.cells)
	}
	m.drain()
	groups := make([][]*Sim, shards)
	for i, c := range m.cells {
		groups[i%shards] = append(groups[i%shards], c)
	}

	// Workers live for the whole call: one channel round-trip per shard per
	// window instead of a goroutine spawn. Within a window the cells of a
	// shard cannot interact (every cross-cell delay spans at least one
	// window), so each cell runs to the horizon independently.
	type winCmd struct {
		horizon   time.Duration
		inclusive bool
	}
	runGroup := func(g []*Sim, c winCmd) {
		for _, cell := range g {
			cell.runWindow(c.horizon, c.inclusive)
		}
	}
	var starts []chan winCmd
	var done chan struct{}
	var wg sync.WaitGroup
	if shards > 1 {
		starts = make([]chan winCmd, shards)
		done = make(chan struct{}, shards)
		for w := range groups {
			starts[w] = make(chan winCmd, 1)
			wg.Add(1)
			go func(g []*Sim, in chan winCmd) {
				defer wg.Done()
				for c := range in {
					runGroup(g, c)
					done <- struct{}{}
				}
			}(groups[w], starts[w])
		}
	}
	m.buffering = true
	window := func(horizon time.Duration, inclusive bool) {
		if shards == 1 {
			runGroup(groups[0], winCmd{horizon, inclusive})
		} else {
			for _, ch := range starts {
				ch <- winCmd{horizon, inclusive}
			}
			for range groups {
				<-done
			}
		}
		m.drain()
		m.windows++
		if m.windowHook != nil {
			m.windowHook(horizon)
		}
	}
	for m.clock < until {
		// Next grid boundary strictly past the clock, clamped to `until`.
		h := m.clock - m.clock%m.lookahead + m.lookahead
		if h > until {
			h = until
		}
		window(h, false)
		m.clock = h
	}
	// Events exactly at `until`: any message they send arrives strictly
	// after `until`, so this pass needs no further barrier.
	window(until, true)
	m.buffering = false
	if shards > 1 {
		for _, ch := range starts {
			close(ch)
		}
		wg.Wait()
	}
}

// Instrument attaches passive observability: counters for delivered
// cross-cell messages and completed windows, plus a gauge of messages
// currently in lookahead channels. All instruments are updated by the
// coordinating goroutine only, at barriers — never from shard workers.
func (m *Mesh) Instrument(o *obs.Observer, run int64) {
	if o == nil {
		m.obs = nil
		return
	}
	label := func(name string) string {
		return obs.Labeled(name, "run", strconv.FormatInt(run, 10))
	}
	m.obs = &meshObs{
		cross:   o.Counter(label("netsim_mesh_cross_total")),
		windows: o.Counter(label("netsim_mesh_windows_total")),
		pending: o.Gauge(label("netsim_mesh_cross_pending")),
	}
}

// meshObs holds the mesh's resolved metric instruments.
type meshObs struct {
	cross   *obs.Counter
	windows *obs.Counter
	pending *obs.Gauge

	lastCross   uint64
	lastWindows uint64
}

// sync folds the mesh's monotone totals into the registry instruments.
func (mo *meshObs) sync(m *Mesh) {
	mo.cross.Add(int64(m.crossDelivered - mo.lastCross))
	mo.lastCross = m.crossDelivered
	mo.windows.Add(int64(m.windows - mo.lastWindows))
	mo.lastWindows = m.windows
	mo.pending.Set(float64(m.PendingCross()))
}

// CellID returns this simulator's cell index within its mesh (0 when
// standalone).
func (s *Sim) CellID() int { return int(s.id) }

// Mesh returns the mesh this simulator belongs to, or nil when standalone.
func (s *Sim) Mesh() *Mesh { return s.mesh }
