package netsim

import (
	"fmt"
	"time"

	"repro/internal/cc"
	"repro/internal/obs"
	"repro/internal/snap"
	"repro/internal/stats"
)

// FlowMetrics aggregates what the paper reports per flow: delivered
// throughput (1-second windows, the Table 1 fairness granularity),
// per-packet one-way delay, and packet accounting.
type FlowMetrics struct {
	Flow int
	// Throughput is delivered bytes in 1 s windows at the sink.
	Throughput *stats.ThroughputSeries
	// Delay summarizes per-packet one-way delay in seconds (send to sink
	// arrival, including queueing).
	Delay *stats.Summary
	// DelayOverTime is the mean one-way delay per 1 s window.
	DelayOverTime *stats.WindowedMean
	// Sent, Received, LossDetected, Timeouts count packets and events.
	Sent, Received, LossDetected, Timeouts int64
	// AttribNs[c] is the delivered packets' summed delay attributable to
	// component c, in nanoseconds — the compact per-flow rollup (full
	// histograms live in per-cell stats.Attribution aggregates, because a
	// histogram per flow at 100k-flow metro scale would cost tens of MB).
	// Integer accumulation keeps the totals executor-independent.
	AttribNs [stats.NumDelayComps]int64
}

// NewFlowMetrics returns zeroed metrics for a flow.
func NewFlowMetrics(flow int) *FlowMetrics {
	return &FlowMetrics{
		Flow:       flow,
		Throughput: stats.NewThroughputSeries(time.Second),
		// A modest capacity hint: at 100k-flow metro scale each flow sees few
		// packets, and Summary grows on demand anyway — a large hint here
		// multiplies into hundreds of MB of idle preallocation.
		Delay:         stats.NewSummary(64),
		DelayOverTime: stats.NewWindowedMean(time.Second),
	}
}

// MeanMbps returns the flow's average delivered rate over the given horizon.
// Using the horizon rather than the spanned windows avoids over-crediting
// flows that stopped early.
func (m *FlowMetrics) MeanMbps(horizon time.Duration) float64 {
	if horizon <= 0 {
		return 0
	}
	return float64(m.Throughput.TotalBytes()) * 8 / horizon.Seconds() / 1e6
}

// Sink terminates a flow: it records delivery metrics and schedules the
// acknowledgement's arrival back at the source after the reverse-path delay.
type Sink struct {
	sim      *Sim
	metrics  *FlowMetrics
	ackDelay time.Duration
	src      *Source
	// attrib, when non-nil, receives each delivered packet's delay
	// decomposition (the metro harness shares one per home cell).
	attrib *stats.Attribution
	// obs, when non-nil, emits per-delivery attribution events and
	// histograms; nil is the disabled fast path.
	obs *sinkObs
}

// Receive implements Receiver.
func (k *Sink) Receive(p *Packet) {
	AssertLive(p, "Sink.Receive")
	now := k.sim.Now()
	oneWay := now - p.SentAt
	// Close the packet's final attribution interval; the component sum now
	// telescopes exactly to oneWay (integer nanoseconds).
	p.CloseDelay(now)
	k.metrics.Received++
	k.metrics.Throughput.Add(now, p.Bytes)
	k.metrics.Delay.Add(oneWay.Seconds())
	k.metrics.DelayOverTime.Add(now, oneWay.Seconds())
	comps := p.DelayComps()
	for c := 0; c < stats.NumDelayComps; c++ {
		k.metrics.AttribNs[c] += int64(comps[c])
	}
	if k.attrib != nil {
		k.attrib.Record(comps, oneWay)
	}
	if k.obs != nil {
		k.obs.onAttrib(now, p, comps, oneWay)
	}
	if k.src == nil {
		// CBR flows have no feedback loop: delivery ends the packet's life.
		k.sim.FreePacket(p)
		return
	}
	// The delivered packet doubles as its own acknowledgement: it rides the
	// reverse path back to the Source (a Receiver), which releases it after
	// processing the ack. No closure, no ack object.
	k.sim.SchedulePacketAfter(k.ackDelay, k.src, p)
}

// outstanding tracks one unacknowledged packet at the source.
type outstanding struct {
	seq        int64
	sentAt     time.Duration
	window     int
	ackedAfter int // packets with higher seq acked since (dup-ack analogue)
	lost       bool
}

const (
	// dupThresh is the number of later acknowledgements after which a
	// missing packet is declared lost (TCP's three duplicate ACKs; the
	// Verus prototype uses a 3×delay timer — the source also applies a
	// per-packet timer of 3×SRTT for tail losses).
	dupThresh = 3
	// minRTO and maxRTO clamp the retransmission timeout. maxRTO must
	// comfortably exceed the deepest bufferbloat delay (multi-second on
	// cellular links, §2), or flows livelock in spurious-timeout loops.
	minRTO = 200 * time.Millisecond
	maxRTO = 60 * time.Second
)

// Source is a full-buffer sender driven by a cc.Controller. It performs the
// host duties the controller interface leaves out: sequencing, per-packet
// send tags, RTT estimation, duplicate-ack and timer loss detection, and the
// retransmission timeout.
type Source struct {
	sim  *Sim
	flow int
	ctrl cc.Controller
	link Link
	mtu  int

	metrics *FlowMetrics

	nextSeq  int64
	inflight []outstanding // ordered by seq; by value, so tracking allocates nothing steady-state
	srtt     time.Duration
	rttvar   time.Duration
	lastProg time.Duration // last forward progress, for RTO
	backoff  int           // consecutive RTOs without progress (exponential backoff)
	stopped  bool
	started  bool
	stopTick func()
	stopRTO  func()
	sink     *Sink
	// cid is the source's construction-order registry id; the timers armed
	// when the start event fires derive their ids from it (see snapshot.go).
	cid int64
}

// Derived-id slots for the timers a Source arms mid-run.
const (
	slotSourceTick = 1
	slotSourceRTO  = 2
)

// NewSource wires a controller into the simulation. The flow starts sending
// at `start` and stops at `stop` (0 = run forever). ackDelay is the
// reverse-path one-way delay, which together with the link's forward
// propagation delay forms the flow's base RTT.
func NewSource(sim *Sim, flow int, ctrl cc.Controller, link Link, mtu int,
	ackDelay, start, stop time.Duration) (*Source, *FlowMetrics) {
	if mtu <= 0 {
		panic("netsim: MTU must be positive")
	}
	m := NewFlowMetrics(flow)
	s := &Source{sim: sim, flow: flow, ctrl: ctrl, link: link, mtu: mtu, metrics: m}
	s.sink = &Sink{sim: sim, metrics: m, ackDelay: ackDelay, src: s}
	s.cid = sim.RegisterFunc(s.start)
	sim.RegisterReceiver(s)
	sim.RegisterReceiver(s.sink)
	sim.scheduleTagged(start, s.cid, s.start)
	if stop > 0 {
		stopID := sim.RegisterFunc(s.Stop)
		sim.scheduleTagged(stop, stopID, s.Stop)
	}
	return s, m
}

// start begins transmission: it arms the controller tick and RTO timers under
// ids derived from the source's construction-time id, then sends the first
// window.
func (s *Source) start() {
	s.started = true
	s.lastProg = s.sim.Now()
	if iv := s.ctrl.TickInterval(); iv > 0 {
		s.stopTick = s.sim.everyTagged(derivedID(s.cid, slotSourceTick), iv, s.onTick)
	}
	s.stopRTO = s.sim.everyTagged(derivedID(s.cid, slotSourceRTO), 10*time.Millisecond, s.checkRTO)
	s.trySend()
}

// onTick drives the controller's periodic update (the Verus epoch).
func (s *Source) onTick() {
	if s.stopped {
		return
	}
	s.ctrl.Tick(s.sim.Now())
	s.trySend()
}

// Stop halts the flow (no further transmissions).
func (s *Source) Stop() {
	s.stopped = true
	if s.stopTick != nil {
		s.stopTick()
	}
	if s.stopRTO != nil {
		s.stopRTO()
	}
}

// Metrics returns the flow's metric sink.
func (s *Source) Metrics() *FlowMetrics { return s.metrics }

// Sink returns the flow's receiver, to be registered with the link
// dispatcher.
func (s *Source) Sink() Receiver { return s.sink }

// Instrument attaches an observer to the flow's sink: each delivery emits a
// net.attrib event carrying the packet's delay decomposition and feeds the
// per-component delay histograms, labeled by run. Nil leaves the sink on its
// disabled fast path.
func (s *Source) Instrument(o *obs.Observer, run int64) {
	s.sink.obs = newSinkObs(o, run)
}

// SetAttribution points the flow's sink at a shared attribution aggregate
// (per home cell in the metro harness). The aggregate must only ever be
// touched from this sink's timeline.
func (s *Source) SetAttribution(a *stats.Attribution) { s.sink.attrib = a }

// Receive implements Receiver: the Source is the terminus of the reverse
// path, consuming the delivered packet as its acknowledgement and releasing
// it back to the pool. The ack path is the flow path's release point for
// every packet that survives the network.
func (s *Source) Receive(p *Packet) {
	AssertLive(p, "Source ack")
	s.onAck(p)
	s.sim.FreePacket(p)
}

func (s *Source) trySend() {
	if s.stopped || !s.started {
		return
	}
	now := s.sim.Now()
	n := s.ctrl.Allowance(now, len(s.inflight))
	for i := 0; i < n; i++ {
		p := s.sim.NewPacket(s.flow, s.nextSeq, s.mtu, now, s.ctrl.SendTag())
		s.nextSeq++
		s.inflight = append(s.inflight, outstanding{seq: p.Seq, sentAt: now, window: p.Window})
		s.metrics.Sent++
		s.ctrl.OnSend(now, p.Seq, len(s.inflight))
		s.link.Send(p)
	}
}

// onAck processes the acknowledgement for packet p arriving now.
func (s *Source) onAck(p *Packet) {
	if s.stopped {
		return
	}
	now := s.sim.Now()
	idx := -1
	for i, o := range s.inflight {
		if o.seq == p.Seq {
			idx = i
			break
		}
		if o.seq > p.Seq {
			break
		}
	}
	if idx < 0 {
		return // already declared lost or duplicate ack
	}
	o := s.inflight[idx]
	s.inflight = append(s.inflight[:idx], s.inflight[idx+1:]...)
	rtt := now - o.sentAt
	s.updateRTT(rtt)
	s.lastProg = now
	s.backoff = 0

	s.ctrl.OnAck(now, cc.AckSample{
		Seq:        p.Seq,
		RTT:        rtt,
		SentWindow: o.window,
		Inflight:   len(s.inflight),
		Bytes:      p.Bytes,
	})

	// Dup-ack analogue: everything older than the acked packet has now been
	// "acked past" once more; declare losses at the threshold. Also run the
	// per-packet 3×SRTT timer the Verus prototype uses.
	s.detectLosses(now, p.Seq)
	s.trySend()
}

func (s *Source) detectLosses(now time.Duration, ackedSeq int64) {
	timerCut := 3 * s.srtt
	kept := s.inflight[:0]
	// Index iteration so ackedAfter++ mutates in place; the kept compaction
	// writes at an index ≤ the read index, so the in-place append is safe.
	for i := range s.inflight {
		o := &s.inflight[i]
		lost := false
		if o.seq < ackedSeq {
			o.ackedAfter++
			if o.ackedAfter >= dupThresh {
				lost = true
			}
		}
		if !lost && s.srtt > 0 && now-o.sentAt > timerCut && o.ackedAfter > 0 {
			lost = true
		}
		if lost {
			s.metrics.LossDetected++
			s.ctrl.OnLoss(now, cc.LossEvent{Seq: o.seq, SentWindow: o.window, Inflight: len(s.inflight) - 1})
			continue
		}
		kept = append(kept, *o)
	}
	s.inflight = kept
}

func (s *Source) updateRTT(rtt time.Duration) {
	if s.srtt == 0 {
		s.srtt = rtt
		s.rttvar = rtt / 2
		return
	}
	// RFC 6298 smoothing.
	diff := s.srtt - rtt
	if diff < 0 {
		diff = -diff
	}
	s.rttvar = (3*s.rttvar + diff) / 4
	s.srtt = (7*s.srtt + rtt) / 8
}

func (s *Source) rto() time.Duration {
	r := time.Second
	if s.srtt != 0 {
		// 2×srtt tolerates the RTT doubling within one round that slow
		// start over a filling buffer produces; rttvar alone lags it.
		r = 2*s.srtt + 4*s.rttvar
	}
	for i := 0; i < s.backoff && r < maxRTO; i++ {
		r *= 2 // exponential backoff after consecutive timeouts
	}
	if r < minRTO {
		r = minRTO
	}
	if r > maxRTO {
		r = maxRTO
	}
	return r
}

func (s *Source) checkRTO() {
	if s.stopped || len(s.inflight) == 0 {
		return
	}
	now := s.sim.Now()
	if now-s.lastProg < s.rto() {
		return
	}
	// Whole window presumed lost.
	s.metrics.Timeouts++
	s.inflight = s.inflight[:0]
	s.lastProg = now
	s.backoff++
	s.ctrl.OnTimeout(now)
	s.trySend()
}

// Snapshot writes the flow's accumulated metrics.
func (m *FlowMetrics) Snapshot(e *snap.Encoder) {
	e.Tag("flowmetrics")
	m.Throughput.Snapshot(e)
	m.Delay.Snapshot(e)
	m.DelayOverTime.Snapshot(e)
	e.I64(m.Sent)
	e.I64(m.Received)
	e.I64(m.LossDetected)
	e.I64(m.Timeouts)
	e.I64s(m.AttribNs[:])
}

// Restore replaces the flow's metrics with a snapshot.
func (m *FlowMetrics) Restore(d *snap.Decoder) {
	d.Expect("flowmetrics")
	m.Throughput.Restore(d)
	m.Delay.Restore(d)
	m.DelayOverTime.Restore(d)
	m.Sent = d.I64()
	m.Received = d.I64()
	m.LossDetected = d.I64()
	m.Timeouts = d.I64()
	attrib := d.I64s()
	if d.Err() != nil {
		return
	}
	if len(attrib) != stats.NumDelayComps {
		d.Fail(fmt.Errorf("netsim: flow metrics snapshot has %d attribution components, this build has %d",
			len(attrib), stats.NumDelayComps))
		return
	}
	copy(m.AttribNs[:], attrib)
}

// Snapshot implements Snapshotter: sender protocol state, the flow's metrics,
// and the controller's state (the controller must itself be a Snapshotter).
// Pending ack deliveries, timer ticks, and the start/stop events live in the
// heap snapshot, not here.
func (s *Source) Snapshot(e *snap.Encoder) {
	e.Tag("source")
	cs, ok := s.ctrl.(snap.Snapshotter)
	if !ok {
		e.Fail(fmt.Errorf("netsim: controller %T is not checkpointable (no Snapshot/Restore)", s.ctrl))
		return
	}
	e.I64(s.nextSeq)
	e.U32(uint32(len(s.inflight)))
	for i := range s.inflight {
		o := &s.inflight[i]
		e.I64(o.seq)
		e.Dur(o.sentAt)
		e.Int(o.window)
		e.Int(o.ackedAfter)
		e.Bool(o.lost)
	}
	e.Dur(s.srtt)
	e.Dur(s.rttvar)
	e.Dur(s.lastProg)
	e.Int(s.backoff)
	e.Bool(s.stopped)
	e.Bool(s.started)
	s.metrics.Snapshot(e)
	cs.Snapshot(e)
}

// Restore implements Snapshotter. If the checkpoint was taken after the flow
// started, the tick and RTO timers are re-registered under their derived ids
// (carrying the stopped flag) so the heap restore can resolve their pending
// tick events.
func (s *Source) Restore(d *snap.Decoder) {
	d.Expect("source")
	cs, ok := s.ctrl.(snap.Snapshotter)
	if !ok {
		d.Fail(fmt.Errorf("netsim: controller %T is not checkpointable (no Snapshot/Restore)", s.ctrl))
		return
	}
	s.nextSeq = d.I64()
	n := int(d.U32())
	s.inflight = s.inflight[:0]
	for i := 0; i < n; i++ {
		var o outstanding
		o.seq = d.I64()
		o.sentAt = d.Dur()
		o.window = d.Int()
		o.ackedAfter = d.Int()
		o.lost = d.Bool()
		if d.Err() != nil {
			return
		}
		s.inflight = append(s.inflight, o)
	}
	s.srtt = d.Dur()
	s.rttvar = d.Dur()
	s.lastProg = d.Dur()
	s.backoff = d.Int()
	s.stopped = d.Bool()
	s.started = d.Bool()
	s.metrics.Restore(d)
	cs.Restore(d)
	if d.Err() != nil {
		return
	}
	if s.started {
		if iv := s.ctrl.TickInterval(); iv > 0 {
			s.stopTick = s.sim.restoreTimer(derivedID(s.cid, slotSourceTick), iv, s.onTick, s.stopped)
		}
		s.stopRTO = s.sim.restoreTimer(derivedID(s.cid, slotSourceRTO), 10*time.Millisecond, s.checkRTO, s.stopped)
	}
}
