//go:build !pooldebug

package netsim

// Release builds carry no per-packet pool state: the poison hooks compile to
// empty inlined calls, so the pooled hot path pays nothing for the
// diagnostics. Build with -tags pooldebug to arm them (CI does, under
// -race, on the metro churn smoke).

// PoolDebug reports whether release poisoning is compiled in.
const PoolDebug = false

// poolMeta is the per-packet pool state; empty in release builds.
type poolMeta struct{}

func (p *Packet) markLive()  {}
func (p *Packet) markFreed() {}

// AssertLive checks that p has not been released back to a pool. No-op in
// release builds; under -tags pooldebug it panics on a released packet,
// naming the touch point.
func AssertLive(p *Packet, ctx string) {}
