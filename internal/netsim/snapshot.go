package netsim

import (
	"fmt"
	"reflect"
	"time"

	"repro/internal/snap"
	"repro/internal/stats"
)

// Checkpoint/restore for the simulation core (DESIGN.md §15).
//
// The event heap holds closures and interface values, which no codec can
// serialize. The snapshot subsystem therefore uses a rebuild-and-patch
// scheme: a restore first re-runs the deterministic topology construction
// (same config, same seed), which re-creates every component, closure, and
// receiver and re-registers them under the same stable ids — construction
// order is deterministic, so the id sequence is too. The restore then clears
// the rebuilt heaps and pushes the snapshot's events with their exact saved
// (time, order key) pairs, resolving each callback/receiver/timer id through
// the registry, and finally overwrites each component's mutable fields.
// Heap array layout is irrelevant: (time, key) is a strict total order, so
// any valid heap pops the identical event sequence.
//
// Id discipline: construction-time registrations draw ids from a per-Sim
// counter (nextID), which both the original run and the rebuild advance
// identically. Objects created mid-run (a Source's timers, armed when its
// start event fires) must NOT draw from the counter — mid-run draw order
// would depend on event interleaving across components. They instead derive
// ids from their owner's construction-time id and a fixed slot (derivedID),
// making every id a pure function of the topology.

// Snapshotter is the component checkpoint interface: Snapshot appends the
// component's mutable state, Restore consumes the same fields in the same
// order, recording failures on the decoder.
type Snapshotter = snap.Snapshotter

// simRegistry maps stable ids to the long-lived objects heap entries
// reference. Receivers, callbacks, and timers live in separate namespaces,
// so ids may repeat across kinds but never within one.
type simRegistry struct {
	nextID  int64
	funcs   map[int64]func()
	recvs   map[int64]Receiver
	recvIDs map[Receiver]int64
	timers  map[int64]*timer
}

// derivedID composes an owner's construction-time id with a fixed slot into
// a mid-run-safe registry id. Derived ids are negative; counter-drawn ids
// are positive — the two spaces cannot collide.
func derivedID(owner, slot int64) int64 {
	if slot <= 0 || slot > 15 {
		panic("netsim: derived id slot out of range")
	}
	return -(owner<<4 | slot)
}

func (r *simRegistry) registerFunc(id int64, fn func()) {
	if r.funcs == nil {
		r.funcs = make(map[int64]func())
	}
	if _, dup := r.funcs[id]; dup {
		panic(fmt.Sprintf("netsim: duplicate callback registration id %d", id))
	}
	r.funcs[id] = fn
}

func (r *simRegistry) registerTimer(id int64, t *timer) {
	if id == 0 {
		return // plain Every: unregistered, not checkpointable
	}
	if r.timers == nil {
		r.timers = make(map[int64]*timer)
	}
	if _, dup := r.timers[id]; dup {
		panic(fmt.Sprintf("netsim: duplicate timer registration id %d", id))
	}
	r.timers[id] = t
}

func (r *simRegistry) registerRecv(id int64, rcv Receiver) {
	if !reflect.TypeOf(rcv).Comparable() {
		panic(fmt.Sprintf("netsim: receiver %T is not comparable and cannot be registered; use a pointer receiver, not a func adapter", rcv))
	}
	if r.recvs == nil {
		r.recvs = make(map[int64]Receiver)
		r.recvIDs = make(map[Receiver]int64)
	}
	if _, dup := r.recvs[id]; dup {
		panic(fmt.Sprintf("netsim: duplicate receiver registration id %d", id))
	}
	r.recvs[id] = rcv
	r.recvIDs[rcv] = id
}

// nextID draws the next construction-order id. Draw ids only during
// topology setup — never from event callbacks (see the id discipline above).
func (s *Sim) nextID() int64 {
	s.reg.nextID++
	return s.reg.nextID
}

// RegisterReceiver registers r under a construction-order id and returns the
// id; registering the same receiver again returns the existing id without
// drawing a new one. Receivers must be comparable (pointer types) —
// ReceiverFunc adapters are rejected. Registration is what lets a pending
// packet delivery to r survive a checkpoint.
func (s *Sim) RegisterReceiver(r Receiver) int64 {
	if reflect.TypeOf(r).Comparable() {
		if id, ok := s.reg.recvIDs[r]; ok {
			return id
		}
	}
	id := s.nextID()
	s.reg.registerRecv(id, r)
	return id
}

// RegisterFunc registers a long-lived callback under a construction-order id
// and returns the id for use with AfterRegistered. Call it once per callback
// at construction time and keep the id — each call draws a fresh id.
func (s *Sim) RegisterFunc(fn func()) int64 {
	id := s.nextID()
	s.reg.registerFunc(id, fn)
	return id
}

// ScheduleTracked is Schedule for setup-time one-shot closures that must
// survive a checkpoint: the closure is registered under a fresh
// construction-order id and scheduled tagged with it. Key claiming is
// identical to Schedule.
func (s *Sim) ScheduleTracked(at time.Duration, fn func()) {
	id := s.nextID()
	s.reg.registerFunc(id, fn)
	s.scheduleTagged(at, id, fn)
}

// AfterRegistered schedules the callback previously registered under id to
// run d from now. It is the mid-run scheduling primitive for snapshot-aware
// components: the callback was registered at construction, so the pending
// event serializes by id.
func (s *Sim) AfterRegistered(d time.Duration, id int64) {
	fn, ok := s.reg.funcs[id]
	if !ok {
		panic(fmt.Sprintf("netsim: AfterRegistered with unknown callback id %d", id))
	}
	s.afterTagged(d, id, fn)
}

// restoreTimer re-creates a component's timer during Restore: the timer is
// registered under id so heap restore can resolve pending tick events, but
// nothing is pushed — the pending tick, if any, arrives with the heap.
func (s *Sim) restoreTimer(id int64, interval time.Duration, fn func(), stopped bool) (stop func()) {
	t := &timer{interval: interval, fn: fn, stopped: stopped, id: id}
	s.reg.registerTimer(id, t)
	return func() { t.stopped = true }
}

// SnapshotState writes this Sim's core mutable state: virtual clock, order-
// key counter, registry id counter, and packet-pool accounting. The event
// heap is snapshotted separately (SnapshotHeap) because restore must happen
// in two phases: core state and components first — re-registering mid-run
// timers — then the heap, which resolves ids against the registry.
func (s *Sim) SnapshotState(e *snap.Encoder) {
	e.Tag("simcore")
	e.Dur(s.now)
	e.U64(s.seq)
	e.I64(s.reg.nextID)
	st := s.pool.stats
	e.U64(st.Allocated)
	e.U64(st.Gets)
	e.U64(st.Frees)
	// Free-list depth: restore rematerializes this many recycled packets so
	// the pool's miss/reuse trajectory — and therefore Allocated — continues
	// exactly as the uninterrupted run's would.
	e.U32(uint32(len(s.pool.free)))
}

// RestoreState consumes SnapshotState's fields, clears the rebuilt event
// heap (its entries were all re-claimed by the deterministic rebuild and
// will be replaced verbatim by RestoreHeap), and re-arms the pool
// accounting: Gets/Frees are restored wholesale, so once RestoreHeap and the
// component restores have rematerialized every live packet through the
// non-counting path, Live() is conserved exactly.
func (s *Sim) RestoreState(d *snap.Decoder) {
	d.Expect("simcore")
	now := d.Dur()
	seq := d.U64()
	nextID := d.I64()
	alloc := d.U64()
	gets := d.U64()
	frees := d.U64()
	freeDepth := int(d.U32())
	if d.Err() != nil {
		return
	}
	if nextID != s.reg.nextID {
		d.Fail(fmt.Errorf("netsim: rebuild registered %d ids, snapshot had %d — topology rebuild diverged from the checkpointed construction", s.reg.nextID, nextID))
		return
	}
	s.now = now
	s.seq = seq
	s.pool.stats = PacketPoolStats{Allocated: alloc, Gets: gets, Frees: frees}
	s.pool.free = s.pool.free[:0]
	for i := 0; i < freeDepth; i++ {
		//lint:poolrelease pool-internal -- rematerializing the checkpointed free list: each of these replaces a packet whose release was already counted in the restored Frees
		p := &Packet{}
		p.markFreed()
		s.pool.free = append(s.pool.free, p)
	}
	for i := range s.events {
		s.events[i] = event{}
	}
	s.events = s.events[:0]
	s.outbox = s.outbox[:0]
}

// Event kind bytes in a heap snapshot.
const (
	snapEvFunc   = 0
	snapEvTimer  = 1
	snapEvPacket = 2
)

// SnapshotHeap serializes every pending event. Each entry keeps its exact
// (time, order key) pair; callbacks serialize as registry ids, packet
// deliveries as (receiver id, packet fields). An event whose callback or
// receiver was never registered fails the snapshot with a named error — a
// checkpoint either captures everything or nothing.
func (s *Sim) SnapshotHeap(e *snap.Encoder) {
	e.Tag("heap")
	e.U32(uint32(len(s.events)))
	for i := range s.events {
		ev := &s.events[i]
		e.Dur(ev.at)
		e.U64(ev.seq)
		switch {
		case ev.t != nil:
			e.U8(snapEvTimer)
			if ev.t.id == 0 {
				e.Fail(fmt.Errorf("netsim: pending timer at %v was created with Every, not a snapshot-aware registration", ev.at))
				return
			}
			e.I64(ev.t.id)
		case ev.r != nil:
			e.U8(snapEvPacket)
			if !reflect.TypeOf(ev.r).Comparable() {
				e.Fail(fmt.Errorf("netsim: pending delivery at %v targets unregistrable receiver %T", ev.at, ev.r))
				return
			}
			id, ok := s.reg.recvIDs[ev.r]
			if !ok {
				e.Fail(fmt.Errorf("netsim: pending delivery at %v targets unregistered receiver %T", ev.at, ev.r))
				return
			}
			e.I64(id)
			SnapshotPacket(e, ev.p)
		default:
			e.U8(snapEvFunc)
			if ev.fid == 0 {
				e.Fail(fmt.Errorf("netsim: pending callback at %v was scheduled untagged and cannot be checkpointed", ev.at))
				return
			}
			e.I64(ev.fid)
		}
	}
}

// RestoreHeap pushes the snapshot's events into the (cleared) heap,
// resolving every id against the registry the rebuild and the component
// restores populated. Pushing re-sifts, but since (time, key) is a strict
// total order the pop sequence is independent of heap layout.
func (s *Sim) RestoreHeap(d *snap.Decoder) {
	d.Expect("heap")
	n := int(d.U32())
	for i := 0; i < n; i++ {
		at := d.Dur()
		seq := d.U64()
		kind := d.U8()
		if d.Err() != nil {
			return
		}
		switch kind {
		case snapEvTimer:
			id := d.I64()
			t, ok := s.reg.timers[id]
			if !ok {
				d.Fail(fmt.Errorf("netsim: heap references timer id %d, which no component restored", id))
				return
			}
			s.push(event{at: at, seq: seq, t: t})
		case snapEvPacket:
			id := d.I64()
			r, ok := s.reg.recvs[id]
			if !ok {
				d.Fail(fmt.Errorf("netsim: heap references receiver id %d, which the rebuild did not register", id))
				return
			}
			p := RestorePacket(d)
			if d.Err() != nil {
				return
			}
			s.push(event{at: at, seq: seq, r: r, p: p})
		case snapEvFunc:
			id := d.I64()
			fn, ok := s.reg.funcs[id]
			if !ok {
				d.Fail(fmt.Errorf("netsim: heap references callback id %d, which the rebuild did not register", id))
				return
			}
			s.push(event{at: at, seq: seq, fn: fn, fid: id})
		default:
			d.Fail(fmt.Errorf("netsim: unknown heap event kind %d", kind))
			return
		}
	}
}

// SnapshotPacket writes a packet's wire fields and its in-flight delay
// attribution state (nil-tolerant).
func SnapshotPacket(e *snap.Encoder, p *Packet) {
	if p == nil {
		e.Bool(false)
		return
	}
	e.Bool(true)
	e.Int(p.Flow)
	e.I64(p.Seq)
	e.Int(p.Bytes)
	e.Dur(p.SentAt)
	e.Int(p.Window)
	for _, c := range p.comps {
		e.Dur(c)
	}
	e.Dur(p.mark)
	e.U8(uint8(p.pend))
}

// RestorePacket rematerializes a live packet from its snapshot. It
// deliberately bypasses the counting pool path: the packet's original
// NewPacket/ClonePacket was already counted in the Gets that RestoreState
// re-armed, so counting again would break the Live() conservation identity.
// The fresh allocation is born live, which re-arms pooldebug poisoning
// exactly — live packets are live, and freed packets are simply never
// rematerialized.
func RestorePacket(d *snap.Decoder) *Packet {
	if !d.Bool() {
		return nil
	}
	//lint:poolrelease pool-internal -- checkpoint rematerialization: the packet this replaces was checked out through the counting pool path before the snapshot, and RestoreState restored that accounting wholesale
	p := &Packet{}
	p.Flow = d.Int()
	p.Seq = d.I64()
	p.Bytes = d.Int()
	p.SentAt = d.Dur()
	p.Window = d.Int()
	for i := range p.comps {
		p.comps[i] = d.Dur()
	}
	p.mark = d.Dur()
	pend := d.U8()
	if d.Err() != nil {
		return p
	}
	if int(pend) >= stats.NumDelayComps {
		d.Fail(fmt.Errorf("netsim: packet snapshot pending component %d, this build has %d", pend, stats.NumDelayComps))
		return p
	}
	p.pend = stats.DelayComp(pend)
	p.markLive()
	return p
}

// Snapshot writes the mesh's synchronization state and every cell's core
// state. It must be called at a barrier: the mesh quiescent, no sharded
// window executing, every lookahead channel drained. Heaps are written by
// SnapshotHeaps after the components, mirroring the two-phase restore.
func (m *Mesh) Snapshot(e *snap.Encoder) {
	e.Tag("mesh")
	if m.buffering {
		e.Fail(fmt.Errorf("netsim: mesh snapshot during a sharded window — snapshots are only valid at barriers"))
		return
	}
	if n := m.PendingCross(); n != 0 {
		e.Fail(fmt.Errorf("netsim: mesh snapshot with %d undelivered cross-cell messages — not at a quiescent barrier", n))
		return
	}
	e.Int(len(m.cells))
	e.Dur(m.lookahead)
	e.Dur(m.clock)
	e.U64(m.windows)
	e.U64(m.crossDelivered)
	for _, c := range m.cells {
		c.SnapshotState(e)
	}
}

// Restore consumes Snapshot's fields into a freshly rebuilt mesh,
// cross-checking the rebuilt topology shape.
func (m *Mesh) Restore(d *snap.Decoder) {
	d.Expect("mesh")
	cells := d.Int()
	la := d.Dur()
	clock := d.Dur()
	windows := d.U64()
	cross := d.U64()
	if d.Err() != nil {
		return
	}
	if cells != len(m.cells) || la != m.lookahead {
		d.Fail(fmt.Errorf("netsim: snapshot is of a %d-cell mesh at lookahead %v, rebuild produced %d cells at %v", cells, la, len(m.cells), m.lookahead))
		return
	}
	m.clock = clock
	m.windows = windows
	m.crossDelivered = cross
	for _, c := range m.cells {
		c.RestoreState(d)
		if d.Err() != nil {
			return
		}
	}
}

// SnapshotHeaps writes every cell's pending events.
func (m *Mesh) SnapshotHeaps(e *snap.Encoder) {
	e.Tag("meshheaps")
	for _, c := range m.cells {
		c.SnapshotHeap(e)
		if e.Err() != nil {
			return
		}
	}
}

// RestoreHeaps restores every cell's pending events; call it after every
// component's Restore has re-registered its timers.
func (m *Mesh) RestoreHeaps(d *snap.Decoder) {
	d.Expect("meshheaps")
	for _, c := range m.cells {
		c.RestoreHeap(d)
		if d.Err() != nil {
			return
		}
	}
}
