package netsim

import (
	"testing"
	"time"
)

// TestPoolRecycle pins the free-list mechanics: a released packet is handed
// out again (LIFO), every field is overwritten on reuse, and the counters
// account gets, frees, and heap allocations exactly.
func TestPoolRecycle(t *testing.T) {
	sim := NewSim()
	p1 := sim.NewPacket(1, 10, 1400, time.Second, 4)
	sim.FreePacket(p1)
	p2 := sim.NewPacket(2, 20, 200, 2*time.Second, 8)
	if p1 != p2 {
		t.Fatalf("free list did not recycle: got a fresh packet after a release")
	}
	if p2.Flow != 2 || p2.Seq != 20 || p2.Bytes != 200 || p2.SentAt != 2*time.Second || p2.Window != 8 {
		t.Fatalf("recycled packet carries stale fields: %+v", *p2)
	}
	st := sim.PoolStats()
	if st.Gets != 2 || st.Frees != 1 || st.Allocated != 1 {
		t.Fatalf("pool stats gets=%d frees=%d allocated=%d, want 2/1/1", st.Gets, st.Frees, st.Allocated)
	}
	if st.Live() != 1 {
		t.Fatalf("live = %d, want 1", st.Live())
	}
}

// TestClonePacketIndependent checks the duplication primitive: the clone is
// field-for-field equal, distinct, and each copy releases independently.
func TestClonePacketIndependent(t *testing.T) {
	sim := NewSim()
	p := sim.NewPacket(3, 7, 900, time.Millisecond, 2)
	q := sim.ClonePacket(p)
	if p == q {
		t.Fatalf("clone returned the same pointer")
	}
	if *q != *p {
		t.Fatalf("clone differs: %+v vs %+v", *q, *p)
	}
	sim.FreePacket(p)
	sim.FreePacket(q)
	if st := sim.PoolStats(); st.Live() != 0 {
		t.Fatalf("live = %d after releasing both copies, want 0", st.Live())
	}
}

// TestPacketPathZeroAllocs is the steady-state pin the tentpole promises:
// once the heap, ring, and pool are warm, pushing packets through the full
// source→queue→FixedLink→propagation→receiver→release cycle performs zero
// allocations per packet. The injector runs below the link rate so the queue
// stays shallow, obs is detached, and lossProb is zero — the configuration
// every hot-path experiment runs in.
func TestPacketPathZeroAllocs(t *testing.T) {
	sim := NewSim()
	q := NewDropTail(1 << 20)
	release := ReceiverFunc(func(p *Packet) { sim.FreePacket(p) })
	// 100 Mbps link, 1400 B every 150 µs ≈ 74.7 Mbps offered: under capacity.
	link := NewFixedLink(sim, q, 100, time.Millisecond, release, 1)
	seq := int64(0)
	stop := sim.Every(150*time.Microsecond, func() {
		link.Send(sim.NewPacket(1, seq, 1400, sim.Now(), 0))
		seq++
	})
	defer stop()
	sim.Run(200 * time.Millisecond) // warm heap, ring, and pool
	next := sim.Now()
	allocs := testing.AllocsPerRun(100, func() {
		next += 20 * time.Millisecond
		sim.Run(next)
	})
	if allocs != 0 {
		t.Fatalf("packet path allocates %.1f/run in steady state, want 0", allocs)
	}
	if st := sim.PoolStats(); st.Frees == 0 || st.Allocated > 64 {
		t.Fatalf("pool not cycling: %+v", st)
	}
}

// TestFlowPathConservesPool runs a controlled flow end to end — sends, acks,
// dup-ack losses, RTOs — and checks the pool ledger balances once the
// network drains: every packet checked out was released exactly once.
func TestFlowPathConservesPool(t *testing.T) {
	sim := NewSim()
	d := NewDumbbell(sim, func(dst Receiver) Link {
		// Lossy and shallow, so queue drops, dup-acks, and timeouts all fire.
		l := NewFixedLink(sim, NewDropTail(8_400), 4, 20*time.Millisecond, dst, 11)
		l.SetLossProb(0.05)
		return l
	}, 1400, []FlowSpec{
		{Ctrl: &fixedWindow{w: 16}, AckDelay: 10 * time.Millisecond, Stop: 3 * time.Second},
		{CBRMbps: 1.5, Stop: 3 * time.Second},
	})
	sim.Run(10 * time.Second) // 7 s past Stop: everything in flight drains
	if d.Metrics[0].Received == 0 || d.Metrics[1].Received == 0 {
		t.Fatal("no traffic delivered; conservation check vacuous")
	}
	st := sim.PoolStats()
	if st.Live() != 0 {
		t.Fatalf("pool leak: %d packets never released (gets=%d frees=%d)", st.Live(), st.Gets, st.Frees)
	}
	if st.Gets == 0 || st.Allocated > st.Gets {
		t.Fatalf("implausible pool ledger: %+v", st)
	}
}
