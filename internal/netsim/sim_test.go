package netsim

import (
	"testing"
	"testing/quick"
	"time"
)

func TestSimOrdering(t *testing.T) {
	s := NewSim()
	var order []int
	s.Schedule(20*time.Millisecond, func() { order = append(order, 2) })
	s.Schedule(10*time.Millisecond, func() { order = append(order, 1) })
	s.Schedule(30*time.Millisecond, func() { order = append(order, 3) })
	s.Run(time.Second)
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v", order)
	}
	if s.Now() != time.Second {
		t.Fatalf("Now = %v, want 1s", s.Now())
	}
}

func TestSimFIFOAmongSimultaneous(t *testing.T) {
	s := NewSim()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		s.Schedule(time.Millisecond, func() { order = append(order, i) })
	}
	s.Run(time.Second)
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events reordered: %v", order)
		}
	}
}

// TestSimPastClampKeepsFIFO pins the sim.go tiebreaker: an event scheduled
// in the past is clamped to now and takes a fresh seq, so it fires after
// every event already queued for the current instant and never reorders
// them — the property the deterministic experiment runner leans on.
func TestSimPastClampKeepsFIFO(t *testing.T) {
	s := NewSim()
	var order []string
	add := func(tag string) func() { return func() { order = append(order, tag) } }
	s.Schedule(10*time.Millisecond, func() {
		order = append(order, "a")
		// In the past: must clamp to now (10 ms) and queue behind b and c.
		s.Schedule(3*time.Millisecond, func() {
			order = append(order, "past")
			if s.Now() != 10*time.Millisecond {
				t.Errorf("clamped event fired at %v, want 10ms", s.Now())
			}
		})
	})
	s.Schedule(10*time.Millisecond, add("b"))
	s.Schedule(10*time.Millisecond, add("c"))
	s.Schedule(15*time.Millisecond, add("later"))
	s.Run(time.Second)
	want := []string{"a", "b", "c", "past", "later"}
	if len(order) != len(want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

// TestSimSameTimeSeqOrderAcrossSources checks FIFO among same-timestamp
// events regardless of how they were scheduled (Schedule, After, Every all
// share the seq counter).
func TestSimSameTimeSeqOrderAcrossSources(t *testing.T) {
	s := NewSim()
	var order []int
	s.Schedule(5*time.Millisecond, func() { order = append(order, 0) })
	s.After(5*time.Millisecond, func() { order = append(order, 1) })
	s.Schedule(5*time.Millisecond, func() {
		order = append(order, 2)
		s.After(0, func() { order = append(order, 3) }) // same instant, fresh seq
	})
	s.Schedule(5*time.Millisecond, func() { order = append(order, 4) })
	s.Run(time.Second)
	want := []int{0, 1, 2, 4, 3}
	if len(order) != len(want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestSimPastEventsClamped(t *testing.T) {
	s := NewSim()
	fired := false
	s.Schedule(10*time.Millisecond, func() {
		s.Schedule(time.Millisecond, func() { fired = true }) // in the past
	})
	s.Run(20 * time.Millisecond)
	if !fired {
		t.Fatal("past-scheduled event never fired")
	}
}

func TestSimRunStopsAtLimit(t *testing.T) {
	s := NewSim()
	fired := false
	s.Schedule(2*time.Second, func() { fired = true })
	s.Run(time.Second)
	if fired {
		t.Fatal("event beyond limit fired")
	}
	if s.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", s.Pending())
	}
	s.Run(3 * time.Second)
	if !fired {
		t.Fatal("event not fired on second run")
	}
}

func TestSimAfter(t *testing.T) {
	s := NewSim()
	var at time.Duration
	s.Schedule(10*time.Millisecond, func() {
		s.After(5*time.Millisecond, func() { at = s.Now() })
	})
	s.Run(time.Second)
	if at != 15*time.Millisecond {
		t.Fatalf("After fired at %v, want 15ms", at)
	}
}

func TestSimEvery(t *testing.T) {
	s := NewSim()
	count := 0
	var stop func()
	stop = s.Every(10*time.Millisecond, func() {
		count++
		if count == 5 {
			stop()
		}
	})
	s.Run(time.Second)
	if count != 5 {
		t.Fatalf("count = %d, want 5 (stop should halt ticker)", count)
	}
}

func TestSimEveryInvalidInterval(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero interval should panic")
		}
	}()
	NewSim().Every(0, func() {})
}

// Property: events always fire in non-decreasing time order.
func TestQuickSimMonotoneTime(t *testing.T) {
	f := func(delays []uint16) bool {
		s := NewSim()
		var last time.Duration
		ok := true
		for _, d := range delays {
			at := time.Duration(d) * time.Microsecond
			s.Schedule(at, func() {
				if s.Now() < last {
					ok = false
				}
				last = s.Now()
			})
		}
		s.Run(time.Hour)
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
