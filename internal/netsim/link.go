package netsim

import (
	"math/rand"
	"time"

	"repro/internal/obs"
	"repro/internal/trace"
)

// Receiver consumes packets that exit a link.
type Receiver interface {
	Receive(p *Packet)
}

// ReceiverFunc adapts a function to the Receiver interface.
type ReceiverFunc func(p *Packet)

// Receive implements Receiver.
func (f ReceiverFunc) Receive(p *Packet) { f(p) }

// Link is a bottleneck entry point: sources push packets in, the link queues
// and serves them, and delivered packets reach the configured Receiver.
type Link interface {
	Send(p *Packet)
	// Queue exposes the link's buffer (for instrumentation).
	Queue() Queue
}

// FixedLink serializes packets at a configurable rate with a propagation
// delay and an optional i.i.d. loss probability. Rate, delay, and loss can
// change at runtime — the mechanism behind the paper's §7 micro-evaluations
// where "every five seconds the whole network parameters, i.e. link
// capacity, network RTT, and loss rate, are changed."
type FixedLink struct {
	sim   *Sim
	queue Queue
	dst   Receiver
	rng   *rand.Rand

	rateBps  float64
	propDly  time.Duration
	lossProb float64
	busy     bool
	obs      *linkObs

	// Delivered counts packets that exited the link.
	Delivered int64
	// Lost counts packets dropped by loss injection.
	Lost int64
}

// NewFixedLink returns a link serving q at rateMbps with the given one-way
// propagation delay, delivering to dst.
func NewFixedLink(sim *Sim, q Queue, rateMbps float64, prop time.Duration, dst Receiver, seed int64) *FixedLink {
	if rateMbps <= 0 {
		panic("netsim: link rate must be positive")
	}
	return &FixedLink{
		sim:     sim,
		queue:   q,
		dst:     dst,
		rng:     rand.New(rand.NewSource(seed)),
		rateBps: rateMbps * 1e6,
		propDly: prop,
	}
}

// SetRateMbps changes the link capacity; it applies to the next
// serialization.
func (l *FixedLink) SetRateMbps(m float64) {
	if m <= 0 {
		panic("netsim: link rate must be positive")
	}
	l.rateBps = m * 1e6
}

// RateMbps returns the current capacity.
func (l *FixedLink) RateMbps() float64 { return l.rateBps / 1e6 }

// SetPropDelay changes the one-way propagation delay for future deliveries.
func (l *FixedLink) SetPropDelay(d time.Duration) { l.propDly = d }

// SetLossProb changes the i.i.d. loss probability in [0, 1].
func (l *FixedLink) SetLossProb(p float64) {
	if p < 0 || p > 1 {
		panic("netsim: loss probability out of range")
	}
	l.lossProb = p
}

// Queue implements Link.
func (l *FixedLink) Queue() Queue { return l.queue }

// Instrument attaches an observer for packet-level tracing and link
// counters; run labels the trial. A nil observer leaves the link on its
// disabled fast path.
func (l *FixedLink) Instrument(o *obs.Observer, run int64) {
	l.obs = newLinkObs(o, run)
}

// Send implements Link.
func (l *FixedLink) Send(p *Packet) {
	if !l.queue.Enqueue(p, l.sim.Now()) {
		if l.obs != nil {
			l.obs.onDrop(l.sim.Now(), p, "queue")
		}
		return
	}
	if l.obs != nil {
		l.obs.onEnqueue(l.sim.Now(), p, l.queue.Len(), l.queue.Bytes())
	}
	if !l.busy {
		l.serveNext()
	}
}

func (l *FixedLink) serveNext() {
	p := l.queue.Dequeue(l.sim.Now())
	if p == nil {
		l.busy = false
		return
	}
	l.busy = true
	ser := time.Duration(float64(p.Bytes*8) / l.rateBps * float64(time.Second))
	l.sim.After(ser, func() {
		if l.lossProb > 0 && l.rng.Float64() < l.lossProb {
			l.Lost++
			if l.obs != nil {
				l.obs.onDrop(l.sim.Now(), p, "loss")
			}
		} else {
			l.Delivered++
			if l.obs != nil {
				l.obs.onDeliver(l.sim.Now(), p)
			}
			pkt := p
			l.sim.After(l.propDly, func() { l.dst.Receive(pkt) })
		}
		l.serveNext()
	})
}

// TraceLink drains its queue according to a recorded cellular trace: at each
// delivery opportunity up to Opportunity.Bytes of whole packets leave the
// queue. Unused opportunity bytes are wasted, as in a real cellular
// scheduler (and in mahimahi's trace replay). This is the paper's OPNET
// traffic shaper: "The channel traces are fed into a traffic shaper and
// replayed upon packet arrival."
type TraceLink struct {
	sim   *Sim
	queue Queue
	dst   Receiver
	rng   *rand.Rand
	tr    *trace.Trace

	propDly  time.Duration
	lossProb float64
	loop     bool
	obs      *linkObs
	// headServed is how many bytes of the head packet have already been
	// served by earlier opportunities (RLC-style segmentation: a packet may
	// span several transmission opportunities).
	headServed int

	// Delivered counts packets that exited the link; Lost counts loss
	// injections; WastedBytes counts unused opportunity capacity.
	Delivered   int64
	Lost        int64
	WastedBytes int64
}

// NewTraceLink returns a link that replays tr. When loop is true the trace
// repeats indefinitely; otherwise the channel goes silent when the trace
// ends.
func NewTraceLink(sim *Sim, q Queue, tr *trace.Trace, prop time.Duration, dst Receiver, loop bool, seed int64) *TraceLink {
	if len(tr.Ops) == 0 {
		panic("netsim: trace has no delivery opportunities")
	}
	l := &TraceLink{
		sim:     sim,
		queue:   q,
		dst:     dst,
		rng:     rand.New(rand.NewSource(seed)),
		tr:      tr,
		propDly: prop,
		loop:    loop,
	}
	l.scheduleOp(0, 0)
	return l
}

// SetLossProb changes the i.i.d. loss probability in [0, 1].
func (l *TraceLink) SetLossProb(p float64) {
	if p < 0 || p > 1 {
		panic("netsim: loss probability out of range")
	}
	l.lossProb = p
}

// Queue implements Link.
func (l *TraceLink) Queue() Queue { return l.queue }

// Instrument attaches an observer for packet-level tracing and link
// counters; run labels the trial.
func (l *TraceLink) Instrument(o *obs.Observer, run int64) {
	l.obs = newLinkObs(o, run)
}

// Send implements Link.
func (l *TraceLink) Send(p *Packet) {
	if !l.queue.Enqueue(p, l.sim.Now()) {
		if l.obs != nil {
			l.obs.onDrop(l.sim.Now(), p, "queue")
		}
		return
	}
	if l.obs != nil {
		l.obs.onEnqueue(l.sim.Now(), p, l.queue.Len(), l.queue.Bytes())
	}
}

func (l *TraceLink) scheduleOp(idx int, base time.Duration) {
	if idx >= len(l.tr.Ops) {
		if !l.loop || l.tr.Duration <= 0 {
			return
		}
		idx = 0
		base += l.tr.Duration
	}
	op := l.tr.Ops[idx]
	l.sim.Schedule(base+op.At, func() {
		l.serve(op.Bytes)
		l.scheduleOp(idx+1, base)
	})
}

func (l *TraceLink) serve(budget int) {
	for budget > 0 {
		head := l.peek()
		if head == nil {
			// Idle channel: this opportunity's capacity is lost, the
			// non-work-conserving property of a cellular scheduler.
			l.WastedBytes += int64(budget)
			return
		}
		need := head.Bytes - l.headServed
		if need > budget {
			// Partial service; the packet completes in a later opportunity
			// (RLC segmentation).
			l.headServed += budget
			return
		}
		budget -= need
		l.headServed = 0
		p := l.queue.Dequeue(l.sim.Now())
		if l.lossProb > 0 && l.rng.Float64() < l.lossProb {
			l.Lost++
			if l.obs != nil {
				l.obs.onDrop(l.sim.Now(), p, "loss")
			}
			continue
		}
		l.Delivered++
		if l.obs != nil {
			l.obs.onDeliver(l.sim.Now(), p)
		}
		pkt := p
		l.sim.After(l.propDly, func() { l.dst.Receive(pkt) })
	}
}

// peek returns the head packet without removing it. Queue has no Peek, so
// TraceLink relies on the concrete types used in this package.
func (l *TraceLink) peek() *Packet {
	switch q := l.queue.(type) {
	case *DropTail:
		if len(q.fifo) == 0 {
			return nil
		}
		return q.fifo[0]
	case *RED:
		if len(q.fifo) == 0 {
			return nil
		}
		return q.fifo[0]
	default:
		panic("netsim: TraceLink requires a DropTail or RED queue")
	}
}
