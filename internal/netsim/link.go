package netsim

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/obs"
	"repro/internal/snap"
	"repro/internal/stats"
	"repro/internal/trace"
)

// Receiver consumes packets that exit a link.
type Receiver interface {
	Receive(p *Packet)
}

// ReceiverFunc adapts a function to the Receiver interface.
type ReceiverFunc func(p *Packet)

// Receive implements Receiver.
func (f ReceiverFunc) Receive(p *Packet) { f(p) }

// Link is a bottleneck entry point: sources push packets in, the link queues
// and serves them, and delivered packets reach the configured Receiver.
type Link interface {
	Send(p *Packet)
	// Queue exposes the link's buffer (for instrumentation).
	Queue() Queue
}

// linkCore is the state and logic shared by FixedLink and TraceLink: the
// queue, the destination, i.i.d. loss, propagation, counters, and the obs
// tap. Concentrating the enqueue path (ingress) and the loss/delivery path
// (finish) here means each packet release point exists in exactly one place,
// instead of once per link type.
type linkCore struct {
	sim   *Sim
	queue Queue
	dst   Receiver
	rng   *rand.Rand
	// src is the counting source behind rng, making the loss-draw stream
	// position checkpointable (see snapshot.go).
	src *snap.Source

	propDly  time.Duration
	lossProb float64
	obs      *linkObs

	// Delivered counts packets that exited the link.
	Delivered int64
	// Lost counts packets dropped by loss injection.
	Lost int64
}

// ingress enqueues p, reporting false when the queue rejected it. A rejected
// packet's life ends here: it is released after the obs drop record.
func (c *linkCore) ingress(p *Packet) bool {
	AssertLive(p, "link ingress")
	if !c.queue.Enqueue(p, c.sim.Now()) {
		if c.obs != nil {
			c.obs.onDrop(c.sim.Now(), p, "queue")
		}
		c.sim.FreePacket(p)
		return false
	}
	if c.obs != nil {
		c.obs.onEnqueue(c.sim.Now(), p, c.queue.Len(), c.queue.Bytes())
	}
	return true
}

// finish completes service of p: apply the i.i.d. loss draw and either end
// the packet's life (loss) or count the delivery and schedule propagation to
// the destination. Counter, obs, and scheduling order match the historical
// per-link code exactly — the loss RNG is only consulted when lossProb > 0.
func (c *linkCore) finish(p *Packet) {
	if c.lossProb > 0 && c.rng.Float64() < c.lossProb {
		c.Lost++
		if c.obs != nil {
			c.obs.onDrop(c.sim.Now(), p, "loss")
		}
		c.sim.FreePacket(p)
		return
	}
	c.Delivered++
	// Serialization ends here: charge the open interval (queue wait when the
	// packet cleared in one trace opportunity, serialization otherwise) and
	// open the propagation interval.
	p.MarkDelay(c.sim.Now(), stats.DelayPropagate)
	if c.obs != nil {
		c.obs.onDeliver(c.sim.Now(), p)
	}
	c.sim.SchedulePacketAfter(c.propDly, c.dst, p)
}

// SetPropDelay changes the one-way propagation delay for future deliveries.
func (c *linkCore) SetPropDelay(d time.Duration) { c.propDly = d }

// SetLossProb changes the i.i.d. loss probability in [0, 1].
func (c *linkCore) SetLossProb(p float64) {
	if p < 0 || p > 1 {
		panic("netsim: loss probability out of range")
	}
	c.lossProb = p
}

// Queue implements Link.
func (c *linkCore) Queue() Queue { return c.queue }

// Instrument attaches an observer for packet-level tracing and link
// counters; run labels the trial. A nil observer leaves the link on its
// disabled fast path.
func (c *linkCore) Instrument(o *obs.Observer, run int64) {
	c.obs = newLinkObs(o, run)
}

// FixedLink serializes packets at a configurable rate with a propagation
// delay and an optional i.i.d. loss probability. Rate, delay, and loss can
// change at runtime — the mechanism behind the paper's §7 micro-evaluations
// where "every five seconds the whole network parameters, i.e. link
// capacity, network RTT, and loss rate, are changed."
type FixedLink struct {
	linkCore

	rateBps float64
	busy    bool
	// serving is the packet currently on the wire; servedFn is the one
	// serialization-complete callback reused for every packet, so serving a
	// packet schedules no closures. servedID is its registry id.
	serving  *Packet
	servedFn func()
	servedID int64
}

// NewFixedLink returns a link serving q at rateMbps with the given one-way
// propagation delay, delivering to dst.
func NewFixedLink(sim *Sim, q Queue, rateMbps float64, prop time.Duration, dst Receiver, seed int64) *FixedLink {
	if rateMbps <= 0 {
		panic("netsim: link rate must be positive")
	}
	src := snap.NewSource(seed)
	l := &FixedLink{
		linkCore: linkCore{
			sim:     sim,
			queue:   q,
			dst:     dst,
			rng:     rand.New(src),
			src:     src,
			propDly: prop,
		},
		rateBps: rateMbps * 1e6,
	}
	l.servedFn = l.onServed
	l.servedID = sim.RegisterFunc(l.servedFn)
	return l
}

// SetRateMbps changes the link capacity; it applies to the next
// serialization.
func (l *FixedLink) SetRateMbps(m float64) {
	if m <= 0 {
		panic("netsim: link rate must be positive")
	}
	l.rateBps = m * 1e6
}

// RateMbps returns the current capacity.
func (l *FixedLink) RateMbps() float64 { return l.rateBps / 1e6 }

// Send implements Link.
func (l *FixedLink) Send(p *Packet) {
	if !l.ingress(p) {
		return
	}
	if !l.busy {
		l.serveNext()
	}
}

func (l *FixedLink) serveNext() {
	p := l.queue.Dequeue(l.sim.Now())
	if p == nil {
		l.busy = false
		return
	}
	l.busy = true
	l.serving = p
	p.MarkDelay(l.sim.Now(), stats.DelaySerialize)
	ser := time.Duration(float64(p.Bytes*8) / l.rateBps * float64(time.Second))
	l.sim.afterTagged(ser, l.servedID, l.servedFn)
}

// onServed fires when the serving packet's last bit leaves the sender:
// finish it (loss or propagation), then start on the next queued packet.
func (l *FixedLink) onServed() {
	p := l.serving
	l.serving = nil
	l.finish(p)
	l.serveNext()
}

// TraceLink drains its queue according to a recorded cellular trace: at each
// delivery opportunity up to Opportunity.Bytes of whole packets leave the
// queue. Unused opportunity bytes are wasted, as in a real cellular
// scheduler (and in mahimahi's trace replay). This is the paper's OPNET
// traffic shaper: "The channel traces are fed into a traffic shaper and
// replayed upon packet arrival."
type TraceLink struct {
	linkCore

	tr   *trace.Trace
	loop bool
	// headServed is how many bytes of the head packet have already been
	// served by earlier opportunities (RLC-style segmentation: a packet may
	// span several transmission opportunities).
	headServed int
	// opIdx/opBase locate the pending delivery opportunity; opFn is the one
	// callback reused for every opportunity, so trace replay schedules no
	// closures. opID is its registry id.
	opIdx  int
	opBase time.Duration
	opFn   func()
	opID   int64

	// WastedBytes counts unused opportunity capacity.
	WastedBytes int64
}

// NewTraceLink returns a link that replays tr. When loop is true the trace
// repeats indefinitely; otherwise the channel goes silent when the trace
// ends.
func NewTraceLink(sim *Sim, q Queue, tr *trace.Trace, prop time.Duration, dst Receiver, loop bool, seed int64) *TraceLink {
	if len(tr.Ops) == 0 {
		panic("netsim: trace has no delivery opportunities")
	}
	src := snap.NewSource(seed)
	l := &TraceLink{
		linkCore: linkCore{
			sim:     sim,
			queue:   q,
			dst:     dst,
			rng:     rand.New(src),
			src:     src,
			propDly: prop,
		},
		tr:   tr,
		loop: loop,
	}
	l.opFn = l.runOp
	l.opID = sim.RegisterFunc(l.opFn)
	l.scheduleOp(0, 0)
	return l
}

// Send implements Link.
func (l *TraceLink) Send(p *Packet) {
	l.ingress(p)
}

func (l *TraceLink) scheduleOp(idx int, base time.Duration) {
	if idx >= len(l.tr.Ops) {
		if !l.loop || l.tr.Duration <= 0 {
			return
		}
		idx = 0
		base += l.tr.Duration
	}
	l.opIdx, l.opBase = idx, base
	l.sim.scheduleTagged(base+l.tr.Ops[idx].At, l.opID, l.opFn)
}

// runOp serves the pending delivery opportunity and schedules the next one.
func (l *TraceLink) runOp() {
	op := l.tr.Ops[l.opIdx]
	l.serve(op.Bytes)
	l.scheduleOp(l.opIdx+1, l.opBase)
}

func (l *TraceLink) serve(budget int) {
	for budget > 0 {
		head := l.peek()
		if head == nil {
			// Idle channel: this opportunity's capacity is lost, the
			// non-work-conserving property of a cellular scheduler.
			l.WastedBytes += int64(budget)
			return
		}
		need := head.Bytes - l.headServed
		if need > budget {
			// Partial service; the packet completes in a later opportunity
			// (RLC segmentation). The first byte served marks the end of
			// queue wait — serialization now spans opportunities until the
			// finishing dequeue. A packet fully served within one opportunity
			// never reaches this branch and charges zero serialization.
			if l.headServed == 0 {
				head.MarkDelay(l.sim.Now(), stats.DelaySerialize)
			}
			l.headServed += budget
			return
		}
		budget -= need
		l.headServed = 0
		l.finish(l.queue.Dequeue(l.sim.Now()))
	}
}

// peek returns the head packet without removing it. Queue has no Peek, so
// TraceLink relies on the concrete types used in this package.
func (l *TraceLink) peek() *Packet {
	switch q := l.queue.(type) {
	case *DropTail:
		return q.Peek()
	case *RED:
		return q.Peek()
	default:
		panic("netsim: TraceLink requires a DropTail or RED queue")
	}
}

// snapshot writes the shared link state: tunable parameters (rate/delay/loss
// experiments mutate them mid-run), the loss RNG position, the delivery
// counters, and the queue contents.
func (c *linkCore) snapshot(e *snap.Encoder) {
	e.Tag("linkcore")
	if c.src == nil {
		e.Fail(fmt.Errorf("netsim: link has no checkpointable RNG; construct with NewFixedLink/NewTraceLink"))
		return
	}
	e.Dur(c.propDly)
	e.F64(c.lossProb)
	c.src.Snapshot(e)
	e.I64(c.Delivered)
	e.I64(c.Lost)
	snapshotQueue(e, c.queue)
}

// restore consumes snapshot's fields into the rebuilt core.
func (c *linkCore) restore(d *snap.Decoder) {
	d.Expect("linkcore")
	if c.src == nil {
		d.Fail(fmt.Errorf("netsim: link has no checkpointable RNG; construct with NewFixedLink/NewTraceLink"))
		return
	}
	c.propDly = d.Dur()
	c.lossProb = d.F64()
	c.src.Restore(d)
	c.Delivered = d.I64()
	c.Lost = d.I64()
	restoreQueue(d, c.queue)
}

// Snapshot implements Snapshotter: the core state plus the serializer — the
// current rate, the busy flag, and the packet on the wire. The pending
// serialization-complete event itself is restored with the heap.
func (l *FixedLink) Snapshot(e *snap.Encoder) {
	e.Tag("fixedlink")
	l.linkCore.snapshot(e)
	e.F64(l.rateBps)
	e.Bool(l.busy)
	SnapshotPacket(e, l.serving)
}

// Restore implements Snapshotter.
func (l *FixedLink) Restore(d *snap.Decoder) {
	d.Expect("fixedlink")
	l.linkCore.restore(d)
	l.rateBps = d.F64()
	l.busy = d.Bool()
	l.serving = RestorePacket(d)
}

// Snapshot implements Snapshotter: the core state plus trace replay
// position — which opportunity is pending, the loop base offset, partial
// service of the head packet, and wasted capacity. The pending opportunity
// event itself is restored with the heap.
func (l *TraceLink) Snapshot(e *snap.Encoder) {
	e.Tag("tracelink")
	l.linkCore.snapshot(e)
	e.Int(l.headServed)
	e.Int(l.opIdx)
	e.Dur(l.opBase)
	e.I64(l.WastedBytes)
}

// Restore implements Snapshotter.
func (l *TraceLink) Restore(d *snap.Decoder) {
	d.Expect("tracelink")
	l.linkCore.restore(d)
	l.headServed = d.Int()
	l.opIdx = d.Int()
	l.opBase = d.Dur()
	l.WastedBytes = d.I64()
}
