//go:build pooldebug

package netsim

import (
	"strings"
	"testing"
	"time"
)

// mustPanic runs fn and returns the recovered panic message, failing the
// test if fn returns normally.
func mustPanic(t *testing.T, what string, fn func()) string {
	t.Helper()
	var msg string
	func() {
		defer func() {
			if r := recover(); r != nil {
				msg = r.(string)
			}
		}()
		fn()
		t.Fatalf("%s did not panic under pooldebug", what)
	}()
	return msg
}

// TestPoolDebugDoubleReleasePanics: releasing the same packet twice is the
// classic pool corruption — under pooldebug it must die loudly, not hand the
// same pointer to two owners.
func TestPoolDebugDoubleReleasePanics(t *testing.T) {
	if !PoolDebug {
		t.Fatal("pooldebug tag not active")
	}
	sim := NewSim()
	p := sim.NewPacket(1, 1, 100, 0, 0)
	sim.FreePacket(p)
	msg := mustPanic(t, "double release", func() { sim.FreePacket(p) })
	if !strings.Contains(msg, "double release") {
		t.Fatalf("panic message %q does not name the double release", msg)
	}
}

// TestPoolDebugUseAfterReleasePanics: a freed packet handed to any AssertLive
// checkpoint (queues, links, sinks) must panic with the checkpoint's context
// string, and the poisoned fields make the stale pointer obvious in dumps.
func TestPoolDebugUseAfterReleasePanics(t *testing.T) {
	sim := NewSim()
	p := sim.NewPacket(2, 9, 1400, time.Second, 3)
	sim.FreePacket(p)
	if p.Flow != -0xDEAD || p.Seq != -0xDEAD || p.Bytes != -0xDEAD || p.SentAt != -1 {
		t.Fatalf("released packet not poisoned: %+v", *p)
	}
	msg := mustPanic(t, "use after release", func() { AssertLive(p, "test checkpoint") })
	if !strings.Contains(msg, "test checkpoint") {
		t.Fatalf("panic message %q does not carry the checkpoint context", msg)
	}
	// The real checkpoints fire too: enqueueing a freed packet panics.
	q := NewDropTail(1 << 16)
	mustPanic(t, "enqueue after release", func() { q.Enqueue(p, 0) })
}

// TestPoolDebugRecycledPacketIsLive: a recycled packet must come back fully
// live — the debug flag cleared, fields rewritten — or the first reuse after
// any release would trip the checkpoints.
func TestPoolDebugRecycledPacketIsLive(t *testing.T) {
	sim := NewSim()
	p := sim.NewPacket(1, 1, 100, 0, 0)
	sim.FreePacket(p)
	q := sim.NewPacket(3, 4, 500, time.Millisecond, 2)
	if q != p {
		t.Fatal("expected LIFO recycle of the released packet")
	}
	AssertLive(q, "recycled") // must not panic
	if q.Flow != 3 || q.Seq != 4 || q.Bytes != 500 {
		t.Fatalf("recycled packet keeps poison: %+v", *q)
	}
}
