package netsim

import (
	"testing"
	"time"
)

// BenchmarkScheduleRun measures raw event-loop throughput: push b.N
// one-shot events in time order and drain them.
func BenchmarkScheduleRun(b *testing.B) {
	s := NewSim()
	fn := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Schedule(time.Duration(i), fn)
	}
	s.Run(time.Duration(b.N))
}

// BenchmarkScheduleRunDeep measures event-loop throughput with a standing
// population of 1024 pending events, so every push and pop walks a
// non-trivial heap — the regime the simulator actually runs in (per-packet
// service, propagation, ack, RTO events all in flight at once).
func BenchmarkScheduleRunDeep(b *testing.B) {
	s := NewSim()
	fn := func() {}
	const standing = 1024
	for i := 0; i < standing; i++ {
		s.Schedule(time.Duration(i), fn)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Pop the earliest event and push a replacement at the back, keeping
		// the heap at a constant depth.
		s.Schedule(time.Duration(standing+i), fn)
		s.Run(time.Duration(i + 1))
	}
}

// BenchmarkEveryTick measures the recurring-timer path: one Every timer
// ticking b.N times, the pattern behind every protocol's epoch tick and the
// RTO scanner.
func BenchmarkEveryTick(b *testing.B) {
	s := NewSim()
	ticks := 0
	stop := s.Every(time.Millisecond, func() { ticks++ })
	defer stop()
	b.ReportAllocs()
	b.ResetTimer()
	s.Run(time.Duration(b.N) * time.Millisecond)
	if ticks < b.N {
		b.Fatalf("ticks = %d, want >= %d", ticks, b.N)
	}
}
