package cellular

import (
	"math"
	"testing"
	"time"

	"repro/internal/trace"
)

func TestTechAndOperatorStrings(t *testing.T) {
	if Tech3G.String() != "3G" || TechLTE.String() != "LTE" {
		t.Error("tech names wrong")
	}
	if OperatorA.String() != "OpA" || OperatorB.String() != "OpB" {
		t.Error("operator names wrong")
	}
	if Tech(99).String() == "" || Operator(99).String() == "" {
		t.Error("unknown values should still stringify")
	}
}

func TestScenarioList(t *testing.T) {
	scs := Scenarios()
	if len(scs) != 7 {
		t.Fatalf("scenarios = %d, want 7 (per §5.3)", len(scs))
	}
	seen := map[string]bool{}
	for _, s := range scs {
		if s.Name == "" || seen[s.Name] {
			t.Fatalf("duplicate or empty scenario name %q", s.Name)
		}
		seen[s.Name] = true
		if s.SlowTau <= 0 || s.SlowSigmaDB <= 0 || s.RateFactor <= 0 {
			t.Fatalf("scenario %q has non-positive parameters", s.Name)
		}
	}
}

func TestMobilityShortensCoherence(t *testing.T) {
	if HighwayDriving.SlowTau >= CampusStationary.SlowTau {
		t.Error("driving should have shorter coherence than stationary")
	}
	if HighwayDriving.SlowSigmaDB <= CampusStationary.SlowSigmaDB {
		t.Error("driving should have wider fading than stationary")
	}
}

func TestTraceMeanRateMatchesConfig(t *testing.T) {
	// The slow fade has a 20 s coherence time, so short traces legitimately
	// wander from the configured mean; average over a long horizon.
	for _, tech := range []Tech{Tech3G, TechLTE} {
		m := NewModel(Config{Tech: tech, Scenario: CampusStationary, Seed: 1})
		tr := m.Trace(6 * time.Minute)
		if err := tr.Validate(); err != nil {
			t.Fatalf("%v: invalid trace: %v", tech, err)
		}
		got := tr.MeanMbps()
		want := m.MeanMbps()
		if math.Abs(got-want)/want > 0.25 {
			t.Errorf("%v: mean rate %v Mbps, want within 25%% of %v", tech, got, want)
		}
	}
}

func TestMeanMbpsOverride(t *testing.T) {
	m := NewModel(Config{Tech: Tech3G, Scenario: CampusStationary, MeanMbps: 20, Seed: 1})
	if got := m.MeanMbps(); math.Abs(got-20) > 1e-9 {
		t.Fatalf("override = %v, want 20", got)
	}
	tr := m.Trace(30 * time.Second)
	if got := tr.MeanMbps(); math.Abs(got-20)/20 > 0.3 {
		t.Fatalf("generated %v Mbps, want ~20", got)
	}
}

func TestDefaultScenarioApplied(t *testing.T) {
	m := NewModel(Config{Tech: TechLTE, Seed: 3})
	tr := m.Trace(time.Second)
	if tr.Name == "" {
		t.Fatal("trace should be named")
	}
}

func TestDeterminism(t *testing.T) {
	a := NewModel(Config{Tech: TechLTE, Scenario: CityDriving, Seed: 42}).Trace(5 * time.Second)
	b := NewModel(Config{Tech: TechLTE, Scenario: CityDriving, Seed: 42}).Trace(5 * time.Second)
	if len(a.Ops) != len(b.Ops) {
		t.Fatalf("same seed, different op counts: %d vs %d", len(a.Ops), len(b.Ops))
	}
	for i := range a.Ops {
		if a.Ops[i] != b.Ops[i] {
			t.Fatalf("same seed diverges at op %d", i)
		}
	}
	c := NewModel(Config{Tech: TechLTE, Scenario: CityDriving, Seed: 43}).Trace(5 * time.Second)
	if len(c.Ops) == len(a.Ops) {
		same := true
		for i := range a.Ops {
			if a.Ops[i] != c.Ops[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different seeds produced identical traces")
		}
	}
}

func TestSuccessiveSegmentsDiffer(t *testing.T) {
	m := NewModel(Config{Tech: Tech3G, Scenario: CampusStationary, Seed: 7})
	a := m.Trace(2 * time.Second)
	b := m.Trace(2 * time.Second)
	if len(a.Ops) == 0 || len(b.Ops) == 0 {
		t.Fatal("empty segments")
	}
	if len(a.Ops) == len(b.Ops) && a.Ops[0] == b.Ops[0] && a.Ops[len(a.Ops)-1] == b.Ops[len(b.Ops)-1] {
		t.Fatal("successive segments look identical; fading state not continued")
	}
}

func TestLTEBurstsSmallerAndMoreFrequentThan3G(t *testing.T) {
	// Paper Fig. 2: "The LTE networks exhibit more frequent smaller bursts."
	dur := 60 * time.Second
	tr3 := NewModel(Config{Tech: Tech3G, Operator: OperatorB, Scenario: CampusStationary, MeanMbps: 8, Seed: 5}).Trace(dur)
	trL := NewModel(Config{Tech: TechLTE, Operator: OperatorB, Scenario: CampusStationary, MeanMbps: 8, Seed: 5}).Trace(dur)
	s3, ia3 := BurstStats(tr3, 200*time.Microsecond)
	sL, iaL := BurstStats(trL, 200*time.Microsecond)
	if mean(s3) <= mean(sL) {
		t.Errorf("3G bursts (%.0f B) should exceed LTE bursts (%.0f B)", mean(s3), mean(sL))
	}
	if meanDur(ia3) <= meanDur(iaL) {
		t.Errorf("3G inter-arrival (%v) should exceed LTE (%v)", meanDur(ia3), meanDur(iaL))
	}
}

func TestMobilityWidensBurstVariability(t *testing.T) {
	// Paper §3: "mobility causes both burst size and inter-arrival times to
	// vary more widely." Compare coefficient of variation of windowed rate.
	dur := 120 * time.Second
	stat := NewModel(Config{Tech: Tech3G, Scenario: CampusStationary, MeanMbps: 10, Seed: 9}).Trace(dur)
	drive := NewModel(Config{Tech: Tech3G, Scenario: HighwayDriving, MeanMbps: 10, Seed: 9}).Trace(dur)
	cvS := cv(stat.WindowedMbps(500 * time.Millisecond))
	cvD := cv(drive.WindowedMbps(500 * time.Millisecond))
	if cvD <= cvS {
		t.Errorf("driving CV (%.3f) should exceed stationary CV (%.3f)", cvD, cvS)
	}
}

func TestBurstStatsMergesWithinGap(t *testing.T) {
	tr := &trace.Trace{Duration: time.Second, Ops: []trace.Opportunity{
		{At: 0, Bytes: 100},
		{At: 50 * time.Microsecond, Bytes: 200}, // merged
		{At: 10 * time.Millisecond, Bytes: 300}, // new burst
		{At: 30 * time.Millisecond, Bytes: 400}, // new burst
	}}
	sizes, ia := BurstStats(tr, time.Millisecond)
	if len(sizes) != 3 {
		t.Fatalf("bursts = %d, want 3", len(sizes))
	}
	if sizes[0] != 300 {
		t.Fatalf("merged burst = %v, want 300", sizes[0])
	}
	if len(ia) != 2 || ia[0] != 10*time.Millisecond || ia[1] != 20*time.Millisecond {
		t.Fatalf("interarrivals = %v", ia)
	}
}

func TestBurstStatsEmpty(t *testing.T) {
	s, ia := BurstStats(&trace.Trace{}, time.Millisecond)
	if s != nil || ia != nil {
		t.Fatal("empty trace should yield nil stats")
	}
}

func TestBurstSizesVary(t *testing.T) {
	// The channel must be bursty: burst sizes should have high dispersion
	// (paper: "variable burst sizes and burst inter-arrival periods").
	tr := NewModel(Config{Tech: Tech3G, Scenario: CampusStationary, Seed: 11}).Trace(60 * time.Second)
	sizes, ia := BurstStats(tr, 200*time.Microsecond)
	if len(sizes) < 100 {
		t.Fatalf("too few bursts: %d", len(sizes))
	}
	if cv(sizes) < 0.3 {
		t.Errorf("burst size CV = %.3f, want bursty (>0.3)", cv(sizes))
	}
	iaF := make([]float64, len(ia))
	for i, d := range ia {
		iaF[i] = d.Seconds()
	}
	if cv(iaF) < 0.3 {
		t.Errorf("inter-arrival CV = %.3f, want bursty (>0.3)", cv(iaF))
	}
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

func meanDur(ds []time.Duration) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	var s time.Duration
	for _, d := range ds {
		s += d
	}
	return s / time.Duration(len(ds))
}

func cv(xs []float64) float64 {
	m := mean(xs)
	if m == 0 {
		return 0
	}
	var v float64
	for _, x := range xs {
		v += (x - m) * (x - m)
	}
	v /= float64(len(xs))
	return math.Sqrt(v) / m
}
