package cellular

import (
	"fmt"
	"math/rand"
	"sort"
	"time"
)

// Metro topology builder: N sectors × M users for the city-scale experiments
// the ROADMAP north-star calls for. A Metro is pure data — which sector each
// user calls home, which §5.3 scenario drives their channel and mobility,
// and a deterministic inter-cell handover schedule derived from that
// scenario's HandoverEvery/HandoverStall. The experiments harness maps each
// sector onto one cell of a netsim.Mesh (NeighborDelay becomes the mesh
// lookahead) and replays the handover schedules as user re-homing plus
// delivery stalls.

// DefaultNeighborDelay is the inter-sector propagation delay assumed when a
// MetroConfig leaves NeighborDelay zero — the order of an LTE X2 backhaul
// hop between neighboring eNodeBs.
const DefaultNeighborDelay = 3 * time.Millisecond

// Handover is one scheduled inter-cell handover for a user: at At the user
// re-homes to sector To, and deliveries freeze for Stall while the target
// cell takes over (the stall-then-burst signature PR 4's fault layer models
// on a single link).
type Handover struct {
	At    time.Duration
	To    int
	Stall time.Duration
}

// MetroUser is one subscriber: a home sector, the mobility scenario shaping
// both their channel and their handover cadence, and the precomputed
// handover schedule.
type MetroUser struct {
	ID       int
	Home     int
	Scenario Scenario
	// Handovers is sorted by At; empty for stationary scenarios.
	Handovers []Handover
	// Start and Stop bound the user's session when churn is enabled
	// (MetroConfig.ChurnFrac): the flow arrives at Start and departs at Stop.
	// Zero values mean the session covers the whole trial — Start 0 is
	// present from the beginning, Stop 0 never departs.
	Start, Stop time.Duration
}

// SectorAt returns the sector serving the user at time t under the
// handover schedule.
func (u *MetroUser) SectorAt(t time.Duration) int {
	s := u.Home
	for _, h := range u.Handovers {
		if h.At > t {
			break
		}
		s = h.To
	}
	return s
}

// MetroSector is one cell site: its channel model configuration, seeded so
// every sector fades independently but reproducibly.
type MetroSector struct {
	ID      int
	Channel Config
}

// Metro is a generated multi-cell topology.
type Metro struct {
	Sectors []MetroSector
	Users   []MetroUser
	// NeighborDelay is the inter-sector propagation delay — the conservative
	// lookahead of the mesh the topology is simulated on.
	NeighborDelay time.Duration
}

// MetroConfig parameterizes NewMetro.
type MetroConfig struct {
	// Sectors is the number of cell sites (N); Users the number of
	// subscribers (M) spread round-robin across them.
	Sectors, Users int
	Tech           Tech
	Operator       Operator
	// MeanMbps overrides each sector's default aggregate mean rate when
	// positive.
	MeanMbps float64
	// NeighborDelay is the inter-sector propagation delay; zero selects
	// DefaultNeighborDelay. It must be positive after defaulting: a
	// zero-delay inter-cell link cannot be conservatively synchronized.
	NeighborDelay time.Duration
	// Horizon bounds the generated handover schedules (default 60 s).
	Horizon time.Duration
	// HandoverScale multiplies the scenarios' handover spacing; zero means
	// 1.0 (natural cadence) and values in (0, 1) compress it so short trials
	// still exercise inter-cell mobility. Stall durations are unaffected.
	HandoverScale float64
	// ChurnFrac is the fraction of users that churn: instead of being
	// present for the whole trial they arrive mid-run and/or depart early
	// (session windows drawn by churnWindow). Zero — the default — draws no
	// churn randomness at all, so topologies generated before churn existed
	// are bit-for-bit unchanged.
	ChurnFrac float64
	// Seed makes the whole topology — scenario assignment, channel seeds,
	// handover times — a pure function of the configuration.
	Seed int64
}

// NewMetro generates a topology. All randomness is drawn from cfg.Seed in a
// fixed order, so equal configs yield deeply equal topologies.
func NewMetro(cfg MetroConfig) (*Metro, error) {
	if cfg.Sectors <= 0 {
		return nil, fmt.Errorf("cellular: metro needs at least one sector, got %d", cfg.Sectors)
	}
	if cfg.Users <= 0 {
		return nil, fmt.Errorf("cellular: metro needs at least one user, got %d", cfg.Users)
	}
	if cfg.NeighborDelay == 0 {
		cfg.NeighborDelay = DefaultNeighborDelay
	}
	if cfg.NeighborDelay < 0 {
		return nil, fmt.Errorf("cellular: negative neighbor delay %v", cfg.NeighborDelay)
	}
	if cfg.Horizon == 0 {
		cfg.Horizon = 60 * time.Second
	}
	if cfg.Horizon < 0 {
		return nil, fmt.Errorf("cellular: negative horizon %v", cfg.Horizon)
	}
	if cfg.HandoverScale == 0 {
		cfg.HandoverScale = 1
	}
	if cfg.HandoverScale < 0 {
		return nil, fmt.Errorf("cellular: negative handover scale %g", cfg.HandoverScale)
	}
	if cfg.ChurnFrac < 0 || cfg.ChurnFrac > 1 {
		return nil, fmt.Errorf("cellular: churn fraction %g outside [0, 1]", cfg.ChurnFrac)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	m := &Metro{NeighborDelay: cfg.NeighborDelay}
	for s := 0; s < cfg.Sectors; s++ {
		m.Sectors = append(m.Sectors, MetroSector{
			ID: s,
			Channel: Config{
				Tech:     cfg.Tech,
				Operator: cfg.Operator,
				MeanMbps: cfg.MeanMbps,
				Seed:     rng.Int63(),
			},
		})
	}
	scs := Scenarios()
	for u := 0; u < cfg.Users; u++ {
		user := MetroUser{
			ID:       u,
			Home:     u % cfg.Sectors,
			Scenario: scs[rng.Intn(len(scs))],
		}
		user.Handovers = handoverSchedule(rng, user.Scenario, user.Home, cfg.Sectors, cfg.Horizon, cfg.HandoverScale)
		// Churn draws come strictly after the per-user scenario and handover
		// draws, and only when churn is enabled: a ChurnFrac-zero config
		// consumes the exact RNG stream it always did.
		if cfg.ChurnFrac > 0 && rng.Float64() < cfg.ChurnFrac {
			user.Start, user.Stop = churnWindow(rng, cfg.Horizon)
		}
		m.Users = append(m.Users, user)
	}
	return m, nil
}

// churnWindow draws one churning user's session: arrival uniform over the
// first half of the horizon, session length uniform in [horizon/4,
// 3·horizon/4]. Every churner is therefore active for at least a quarter of
// the trial, arrivals land mid-run, and sessions whose departure would fall
// past the horizon simply run to the end (Stop 0 — no departure event).
func churnWindow(rng *rand.Rand, horizon time.Duration) (start, stop time.Duration) {
	start = time.Duration(rng.Int63n(int64(horizon/2) + 1))
	length := horizon/4 + time.Duration(rng.Int63n(int64(horizon/2)+1))
	stop = start + length
	if stop >= horizon {
		stop = 0
	}
	return start, stop
}

// handoverSchedule rolls a user's handover train out to the horizon: events
// spaced around the scenario's HandoverEvery (±50% jitter), each moving to a
// uniformly chosen different sector with a stall jittered ±30% around
// HandoverStall. Stationary scenarios (HandoverEvery == 0) never hand over;
// single-sector metros have nowhere to go.
func handoverSchedule(rng *rand.Rand, sc Scenario, home, sectors int, horizon time.Duration, scale float64) []Handover {
	if sc.HandoverEvery <= 0 || sectors < 2 {
		return nil
	}
	every := time.Duration(float64(sc.HandoverEvery) * scale)
	if every <= 0 {
		every = time.Millisecond
	}
	var hs []Handover
	cur := home
	at := time.Duration(0)
	for {
		at += every/2 + time.Duration(rng.Int63n(int64(every)))
		if at > horizon {
			break
		}
		to := rng.Intn(sectors - 1)
		if to >= cur {
			to++ // uniform over sectors != cur
		}
		stall := sc.HandoverStall * time.Duration(70+rng.Intn(61)) / 100
		hs = append(hs, Handover{At: at, To: to, Stall: stall})
		cur = to
	}
	return hs
}

// UsersBySector groups user indices by home sector, in user order — the
// iteration shape the harness builds per-cell flows from.
func (m *Metro) UsersBySector() [][]int {
	by := make([][]int, len(m.Sectors))
	for i, u := range m.Users {
		by[u.Home] = append(by[u.Home], i)
	}
	return by
}

// Validate checks the invariants consumers rely on; NewMetro output always
// passes, and hand-built topologies can self-check before simulation.
func (m *Metro) Validate() error {
	if len(m.Sectors) == 0 {
		return fmt.Errorf("cellular: metro has no sectors")
	}
	if m.NeighborDelay <= 0 {
		return fmt.Errorf("cellular: metro neighbor delay %v must be positive (zero-delay inter-cell links cannot be synchronized)", m.NeighborDelay)
	}
	for i, s := range m.Sectors {
		if s.ID != i {
			return fmt.Errorf("cellular: sector %d has ID %d", i, s.ID)
		}
	}
	for _, u := range m.Users {
		if u.Home < 0 || u.Home >= len(m.Sectors) {
			return fmt.Errorf("cellular: user %d homed on unknown sector %d", u.ID, u.Home)
		}
		if u.Start < 0 {
			return fmt.Errorf("cellular: user %d has negative session start %v", u.ID, u.Start)
		}
		if u.Stop != 0 && u.Stop <= u.Start {
			return fmt.Errorf("cellular: user %d session stop %v not after start %v", u.ID, u.Stop, u.Start)
		}
		if !sort.SliceIsSorted(u.Handovers, func(a, b int) bool { return u.Handovers[a].At < u.Handovers[b].At }) {
			return fmt.Errorf("cellular: user %d handover schedule not sorted", u.ID)
		}
		cur := u.Home
		for i, h := range u.Handovers {
			if h.To < 0 || h.To >= len(m.Sectors) {
				return fmt.Errorf("cellular: user %d handover %d targets unknown sector %d", u.ID, i, h.To)
			}
			if h.To == cur {
				return fmt.Errorf("cellular: user %d handover %d is a self-handover to sector %d", u.ID, i, h.To)
			}
			if h.Stall <= 0 {
				return fmt.Errorf("cellular: user %d handover %d has non-positive stall %v", u.ID, i, h.Stall)
			}
			cur = h.To
		}
	}
	return nil
}
