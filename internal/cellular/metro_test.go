package cellular

import (
	"reflect"
	"testing"
	"time"
)

func TestNewMetroDeterministic(t *testing.T) {
	cfg := MetroConfig{Sectors: 6, Users: 120, Tech: TechLTE, Seed: 7, Horizon: 5 * time.Minute}
	a, err := NewMetro(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewMetro(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("equal configs produced different topologies")
	}
	c, err := NewMetro(MetroConfig{Sectors: 6, Users: 120, Tech: TechLTE, Seed: 8, Horizon: 5 * time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical topologies")
	}
}

func TestNewMetroShape(t *testing.T) {
	m, err := NewMetro(MetroConfig{Sectors: 4, Users: 50, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Validate(); err != nil {
		t.Fatalf("generated topology fails validation: %v", err)
	}
	if len(m.Sectors) != 4 || len(m.Users) != 50 {
		t.Fatalf("got %d sectors / %d users, want 4 / 50", len(m.Sectors), len(m.Users))
	}
	if m.NeighborDelay != DefaultNeighborDelay {
		t.Errorf("neighbor delay %v, want default %v", m.NeighborDelay, DefaultNeighborDelay)
	}
	for i, u := range m.Users {
		if u.Home != i%4 {
			t.Fatalf("user %d homed on %d, want round-robin %d", i, u.Home, i%4)
		}
	}
	seen := map[int64]bool{}
	for _, s := range m.Sectors {
		if seen[s.Channel.Seed] {
			t.Errorf("sector %d reuses channel seed %d", s.ID, s.Channel.Seed)
		}
		seen[s.Channel.Seed] = true
	}
	by := m.UsersBySector()
	total := 0
	for s, users := range by {
		total += len(users)
		for _, ui := range users {
			if m.Users[ui].Home != s {
				t.Errorf("UsersBySector put user %d (home %d) in sector %d", ui, m.Users[ui].Home, s)
			}
		}
	}
	if total != 50 {
		t.Errorf("UsersBySector covers %d users, want 50", total)
	}
}

func TestNewMetroScenarioMix(t *testing.T) {
	m, err := NewMetro(MetroConfig{Sectors: 3, Users: 500, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	for _, u := range m.Users {
		counts[u.Scenario.Name]++
	}
	if len(counts) != len(Scenarios()) {
		t.Fatalf("500 users drew only %d of the %d scenarios: %v", len(counts), len(Scenarios()), counts)
	}
}

func TestHandoverSchedules(t *testing.T) {
	horizon := 3 * time.Minute
	m, err := NewMetro(MetroConfig{Sectors: 5, Users: 300, Seed: 4, Horizon: horizon})
	if err != nil {
		t.Fatal(err)
	}
	mobile, stationary := 0, 0
	for _, u := range m.Users {
		if u.Scenario.HandoverEvery == 0 {
			stationary++
			if len(u.Handovers) != 0 {
				t.Errorf("stationary user %d (%s) has %d handovers", u.ID, u.Scenario.Name, len(u.Handovers))
			}
			continue
		}
		mobile++
		cur := u.Home
		prev := time.Duration(0)
		for i, h := range u.Handovers {
			if h.At <= prev || h.At > horizon {
				t.Errorf("user %d handover %d at %v outside (%v, %v]", u.ID, i, h.At, prev, horizon)
			}
			if h.To == cur || h.To < 0 || h.To >= 5 {
				t.Errorf("user %d handover %d: %d → %d invalid", u.ID, i, cur, h.To)
			}
			lo, hi := u.Scenario.HandoverStall*70/100, u.Scenario.HandoverStall*130/100
			if h.Stall < lo || h.Stall > hi {
				t.Errorf("user %d handover %d stall %v outside [%v, %v]", u.ID, i, h.Stall, lo, hi)
			}
			cur, prev = h.To, h.At
		}
		// SectorAt must walk the same schedule.
		if got := u.SectorAt(horizon); got != cur {
			t.Errorf("user %d SectorAt(horizon) = %d, want %d", u.ID, got, cur)
		}
		if got := u.SectorAt(0); got != u.Home {
			t.Errorf("user %d SectorAt(0) = %d, want home %d", u.ID, got, u.Home)
		}
	}
	if mobile == 0 || stationary == 0 {
		t.Fatalf("degenerate draw: %d mobile, %d stationary users", mobile, stationary)
	}
}

func TestNewMetroSingleSectorHasNoHandovers(t *testing.T) {
	m, err := NewMetro(MetroConfig{Sectors: 1, Users: 40, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	for _, u := range m.Users {
		if len(u.Handovers) != 0 {
			t.Fatalf("user %d has handovers in a single-sector metro", u.ID)
		}
	}
}

func TestNewMetroRejections(t *testing.T) {
	cases := []struct {
		name string
		cfg  MetroConfig
	}{
		{"zero-sectors", MetroConfig{Sectors: 0, Users: 1}},
		{"negative-sectors", MetroConfig{Sectors: -2, Users: 1}},
		{"zero-users", MetroConfig{Sectors: 1, Users: 0}},
		{"negative-delay", MetroConfig{Sectors: 1, Users: 1, NeighborDelay: -time.Millisecond}},
		{"negative-horizon", MetroConfig{Sectors: 1, Users: 1, Horizon: -time.Second}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := NewMetro(c.cfg); err == nil {
				t.Fatalf("config %+v accepted", c.cfg)
			}
		})
	}
}

func TestMetroValidateCatchesCorruption(t *testing.T) {
	m, err := NewMetro(MetroConfig{Sectors: 3, Users: 30, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	m.Users[0].Home = 99
	if err := m.Validate(); err == nil {
		t.Fatal("out-of-range home sector accepted")
	}
	m.Users[0].Home = 0
	m.NeighborDelay = 0
	if err := m.Validate(); err == nil {
		t.Fatal("zero neighbor delay accepted")
	}
}
