// Package cellular implements a stochastic cellular channel model that
// substitutes for the commercial 3G/UMTS and LTE networks (Etisalat, Du)
// measured in §3 of the Verus paper.
//
// The model reproduces the three channel properties the paper identifies as
// the ones that matter for congestion control:
//
//   - Burst scheduling: the radio scheduler serves a user in 1 ms
//     Transmission Time Intervals (TTIs); per-TTI service is a burst whose
//     size depends on radio conditions, so arrivals are bursty with widely
//     varying burst sizes and inter-arrival times (paper Fig. 1/2).
//   - Multi-timescale variability: a slow-fading process (Gauss–Markov /
//     Ornstein–Uhlenbeck on a dB scale, coherence seconds) modulates a
//     fast-fading process (per-TTI Gamma-distributed power, coherence
//     milliseconds), so rates fluctuate at both timescales (paper Fig. 4).
//   - Mobility: driving scenarios shorten the slow-fading coherence time and
//     widen its variance, making burst sizes and inter-arrivals vary more
//     widely, as the paper observes when repeating measurements while
//     driving.
//
// Cross-traffic coupling (paper Fig. 3) is not modeled here; it emerges in
// the simulator when several flows share one trace-driven bottleneck, which
// mirrors the paper's observation that flows couple because they share radio
// resources.
package cellular

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"repro/internal/trace"
)

// Tech selects the radio access technology profile.
type Tech int

const (
	// Tech3G models a 3G/HSPA+ cell: a user is scheduled in relatively few
	// TTIs and receives large bursts (paper Fig. 2: 3G shows larger, less
	// frequent bursts).
	Tech3G Tech = iota
	// TechLTE models an LTE cell: more frequent, smaller bursts.
	TechLTE
)

// String returns the conventional name of the technology.
func (t Tech) String() string {
	switch t {
	case Tech3G:
		return "3G"
	case TechLTE:
		return "LTE"
	default:
		return fmt.Sprintf("Tech(%d)", int(t))
	}
}

// Operator selects one of the two modeled carriers. They differ slightly in
// mean rate and burstiness, standing in for the Du/Etisalat differences in
// paper Fig. 2.
type Operator int

const (
	// OperatorA stands in for Du.
	OperatorA Operator = iota
	// OperatorB stands in for Etisalat.
	OperatorB
)

// String returns the placeholder carrier name.
func (o Operator) String() string {
	switch o {
	case OperatorA:
		return "OpA"
	case OperatorB:
		return "OpB"
	default:
		return fmt.Sprintf("Operator(%d)", int(o))
	}
}

// Scenario describes a measurement environment and mobility pattern. The
// seven instances below mirror §5.3 of the paper ("Campus stationary, Campus
// pedestrian, City stationary, City driving, Highway driving, Shopping Mall
// and City waterfront").
type Scenario struct {
	Name string
	// SlowSigmaDB is the standard deviation of the slow-fading process in
	// dB. Mobility widens it.
	SlowSigmaDB float64
	// SlowTau is the coherence time of the slow-fading process. Mobility
	// shortens it.
	SlowTau time.Duration
	// RateFactor scales the technology's mean rate (indoor/obstructed
	// scenarios are slower).
	RateFactor float64
	// HandoverEvery is the typical spacing between cell handovers under
	// this mobility pattern; zero means the device stays on one cell. The
	// fault layer (internal/faults) turns this into handover-stall trains.
	HandoverEvery time.Duration
	// HandoverStall is the typical delivery freeze during one handover.
	HandoverStall time.Duration
}

// The seven measurement scenarios of §5.3.
var (
	CampusStationary = Scenario{Name: "campus-stationary", SlowSigmaDB: 2.0, SlowTau: 20 * time.Second, RateFactor: 1.0}
	CampusPedestrian = Scenario{Name: "campus-pedestrian", SlowSigmaDB: 3.0, SlowTau: 8 * time.Second, RateFactor: 0.95,
		HandoverEvery: 90 * time.Second, HandoverStall: 150 * time.Millisecond}
	CityStationary = Scenario{Name: "city-stationary", SlowSigmaDB: 2.5, SlowTau: 15 * time.Second, RateFactor: 0.9}
	CityDriving    = Scenario{Name: "city-driving", SlowSigmaDB: 5.0, SlowTau: 3 * time.Second, RateFactor: 0.8,
		HandoverEvery: 25 * time.Second, HandoverStall: 250 * time.Millisecond}
	HighwayDriving = Scenario{Name: "highway-driving", SlowSigmaDB: 6.0, SlowTau: 1500 * time.Millisecond, RateFactor: 0.75,
		HandoverEvery: 12 * time.Second, HandoverStall: 400 * time.Millisecond}
	ShoppingMall   = Scenario{Name: "shopping-mall", SlowSigmaDB: 4.0, SlowTau: 5 * time.Second, RateFactor: 0.7}
	CityWaterfront = Scenario{Name: "city-waterfront", SlowSigmaDB: 3.0, SlowTau: 10 * time.Second, RateFactor: 0.85}
)

// Scenarios returns the seven §5.3 scenarios in a stable order.
func Scenarios() []Scenario {
	return []Scenario{
		CampusStationary, CampusPedestrian, CityStationary,
		CityDriving, HighwayDriving, ShoppingMall, CityWaterfront,
	}
}

// Config fully describes a channel to generate.
type Config struct {
	Tech     Tech
	Operator Operator
	Scenario Scenario
	// MeanMbps overrides the technology's default mean downlink rate when
	// positive.
	MeanMbps float64
	// Seed makes generation deterministic.
	Seed int64
}

// TTI is the scheduler's transmission time interval (1 ms, per §3 of the
// paper).
const TTI = time.Millisecond

// techParams holds the per-technology scheduler characteristics.
type techParams struct {
	meanMbps   float64 // default mean downlink rate
	schedProb  float64 // probability the user is served in a TTI
	burstSigma float64 // lognormal sigma of per-burst size jitter
	fastShape  float64 // Gamma shape of fast fading power (higher = milder)
}

func paramsFor(t Tech, o Operator) techParams {
	var p techParams
	switch t {
	case TechLTE:
		// LTE: frequent small bursts, milder fast fading, higher rate.
		p = techParams{meanMbps: 10, schedProb: 0.85, burstSigma: 0.45, fastShape: 4}
	default:
		// 3G/HSPA+: infrequent large bursts (the 5 Mbps per-device rate of
		// the paper's trace collection), stronger fast fading.
		p = techParams{meanMbps: 5, schedProb: 0.18, burstSigma: 0.75, fastShape: 2}
	}
	if o == OperatorA {
		// Operator A is slightly slower and burstier (Fig. 2 shows the two
		// carriers' distributions are shifted relative to each other).
		p.meanMbps *= 0.85
		p.burstSigma *= 1.15
	}
	return p
}

// Model generates channel traces for a Config. It is not safe for concurrent
// use; create one per goroutine.
type Model struct {
	cfg Config
	par techParams
	rng *rand.Rand
}

// NewModel returns a generator for the given configuration.
func NewModel(cfg Config) *Model {
	if cfg.Scenario.Name == "" {
		cfg.Scenario = CampusStationary
	}
	return &Model{cfg: cfg, par: paramsFor(cfg.Tech, cfg.Operator), rng: rand.New(rand.NewSource(cfg.Seed))}
}

// MeanMbps returns the configured long-term mean rate of the channel.
func (m *Model) MeanMbps() float64 {
	if m.cfg.MeanMbps > 0 {
		return m.cfg.MeanMbps * m.cfg.Scenario.RateFactor
	}
	return m.par.meanMbps * m.cfg.Scenario.RateFactor
}

// Trace generates a delivery-opportunity trace of the given duration.
// Successive calls continue the fading processes, so two calls produce
// different (but statistically identical) segments.
func (m *Model) Trace(d time.Duration) *trace.Trace {
	sc := m.cfg.Scenario
	par := m.par

	// Long-term mean bytes per TTI. Dividing by the scheduling probability
	// concentrates the same mean rate into fewer, larger bursts.
	meanRate := m.MeanMbps() * 1e6 / 8 // bytes/s
	meanBurst := meanRate * TTI.Seconds() / par.schedProb

	// Normalizers so the fading processes are mean-one and the trace's
	// long-term rate matches MeanMbps.
	sigmaLn := sc.SlowSigmaDB * math.Ln10 / 10 // dB → natural log scale
	slowNorm := math.Exp(sigmaLn * sigmaLn / 2)
	burstNorm := math.Exp(par.burstSigma * par.burstSigma / 2)

	// Ornstein–Uhlenbeck step for the slow fade, one step per TTI.
	rho := math.Exp(-TTI.Seconds() / sc.SlowTau.Seconds())
	diff := sigmaLn * math.Sqrt(1-rho*rho)

	tr := &trace.Trace{
		Name:     fmt.Sprintf("%s-%s-%s", m.cfg.Operator, m.cfg.Tech, sc.Name),
		Duration: d,
	}
	slow := m.rng.NormFloat64() * sigmaLn
	nTTI := int(d / TTI)
	for i := 0; i < nTTI; i++ {
		slow = rho*slow + diff*m.rng.NormFloat64()
		if m.rng.Float64() >= par.schedProb {
			continue
		}
		fast := gammaMeanOne(m.rng, par.fastShape)
		jitter := math.Exp(m.rng.NormFloat64()*par.burstSigma) / burstNorm
		size := meanBurst * math.Exp(slow) / slowNorm * fast * jitter
		b := int(size + 0.5)
		if b <= 0 {
			continue
		}
		// Spread the burst inside the TTI at a sub-millisecond offset so
		// packet-level arrival times show the Fig. 1 "staircase" pattern.
		at := time.Duration(i)*TTI + time.Duration(m.rng.Int63n(int64(TTI)))
		tr.Ops = append(tr.Ops, trace.Opportunity{At: at, Bytes: b})
	}
	return tr
}

// gammaMeanOne samples a Gamma(shape, 1/shape) variate (mean 1) using
// Marsaglia–Tsang; shape must be >= 1.
func gammaMeanOne(rng *rand.Rand, shape float64) float64 {
	if shape < 1 {
		shape = 1
	}
	d := shape - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		x := rng.NormFloat64()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := rng.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v / shape
		}
		if math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v / shape
		}
	}
}

// BurstStats aggregates a trace into burst sizes and inter-burst arrival
// times, the quantities of paper Fig. 2. Opportunities closer together than
// gap are merged into one burst.
func BurstStats(tr *trace.Trace, gap time.Duration) (sizes []float64, interarrivals []time.Duration) {
	if len(tr.Ops) == 0 {
		return nil, nil
	}
	curStart := tr.Ops[0].At
	curEnd := tr.Ops[0].At
	curBytes := tr.Ops[0].Bytes
	prevStart := time.Duration(-1)
	flush := func() {
		sizes = append(sizes, float64(curBytes))
		if prevStart >= 0 {
			interarrivals = append(interarrivals, curStart-prevStart)
		}
		prevStart = curStart
	}
	for _, op := range tr.Ops[1:] {
		if op.At-curEnd <= gap {
			curBytes += op.Bytes
			curEnd = op.At
			continue
		}
		flush()
		curStart, curEnd, curBytes = op.At, op.At, op.Bytes
	}
	flush()
	return sizes, interarrivals
}
