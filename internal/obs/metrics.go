package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter. The zero value is
// ready to use, so subsystems embed counters directly and hand the registry
// a pointer (the thin-adapter pattern: the legacy accessor and the metrics
// exposition read the same instrument). Nil counters discard records.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n (n must be >= 0 to keep the counter monotone).
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Restore replaces the count with a checkpointed value. It exists for
// snapshot restore only; within a run counters stay monotone via Inc/Add.
func (c *Counter) Restore(n int64) {
	if c == nil {
		return
	}
	c.v.Store(n)
}

// Gauge is an atomic last-write-wins float value.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Value returns the last stored value (0 before any Set).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// sumScale is the fixed-point scale of histogram sums: nano-units. Integer
// accumulation is commutative, so the exposed sum is identical no matter how
// parallel trial workers interleave their Observe calls — float addition
// would make the .prom file depend on scheduling (the floatorder hazard).
const sumScale = 1e9

// Histogram counts observations into fixed buckets chosen at construction.
// Bounds are upper bounds, ascending; an implicit +Inf bucket catches the
// tail. All mutation is atomic.
type Histogram struct {
	bounds []float64
	counts []atomic.Int64 // len(bounds)+1; counts[i] covers (bounds[i-1], bounds[i]]
	sum    atomic.Int64   // fixed-point, sumScale units
	total  atomic.Int64
}

func newHistogram(bounds []float64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram bounds not ascending: %v", bounds))
		}
	}
	b := make([]float64, len(bounds))
	copy(b, bounds)
	return &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
}

// Observe records v into its bucket.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i].Add(1)
	h.sum.Add(int64(v * sumScale))
	h.total.Add(1)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.total.Load()
}

// Sum returns the sum of observations (fixed-point accumulated).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return float64(h.sum.Load()) / sumScale
}

// DelayBuckets is the shared bound set for delay/RTT histograms: 1 ms to
// ~33 s in powers of two, covering cellular bufferbloat's full range.
var DelayBuckets = func() []float64 {
	b := make([]float64, 16)
	v := 0.001
	for i := range b {
		b[i] = v
		v *= 2
	}
	return b
}()

// MetricKind distinguishes the registry's instrument types.
type MetricKind uint8

const (
	KindCounter MetricKind = iota
	KindGauge
	KindHistogram
)

// String implements fmt.Stringer (also the Prometheus TYPE keyword).
func (k MetricKind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	default:
		return fmt.Sprintf("MetricKind(%d)", uint8(k))
	}
}

// series is one registered instrument under its full (labeled) name.
type series struct {
	kind MetricKind
	ctr  *Counter
	gau  *Gauge
	his  *Histogram
}

// Registry is a concurrent metrics registry with get-or-create semantics
// and snapshot-on-demand exposition. Names are full series names including
// any label block ("verus_relearns_total{flow=\"0\",run=\"42\"}" — see
// Labeled); the text exporter groups series into families by the name
// before the label block.
//
// Registration and recording never iterate the series map; only Snapshot
// does, over sorted names, so exposition order is deterministic and no
// float is accumulated under randomized map order.
type Registry struct {
	mu     sync.Mutex
	series map[string]*series
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{series: make(map[string]*series)} }

func (r *Registry) get(name string, kind MetricKind) *series {
	r.mu.Lock()
	defer r.mu.Unlock()
	if s, ok := r.series[name]; ok {
		if s.kind != kind {
			panic(fmt.Sprintf("obs: series %q registered as %v, requested as %v", name, s.kind, kind))
		}
		return s
	}
	s := &series{kind: kind}
	r.series[name] = s
	return s
}

// Counter returns the counter registered under name, creating it if absent.
// It panics if name is registered as a different kind.
func (r *Registry) Counter(name string) *Counter {
	s := r.get(name, KindCounter)
	r.mu.Lock()
	defer r.mu.Unlock()
	if s.ctr == nil {
		s.ctr = new(Counter)
	}
	return s.ctr
}

// Gauge returns the gauge registered under name, creating it if absent.
func (r *Registry) Gauge(name string) *Gauge {
	s := r.get(name, KindGauge)
	r.mu.Lock()
	defer r.mu.Unlock()
	if s.gau == nil {
		s.gau = new(Gauge)
	}
	return s.gau
}

// Histogram returns the histogram registered under name, creating it with
// the given bucket bounds if absent (bounds of an existing histogram win).
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	s := r.get(name, KindHistogram)
	r.mu.Lock()
	defer r.mu.Unlock()
	if s.his == nil {
		s.his = newHistogram(bounds)
	}
	return s.his
}

// RegisterCounter adopts an externally owned counter under name, replacing
// any previous registration of that name.
func (r *Registry) RegisterCounter(name string, c *Counter) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.series[name] = &series{kind: KindCounter, ctr: c}
}

// Sample is one series' state in a Snapshot.
type Sample struct {
	// Name is the full series name including any label block.
	Name string
	Kind MetricKind
	// Value is the counter or gauge value (unused for histograms).
	Value float64
	// Count, Sum, and Buckets describe a histogram; Buckets[i] is the
	// cumulative count of observations <= BucketBounds[i], and an implicit
	// +Inf bucket equals Count.
	Count        int64
	Sum          float64
	BucketBounds []float64
	Buckets      []int64
}

// Snapshot returns every series sorted by name. It is the only place the
// registry iterates its map, and it does so over sorted keys — exposition
// is byte-stable for a given set of recorded values.
func (r *Registry) Snapshot() []Sample {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.series))
	for name := range r.series {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]Sample, 0, len(names))
	for _, name := range names {
		s := r.series[name]
		smp := Sample{Name: name, Kind: s.kind}
		switch s.kind {
		case KindCounter:
			smp.Value = float64(s.ctr.Value())
		case KindGauge:
			smp.Value = s.gau.Value()
		case KindHistogram:
			h := s.his
			smp.Count = h.Count()
			smp.Sum = h.Sum()
			smp.BucketBounds = append([]float64(nil), h.bounds...)
			smp.Buckets = make([]int64, len(h.bounds))
			var cum int64
			for i := range h.bounds {
				cum += h.counts[i].Load()
				smp.Buckets[i] = cum
			}
		}
		out = append(out, smp)
	}
	return out
}

// Labeled builds a full series name "name{k1=\"v1\",k2=\"v2\"}" from
// alternating key/value pairs. Label values are escaped per the Prometheus
// text format. No pairs returns name unchanged.
func Labeled(name string, kv ...string) string {
	if len(kv) == 0 {
		return name
	}
	if len(kv)%2 != 0 {
		panic("obs: Labeled requires alternating key/value pairs")
	}
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i := 0; i < len(kv); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(kv[i])
		b.WriteString(`="`)
		b.WriteString(escapeLabel(kv[i+1]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// escapeLabel escapes a label value per the Prometheus text format.
func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}
