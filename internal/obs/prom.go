package obs

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// familyOf splits a full series name into its family (the metric name a
// Prometheus scraper sees) and the label block, "" when unlabeled.
func familyOf(name string) (family, labels string) {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i], name[i:]
	}
	return name, ""
}

// mergeLabels splices extra "k=\"v\"" pairs into an existing label block
// ("" for none), producing a full label block.
func mergeLabels(block string, extra ...string) string {
	inner := strings.TrimSuffix(strings.TrimPrefix(block, "{"), "}")
	parts := make([]string, 0, len(extra)+1)
	if inner != "" {
		parts = append(parts, inner)
	}
	parts = append(parts, extra...)
	if len(parts) == 0 {
		return ""
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4): one `# TYPE` header per family, series sorted by
// name within sorted families, values in shortest-round-trip form.
// Histograms expose cumulative `_bucket{le="..."}` series, `_sum`, and
// `_count`, with histogram labels merged into the le block.
func WritePrometheus(w io.Writer, r *Registry) error {
	samples := r.Snapshot()

	// Group into families first: sorted sample order does not guarantee a
	// family's series are adjacent ('_' sorts before '{'), and the text
	// format requires each family written exactly once.
	byFamily := make(map[string][]Sample)
	for _, s := range samples {
		fam, _ := familyOf(s.Name)
		byFamily[fam] = append(byFamily[fam], s)
	}
	keys := make([]string, 0, len(byFamily))
	for k := range byFamily {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	bw := bufio.NewWriter(w)
	for _, fam := range keys {
		group := byFamily[fam]
		kind := group[0].Kind
		for _, s := range group {
			if s.Kind != kind {
				return fmt.Errorf("obs: family %q mixes %v and %v series", fam, kind, s.Kind)
			}
		}
		fmt.Fprintf(bw, "# TYPE %s %s\n", fam, kind)
		for _, s := range group {
			_, labels := familyOf(s.Name)
			switch s.Kind {
			case KindCounter, KindGauge:
				fmt.Fprintf(bw, "%s%s %s\n", fam, labels, formatPromValue(s.Value))
			case KindHistogram:
				for i, bound := range s.BucketBounds {
					le := mergeLabels(labels, `le="`+formatPromValue(bound)+`"`)
					fmt.Fprintf(bw, "%s_bucket%s %d\n", fam, le, s.Buckets[i])
				}
				inf := mergeLabels(labels, `le="+Inf"`)
				fmt.Fprintf(bw, "%s_bucket%s %d\n", fam, inf, s.Count)
				fmt.Fprintf(bw, "%s_sum%s %s\n", fam, labels, formatPromValue(s.Sum))
				fmt.Fprintf(bw, "%s_count%s %d\n", fam, labels, s.Count)
			}
		}
	}
	return bw.Flush()
}

func formatPromValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// PromMetrics is the result of ParsePrometheus: the declared family types
// and every series value.
type PromMetrics struct {
	Types  map[string]string  // family -> "counter" | "gauge" | "histogram"
	Values map[string]float64 // full series name -> value
}

// ParsePrometheus is a strict scanner for the text exposition format as
// WritePrometheus produces it (and as any conformant exposition should
// look). It rejects malformed lines, series whose family lacks a `# TYPE`
// declaration, duplicate series, and unbalanced label blocks — it is the
// exporter's round-trip test oracle and the CI smoke check.
func ParsePrometheus(r io.Reader) (*PromMetrics, error) {
	pm := &PromMetrics{Types: make(map[string]string), Values: make(map[string]float64)}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		text := sc.Text()
		if text == "" {
			continue
		}
		if strings.HasPrefix(text, "#") {
			fields := strings.Fields(text)
			if len(fields) >= 2 && fields[1] == "HELP" {
				continue
			}
			if len(fields) == 4 && fields[1] == "TYPE" {
				switch fields[3] {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					return nil, fmt.Errorf("obs: prom line %d: unknown type %q", line, fields[3])
				}
				if _, dup := pm.Types[fields[2]]; dup {
					return nil, fmt.Errorf("obs: prom line %d: duplicate TYPE for %q", line, fields[2])
				}
				pm.Types[fields[2]] = fields[3]
				continue
			}
			return nil, fmt.Errorf("obs: prom line %d: malformed comment %q", line, text)
		}
		name, value, err := parsePromSeries(text)
		if err != nil {
			return nil, fmt.Errorf("obs: prom line %d: %w", line, err)
		}
		fam, _ := familyOf(name)
		if !promFamilyDeclared(pm.Types, fam) {
			return nil, fmt.Errorf("obs: prom line %d: series %q has no TYPE declaration", line, name)
		}
		if _, dup := pm.Values[name]; dup {
			return nil, fmt.Errorf("obs: prom line %d: duplicate series %q", line, name)
		}
		pm.Values[name] = value
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("obs: prom: %w", err)
	}
	return pm, nil
}

// promFamilyDeclared checks fam or, for histogram component series, the
// base family (stripping _bucket/_sum/_count) against the TYPE table.
func promFamilyDeclared(types map[string]string, fam string) bool {
	if _, ok := types[fam]; ok {
		return true
	}
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		base, found := strings.CutSuffix(fam, suffix)
		if found && types[base] == "histogram" {
			return true
		}
	}
	return false
}

// parsePromSeries splits "name{labels} value" or "name value", validating
// the label block's quoting and structure.
func parsePromSeries(text string) (name string, value float64, err error) {
	var rest string
	if i := strings.IndexByte(text, '{'); i >= 0 {
		end, err := scanLabelBlock(text[i:])
		if err != nil {
			return "", 0, err
		}
		name = text[:i+end]
		rest = text[i+end:]
	} else {
		sp := strings.IndexByte(text, ' ')
		if sp < 0 {
			return "", 0, fmt.Errorf("series %q has no value", text)
		}
		name = text[:sp]
		rest = text[sp:]
	}
	if name == "" || !validPromName(familyName(name)) {
		return "", 0, fmt.Errorf("invalid metric name in %q", text)
	}
	rest = strings.TrimSpace(rest)
	// The format allows an optional timestamp after the value; reject it
	// here — nothing in this repo writes one, and strictness is the point.
	if strings.ContainsAny(rest, " \t") {
		return "", 0, fmt.Errorf("trailing fields after value in %q", text)
	}
	v, err := strconv.ParseFloat(rest, 64)
	if err != nil {
		return "", 0, fmt.Errorf("bad value in %q: %w", text, err)
	}
	return name, v, nil
}

func familyName(series string) string {
	fam, _ := familyOf(series)
	return fam
}

func validPromName(s string) bool {
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == ':':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return s != ""
}

// scanLabelBlock returns the index just past the closing '}' of the label
// block starting at s[0] == '{', validating k="v" pair structure.
func scanLabelBlock(s string) (int, error) {
	i := 1
	for {
		if i >= len(s) {
			return 0, fmt.Errorf("unterminated label block")
		}
		if s[i] == '}' {
			return i + 1, nil
		}
		// label name
		start := i
		for i < len(s) && s[i] != '=' && s[i] != '}' {
			i++
		}
		if i >= len(s) || s[i] != '=' || !validPromName(s[start:i]) {
			return 0, fmt.Errorf("malformed label name in %q", s)
		}
		i++
		if i >= len(s) || s[i] != '"' {
			return 0, fmt.Errorf("unquoted label value in %q", s)
		}
		i++
		for i < len(s) && s[i] != '"' {
			if s[i] == '\\' {
				i++
			}
			i++
		}
		if i >= len(s) {
			return 0, fmt.Errorf("unterminated label value in %q", s)
		}
		i++ // past closing quote
		if i < len(s) && s[i] == ',' {
			i++
		}
	}
}
