package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"reflect"
	"strings"
	"testing"
	"time"
)

// TestKindMetaComplete is the registration sync gate: every Kind below
// numKinds must carry a nonempty dotted name, at least one slot label, no
// gaps in its slot metadata, and a working name round-trip — so a new kind
// cannot ship half-registered (the exporter analogue of
// TestDocCommentListsAllAnalyzers).
func TestKindMetaComplete(t *testing.T) {
	if numKinds == 0 {
		t.Fatal("no kinds registered")
	}
	seen := make(map[string]Kind)
	for k := Kind(0); int(k) < numKinds; k++ {
		meta := kindMeta[k]
		if meta.name == "" {
			t.Errorf("Kind(%d) has no name", k)
			continue
		}
		if !strings.Contains(meta.name, ".") {
			t.Errorf("kind %q is not dotted (subsystem.event)", meta.name)
		}
		if prev, dup := seen[meta.name]; dup {
			t.Errorf("kinds %d and %d share the name %q", prev, k, meta.name)
		}
		seen[meta.name] = k
		if meta.fields[0] == "" {
			t.Errorf("kind %q has no slot metadata", meta.name)
		}
		gap := false
		for _, f := range meta.fields {
			if f == "" {
				gap = true
			} else if gap {
				t.Errorf("kind %q has a gap in its slot metadata: %v", meta.name, meta.fields)
				break
			}
		}
		got, ok := KindByName(meta.name)
		if !ok || got != k {
			t.Errorf("KindByName(%q) = %v, %v; want %v, true", meta.name, got, ok, k)
		}
		if s := k.String(); s != meta.name {
			t.Errorf("Kind(%d).String() = %q, want %q", k, s, meta.name)
		}
	}
}

// ckptAttribEvents are the PR 9 checkpoint kinds plus the PR 10 attribution
// kind, the latter exercising all six value slots.
func ckptAttribEvents() []Event {
	return []Event{
		{At: 500 * time.Millisecond, Seq: 0, Kind: KindCheckpointWrite, Flow: -1, Run: 42, V0: 81234, V1: 1, V2: 0.5},
		{At: 500 * time.Millisecond, Seq: 1, Kind: KindCheckpointRestore, Flow: -1, Run: 42, V0: 81234, V1: 0.5},
		{At: 750 * time.Millisecond, Seq: 2, Kind: KindNetAttrib, Flow: 3, Run: 42,
			V0: 0.010, V1: 0.002, V2: 0.015, V3: 0.080, V4: 0.004, V5: 0.111},
		// Zero fault/detour components must trim and restore exactly.
		{At: 800 * time.Millisecond, Seq: 3, Kind: KindNetAttrib, Flow: 4, Run: 42,
			V0: 0.001, V1: 0.002, V2: 0.015, V5: 0.018},
	}
}

func TestJSONLRoundTripCheckpointAndAttrib(t *testing.T) {
	want := ckptAttribEvents()
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, want); err != nil {
		t.Fatalf("WriteJSONL: %v", err)
	}
	got, err := ReadJSONL(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ReadJSONL: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, want)
	}
	// Old traces (≤4 value slots, pre-V4/V5) must still parse.
	legacy := `{"seq":9,"at_ns":1000000,"kind":"ckpt.write","flow":-1,"run":1,"v":[100,2,0.001]}` + "\n"
	ev, err := ReadJSONL(strings.NewReader(legacy))
	if err != nil {
		t.Fatalf("legacy 4-slot line rejected: %v", err)
	}
	if len(ev) != 1 || ev[0].Kind != KindCheckpointWrite || ev[0].V0 != 100 || ev[0].V4 != 0 || ev[0].V5 != 0 {
		t.Fatalf("legacy line misparsed: %+v", ev)
	}
}

func TestChromeTraceCheckpointAndAttrib(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, ckptAttribEvents()); err != nil {
		t.Fatalf("WriteChromeTrace: %v", err)
	}
	var ces []chromeEvent
	if err := json.Unmarshal(buf.Bytes(), &ces); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v\n%s", err, buf.Bytes())
	}
	// The checkpoint kinds render as instants with their slot metadata.
	var ckpts, slices []chromeEvent
	for _, ce := range ces {
		switch {
		case strings.HasPrefix(ce.Name, "ckpt."):
			ckpts = append(ckpts, ce)
		case strings.HasPrefix(ce.Name, "delay "):
			slices = append(slices, ce)
		}
	}
	if len(ckpts) != 2 {
		t.Fatalf("expected 2 ckpt instants, got %d in %s", len(ckpts), buf.Bytes())
	}
	if ckpts[0].Ph != "i" || ckpts[0].Args["bytes"] != 81234 || ckpts[0].Args["barrier"] != 0.5 {
		t.Errorf("ckpt.write instant malformed: %+v", ckpts[0])
	}
	// The first attribution event (5 nonzero components) renders as 5
	// stacked X slices whose durations sum to the total and which tile
	// [sink-total, sink] contiguously on the flow track.
	if len(slices) != 5+3 {
		t.Fatalf("expected 8 delay slices (5 + 3 nonzero comps), got %d", len(slices))
	}
	first := slices[:5]
	sinkUs := 750_000.0 // 750 ms in µs
	start := sinkUs - 0.111*1e6
	var dur float64
	for i, ce := range first {
		if ce.Ph != "X" || ce.Tid != 3 {
			t.Errorf("slice %d not an X on the flow track: %+v", i, ce)
		}
		if math.Abs(ce.Ts-(start+dur)) > 1e-6 {
			t.Errorf("slice %d starts at %v, want %v (contiguous tiling)", i, ce.Ts, start+dur)
		}
		dur += ce.Dur
	}
	if math.Abs(dur-0.111*1e6) > 1e-6 {
		t.Errorf("slice durations sum to %v µs, want %v", dur, 0.111*1e6)
	}
}

func TestPrometheusAttribRoundTrip(t *testing.T) {
	r := NewRegistry()
	tr := NewTracer(2)
	o := NewObserver(tr, r)
	// Overflow the ring so the drop counter is nonzero.
	for i := 0; i < 5; i++ {
		o.Emit(Event{Seq: uint64(i), Kind: KindNetAttrib, Run: 1})
	}
	o.SyncTraceDropped()
	for c := 0; c < 5; c++ {
		comp := []string{"queue", "ser", "prop", "fault", "detour"}[c]
		h := r.Histogram(Labeled("netsim_attrib_seconds", "comp", comp, "run", "1"), DelayBuckets)
		h.Observe(0.002 * float64(c+1))
	}
	var buf bytes.Buffer
	if err := WritePrometheus(&buf, r); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	pm, err := ParsePrometheus(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ParsePrometheus rejected our own exposition: %v\n%s", err, buf.Bytes())
	}
	if pm.Types["obs_trace_dropped_total"] != "counter" {
		t.Errorf("obs_trace_dropped_total not declared as a counter: %v", pm.Types)
	}
	if got := pm.Values["obs_trace_dropped_total"]; got != 3 {
		t.Errorf("obs_trace_dropped_total = %v, want 3 (5 emitted into a 2-slot ring)", got)
	}
	if pm.Types["netsim_attrib_seconds"] != "histogram" {
		t.Errorf("netsim_attrib_seconds not declared as a histogram: %v", pm.Types)
	}
	for _, comp := range []string{"queue", "ser", "prop", "fault", "detour"} {
		name := fmt.Sprintf(`netsim_attrib_seconds_count{comp=%q,run="1"}`, comp)
		if got := pm.Values[name]; got != 1 {
			t.Errorf("%s = %v, want 1", name, got)
		}
	}
}
