package obs

import (
	"testing"
	"time"
)

func TestTracerRecordsInOrder(t *testing.T) {
	tr := NewTracer(8)
	for i := 0; i < 5; i++ {
		tr.Emit(Event{At: time.Duration(i) * time.Millisecond, Kind: KindVerusEpoch, V0: float64(i)})
	}
	got := tr.Snapshot()
	if len(got) != 5 {
		t.Fatalf("snapshot len = %d, want 5", len(got))
	}
	for i, e := range got {
		if e.Seq != uint64(i) || e.V0 != float64(i) {
			t.Fatalf("event %d = {Seq:%d V0:%v}, want {Seq:%d V0:%d}", i, e.Seq, e.V0, i, i)
		}
	}
	if tr.Emitted() != 5 || tr.Dropped() != 0 {
		t.Fatalf("emitted=%d dropped=%d, want 5, 0", tr.Emitted(), tr.Dropped())
	}
}

func TestTracerRingOverwritesOldest(t *testing.T) {
	tr := NewTracer(4)
	for i := 0; i < 11; i++ {
		tr.Emit(Event{Kind: KindNetDeliver, V0: float64(i)})
	}
	got := tr.Snapshot()
	if len(got) != 4 {
		t.Fatalf("snapshot len = %d, want 4", len(got))
	}
	// The ring must hold the last 4 events, oldest first.
	for i, e := range got {
		want := uint64(7 + i)
		if e.Seq != want || e.V0 != float64(want) {
			t.Fatalf("event %d = {Seq:%d V0:%v}, want Seq=V0=%d", i, e.Seq, e.V0, want)
		}
	}
	if tr.Emitted() != 11 {
		t.Fatalf("emitted = %d, want 11", tr.Emitted())
	}
	if tr.Dropped() != 7 {
		t.Fatalf("dropped = %d, want 7", tr.Dropped())
	}
}

func TestTracerDefaultCapacity(t *testing.T) {
	tr := NewTracer(0)
	if tr.limit != DefaultTraceCapacity {
		t.Fatalf("limit = %d, want %d", tr.limit, DefaultTraceCapacity)
	}
	if cap(tr.buf) != DefaultTraceCapacity {
		t.Fatalf("cap(buf) = %d, want %d (slab must be pre-allocated)", cap(tr.buf), DefaultTraceCapacity)
	}
}

func TestNilTracerAndObserverAreInert(t *testing.T) {
	var tr *Tracer
	tr.Emit(Event{Kind: KindVerusEpoch})
	if tr.Snapshot() != nil || tr.Emitted() != 0 || tr.Dropped() != 0 {
		t.Fatal("nil tracer must report empty state")
	}

	var o *Observer
	o.Emit(Event{Kind: KindVerusEpoch})
	if o.Tracer() != nil || o.Registry() != nil {
		t.Fatal("nil observer must expose nil halves")
	}
	o.Counter("x").Inc()
	o.Gauge("y").Set(1)
	o.Histogram("z", []float64{1}).Observe(0.5)
	o.RegisterCounter("w", new(Counter))
}

// The disabled path of the tracer and observer must not allocate: this is
// the zero-alloc half of the ≤2% hot-path overhead contract.
func TestDisabledPathZeroAlloc(t *testing.T) {
	var o *Observer
	e := Event{At: time.Second, Kind: KindVerusEpoch, V0: 1, V1: 2, V2: 3, V3: 4}
	if n := testing.AllocsPerRun(1000, func() { o.Emit(e) }); n != 0 {
		t.Fatalf("nil Observer.Emit allocates %v per run, want 0", n)
	}

	var tr *Tracer
	if n := testing.AllocsPerRun(1000, func() { tr.Emit(e) }); n != 0 {
		t.Fatalf("nil Tracer.Emit allocates %v per run, want 0", n)
	}

	var c *Counter
	if n := testing.AllocsPerRun(1000, func() { c.Inc() }); n != 0 {
		t.Fatalf("nil Counter.Inc allocates %v per run, want 0", n)
	}

	// Detached instruments (resolved from a disabled observer once at setup)
	// also record without allocating.
	dc := o.Counter("detached")
	dh := o.Histogram("detached_h", DelayBuckets)
	if n := testing.AllocsPerRun(1000, func() { dc.Inc(); dh.Observe(0.05) }); n != 0 {
		t.Fatalf("detached instruments allocate %v per run, want 0", n)
	}
}

// The enabled steady-state tracer path must not allocate either — the ring
// slab is allocated once at construction.
func TestEnabledTracerSteadyStateZeroAlloc(t *testing.T) {
	tr := NewTracer(256)
	o := NewObserver(tr, nil)
	e := Event{At: time.Second, Kind: KindVerusEpoch, V0: 1, V1: 2, V2: 3, V3: 4}
	// Fill the ring first so append never grows it mid-measurement.
	for i := 0; i < 256; i++ {
		tr.Emit(e)
	}
	if n := testing.AllocsPerRun(1000, func() { o.Emit(e) }); n != 0 {
		t.Fatalf("steady-state Emit allocates %v per run, want 0", n)
	}
}

func TestKindNames(t *testing.T) {
	for k := Kind(0); k < numKinds; k++ {
		name := k.String()
		if name == "" {
			t.Fatalf("kind %d has no name", k)
		}
		back, ok := KindByName(name)
		if !ok || back != k {
			t.Fatalf("KindByName(%q) = %v, %v; want %v, true", name, back, ok, k)
		}
	}
	if _, ok := KindByName("no.such.kind"); ok {
		t.Fatal("KindByName accepted an unknown name")
	}
}
