package obs

import (
	"net/http/httptest"
	"strings"
	"testing"
)

func TestMetricsHandlerServesExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("transport_sent_total").Add(41)
	r.Gauge("verus_window_pkts").Set(12.5)

	rec := httptest.NewRecorder()
	MetricsHandler(r).ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 {
		t.Fatalf("status %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("content type %q", ct)
	}
	body := rec.Body.String()
	for _, frag := range []string{
		"# TYPE transport_sent_total counter",
		"transport_sent_total 41",
		"verus_window_pkts 12.5",
	} {
		if !strings.Contains(body, frag) {
			t.Errorf("exposition missing %q:\n%s", frag, body)
		}
	}
	// The exposition must itself parse under the strict reader.
	if _, err := ParsePrometheus(strings.NewReader(body)); err != nil {
		t.Errorf("served exposition does not round-trip: %v", err)
	}
}

func TestMetricsHandlerNilRegistry(t *testing.T) {
	rec := httptest.NewRecorder()
	MetricsHandler(nil).ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 {
		t.Fatalf("status %d", rec.Code)
	}
	if rec.Body.Len() != 0 {
		t.Errorf("nil registry should serve an empty exposition, got %q", rec.Body.String())
	}
}
