package obs

import "net/http"

// MetricsHandler serves the registry as Prometheus text exposition (0.0.4)
// — the live-introspection endpoint verus-server and verus-client mount at
// /metrics next to net/http/pprof. A nil registry serves an empty (but
// valid) exposition. The handler only snapshots; it never blocks recording
// for longer than the registry mutex.
func MetricsHandler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := WritePrometheus(w, r); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
}
