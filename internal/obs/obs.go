// Package obs is the deterministic observability layer: a virtual-time
// structured event tracer, a metrics registry, and exporters (JSONL, Chrome
// trace_event, Prometheus text exposition) shared by the simulator, the
// Verus controller, the fault layer, and the real-UDP transport.
//
// Determinism contract (DESIGN.md §11): observability is strictly
// passive. Nothing in this package reads the wall clock — every Event is
// stamped by its producer with virtual time (netsim.Sim time, or the
// transport Clock's offset) — nothing draws randomness, and nothing feeds
// back into protocol arithmetic, so enabling tracing and metrics cannot
// move a single golden digest. The registry avoids the two float-determinism
// hazards the analyzer suite rejects: snapshots iterate sorted names (never
// raw map order), and histogram sums accumulate in fixed-point integers so
// concurrent recording from parallel trial workers stays order-independent.
//
// Cost contract: the disabled path is a nil check. Instrumented code holds a
// *Observer and guards every instrumentation point with `if o != nil`,
// mirroring the PR 4 egress fast path; with no observer attached the epoch
// hot path pays one predictable branch and zero allocations (see
// BENCH_pr5.json and the AllocsPerRun tests).
package obs

// Observer bundles the event tracer and the metrics registry handed to
// instrumented code. Either half may be nil (trace-only or metrics-only
// runs); every method tolerates a nil receiver and nil halves, so
// instrumentation wiring is unconditional and only the innermost hot-path
// guards need the `if o != nil` fast path.
//
// The tracer and registry are both safe for concurrent use: one Observer is
// shared across every trial worker of a parallel experiment run.
type Observer struct {
	tracer  *Tracer
	metrics *Registry
}

// NewObserver returns an Observer over the given halves. Either may be nil.
func NewObserver(t *Tracer, m *Registry) *Observer {
	return &Observer{tracer: t, metrics: m}
}

// Tracer returns the event tracer (nil when tracing is disabled).
func (o *Observer) Tracer() *Tracer {
	if o == nil {
		return nil
	}
	return o.tracer
}

// Registry returns the metrics registry (nil when metrics are disabled).
func (o *Observer) Registry() *Registry {
	if o == nil {
		return nil
	}
	return o.metrics
}

// Emit records an event if tracing is enabled; otherwise it is a branch.
func (o *Observer) Emit(e Event) {
	if o == nil || o.tracer == nil {
		return
	}
	o.tracer.Emit(e)
}

// Counter returns the registry counter with the given full name, or a
// detached counter when metrics are disabled — so instrumented code can
// resolve its instruments once and record unconditionally.
func (o *Observer) Counter(name string) *Counter {
	if o == nil || o.metrics == nil {
		return new(Counter)
	}
	return o.metrics.Counter(name)
}

// Gauge is the gauge analogue of Counter.
func (o *Observer) Gauge(name string) *Gauge {
	if o == nil || o.metrics == nil {
		return new(Gauge)
	}
	return o.metrics.Gauge(name)
}

// Histogram is the histogram analogue of Counter. buckets are the fixed
// upper bounds (ascending); a +Inf bucket is implicit.
func (o *Observer) Histogram(name string, buckets []float64) *Histogram {
	if o == nil || o.metrics == nil {
		return newHistogram(buckets)
	}
	return o.metrics.Histogram(name, buckets)
}

// RegisterCounter adopts an externally owned counter into the registry (the
// thin-adapter path: a subsystem keeps its counter and its legacy accessor,
// and the registry exposes the same instrument). No-op when metrics are
// disabled.
func (o *Observer) RegisterCounter(name string, c *Counter) {
	if o == nil || o.metrics == nil || c == nil {
		return
	}
	o.metrics.RegisterCounter(name, c)
}

// SyncTraceDropped publishes the tracer's ring-overflow count into the
// metrics registry as the counter obs_trace_dropped_total, so a Prometheus
// scrape shows whether the exported trace is complete. Call it once, right
// before exporting the registry; it is a no-op when either half is disabled.
func (o *Observer) SyncTraceDropped() {
	if o == nil || o.tracer == nil || o.metrics == nil {
		return
	}
	o.metrics.Counter("obs_trace_dropped_total").Restore(int64(o.tracer.Dropped()))
}

// Observable is implemented by components that can attach themselves to an
// Observer — controllers, links, transports. run labels the trial (the
// harness passes the derived per-trial seed) and flow the flow index, so
// metric series from parallel trials stay distinct.
type Observable interface {
	Observe(o *Observer, run int64, flow int)
}
