package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"time"
)

// jsonEvent is the JSONL wire form of an Event. Virtual time travels as
// integer nanoseconds and the kind as its dotted name, so the encoding
// round-trips exactly: ReadJSONL(WriteJSONL(events)) == events. Value slots
// are written as a trimmed array (trailing zero slots dropped); reading
// restores the zeros.
type jsonEvent struct {
	Seq  uint64    `json:"seq"`
	AtNs int64     `json:"at_ns"`
	Kind string    `json:"kind"`
	Flow int32     `json:"flow"`
	Run  int64     `json:"run"`
	Str  string    `json:"str,omitempty"`
	V    []float64 `json:"v,omitempty"`
}

// WriteJSONL writes events one JSON object per line.
func WriteJSONL(w io.Writer, events []Event) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i := range events {
		e := &events[i]
		je := jsonEvent{
			Seq:  e.Seq,
			AtNs: int64(e.At),
			Kind: e.Kind.String(),
			Flow: e.Flow,
			Run:  e.Run,
			Str:  e.Str,
		}
		v := [6]float64{e.V0, e.V1, e.V2, e.V3, e.V4, e.V5}
		n := 6
		for n > 0 && v[n-1] == 0 {
			n--
		}
		if n > 0 {
			je.V = v[:n]
		}
		if err := enc.Encode(&je); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadJSONL parses a JSONL event stream written by WriteJSONL. It is
// strict: malformed lines, unknown kinds, and oversized value arrays are
// errors, reported with their 1-based line number.
func ReadJSONL(r io.Reader) ([]Event, error) {
	var out []Event
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var je jsonEvent
		dec := json.NewDecoder(bytes.NewReader(raw))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&je); err != nil {
			return nil, fmt.Errorf("obs: jsonl line %d: %w", line, err)
		}
		k, ok := KindByName(je.Kind)
		if !ok {
			return nil, fmt.Errorf("obs: jsonl line %d: unknown event kind %q", line, je.Kind)
		}
		if len(je.V) > 6 {
			return nil, fmt.Errorf("obs: jsonl line %d: %d value slots (max 6)", line, len(je.V))
		}
		e := Event{
			At:   time.Duration(je.AtNs),
			Seq:  je.Seq,
			Kind: k,
			Flow: je.Flow,
			Run:  je.Run,
			Str:  je.Str,
		}
		var v [6]float64
		copy(v[:], je.V)
		e.V0, e.V1, e.V2, e.V3 = v[0], v[1], v[2], v[3]
		e.V4, e.V5 = v[4], v[5]
		out = append(out, e)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("obs: jsonl: %w", err)
	}
	return out, nil
}
