package obs

import "sync"

// DefaultTraceCapacity is the ring size NewTracer uses for capacity <= 0:
// 64Ki events ≈ 6 MB, a few simulated minutes of epoch-rate traffic.
const DefaultTraceCapacity = 1 << 16

// Tracer is a bounded, ring-buffered event recorder. Emission overwrites
// the oldest events once the ring is full, so a tracer can stay attached to
// an arbitrarily long run with fixed memory; Dropped reports how many
// events the ring no longer holds.
//
// The ring is a flat []Event slab allocated once at construction: emitting
// into it is a mutex acquire and a struct copy, with no steady-state
// allocation. A nil *Tracer is a valid disabled tracer.
type Tracer struct {
	mu      sync.Mutex
	buf     []Event
	limit   int
	emitted uint64
}

// NewTracer returns a tracer holding the last `capacity` events
// (DefaultTraceCapacity when capacity <= 0).
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultTraceCapacity
	}
	return &Tracer{buf: make([]Event, 0, capacity), limit: capacity}
}

// Emit records e, stamping its Seq with the emission sequence number. Safe
// for concurrent use; a nil tracer discards the event.
func (t *Tracer) Emit(e Event) {
	if t == nil {
		return
	}
	t.mu.Lock()
	e.Seq = t.emitted
	t.emitted++
	if len(t.buf) < t.limit {
		t.buf = append(t.buf, e)
	} else {
		t.buf[int(e.Seq)%t.limit] = e
	}
	t.mu.Unlock()
}

// Snapshot returns the retained events, oldest first, as a fresh slice.
func (t *Tracer) Snapshot() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Event, len(t.buf))
	if len(t.buf) < t.limit {
		copy(out, t.buf)
		return out
	}
	start := int(t.emitted) % t.limit
	n := copy(out, t.buf[start:])
	copy(out[n:], t.buf[:start])
	return out
}

// Emitted returns the total number of events ever emitted.
func (t *Tracer) Emitted() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.emitted
}

// Dropped returns how many emitted events the ring has overwritten.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.emitted - uint64(len(t.buf))
}
