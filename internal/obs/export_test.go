package obs

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"testing"
	"time"
)

func sampleEvents() []Event {
	return []Event{
		{At: 250 * time.Millisecond, Seq: 0, Kind: KindVerusEpoch, Flow: 0, Run: 123, V0: 0.045, V1: 0.052, V2: 38, V3: 7},
		{At: 300 * time.Millisecond, Seq: 1, Kind: KindVerusState, Flow: 1, Run: 123, Str: "loss-recovery", V0: 19, V1: 0.05},
		{At: 2 * time.Second, Seq: 2, Kind: KindFaultBegin, Flow: -1, Run: 123, Str: "outage", V0: 4, V1: 12},
		{At: 6 * time.Second, Seq: 3, Kind: KindFaultEnd, Flow: -1, Run: 123, Str: "outage", V0: 0},
		{At: 6*time.Second + time.Microsecond, Seq: 4, Kind: KindNetDrop, Flow: 0, Run: 123, Str: "tail", V0: 1392},
		{At: 7 * time.Second, Seq: 5, Kind: KindStall, Flow: 0, Run: 7, V0: 3},
	}
}

func TestJSONLRoundTripExact(t *testing.T) {
	want := sampleEvents()
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, want); err != nil {
		t.Fatalf("WriteJSONL: %v", err)
	}
	got, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatalf("ReadJSONL: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, want)
	}
}

func TestJSONLDeterministicBytes(t *testing.T) {
	events := sampleEvents()
	var a, b bytes.Buffer
	if err := WriteJSONL(&a, events); err != nil {
		t.Fatal(err)
	}
	if err := WriteJSONL(&b, events); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("WriteJSONL output must be byte-identical across calls")
	}
}

func TestReadJSONLStrict(t *testing.T) {
	cases := []struct{ name, in string }{
		{"garbage", "not json\n"},
		{"unknown kind", `{"seq":0,"at_ns":0,"kind":"bogus.kind","flow":0,"run":1}` + "\n"},
		{"unknown field", `{"seq":0,"at_ns":0,"kind":"verus.epoch","flow":0,"run":1,"extra":true}` + "\n"},
		{"too many values", `{"seq":0,"at_ns":0,"kind":"verus.epoch","flow":0,"run":1,"v":[1,2,3,4,5,6,7]}` + "\n"},
	}
	for _, tc := range cases {
		if _, err := ReadJSONL(strings.NewReader(tc.in)); err == nil {
			t.Errorf("%s: ReadJSONL accepted %q", tc.name, tc.in)
		}
	}
}

func TestChromeTraceFormat(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, sampleEvents()); err != nil {
		t.Fatalf("WriteChromeTrace: %v", err)
	}
	var entries []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &entries); err != nil {
		t.Fatalf("trace is not a JSON array: %v\n%s", err, buf.String())
	}
	var counters, completes, instants int
	for _, e := range entries {
		switch e["ph"] {
		case "C":
			counters++
			if e["pid"].(float64) != 123 {
				t.Fatalf("counter pid = %v, want run 123", e["pid"])
			}
			args := e["args"].(map[string]any)
			if args["w_pkts"].(float64) != 38 {
				t.Fatalf("counter args = %v, want w_pkts 38", args)
			}
		case "X":
			completes++
			// 2s..6s outage window: ts=2e6 µs, dur=4e6 µs.
			if e["ts"].(float64) != 2e6 || e["dur"].(float64) != 4e6 {
				t.Fatalf("complete event ts/dur = %v/%v, want 2e6/4e6", e["ts"], e["dur"])
			}
		case "i":
			instants++
		default:
			t.Fatalf("unexpected phase %v", e["ph"])
		}
	}
	if counters != 1 || completes != 1 || instants != 3 {
		t.Fatalf("got %d counter, %d complete, %d instant events; want 1, 1, 3", counters, completes, instants)
	}
}

func TestChromeTraceUnclosedFaultDegradesToInstant(t *testing.T) {
	events := []Event{
		{At: time.Second, Kind: KindFaultBegin, Flow: -1, Run: 1, Str: "handover", V0: 2},
	}
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, events); err != nil {
		t.Fatal(err)
	}
	var entries []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &entries); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if len(entries) != 1 || entries[0]["ph"] != "i" {
		t.Fatalf("entries = %v, want one instant", entries)
	}
}

func TestPrometheusRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter(Labeled("verus_relearns_total", "flow", "0", "run", "123")).Add(3)
	r.Counter(Labeled("verus_relearns_total", "flow", "1", "run", "123")).Add(1)
	r.Gauge("verus_window_pkts").Set(38.5)
	h := r.Histogram("net_sojourn_seconds", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)

	var buf bytes.Buffer
	if err := WritePrometheus(&buf, r); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	pm, err := ParsePrometheus(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ParsePrometheus rejected our own exposition: %v\n%s", err, buf.String())
	}
	if pm.Types["verus_relearns_total"] != "counter" ||
		pm.Types["verus_window_pkts"] != "gauge" ||
		pm.Types["net_sojourn_seconds"] != "histogram" {
		t.Fatalf("types = %v", pm.Types)
	}
	checks := map[string]float64{
		`verus_relearns_total{flow="0",run="123"}`: 3,
		`verus_relearns_total{flow="1",run="123"}`: 1,
		`verus_window_pkts`:                        38.5,
		`net_sojourn_seconds_bucket{le="0.1"}`:     1,
		`net_sojourn_seconds_bucket{le="1"}`:       2,
		`net_sojourn_seconds_bucket{le="+Inf"}`:    3,
		`net_sojourn_seconds_count`:                3,
	}
	for name, want := range checks {
		got, ok := pm.Values[name]
		if !ok || got != want {
			t.Errorf("series %q = %v (present=%v), want %v\n%s", name, got, ok, want, buf.String())
		}
	}
	if got := pm.Values["net_sojourn_seconds_sum"]; got < 5.54 || got > 5.56 {
		t.Errorf("histogram sum = %v, want ≈5.55", got)
	}

	// Byte determinism: two renders of the same registry are identical.
	var again bytes.Buffer
	if err := WritePrometheus(&again, r); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), again.Bytes()) {
		t.Fatal("WritePrometheus must be byte-deterministic")
	}
}

func TestParsePrometheusStrict(t *testing.T) {
	cases := []struct{ name, in string }{
		{"value without TYPE", "orphan_total 3\n"},
		{"malformed comment", "# NOPE x y\n"},
		{"bad value", "# TYPE a gauge\na zero\n"},
		{"trailing timestamp", "# TYPE a gauge\na 1 1234567\n"},
		{"duplicate series", "# TYPE a gauge\na 1\na 2\n"},
		{"duplicate TYPE", "# TYPE a gauge\n# TYPE a gauge\n"},
		{"unterminated labels", "# TYPE a counter\na{x=\"1 2\n"},
		{"unquoted label", "# TYPE a counter\na{x=1} 2\n"},
		{"bad metric name", "# TYPE a counter\n1a 2\n"},
	}
	for _, tc := range cases {
		if _, err := ParsePrometheus(strings.NewReader(tc.in)); err == nil {
			t.Errorf("%s: ParsePrometheus accepted %q", tc.name, tc.in)
		}
	}

	// HELP lines and blank lines are tolerated (other exporters emit them).
	ok := "# HELP a something\n# TYPE a gauge\n\na 1\n"
	if _, err := ParsePrometheus(strings.NewReader(ok)); err != nil {
		t.Errorf("ParsePrometheus rejected valid exposition: %v", err)
	}
}

func TestMergeLabels(t *testing.T) {
	if got := mergeLabels("", `le="1"`); got != `{le="1"}` {
		t.Fatalf("mergeLabels empty = %q", got)
	}
	if got := mergeLabels(`{flow="0"}`, `le="+Inf"`); got != `{flow="0",le="+Inf"}` {
		t.Fatalf("mergeLabels = %q", got)
	}
}
