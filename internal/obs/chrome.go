package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// chromeEvent is one entry of the Chrome trace_event JSON array format
// (load chrome://tracing or https://ui.perfetto.dev). pid groups by run,
// tid by flow, ts/dur are microseconds of virtual time.
type chromeEvent struct {
	Name string             `json:"name"`
	Ph   string             `json:"ph"`
	Ts   float64            `json:"ts"`
	Dur  float64            `json:"dur,omitempty"`
	Pid  int64              `json:"pid"`
	Tid  int32              `json:"tid"`
	S    string             `json:"s,omitempty"`
	Args map[string]float64 `json:"args,omitempty"`
}

// WriteChromeTrace renders events in Chrome trace_event format:
//
//   - verus.epoch events become "C" (counter) tracks, one per flow, so the
//     window, quota, and delay estimates plot as stacked time series;
//   - fault.begin/fault.end pairs become "X" (complete) slices spanning the
//     fault window;
//   - net.attrib events become per-flow "X" (complete) slices, one per
//     nonzero delay component, laid end-to-end over the packet's lifetime
//     [sink-total, sink] so each delivery renders as a stacked delay budget;
//   - everything else becomes an "i" (instant) marker.
//
// Events must be in emission order (as returned by Tracer.Snapshot); fault
// windows still open at the end of the trace are emitted as instants.
func WriteChromeTrace(w io.Writer, events []Event) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString("[\n"); err != nil {
		return err
	}
	first := true
	emit := func(ce chromeEvent) error {
		if !first {
			if _, err := bw.WriteString(",\n"); err != nil {
				return err
			}
		}
		first = false
		b, err := json.Marshal(ce)
		if err != nil {
			return err
		}
		_, err = bw.Write(b)
		return err
	}

	// Open fault windows, keyed by (run, flow, kind string).
	type faultKey struct {
		run  int64
		flow int32
		str  string
	}
	open := make(map[faultKey]Event)

	for _, e := range events {
		ts := float64(e.At) / 1e3 // ns -> µs
		switch e.Kind {
		case KindVerusEpoch:
			ce := chromeEvent{
				Name: fmt.Sprintf("verus flow %d", e.Flow),
				Ph:   "C", Ts: ts, Pid: e.Run, Tid: e.Flow,
				Args: map[string]float64{
					"dmax_ms": e.V0 * 1e3,
					"dest_ms": e.V1 * 1e3,
					"w_pkts":  e.V2,
					"quota":   e.V3,
				},
			}
			if err := emit(ce); err != nil {
				return err
			}
		case KindNetAttrib:
			// Reconstruct the packet's lifetime span backward from the sink
			// time: components are laid end-to-end in enum order, which also
			// approximates their chronological order on a fault-free path.
			comps := [...]struct {
				name string
				secs float64
			}{
				{"queue", e.V0}, {"ser", e.V1}, {"prop", e.V2},
				{"fault", e.V3}, {"detour", e.V4},
			}
			start := ts - e.V5*1e6 // s -> µs
			for _, c := range comps {
				if c.secs <= 0 {
					continue
				}
				ce := chromeEvent{
					Name: "delay " + c.name,
					Ph:   "X", Ts: start, Dur: c.secs * 1e6,
					Pid: e.Run, Tid: e.Flow,
					Args: map[string]float64{"total_ms": e.V5 * 1e3},
				}
				if err := emit(ce); err != nil {
					return err
				}
				start += c.secs * 1e6
			}
		case KindFaultBegin:
			open[faultKey{e.Run, e.Flow, e.Str}] = e
		case KindFaultEnd:
			k := faultKey{e.Run, e.Flow, e.Str}
			if b, ok := open[k]; ok {
				delete(open, k)
				ce := chromeEvent{
					Name: "fault " + b.Str,
					Ph:   "X", Ts: float64(b.At) / 1e3, Dur: ts - float64(b.At)/1e3,
					Pid: e.Run, Tid: e.Flow,
					Args: map[string]float64{"drained": b.V1, "released": e.V0},
				}
				if err := emit(ce); err != nil {
					return err
				}
			} else if err := emit(instant(e, ts)); err != nil {
				return err
			}
		default:
			if err := emit(instant(e, ts)); err != nil {
				return err
			}
		}
	}
	// Unclosed fault windows degrade to instants at their open time.
	// Deterministic order: events arrived ordered, and at most a handful of
	// windows stay open, so sweep the original slice rather than the map.
	for _, e := range events {
		k := faultKey{e.Run, e.Flow, e.Str}
		if e.Kind != KindFaultBegin {
			continue
		}
		if _, ok := open[k]; !ok {
			continue
		}
		delete(open, k)
		if err := emit(instant(e, float64(e.At)/1e3)); err != nil {
			return err
		}
	}
	if _, err := bw.WriteString("\n]\n"); err != nil {
		return err
	}
	return bw.Flush()
}

func instant(e Event, ts float64) chromeEvent {
	name := e.Kind.String()
	if e.Str != "" {
		name += " " + e.Str
	}
	args := make(map[string]float64, 6)
	meta := kindMeta[e.Kind]
	for i, v := range [6]float64{e.V0, e.V1, e.V2, e.V3, e.V4, e.V5} {
		if meta.fields[i] != "" {
			args[meta.fields[i]] = v
		}
	}
	return chromeEvent{Name: name, Ph: "i", Ts: ts, Pid: e.Run, Tid: e.Flow, S: "t", Args: args}
}
