package obs

import (
	"testing"
	"time"
)

// The per-event costs, same-binary so code-layout variance cancels: the
// disabled path (nil observer) is the cost every instrumentation point pays
// in an unobserved run; the enabled path is one ring write plus two atomic
// increments.

func benchEvent() Event {
	return Event{At: 125 * time.Millisecond, Kind: KindVerusEpoch, Flow: 3, Run: 42,
		V0: 0.081, V1: 0.064, V2: 31.5, V3: 12}
}

func BenchmarkEmitDisabled(b *testing.B) {
	var o *Observer
	e := benchEvent()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		o.Emit(e)
	}
}

func BenchmarkEmitEnabled(b *testing.B) {
	o := NewObserver(NewTracer(1<<12), nil)
	e := benchEvent()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		o.Emit(e)
	}
}

func BenchmarkCounterInc(b *testing.B) {
	var c Counter
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}
