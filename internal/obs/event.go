package obs

import (
	"fmt"
	"time"
)

// Kind identifies the typed event an Event carries. The set covers the
// instrumentation points of ISSUE 5: Verus control-loop transitions, netsim
// packet life cycle, fault-plan activations, and transport liveness.
type Kind uint8

const (
	// KindVerusEpoch is one Verus estimation epoch (§4): V0=D_max EWMA (s),
	// V1=D_est target (s), V2=window W (pkts), V3=epoch quota S (pkts).
	KindVerusEpoch Kind = iota
	// KindVerusState is a protocol phase transition; Str is the new state,
	// V0 the window and V1 the delay target at the transition.
	KindVerusState
	// KindVerusRefit is a delay-profile re-interpolation: V0=knots,
	// V1=max observed window.
	KindVerusRefit
	// KindVerusTimeout is an RTO reaching the controller: V0=consecutive
	// timeouts, V1=restart slow-start cap (ssthresh analogue).
	KindVerusTimeout
	// KindVerusTimeoutEpoch marks a §4.2 timeout epoch opening ("open") or
	// closing on the first fresh ack ("close"); V0=stale acks discarded so
	// far.
	KindVerusTimeoutEpoch
	// KindVerusRelearn is a §4.2 full profile wipe after consecutive
	// timeouts; V0=total relearns.
	KindVerusRelearn
	// KindNetEnqueue is a packet accepted into a bottleneck queue:
	// V0=bytes, V1=queue length (pkts) after, V2=queued bytes after.
	KindNetEnqueue
	// KindNetDrop is a packet lost at the bottleneck: Str names the cause
	// ("queue" for an enqueue rejection — tail drop or AQM — and "loss" for
	// loss injection), V0=bytes.
	KindNetDrop
	// KindNetDeliver is a packet completing link service: V0=bytes,
	// V1=sojourn through the bottleneck so far (s, excl. propagation).
	KindNetDeliver
	// KindFaultBegin is a fault-plan window opening; Str is the event kind
	// ("outage", "handover"), V0=window length (s), V1=packets drained from
	// the queue on entry (outages).
	KindFaultBegin
	// KindFaultEnd is the matching window close; V0=packets burst-released
	// (handovers).
	KindFaultEnd
	// KindHandshake is a transport control-channel event; Str is the phase
	// ("probe", "ok", "fail"), V0=attempt number.
	KindHandshake
	// KindRTO is a transport retransmission timeout: V0=consecutive
	// timeouts (backoff level), V1=the next RTO (s).
	KindRTO
	// KindStall is a transport stall episode opening (no ack progress
	// through consecutive RTOs); V0=consecutive timeouts.
	KindStall
	// KindCheckpointWrite is a snapshot written at a mesh barrier:
	// V0=snapshot bytes, V1=checkpoint ordinal within the run (1-based),
	// V2=barrier virtual time (s).
	KindCheckpointWrite
	// KindCheckpointRestore is a run resumed from a snapshot: V0=snapshot
	// bytes, V1=the restored barrier virtual time (s).
	KindCheckpointRestore

	numKinds = iota
)

// kindMeta names each kind and its value slots for the exporters.
var kindMeta = [numKinds]struct {
	name   string
	fields [4]string
}{
	KindVerusEpoch:        {"verus.epoch", [4]string{"dmax", "dest", "w", "quota"}},
	KindVerusState:        {"verus.state", [4]string{"w", "dest", "", ""}},
	KindVerusRefit:        {"verus.refit", [4]string{"knots", "maxw", "", ""}},
	KindVerusTimeout:      {"verus.timeout", [4]string{"consec", "sscap", "", ""}},
	KindVerusTimeoutEpoch: {"verus.timeout_epoch", [4]string{"stale_acks", "", "", ""}},
	KindVerusRelearn:      {"verus.relearn", [4]string{"relearns", "", "", ""}},
	KindNetEnqueue:        {"net.enqueue", [4]string{"bytes", "qlen", "qbytes", ""}},
	KindNetDrop:           {"net.drop", [4]string{"bytes", "", "", ""}},
	KindNetDeliver:        {"net.deliver", [4]string{"bytes", "sojourn", "", ""}},
	KindFaultBegin:        {"fault.begin", [4]string{"dur", "drained", "", ""}},
	KindFaultEnd:          {"fault.end", [4]string{"released", "", "", ""}},
	KindHandshake:         {"transport.handshake", [4]string{"attempt", "", "", ""}},
	KindRTO:               {"transport.rto", [4]string{"consec", "rto", "", ""}},
	KindStall:             {"transport.stall", [4]string{"consec", "", "", ""}},
	KindCheckpointWrite:   {"ckpt.write", [4]string{"bytes", "n", "barrier", ""}},
	KindCheckpointRestore: {"ckpt.restore", [4]string{"bytes", "barrier", "", ""}},
}

// kindByName inverts kindMeta for the JSONL parser.
var kindByName = func() map[string]Kind {
	m := make(map[string]Kind, numKinds)
	for k, meta := range kindMeta {
		m[meta.name] = Kind(k)
	}
	return m
}()

// String returns the stable dotted name ("verus.epoch") used by every
// exporter.
func (k Kind) String() string {
	if int(k) < len(kindMeta) {
		return kindMeta[k].name
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// KindByName resolves a dotted kind name; ok is false for unknown names.
func KindByName(name string) (Kind, bool) {
	k, ok := kindByName[name]
	return k, ok
}

// Event is one structured trace record. It is a flat value — no pointers,
// no interfaces — so emitting one allocates nothing and the ring buffer is
// a single contiguous slab.
//
// At is virtual time: simulation time in sim packages, the Clock offset
// since transport start on the real-UDP path. Seq is the tracer-assigned
// emission sequence (a total order even when At ties). Run labels the trial
// (harnesses pass the derived per-trial seed) and Flow the flow index. Str
// and V0..V3 are kind-specific; see the Kind constants.
type Event struct {
	At   time.Duration
	Seq  uint64
	Kind Kind
	Flow int32
	Run  int64
	Str  string
	V0   float64
	V1   float64
	V2   float64
	V3   float64
}
