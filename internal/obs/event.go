package obs

import (
	"fmt"
	"time"
)

// Kind identifies the typed event an Event carries. The set covers the
// instrumentation points of ISSUE 5: Verus control-loop transitions, netsim
// packet life cycle, fault-plan activations, and transport liveness.
type Kind uint8

const (
	// KindVerusEpoch is one Verus estimation epoch (§4): V0=D_max EWMA (s),
	// V1=D_est target (s), V2=window W (pkts), V3=epoch quota S (pkts).
	KindVerusEpoch Kind = iota
	// KindVerusState is a protocol phase transition; Str is the new state,
	// V0 the window and V1 the delay target at the transition.
	KindVerusState
	// KindVerusRefit is a delay-profile re-interpolation: V0=knots,
	// V1=max observed window.
	KindVerusRefit
	// KindVerusTimeout is an RTO reaching the controller: V0=consecutive
	// timeouts, V1=restart slow-start cap (ssthresh analogue).
	KindVerusTimeout
	// KindVerusTimeoutEpoch marks a §4.2 timeout epoch opening ("open") or
	// closing on the first fresh ack ("close"); V0=stale acks discarded so
	// far.
	KindVerusTimeoutEpoch
	// KindVerusRelearn is a §4.2 full profile wipe after consecutive
	// timeouts; V0=total relearns.
	KindVerusRelearn
	// KindNetEnqueue is a packet accepted into a bottleneck queue:
	// V0=bytes, V1=queue length (pkts) after, V2=queued bytes after.
	KindNetEnqueue
	// KindNetDrop is a packet lost at the bottleneck: Str names the cause
	// ("queue" for an enqueue rejection — tail drop or AQM — and "loss" for
	// loss injection), V0=bytes.
	KindNetDrop
	// KindNetDeliver is a packet completing link service: V0=bytes,
	// V1=sojourn through the bottleneck so far (s, excl. propagation).
	KindNetDeliver
	// KindFaultBegin is a fault-plan window opening; Str is the event kind
	// ("outage", "handover"), V0=window length (s), V1=packets drained from
	// the queue on entry (outages).
	KindFaultBegin
	// KindFaultEnd is the matching window close; V0=packets burst-released
	// (handovers).
	KindFaultEnd
	// KindHandshake is a transport control-channel event; Str is the phase
	// ("probe", "ok", "fail"), V0=attempt number.
	KindHandshake
	// KindRTO is a transport retransmission timeout: V0=consecutive
	// timeouts (backoff level), V1=the next RTO (s).
	KindRTO
	// KindStall is a transport stall episode opening (no ack progress
	// through consecutive RTOs); V0=consecutive timeouts.
	KindStall
	// KindCheckpointWrite is a snapshot written at a mesh barrier:
	// V0=snapshot bytes, V1=checkpoint ordinal within the run (1-based),
	// V2=barrier virtual time (s).
	KindCheckpointWrite
	// KindCheckpointRestore is a run resumed from a snapshot: V0=snapshot
	// bytes, V1=the restored barrier virtual time (s).
	KindCheckpointRestore
	// KindNetAttrib is a delivered packet's one-way delay decomposition at
	// the sink: V0=queue wait, V1=serialization, V2=propagation, V3=fault
	// hold, V4=detour (all seconds), V5=the measured one-way delay, which
	// the first five sum to exactly.
	KindNetAttrib

	numKinds = iota
)

// kindMeta names each kind and its value slots for the exporters.
var kindMeta = [numKinds]struct {
	name   string
	fields [6]string
}{
	KindVerusEpoch:        {"verus.epoch", [6]string{"dmax", "dest", "w", "quota"}},
	KindVerusState:        {"verus.state", [6]string{"w", "dest"}},
	KindVerusRefit:        {"verus.refit", [6]string{"knots", "maxw"}},
	KindVerusTimeout:      {"verus.timeout", [6]string{"consec", "sscap"}},
	KindVerusTimeoutEpoch: {"verus.timeout_epoch", [6]string{"stale_acks"}},
	KindVerusRelearn:      {"verus.relearn", [6]string{"relearns"}},
	KindNetEnqueue:        {"net.enqueue", [6]string{"bytes", "qlen", "qbytes"}},
	KindNetDrop:           {"net.drop", [6]string{"bytes"}},
	KindNetDeliver:        {"net.deliver", [6]string{"bytes", "sojourn"}},
	KindFaultBegin:        {"fault.begin", [6]string{"dur", "drained"}},
	KindFaultEnd:          {"fault.end", [6]string{"released"}},
	KindHandshake:         {"transport.handshake", [6]string{"attempt"}},
	KindRTO:               {"transport.rto", [6]string{"consec", "rto"}},
	KindStall:             {"transport.stall", [6]string{"consec"}},
	KindCheckpointWrite:   {"ckpt.write", [6]string{"bytes", "n", "barrier"}},
	KindCheckpointRestore: {"ckpt.restore", [6]string{"bytes", "barrier"}},
	KindNetAttrib:         {"net.attrib", [6]string{"queue", "ser", "prop", "fault", "detour", "total"}},
}

// kindByName inverts kindMeta for the JSONL parser.
var kindByName = func() map[string]Kind {
	m := make(map[string]Kind, numKinds)
	for k, meta := range kindMeta {
		m[meta.name] = Kind(k)
	}
	return m
}()

// String returns the stable dotted name ("verus.epoch") used by every
// exporter.
func (k Kind) String() string {
	if int(k) < len(kindMeta) {
		return kindMeta[k].name
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// KindByName resolves a dotted kind name; ok is false for unknown names.
func KindByName(name string) (Kind, bool) {
	k, ok := kindByName[name]
	return k, ok
}

// Event is one structured trace record. It is a flat value — no pointers,
// no interfaces — so emitting one allocates nothing and the ring buffer is
// a single contiguous slab.
//
// At is virtual time: simulation time in sim packages, the Clock offset
// since transport start on the real-UDP path. Seq is the tracer-assigned
// emission sequence (a total order even when At ties). Run labels the trial
// (harnesses pass the derived per-trial seed) and Flow the flow index. Str
// and V0..V5 are kind-specific; see the Kind constants.
type Event struct {
	At   time.Duration
	Seq  uint64
	Kind Kind
	Flow int32
	Run  int64
	Str  string
	V0   float64
	V1   float64
	V2   float64
	V3   float64
	V4   float64
	V5   float64
}
