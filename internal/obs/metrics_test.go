package obs

import (
	"math"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("reqs_total")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if r.Counter("reqs_total") != c {
		t.Fatal("Counter must return the same instrument for the same name")
	}

	g := r.Gauge("window")
	g.Set(17.5)
	if got := g.Value(); got != 17.5 {
		t.Fatalf("gauge = %v, want 17.5", got)
	}
	g.Set(-3)
	if got := g.Value(); got != -3 {
		t.Fatalf("gauge = %v, want -3", got)
	}
}

func TestRegistryKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x")
	defer func() {
		if recover() == nil {
			t.Fatal("requesting a counter name as a gauge must panic")
		}
	}()
	r.Gauge("x")
}

func TestRegisterCounterAdoptsExternal(t *testing.T) {
	r := NewRegistry()
	var owned Counter
	owned.Add(7)
	r.RegisterCounter("adopted_total", &owned)
	if got := r.Counter("adopted_total"); got != &owned {
		t.Fatal("registry must hand back the adopted counter")
	}
	owned.Inc()
	snap := r.Snapshot()
	if len(snap) != 1 || snap[0].Value != 8 {
		t.Fatalf("snapshot = %+v, want one sample with value 8", snap)
	}
}

func TestHistogramBucketsAndFixedPointSum(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("delay_seconds", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.1, 0.5, 2, 50} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if got, want := h.Sum(), 52.65; math.Abs(got-want) > 1e-9 {
		t.Fatalf("sum = %v, want %v", got, want)
	}
	snap := r.Snapshot()
	if len(snap) != 1 {
		t.Fatalf("snapshot len = %d, want 1", len(snap))
	}
	s := snap[0]
	// Cumulative buckets: <=0.1 holds {0.05, 0.1}, <=1 adds {0.5}, <=10
	// adds {2}; 50 lands in the implicit +Inf bucket (Count).
	want := []int64{2, 3, 4}
	for i, w := range want {
		if s.Buckets[i] != w {
			t.Fatalf("bucket[%d] = %d, want %d (all: %v)", i, s.Buckets[i], w, s.Buckets)
		}
	}
}

func TestHistogramBadBoundsPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("non-ascending bounds must panic")
		}
	}()
	newHistogram([]float64{1, 1})
}

func TestSnapshotSorted(t *testing.T) {
	r := NewRegistry()
	r.Counter("zeta_total")
	r.Gauge("alpha")
	r.Counter("mid_total")
	snap := r.Snapshot()
	names := make([]string, len(snap))
	for i, s := range snap {
		names[i] = s.Name
	}
	want := []string{"alpha", "mid_total", "zeta_total"}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("snapshot order = %v, want %v", names, want)
		}
	}
}

func TestConcurrentRecordingIsExact(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("n_total")
	h := r.Histogram("v", []float64{10})
	var wg sync.WaitGroup
	const workers, per = 8, 1000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
				h.Observe(0.5)
			}
		}()
	}
	wg.Wait()
	if c.Value() != workers*per {
		t.Fatalf("counter = %d, want %d", c.Value(), workers*per)
	}
	if h.Count() != workers*per {
		t.Fatalf("histogram count = %d, want %d", h.Count(), workers*per)
	}
	// Fixed-point accumulation: the sum is exact regardless of interleaving.
	if got, want := h.Sum(), float64(workers*per)*0.5; got != want {
		t.Fatalf("histogram sum = %v, want exactly %v", got, want)
	}
}

func TestLabeled(t *testing.T) {
	if got := Labeled("x_total"); got != "x_total" {
		t.Fatalf("Labeled no-pairs = %q", got)
	}
	got := Labeled("x_total", "flow", "0", "run", "123")
	if want := `x_total{flow="0",run="123"}`; got != want {
		t.Fatalf("Labeled = %q, want %q", got, want)
	}
	esc := Labeled("x", "s", "a\"b\\c\nd")
	if want := `x{s="a\"b\\c\nd"}`; esc != want {
		t.Fatalf("Labeled escape = %q, want %q", esc, want)
	}
}

func TestObserverWithRegistryResolvesShared(t *testing.T) {
	r := NewRegistry()
	o := NewObserver(nil, r)
	a := o.Counter("shared_total")
	b := o.Counter("shared_total")
	if a != b {
		t.Fatal("enabled observer must resolve to the shared registry instrument")
	}
	a.Inc()
	if r.Counter("shared_total").Value() != 1 {
		t.Fatal("record must be visible through the registry")
	}
}
