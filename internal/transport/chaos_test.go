package transport_test

import (
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/faults"
	"repro/internal/transport"
	"repro/internal/verus"
)

// Transport-level chaos: the real UDP sender/receiver pair running through
// the faults.Proxy. These tests are the -race half of the chaos suite — the
// netsim sweep proves controller liveness, this one proves the transport's
// goroutines (read loop, event loop, proxy relays) survive outages without
// deadlocking and report degradation instead of wedging silently.

// closeWithin fails the test if fn does not return within d — the deadlock
// detector for Close paths.
func closeWithin(t *testing.T, what string, d time.Duration, fn func() error) {
	t.Helper()
	done := make(chan error, 1)
	go func() { done <- fn() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("%s: %v", what, err)
		}
	case <-time.After(d):
		t.Fatalf("%s did not return within %v (goroutine deadlock)", what, d)
	}
}

func TestProxyOutageRecovery(t *testing.T) {
	r, err := transport.NewReceiver("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	start := time.Now()
	plan := &faults.Plan{
		Name:   "test-outage",
		Events: []faults.Event{{Kind: faults.Outage, At: 500 * time.Millisecond, Dur: 700 * time.Millisecond}},
	}
	proxy, err := faults.NewProxy(r.Addr().String(), plan, 1, func() time.Duration { return time.Since(start) })
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()

	s, err := transport.Dial(proxy.Addr(), verus.New(verus.ResilientConfig()), transport.DefaultSenderConfig())
	if err != nil {
		t.Fatal(err)
	}

	time.Sleep(1200 * time.Millisecond) // through the outage
	duringOutage := s.Stats().Acked
	time.Sleep(2500 * time.Millisecond) // recovery window
	afterRecovery := s.Stats().Acked
	if afterRecovery <= duringOutage {
		t.Fatalf("no ack progress after the outage: %d → %d", duringOutage, afterRecovery)
	}
	if ps := proxy.Stats(); ps.SendDropped == 0 {
		t.Fatal("proxy dropped nothing; the outage never bit")
	}
	closeWithin(t, "sender close", 5*time.Second, s.Close)
	closeWithin(t, "receiver close", 5*time.Second, r.Close)
}

// TestProxyBlackoutStallReport pins graceful degradation: when the path
// goes dark mid-flow, the sender must count a stall and say so on Errors()
// while continuing to probe — and must still close cleanly.
func TestProxyBlackoutStallReport(t *testing.T) {
	r, err := transport.NewReceiver("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	start := time.Now()
	plan := &faults.Plan{
		Name:   "test-blackout",
		Events: []faults.Event{{Kind: faults.Outage, At: 300 * time.Millisecond, Dur: 20 * time.Second}},
	}
	proxy, err := faults.NewProxy(r.Addr().String(), plan, 1, func() time.Duration { return time.Since(start) })
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()

	s, err := transport.Dial(proxy.Addr(), verus.New(verus.ResilientConfig()), transport.DefaultSenderConfig())
	if err != nil {
		t.Fatal(err)
	}

	// The stall report needs stallReportAfter=3 consecutive RTOs: with the
	// 200 ms RTO floor and doubling backoff that is ~1.5 s into the
	// blackout. Wait on the Errors channel rather than sleeping blind.
	select {
	case reportErr := <-s.Errors():
		if !strings.Contains(reportErr.Error(), "stalled") {
			t.Fatalf("first degradation report is not a stall: %v", reportErr)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("no stall report within 15 s of a blackout")
	}
	if got := s.Stats().Stalls; got == 0 {
		t.Fatal("Stalls counter still zero after a stall report")
	}
	closeWithin(t, "sender close", 5*time.Second, s.Close)
}

// TestProxyHandshakeThroughBlackout pins the Dial retry path against a dead
// window: a handshake attempted entirely inside an outage fails with
// ErrHandshakeFailed after its bounded budget.
func TestProxyHandshakeThroughBlackout(t *testing.T) {
	r, err := transport.NewReceiver("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	start := time.Now()
	plan := &faults.Plan{
		Name:   "test-dead-start",
		Events: []faults.Event{{Kind: faults.Outage, At: 0, Dur: 30 * time.Second}},
	}
	proxy, err := faults.NewProxy(r.Addr().String(), plan, 1, func() time.Duration { return time.Since(start) })
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()

	cfg := transport.DefaultSenderConfig()
	cfg.HandshakeTimeout = 800 * time.Millisecond
	cfg.HandshakeAttempts = 3
	s, err := transport.Dial(proxy.Addr(), verus.New(verus.DefaultConfig()), cfg)
	if err == nil {
		s.Close()
		t.Fatal("handshake succeeded through a full blackout")
	}
	if !errors.Is(err, transport.ErrHandshakeFailed) {
		t.Fatalf("error %v does not wrap ErrHandshakeFailed", err)
	}
}

// TestProxyLossBurstsDeliver runs the city-loss stochastic plan over the
// real stack: despite bursts, corruption, duplication, and reordering, the
// transfer makes progress and both ends close cleanly.
func TestProxyLossBurstsDeliver(t *testing.T) {
	r, err := transport.NewReceiver("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	start := time.Now()
	plan := &faults.Plan{
		Name: "test-bursts",
		Loss: &faults.GilbertElliott{PGoodBad: 0.01, PBadGood: 0.2, LossGood: 0.001, LossBad: 0.3},
		// Corruption exercises the receiver's parse-reject path; dup and
		// reorder exercise the sender's out-of-order ack handling.
		CorruptProb:  0.005,
		DupProb:      0.005,
		ReorderProb:  0.01,
		ReorderDelay: 10 * time.Millisecond,
	}
	proxy, err := faults.NewProxy(r.Addr().String(), plan, 99, func() time.Duration { return time.Since(start) })
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()

	s, err := transport.Dial(proxy.Addr(), verus.New(verus.ResilientConfig()), transport.DefaultSenderConfig())
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(2 * time.Second)
	ss := s.Stats()
	if ss.Acked == 0 {
		t.Fatal("no acks through the bursty path")
	}
	if r.Stats().UniquePackets == 0 {
		t.Fatal("no unique packets delivered")
	}
	closeWithin(t, "sender close", 5*time.Second, s.Close)
}
