package transport

import (
	"time"

	"repro/internal/netsim"
)

// Clock supplies the transport's notion of time. The sender and receiver
// take all timestamps and tickers from this interface, so the only
// wall-clock reads in the package live in SystemClock — which keeps the
// nowalltime contract auditable: a simulated transport injects a SimClock
// and runs entirely on netsim virtual time, while the real-UDP commands use
// the host clock through the one exempted implementation.
type Clock interface {
	// Now returns the current time.
	Now() time.Time
	// NewTicker returns a ticker firing every d.
	NewTicker(d time.Duration) Ticker
}

// Ticker is the subset of time.Ticker the transport consumes.
type Ticker interface {
	// C returns the tick channel.
	C() <-chan time.Time
	// Stop releases the ticker.
	Stop()
}

// SystemClock returns the host-clock implementation used by the real-UDP
// path (cmd/verus-client, cmd/verus-server); it is the default when a
// config carries a nil Clock.
func SystemClock() Clock { return systemClock{} }

type systemClock struct{}

// Now reads the host clock — the transport's single sanctioned wall-time
// source.
func (systemClock) Now() time.Time {
	//lint:nowalltime real-time -- the real-UDP transport paces actual sockets; SystemClock is the one exempted wall-clock source, and simulated runs inject SimClock instead
	return time.Now()
}

// NewTicker starts a host-clock ticker.
func (systemClock) NewTicker(d time.Duration) Ticker {
	//lint:nowalltime real-time -- host-clock ticker for the real-UDP event loop; simulated runs inject SimClock instead
	return systemTicker{time.NewTicker(d)}
}

type systemTicker struct{ t *time.Ticker }

func (t systemTicker) C() <-chan time.Time { return t.t.C }
func (t systemTicker) Stop()               { t.t.Stop() }

// SimClock adapts a netsim.Sim to the Clock interface so a simulated
// transport runs on virtual time: Now is the simulation clock offset from a
// fixed epoch (never the host clock), and tickers are driven by sim.Every.
//
// Like the Sim itself, a SimClock is strictly single-goroutine: the code
// consuming the clock must run interleaved with sim.Run on one goroutine,
// which is how every harness in internal/experiments is structured. Ticker
// channels are buffered one deep and dropped-on-full, matching time.Ticker
// semantics for a consumer that falls behind.
type SimClock struct {
	sim   *netsim.Sim
	epoch time.Time
}

// NewSimClock returns a Clock backed by the simulation's virtual time.
func NewSimClock(sim *netsim.Sim) *SimClock {
	return &SimClock{sim: sim, epoch: time.Unix(0, 0)}
}

// Now returns the fixed epoch advanced by the simulation clock, so
// timestamps are a pure function of simulated time.
func (c *SimClock) Now() time.Time { return c.epoch.Add(c.sim.Now()) }

// NewTicker fires on simulated time via sim.Every.
func (c *SimClock) NewTicker(d time.Duration) Ticker {
	ch := make(chan time.Time, 1)
	stop := c.sim.Every(d, func() {
		select {
		case ch <- c.Now():
		default: // consumer behind; drop the tick like time.Ticker does
		}
	})
	return &simTicker{ch: ch, stop: stop}
}

type simTicker struct {
	ch   chan time.Time
	stop func()
}

func (t *simTicker) C() <-chan time.Time { return t.ch }
func (t *simTicker) Stop()               { t.stop() }
