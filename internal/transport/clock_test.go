package transport

import (
	"testing"
	"time"

	"repro/internal/netsim"
)

// TestSimClockNow pins the virtual clock contract: timestamps are a pure
// function of simulated time from a fixed epoch, with no host-clock leak.
func TestSimClockNow(t *testing.T) {
	sim := netsim.NewSim()
	c := NewSimClock(sim)
	if got := c.Now(); !got.Equal(time.Unix(0, 0)) {
		t.Fatalf("epoch Now() = %v, want unix epoch", got)
	}
	sim.Run(250 * time.Millisecond)
	want := time.Unix(0, 0).Add(250 * time.Millisecond)
	if got := c.Now(); !got.Equal(want) {
		t.Fatalf("Now() after Run = %v, want %v", got, want)
	}
}

// TestSimClockTicker drives a SimClock ticker purely on virtual time and
// checks tick timestamps and time.Ticker-style drop semantics.
func TestSimClockTicker(t *testing.T) {
	sim := netsim.NewSim()
	c := NewSimClock(sim)
	ticker := c.NewTicker(10 * time.Millisecond)
	defer ticker.Stop()

	var got []time.Time
	// Drain inside the simulation, as a single-goroutine consumer would.
	stopDrain := sim.Every(10*time.Millisecond, func() {
		select {
		case ts := <-ticker.C():
			got = append(got, ts)
		default:
		}
	})
	sim.Run(35 * time.Millisecond)
	stopDrain()
	if len(got) != 3 {
		t.Fatalf("ticks = %d, want 3", len(got))
	}
	for i, ts := range got {
		want := time.Unix(0, 0).Add(time.Duration(i+1) * 10 * time.Millisecond)
		if !ts.Equal(want) {
			t.Fatalf("tick %d at %v, want %v", i, ts, want)
		}
	}

	// With no consumer, the 1-deep channel keeps the oldest pending tick
	// and drops the rest — the same contract as time.Ticker.
	sim.Run(100 * time.Millisecond)
	if n := len(ticker.C()); n != 1 {
		t.Fatalf("pending ticks = %d, want 1", n)
	}
	ts := <-ticker.C()
	if want := time.Unix(0, 0).Add(40 * time.Millisecond); !ts.Equal(want) {
		t.Fatalf("buffered tick at %v, want %v", ts, want)
	}
}
