package transport

import (
	"net"
	"sync"
	"time"

	"repro/internal/cc"
	"repro/internal/stats"
)

// SenderConfig configures a Sender.
type SenderConfig struct {
	// PayloadBytes is the data payload per packet; the wire adds the
	// header. The paper uses an MTU of 1400 bytes.
	PayloadBytes int
	// Flow tags packets of this sender (0-255).
	Flow byte
	// Housekeep bounds how often loss/RTO checks run when the controller
	// is purely ack-clocked. Default 5 ms.
	Housekeep time.Duration
	// Clock supplies timestamps and the event-loop ticker. nil selects
	// SystemClock (the real-UDP path); simulated transports inject a
	// SimClock so the sender runs on netsim virtual time.
	Clock Clock
}

// DefaultSenderConfig returns the paper's packet size with 5 ms
// housekeeping.
func DefaultSenderConfig() SenderConfig {
	return SenderConfig{PayloadBytes: 1400 - headerSize, Housekeep: 5 * time.Millisecond}
}

// SenderStats summarizes a sender's run.
type SenderStats struct {
	Sent, Retransmits, Acked, Losses, Timeouts int64
	// RTT aggregates round-trip samples in seconds.
	RTT *stats.Summary
}

// Sender drives a cc.Controller over a real UDP socket. All controller
// interaction happens on the internal event-loop goroutine, matching the
// single-threaded contract of cc.Controller.
type Sender struct {
	cfg   SenderConfig
	conn  *net.UDPConn
	ctrl  cc.Controller
	clock Clock

	start time.Time

	mu    sync.Mutex
	stats SenderStats

	ackCh  chan Header
	stopCh chan struct{}
	doneCh chan struct{}

	// Event-loop state (not locked; loop-owned).
	nextSeq  int64
	pending  []*pendingPkt
	srtt     time.Duration
	rttvar   time.Duration
	lastProg time.Duration
	backoff  int // consecutive RTOs without progress
}

type pendingPkt struct {
	seq        int64
	sentAt     time.Duration
	window     int
	ackedAfter int
	retx       int
}

// Dial connects a sender to the receiver at addr and starts its event loop.
func Dial(addr string, ctrl cc.Controller, cfg SenderConfig) (*Sender, error) {
	ua, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, err
	}
	conn, err := net.DialUDP("udp", nil, ua)
	if err != nil {
		return nil, err
	}
	if cfg.PayloadBytes <= 0 {
		cfg.PayloadBytes = 1400 - headerSize
	}
	if cfg.Housekeep <= 0 {
		cfg.Housekeep = 5 * time.Millisecond
	}
	if cfg.Clock == nil {
		cfg.Clock = SystemClock()
	}
	s := &Sender{
		cfg:    cfg,
		conn:   conn,
		ctrl:   ctrl,
		clock:  cfg.Clock,
		start:  cfg.Clock.Now(),
		ackCh:  make(chan Header, 1024),
		stopCh: make(chan struct{}),
		doneCh: make(chan struct{}),
	}
	s.stats.RTT = stats.NewSummary(1024)
	go s.readLoop()
	go s.run()
	return s, nil
}

// Stats returns a snapshot of the sender's counters. RTT is shared — do not
// mutate it.
func (s *Sender) Stats() SenderStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// Close stops the sender and closes its socket.
func (s *Sender) Close() error {
	select {
	case <-s.stopCh:
	default:
		close(s.stopCh)
	}
	<-s.doneCh
	return s.conn.Close()
}

func (s *Sender) now() time.Duration { return s.clock.Now().Sub(s.start) }

func (s *Sender) readLoop() {
	buf := make([]byte, maxPacket)
	for {
		n, err := s.conn.Read(buf)
		if err != nil {
			return
		}
		h, err := ParseHeader(buf[:n])
		if err != nil || h.Type != typeAck {
			continue
		}
		select {
		case s.ackCh <- h:
		case <-s.stopCh:
			return
		}
	}
}

func (s *Sender) run() {
	defer close(s.doneCh)
	interval := s.ctrl.TickInterval()
	hasTick := interval > 0
	if !hasTick {
		interval = s.cfg.Housekeep
	}
	ticker := s.clock.NewTicker(interval)
	defer ticker.Stop()
	s.lastProg = s.now()
	s.trySend()
	for {
		select {
		case <-s.stopCh:
			return
		case h := <-s.ackCh:
			s.handleAck(h)
			s.trySend()
		case <-ticker.C():
			now := s.now()
			if hasTick {
				s.ctrl.Tick(now)
			}
			s.checkTimers(now)
			s.trySend()
		}
	}
}

func (s *Sender) trySend() {
	now := s.now()
	n := s.ctrl.Allowance(now, len(s.pending))
	buf := make([]byte, 0, headerSize+s.cfg.PayloadBytes)
	for i := 0; i < n; i++ {
		h := Header{
			Type:      typeData,
			Flow:      s.cfg.Flow,
			Seq:       s.nextSeq,
			SentNanos: s.clock.Now().UnixNano(),
			Window:    uint32(s.ctrl.SendTag()),
			Length:    uint16(s.cfg.PayloadBytes),
		}
		buf = h.Marshal(buf[:0])
		buf = append(buf, make([]byte, s.cfg.PayloadBytes)...)
		if _, err := s.conn.Write(buf); err != nil {
			return
		}
		s.pending = append(s.pending, &pendingPkt{seq: h.Seq, sentAt: now, window: int(h.Window)})
		s.nextSeq++
		s.mu.Lock()
		s.stats.Sent++
		s.mu.Unlock()
		s.ctrl.OnSend(now, h.Seq, len(s.pending))
	}
}

func (s *Sender) handleAck(h Header) {
	now := s.now()
	idx := -1
	for i, p := range s.pending {
		if p.seq == h.Seq {
			idx = i
			break
		}
		if p.seq > h.Seq {
			break
		}
	}
	if idx < 0 {
		return
	}
	p := s.pending[idx]
	s.pending = append(s.pending[:idx], s.pending[idx+1:]...)
	rtt := now - p.sentAt
	s.updateRTT(rtt)
	s.lastProg = now
	s.backoff = 0

	s.mu.Lock()
	s.stats.Acked++
	s.stats.RTT.Add(rtt.Seconds())
	s.mu.Unlock()

	s.ctrl.OnAck(now, cc.AckSample{
		Seq:        h.Seq,
		RTT:        rtt,
		SentWindow: p.window,
		Inflight:   len(s.pending),
		Bytes:      int(h.Length) + headerSize,
	})
	s.detectLosses(now, h.Seq)
}

// detectLosses mirrors the prototype's policy (§5.2): a missing sequence is
// declared lost after three later acknowledgements or a 3×delay timer, and
// the missing packet is retransmitted.
func (s *Sender) detectLosses(now time.Duration, ackedSeq int64) {
	timerCut := 3 * s.srtt
	kept := s.pending[:0]
	var lost []*pendingPkt
	for _, p := range s.pending {
		isLost := false
		if p.seq < ackedSeq {
			p.ackedAfter++
			if p.ackedAfter >= 3 {
				isLost = true
			}
		}
		if !isLost && s.srtt > 0 && now-p.sentAt > timerCut && p.ackedAfter > 0 {
			isLost = true
		}
		if isLost {
			lost = append(lost, p)
			continue
		}
		kept = append(kept, p)
	}
	s.pending = kept
	for _, p := range lost {
		s.mu.Lock()
		s.stats.Losses++
		s.mu.Unlock()
		s.ctrl.OnLoss(now, cc.LossEvent{Seq: p.seq, SentWindow: p.window, Inflight: len(s.pending)})
		s.retransmit(p, now)
	}
}

func (s *Sender) retransmit(p *pendingPkt, now time.Duration) {
	if p.retx >= 3 {
		return // give up; the stream is a full-buffer source anyway
	}
	h := Header{
		Type:      typeData,
		Flow:      s.cfg.Flow,
		Seq:       p.seq,
		SentNanos: s.clock.Now().UnixNano(),
		Window:    uint32(s.ctrl.SendTag()),
		Length:    uint16(s.cfg.PayloadBytes),
	}
	buf := h.Marshal(make([]byte, 0, headerSize+s.cfg.PayloadBytes))
	buf = append(buf, make([]byte, s.cfg.PayloadBytes)...)
	if _, err := s.conn.Write(buf); err != nil {
		return
	}
	np := &pendingPkt{seq: p.seq, sentAt: now, window: int(h.Window), retx: p.retx + 1}
	// Re-insert in seq order.
	pos := len(s.pending)
	for i, q := range s.pending {
		if q.seq > np.seq {
			pos = i
			break
		}
	}
	s.pending = append(s.pending, nil)
	copy(s.pending[pos+1:], s.pending[pos:])
	s.pending[pos] = np
	s.mu.Lock()
	s.stats.Retransmits++
	s.mu.Unlock()
}

func (s *Sender) updateRTT(rtt time.Duration) {
	if s.srtt == 0 {
		s.srtt = rtt
		s.rttvar = rtt / 2
		return
	}
	diff := s.srtt - rtt
	if diff < 0 {
		diff = -diff
	}
	s.rttvar = (3*s.rttvar + diff) / 4
	s.srtt = (7*s.srtt + rtt) / 8
}

func (s *Sender) rto() time.Duration {
	r := time.Second
	if s.srtt != 0 {
		// 2×srtt tolerates the RTT doubling within one round that slow
		// start over a filling buffer produces; rttvar alone lags it.
		r = 2*s.srtt + 4*s.rttvar
	}
	for i := 0; i < s.backoff && r < 60*time.Second; i++ {
		r *= 2 // exponential backoff after consecutive timeouts
	}
	if r < 200*time.Millisecond {
		r = 200 * time.Millisecond
	}
	if r > 60*time.Second {
		r = 60 * time.Second
	}
	return r
}

func (s *Sender) checkTimers(now time.Duration) {
	if len(s.pending) == 0 {
		return
	}
	if now-s.lastProg < s.rto() {
		return
	}
	s.pending = s.pending[:0]
	s.lastProg = now
	s.backoff++
	s.mu.Lock()
	s.stats.Timeouts++
	s.mu.Unlock()
	s.ctrl.OnTimeout(now)
}
