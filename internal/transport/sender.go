package transport

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"strconv"
	"sync"
	"time"

	"repro/internal/cc"
	"repro/internal/obs"
	"repro/internal/stats"
)

// SenderConfig configures a Sender.
type SenderConfig struct {
	// PayloadBytes is the data payload per packet; the wire adds the
	// header. The paper uses an MTU of 1400 bytes.
	PayloadBytes int
	// Flow tags packets of this sender (0-255).
	Flow byte
	// Housekeep bounds how often loss/RTO checks run when the controller
	// is purely ack-clocked. Default 5 ms.
	Housekeep time.Duration
	// Clock supplies timestamps and the event-loop ticker. nil selects
	// SystemClock (the real-UDP path); simulated transports inject a
	// SimClock so the sender runs on netsim virtual time.
	Clock Clock
	// HandshakeTimeout bounds the total time Dial spends probing the
	// receiver before giving up with ErrHandshakeFailed. 0 selects the
	// 3-second default; a negative value skips the handshake entirely
	// (required when injecting a virtual Clock: the handshake arms real
	// socket deadlines, which need a wall-backed clock).
	HandshakeTimeout time.Duration
	// HandshakeAttempts bounds the number of SYN probes within the
	// timeout. Each attempt waits with exponential backoff plus jitter
	// drawn from HandshakeSeed. 0 selects the default of 5.
	HandshakeAttempts int
	// HandshakeSeed seeds the backoff-jitter RNG, keeping retry timing a
	// pure function of configuration. 0 selects a fixed default seed.
	HandshakeSeed int64
	// Obs attaches the observability layer: handshake/RTO/stall trace
	// events and registry-backed counters. nil (the default) keeps the
	// sender on its disabled nil-check fast path.
	Obs *obs.Observer
	// ObsRun labels this sender's metric series and trace events when Obs
	// is set, so concurrent runs sharing one observer stay distinct.
	ObsRun int64
}

// DefaultSenderConfig returns the paper's packet size with 5 ms
// housekeeping.
func DefaultSenderConfig() SenderConfig {
	return SenderConfig{PayloadBytes: 1400 - headerSize, Housekeep: 5 * time.Millisecond}
}

// ErrHandshakeFailed is wrapped by Dial when the receiver never answers the
// control-channel handshake within the retry budget. Before PR 4 this
// condition produced a "connected" sender that wedged silently forever.
var ErrHandshakeFailed = errors.New("transport: handshake failed")

// SenderStats summarizes a sender's run.
type SenderStats struct {
	Sent, Retransmits, Acked, Losses, Timeouts int64
	// HandshakeRetries counts SYN probes beyond the first during Dial.
	HandshakeRetries int64
	// Stalls counts no-progress episodes: stretches where repeated RTOs
	// fired with data pending and no ack arriving. Each episode is counted
	// once and also reported on the Errors channel.
	Stalls int64
	// RTT aggregates round-trip samples in seconds.
	RTT *stats.Summary
}

// senderCounters are the sender's telemetry instruments. They are obs
// counters (atomic, zero-value-ready) so Dial can register the very same
// instruments with a metrics registry; Stats snapshots their values into
// the legacy SenderStats struct.
type senderCounters struct {
	sent, retransmits, acked, losses, timeouts obs.Counter
	handshakeRetries, stalls                   obs.Counter
}

// Sender drives a cc.Controller over a real UDP socket. All controller
// interaction happens on the internal event-loop goroutine, matching the
// single-threaded contract of cc.Controller.
type Sender struct {
	cfg   SenderConfig
	conn  *net.UDPConn
	ctrl  cc.Controller
	clock Clock

	start time.Time

	ctrs senderCounters
	obs  *obs.Observer // nil unless cfg.Obs was set

	mu  sync.Mutex
	rtt *stats.Summary

	ackCh  chan Header
	errCh  chan error
	stopCh chan struct{}
	doneCh chan struct{}

	// Event-loop state (not locked; loop-owned).
	nextSeq  int64
	pending  []*pendingPkt
	srtt     time.Duration
	rttvar   time.Duration
	lastProg time.Duration
	backoff  int  // consecutive RTOs without progress
	stalled  bool // a stall episode is open (reported once)
}

// stallReportAfter is how many consecutive no-progress RTOs open a stall
// episode. Three back-to-back timeouts with exponential backoff means
// seconds of silence — long past ordinary loss recovery.
const stallReportAfter = 3

type pendingPkt struct {
	seq        int64
	sentAt     time.Duration
	window     int
	ackedAfter int
	retx       int
}

// Dial connects a sender to the receiver at addr, verifies liveness with a
// bounded-retry control handshake, and starts the event loop. A receiver
// that never answers produces an error wrapping ErrHandshakeFailed instead
// of a sender that wedges silently.
func Dial(addr string, ctrl cc.Controller, cfg SenderConfig) (*Sender, error) {
	ua, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, err
	}
	conn, err := net.DialUDP("udp", nil, ua)
	if err != nil {
		return nil, err
	}
	if cfg.PayloadBytes <= 0 {
		cfg.PayloadBytes = 1400 - headerSize
	}
	if cfg.Housekeep <= 0 {
		cfg.Housekeep = 5 * time.Millisecond
	}
	if cfg.Clock == nil {
		cfg.Clock = SystemClock()
	}
	if cfg.HandshakeTimeout == 0 {
		cfg.HandshakeTimeout = 3 * time.Second
	}
	if cfg.HandshakeAttempts <= 0 {
		cfg.HandshakeAttempts = 5
	}
	if cfg.HandshakeSeed == 0 {
		cfg.HandshakeSeed = 1
	}
	s := &Sender{
		cfg:    cfg,
		conn:   conn,
		ctrl:   ctrl,
		clock:  cfg.Clock,
		start:  cfg.Clock.Now(),
		obs:    cfg.Obs,
		ackCh:  make(chan Header, 1024),
		errCh:  make(chan error, 8),
		stopCh: make(chan struct{}),
		doneCh: make(chan struct{}),
	}
	s.rtt = stats.NewSummary(1024)
	if s.obs != nil {
		label := func(name string) string {
			return obs.Labeled(name, "flow", strconv.Itoa(int(cfg.Flow)), "run", strconv.FormatInt(cfg.ObsRun, 10))
		}
		s.obs.RegisterCounter(label("transport_sent_total"), &s.ctrs.sent)
		s.obs.RegisterCounter(label("transport_retransmits_total"), &s.ctrs.retransmits)
		s.obs.RegisterCounter(label("transport_acked_total"), &s.ctrs.acked)
		s.obs.RegisterCounter(label("transport_losses_total"), &s.ctrs.losses)
		s.obs.RegisterCounter(label("transport_timeouts_total"), &s.ctrs.timeouts)
		s.obs.RegisterCounter(label("transport_handshake_retries_total"), &s.ctrs.handshakeRetries)
		s.obs.RegisterCounter(label("transport_stalls_total"), &s.ctrs.stalls)
		if v, ok := ctrl.(obs.Observable); ok {
			v.Observe(s.obs, cfg.ObsRun, int(cfg.Flow))
		}
	}
	if cfg.HandshakeTimeout > 0 {
		if err := s.handshake(); err != nil {
			conn.Close()
			return nil, err
		}
	}
	go s.readLoop()
	go s.run()
	return s, nil
}

// handshake probes the receiver with typeSyn until the echoed typeSynAck
// arrives, retrying with exponential backoff plus seeded jitter (±25% of
// the wait, so synchronized restarts do not re-collide), bounded by both an
// attempt budget and a total deadline. Runs before the read/event loops
// start, so it owns the socket.
func (s *Sender) handshake() error {
	rng := rand.New(rand.NewSource(s.cfg.HandshakeSeed))
	deadline := s.clock.Now().Add(s.cfg.HandshakeTimeout)
	buf := make([]byte, maxPacket)
	synBuf := make([]byte, 0, headerSize)
	wait := 100 * time.Millisecond
	var attempts int
	for attempts = 0; attempts < s.cfg.HandshakeAttempts; attempts++ {
		now := s.clock.Now()
		if !now.Before(deadline) {
			break
		}
		if attempts > 0 {
			s.ctrs.handshakeRetries.Inc()
		}
		s.emitHandshake("probe", attempts+1)
		syn := Header{Type: typeSyn, Flow: s.cfg.Flow, SentNanos: now.UnixNano()}
		synBuf = syn.Marshal(synBuf[:0])
		if _, err := s.conn.Write(synBuf); err != nil {
			// Likely ICMP unreachable surfaced on the connected socket;
			// back off and retry within the budget like any lost probe.
			s.sleepUntilNextAttempt(&wait, rng, deadline)
			continue
		}
		jitter := time.Duration(float64(wait) * 0.25 * (rng.Float64()*2 - 1))
		attemptDeadline := now.Add(wait + jitter)
		if attemptDeadline.After(deadline) {
			attemptDeadline = deadline
		}
		s.conn.SetReadDeadline(attemptDeadline)
		got := false
		for {
			n, err := s.conn.Read(buf)
			if err != nil {
				break // attempt deadline, or unreachable; retry
			}
			if h, err := ParseHeader(buf[:n]); err == nil && h.Type == typeSynAck {
				got = true
				break
			}
			// Anything else (stray data, corrupt datagram) is ignored.
		}
		if got {
			s.conn.SetReadDeadline(time.Time{})
			s.emitHandshake("ok", attempts+1)
			return nil
		}
		wait *= 2
	}
	s.conn.SetReadDeadline(time.Time{})
	s.emitHandshake("fail", attempts)
	return fmt.Errorf("%w: no answer from %v after %d probes over %v",
		ErrHandshakeFailed, s.conn.RemoteAddr(), attempts, s.clock.Now().Sub(s.start))
}

// emitHandshake records a control-channel handshake phase when tracing is
// attached. At is the Clock offset since the sender started — the
// transport's virtual time axis.
func (s *Sender) emitHandshake(phase string, attempt int) {
	if s.obs == nil {
		return
	}
	s.obs.Emit(obs.Event{At: s.now(), Kind: obs.KindHandshake, Flow: int32(s.cfg.Flow),
		Run: s.cfg.ObsRun, Str: phase, V0: float64(attempt)})
}

// sleepUntilNextAttempt burns the current backoff interval (with jitter)
// when the probe could not even be written, without exceeding the deadline.
// It waits on the socket (which has a read deadline set) rather than the
// scheduler, keeping the clock the single time source.
func (s *Sender) sleepUntilNextAttempt(wait *time.Duration, rng *rand.Rand, deadline time.Time) {
	jitter := time.Duration(float64(*wait) * 0.25 * (rng.Float64()*2 - 1))
	until := s.clock.Now().Add(*wait + jitter)
	if until.After(deadline) {
		until = deadline
	}
	s.conn.SetReadDeadline(until)
	buf := make([]byte, maxPacket)
	for {
		if _, err := s.conn.Read(buf); err != nil {
			break
		}
	}
	*wait *= 2
}

// Errors exposes the sender's graceful-degradation reports: handshake-level
// failures after Dial, write errors, and stall episodes (no ack progress
// through stallReportAfter consecutive RTOs). The channel is buffered and
// never blocks the event loop; a full buffer drops reports.
func (s *Sender) Errors() <-chan error { return s.errCh }

// pushErr reports a degradation without ever blocking the event loop.
func (s *Sender) pushErr(err error) {
	select {
	case s.errCh <- err:
	default:
	}
}

// Stats returns a snapshot of the sender's counters. It is a thin adapter
// over the obs instruments Dial registers with a metrics registry when
// SenderConfig.Obs is set. RTT is shared — do not mutate it.
func (s *Sender) Stats() SenderStats {
	s.mu.Lock()
	rtt := s.rtt
	s.mu.Unlock()
	return SenderStats{
		Sent:             s.ctrs.sent.Value(),
		Retransmits:      s.ctrs.retransmits.Value(),
		Acked:            s.ctrs.acked.Value(),
		Losses:           s.ctrs.losses.Value(),
		Timeouts:         s.ctrs.timeouts.Value(),
		HandshakeRetries: s.ctrs.handshakeRetries.Value(),
		Stalls:           s.ctrs.stalls.Value(),
		RTT:              rtt,
	}
}

// Close stops the sender and closes its socket.
func (s *Sender) Close() error {
	select {
	case <-s.stopCh:
	default:
		close(s.stopCh)
	}
	<-s.doneCh
	return s.conn.Close()
}

func (s *Sender) now() time.Duration { return s.clock.Now().Sub(s.start) }

func (s *Sender) readLoop() {
	buf := make([]byte, maxPacket)
	for {
		n, err := s.conn.Read(buf)
		if err != nil {
			select {
			case <-s.stopCh: // Close in progress; expected
			default:
				s.pushErr(fmt.Errorf("transport: ack channel read failed: %w", err))
			}
			return
		}
		h, err := ParseHeader(buf[:n])
		if err != nil || h.Type != typeAck {
			continue
		}
		select {
		case s.ackCh <- h:
		case <-s.stopCh:
			return
		}
	}
}

func (s *Sender) run() {
	defer close(s.doneCh)
	interval := s.ctrl.TickInterval()
	hasTick := interval > 0
	if !hasTick {
		interval = s.cfg.Housekeep
	}
	ticker := s.clock.NewTicker(interval)
	defer ticker.Stop()
	s.lastProg = s.now()
	s.trySend()
	for {
		select {
		case <-s.stopCh:
			return
		case h := <-s.ackCh:
			s.handleAck(h)
			s.trySend()
		case <-ticker.C():
			now := s.now()
			if hasTick {
				s.ctrl.Tick(now)
			}
			s.checkTimers(now)
			s.trySend()
		}
	}
}

func (s *Sender) trySend() {
	now := s.now()
	n := s.ctrl.Allowance(now, len(s.pending))
	buf := make([]byte, 0, headerSize+s.cfg.PayloadBytes)
	for i := 0; i < n; i++ {
		h := Header{
			Type:      typeData,
			Flow:      s.cfg.Flow,
			Seq:       s.nextSeq,
			SentNanos: s.clock.Now().UnixNano(),
			Window:    uint32(s.ctrl.SendTag()),
			Length:    uint16(s.cfg.PayloadBytes),
		}
		buf = h.Marshal(buf[:0])
		buf = append(buf, make([]byte, s.cfg.PayloadBytes)...)
		if _, err := s.conn.Write(buf); err != nil {
			s.pushErr(fmt.Errorf("transport: send of seq %d failed: %w", h.Seq, err))
			return
		}
		s.pending = append(s.pending, &pendingPkt{seq: h.Seq, sentAt: now, window: int(h.Window)})
		s.nextSeq++
		s.ctrs.sent.Inc()
		s.ctrl.OnSend(now, h.Seq, len(s.pending))
	}
}

func (s *Sender) handleAck(h Header) {
	now := s.now()
	idx := -1
	for i, p := range s.pending {
		if p.seq == h.Seq {
			idx = i
			break
		}
		if p.seq > h.Seq {
			break
		}
	}
	if idx < 0 {
		return
	}
	p := s.pending[idx]
	s.pending = append(s.pending[:idx], s.pending[idx+1:]...)
	rtt := now - p.sentAt
	s.updateRTT(rtt)
	s.lastProg = now
	s.backoff = 0
	s.stalled = false // ack progress closes any open stall episode

	s.ctrs.acked.Inc()
	s.mu.Lock()
	s.rtt.Add(rtt.Seconds())
	s.mu.Unlock()

	s.ctrl.OnAck(now, cc.AckSample{
		Seq:        h.Seq,
		RTT:        rtt,
		SentWindow: p.window,
		Inflight:   len(s.pending),
		Bytes:      int(h.Length) + headerSize,
	})
	s.detectLosses(now, h.Seq)
}

// detectLosses mirrors the prototype's policy (§5.2): a missing sequence is
// declared lost after three later acknowledgements or a 3×delay timer, and
// the missing packet is retransmitted.
func (s *Sender) detectLosses(now time.Duration, ackedSeq int64) {
	timerCut := 3 * s.srtt
	kept := s.pending[:0]
	var lost []*pendingPkt
	for _, p := range s.pending {
		isLost := false
		if p.seq < ackedSeq {
			p.ackedAfter++
			if p.ackedAfter >= 3 {
				isLost = true
			}
		}
		if !isLost && s.srtt > 0 && now-p.sentAt > timerCut && p.ackedAfter > 0 {
			isLost = true
		}
		if isLost {
			lost = append(lost, p)
			continue
		}
		kept = append(kept, p)
	}
	s.pending = kept
	for _, p := range lost {
		s.ctrs.losses.Inc()
		s.ctrl.OnLoss(now, cc.LossEvent{Seq: p.seq, SentWindow: p.window, Inflight: len(s.pending)})
		s.retransmit(p, now)
	}
}

func (s *Sender) retransmit(p *pendingPkt, now time.Duration) {
	if p.retx >= 3 {
		return // give up; the stream is a full-buffer source anyway
	}
	h := Header{
		Type:      typeData,
		Flow:      s.cfg.Flow,
		Seq:       p.seq,
		SentNanos: s.clock.Now().UnixNano(),
		Window:    uint32(s.ctrl.SendTag()),
		Length:    uint16(s.cfg.PayloadBytes),
	}
	buf := h.Marshal(make([]byte, 0, headerSize+s.cfg.PayloadBytes))
	buf = append(buf, make([]byte, s.cfg.PayloadBytes)...)
	if _, err := s.conn.Write(buf); err != nil {
		s.pushErr(fmt.Errorf("transport: retransmit of seq %d failed: %w", p.seq, err))
		return
	}
	np := &pendingPkt{seq: p.seq, sentAt: now, window: int(h.Window), retx: p.retx + 1}
	// Re-insert in seq order.
	pos := len(s.pending)
	for i, q := range s.pending {
		if q.seq > np.seq {
			pos = i
			break
		}
	}
	s.pending = append(s.pending, nil)
	copy(s.pending[pos+1:], s.pending[pos:])
	s.pending[pos] = np
	s.ctrs.retransmits.Inc()
}

func (s *Sender) updateRTT(rtt time.Duration) {
	if s.srtt == 0 {
		s.srtt = rtt
		s.rttvar = rtt / 2
		return
	}
	diff := s.srtt - rtt
	if diff < 0 {
		diff = -diff
	}
	s.rttvar = (3*s.rttvar + diff) / 4
	s.srtt = (7*s.srtt + rtt) / 8
}

func (s *Sender) rto() time.Duration {
	r := time.Second
	if s.srtt != 0 {
		// 2×srtt tolerates the RTT doubling within one round that slow
		// start over a filling buffer produces; rttvar alone lags it.
		r = 2*s.srtt + 4*s.rttvar
	}
	for i := 0; i < s.backoff && r < 60*time.Second; i++ {
		r *= 2 // exponential backoff after consecutive timeouts
	}
	if r < 200*time.Millisecond {
		r = 200 * time.Millisecond
	}
	if r > 60*time.Second {
		r = 60 * time.Second
	}
	return r
}

func (s *Sender) checkTimers(now time.Duration) {
	if len(s.pending) == 0 {
		return
	}
	if now-s.lastProg < s.rto() {
		return
	}
	s.pending = s.pending[:0]
	s.lastProg = now
	s.backoff++
	s.ctrs.timeouts.Inc()
	openStall := s.backoff >= stallReportAfter && !s.stalled
	if openStall {
		s.stalled = true
		s.ctrs.stalls.Inc()
	}
	if s.obs != nil {
		s.obs.Emit(obs.Event{At: now, Kind: obs.KindRTO, Flow: int32(s.cfg.Flow),
			Run: s.cfg.ObsRun, V0: float64(s.backoff), V1: s.rto().Seconds()})
		if openStall {
			s.obs.Emit(obs.Event{At: now, Kind: obs.KindStall, Flow: int32(s.cfg.Flow),
				Run: s.cfg.ObsRun, V0: float64(s.backoff)})
		}
	}
	if openStall {
		// Graceful degradation instead of a silent wedge: the sender keeps
		// probing (the RTO backoff continues), but the application learns
		// the path is dark and can decide to tear down.
		s.pushErr(fmt.Errorf("transport: flow %d stalled: no ack progress through %d consecutive RTOs (next backoff %v); still probing",
			s.cfg.Flow, s.backoff, s.rto()))
	}
	s.ctrl.OnTimeout(now)
}
