package transport

import (
	"net"
	"sync"
	"time"
)

// ReceiverStats summarizes what a receiver observed.
type ReceiverStats struct {
	Packets       int64
	Bytes         int64
	FirstArrival  time.Time
	LastArrival   time.Time
	UniquePackets int64
	// Syns counts handshake probes answered (retransmitted SYNs included).
	Syns int64
}

// MeanMbps returns the goodput between first and last arrival.
func (s ReceiverStats) MeanMbps() float64 {
	d := s.LastArrival.Sub(s.FirstArrival).Seconds()
	if d <= 0 {
		return 0
	}
	return float64(s.Bytes) * 8 / d / 1e6
}

// Receiver is the paper's receiver application: it accepts data packets on a
// UDP socket and echoes an acknowledgement (with the sender's timestamp and
// window tag) for every packet, from which the sender derives delay
// measurements.
type Receiver struct {
	conn  *net.UDPConn
	clock Clock

	mu     sync.Mutex
	stats  ReceiverStats
	seen   map[int64]struct{}
	closed bool
	done   chan struct{}
}

// NewReceiver starts a receiver listening on addr (e.g. "127.0.0.1:0"),
// stamping arrivals with the system clock (the real-UDP path).
func NewReceiver(addr string) (*Receiver, error) {
	return NewReceiverWithClock(addr, SystemClock())
}

// NewReceiverWithClock starts a receiver whose arrival timestamps come from
// the given clock; inject a SimClock to run on netsim virtual time.
func NewReceiverWithClock(addr string, clock Clock) (*Receiver, error) {
	ua, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, err
	}
	conn, err := net.ListenUDP("udp", ua)
	if err != nil {
		return nil, err
	}
	if clock == nil {
		clock = SystemClock()
	}
	r := &Receiver{
		conn:  conn,
		clock: clock,
		seen:  make(map[int64]struct{}),
		done:  make(chan struct{}),
	}
	go r.loop()
	return r, nil
}

// Addr returns the receiver's bound address.
func (r *Receiver) Addr() net.Addr { return r.conn.LocalAddr() }

// Stats returns a snapshot of the receiver's counters.
func (r *Receiver) Stats() ReceiverStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.stats
}

// Close stops the receiver.
func (r *Receiver) Close() error {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil
	}
	r.closed = true
	r.mu.Unlock()
	err := r.conn.Close()
	<-r.done
	return err
}

func (r *Receiver) loop() {
	defer close(r.done)
	buf := make([]byte, maxPacket)
	ackBuf := make([]byte, 0, headerSize)
	for {
		n, peer, err := r.conn.ReadFromUDP(buf)
		if err != nil {
			return // closed
		}
		h, err := ParseHeader(buf[:n])
		if err != nil {
			continue
		}
		if h.Type == typeSyn {
			// Control-channel handshake: echo the probe so the dialing
			// sender knows the receiver is live. SentNanos is echoed
			// unchanged — it identifies the attempt on the sender side.
			r.mu.Lock()
			r.stats.Syns++
			r.mu.Unlock()
			synAck := Header{Type: typeSynAck, Flow: h.Flow, SentNanos: h.SentNanos, Window: h.Window}
			ackBuf = synAck.Marshal(ackBuf[:0])
			_, _ = r.conn.WriteToUDP(ackBuf, peer)
			continue
		}
		if h.Type != typeData {
			continue
		}
		now := r.clock.Now()
		r.mu.Lock()
		r.stats.Packets++
		r.stats.Bytes += int64(n)
		if r.stats.FirstArrival.IsZero() {
			r.stats.FirstArrival = now
		}
		r.stats.LastArrival = now
		if _, dup := r.seen[h.Seq]; !dup {
			r.seen[h.Seq] = struct{}{}
			r.stats.UniquePackets++
		}
		r.mu.Unlock()

		ack := Header{Type: typeAck, Flow: h.Flow, Seq: h.Seq, SentNanos: h.SentNanos, Window: h.Window}
		ackBuf = ack.Marshal(ackBuf[:0])
		// Best-effort: a lost ack is handled by the sender's loss logic.
		_, _ = r.conn.WriteToUDP(ackBuf, peer)
	}
}
