package transport

import (
	"net"
	"strconv"
	"sync"
	"time"

	"repro/internal/obs"
)

// ReceiverStats summarizes what a receiver observed.
type ReceiverStats struct {
	Packets       int64
	Bytes         int64
	FirstArrival  time.Time
	LastArrival   time.Time
	UniquePackets int64
	// Syns counts handshake probes answered (retransmitted SYNs included).
	Syns int64
}

// MeanMbps returns the goodput between first and last arrival.
func (s ReceiverStats) MeanMbps() float64 {
	d := s.LastArrival.Sub(s.FirstArrival).Seconds()
	if d <= 0 {
		return 0
	}
	return float64(s.Bytes) * 8 / d / 1e6
}

// Receiver is the paper's receiver application: it accepts data packets on a
// UDP socket and echoes an acknowledgement (with the sender's timestamp and
// window tag) for every packet, from which the sender derives delay
// measurements.
// receiverCounters are the receiver's telemetry instruments — obs counters
// so Observe can register the same instruments with a metrics registry.
type receiverCounters struct {
	packets, bytes, unique, syns obs.Counter
}

type Receiver struct {
	conn  *net.UDPConn
	clock Clock

	ctrs receiverCounters
	obs  *obs.Observer // nil unless Observe attached one

	mu     sync.Mutex
	first  time.Time
	last   time.Time
	seen   map[int64]struct{}
	closed bool
	done   chan struct{}
}

// NewReceiver starts a receiver listening on addr (e.g. "127.0.0.1:0"),
// stamping arrivals with the system clock (the real-UDP path).
func NewReceiver(addr string) (*Receiver, error) {
	return NewReceiverWithClock(addr, SystemClock())
}

// NewReceiverWithClock starts a receiver whose arrival timestamps come from
// the given clock; inject a SimClock to run on netsim virtual time.
func NewReceiverWithClock(addr string, clock Clock) (*Receiver, error) {
	ua, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, err
	}
	conn, err := net.ListenUDP("udp", ua)
	if err != nil {
		return nil, err
	}
	if clock == nil {
		clock = SystemClock()
	}
	r := &Receiver{
		conn:  conn,
		clock: clock,
		seen:  make(map[int64]struct{}),
		done:  make(chan struct{}),
	}
	go r.loop()
	return r, nil
}

// Addr returns the receiver's bound address.
func (r *Receiver) Addr() net.Addr { return r.conn.LocalAddr() }

// Stats returns a snapshot of the receiver's counters. Like Sender.Stats it
// is a thin adapter over the registry-visible obs instruments.
func (r *Receiver) Stats() ReceiverStats {
	r.mu.Lock()
	first, last := r.first, r.last
	r.mu.Unlock()
	return ReceiverStats{
		Packets:       r.ctrs.packets.Value(),
		Bytes:         r.ctrs.bytes.Value(),
		FirstArrival:  first,
		LastArrival:   last,
		UniquePackets: r.ctrs.unique.Value(),
		Syns:          r.ctrs.syns.Value(),
	}
}

// Observe implements obs.Observable: it registers the receiver's counters
// under run-labeled series (flow is ignored — one receiver serves every
// flow). Call before traffic arrives.
func (r *Receiver) Observe(o *obs.Observer, run int64, _ int) {
	if o == nil {
		return
	}
	r.obs = o
	label := func(name string) string {
		return obs.Labeled(name, "run", strconv.FormatInt(run, 10))
	}
	o.RegisterCounter(label("transport_rx_packets_total"), &r.ctrs.packets)
	o.RegisterCounter(label("transport_rx_bytes_total"), &r.ctrs.bytes)
	o.RegisterCounter(label("transport_rx_unique_total"), &r.ctrs.unique)
	o.RegisterCounter(label("transport_rx_syns_total"), &r.ctrs.syns)
}

// Close stops the receiver.
func (r *Receiver) Close() error {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil
	}
	r.closed = true
	r.mu.Unlock()
	err := r.conn.Close()
	<-r.done
	return err
}

func (r *Receiver) loop() {
	defer close(r.done)
	buf := make([]byte, maxPacket)
	ackBuf := make([]byte, 0, headerSize)
	for {
		n, peer, err := r.conn.ReadFromUDP(buf)
		if err != nil {
			return // closed
		}
		h, err := ParseHeader(buf[:n])
		if err != nil {
			continue
		}
		if h.Type == typeSyn {
			// Control-channel handshake: echo the probe so the dialing
			// sender knows the receiver is live. SentNanos is echoed
			// unchanged — it identifies the attempt on the sender side.
			r.ctrs.syns.Inc()
			synAck := Header{Type: typeSynAck, Flow: h.Flow, SentNanos: h.SentNanos, Window: h.Window}
			ackBuf = synAck.Marshal(ackBuf[:0])
			_, _ = r.conn.WriteToUDP(ackBuf, peer)
			continue
		}
		if h.Type != typeData {
			continue
		}
		now := r.clock.Now()
		r.ctrs.packets.Inc()
		r.ctrs.bytes.Add(int64(n))
		r.mu.Lock()
		if r.first.IsZero() {
			r.first = now
		}
		r.last = now
		if _, dup := r.seen[h.Seq]; !dup {
			r.seen[h.Seq] = struct{}{}
			r.ctrs.unique.Inc()
		}
		r.mu.Unlock()

		ack := Header{Type: typeAck, Flow: h.Flow, Seq: h.Seq, SentNanos: h.SentNanos, Window: h.Window}
		ackBuf = ack.Marshal(ackBuf[:0])
		// Best-effort: a lost ack is handled by the sender's loss logic.
		_, _ = r.conn.WriteToUDP(ackBuf, peer)
	}
}
