// Package transport is the real-network realization of the protocols in
// this repository: a UDP sender/receiver pair mirroring the paper's C++
// prototype (§5), which "uses UDP as the underlying transport protocol" with
// sequence numbers, sender timestamps, and a receiver that acknowledges
// every packet.
//
// The congestion-control logic itself is any cc.Controller (Verus, the TCP
// models, Sprout), driven by the same OnAck/OnLoss/Tick contract as in the
// simulator — the transport supplies real timers, real sockets, and real
// retransmission handling (§5.2: per-missing-sequence timers of 3×delay).
package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"time"
)

// Packet types on the wire.
const (
	typeData = 0x01
	typeAck  = 0x02
	typeFin  = 0x03
	// typeSyn/typeSynAck are the control-channel handshake (PR 4): Dial
	// probes the receiver with typeSyn and waits for the echoed typeSynAck
	// before starting the data flow, retrying with jittered exponential
	// backoff. Before this existed, a dead or unreachable receiver wedged
	// the sender forever with no error.
	typeSyn    = 0x04
	typeSynAck = 0x05
)

// headerSize is the fixed wire-header length in bytes.
//
//	type(1) | flow(1) | seq(8) | sentNanos(8) | window(4) | length(2)
const headerSize = 24

// maxPacket bounds datagram size.
const maxPacket = 64 * 1024

// Header is the wire header shared by data packets and acknowledgements.
// For acks, SentNanos echoes the data packet's sender timestamp so the
// sender can compute the RTT without clock synchronization; Window echoes
// the send tag (the Verus sending window the packet was sent under).
type Header struct {
	Type      byte
	Flow      byte
	Seq       int64
	SentNanos int64
	Window    uint32
	Length    uint16 // payload bytes following the header (data only)
}

// ErrShortPacket is returned when a datagram cannot hold a header.
var ErrShortPacket = errors.New("transport: short packet")

// Marshal appends the wire encoding of h to buf and returns the result.
func (h Header) Marshal(buf []byte) []byte {
	var b [headerSize]byte
	b[0] = h.Type
	b[1] = h.Flow
	binary.BigEndian.PutUint64(b[2:], uint64(h.Seq))
	binary.BigEndian.PutUint64(b[10:], uint64(h.SentNanos))
	binary.BigEndian.PutUint32(b[18:], h.Window)
	binary.BigEndian.PutUint16(b[22:], h.Length)
	return append(buf, b[:]...)
}

// ParseHeader decodes a header from the start of data.
func ParseHeader(data []byte) (Header, error) {
	if len(data) < headerSize {
		return Header{}, ErrShortPacket
	}
	h := Header{
		Type:      data[0],
		Flow:      data[1],
		Seq:       int64(binary.BigEndian.Uint64(data[2:])),
		SentNanos: int64(binary.BigEndian.Uint64(data[10:])),
		Window:    binary.BigEndian.Uint32(data[18:]),
		Length:    binary.BigEndian.Uint16(data[22:]),
	}
	switch h.Type {
	case typeData, typeAck, typeFin, typeSyn, typeSynAck:
	default:
		return Header{}, fmt.Errorf("transport: unknown packet type 0x%02x", h.Type)
	}
	if h.Seq < 0 {
		return Header{}, fmt.Errorf("transport: negative sequence %d", h.Seq)
	}
	return h, nil
}

// rttFrom computes the round-trip time from an ack's echoed timestamp.
func rttFrom(h Header, now time.Time) time.Duration {
	return now.Sub(time.Unix(0, h.SentNanos))
}
