package transport

import (
	"testing"
	"testing/quick"
	"time"

	"repro/internal/tcp"
	"repro/internal/verus"
)

func TestHeaderRoundTrip(t *testing.T) {
	h := Header{Type: typeData, Flow: 3, Seq: 123456789, SentNanos: 987654321, Window: 42, Length: 1376}
	buf := h.Marshal(nil)
	if len(buf) != headerSize {
		t.Fatalf("marshal length = %d, want %d", len(buf), headerSize)
	}
	got, err := ParseHeader(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got != h {
		t.Fatalf("round trip: got %+v, want %+v", got, h)
	}
}

func TestParseHeaderErrors(t *testing.T) {
	if _, err := ParseHeader(make([]byte, headerSize-1)); err != ErrShortPacket {
		t.Errorf("short packet: %v", err)
	}
	bad := Header{Type: typeData, Seq: 1}.Marshal(nil)
	bad[0] = 0x7f
	if _, err := ParseHeader(bad); err == nil {
		t.Error("unknown type accepted")
	}
	neg := Header{Type: typeAck}.Marshal(nil)
	neg[2] = 0xff // sign bit of seq
	if _, err := ParseHeader(neg); err == nil {
		t.Error("negative seq accepted")
	}
}

// Property: marshal/parse is the identity on valid headers.
func TestQuickHeaderRoundTrip(t *testing.T) {
	f := func(flow byte, seq uint32, nanos int64, window uint32, length uint16, kind uint8) bool {
		types := []byte{typeData, typeAck, typeFin}
		h := Header{
			Type:      types[int(kind)%len(types)],
			Flow:      flow,
			Seq:       int64(seq),
			SentNanos: nanos,
			Window:    window,
			Length:    length,
		}
		got, err := ParseHeader(h.Marshal(nil))
		return err == nil && got == h
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLoopbackVerusTransfer(t *testing.T) {
	r, err := NewReceiver("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	s, err := Dial(r.Addr().String(), verus.New(verus.DefaultConfig()), DefaultSenderConfig())
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(1500 * time.Millisecond)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	ss := s.Stats()
	rs := r.Stats()
	if ss.Sent == 0 {
		t.Fatal("sender sent nothing")
	}
	if rs.Packets == 0 {
		t.Fatal("receiver saw nothing")
	}
	if ss.Acked == 0 {
		t.Fatal("no acks processed")
	}
	if ss.RTT.N() == 0 || ss.RTT.Mean() <= 0 {
		t.Fatal("no RTT samples")
	}
	// Loopback: low loss, most sent packets acked.
	if float64(ss.Acked) < 0.5*float64(ss.Sent) {
		t.Fatalf("acked %d of %d sent", ss.Acked, ss.Sent)
	}
}

func TestLoopbackNewRenoTransfer(t *testing.T) {
	r, err := NewReceiver("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	s, err := Dial(r.Addr().String(), tcp.NewNewReno(), DefaultSenderConfig())
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(time.Second)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if r.Stats().UniquePackets == 0 {
		t.Fatal("no unique packets delivered")
	}
}

func TestReceiverDoubleCloseSafe(t *testing.T) {
	r, err := NewReceiver("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	if err := r.Close(); err != nil {
		t.Fatal("second close should be a no-op")
	}
}

func TestDialBadAddress(t *testing.T) {
	if _, err := Dial("not-an-address:xyz", tcp.NewNewReno(), DefaultSenderConfig()); err == nil {
		t.Fatal("bad address accepted")
	}
}

func TestSenderConfigDefaults(t *testing.T) {
	cfg := DefaultSenderConfig()
	if cfg.PayloadBytes+headerSize != 1400 {
		t.Fatalf("payload %d + header %d != 1400", cfg.PayloadBytes, headerSize)
	}
}
