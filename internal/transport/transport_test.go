package transport

import (
	"errors"
	"net"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/tcp"
	"repro/internal/verus"
)

func TestHeaderRoundTrip(t *testing.T) {
	h := Header{Type: typeData, Flow: 3, Seq: 123456789, SentNanos: 987654321, Window: 42, Length: 1376}
	buf := h.Marshal(nil)
	if len(buf) != headerSize {
		t.Fatalf("marshal length = %d, want %d", len(buf), headerSize)
	}
	got, err := ParseHeader(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got != h {
		t.Fatalf("round trip: got %+v, want %+v", got, h)
	}
}

func TestParseHeaderErrors(t *testing.T) {
	if _, err := ParseHeader(make([]byte, headerSize-1)); err != ErrShortPacket {
		t.Errorf("short packet: %v", err)
	}
	bad := Header{Type: typeData, Seq: 1}.Marshal(nil)
	bad[0] = 0x7f
	if _, err := ParseHeader(bad); err == nil {
		t.Error("unknown type accepted")
	}
	neg := Header{Type: typeAck}.Marshal(nil)
	neg[2] = 0xff // sign bit of seq
	if _, err := ParseHeader(neg); err == nil {
		t.Error("negative seq accepted")
	}
}

// Property: marshal/parse is the identity on valid headers.
func TestQuickHeaderRoundTrip(t *testing.T) {
	f := func(flow byte, seq uint32, nanos int64, window uint32, length uint16, kind uint8) bool {
		types := []byte{typeData, typeAck, typeFin, typeSyn, typeSynAck}
		h := Header{
			Type:      types[int(kind)%len(types)],
			Flow:      flow,
			Seq:       int64(seq),
			SentNanos: nanos,
			Window:    window,
			Length:    length,
		}
		got, err := ParseHeader(h.Marshal(nil))
		return err == nil && got == h
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLoopbackVerusTransfer(t *testing.T) {
	r, err := NewReceiver("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	s, err := Dial(r.Addr().String(), verus.New(verus.DefaultConfig()), DefaultSenderConfig())
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(1500 * time.Millisecond)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	ss := s.Stats()
	rs := r.Stats()
	if ss.Sent == 0 {
		t.Fatal("sender sent nothing")
	}
	if rs.Packets == 0 {
		t.Fatal("receiver saw nothing")
	}
	if ss.Acked == 0 {
		t.Fatal("no acks processed")
	}
	if ss.RTT.N() == 0 || ss.RTT.Mean() <= 0 {
		t.Fatal("no RTT samples")
	}
	// Loopback: low loss, most sent packets acked.
	if float64(ss.Acked) < 0.5*float64(ss.Sent) {
		t.Fatalf("acked %d of %d sent", ss.Acked, ss.Sent)
	}
}

func TestLoopbackNewRenoTransfer(t *testing.T) {
	r, err := NewReceiver("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	s, err := Dial(r.Addr().String(), tcp.NewNewReno(), DefaultSenderConfig())
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(time.Second)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if r.Stats().UniquePackets == 0 {
		t.Fatal("no unique packets delivered")
	}
}

func TestReceiverDoubleCloseSafe(t *testing.T) {
	r, err := NewReceiver("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	if err := r.Close(); err != nil {
		t.Fatal("second close should be a no-op")
	}
}

func TestDialBadAddress(t *testing.T) {
	if _, err := Dial("not-an-address:xyz", tcp.NewNewReno(), DefaultSenderConfig()); err == nil {
		t.Fatal("bad address accepted")
	}
}

// TestDialDeadReceiverFailsFast pins the satellite fix: dialing a port with
// no receiver must surface ErrHandshakeFailed within the retry budget, not
// return a wedged sender. (A bound-but-silent socket stands in for the lost
// control datagram; ICMP refusals from a closed port take the same path.)
func TestDialDeadReceiverFailsFast(t *testing.T) {
	dead, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	defer dead.Close()
	cfg := DefaultSenderConfig()
	cfg.HandshakeTimeout = 700 * time.Millisecond
	cfg.HandshakeAttempts = 3
	start := time.Now()
	s, err := Dial(dead.LocalAddr().String(), tcp.NewNewReno(), cfg)
	if err == nil {
		s.Close()
		t.Fatal("dial of a dead receiver succeeded")
	}
	if !errors.Is(err, ErrHandshakeFailed) {
		t.Fatalf("error %v does not wrap ErrHandshakeFailed", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("handshake took %v; the retry budget must bound it", elapsed)
	}
}

// TestDialHandshakeDisabled pins the opt-out: a negative HandshakeTimeout
// skips probing entirely (the pre-PR-4 behavior, needed under virtual
// clocks).
func TestDialHandshakeDisabled(t *testing.T) {
	dead, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	defer dead.Close()
	cfg := DefaultSenderConfig()
	cfg.HandshakeTimeout = -1
	s, err := Dial(dead.LocalAddr().String(), tcp.NewNewReno(), cfg)
	if err != nil {
		t.Fatalf("handshake-disabled dial failed: %v", err)
	}
	s.Close()
}

// TestHandshakeCountsRetries checks the receiver answers SYNs and that a
// live path completes without burning retries.
func TestHandshakeCountsRetries(t *testing.T) {
	r, err := NewReceiver("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	s, err := Dial(r.Addr().String(), tcp.NewNewReno(), DefaultSenderConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if got := s.Stats().HandshakeRetries; got != 0 {
		t.Fatalf("loopback handshake needed %d retries", got)
	}
	if r.Stats().Syns == 0 {
		t.Fatal("receiver answered no SYN")
	}
}

func TestSenderConfigDefaults(t *testing.T) {
	cfg := DefaultSenderConfig()
	if cfg.PayloadBytes+headerSize != 1400 {
		t.Fatalf("payload %d + header %d != 1400", cfg.PayloadBytes, headerSize)
	}
}
