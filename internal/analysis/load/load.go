// Package load turns `go list` package patterns into parsed, type-checked
// packages for the analysis framework, using only the standard library.
//
// The trick that keeps this small: `go list -export -deps` makes the go
// tool compile every dependency and hand back build-cache export-data
// files, which go/importer's "gc" mode can read through a lookup function.
// Each target package is then parsed from source and type-checked against
// its dependencies' export data — no reimplementation of import resolution,
// no network, no x/tools.
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
)

// Package is one parsed and type-checked target package.
type Package struct {
	// Path is the package's import path.
	Path string
	// Dir is the directory holding its sources.
	Dir string
	// Files are the parsed non-test Go files, with comments.
	Files []*ast.File
	// Types is the type-checked package object.
	Types *types.Package
	// Info carries the resolution tables analyzers consult.
	Info *types.Info
}

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Export     string
	Standard   bool
	DepOnly    bool
	Error      *struct{ Err string }
}

// Load lists the patterns in dir, type-checks every matched (non-dependency)
// package, and returns them sorted by import path. Test files are excluded:
// the determinism contract governs shipped simulation code, while tests and
// benchmarks legitimately read wall clocks and the global RNG.
func Load(dir string, patterns ...string) ([]*Package, *token.FileSet, error) {
	pkgs, err := goList(dir, patterns)
	if err != nil {
		return nil, nil, err
	}
	exports := map[string]string{}
	var targets []listPkg
	for _, p := range pkgs {
		if p.Error != nil {
			return nil, nil, fmt.Errorf("go list: package %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly && !p.Standard {
			targets = append(targets, p)
		}
	}
	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	})
	var out []*Package
	for _, t := range targets {
		pkg, err := check(fset, imp, t.ImportPath, t.Dir, t.GoFiles, nil)
		if err != nil {
			return nil, nil, err
		}
		out = append(out, pkg)
	}
	return out, fset, nil
}

// goList runs `go list -export -deps -json` on the patterns.
func goList(dir string, patterns []string) ([]listPkg, error) {
	args := append([]string{
		"list", "-export", "-deps",
		"-json=ImportPath,Dir,GoFiles,Export,Standard,DepOnly,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	stdout, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", patterns, err, stderr.String())
	}
	var pkgs []listPkg
	dec := json.NewDecoder(bytes.NewReader(stdout))
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list %v: decoding output: %v", patterns, err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// StdImporter returns an importer resolving the transitive dependency
// closure of the given stdlib packages from build-cache export data. The
// analysistest harness uses it to type-check fixture files, which may import
// anything from the standard library.
func StdImporter(fset *token.FileSet, dir string, paths ...string) (types.Importer, error) {
	pkgs, err := goList(dir, paths)
	if err != nil {
		return nil, err
	}
	exports := map[string]string{}
	for _, p := range pkgs {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	return importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q (is it imported by the listed roots?)", path)
		}
		return os.Open(f)
	}), nil
}

// CheckDir parses every .go file directly under dir as one package with the
// given import path and type-checks it with imp. Used for analysistest
// fixtures, which live outside the module's package graph.
func CheckDir(fset *token.FileSet, imp types.Importer, importPath, dir string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []string
	for _, e := range entries {
		if !e.IsDir() && filepath.Ext(e.Name()) == ".go" {
			files = append(files, e.Name())
		}
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no .go files in %s", dir)
	}
	return check(fset, imp, importPath, dir, files, nil)
}

// check parses the named files and type-checks them as one package.
func check(fset *token.FileSet, imp types.Importer, importPath, dir string, names []string, typeErr func(error)) (*Package, error) {
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Uses:       map[*ast.Ident]types.Object{},
		Defs:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{Importer: imp, Error: typeErr}
	tpkg, err := conf.Check(importPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %v", importPath, err)
	}
	return &Package{Path: importPath, Dir: dir, Files: files, Types: tpkg, Info: info}, nil
}
