// Package maprange flags map iteration whose order can leak into
// simulation results.
//
// Go randomizes map iteration order per run, so any map range in a
// simulation package is a determinism hazard unless the loop body provably
// cannot observe the order. PR 1's one run-to-run nondeterminism bug was
// exactly this shape (stale-point aging in verus/profile.go); this analyzer
// rejects the pattern statically.
//
// A range over a map is accepted when the loop body is a commutative,
// float-free accumulation: every statement is an integer increment,
// decrement, or commutative compound assignment (+=, |=, &=, ^=), possibly
// under ifs and continues. The canonical fix — collecting the keys into a
// slice that the same function then sorts — is also recognized. Anything
// else (appending unsorted values, writing floats, calling functions, early
// exit) is flagged. Fix by iterating sorted keys, or justify with:
//
//	//lint:maprange ordered-elsewhere -- <why iteration order cannot reach any output or digest>
package maprange

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer is the maprange pass.
var Analyzer = &analysis.Analyzer{
	Name:   "maprange",
	Doc:    "flag map iteration in simulation packages unless the body is a provably order-insensitive (commutative, float-free) accumulation",
	Claims: []string{"ordered-elsewhere"},
	Run:    run,
}

func run(pass *analysis.Pass) error {
	if !analysis.IsSimPackage(pass.Pkg.Path()) {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				rng, ok := n.(*ast.RangeStmt)
				if !ok {
					return true
				}
				tv, ok := pass.TypesInfo.Types[rng.X]
				if !ok {
					return true
				}
				if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
					return true
				}
				if orderInsensitive(pass, rng.Body.List) || sortedCollect(pass, rng, fn.Body) {
					return true
				}
				pass.Reportf(rng.Pos(),
					"map iteration order is randomized and this body is not a provably commutative accumulation; iterate sorted keys, or annotate `//lint:maprange ordered-elsewhere -- <reason>`")
				return true
			})
		}
	}
	return nil
}

// sortedCollect recognizes the canonical fix idiom: the loop body is
// exactly `s = append(s, k...)` collecting the range variables, and the
// enclosing function later passes s to a sort (package sort or slices) —
// so the collected order never survives.
func sortedCollect(pass *analysis.Pass, rng *ast.RangeStmt, fnBody *ast.BlockStmt) bool {
	if len(rng.Body.List) != 1 {
		return false
	}
	asg, ok := rng.Body.List[0].(*ast.AssignStmt)
	if !ok || asg.Tok != token.ASSIGN || len(asg.Lhs) != 1 || len(asg.Rhs) != 1 {
		return false
	}
	dst, ok := asg.Lhs[0].(*ast.Ident)
	if !ok {
		return false
	}
	call, ok := asg.Rhs[0].(*ast.CallExpr)
	if !ok {
		return false
	}
	if fun, ok := call.Fun.(*ast.Ident); !ok || fun.Name != "append" || len(call.Args) < 2 {
		return false
	}
	if first, ok := call.Args[0].(*ast.Ident); !ok || first.Name != dst.Name {
		return false
	}
	// The appended values may only be the range variables (key/value).
	rangeVars := map[string]bool{}
	for _, v := range []ast.Expr{rng.Key, rng.Value} {
		if id, ok := v.(*ast.Ident); ok {
			rangeVars[id.Name] = true
		}
	}
	for _, arg := range call.Args[1:] {
		id, ok := arg.(*ast.Ident)
		if !ok || !rangeVars[id.Name] {
			return false
		}
	}
	// The destination must reach a sort call later in the function.
	sorted := false
	ast.Inspect(fnBody, func(n ast.Node) bool {
		if sorted || n == nil || n.Pos() <= rng.End() {
			return true
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pkg, _, ok := analysis.PkgSymbol(pass.TypesInfo, sel)
		if !ok || (pkg != "sort" && pkg != "slices") {
			return true
		}
		for _, arg := range call.Args {
			if id, ok := arg.(*ast.Ident); ok && id.Name == dst.Name {
				sorted = true
			}
		}
		return true
	})
	return sorted
}

// orderInsensitive conservatively proves a loop body cannot observe
// iteration order: only integer ++/--/commutative-op-assign statements,
// optionally nested under if/else (whose condition must be side-effect
// free) or skipped with continue. Everything else fails the proof.
func orderInsensitive(pass *analysis.Pass, stmts []ast.Stmt) bool {
	for _, s := range stmts {
		switch s := s.(type) {
		case *ast.IncDecStmt:
			if !integerLvalue(pass, s.X) {
				return false
			}
		case *ast.AssignStmt:
			if !commutativeAssign(pass, s) {
				return false
			}
		case *ast.IfStmt:
			if s.Init != nil || hasCalls(s.Cond) {
				return false
			}
			if !orderInsensitive(pass, s.Body.List) {
				return false
			}
			switch e := s.Else.(type) {
			case nil:
			case *ast.BlockStmt:
				if !orderInsensitive(pass, e.List) {
					return false
				}
			case *ast.IfStmt:
				if !orderInsensitive(pass, []ast.Stmt{e}) {
					return false
				}
			default:
				return false
			}
		case *ast.BranchStmt:
			if s.Tok != token.CONTINUE || s.Label != nil {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// commutativeAssign accepts x op= e for commutative integer ops. Float
// accumulation is explicitly rejected: float addition does not reassociate,
// so its result depends on visit order.
func commutativeAssign(pass *analysis.Pass, s *ast.AssignStmt) bool {
	switch s.Tok {
	case token.ADD_ASSIGN, token.OR_ASSIGN, token.AND_ASSIGN, token.XOR_ASSIGN:
	default:
		return false
	}
	if len(s.Lhs) != 1 || len(s.Rhs) != 1 {
		return false
	}
	return integerLvalue(pass, s.Lhs[0]) && !hasCalls(s.Rhs[0])
}

// integerLvalue reports whether expr has integer type (float and string
// accumulations are order-sensitive; interface/complex are out of scope).
func integerLvalue(pass *analysis.Pass, expr ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[expr]
	if !ok {
		return false
	}
	basic, ok := tv.Type.Underlying().(*types.Basic)
	return ok && basic.Info()&types.IsInteger != 0
}

// hasCalls reports whether the expression contains any call (which could
// have side effects or observe state mutated earlier in the iteration).
func hasCalls(expr ast.Expr) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if _, ok := n.(*ast.CallExpr); ok {
			found = true
			return false
		}
		return true
	})
	return found
}
