// Package maptool is a negative fixture: outside the simulation set, map
// iteration order is the caller's problem and the analyzer stays silent.
package maptool

// Values collects map values in arbitrary order, legally.
func Values(m map[string]int) []int {
	var out []int
	for _, v := range m {
		out = append(out, v)
	}
	return out
}
