// Package obs is a maprange fixture: a metrics registry snapshot that
// iterates its series map in raw order leaks map randomization into
// exporter output, which must be byte-deterministic.
package obs

import "sort"

// Sample is a miniature of the real registry snapshot entry.
type Sample struct {
	Name  string
	Value float64
}

// SnapshotUnsorted walks the series map directly into the output slice —
// exporter output would differ run to run.
func SnapshotUnsorted(series map[string]float64) []Sample {
	var out []Sample
	for name, v := range series { // want `map iteration order is randomized`
		out = append(out, Sample{Name: name, Value: v})
	}
	return out
}

// SumValues accumulates floats under map range — the float-reassociation
// digest hazard.
func SumValues(series map[string]float64) float64 {
	var sum float64
	for _, v := range series { // want `map iteration order is randomized`
		sum += v
	}
	return sum
}

// Snapshot is the blessed idiom the real registry uses: collect keys,
// sort, then read in sorted order.
func Snapshot(series map[string]float64) []Sample {
	keys := make([]string, 0, len(series))
	for k := range series {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]Sample, 0, len(keys))
	for _, k := range keys {
		out = append(out, Sample{Name: k, Value: series[k]})
	}
	return out
}
