// Package verus is a maprange fixture: a simulation package where map
// iteration must be provably order-insensitive.
package verus

import "sort"

// MeanDelay accumulates floats over a map — the classic digest-drift bug
// (float addition does not reassociate).
func MeanDelay(points map[float64]float64) float64 {
	var sum float64
	var n int
	for _, d := range points { // want `map iteration order is randomized`
		sum += d
		n++
	}
	return sum / float64(n)
}

// UnsortedKeys collects map keys by append and never sorts them —
// order-sensitive output.
func UnsortedKeys(m map[int]int) []int {
	var out []int
	for k := range m { // want `map iteration order is randomized`
		out = append(out, k)
	}
	return out
}

// FirstOver exits early, which observes order.
func FirstOver(m map[int]int, cut int) int {
	for k, v := range m { // want `map iteration order is randomized`
		if v > cut {
			return k
		}
	}
	return -1
}

// Count is the accepted shape: a commutative, float-free accumulation.
func Count(m map[int]float64, cut float64) int {
	var n int
	for _, v := range m {
		if v < 0 {
			continue
		}
		if v > cut {
			n++
		}
	}
	return n
}

// Flags is also accepted: commutative bitwise accumulation under if/else.
func Flags(m map[int]uint64) uint64 {
	var bits uint64
	var evens int
	for k, v := range m {
		if k%2 == 0 {
			evens++
		} else {
			bits |= v
		}
	}
	return bits + uint64(evens)
}

// SortedSum is the canonical fix and must not be flagged: the collection
// loop's order is destroyed by the sort before anything reads it.
func SortedSum(m map[int]float64) float64 {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	var sum float64
	for _, k := range keys {
		sum += m[k]
	}
	return sum
}
