package verus

// Annotated carries the claim that order cannot reach any output, with the
// mandatory justification — so the analyzer stays silent.
func Annotated(m map[int][]float64) int {
	var longest int
	//lint:maprange ordered-elsewhere -- fixture: max of per-key lengths is order-invariant
	for _, v := range m {
		if len(v) > longest {
			longest = len(v)
		}
	}
	return longest
}
