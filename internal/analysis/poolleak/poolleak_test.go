package poolleak_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/poolleak"
)

func TestPoolLeak(t *testing.T) {
	analysistest.Run(t, "testdata", poolleak.Analyzer, "netsim")
}
