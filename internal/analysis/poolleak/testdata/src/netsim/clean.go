package netsim

// FreedOnEveryPath releases on both arms of the if.
func (s *Sim) FreedOnEveryPath(drop bool) {
	p := s.NewPacket(1, 1)
	if drop {
		s.FreePacket(p)
		return
	}
	p.Bytes = 1400
	s.FreePacket(p)
}

// FreedByDefer releases through the deferred call on every exit,
// including the early return.
func (s *Sim) FreedByDefer(early bool) {
	p := s.NewPacket(2, 1)
	defer s.FreePacket(p)
	if early {
		return
	}
	p.Bytes = 1200
}

// FreedInLoop settles each iteration's packet before the next one is
// checked out.
func (s *Sim) FreedInLoop(n int) {
	for i := 0; i < n; i++ {
		p := s.NewPacket(3, int64(i))
		if i%2 == 0 {
			p.Bytes = 0
		}
		s.FreePacket(p)
	}
}

// ReturnedToCaller hands custody up the stack.
func (s *Sim) ReturnedToCaller() *Packet {
	p := s.NewPacket(4, 1)
	p.Bytes = 1400
	return p
}

// FreedByTimer parks the packet in a closure; custody is the closure's,
// so this function's dataflow leaves it alone (and the closure body is
// analyzed as a function of its own).
func (s *Sim) FreedByTimer() {
	p := s.NewPacket(5, 1)
	s.After(10, func() { s.FreePacket(p) })
}
