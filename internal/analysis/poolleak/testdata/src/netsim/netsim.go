// Package netsim is a poolleak fixture: a miniature of the simulator
// core's pool and datapath surface, just enough shape for the custody
// dataflow to classify sources, releases, and transfers.
package netsim

// Packet mirrors the real pooled type.
type Packet struct {
	Flow  int
	Seq   int64
	Bytes int
}

// Sim mirrors the pool owner and scheduler.
type Sim struct {
	free     []*Packet
	heap     []*Packet
	inflight []*Packet
}

// NewPacket checks a packet out of the pool.
func (s *Sim) NewPacket(flow int, seq int64) *Packet {
	if n := len(s.free); n > 0 {
		p := s.free[n-1]
		s.free = s.free[:n-1]
		p.Flow, p.Seq = flow, seq
		return p
	}
	return &Packet{Flow: flow, Seq: seq}
}

// ClonePacket checks out a copy of p. Its own body is custody-clean: the
// fresh packet is returned to the caller.
func (s *Sim) ClonePacket(p *Packet) *Packet {
	q := s.NewPacket(p.Flow, p.Seq)
	q.Bytes = p.Bytes
	return q
}

// FreePacket returns a packet to the pool.
func (s *Sim) FreePacket(p *Packet) {
	s.free = append(s.free, p)
}

// SchedulePacket hands the packet to the event heap until delivery.
func (s *Sim) SchedulePacket(at int64, p *Packet) {
	s.heap = append(s.heap, p)
}

// SchedulePacketAfter is SchedulePacket with a relative deadline.
func (s *Sim) SchedulePacketAfter(d int64, p *Packet) {
	s.heap = append(s.heap, p)
}

// After schedules a callback.
func (s *Sim) After(d int64, fn func()) {}

// Mesh mirrors the multi-cell router.
type Mesh struct{}

// SendPacket moves the packet into the destination cell's outbox.
func (m *Mesh) SendPacket(src, dst int, delay int64, p *Packet) {}

// Link mirrors the datapath ingress.
type Link struct{}

// Send takes custody of p for delivery.
func (l *Link) Send(p *Packet) {}
