package netsim

// ScheduledForDelivery: the event heap owns the packet once
// SchedulePacketAfter accepts it.
func (s *Sim) ScheduledForDelivery(at int64) {
	p := s.NewPacket(1, 1)
	s.SchedulePacketAfter(at, p)
}

// PushedAcrossMesh: the outbox owns the packet once SendPacket accepts it.
func PushedAcrossMesh(m *Mesh, s *Sim) {
	p := s.NewPacket(2, 1)
	m.SendPacket(0, 1, 5, p)
}

// SentOrFreed: datapath custody on the good path, release on the drop
// path — both settle the packet.
func SentOrFreed(l *Link, s *Sim, up bool) {
	p := s.NewPacket(3, 1)
	if !up {
		s.FreePacket(p)
		return
	}
	l.Send(p)
}

// HeldInFlight records the packet in a struct the Sim owns — an escape
// into the aggregate, so release is the holder's problem, not this
// function's.
func (s *Sim) HeldInFlight() {
	p := s.NewPacket(4, 1)
	s.inflight = append(s.inflight, p)
}
