package netsim

// Parked keeps the packet owned past return on the hold path: the drain
// event frees it later, which the dataflow cannot see, so the allocation
// carries the escape hatch.
func (s *Sim) Parked(hold bool) {
	//lint:poolleak released-elsewhere -- the drain event frees parked packets on the next flush
	p := s.NewPacket(7, 1)
	if hold {
		return
	}
	s.FreePacket(p)
}
