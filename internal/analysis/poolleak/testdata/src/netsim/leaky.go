package netsim

// LeakOnDrop frees the packet on the deliver arm but forgets it when the
// congestion gate drops the send: one branch of the if leaks.
func (s *Sim) LeakOnDrop(congested bool) {
	p := s.NewPacket(1, 1) // want `may leak`
	if congested {
		return
	}
	s.FreePacket(p)
}

// LeakOnBreak settles each iteration's packet except on the early break
// out of the for loop.
func (s *Sim) LeakOnBreak(n int) {
	for i := 0; i < n; i++ {
		p := s.NewPacket(2, int64(i)) // want `may leak`
		if i == n-1 {
			break
		}
		s.FreePacket(p)
	}
}

// LeakDespiteDefer frees the original through the defer, but the clone
// taken mid-body is never settled.
func (s *Sim) LeakDespiteDefer(flow int) {
	p := s.NewPacket(3, 1)
	defer s.FreePacket(p)
	dup := s.ClonePacket(p) // want `may leak`
	dup.Bytes++
}

// DiscardResult drops the allocation on the floor outright.
func (s *Sim) DiscardResult() {
	s.NewPacket(4, 1) // want `discarded`
}

// BlankResult is the same mistake spelled with the blank identifier.
func (s *Sim) BlankResult() {
	_ = s.NewPacket(5, 1) // want `assigned to _`
}

// OverwriteOwned reassigns the variable while the first packet is still
// owned, orphaning it.
func (s *Sim) OverwriteOwned() {
	p := s.NewPacket(6, 1)
	p = s.NewPacket(6, 2) // want `orphans the packet`
	s.FreePacket(p)
}
