package netsim

// Retransmit loops with a label and goto, which the CFG builder does not
// model; since the body allocates, the analyzer says it cannot verify
// custody instead of guessing.
func (s *Sim) Retransmit(n int) {
	p := s.NewPacket(8, 1)
	i := 0
loop: // want `cannot verify packet custody`
	if i < n {
		i++
		goto loop
	}
	s.FreePacket(p)
}
