// Package poolleak verifies the packet pool's custody contract on every
// control-flow path: a packet checked out with Sim.NewPacket or
// Sim.ClonePacket must, on every path from the allocation to the
// function's return, either be released with FreePacket or handed to a
// recognized ownership-transfer call. PR 7's runtime accounting
// (PoolStats.Live, -tags pooldebug poisoning) only catches a leak on
// paths a test actually executes; this analyzer walks the CFG
// (analysis/flow) and a forward may-own dataflow instead, so the
// guarantee holds at compile time (DESIGN.md §14).
//
// # Custody model
//
// The analyzer tracks local variables assigned directly from a pool
// source (NewPacket/ClonePacket). A tracked packet stops being this
// function's responsibility when it reaches:
//
//   - a release:   FreePacket
//   - a transfer:  SchedulePacket, SchedulePacketAfter (event-heap
//     custody), Mesh.SendPacket (outbox custody), Link Send / Receiver
//     Receive (datapath custody), queue Enqueue / ring push
//   - an escape:   any other call taking the pointer, storing it into a
//     field, slice, map, channel, or aggregate, returning it, aliasing
//     it to another name, taking its address, or capturing it in a
//     closure. Escapes hand custody to code this function cannot see, so
//     they end tracking without a diagnostic — the conservative
//     direction that keeps the analyzer quiet rather than wrong.
//
// A diagnostic is reported when some path reaches the function's exit
// with the packet still owned, when a source's result is discarded
// outright, or when a tracked variable is overwritten while still
// owning a packet. Borrowing calls (ClonePacket of a tracked packet,
// AssertLive) leave custody untouched.
//
// Deferred calls are modeled as running once at every exit, and a path
// that ends in panic is not checked — both documented fallbacks of the
// flow package, as is the goto/label bail-out: a function the builder
// cannot model precisely is reported as unverifiable when it allocates
// packets at all.
//
// The escape hatch, for custody schemes the dataflow cannot see (e.g. a
// packet parked in a struct the caller frees):
//
//	//lint:poolleak released-elsewhere -- <who releases this packet, and on which event>
package poolleak

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"repro/internal/analysis"
	"repro/internal/analysis/flow"
)

// Analyzer is the poolleak pass.
var Analyzer = &analysis.Analyzer{
	Name:   "poolleak",
	Doc:    "packets from Sim.NewPacket/ClonePacket must reach FreePacket or an ownership-transfer call on every path to return",
	Claims: []string{"released-elsewhere"},
	Run:    run,
}

// transferCalls take custody of a *netsim.Packet argument: the packet is
// someone else's to release from here on. The table is the DESIGN.md §14
// transfer-call table.
var transferCalls = map[string]bool{
	"FreePacket":          true, // released into the pool
	"SchedulePacket":      true, // event-heap custody until delivery
	"SchedulePacketAfter": true,
	"SendPacket":          true, // Mesh outbox: packet migrates cells
	"Send":                true, // Link ingress
	"Receive":             true, // Receiver hand-off
	"Enqueue":             true, // queue custody
	"push":                true, // pktRing (netsim-internal)
}

// borrowCalls inspect a packet without taking custody.
var borrowCalls = map[string]bool{
	"ClonePacket": true, // reads fields of the original
	"AssertLive":  true, // pooldebug checkpoint
}

func run(pass *analysis.Pass) error {
	if !analysis.IsSimPackage(pass.Pkg.Path()) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					analyze(pass, n.Body)
				}
			case *ast.FuncLit:
				// Each closure is its own function for custody purposes:
				// packets it allocates must be settled within it (outer
				// variables it captures are excluded from the outer
				// function's tracking).
				analyze(pass, n.Body)
			}
			return true
		})
	}
	return nil
}

// analyze checks one function body.
func analyze(pass *analysis.Pass, body *ast.BlockStmt) {
	lf := &leakFlow{pass: pass, excluded: excludedObjects(pass, body)}
	if !bodyAllocates(pass, body) {
		return // nothing to track; skip the CFG entirely
	}
	g := flow.Build(body)
	if g.Unsupported != nil {
		pass.Reportf(g.Unsupported.Pos(),
			"cannot verify packet custody: goto/labeled control flow defeats the CFG builder; restructure, or annotate the allocation `//lint:poolleak released-elsewhere -- <reason>`")
		return
	}
	res := flow.Fixpoint(g, lf)

	// Reporting pass over the converged states: walk each reachable block
	// once more with the report sink attached, then flag whatever is
	// still owned when the exit state (defers applied) is reached.
	seen := map[string]bool{}
	report := func(pos token.Pos, format string, args ...any) {
		key := pass.Fset.Position(pos).String() + format
		if seen[key] {
			return
		}
		seen[key] = true
		pass.Reportf(pos, format, args...)
	}
	for _, b := range g.Blocks {
		in := res.In[b]
		if in == nil {
			continue
		}
		lf.transfer(b, in.(ownMap), report)
	}
	if out, ok := res.Out[g.Exit].(ownMap); ok {
		for _, obj := range sortedOwners(out) {
			report(out[obj],
				"packet allocated here may leak: a path to return reaches neither FreePacket nor an ownership transfer (SchedulePacket/SchedulePacketAfter/Mesh.SendPacket/Send/Receive/Enqueue)")
		}
	}
}

// ownMap is the lattice element: tracked variable → allocation position,
// present while some path may still own the packet.
type ownMap map[types.Object]token.Pos

// leakFlow implements flow.Transfers for the may-own analysis.
type leakFlow struct {
	pass *analysis.Pass
	// excluded are objects never tracked: captured by a closure or
	// address-taken, so custody is visible to code outside this CFG.
	excluded map[types.Object]bool
}

func (lf *leakFlow) Entry() any { return ownMap{} }

func (lf *leakFlow) Join(a, b any) any {
	am, bm := a.(ownMap), b.(ownMap)
	out := make(ownMap, len(am)+len(bm))
	for k, v := range am {
		out[k] = v
	}
	for k, v := range bm {
		// May-own: owned on either path counts; keep the earliest
		// allocation site for a stable diagnostic position.
		if old, ok := out[k]; !ok || v < old {
			out[k] = v
		}
	}
	return out
}

func (lf *leakFlow) Equal(a, b any) bool {
	am, bm := a.(ownMap), b.(ownMap)
	if len(am) != len(bm) {
		return false
	}
	for k, v := range am {
		if w, ok := bm[k]; !ok || w != v {
			return false
		}
	}
	return true
}

func (lf *leakFlow) Transfer(b *flow.Block, in any) any {
	return lf.transfer(b, in.(ownMap), nil)
}

// transfer executes one block's nodes over a copy of the in-state. The
// report sink is nil during fixpoint iteration and live during the final
// reporting pass.
func (lf *leakFlow) transfer(b *flow.Block, in ownMap, report reportFn) ownMap {
	s := make(ownMap, len(in))
	for k, v := range in {
		s[k] = v
	}
	for _, n := range b.Nodes {
		lf.step(s, n, report)
	}
	return s
}

type reportFn func(pos token.Pos, format string, args ...any)

func (lf *leakFlow) step(s ownMap, n ast.Node, report reportFn) {
	switch n := n.(type) {
	case *ast.AssignStmt:
		lf.assign(s, n, report)
	case *ast.DeclStmt:
		if gd, ok := n.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok && len(vs.Names) == len(vs.Values) {
					for i := range vs.Names {
						lf.uses(s, vs.Values[i], report)
						lf.assignOne(s, vs.Names[i], vs.Values[i], report)
					}
				}
			}
		}
	case *ast.ExprStmt:
		if call, ok := n.X.(*ast.CallExpr); ok && lf.isSource(call) {
			if report != nil {
				report(call.Pos(), "result of %s is discarded: the packet can never be released or recycled", calleeName(call))
			}
		}
		lf.uses(s, n.X, report)
	case *ast.ReturnStmt:
		for _, r := range n.Results {
			if obj := lf.trackedIdent(s, r); obj != nil {
				delete(s, obj) // custody returned to the caller
				continue
			}
			lf.uses(s, r, report)
		}
	case *ast.SendStmt:
		if obj := lf.trackedIdent(s, n.Value); obj != nil {
			delete(s, obj) // custody crosses the channel
		}
		lf.uses(s, n.Chan, report)
		lf.uses(s, n.Value, report)
	case *ast.GoStmt:
		lf.uses(s, n.Call, report)
	default:
		// Condition expressions, inc/dec, range key/value idents, deferred
		// calls attached to the exit block, …
		lf.uses(s, n, report)
	}
}

// assign processes one assignment statement: RHS custody effects first
// (aliasing a tracked packet to a new name ends tracking), then
// per-position gens and overwrite checks.
func (lf *leakFlow) assign(s ownMap, as *ast.AssignStmt, report reportFn) {
	for _, r := range as.Rhs {
		if obj := lf.trackedIdent(s, r); obj != nil {
			delete(s, obj) // alias: custody follows the other name now
			continue
		}
		lf.uses(s, r, report)
	}
	if len(as.Lhs) == len(as.Rhs) {
		for i := range as.Lhs {
			lf.assignOne(s, as.Lhs[i], as.Rhs[i], report)
		}
		return
	}
	// Tuple assignment from a multi-result call: no pool source returns a
	// tuple, but overwriting a tracked variable still orphans its packet.
	for _, l := range as.Lhs {
		lf.overwrite(s, l, report)
	}
}

// assignOne applies `lhs = rhs` to the state.
func (lf *leakFlow) assignOne(s ownMap, lhs, rhs ast.Expr, report reportFn) {
	call, isCall := rhs.(*ast.CallExpr)
	src := isCall && lf.isSource(call)
	id, isIdent := lhs.(*ast.Ident)
	if isIdent && id.Name != "_" {
		obj := lf.objOf(id)
		if obj == nil {
			return
		}
		lf.overwrite(s, lhs, report)
		if src && !lf.excluded[obj] {
			s[obj] = call.Pos()
		}
		return
	}
	if src && isIdent { // blank identifier
		if report != nil {
			report(call.Pos(), "result of %s assigned to _: the packet can never be released or recycled", calleeName(call))
		}
	}
	// Non-ident destination (field, index): custody moves into the
	// aggregate — an escape, nothing tracked.
}

// overwrite flags and drops a tracked variable that is being reassigned
// while it still owns a packet on some path.
func (lf *leakFlow) overwrite(s ownMap, lhs ast.Expr, report reportFn) {
	id, ok := lhs.(*ast.Ident)
	if !ok {
		return
	}
	obj := lf.objOf(id)
	if obj == nil {
		return
	}
	if pos, owned := s[obj]; owned {
		if report != nil {
			report(lhs.Pos(), "reassignment of %s orphans the packet allocated at %s: release or transfer it first",
				id.Name, lf.pass.Fset.Position(pos))
		}
		delete(s, obj)
	}
}

// uses walks an expression tree for custody effects: call argument
// classification (borrow / transfer / escape), aggregate escapes, and
// address-taking. Function literals are opaque — their bodies are
// analyzed as functions of their own.
func (lf *leakFlow) uses(s ownMap, e ast.Node, report reportFn) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			lf.call(s, n, report)
		case *ast.CompositeLit:
			for _, el := range n.Elts {
				v := el
				if kv, ok := el.(*ast.KeyValueExpr); ok {
					v = kv.Value
				}
				if obj := lf.trackedIdent(s, v); obj != nil {
					delete(s, obj) // escapes into the aggregate
				}
			}
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if obj := lf.trackedIdent(s, n.X); obj != nil {
					delete(s, obj) // address escapes
				}
			}
		}
		return true
	})
}

// sortedOwners orders the still-owned objects by allocation position so
// exit-leak diagnostics come out deterministically.
func sortedOwners(s ownMap) []types.Object {
	objs := make([]types.Object, 0, len(s))
	for o := range s {
		objs = append(objs, o)
	}
	sort.Slice(objs, func(i, j int) bool { return s[objs[i]] < s[objs[j]] })
	return objs
}

// call classifies one call's direct packet-ident arguments against the
// custody table.
func (lf *leakFlow) call(s ownMap, call *ast.CallExpr, report reportFn) {
	name := calleeName(call)
	for _, arg := range call.Args {
		obj := lf.trackedIdent(s, arg)
		if obj == nil {
			continue
		}
		if borrowCalls[name] {
			continue
		}
		// transferCalls: recognized custody transfer. Anything else: the
		// pointer escapes into the callee, which now owns it as far as
		// this function can see. Both end tracking.
		delete(s, obj)
	}
}

// trackedIdent returns the object of e when e is a bare identifier whose
// object is currently tracked.
func (lf *leakFlow) trackedIdent(s ownMap, e ast.Expr) types.Object {
	id, ok := e.(*ast.Ident)
	if !ok {
		return nil
	}
	obj := lf.objOf(id)
	if obj == nil {
		return nil
	}
	if _, owned := s[obj]; !owned {
		return nil
	}
	return obj
}

func (lf *leakFlow) objOf(id *ast.Ident) types.Object {
	if obj := lf.pass.TypesInfo.Defs[id]; obj != nil {
		return obj
	}
	return lf.pass.TypesInfo.Uses[id]
}

// isSource reports whether call checks a packet out of the pool: a method
// named NewPacket or ClonePacket whose result is a pointer to netsim's
// Packet type.
func (lf *leakFlow) isSource(call *ast.CallExpr) bool {
	name := calleeName(call)
	if name != "NewPacket" && name != "ClonePacket" {
		return false
	}
	tv, ok := lf.pass.TypesInfo.Types[ast.Expr(call)]
	if !ok {
		return false
	}
	return isNetsimPacketPtr(tv.Type)
}

func isNetsimPacketPtr(t types.Type) bool {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	return obj.Name() == "Packet" && analysis.IsNetsimPackage(obj.Pkg().Path())
}

func calleeName(call *ast.CallExpr) string {
	switch f := call.Fun.(type) {
	case *ast.SelectorExpr:
		return f.Sel.Name
	case *ast.Ident:
		return f.Name
	}
	return ""
}

// bodyAllocates reports whether the body (excluding nested closures)
// contains a pool source call at all.
func bodyAllocates(pass *analysis.Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			name := calleeName(call)
			if name == "NewPacket" || name == "ClonePacket" {
				if tv, ok := pass.TypesInfo.Types[ast.Expr(call)]; ok && isNetsimPacketPtr(tv.Type) {
					found = true
					return false
				}
			}
		}
		return true
	})
	return found
}

// excludedObjects collects the objects the dataflow must never track:
// identifiers referenced inside any nested closure (the closure may
// release them on its own schedule) and identifiers whose address is
// taken anywhere in the body.
func excludedObjects(pass *analysis.Pass, body *ast.BlockStmt) map[types.Object]bool {
	out := map[types.Object]bool{}
	mark := func(n ast.Node) {
		ast.Inspect(n, func(m ast.Node) bool {
			if id, ok := m.(*ast.Ident); ok {
				if obj := pass.TypesInfo.Uses[id]; obj != nil {
					out[obj] = true
				}
			}
			return true
		})
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			mark(n.Body)
			return false
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if id, ok := n.X.(*ast.Ident); ok {
					if obj := pass.TypesInfo.Uses[id]; obj != nil {
						out[obj] = true
					}
				}
			}
		}
		return true
	})
	return out
}
