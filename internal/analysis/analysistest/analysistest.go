// Package analysistest runs an analyzer over fixture packages and checks
// its diagnostics against // want comments, mirroring the conventions of
// golang.org/x/tools/go/analysis/analysistest on top of the in-repo
// framework.
//
// Fixtures live under <testdata>/src/<pkg>/ and are plain Go files outside
// the module's package graph (testdata directories are invisible to go
// list). A line expecting one or more diagnostics carries a trailing
// comment:
//
//	rate := rand.Float64() // want `global math/rand`
//
// Each backquoted string is a regexp that must match exactly one diagnostic
// reported on that line; diagnostics with no matching want, and wants with
// no matching diagnostic, fail the test. A fixture package with no want
// comments asserts the analyzer is silent on it.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/load"
)

// wantRe matches one backquoted expectation inside a // want comment.
var wantRe = regexp.MustCompile("`([^`]+)`")

// Run analyzes each fixture package under testdata/src and compares
// diagnostics (including directive-validation diagnostics) with the
// fixtures' want comments.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgs ...string) {
	t.Helper()
	fset := token.NewFileSet()
	for _, pkg := range pkgs {
		dir := filepath.Join(testdata, "src", pkg)
		loaded, err := loadFixture(fset, pkg, dir)
		if err != nil {
			t.Fatalf("loading fixture %s: %v", pkg, err)
		}
		pass := analysis.NewPass(a, fset, loaded.Files, loaded.Types, loaded.Info)
		if err := a.Run(pass); err != nil {
			t.Fatalf("%s on %s: %v", a.Name, pkg, err)
		}
		diags := pass.Diagnostics()
		diags = append(diags, analysis.CheckDirectives(fset, loaded.Files, []*analysis.Analyzer{a})...)
		checkWants(t, fset, pkg, loaded.Files, diags)
	}
}

// RunSuite analyzes each fixture package with several analyzers sharing
// one directive index per package — the driver's own execution model, so
// AfterSuite analyzers (unusedsuppress) see the suppression hits the
// ordinary analyzers recorded. Ordinary analyzers run first, AfterSuite
// ones last; diagnostics from all of them plus directive validation are
// checked against the fixtures' want comments together.
func RunSuite(t *testing.T, testdata string, analyzers []*analysis.Analyzer, pkgs ...string) {
	t.Helper()
	fset := token.NewFileSet()
	for _, pkg := range pkgs {
		dir := filepath.Join(testdata, "src", pkg)
		loaded, err := loadFixture(fset, pkg, dir)
		if err != nil {
			t.Fatalf("loading fixture %s: %v", pkg, err)
		}
		ix := analysis.NewIndex(fset, loaded.Files)
		var diags []analysis.Diagnostic
		runOne := func(a *analysis.Analyzer) {
			pass := analysis.NewPassShared(a, fset, loaded.Files, loaded.Types, loaded.Info, ix)
			if err := a.Run(pass); err != nil {
				t.Fatalf("%s on %s: %v", a.Name, pkg, err)
			}
			diags = append(diags, pass.Diagnostics()...)
		}
		for _, a := range analyzers {
			if !a.AfterSuite {
				runOne(a)
			}
		}
		for _, a := range analyzers {
			if a.AfterSuite {
				runOne(a)
			}
		}
		diags = append(diags, analysis.CheckDirectives(fset, loaded.Files, analyzers)...)
		checkWants(t, fset, pkg, loaded.Files, diags)
	}
}

// loadFixture type-checks one fixture directory against the stdlib packages
// its files import.
func loadFixture(fset *token.FileSet, pkg, dir string) (*load.Package, error) {
	imports, err := fixtureImports(dir)
	if err != nil {
		return nil, err
	}
	imp, err := load.StdImporter(fset, dir, imports...)
	if err != nil {
		return nil, err
	}
	return load.CheckDir(fset, imp, pkg, dir)
}

// fixtureImports collects the import paths of every fixture file so the
// std importer can be scoped to exactly what the fixture needs.
func fixtureImports(dir string) ([]string, error) {
	matches, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil || len(matches) == 0 {
		return nil, fmt.Errorf("no fixture files in %s: %v", dir, err)
	}
	seen := map[string]bool{}
	var out []string
	fset := token.NewFileSet()
	for _, m := range matches {
		f, err := parserImportsOnly(fset, m)
		if err != nil {
			return nil, err
		}
		for _, spec := range f.Imports {
			path := strings.Trim(spec.Path.Value, `"`)
			if !seen[path] {
				seen[path] = true
				out = append(out, path)
			}
		}
	}
	if len(out) == 0 {
		// go list needs at least one root; "errors" is a tiny stdlib leaf.
		out = append(out, "errors")
	}
	return out, nil
}

// parserImportsOnly parses just the import clause of one file.
func parserImportsOnly(fset *token.FileSet, path string) (*ast.File, error) {
	return parser.ParseFile(fset, path, nil, parser.ImportsOnly)
}

// expectation is one want regexp and whether a diagnostic matched it.
type expectation struct {
	pos     string
	re      *regexp.Regexp
	matched bool
}

// checkWants cross-references diagnostics with // want comments.
func checkWants(t *testing.T, fset *token.FileSet, pkg string, files []*ast.File, diags []analysis.Diagnostic) {
	t.Helper()
	wants := map[string][]*expectation{} // "file:line" → expectations
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				idx := strings.Index(c.Text, "// want ")
				if idx < 0 {
					continue
				}
				pos := fset.Position(c.Pos())
				key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
				for _, m := range wantRe.FindAllStringSubmatch(c.Text[idx:], -1) {
					re, err := regexp.Compile(m[1])
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", key, m[1], err)
					}
					wants[key] = append(wants[key], &expectation{pos: key, re: re})
				}
			}
		}
	}
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
		found := false
		for _, w := range wants[key] {
			if !w.matched && w.re.MatchString(d.Message) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s (%s): unexpected diagnostic: %s", key, pkg, d.Message)
		}
	}
	for _, ws := range wants {
		for _, w := range ws {
			if !w.matched {
				t.Errorf("%s (%s): expected diagnostic matching %q, got none", w.pos, pkg, w.re)
			}
		}
	}
}
