// Package flow builds function-level control-flow graphs from go/ast
// bodies and runs forward-dataflow fixpoints over them — the engine that
// graduates the verus-lint suite from syntactic AST walks to path-aware
// verification (DESIGN.md §14). It stays inside the repository's
// stdlib-only constraint: no x/tools, no SSA; blocks carry the original
// ast nodes so analyzers keep working against go/types information.
//
// # Graph shape
//
// Build decomposes a function body into basic blocks. A block's Nodes are
// the statements and condition expressions that execute straight-line, in
// evaluation order; composite statements (if/for/range/switch/select) are
// decomposed into their leaf parts, so a node never contains a nested
// body that is also represented elsewhere in the graph. Function literals
// are opaque expressions here: a closure's body is its own graph, built
// by the analyzer that cares about it.
//
// Two synthetic blocks bracket every graph. Entry starts the function;
// Exit is the single sink every return statement and the final
// fall-off-the-end path feed into. Deferred calls are appended to
// Exit.Nodes in reverse registration order — the conservative model that
// every registered defer runs exactly once at function exit, regardless
// of which path registered it (see "Conservative fallbacks").
//
// # Conservative fallbacks
//
// The builder handles the structured control flow the repository's
// determinism contract permits. Three constructs make precise block
// structure ambiguous and mark the graph instead of guessing:
//
//   - goto statements,
//   - labeled statements (and labeled break/continue),
//
// either sets Graph.Unsupported to the offending node and analyzers must
// fall back conservatively (poolleak, for example, reports that it cannot
// verify the function rather than silently passing it). Defers are
// modeled as always-running-at-exit even when registered conditionally,
// which can only under-report (a defer assumed to run releases state it
// may not have); and a call to the builtin panic ends its path without
// reaching Exit, so abandoned state on a panicking path is never
// reported — the process is dying, not leaking.
package flow

import (
	"go/ast"
	"go/token"
)

// Graph is one function body's control-flow graph.
type Graph struct {
	// Blocks lists every block in creation order; Entry is Blocks[0].
	Blocks []*Block
	// Entry is the block control enters at.
	Entry *Block
	// Exit is the single synthetic sink: every return edge and the
	// fall-off-the-end path lead here, and its Nodes are the function's
	// deferred calls (reverse registration order).
	Exit *Block
	// Unsupported is non-nil when the body contains a construct the
	// builder does not model precisely (goto, labels). The graph is still
	// structurally valid but may miss paths; analyzers must degrade
	// conservatively.
	Unsupported ast.Node
}

// Block is one basic block: nodes that execute straight-line, then a
// branch to the successors.
type Block struct {
	// Index is the block's position in Graph.Blocks.
	Index int
	// Nodes are the statements and leaf expressions executed in order.
	Nodes []ast.Node
	// Succs are the possible next blocks.
	Succs []*Block
	// Preds are the blocks that can branch here (inverse of Succs),
	// in construction order — deterministic, so fixpoint join order is too.
	Preds []*Block
}

// frame is one enclosing breakable/continuable construct during building.
type frame struct {
	brk  *Block // break target (loops, switch, select)
	cont *Block // continue target (loops only; nil for switch/select)
}

type builder struct {
	g      *Graph
	cur    *Block // nil after a terminating statement (return/break/panic)
	frames []frame
	defers []*ast.CallExpr
	// fell records that the previous statement was an unlabeled
	// fallthrough, consumed by the enclosing switch builder.
	fell bool
}

// Build constructs the CFG for one function body. A nil body (declaration
// without definition) yields a trivial Entry→Exit graph.
func Build(body *ast.BlockStmt) *Graph {
	b := &builder{g: &Graph{}}
	entry := b.newBlock()
	exit := b.newBlock()
	b.g.Entry, b.g.Exit = entry, exit
	b.cur = entry
	if body != nil {
		b.stmtList(body.List)
	}
	if b.cur != nil {
		b.edge(b.cur, exit)
	}
	// Deferred calls run LIFO at every exit; Exit is the one sink, so they
	// live there.
	for i := len(b.defers) - 1; i >= 0; i-- {
		exit.Nodes = append(exit.Nodes, b.defers[i])
	}
	return b.g
}

func (b *builder) newBlock() *Block {
	blk := &Block{Index: len(b.g.Blocks)}
	b.g.Blocks = append(b.g.Blocks, blk)
	return blk
}

func (b *builder) edge(from, to *Block) {
	from.Succs = append(from.Succs, to)
	to.Preds = append(to.Preds, from)
}

// add appends a node to the current block, materializing a dead block for
// unreachable code so building can continue without special cases.
func (b *builder) add(n ast.Node) {
	if n == nil {
		return
	}
	if b.cur == nil {
		b.cur = b.newBlock() // unreachable: no predecessors
	}
	b.cur.Nodes = append(b.cur.Nodes, n)
}

func (b *builder) unsupported(n ast.Node) {
	if b.g.Unsupported == nil {
		b.g.Unsupported = n
	}
}

func (b *builder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

// innermostLoop returns the nearest frame with a continue target.
func (b *builder) innermostLoop() *frame {
	for i := len(b.frames) - 1; i >= 0; i-- {
		if b.frames[i].cont != nil {
			return &b.frames[i]
		}
	}
	return nil
}

func (b *builder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)

	case *ast.IfStmt:
		b.add(s.Init)
		b.add(s.Cond)
		condBlk := b.cur
		if condBlk == nil {
			condBlk = b.newBlock()
			b.cur = condBlk
		}
		after := b.newBlock()
		then := b.newBlock()
		b.edge(condBlk, then)
		var elseBlk *Block
		if s.Else != nil {
			elseBlk = b.newBlock()
			b.edge(condBlk, elseBlk)
		} else {
			b.edge(condBlk, after)
		}
		b.cur = then
		b.stmt(s.Body)
		if b.cur != nil {
			b.edge(b.cur, after)
		}
		if s.Else != nil {
			b.cur = elseBlk
			b.stmt(s.Else)
			if b.cur != nil {
				b.edge(b.cur, after)
			}
		}
		b.cur = after

	case *ast.ForStmt:
		b.add(s.Init)
		head := b.newBlock()
		if b.cur != nil {
			b.edge(b.cur, head)
		}
		if s.Cond != nil {
			head.Nodes = append(head.Nodes, s.Cond)
		}
		body := b.newBlock()
		after := b.newBlock()
		b.edge(head, body)
		if s.Cond != nil {
			b.edge(head, after)
		}
		// The continue target is the post statement's block when there is
		// one, else the head.
		cont := head
		var post *Block
		if s.Post != nil {
			post = b.newBlock()
			post.Nodes = append(post.Nodes, s.Post)
			b.edge(post, head)
			cont = post
		}
		b.frames = append(b.frames, frame{brk: after, cont: cont})
		b.cur = body
		b.stmt(s.Body)
		b.frames = b.frames[:len(b.frames)-1]
		if b.cur != nil {
			b.edge(b.cur, cont)
		}
		b.cur = after

	case *ast.RangeStmt:
		// The ranged expression is evaluated once, before the loop; the
		// per-iteration key/value assignment lives in the head.
		b.add(s.X)
		head := b.newBlock()
		if b.cur != nil {
			b.edge(b.cur, head)
		}
		if s.Key != nil {
			head.Nodes = append(head.Nodes, s.Key)
		}
		if s.Value != nil {
			head.Nodes = append(head.Nodes, s.Value)
		}
		body := b.newBlock()
		after := b.newBlock()
		b.edge(head, body)
		b.edge(head, after)
		b.frames = append(b.frames, frame{brk: after, cont: head})
		b.cur = body
		b.stmt(s.Body)
		b.frames = b.frames[:len(b.frames)-1]
		if b.cur != nil {
			b.edge(b.cur, head)
		}
		b.cur = after

	case *ast.SwitchStmt:
		b.add(s.Init)
		b.add(s.Tag)
		b.switchClauses(s.Body.List, func(c ast.Stmt, blk *Block) []ast.Stmt {
			cc := c.(*ast.CaseClause)
			for _, e := range cc.List {
				blk.Nodes = append(blk.Nodes, e)
			}
			return cc.Body
		}, hasDefaultCase(s.Body.List))

	case *ast.TypeSwitchStmt:
		b.add(s.Init)
		b.add(s.Assign)
		b.switchClauses(s.Body.List, func(c ast.Stmt, blk *Block) []ast.Stmt {
			return c.(*ast.CaseClause).Body
		}, hasDefaultCase(s.Body.List))

	case *ast.SelectStmt:
		// Every comm clause is a possible successor; without a default the
		// select blocks until one fires, so there is no skip edge either way
		// (an empty select simply never reaches the join).
		b.switchClauses(s.Body.List, func(c ast.Stmt, blk *Block) []ast.Stmt {
			cc := c.(*ast.CommClause)
			if cc.Comm != nil {
				blk.Nodes = append(blk.Nodes, cc.Comm)
			}
			return cc.Body
		}, true)

	case *ast.ReturnStmt:
		b.add(s)
		b.edge(b.cur, b.g.Exit)
		b.cur = nil

	case *ast.BranchStmt:
		switch {
		case s.Label != nil || s.Tok == token.GOTO:
			b.unsupported(s)
			b.cur = nil
		case s.Tok == token.BREAK:
			if len(b.frames) > 0 {
				if b.cur == nil {
					b.cur = b.newBlock()
				}
				b.edge(b.cur, b.frames[len(b.frames)-1].brk)
			}
			b.cur = nil
		case s.Tok == token.CONTINUE:
			if f := b.innermostLoop(); f != nil {
				if b.cur == nil {
					b.cur = b.newBlock()
				}
				b.edge(b.cur, f.cont)
			}
			b.cur = nil
		case s.Tok == token.FALLTHROUGH:
			b.fell = true
		}

	case *ast.LabeledStmt:
		b.unsupported(s)
		b.stmt(s.Stmt)

	case *ast.DeferStmt:
		b.defers = append(b.defers, s.Call)

	case *ast.ExprStmt:
		b.add(s)
		if isPanicCall(s.X) {
			// The path dies here; state abandoned on it is not a leak.
			b.cur = nil
		}

	case nil:
		// nothing

	default:
		// Assignments, declarations, sends, go statements, inc/dec, empty
		// statements: straight-line nodes.
		b.add(s)
	}
}

// switchClauses wires the shared switch/select clause topology: the
// current block fans out to one block per clause, clause bodies run under
// a break frame, and every non-terminated clause joins at `after`. When
// exhaustive is false (a switch without a default), the dispatch block
// also branches straight to the join.
func (b *builder) switchClauses(clauses []ast.Stmt, open func(ast.Stmt, *Block) []ast.Stmt, exhaustive bool) {
	dispatch := b.cur
	if dispatch == nil {
		dispatch = b.newBlock()
		b.cur = dispatch
	}
	after := b.newBlock()
	blocks := make([]*Block, len(clauses))
	bodies := make([][]ast.Stmt, len(clauses))
	for i, c := range clauses {
		blocks[i] = b.newBlock()
		b.edge(dispatch, blocks[i])
		bodies[i] = open(c, blocks[i])
	}
	if !exhaustive {
		b.edge(dispatch, after)
	}
	b.frames = append(b.frames, frame{brk: after})
	for i := range clauses {
		b.cur = blocks[i]
		b.fell = false
		b.stmtList(bodies[i])
		if b.fell && i+1 < len(clauses) {
			// fallthrough: control continues in the next clause's body.
			if b.cur == nil {
				b.cur = b.newBlock()
			}
			b.edge(b.cur, blocks[i+1])
		} else if b.cur != nil {
			b.edge(b.cur, after)
		}
	}
	b.fell = false
	b.frames = b.frames[:len(b.frames)-1]
	b.cur = after
}

func hasDefaultCase(clauses []ast.Stmt) bool {
	for _, c := range clauses {
		if cc, ok := c.(*ast.CaseClause); ok && len(cc.List) == 0 {
			return true
		}
	}
	return false
}

// isPanicCall reports whether e is a direct call to the builtin panic.
// Purely syntactic: a local function named panic would shadow the builtin,
// which no sim package does (and misclassifying one only prunes a path).
func isPanicCall(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := call.Fun.(*ast.Ident)
	return ok && id.Name == "panic"
}
