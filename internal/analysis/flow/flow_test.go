package flow

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// parseBody parses `src` (one function declaration) and returns its body.
func parseBody(t *testing.T, src string) *ast.BlockStmt {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "x.go", "package p\n"+src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok {
			return fd.Body
		}
	}
	t.Fatal("no function in source")
	return nil
}

// exitReachable reports whether Exit is reachable from Entry.
func exitReachable(g *Graph) bool {
	seen := map[*Block]bool{}
	var visit func(*Block) bool
	visit = func(b *Block) bool {
		if b == g.Exit {
			return true
		}
		if seen[b] {
			return false
		}
		seen[b] = true
		for _, s := range b.Succs {
			if visit(s) {
				return true
			}
		}
		return false
	}
	return visit(g.Entry)
}

func TestBuildStraightLine(t *testing.T) {
	g := Build(parseBody(t, `func f() { x := 1; _ = x }`))
	if g.Unsupported != nil {
		t.Fatalf("unexpected Unsupported: %v", g.Unsupported)
	}
	if len(g.Entry.Nodes) != 2 {
		t.Fatalf("entry nodes = %d, want 2", len(g.Entry.Nodes))
	}
	if len(g.Entry.Succs) != 1 || g.Entry.Succs[0] != g.Exit {
		t.Fatalf("entry should fall through to exit")
	}
}

func TestBuildIfElseJoins(t *testing.T) {
	g := Build(parseBody(t, `func f(c bool) int {
	x := 0
	if c {
		x = 1
	} else {
		x = 2
	}
	return x
}`))
	// Entry (x:=0, c) → then/else → join → exit.
	if n := len(g.Entry.Succs); n != 2 {
		t.Fatalf("cond successors = %d, want 2 (then, else)", n)
	}
	if !exitReachable(g) {
		t.Fatal("exit unreachable")
	}
}

func TestBuildIfWithoutElseSkips(t *testing.T) {
	g := Build(parseBody(t, `func f(c bool) {
	if c {
		println()
	}
	println()
}`))
	// The condition block must branch both into the body and around it.
	if n := len(g.Entry.Succs); n != 2 {
		t.Fatalf("cond successors = %d, want 2 (then, after)", n)
	}
}

func TestBuildForLoop(t *testing.T) {
	g := Build(parseBody(t, `func f() {
	for i := 0; i < 4; i++ {
		if i == 2 {
			continue
		}
		if i == 3 {
			break
		}
	}
	println()
}`))
	if g.Unsupported != nil {
		t.Fatalf("unexpected Unsupported")
	}
	if !exitReachable(g) {
		t.Fatal("exit unreachable")
	}
	// A back edge must exist: some block's successor has a smaller index.
	back := false
	for _, b := range g.Blocks {
		for _, s := range b.Succs {
			if s.Index < b.Index {
				back = true
			}
		}
	}
	if !back {
		t.Fatal("no back edge in for loop")
	}
}

func TestBuildForeverLoopNoExitPath(t *testing.T) {
	g := Build(parseBody(t, `func f() {
	for {
		println()
	}
}`))
	if exitReachable(g) {
		t.Fatal("for{} without break must not reach exit")
	}
}

func TestBuildRange(t *testing.T) {
	g := Build(parseBody(t, `func f(xs []int) int {
	s := 0
	for _, x := range xs {
		s += x
	}
	return s
}`))
	if !exitReachable(g) {
		t.Fatal("exit unreachable")
	}
}

func TestBuildSwitch(t *testing.T) {
	// Without default the dispatch must branch to the join directly.
	g := Build(parseBody(t, `func f(x int) {
	switch x {
	case 1:
		println()
	case 2:
		println()
	}
	println()
}`))
	if n := len(g.Entry.Succs); n != 3 {
		t.Fatalf("dispatch successors = %d, want 3 (case, case, after)", n)
	}

	// With a default there is no skip edge.
	g = Build(parseBody(t, `func f(x int) {
	switch x {
	case 1:
		println()
	default:
		println()
	}
}`))
	if n := len(g.Entry.Succs); n != 2 {
		t.Fatalf("dispatch successors = %d, want 2 (case, default)", n)
	}
}

func TestBuildSwitchFallthrough(t *testing.T) {
	g := Build(parseBody(t, `func f(x int) {
	switch x {
	case 1:
		println()
		fallthrough
	case 2:
		println()
	}
}`))
	// The first case block must have the second case block as a successor.
	var caseBlocks []*Block
	for _, b := range g.Entry.Succs {
		if len(b.Nodes) > 0 {
			caseBlocks = append(caseBlocks, b)
		}
	}
	if len(caseBlocks) < 2 {
		t.Fatalf("expected two case blocks, got %d", len(caseBlocks))
	}
	found := false
	for _, s := range caseBlocks[0].Succs {
		if s == caseBlocks[1] {
			found = true
		}
	}
	if !found {
		t.Fatal("fallthrough edge from case 1 to case 2 missing")
	}
}

func TestBuildSelect(t *testing.T) {
	g := Build(parseBody(t, `func f(a, b chan int) {
	select {
	case <-a:
		println()
	case v := <-b:
		_ = v
	}
	println()
}`))
	if !exitReachable(g) {
		t.Fatal("exit unreachable")
	}
	// No default: dispatch goes only to the two comm clauses.
	if n := len(g.Entry.Succs); n != 2 {
		t.Fatalf("select dispatch successors = %d, want 2", n)
	}
}

func TestBuildReturnEdges(t *testing.T) {
	g := Build(parseBody(t, `func f(c bool) int {
	if c {
		return 1
	}
	return 2
}`))
	if len(g.Exit.Preds) != 2 {
		t.Fatalf("exit preds = %d, want 2 (two returns)", len(g.Exit.Preds))
	}
}

func TestBuildDeferToExit(t *testing.T) {
	g := Build(parseBody(t, `func f() {
	defer println("a")
	defer println("b")
	println("body")
}`))
	if len(g.Exit.Nodes) != 2 {
		t.Fatalf("exit defer nodes = %d, want 2", len(g.Exit.Nodes))
	}
	// LIFO: the "b" defer runs first.
	first := g.Exit.Nodes[0].(*ast.CallExpr)
	if lit, ok := first.Args[0].(*ast.BasicLit); !ok || !strings.Contains(lit.Value, "b") {
		t.Fatalf("defers not in LIFO order at exit")
	}
}

func TestBuildGotoUnsupported(t *testing.T) {
	g := Build(parseBody(t, `func f() {
loop:
	println()
	goto loop
}`))
	if g.Unsupported == nil {
		t.Fatal("goto/label must mark the graph unsupported")
	}
}

func TestBuildLabeledBreakUnsupported(t *testing.T) {
	g := Build(parseBody(t, `func f() {
outer:
	for {
		for {
			break outer
		}
	}
}`))
	if g.Unsupported == nil {
		t.Fatal("labeled break must mark the graph unsupported")
	}
}

func TestBuildPanicEndsPath(t *testing.T) {
	g := Build(parseBody(t, `func f(c bool) {
	if !c {
		panic("boom")
	}
	println()
}`))
	// The panic block must not feed Exit; only the normal path does.
	for _, p := range g.Exit.Preds {
		for _, n := range p.Nodes {
			if es, ok := n.(*ast.ExprStmt); ok && isPanicCall(es.X) {
				t.Fatal("panic path reaches exit")
			}
		}
	}
	if !exitReachable(g) {
		t.Fatal("normal path must still reach exit")
	}
}

// assignedVars is a toy may-analysis: the set of variable names that may
// have been assigned on some path. It exercises gen, join, and loop
// convergence.
type assignedVars struct{}

func (assignedVars) Entry() any { return map[string]bool{} }

func (assignedVars) Transfer(b *Block, in any) any {
	s := map[string]bool{}
	for k := range in.(map[string]bool) {
		s[k] = true
	}
	for _, n := range b.Nodes {
		if as, ok := n.(*ast.AssignStmt); ok {
			for _, l := range as.Lhs {
				if id, ok := l.(*ast.Ident); ok {
					s[id.Name] = true
				}
			}
		}
	}
	return s
}

func (assignedVars) Join(a, b any) any {
	s := map[string]bool{}
	for k := range a.(map[string]bool) {
		s[k] = true
	}
	for k := range b.(map[string]bool) {
		s[k] = true
	}
	return s
}

func (assignedVars) Equal(a, b any) bool {
	am, bm := a.(map[string]bool), b.(map[string]bool)
	if len(am) != len(bm) {
		return false
	}
	for k := range am {
		if !bm[k] {
			return false
		}
	}
	return true
}

func TestFixpointJoinsBranches(t *testing.T) {
	g := Build(parseBody(t, `func f(c bool) {
	a := 1
	if c {
		b := 2
		_ = b
	} else {
		d := 3
		_ = d
	}
	e := 4
	_ = e
}`))
	res := Fixpoint(g, assignedVars{})
	out := res.Out[g.Exit].(map[string]bool)
	for _, want := range []string{"a", "b", "d", "e"} {
		if !out[want] {
			t.Errorf("exit state missing %q (may-assigned on some path)", want)
		}
	}
}

func TestFixpointLoopConverges(t *testing.T) {
	g := Build(parseBody(t, `func f(n int) {
	for i := 0; i < n; i++ {
		x := i
		_ = x
	}
	y := 1
	_ = y
}`))
	res := Fixpoint(g, assignedVars{})
	out := res.Out[g.Exit].(map[string]bool)
	for _, want := range []string{"i", "x", "y"} {
		if !out[want] {
			t.Errorf("exit state missing %q after loop fixpoint", want)
		}
	}
}

func TestFixpointUnreachableStaysNil(t *testing.T) {
	g := Build(parseBody(t, `func f() int {
	return 1
	x := 2
	_ = x
}`))
	res := Fixpoint(g, assignedVars{})
	for _, b := range g.Blocks {
		if b == g.Entry {
			continue
		}
		if len(b.Preds) == 0 && res.In[b] != nil {
			t.Errorf("unreachable block %d has non-nil in-state", b.Index)
		}
	}
	if out, ok := res.Out[g.Exit].(map[string]bool); !ok || out["x"] {
		t.Errorf("dead assignment leaked into exit state: %v", res.Out[g.Exit])
	}
}
