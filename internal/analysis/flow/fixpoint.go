package flow

// Forward worklist fixpoint over a Graph. The lattice is the analyzer's:
// states are opaque values joined and compared through the Transfers
// interface, with nil as the implicit bottom ("path not reached") — the
// engine never passes nil to Transfer, and Join is only called on non-nil
// pairs. Analyzers keep their states immutable: Transfer must return a
// fresh (or unchanged) value rather than mutating its input, because the
// input is shared with the predecessor's cached out-state.

// Transfers is a forward dataflow problem over one graph.
type Transfers interface {
	// Entry returns the state at function entry. Must be non-nil.
	Entry() any
	// Transfer computes the block's out-state from its in-state, without
	// mutating the input.
	Transfer(b *Block, in any) any
	// Join merges two reachable states (both non-nil).
	Join(a, b any) any
	// Equal reports whether two states are the same lattice element; the
	// fixpoint terminates when every block's out-state stops changing.
	Equal(a, b any) bool
}

// Result carries the converged per-block states. In[b] is nil for blocks
// no path reaches.
type Result struct {
	In, Out map[*Block]any
}

// Fixpoint runs the problem to convergence in reverse post-order and
// returns the per-block in/out states. The iteration count is capped as a
// backstop against a non-monotone Transfers implementation; the lattices
// the verus-lint analyzers use are finite and converge far below it.
func Fixpoint(g *Graph, t Transfers) *Result {
	order := reversePostorder(g)
	res := &Result{In: map[*Block]any{}, Out: map[*Block]any{}}
	inList := map[*Block]bool{}
	var work []*Block
	push := func(b *Block) {
		if !inList[b] {
			inList[b] = true
			work = append(work, b)
		}
	}
	for _, b := range order {
		push(b)
	}
	budget := 64*len(g.Blocks) + 256
	for len(work) > 0 && budget > 0 {
		budget--
		b := work[0]
		work = work[1:]
		inList[b] = false

		var in any
		if b == g.Entry {
			in = t.Entry()
		}
		for _, p := range b.Preds {
			if o := res.Out[p]; o != nil {
				if in == nil {
					in = o
				} else {
					in = t.Join(in, o)
				}
			}
		}
		if in == nil {
			continue // unreachable
		}
		res.In[b] = in
		out := t.Transfer(b, in)
		if old, ok := res.Out[b]; ok && t.Equal(old, out) {
			continue
		}
		res.Out[b] = out
		for _, s := range b.Succs {
			push(s)
		}
	}
	return res
}

// reversePostorder orders blocks so predecessors tend to precede
// successors, which lets the worklist converge in few sweeps. Blocks
// unreachable from Entry are appended afterwards (they stay nil-state but
// keep the traversal total and deterministic).
func reversePostorder(g *Graph) []*Block {
	seen := make([]bool, len(g.Blocks))
	var post []*Block
	var visit func(b *Block)
	visit = func(b *Block) {
		if seen[b.Index] {
			return
		}
		seen[b.Index] = true
		for _, s := range b.Succs {
			visit(s)
		}
		post = append(post, b)
	}
	visit(g.Entry)
	out := make([]*Block, 0, len(g.Blocks))
	for i := len(post) - 1; i >= 0; i-- {
		out = append(out, post[i])
	}
	for _, b := range g.Blocks {
		if !seen[b.Index] {
			out = append(out, b)
		}
	}
	return out
}
