// Package noglobalrand forbids randomness that does not flow from an
// explicit seed.
//
// The experiment runner derives every trial's seed with a splitmix64
// finalizer (runner.DeriveSeed); any RNG in a simulation package must be
// constructed from such a seed. Three patterns break that contract and are
// flagged:
//
//  1. Top-level math/rand functions (rand.Float64, rand.Intn, rand.Perm,
//     ...): they draw from the process-global source, which is shared
//     across goroutines and — since Go 1.20 — seeded randomly at startup.
//  2. Sources seeded from the wall clock (rand.NewSource(time.Now()...)):
//     deterministic in form, nondeterministic in fact.
//  3. A direct math/rand import in the experiment-harness layer (the
//     experiments packages outside experiments/runner): harness randomness
//     must come from the runner's derivation path (runner.NewRand) so the
//     seed plan stays auditable in one place.
//
// Explicitly seeded construction — rand.New(rand.NewSource(seed)) — remains
// legal in the leaf simulation packages (netsim, cellular, ...), which take
// seeds as parameters. Suppressions carry:
//
//	//lint:noglobalrand derived-seed -- <why this RNG is still a pure function of the trial seed>
package noglobalrand

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

// constructors are the math/rand package-level functions that build
// explicitly-seeded values rather than touching the global source.
var constructors = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true, // math/rand/v2
	"NewChaCha8": true,
}

// Analyzer is the noglobalrand pass.
var Analyzer = &analysis.Analyzer{
	Name:   "noglobalrand",
	Doc:    "forbid the global math/rand source, wall-clock seeding, and direct math/rand use in experiment harnesses; every RNG must be a pure function of an explicit seed",
	Claims: []string{"derived-seed"},
	Run:    run,
}

func run(pass *analysis.Pass) error {
	path := pass.Pkg.Path()
	if !analysis.IsSimPackage(path) {
		return nil
	}
	harness := analysis.IsHarnessPackage(path)
	for _, f := range pass.Files {
		if harness {
			for _, imp := range f.Imports {
				p := strings.Trim(imp.Path.Value, `"`)
				if p == "math/rand" || p == "math/rand/v2" {
					pass.Reportf(imp.Pos(),
						"experiment harnesses must not import %s directly; derive RNGs from the trial seed via runner.NewRand", p)
				}
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				if name, ok := randSymbol(pass, n.Fun); ok && constructors[name] && seedFromClock(pass, n) {
					pass.Reportf(n.Pos(),
						"rand.%s seeded from the wall clock; seeds must derive from the experiment's base seed (runner.DeriveSeed)", name)
				}
			case *ast.SelectorExpr:
				name, ok := randSymbol(pass, n)
				if !ok || constructors[name] {
					return true
				}
				if _, isFunc := pass.TypesInfo.Uses[n.Sel].(*types.Func); isFunc {
					pass.Reportf(n.Pos(),
						"rand.%s uses the global math/rand source; construct an explicitly seeded *rand.Rand instead", name)
				}
			}
			return true
		})
	}
	return nil
}

// randSymbol resolves expr to a math/rand package-level symbol name.
func randSymbol(pass *analysis.Pass, expr ast.Expr) (string, bool) {
	sel, ok := expr.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	pkg, name, ok := analysis.PkgSymbol(pass.TypesInfo, sel)
	if !ok || (pkg != "math/rand" && pkg != "math/rand/v2") {
		return "", false
	}
	return name, true
}

// seedFromClock reports whether an argument of the constructor call reads
// the wall clock. Nested rand constructor calls are not descended into —
// they produce their own diagnostic, so rand.New(rand.NewSource(time.Now()
// .UnixNano())) is reported exactly once, at the NewSource call.
func seedFromClock(pass *analysis.Pass, call *ast.CallExpr) bool {
	found := false
	for _, arg := range call.Args {
		ast.Inspect(arg, func(n ast.Node) bool {
			if found {
				return false
			}
			if inner, ok := n.(*ast.CallExpr); ok {
				if name, isRand := randSymbol(pass, inner.Fun); isRand && constructors[name] {
					return false
				}
			}
			if sel, ok := n.(*ast.SelectorExpr); ok {
				if pkg, name, ok := analysis.PkgSymbol(pass.TypesInfo, sel); ok && pkg == "time" && name == "Now" {
					found = true
					return false
				}
			}
			return true
		})
	}
	return found
}
