package noglobalrand_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/noglobalrand"
)

func TestNoGlobalRand(t *testing.T) {
	analysistest.Run(t, "testdata", noglobalrand.Analyzer,
		"cellular", "experiments", "randtool")
}
