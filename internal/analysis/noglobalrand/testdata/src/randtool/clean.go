// Package randtool is a negative fixture: outside the simulation set the
// global source is legal and the analyzer must stay silent.
package randtool

import "math/rand"

// Pick draws from the global source, legally.
func Pick(n int) int { return rand.Intn(n) }
