// Package cellular is a noglobalrand fixture: a leaf simulation package
// where explicitly seeded RNGs are legal but the global source and
// wall-clock seeding are not.
package cellular

import (
	"math/rand"
	"time"
)

// Jitter draws from the process-global source.
func Jitter() float64 {
	return rand.Float64() // want `rand\.Float64 uses the global math/rand source`
}

// Order shuffles with the global source.
func Order(n int) []int {
	return rand.Perm(n) // want `rand\.Perm uses the global math/rand source`
}

// ClockSeeded builds a source from the wall clock; the diagnostic lands on
// the NewSource call, once.
func ClockSeeded() *rand.Rand {
	return rand.New(rand.NewSource(time.Now().UnixNano())) // want `rand\.NewSource seeded from the wall clock`
}

// Seeded is the sanctioned pattern: an RNG that is a pure function of an
// explicit seed parameter.
func Seeded(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// TypesAreFine uses math/rand types without touching the global source.
func TypesAreFine(rng *rand.Rand) float64 { return rng.Float64() }
