package cellular

import "math/rand"

// Annotated shows a justified suppression of a global-source draw.
func Annotated() float64 {
	//lint:noglobalrand derived-seed -- fixture: pretend this value never reaches a digest
	return rand.Float64()
}
