// Package experiments is a noglobalrand fixture for the harness-layer
// rule: the experiment harnesses must not import math/rand at all — their
// randomness flows from the runner's seed-derivation path.
package experiments

import (
	"math/rand" // want `experiment harnesses must not import math/rand directly`
)

// Mutate uses an explicitly seeded RNG, which would be fine in a leaf
// simulation package — but the import itself is the violation here.
func Mutate(seed int64) float64 {
	return rand.New(rand.NewSource(seed)).Float64()
}
