// Package nofaultsinprod keeps the fault-injection layer out of production
// code paths.
//
// ISSUE 4's fault layer (internal/faults) is an experiment-harness concern:
// plans are wired around a link by the experiments packages, the
// verus-bench CLI, or a test — never inside the simulator core, a
// controller, or the transport. A production import of faults would let
// impairment logic leak into the datapath being measured, and — because
// the layer consumes seeded randomness — would silently widen the
// determinism surface of every package that links it.
//
// The rule: any package outside the sanctioned set (the faults layer
// itself, the experiments harnesses including experiments/runner, and
// cmd/verus-bench) is flagged for importing a faults package. Test files
// are outside the analyzed set and may inject faults freely — that is
// what the layer is for.
//
// Suppressions carry:
//
//	//lint:nofaultsinprod sim-only -- <why this import cannot reach a production datapath>
package nofaultsinprod

import (
	"strings"

	"repro/internal/analysis"
)

// Analyzer is the nofaultsinprod pass.
var Analyzer = &analysis.Analyzer{
	Name:   "nofaultsinprod",
	Doc:    "forbid importing the fault-injection layer (internal/faults) outside the experiment harness, verus-bench, and tests",
	Claims: []string{"sim-only"},
	Run:    run,
}

func run(pass *analysis.Pass) error {
	path := pass.Pkg.Path()
	if analysis.MayInjectFaults(path) {
		return nil
	}
	for _, f := range pass.Files {
		for _, imp := range f.Imports {
			p := strings.Trim(imp.Path.Value, `"`)
			if analysis.IsFaultsPackage(p) {
				pass.Reportf(imp.Pos(),
					"package %s imports the fault-injection layer %s; faults are wired in only by the experiment harness, verus-bench, or tests", path, p)
			}
		}
	}
	return nil
}
