// Package transport is a nofaultsinprod fixture: a production datapath
// package linking the fault layer directly.
package transport

import (
	"repro/internal/faults" // want `imports the fault-injection layer`
)

// Impaired pretends to bake an outage schedule into the shipped sender.
func Impaired() string {
	return faults.Outage.String()
}
