package transport

//lint:nofaultsinprod sim-only -- fixture: pretend this shim is compiled out of release builds
import sims "repro/internal/faults"

// Shim shows a justified suppression of a faults import.
func Shim() string {
	return sims.Handover.String()
}
