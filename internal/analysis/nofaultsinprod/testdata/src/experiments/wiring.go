// Package experiments is a nofaultsinprod fixture for the sanctioned side:
// the harness layer wires fault plans into simulations, so its import is
// legal and the analyzer must stay silent.
package experiments

import "repro/internal/faults"

// Plan builds a canned scenario the way the harness does.
func Plan() []string {
	return faults.Names()
}
