package nofaultsinprod_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/nofaultsinprod"
)

func TestNoFaultsInProd(t *testing.T) {
	analysistest.Run(t, "testdata", nofaultsinprod.Analyzer,
		"transport", "experiments")
}
