package analysis

import "regexp"

// The determinism contract (DESIGN.md §7-9) applies to the packages that run
// inside a netsim.Sim event loop: everything a simulated experiment
// executes must be a pure function of its derived seed. The analyzers match
// packages by path segment so the same rules apply to the repository's
// import paths (repro/internal/netsim) and to analysistest fixtures
// (plain "netsim").

// simPkgRe matches the simulation packages named in ISSUE 3: the simulator
// core, the channel models, every controller, the fault-injection layer
// (ISSUE 4), the observability layer (ISSUE 5 — events carry virtual time
// and metric snapshots feed rendered output, so it is bound by the same
// contract), and the experiment harnesses (including their subpackages,
// e.g. experiments/runner).
var simPkgRe = regexp.MustCompile(`(^|/)(netsim|cellular|verus|tcp|sprout|experiments|predictor|faults|obs|snap)(/|$)`)

// transportPkgRe matches the real-UDP transport, which is additionally
// subject to nowalltime: its wall-clock access must sit behind the Clock
// interface so simulated transports can run on virtual time.
var transportPkgRe = regexp.MustCompile(`(^|/)transport(/|$)`)

// runnerPkgRe matches the experiment runner subpackage, the one sanctioned
// home of math/rand within the harness layer (it owns seed derivation).
var runnerPkgRe = regexp.MustCompile(`(^|/)experiments/runner(/|$)`)

// harnessPkgRe matches the experiment harness layer itself.
var harnessPkgRe = regexp.MustCompile(`(^|/)experiments(/|$)`)

// netsimPkgRe matches the simulator core package, whose Packet type is
// pooled (DESIGN.md §13): poolrelease scopes its literal check to types
// defined there.
var netsimPkgRe = regexp.MustCompile(`(^|/)netsim(/|$)`)

// IsSimPackage reports whether the import path is under the simulation
// determinism contract.
func IsSimPackage(path string) bool { return simPkgRe.MatchString(path) }

// IsNetsimPackage reports whether the import path is the simulator core,
// the home of the pooled Packet type.
func IsNetsimPackage(path string) bool { return netsimPkgRe.MatchString(path) }

// UsesVirtualTime reports whether the package must route all clock access
// through virtual time (simulation packages plus the transport layer).
func UsesVirtualTime(path string) bool {
	return IsSimPackage(path) || transportPkgRe.MatchString(path)
}

// IsHarnessPackage reports whether the package is an experiment harness
// that must obtain RNGs via the runner's seed-derivation path rather than
// importing math/rand directly.
func IsHarnessPackage(path string) bool {
	return harnessPkgRe.MatchString(path) && !runnerPkgRe.MatchString(path)
}

// faultsPkgRe matches the fault-injection layer (ISSUE 4), both as the
// repository path (repro/internal/faults) and as a fixture path (faults).
var faultsPkgRe = regexp.MustCompile(`(^|/)faults(/|$)`)

// benchCmdRe matches the verus-bench CLI, which exposes the -faults flag.
var benchCmdRe = regexp.MustCompile(`(^|/)cmd/verus-bench(/|$)`)

// IsFaultsPackage reports whether the import path is the fault-injection
// layer itself (or one of its subpackages).
func IsFaultsPackage(path string) bool { return faultsPkgRe.MatchString(path) }

// MayInjectFaults reports whether a package is sanctioned to import the
// fault-injection layer: the layer itself, the experiment harnesses that
// wire plans into simulations, and the verus-bench CLI. Everything else —
// the simulator core, the controllers, the transport — must stay
// fault-free in production code; tests are outside the analyzed set and
// may inject freely.
func MayInjectFaults(path string) bool {
	return faultsPkgRe.MatchString(path) ||
		harnessPkgRe.MatchString(path) ||
		benchCmdRe.MatchString(path)
}
