package netsim

import "time"

// WallDeadline carries a justified suppression: the directive names the
// analyzer, an accepted claim, and a reason, so the diagnostic is dropped.
func WallDeadline() time.Time {
	//lint:nowalltime real-time -- fixture: pretend this only runs on the real-UDP path
	return time.Now()
}

// SameLine shows the end-of-line directive placement.
func SameLine() time.Time {
	return time.Now() //lint:nowalltime real-time -- fixture: same-line suppression
}

// BadClaim uses a claim nowalltime does not accept: the directive is
// rejected AND the diagnostic still fires.
func BadClaim() time.Time {
	//lint:nowalltime ordered-elsewhere -- wrong claim for this analyzer // want `does not accept claim "ordered-elsewhere"`
	return time.Now() // want `time\.Now reads the host clock`
}

// NoReason omits the mandatory justification, so the suppression is
// malformed and the diagnostic still fires.
func NoReason() time.Time {
	//lint:nowalltime real-time // want `missing its justification`
	return time.Now() // want `time\.Now reads the host clock`
}
