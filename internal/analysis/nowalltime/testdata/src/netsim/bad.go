// Package netsim is a nowalltime fixture: its path marks it as a
// simulation package, so every host-clock read below must be flagged.
package netsim

import "time"

// Elapsed abuses the host clock inside simulation code.
func Elapsed(start time.Time) time.Duration {
	now := time.Now()            // want `time\.Now reads the host clock`
	_ = time.Since(start)        // want `time\.Since reads the host clock`
	time.Sleep(time.Millisecond) // want `time\.Sleep reads the host clock`
	<-time.After(time.Second)    // want `time\.After reads the host clock`
	t := time.NewTicker(time.Second) // want `time\.NewTicker reads the host clock`
	t.Stop()
	return now.Sub(start)
}

// Virtual uses only time types and constants, which stay legal.
func Virtual(now time.Duration) time.Duration {
	return now + 20*time.Millisecond
}
