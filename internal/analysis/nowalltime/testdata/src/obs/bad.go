// Package obs is a nowalltime fixture: the observability layer is bound by
// the determinism contract — events carry virtual time stamped by their
// producers, so the tracer and exporters must never read the host clock.
package obs

import "time"

// Event is a miniature of the real trace record.
type Event struct {
	At time.Duration
}

// StampNow is the regression this fixture guards against: a tracer that
// "helpfully" timestamps events itself off the wall clock.
func StampNow() Event {
	start := time.Now()               // want `time\.Now reads the host clock`
	e := Event{At: time.Since(start)} // want `time\.Since reads the host clock`
	return e
}

// FlushLater is the other tempting mistake: wall-clock-driven export timing
// inside the observability layer.
func FlushLater(flush func()) {
	time.AfterFunc(time.Second, flush) // want `time\.AfterFunc reads the host clock`
}

// Stamp is the legal shape: the producer passes virtual time in.
func Stamp(now time.Duration) Event {
	return Event{At: now}
}
