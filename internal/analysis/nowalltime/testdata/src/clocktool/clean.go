// Package clocktool is a negative fixture: its path is outside the
// simulation set, so wall-clock reads are legal and the analyzer must stay
// silent.
package clocktool

import "time"

// Stamp reads the host clock, legally.
func Stamp() int64 { return time.Now().UnixNano() }
