// Package nowalltime forbids wall-clock access in code that must run on
// netsim virtual time.
//
// Inside the simulation packages and the transport layer, time flows from
// netsim.Sim (or the transport Clock interface) so that every run is an
// exact replay of its seed. A single time.Now, time.Since, or timer started
// from the host clock makes output depend on machine load — the class of
// bug PR 1 fixed dynamically and this analyzer now rejects at build time.
//
// Types and constants from package time (time.Duration, time.Millisecond)
// remain legal; only the clock-reading and timer functions are forbidden.
// Real-time call sites (the UDP transport's host clock) carry:
//
//	//lint:nowalltime real-time -- <why this code never runs under netsim>
package nowalltime

import (
	"go/ast"

	"repro/internal/analysis"
)

// forbidden are the package-time functions that read or wait on the host
// clock.
var forbidden = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"Sleep":     true,
	"After":     true,
	"AfterFunc": true,
	"Tick":      true,
	"NewTicker": true,
	"NewTimer":  true,
}

// Analyzer is the nowalltime pass.
var Analyzer = &analysis.Analyzer{
	Name:   "nowalltime",
	Doc:    "forbid host-clock reads and timers (time.Now, time.Since, time.Sleep, tickers) in simulation and transport packages, where only virtual time is deterministic",
	Claims: []string{"real-time"},
	Run:    run,
}

func run(pass *analysis.Pass) error {
	if !analysis.UsesVirtualTime(pass.Pkg.Path()) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			pkg, name, ok := analysis.PkgSymbol(pass.TypesInfo, sel)
			if ok && pkg == "time" && forbidden[name] {
				pass.Reportf(sel.Pos(),
					"time.%s reads the host clock; simulation code must take time from netsim.Sim (or the transport Clock)", name)
			}
			return true
		})
	}
	return nil
}
