package nowalltime_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/nowalltime"
)

func TestNoWallTime(t *testing.T) {
	analysistest.Run(t, "testdata", nowalltime.Analyzer, "netsim", "obs", "clocktool")
}
