package crossshard_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/crossshard"
)

func TestCrossShard(t *testing.T) {
	analysistest.Run(t, "testdata", crossshard.Analyzer, "netsim")
}
