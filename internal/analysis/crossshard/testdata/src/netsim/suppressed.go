package netsim

// SetupInsideClosure deliberately peeks at a neighbor cell from a t=0
// callback that runs before the sharded executor forks the cells; the
// directive records why the race cannot happen.
func SetupInsideClosure(m *Mesh) {
	a := m.Cell(0)
	b := m.Cell(1)
	a.Schedule(0, func() {
		//lint:crossshard cross-shard-ok -- runs at t=0 before RunSharded forks the cells
		_ = b.Now()
	})
}
