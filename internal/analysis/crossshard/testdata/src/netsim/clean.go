package netsim

// SameCell touches only the Sim the worker was scheduled on.
func SameCell(m *Mesh) {
	sim := m.Cell(0)
	sim.Schedule(5, func() {
		sim.After(1, func() {})
	})
}

// LoopWiring is the repository's topology-setup idiom: the cell index is
// a loop variable, so provenance is unknown and the analyzer stays quiet
// (the check is one-sided by design).
func LoopWiring(m *Mesh, n int) {
	for i := 0; i < n; i++ {
		sim := m.Cell(i)
		peer := m.Cell((i + 1) % n)
		sim.Schedule(5, func() {
			_ = peer.Now()
		})
	}
}

// OutboxDetour sends the cross-cell effect through the mesh API, which
// respects the lookahead barrier.
func OutboxDetour(m *Mesh) {
	src := m.Cell(0)
	src.Schedule(5, func() {
		m.Send(0, 1, 7, func() {})
	})
}

// JoinDegrades: after the branch joins, sim's provenance is ambiguous,
// so the worker's home cell is unknown and nothing is reported.
func JoinDegrades(m *Mesh, flip bool) {
	sim := m.Cell(0)
	if flip {
		sim = m.Cell(1)
	}
	target := m.Cell(1)
	sim.Schedule(1, func() {
		_ = target.Now()
	})
}
