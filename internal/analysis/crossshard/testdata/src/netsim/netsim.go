// Package netsim is a crossshard fixture: a miniature of the mesh and
// cell-sim surface, enough for the cell-origin dataflow to classify
// Cell() provenance and scheduling contexts.
package netsim

// Packet mirrors the pooled type (only its existence matters here).
type Packet struct{ Seq int64 }

// Sim mirrors one cell's event loop.
type Sim struct{ now int64 }

// Schedule runs fn inside this cell's shard at the given virtual time.
func (s *Sim) Schedule(at int64, fn func()) {}

// After is Schedule with a relative deadline.
func (s *Sim) After(d int64, fn func()) {}

// Now returns the cell's virtual clock.
func (s *Sim) Now() int64 { return s.now }

// Mesh mirrors the multi-cell router.
type Mesh struct{ cells []*Sim }

// Cell returns cell i's Sim.
func (m *Mesh) Cell(i int) *Sim { return m.cells[i] }

// Send routes a cross-cell effect through the outbox.
func (m *Mesh) Send(src, dst int, delay int64, fn func()) {}

// SendPacket routes a packet through the outbox.
func (m *Mesh) SendPacket(src, dst int, delay int64, p *Packet) {}
