package netsim

// CrossTouch schedules work on cell 0's Sim and then calls straight into
// cell 1's Sim from inside the worker — a data race under RunSharded.
func CrossTouch(m *Mesh) {
	a := m.Cell(0)
	b := m.Cell(1)
	a.Schedule(5, func() {
		b.After(1, func() {}) // want `touches cell 1`
	})
}

// CrossRead reads another cell's clock from a worker; reads race too,
// and serial vs sharded runs would disagree on the value.
func CrossRead(m *Mesh) {
	home := m.Cell(2)
	other := m.Cell(3)
	home.Schedule(1, func() {
		_ = other.Now() // want `touches cell 3`
	})
}

// CopiedOrigin: provenance follows the copy; aliasing does not launder
// the cell identity.
func CopiedOrigin(m *Mesh) {
	a := m.Cell(0)
	b := m.Cell(1)
	alias := b
	a.After(2, func() {
		alias.Schedule(9, func() {}) // want `touches cell 1`
	})
}
