// Package crossshard verifies the mesh sharding invariant at compile
// time: a callback scheduled on one cell's Sim runs inside that cell's
// shard and may touch other cells only through the Mesh outbox/barrier
// API (Mesh.Send / Mesh.SendPacket), never by calling into another
// cell's Sim directly. RunSharded executes cells on separate goroutines
// between barriers, so a direct cross-cell touch is a data race and a
// serial≡sharded divergence — the exact class of bug the
// executor-equivalence harness exists to catch at runtime, promoted here
// to a compile-time check (DESIGN.md §14).
//
// # What it proves
//
// The analyzer runs the analysis/flow dataflow over each function to
// track which cell every *netsim.Sim variable originates from: a
// variable assigned `mesh.Cell(3)` has origin cell 3; copies propagate
// the origin; joining paths that disagree, reassignment, or a
// non-constant cell index degrade the origin to unknown. A function
// literal passed to a scheduling method (Schedule, After, Every,
// SchedulePacket, SchedulePacketAfter) of a Sim with known origin N is a
// worker context for cell N: any reference inside it to a Sim variable
// whose origin is a *known, different* cell M is reported.
//
// Unknown origins are never reported — the check is deliberately
// one-sided. Loop-driven topology wiring (`sim := mesh.Cell(s)` for a
// loop variable s) stays quiet because s is not a constant; what cannot
// hide is the literal cross-wiring mistake `mesh.Cell(0)` inside a
// worker scheduled on `mesh.Cell(1)`.
//
// The escape hatch, for deliberate cross-cell access (setup-time code
// that happens to sit in a closure, single-threaded harness tricks):
//
//	//lint:crossshard cross-shard-ok -- <why this access cannot race>
package crossshard

import (
	"go/ast"
	"go/constant"
	"go/types"

	"repro/internal/analysis"
	"repro/internal/analysis/flow"
)

// Analyzer is the crossshard pass.
var Analyzer = &analysis.Analyzer{
	Name:   "crossshard",
	Doc:    "callbacks scheduled on one cell's Sim must not touch another cell's Sim except through the Mesh outbox API",
	Claims: []string{"cross-shard-ok"},
	Run:    run,
}

// schedulingMethods are the Sim methods whose func-literal argument runs
// inside that Sim's shard.
var schedulingMethods = map[string]bool{
	"Schedule":            true,
	"After":               true,
	"Every":               true,
	"SchedulePacket":      true,
	"SchedulePacketAfter": true,
}

func run(pass *analysis.Pass) error {
	if !analysis.IsSimPackage(pass.Pkg.Path()) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					analyze(pass, n.Body)
				}
			case *ast.FuncLit:
				// A closure's own locals get their own dataflow; worker
				// literals nested inside it are found on this pass too.
				analyze(pass, n.Body)
			}
			return true
		})
	}
	return nil
}

func analyze(pass *analysis.Pass, body *ast.BlockStmt) {
	cf := &cellFlow{pass: pass}
	if !bodyMentionsCell(body) {
		return
	}
	g := flow.Build(body)
	if g.Unsupported != nil {
		// No Cell-origin facts survive imprecise control flow; every origin
		// would be unknown anyway, and unknown is never reported.
		return
	}
	res := flow.Fixpoint(g, cf)
	for _, b := range g.Blocks {
		in := res.In[b]
		if in == nil {
			continue
		}
		cf.transfer(b, in.(origins), pass)
	}
}

// origin is one variable's provenance: the mesh cell it was obtained
// from, when that is a compile-time constant.
type origin struct {
	cell  int64
	known bool
}

// origins is the lattice element: *Sim-typed object → provenance.
type origins map[types.Object]origin

var unknown = origin{}

// cellFlow implements flow.Transfers for the cell-origin analysis.
type cellFlow struct {
	pass *analysis.Pass
}

func (cf *cellFlow) Entry() any { return origins{} }

func (cf *cellFlow) Join(a, b any) any {
	am, bm := a.(origins), b.(origins)
	out := make(origins, len(am)+len(bm))
	for k, v := range am {
		out[k] = v
	}
	for k, v := range bm {
		if old, ok := out[k]; ok && (old.known != v.known || old.cell != v.cell) {
			out[k] = unknown // paths disagree
			continue
		}
		out[k] = v
	}
	return out
}

func (cf *cellFlow) Equal(a, b any) bool {
	am, bm := a.(origins), b.(origins)
	if len(am) != len(bm) {
		return false
	}
	for k, v := range am {
		if w, ok := bm[k]; !ok || w != v {
			return false
		}
	}
	return true
}

func (cf *cellFlow) Transfer(b *flow.Block, in any) any {
	return cf.transfer(b, in.(origins), nil)
}

// transfer executes one block over a copy of the in-state; with a non-nil
// pass it also checks every worker literal registered in the block
// against the state at the registration point.
func (cf *cellFlow) transfer(b *flow.Block, in origins, report *analysis.Pass) origins {
	s := make(origins, len(in))
	for k, v := range in {
		s[k] = v
	}
	for _, n := range b.Nodes {
		if as, ok := n.(*ast.AssignStmt); ok && len(as.Lhs) == len(as.Rhs) {
			for i := range as.Lhs {
				cf.assignOne(s, as.Lhs[i], as.Rhs[i])
			}
		}
		if report != nil {
			cf.checkWorkers(s, n, report)
		}
	}
	return s
}

// assignOne updates the origin of a *Sim-typed identifier destination.
func (cf *cellFlow) assignOne(s origins, lhs, rhs ast.Expr) {
	id, ok := lhs.(*ast.Ident)
	if !ok || id.Name == "_" {
		return
	}
	obj := cf.objOf(id)
	if obj == nil || !isNetsimSimPtr(obj.Type()) {
		return
	}
	if o, ok := cf.originOf(s, rhs); ok {
		s[obj] = o
		return
	}
	s[obj] = unknown // reassigned from something we cannot place
}

// originOf computes the provenance of an expression: a Cell(const) call,
// or a copy of an already-tracked variable.
func (cf *cellFlow) originOf(s origins, e ast.Expr) (origin, bool) {
	switch e := e.(type) {
	case *ast.Ident:
		if obj := cf.objOf(e); obj != nil {
			if o, ok := s[obj]; ok {
				return o, true
			}
		}
	case *ast.CallExpr:
		if cell, ok := cf.cellCall(e); ok {
			return cell, true
		}
	case *ast.ParenExpr:
		return cf.originOf(s, e.X)
	}
	return unknown, false
}

// cellCall recognizes Mesh.Cell(i): origin known iff i is a constant.
func (cf *cellFlow) cellCall(call *ast.CallExpr) (origin, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Cell" || len(call.Args) != 1 {
		return unknown, false
	}
	if !isNetsimSimPtr(cf.exprType(call)) {
		return unknown, false
	}
	tv, ok := cf.pass.TypesInfo.Types[call.Args[0]]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.Int {
		return unknown, true // Cell of a runtime index: tracked but unknown
	}
	c, exact := constant.Int64Val(tv.Value)
	if !exact {
		return unknown, true
	}
	return origin{cell: c, known: true}, true
}

// checkWorkers finds scheduling calls in the node and validates each
// worker literal's body against the current origin state.
func (cf *cellFlow) checkWorkers(s origins, n ast.Node, pass *analysis.Pass) {
	ast.Inspect(n, func(m ast.Node) bool {
		call, ok := m.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || !schedulingMethods[sel.Sel.Name] {
			return true
		}
		recv, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		obj := cf.objOf(recv)
		if obj == nil || !isNetsimSimPtr(obj.Type()) {
			return true
		}
		home, tracked := s[obj]
		if !tracked || !home.known {
			return true // cannot place the worker's shard: stay quiet
		}
		for _, arg := range call.Args {
			if lit, ok := arg.(*ast.FuncLit); ok {
				cf.checkWorkerBody(s, lit.Body, home.cell, pass)
			}
		}
		return true
	})
}

// checkWorkerBody reports every reference inside a worker closure to a
// Sim variable that provably belongs to a different cell. The origin
// state is the one at the registration point — the repository wires
// topology once at setup, so origins do not change between registration
// and execution.
func (cf *cellFlow) checkWorkerBody(s origins, body *ast.BlockStmt, home int64, pass *analysis.Pass) {
	ast.Inspect(body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := cf.pass.TypesInfo.Uses[id]
		if obj == nil || !isNetsimSimPtr(obj.Type()) {
			return true
		}
		if o, tracked := s[obj]; tracked && o.known && o.cell != home {
			pass.Reportf(id.Pos(),
				"worker scheduled on cell %d touches cell %d's Sim directly; cross-cell effects must go through Mesh.Send/Mesh.SendPacket (the outbox respects the lookahead barrier, a direct call races)",
				home, o.cell)
		}
		return true
	})
}

func (cf *cellFlow) objOf(id *ast.Ident) types.Object {
	if obj := cf.pass.TypesInfo.Defs[id]; obj != nil {
		return obj
	}
	return cf.pass.TypesInfo.Uses[id]
}

func (cf *cellFlow) exprType(e ast.Expr) types.Type {
	if tv, ok := cf.pass.TypesInfo.Types[e]; ok {
		return tv.Type
	}
	return nil
}

// isNetsimSimPtr reports whether t is *Sim for netsim's Sim type.
func isNetsimSimPtr(t types.Type) bool {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	return obj.Name() == "Sim" && analysis.IsNetsimPackage(obj.Pkg().Path())
}

// bodyMentionsCell is the cheap pre-filter: no Cell selector, no
// origins, nothing to report.
func bodyMentionsCell(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		if sel, ok := n.(*ast.SelectorExpr); ok && sel.Sel.Name == "Cell" {
			found = true
			return false
		}
		return true
	})
	return found
}
