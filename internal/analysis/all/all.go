// Package all registers the verus-lint analyzer suite in one place, so the
// multichecker binary and the repository smoke test run the identical set.
package all

import (
	"repro/internal/analysis"
	"repro/internal/analysis/crossshard"
	"repro/internal/analysis/floatorder"
	"repro/internal/analysis/maprange"
	"repro/internal/analysis/nofaultsinprod"
	"repro/internal/analysis/noglobalrand"
	"repro/internal/analysis/nowalltime"
	"repro/internal/analysis/poolleak"
	"repro/internal/analysis/poolrelease"
	"repro/internal/analysis/unusedsuppress"
)

// Analyzers returns the full suite in stable order. Analyzers with
// AfterSuite set (unusedsuppress) sort last in every ordering the driver
// uses, because they read state the ordinary analyzers write.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		crossshard.Analyzer,
		floatorder.Analyzer,
		maprange.Analyzer,
		nofaultsinprod.Analyzer,
		noglobalrand.Analyzer,
		nowalltime.Analyzer,
		poolleak.Analyzer,
		poolrelease.Analyzer,
		unusedsuppress.Analyzer,
	}
}
