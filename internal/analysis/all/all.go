// Package all registers the verus-lint analyzer suite in one place, so the
// multichecker binary and the repository smoke test run the identical set.
package all

import (
	"repro/internal/analysis"
	"repro/internal/analysis/floatorder"
	"repro/internal/analysis/maprange"
	"repro/internal/analysis/nofaultsinprod"
	"repro/internal/analysis/noglobalrand"
	"repro/internal/analysis/nowalltime"
	"repro/internal/analysis/poolrelease"
)

// Analyzers returns the full suite in stable order.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		floatorder.Analyzer,
		maprange.Analyzer,
		nofaultsinprod.Analyzer,
		noglobalrand.Analyzer,
		nowalltime.Analyzer,
		poolrelease.Analyzer,
	}
}
