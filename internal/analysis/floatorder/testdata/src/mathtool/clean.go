// Package mathtool is a negative fixture: outside the golden-digest
// packages, FMA and map-order float sums are legal.
package mathtool

import "math"

// Fast uses the fused form, legally.
func Fast(a, b, c float64) float64 { return math.FMA(a, b, c) }

// Sum accumulates in map order, legally.
func Sum(m map[int]float64) float64 {
	var s float64
	for _, v := range m {
		s += v
	}
	return s
}
