// Package experiments is a floatorder fixture: a golden-digest package
// where every float rounding is contractual.
package experiments

import "math"

// MeanOverMap accumulates floats in randomized map order: the rounding
// sequence differs run to run, so the digest drifts.
func MeanOverMap(samples map[int]float64) float64 {
	var sum float64
	for _, v := range samples {
		sum += v // want `float accumulation over randomized map iteration order`
	}
	return sum / float64(len(samples))
}

// ScaleOverMap multiplies, which reassociates just as badly.
func ScaleOverMap(weights map[string]float64) float64 {
	prod := 1.0
	for _, w := range weights {
		prod *= w // want `float accumulation over randomized map iteration order`
	}
	return prod
}

// Fused rewrites a*b + c into a fused multiply-add, changing the low bits.
func Fused(a, b, c float64) float64 {
	return math.FMA(a, b, c) // want `math\.FMA fuses the multiply-add rounding`
}

// Separate keeps the two roundings — the digest-stable form.
func Separate(a, b, c float64) float64 {
	return a*b + c
}

// SliceSum accumulates over a slice, whose order is deterministic.
func SliceSum(xs []float64) float64 {
	var sum float64
	for _, v := range xs {
		sum += v
	}
	return sum
}

// IntOverMap accumulates integers, which commute exactly.
func IntOverMap(counts map[string]int) int {
	var n int
	for _, c := range counts {
		n += c
	}
	return n
}
