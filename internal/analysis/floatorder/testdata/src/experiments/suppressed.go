package experiments

// Annotated suppresses the accumulation diagnostic with a justified claim.
func Annotated(samples map[int]float64) float64 {
	var sum float64
	for _, v := range samples {
		//lint:floatorder order-invariant -- fixture: pretend this sum is only logged, never digested
		sum += v
	}
	return sum
}
