package floatorder_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/floatorder"
)

func TestFloatOrder(t *testing.T) {
	analysistest.Run(t, "testdata", floatorder.Analyzer, "experiments", "mathtool")
}
