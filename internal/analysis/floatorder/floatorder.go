// Package floatorder flags floating-point reassociation hazards in
// digest-feeding code.
//
// The golden-digest contract (DESIGN.md §8) pins the SHA-256 of every
// rendered experiment, which makes the exact rounding of every float that
// reaches a render part of the public contract. Two rewrites silently
// change that rounding:
//
//  1. Accumulating floats while ranging over a map: float addition does not
//     reassociate, so a randomized visit order yields run-to-run digest
//     drift even when the set of addends is identical.
//  2. math.FMA: it fuses the multiply-add into a single rounding, so
//     "optimizing" a*b + c into math.FMA(a, b, c) changes the low bits of
//     digest-fed expressions.
//
// Sites where the result provably cannot reach a digest carry:
//
//	//lint:floatorder order-invariant -- <why the rounding or order cannot reach any output or digest>
package floatorder

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer is the floatorder pass.
var Analyzer = &analysis.Analyzer{
	Name:   "floatorder",
	Doc:    "flag float accumulation over randomized map order and math.FMA rewrites in golden-digest packages, where every rounding is contractual",
	Claims: []string{"order-invariant"},
	Run:    run,
}

func run(pass *analysis.Pass) error {
	if !analysis.IsSimPackage(pass.Pkg.Path()) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.RangeStmt:
				checkMapAccumulation(pass, n)
			case *ast.CallExpr:
				if sel, ok := n.Fun.(*ast.SelectorExpr); ok {
					if pkg, name, ok := analysis.PkgSymbol(pass.TypesInfo, sel); ok && pkg == "math" && name == "FMA" {
						pass.Reportf(n.Pos(),
							"math.FMA fuses the multiply-add rounding; digest-fed expressions must keep the separate a*b + c roundings")
					}
				}
			}
			return true
		})
	}
	return nil
}

// checkMapAccumulation flags float compound assignments inside a map range
// body.
func checkMapAccumulation(pass *analysis.Pass, rng *ast.RangeStmt) {
	tv, ok := pass.TypesInfo.Types[rng.X]
	if !ok {
		return
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return
	}
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		s, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		switch s.Tok {
		case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
		default:
			return true
		}
		for _, lhs := range s.Lhs {
			if isFloat(pass, lhs) {
				pass.Reportf(s.Pos(),
					"float accumulation over randomized map iteration order; sum over sorted keys so the rounding sequence is deterministic")
				break
			}
		}
		return true
	})
}

// isFloat reports whether expr has floating-point type.
func isFloat(pass *analysis.Pass, expr ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[expr]
	if !ok {
		return false
	}
	basic, ok := tv.Type.Underlying().(*types.Basic)
	return ok && basic.Info()&types.IsFloat != 0
}
