// Package analysis is a minimal, dependency-free reimplementation of the
// golang.org/x/tools/go/analysis API surface, sized for this repository's
// determinism linters (cmd/verus-lint).
//
// Why not the real thing: the module is intentionally stdlib-only, and the
// x/tools framework is a large dependency for the four small analyzers we
// need. The subset here keeps the same shape — an Analyzer with a Run
// function over a Pass carrying parsed files and type information — so the
// analyzers port to the upstream framework mechanically if the project ever
// takes the dependency.
//
// # Suppression directives
//
// A diagnostic can be suppressed with a directive comment on the flagged
// line or on the line immediately above it:
//
//	//lint:<analyzer> <claim> -- <reason>
//
// where <claim> is one of the analyzer's accepted Claims (e.g. maprange
// accepts "ordered-elsewhere") and <reason> is free text explaining why the
// claim holds at this site. The reason is mandatory: a suppression without a
// justification is itself reported as a violation, as is a directive naming
// an unknown analyzer or claim. See DESIGN.md §9 for the grammar and the
// review bar for each claim.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
	"sync"
)

// Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and directives
	// (lowercase identifier).
	Name string
	// Doc is a one-paragraph description of what the analyzer forbids.
	Doc string
	// Claims are the directive keywords that may suppress this analyzer's
	// diagnostics (each still requires a reason).
	Claims []string
	// Run reports violations on the pass. Diagnostics suppressed by a
	// valid directive are dropped by the Pass, not by the analyzer.
	Run func(*Pass) error
	// AfterSuite marks a suite-level analyzer: the driver runs it only
	// after every ordinary analyzer has finished its pass over the
	// package, against the same shared Index, so its Run can observe
	// which suppression directives actually fired (unusedsuppress).
	AfterSuite bool
}

// Diagnostic is one reported violation.
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string
	Message  string
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	diags      []Diagnostic
	directives *Index
}

// NewPass assembles a pass with a private directive index, built from the
// files' comments for this (package, analyzer) pair alone.
func NewPass(a *Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info) *Pass {
	return NewPassShared(a, fset, files, pkg, info, NewIndex(fset, files))
}

// NewPassShared assembles a pass against a caller-owned directive index,
// shared by every analyzer in a suite over the same package. Sharing is
// what lets suppression usage accumulate across passes — the raw material
// of the unusedsuppress analyzer — and the index is safe for the driver's
// one-goroutine-per-analyzer parallelism.
func NewPassShared(a *Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, ix *Index) *Pass {
	ix.register(a)
	return &Pass{
		Analyzer:   a,
		Fset:       fset,
		Files:      files,
		Pkg:        pkg,
		TypesInfo:  info,
		directives: ix,
	}
}

// SuiteIndex returns the directive index this pass consults (shared when
// the pass was built with NewPassShared).
func (p *Pass) SuiteIndex() *Index { return p.directives }

// Reportf records a diagnostic at pos unless a valid directive for this
// analyzer covers the line (or the line above).
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	if p.suppressed(position) {
		return
	}
	p.diags = append(p.diags, Diagnostic{
		Pos:      pos,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostics returns the pass's surviving diagnostics in source order.
func (p *Pass) Diagnostics() []Diagnostic {
	SortDiagnostics(p.Fset, p.diags)
	return p.diags
}

// suppressed reports whether a well-formed directive for this analyzer
// covers the given position, marking the directive used in the index.
// Malformed directives never suppress; they are themselves flagged by
// CheckDirectives.
func (p *Pass) suppressed(pos token.Position) bool {
	return p.directives.suppress(p.Analyzer, pos)
}

// Directive is one parsed //lint: comment.
type Directive struct {
	Pos      token.Pos
	Analyzer string
	Claim    string
	Reason   string
	// Raw is the full comment text, for error messages.
	Raw string

	// used records that the directive suppressed at least one diagnostic;
	// guarded by the owning Index's mutex.
	used bool
}

// wellFormed reports whether the directive is a valid suppression for a.
func (d Directive) wellFormed(a *Analyzer) bool {
	if d.Reason == "" {
		return false
	}
	for _, c := range a.Claims {
		if c == d.Claim {
			return true
		}
	}
	return false
}

// directiveRe matches "//lint:<analyzer> <claim> -- <reason>"; the reason
// part is optional at parse time so validation can demand it with a precise
// message.
var directiveRe = regexp.MustCompile(`^//lint:([a-z][a-z0-9]*)\s+([A-Za-z0-9-]+)\s*(?:--\s*(.*\S))?\s*$`)

// Index holds one package's parsed //lint: directives plus the suite
// bookkeeping built on them: which analyzers consulted the index (ran)
// and which directives suppressed at least one diagnostic (used). A
// single Index is shared by every pass over a package — including passes
// running on different goroutines under the parallel driver — so all
// mutation happens under its mutex.
type Index struct {
	mu     sync.Mutex
	byLine map[string]map[int][]*Directive // filename → line → directives
	all    []*Directive                    // source order
	ran    map[string]*Analyzer            // analyzers registered via NewPassShared
}

// NewIndex parses every //lint: comment in the files into a fresh index.
func NewIndex(fset *token.FileSet, files []*ast.File) *Index {
	ix := &Index{byLine: map[string]map[int][]*Directive{}, ran: map[string]*Analyzer{}}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, "//lint:") {
					continue
				}
				d := parseDirective(c)
				pos := fset.Position(c.Pos())
				byLine := ix.byLine[pos.Filename]
				if byLine == nil {
					byLine = map[int][]*Directive{}
					ix.byLine[pos.Filename] = byLine
				}
				byLine[pos.Line] = append(byLine[pos.Line], &d)
				ix.all = append(ix.all, &d)
			}
		}
	}
	return ix
}

// register records that analyzer a is running against this index.
func (ix *Index) register(a *Analyzer) {
	ix.mu.Lock()
	ix.ran[a.Name] = a
	ix.mu.Unlock()
}

// suppress reports whether a well-formed directive for the analyzer
// covers pos (the flagged line or the line above), marking it used.
func (ix *Index) suppress(a *Analyzer, pos token.Position) bool {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	for _, line := range []int{pos.Line, pos.Line - 1} {
		for _, d := range ix.byLine[pos.Filename][line] {
			if d.Analyzer == a.Name && d.wellFormed(a) {
				d.used = true
				return true
			}
		}
	}
	return false
}

// UnusedSuppressions returns the well-formed directives that name an
// analyzer registered against this index yet suppressed no diagnostic —
// suppression debt. Directives naming `except` (the reporting analyzer
// itself, which has not finished running) and directives for analyzers
// that did not run this invocation are skipped, as are malformed ones
// (CheckDirectives owns those). The result is in source order.
func (ix *Index) UnusedSuppressions(except string) []*Directive {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	var out []*Directive
	for _, d := range ix.all {
		if d.used || d.Analyzer == except {
			continue
		}
		a, ranHere := ix.ran[d.Analyzer]
		if !ranHere || !d.wellFormed(a) {
			continue
		}
		out = append(out, d)
	}
	return out
}

// parseDirective decodes one //lint: comment; an unparsable comment yields a
// Directive with empty Analyzer, which CheckDirectives flags. A trailing
// "// want" clause is ignored so analysistest fixtures can assert on the
// directive's own line.
func parseDirective(c *ast.Comment) Directive {
	text := c.Text
	if i := strings.Index(text, "// want "); i > 0 {
		text = strings.TrimSpace(text[:i])
	}
	m := directiveRe.FindStringSubmatch(text)
	if m == nil {
		return Directive{Pos: c.Pos(), Raw: text}
	}
	return Directive{Pos: c.Pos(), Analyzer: m[1], Claim: m[2], Reason: m[3], Raw: text}
}

// CheckDirectives validates every //lint: comment in the files against the
// analyzer set: the named analyzer must exist, the claim must be one the
// analyzer accepts, and the reason must be non-empty. Violations come back
// as diagnostics attributed to the pseudo-analyzer "directive".
func CheckDirectives(fset *token.FileSet, files []*ast.File, analyzers []*Analyzer) []Diagnostic {
	byName := map[string]*Analyzer{}
	for _, a := range analyzers {
		byName[a.Name] = a
	}
	var diags []Diagnostic
	report := func(pos token.Pos, format string, args ...any) {
		diags = append(diags, Diagnostic{Pos: pos, Analyzer: "directive", Message: fmt.Sprintf(format, args...)})
	}
	for _, d := range allDirectives(fset, files) {
		switch a, ok := byName[d.Analyzer]; {
		case d.Analyzer == "":
			report(d.Pos, "malformed lint directive %q: want //lint:<analyzer> <claim> -- <reason>", d.Raw)
		case !ok:
			report(d.Pos, "lint directive names unknown analyzer %q", d.Analyzer)
		case !hasClaim(a, d.Claim):
			report(d.Pos, "analyzer %s does not accept claim %q (accepted: %s)",
				d.Analyzer, d.Claim, strings.Join(a.Claims, ", "))
		case d.Reason == "":
			report(d.Pos, "lint directive %q is missing its justification: append ` -- <reason>`", strings.TrimSpace(d.Raw))
		}
	}
	return diags
}

func hasClaim(a *Analyzer, claim string) bool {
	for _, c := range a.Claims {
		if c == claim {
			return true
		}
	}
	return false
}

func allDirectives(fset *token.FileSet, files []*ast.File) []Directive {
	var out []Directive
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if strings.HasPrefix(c.Text, "//lint:") {
					out = append(out, parseDirective(c))
				}
			}
		}
	}
	return out
}

// SortDiagnostics orders diagnostics by file, line, column, then analyzer —
// the deterministic output order of verus-lint.
func SortDiagnostics(fset *token.FileSet, diags []Diagnostic) {
	sort.SliceStable(diags, func(i, j int) bool {
		pi, pj := fset.Position(diags[i].Pos), fset.Position(diags[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		if pi.Column != pj.Column {
			return pi.Column < pj.Column
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
}

// PkgSymbol resolves a selector expression to (package path, symbol name)
// when its receiver is an imported package name — e.g. time.Now →
// ("time", "Now"). ok is false for method selectors and field accesses.
func PkgSymbol(info *types.Info, sel *ast.SelectorExpr) (pkgPath, name string, ok bool) {
	id, isIdent := sel.X.(*ast.Ident)
	if !isIdent {
		return "", "", false
	}
	pn, isPkg := info.Uses[id].(*types.PkgName)
	if !isPkg {
		return "", "", false
	}
	return pn.Imported().Path(), sel.Sel.Name, true
}

// UsesSymbol reports whether the expression tree contains a reference to the
// given package-level symbol (e.g. a time.Now call nested in a seed
// expression).
func UsesSymbol(info *types.Info, root ast.Node, pkgPath, name string) bool {
	found := false
	ast.Inspect(root, func(n ast.Node) bool {
		if found {
			return false
		}
		if sel, ok := n.(*ast.SelectorExpr); ok {
			if p, s, ok := PkgSymbol(info, sel); ok && p == pkgPath && s == name {
				found = true
				return false
			}
		}
		return true
	})
	return found
}
