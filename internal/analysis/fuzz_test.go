package analysis

// FuzzDirectiveParser hammers the //lint: grammar with hostile comment
// text — malformed analyzer names, missing "--" reason separators,
// multi-directive lines, stray whitespace. Two properties are pinned:
//
//  1. parseDirective never panics and parses all-or-nothing: a Directive
//     either carries an analyzer and a claim or carries neither.
//  2. The binary-facing classification: a comment starting //lint: either
//     validates cleanly against the analyzer set or yields diagnostics
//     attributed only to the "directive" pseudo-analyzer — the class
//     verus-lint maps to exit 2 — and a non-directive comment yields
//     none. A malformed suppression can therefore never pass silently or
//     masquerade as an ordinary violation.

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

func FuzzDirectiveParser(f *testing.F) {
	for _, seed := range []string{
		"//lint:nowalltime real-time -- the pacing loop reads the wall clock",
		"//lint:",
		"//lint:noglobalrand seeded",
		"//lint:poolrelease pool-internal --",
		"//lint:Bad_Name claim -- reason",
		"//lint:unknownanalyzer claim -- reason",
		"//lint:nowalltime wrong-claim -- reason",
		"//lint:a b -- c // want `x`",
		"//lint:one x -- r //lint:two y -- r",
		"// plain comment",
		"//lint:nowalltime real-time--missing spaces",
		"//lint:nowalltime   real-time   --   padded   ",
	} {
		f.Add(seed)
	}
	checkers := []*Analyzer{
		{Name: "nowalltime", Doc: "fuzz stand-in", Claims: []string{"real-time"}},
		{Name: "poolrelease", Doc: "fuzz stand-in", Claims: []string{"pool-internal"}},
	}
	f.Fuzz(func(t *testing.T, text string) {
		d := parseDirective(&ast.Comment{Slash: 1, Text: text})
		if d.Analyzer == "" && d.Claim != "" {
			t.Fatalf("partial parse of %q: claim %q without analyzer", text, d.Claim)
		}
		if d.Analyzer != "" && d.Claim == "" {
			t.Fatalf("partial parse of %q: analyzer %q without claim", text, d.Analyzer)
		}

		// The classification pin needs the text to survive as a real
		// one-line comment in a source file.
		if strings.ContainsAny(text, "\n\r") || !strings.HasPrefix(text, "//") {
			return
		}
		fset := token.NewFileSet()
		file, err := parser.ParseFile(fset, "fuzz.go", "package p\n"+text+"\n", parser.ParseComments)
		if err != nil {
			return
		}
		diags := CheckDirectives(fset, []*ast.File{file}, checkers)
		for _, dg := range diags {
			if dg.Analyzer != "directive" {
				t.Fatalf("directive validation attributed to %q, want \"directive\": %s", dg.Analyzer, dg.Message)
			}
		}
		if !strings.HasPrefix(text, "//lint:") {
			if len(diags) > 0 {
				t.Fatalf("non-directive comment %q produced %d directive diagnostic(s)", text, len(diags))
			}
			return
		}
		if len(diags) == 0 && (d.Analyzer == "" || d.Reason == "") {
			t.Fatalf("malformed directive %q passed validation: %+v", text, d)
		}
	})
}
