// Package poolrelease enforces the packet pool's allocation discipline.
//
// Every netsim.Packet on a simulation hot path is recycled through a
// per-Sim free list (DESIGN.md §13): code obtains packets with
// Sim.NewPacket/ClonePacket and hands them back with Sim.FreePacket. A raw
// `&Packet{...}` (or value `Packet{...}`) literal bypasses the pool — the
// packet can never be recycled, the pool's leak accounting silently drifts,
// and under -tags pooldebug the poison bookkeeping never sees it. This
// analyzer flags every composite literal of netsim's Packet type inside a
// simulation package.
//
// The one sanctioned literal is the pool's own backing allocation, which
// carries:
//
//	//lint:poolrelease pool-internal -- <why this literal is the pool's own growth path>
//
// Test files are outside the analyzed set, as with every verus-lint pass:
// tests may build bare packets to probe queues and invariants directly.
package poolrelease

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer is the poolrelease pass.
var Analyzer = &analysis.Analyzer{
	Name:   "poolrelease",
	Doc:    "forbid netsim.Packet composite literals in simulation packages outside the pool constructor (use Sim.NewPacket/ClonePacket)",
	Claims: []string{"pool-internal"},
	Run:    run,
}

func run(pass *analysis.Pass) error {
	if !analysis.IsSimPackage(pass.Pkg.Path()) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			cl, ok := n.(*ast.CompositeLit)
			if !ok {
				return true
			}
			tv, ok := pass.TypesInfo.Types[cl]
			if !ok {
				return true
			}
			if !isNetsimPacket(tv.Type) {
				return true
			}
			pass.Reportf(cl.Pos(),
				"netsim.Packet composite literal bypasses the packet pool; allocate with Sim.NewPacket (or ClonePacket) so the packet can be released and recycled")
			return true
		})
	}
	return nil
}

// isNetsimPacket reports whether t is the pooled Packet type: a named type
// called Packet defined in a netsim package.
func isNetsimPacket(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	return obj.Name() == "Packet" && analysis.IsNetsimPackage(obj.Pkg().Path())
}
