package netsim

// get is the pool's own growth path: the one sanctioned bare literal,
// suppressed with the pool-internal claim.
func (s *Sim) get() *Packet {
	if n := len(s.free); n > 0 {
		p := s.free[n-1]
		s.free = s.free[:n-1]
		return p
	}
	//lint:poolrelease pool-internal -- the free list's backing allocation; every consumer goes through NewPacket
	return &Packet{}
}
