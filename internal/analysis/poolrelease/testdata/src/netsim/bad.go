// Package netsim is a poolrelease fixture: the simulator core, whose
// Packet type is pooled.
package netsim

import "time"

// Packet mirrors the real pooled type.
type Packet struct {
	Flow   int
	Seq    int64
	Bytes  int
	SentAt time.Duration
	Window int
}

// Sim mirrors the pool owner.
type Sim struct{ free []*Packet }

// BareSend allocates a packet outside the pool — the pattern the pool
// refactor removed from flow.go and cbr.go.
func BareSend(flow int, seq int64) *Packet {
	return &Packet{Flow: flow, Seq: seq, Bytes: 1400} // want `bypasses the packet pool`
}

// ValueCopy builds a by-value literal; it escapes the pool's accounting all
// the same once its address flows into the datapath.
func ValueCopy(seq int64) Packet {
	return Packet{Seq: seq} // want `bypasses the packet pool`
}
