// Package sprout is a poolrelease fixture: a simulation package whose own
// Packet type has nothing to do with the pooled netsim.Packet, so its
// literals must not be flagged.
package sprout

// Packet is a protocol-local frame type, not the simulator's pooled packet.
type Packet struct {
	Tick int
	Len  int
}

// Frame builds one — fine: only netsim's Packet is pooled.
func Frame(tick, n int) *Packet {
	return &Packet{Tick: tick, Len: n}
}
