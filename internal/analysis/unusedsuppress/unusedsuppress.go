// Package unusedsuppress keeps the suppression inventory honest: a
// //lint: directive earns its place by suppressing a diagnostic; once
// the code it excused is fixed or deleted, the directive is debt that
// silently pre-forgives future regressions on that line. This analyzer
// flags every well-formed directive that suppressed nothing.
//
// It cannot run standalone — "suppressed nothing" is a fact about the
// whole suite's execution, so the analyzer carries AfterSuite and the
// driver runs it only after every ordinary analyzer has finished against
// the same shared directive index (analysis.Index records a hit each
// time Pass.Reportf swallows a diagnostic). Directives naming analyzers
// that did not run this invocation are skipped, so a partial run (e.g.
// verus-lint -only) never produces false "unused" findings, and
// malformed directives stay the "directive" pseudo-analyzer's business.
//
// A directive that is intentionally kept while its code path is dormant
// (e.g. a build-tagged branch) can itself be suppressed:
//
//	//lint:unusedsuppress keep -- <why the dormant directive must stay>
package unusedsuppress

import (
	"strings"

	"repro/internal/analysis"
)

// Analyzer is the unusedsuppress pass.
var Analyzer = &analysis.Analyzer{
	Name:       "unusedsuppress",
	Doc:        "flag //lint: directives that no longer suppress any diagnostic",
	Claims:     []string{"keep"},
	AfterSuite: true,
	Run:        run,
}

func run(pass *analysis.Pass) error {
	for _, d := range pass.SuiteIndex().UnusedSuppressions(pass.Analyzer.Name) {
		pass.Reportf(d.Pos,
			"suppression %q matches no diagnostic: the code it excused is fixed or gone; delete the directive",
			strings.TrimSpace(d.Raw))
	}
	return nil
}
