package unusedsuppress_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/poolrelease"
	"repro/internal/analysis/unusedsuppress"
)

func TestUnusedSuppress(t *testing.T) {
	analysistest.RunSuite(t, "testdata",
		[]*analysis.Analyzer{poolrelease.Analyzer, unusedsuppress.Analyzer},
		"netsim")
}
