// Package netsim is an unusedsuppress fixture: one directive that still
// earns its keep and one that suppresses nothing.
package netsim

// Packet mirrors the pooled type so poolrelease has something to flag.
type Packet struct{ Seq int64 }

// grow carries the sanctioned bare literal: the directive suppresses a
// real poolrelease diagnostic, so it is used and stays.
func grow() *Packet {
	//lint:poolrelease pool-internal -- the fixture pool's one bare allocation
	return &Packet{}
}

// settled was fixed long ago: the literal the directive excused is gone,
// so the suppression now matches nothing.
func settled() int {
	//lint:poolrelease pool-internal -- stale excuse for a literal that was poolified // want `matches no diagnostic`
	return 3
}
