// Package trace defines the channel-trace representation shared by the
// cellular channel model, the network simulator, and the experiment
// harnesses.
//
// A trace is a sequence of delivery opportunities: at time At the channel can
// deliver up to Bytes bytes. This captures exactly what the paper measures in
// §3 — bursty arrivals whose burst sizes and inter-arrival times vary — and
// what its OPNET setup replays ("channel traces ... contain inter-arrival
// times between consecutive packet arrivals").
package trace

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Opportunity is one delivery opportunity: Bytes may cross the channel at At.
type Opportunity struct {
	At    time.Duration
	Bytes int
}

// Trace is an ordered sequence of delivery opportunities over [0, Duration).
type Trace struct {
	Name     string
	Ops      []Opportunity
	Duration time.Duration
}

// Validate checks ordering and bounds invariants.
func (tr *Trace) Validate() error {
	var prev time.Duration = -1
	for i, op := range tr.Ops {
		if op.At < 0 {
			return fmt.Errorf("trace: op %d has negative time %v", i, op.At)
		}
		if op.At < prev {
			return fmt.Errorf("trace: op %d out of order (%v after %v)", i, op.At, prev)
		}
		if op.Bytes < 0 {
			return fmt.Errorf("trace: op %d has negative size %d", i, op.Bytes)
		}
		if op.At >= tr.Duration && tr.Duration > 0 {
			return fmt.Errorf("trace: op %d at %v beyond duration %v", i, op.At, tr.Duration)
		}
		prev = op.At
	}
	return nil
}

// TotalBytes returns the sum of all opportunity sizes.
func (tr *Trace) TotalBytes() int64 {
	var n int64
	for _, op := range tr.Ops {
		n += int64(op.Bytes)
	}
	return n
}

// MeanMbps returns the trace's average capacity in megabits per second.
func (tr *Trace) MeanMbps() float64 {
	if tr.Duration <= 0 {
		return 0
	}
	return float64(tr.TotalBytes()) * 8 / tr.Duration.Seconds() / 1e6
}

// WindowedMbps returns capacity per window of the given size, in Mbps
// (the Figure 4 view of a trace).
func (tr *Trace) WindowedMbps(window time.Duration) []float64 {
	if window <= 0 || tr.Duration <= 0 {
		return nil
	}
	n := int((tr.Duration + window - 1) / window)
	out := make([]float64, n)
	for _, op := range tr.Ops {
		w := int(op.At / window)
		if w >= 0 && w < n {
			out[w] += float64(op.Bytes)
		}
	}
	secs := window.Seconds()
	for i := range out {
		out[i] = out[i] * 8 / secs / 1e6
	}
	return out
}

// Clip returns a copy truncated to [0, d).
func (tr *Trace) Clip(d time.Duration) *Trace {
	out := &Trace{Name: tr.Name, Duration: d}
	for _, op := range tr.Ops {
		if op.At < d {
			out.Ops = append(out.Ops, op)
		}
	}
	return out
}

// Loop returns a copy of the trace repeated end-to-end until it covers at
// least d, then clipped to d. A trace with no duration cannot be looped.
func (tr *Trace) Loop(d time.Duration) (*Trace, error) {
	if tr.Duration <= 0 {
		return nil, errors.New("trace: cannot loop a zero-duration trace")
	}
	out := &Trace{Name: tr.Name, Duration: d}
	for base := time.Duration(0); base < d; base += tr.Duration {
		for _, op := range tr.Ops {
			at := base + op.At
			if at >= d {
				break
			}
			out.Ops = append(out.Ops, Opportunity{At: at, Bytes: op.Bytes})
		}
	}
	return out, nil
}

// Scale returns a copy with every opportunity size multiplied by factor
// (rounded to the nearest byte, never below zero).
func (tr *Trace) Scale(factor float64) *Trace {
	out := &Trace{Name: tr.Name, Duration: tr.Duration, Ops: make([]Opportunity, len(tr.Ops))}
	for i, op := range tr.Ops {
		b := int(float64(op.Bytes)*factor + 0.5)
		if b < 0 {
			b = 0
		}
		out.Ops[i] = Opportunity{At: op.At, Bytes: b}
	}
	return out
}

// FromArrivals builds a trace from observed packet arrivals (time, size),
// the procedure the paper uses to turn receiver-side measurements into
// channel traces. Arrivals are sorted; duration is the last arrival time
// rounded up to the next millisecond.
func FromArrivals(times []time.Duration, sizes []int) (*Trace, error) {
	if len(times) != len(sizes) {
		return nil, errors.New("trace: times and sizes length mismatch")
	}
	ops := make([]Opportunity, len(times))
	for i := range times {
		ops[i] = Opportunity{At: times[i], Bytes: sizes[i]}
	}
	sort.SliceStable(ops, func(i, j int) bool { return ops[i].At < ops[j].At })
	tr := &Trace{Ops: ops}
	if len(ops) > 0 {
		last := ops[len(ops)-1].At
		tr.Duration = (last/time.Millisecond + 1) * time.Millisecond
	}
	if err := tr.Validate(); err != nil {
		return nil, err
	}
	return tr, nil
}

// Write serializes the trace as CSV: a header line, then
// "micros,bytes" rows.
func (tr *Trace) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# trace %q duration_us=%d\n", tr.Name, tr.Duration.Microseconds()); err != nil {
		return err
	}
	for _, op := range tr.Ops {
		if _, err := fmt.Fprintf(bw, "%d,%d\n", op.At.Microseconds(), op.Bytes); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Read parses the CSV format produced by Write.
func Read(r io.Reader) (*Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<24)
	tr := &Trace{}
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if i := strings.Index(line, "duration_us="); i >= 0 {
				us, err := strconv.ParseInt(strings.TrimSpace(line[i+len("duration_us="):]), 10, 64)
				if err == nil {
					tr.Duration = time.Duration(us) * time.Microsecond
				}
			}
			if i := strings.Index(line, "trace \""); i >= 0 {
				rest := line[i+len("trace \""):]
				if j := strings.Index(rest, "\""); j >= 0 {
					tr.Name = rest[:j]
				}
			}
			continue
		}
		parts := strings.Split(line, ",")
		if len(parts) != 2 {
			return nil, fmt.Errorf("trace: line %d: want 2 fields, got %d", lineNo, len(parts))
		}
		us, err := strconv.ParseInt(strings.TrimSpace(parts[0]), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: bad time: %v", lineNo, err)
		}
		b, err := strconv.Atoi(strings.TrimSpace(parts[1]))
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: bad size: %v", lineNo, err)
		}
		tr.Ops = append(tr.Ops, Opportunity{At: time.Duration(us) * time.Microsecond, Bytes: b})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if tr.Duration == 0 && len(tr.Ops) > 0 {
		last := tr.Ops[len(tr.Ops)-1].At
		tr.Duration = (last/time.Millisecond + 1) * time.Millisecond
	}
	if err := tr.Validate(); err != nil {
		return nil, err
	}
	return tr, nil
}

// Save writes the trace to a file.
func (tr *Trace) Save(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := tr.Write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Load reads a trace from a file.
func Load(path string) (*Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Read(f)
}
