package trace

import (
	"bytes"
	"math"
	"path/filepath"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func ms(n int) time.Duration { return time.Duration(n) * time.Millisecond }

func sample() *Trace {
	return &Trace{
		Name:     "sample",
		Duration: ms(100),
		Ops: []Opportunity{
			{At: ms(0), Bytes: 1500},
			{At: ms(10), Bytes: 3000},
			{At: ms(10), Bytes: 1500},
			{At: ms(55), Bytes: 4500},
		},
	}
}

func TestValidate(t *testing.T) {
	if err := sample().Validate(); err != nil {
		t.Fatalf("valid trace rejected: %v", err)
	}
	bad := sample()
	bad.Ops[2].At = ms(5)
	if bad.Validate() == nil {
		t.Error("out-of-order ops accepted")
	}
	bad = sample()
	bad.Ops[0].Bytes = -1
	if bad.Validate() == nil {
		t.Error("negative size accepted")
	}
	bad = sample()
	bad.Ops[3].At = ms(200)
	if bad.Validate() == nil {
		t.Error("op beyond duration accepted")
	}
	bad = sample()
	bad.Ops[0].At = -ms(1)
	if bad.Validate() == nil {
		t.Error("negative time accepted")
	}
}

func TestTotalsAndMean(t *testing.T) {
	tr := sample()
	if got := tr.TotalBytes(); got != 10500 {
		t.Fatalf("TotalBytes = %d, want 10500", got)
	}
	want := 10500.0 * 8 / 0.1 / 1e6
	if got := tr.MeanMbps(); math.Abs(got-want) > 1e-12 {
		t.Fatalf("MeanMbps = %v, want %v", got, want)
	}
	empty := &Trace{}
	if empty.MeanMbps() != 0 {
		t.Error("zero-duration trace should have 0 Mbps")
	}
}

func TestWindowedMbps(t *testing.T) {
	tr := sample()
	w := tr.WindowedMbps(ms(50))
	if len(w) != 2 {
		t.Fatalf("windows = %d, want 2", len(w))
	}
	// Window 0 has 6000 bytes over 50 ms.
	want0 := 6000.0 * 8 / 0.05 / 1e6
	if math.Abs(w[0]-want0) > 1e-12 {
		t.Fatalf("window 0 = %v, want %v", w[0], want0)
	}
	if tr.WindowedMbps(0) != nil {
		t.Error("zero window should return nil")
	}
}

func TestClipAndLoop(t *testing.T) {
	tr := sample()
	c := tr.Clip(ms(20))
	if len(c.Ops) != 3 || c.Duration != ms(20) {
		t.Fatalf("Clip: %d ops, duration %v", len(c.Ops), c.Duration)
	}
	l, err := tr.Loop(ms(250))
	if err != nil {
		t.Fatal(err)
	}
	if l.Duration != ms(250) {
		t.Fatalf("Loop duration = %v", l.Duration)
	}
	if err := l.Validate(); err != nil {
		t.Fatalf("looped trace invalid: %v", err)
	}
	// 2 full copies (8 ops) + ops at 200,210,210 = 11.
	if len(l.Ops) != 11 {
		t.Fatalf("looped ops = %d, want 11", len(l.Ops))
	}
	if _, err := (&Trace{}).Loop(ms(10)); err == nil {
		t.Error("looping empty trace should error")
	}
}

func TestScale(t *testing.T) {
	tr := sample()
	s := tr.Scale(0.5)
	if s.Ops[0].Bytes != 750 {
		t.Fatalf("scaled size = %d, want 750", s.Ops[0].Bytes)
	}
	if s.TotalBytes() != 5250 {
		t.Fatalf("scaled total = %d", s.TotalBytes())
	}
	z := tr.Scale(-1)
	for _, op := range z.Ops {
		if op.Bytes != 0 {
			t.Fatal("negative scale should clamp to 0")
		}
	}
}

func TestFromArrivals(t *testing.T) {
	times := []time.Duration{ms(30), ms(10), ms(20)}
	sizes := []int{3, 1, 2}
	tr, err := FromArrivals(times, sizes)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Ops[0].Bytes != 1 || tr.Ops[2].Bytes != 3 {
		t.Fatal("arrivals not sorted by time")
	}
	if tr.Duration != ms(31) {
		t.Fatalf("duration = %v, want 31ms", tr.Duration)
	}
	if _, err := FromArrivals(times, sizes[:2]); err == nil {
		t.Error("length mismatch accepted")
	}
}

func TestRoundTrip(t *testing.T) {
	tr := sample()
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != tr.Name || got.Duration != tr.Duration || len(got.Ops) != len(tr.Ops) {
		t.Fatalf("round trip mismatch: %+v", got)
	}
	for i := range tr.Ops {
		if got.Ops[i] != tr.Ops[i] {
			t.Fatalf("op %d: got %+v, want %+v", i, got.Ops[i], tr.Ops[i])
		}
	}
}

func TestReadErrors(t *testing.T) {
	cases := []string{
		"1,2,3\n",
		"abc,100\n",
		"100,xyz\n",
	}
	for _, c := range cases {
		if _, err := Read(strings.NewReader(c)); err == nil {
			t.Errorf("Read(%q) should fail", c)
		}
	}
}

func TestReadInfersDuration(t *testing.T) {
	tr, err := Read(strings.NewReader("1000,100\n2500,200\n"))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Duration != 3*time.Millisecond {
		t.Fatalf("inferred duration = %v, want 3ms", tr.Duration)
	}
}

func TestSaveLoad(t *testing.T) {
	path := filepath.Join(t.TempDir(), "x.trace")
	tr := sample()
	if err := tr.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.TotalBytes() != tr.TotalBytes() {
		t.Fatal("Save/Load mismatch")
	}
	if _, err := Load(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Error("loading missing file should error")
	}
}

func TestMahimahiRoundTrip(t *testing.T) {
	in := "0\n0\n5\n12\n12\n12\n"
	tr, err := ReadMahimahi(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Ops) != 6 {
		t.Fatalf("ops = %d, want 6", len(tr.Ops))
	}
	if tr.TotalBytes() != 6*MTU {
		t.Fatalf("total = %d", tr.TotalBytes())
	}
	if tr.Duration != 13*time.Millisecond {
		t.Fatalf("duration = %v", tr.Duration)
	}
	var buf bytes.Buffer
	if err := tr.WriteMahimahi(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.String() != in {
		t.Fatalf("round trip: got %q, want %q", buf.String(), in)
	}
}

func TestMahimahiRejectsDisorder(t *testing.T) {
	if _, err := ReadMahimahi(strings.NewReader("5\n3\n")); err == nil {
		t.Fatal("decreasing timestamps accepted")
	}
	if _, err := ReadMahimahi(strings.NewReader("x\n")); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestMahimahiWriteSplitsLargeBursts(t *testing.T) {
	tr := &Trace{Duration: ms(10), Ops: []Opportunity{{At: ms(1), Bytes: 4000}}}
	var buf bytes.Buffer
	if err := tr.WriteMahimahi(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Fields(buf.String())
	if len(lines) != 3 { // ceil(4000/1500)
		t.Fatalf("slots = %d, want 3", len(lines))
	}
}

// Property: CSV round-trip preserves every opportunity exactly.
func TestQuickRoundTrip(t *testing.T) {
	f := func(raw []uint16) bool {
		tr := &Trace{Name: "q"}
		var at time.Duration
		for _, v := range raw {
			at += time.Duration(v%1000) * time.Microsecond
			tr.Ops = append(tr.Ops, Opportunity{At: at, Bytes: int(v)})
		}
		tr.Duration = at + time.Millisecond
		var buf bytes.Buffer
		if err := tr.Write(&buf); err != nil {
			return false
		}
		got, err := Read(&buf)
		if err != nil {
			return false
		}
		if len(got.Ops) != len(tr.Ops) {
			return false
		}
		for i := range tr.Ops {
			if got.Ops[i] != tr.Ops[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
