package trace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"
)

// MTU is the packet size assumed by mahimahi-style traces, in which each
// line is a millisecond timestamp at which one MTU-sized packet may be
// delivered. The Sprout/mahimahi tools use 1500-byte delivery slots.
const MTU = 1500

// ReadMahimahi parses a mahimahi-style trace: one integer per line, the
// millisecond at which one MTU of data can cross the link. Repeated
// timestamps mean multiple MTUs in that millisecond. Lines must be
// non-decreasing.
func ReadMahimahi(r io.Reader) (*Trace, error) {
	sc := bufio.NewScanner(r)
	tr := &Trace{Name: "mahimahi"}
	lineNo := 0
	prev := int64(-1)
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		ms, err := strconv.ParseInt(line, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("trace: mahimahi line %d: %v", lineNo, err)
		}
		if ms < prev {
			return nil, fmt.Errorf("trace: mahimahi line %d: timestamp %d before %d", lineNo, ms, prev)
		}
		prev = ms
		tr.Ops = append(tr.Ops, Opportunity{At: time.Duration(ms) * time.Millisecond, Bytes: MTU})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(tr.Ops) > 0 {
		tr.Duration = tr.Ops[len(tr.Ops)-1].At + time.Millisecond
	}
	return tr, nil
}

// WriteMahimahi serializes the trace in mahimahi format. Each opportunity is
// decomposed into ceil(Bytes/MTU) MTU slots at its timestamp, so the written
// trace's capacity is within one MTU per opportunity of the original.
func (tr *Trace) WriteMahimahi(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, op := range tr.Ops {
		slots := (op.Bytes + MTU - 1) / MTU
		ms := op.At.Milliseconds()
		for k := 0; k < slots; k++ {
			if _, err := fmt.Fprintf(bw, "%d\n", ms); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}
