// Package predictor implements the simple channel predictors the paper uses
// in §3 to demonstrate that cellular channels are non-trivial to predict:
// "linear predictors and k-step ahead predictors fail to track the high
// variations of the channel."
//
// A Predictor consumes a series of observations (e.g. per-window throughput)
// one at a time and emits a forecast for the next value. Evaluate compares a
// predictor against a series and reports tracking error, normalized against
// the series' own variability so "failing to track" is a quantitative
// statement.
package predictor

import (
	"math"
)

// Predictor forecasts the next value of a series.
type Predictor interface {
	// Name identifies the predictor in reports.
	Name() string
	// Observe feeds the actual value for the step just forecast.
	Observe(v float64)
	// Predict returns the forecast for the next value. Before any
	// observation it returns 0.
	Predict() float64
}

// LastValue predicts the most recent observation (the random-walk /
// persistence forecast — the strongest trivial baseline for short horizons).
type LastValue struct{ last float64 }

// NewLastValue returns a persistence predictor.
func NewLastValue() *LastValue { return &LastValue{} }

// Name implements Predictor.
func (p *LastValue) Name() string { return "last-value" }

// Observe implements Predictor.
func (p *LastValue) Observe(v float64) { p.last = v }

// Predict implements Predictor.
func (p *LastValue) Predict() float64 { return p.last }

// Linear fits a least-squares line to the last Window observations and
// extrapolates one step ahead — the paper's "linear predictor".
type Linear struct {
	window int
	buf    []float64
}

// NewLinear returns a linear predictor over the given window (>= 2).
func NewLinear(window int) *Linear {
	if window < 2 {
		panic("predictor: linear window must be >= 2")
	}
	return &Linear{window: window}
}

// Name implements Predictor.
func (p *Linear) Name() string { return "linear" }

// Observe implements Predictor.
func (p *Linear) Observe(v float64) {
	p.buf = append(p.buf, v)
	if len(p.buf) > p.window {
		p.buf = p.buf[len(p.buf)-p.window:]
	}
}

// Predict implements Predictor.
func (p *Linear) Predict() float64 {
	n := len(p.buf)
	switch n {
	case 0:
		return 0
	case 1:
		return p.buf[0]
	}
	// Least squares over x = 0..n-1; forecast at x = n.
	var sumX, sumY, sumXY, sumXX float64
	for i, y := range p.buf {
		x := float64(i)
		sumX += x
		sumY += y
		sumXY += x * y
		sumXX += x * x
	}
	fn := float64(n)
	denom := fn*sumXX - sumX*sumX
	if denom == 0 {
		return sumY / fn
	}
	slope := (fn*sumXY - sumX*sumY) / denom
	intercept := (sumY - slope*sumX) / fn
	return intercept + slope*fn
}

// KStep is the k-step-ahead EWMA predictor: it maintains level and trend
// estimates (Holt's linear method) and forecasts k steps ahead, then slides
// forward one step at a time — the paper's "k-step ahead predictor" using
// the most recent samples.
type KStep struct {
	k            int
	alpha, beta  float64
	level, trend float64
	n            int
}

// NewKStep returns a k-step-ahead predictor with smoothing factors alpha
// (level) and beta (trend) in (0, 1].
func NewKStep(k int, alpha, beta float64) *KStep {
	if k < 1 {
		panic("predictor: k must be >= 1")
	}
	if alpha <= 0 || alpha > 1 || beta <= 0 || beta > 1 {
		panic("predictor: smoothing factors must be in (0,1]")
	}
	return &KStep{k: k, alpha: alpha, beta: beta}
}

// Name implements Predictor.
func (p *KStep) Name() string { return "k-step" }

// Observe implements Predictor.
func (p *KStep) Observe(v float64) {
	if p.n == 0 {
		p.level = v
		p.n = 1
		return
	}
	prevLevel := p.level
	p.level = p.alpha*v + (1-p.alpha)*(p.level+p.trend)
	p.trend = p.beta*(p.level-prevLevel) + (1-p.beta)*p.trend
	p.n++
}

// Predict implements Predictor.
func (p *KStep) Predict() float64 {
	return p.level + float64(p.k)*p.trend
}

// Result reports a predictor's tracking performance on a series.
type Result struct {
	Name string
	// RMSE is the root mean squared one-step prediction error.
	RMSE float64
	// NRMSE is RMSE normalized by the series' standard deviation. A
	// predictor that fails to track the channel has NRMSE close to (or
	// above) 1: it does no better than always guessing the mean.
	NRMSE float64
}

// Evaluate runs the predictor over the series, forecasting each value before
// observing it, and reports the error. Series shorter than 2 yield a zero
// Result.
func Evaluate(p Predictor, series []float64) Result {
	r := Result{Name: p.Name()}
	if len(series) < 2 {
		return r
	}
	var sumSq float64
	var n int
	for i, v := range series {
		if i > 0 { // first value has no meaningful forecast
			e := p.Predict() - v
			sumSq += e * e
			n++
		}
		p.Observe(v)
	}
	r.RMSE = math.Sqrt(sumSq / float64(n))

	var mean, varAcc float64
	for _, v := range series {
		mean += v
	}
	mean /= float64(len(series))
	for _, v := range series {
		varAcc += (v - mean) * (v - mean)
	}
	std := math.Sqrt(varAcc / float64(len(series)))
	if std > 0 {
		r.NRMSE = r.RMSE / std
	}
	return r
}
