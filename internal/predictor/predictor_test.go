package predictor

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"repro/internal/cellular"
)

func TestLastValue(t *testing.T) {
	p := NewLastValue()
	if p.Predict() != 0 {
		t.Fatal("unprimed prediction should be 0")
	}
	p.Observe(5)
	if p.Predict() != 5 {
		t.Fatal("should predict last observation")
	}
	p.Observe(7)
	if p.Predict() != 7 {
		t.Fatal("should track latest observation")
	}
}

func TestLinearTracksALine(t *testing.T) {
	p := NewLinear(5)
	for i := 0; i < 10; i++ {
		p.Observe(2*float64(i) + 1)
	}
	// Next value is 2*10+1 = 21.
	if got := p.Predict(); math.Abs(got-21) > 1e-9 {
		t.Fatalf("linear forecast = %v, want 21", got)
	}
}

func TestLinearFewSamples(t *testing.T) {
	p := NewLinear(4)
	if p.Predict() != 0 {
		t.Fatal("empty linear should predict 0")
	}
	p.Observe(3)
	if p.Predict() != 3 {
		t.Fatal("single observation should be echoed")
	}
}

func TestLinearWindowSlides(t *testing.T) {
	p := NewLinear(2)
	p.Observe(100) // will slide out
	p.Observe(0)
	p.Observe(1)
	// Window holds {0,1}: slope 1, forecast 2.
	if got := p.Predict(); math.Abs(got-2) > 1e-9 {
		t.Fatalf("windowed forecast = %v, want 2", got)
	}
}

func TestLinearPanicsOnBadWindow(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("window 1 should panic")
		}
	}()
	NewLinear(1)
}

func TestKStepTracksTrend(t *testing.T) {
	p := NewKStep(3, 0.9, 0.9)
	for i := 0; i < 50; i++ {
		p.Observe(float64(i))
	}
	// Level ~49, trend ~1, 3-step forecast ~52.
	if got := p.Predict(); math.Abs(got-52) > 1 {
		t.Fatalf("k-step forecast = %v, want ~52", got)
	}
}

func TestKStepValidation(t *testing.T) {
	for _, bad := range []func(){
		func() { NewKStep(0, 0.5, 0.5) },
		func() { NewKStep(1, 0, 0.5) },
		func() { NewKStep(1, 0.5, 1.5) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid KStep params accepted")
				}
			}()
			bad()
		}()
	}
}

func TestEvaluatePerfectPredictor(t *testing.T) {
	// On a deterministic line, linear prediction is near-perfect: NRMSE ≈ 0.
	series := make([]float64, 100)
	for i := range series {
		series[i] = float64(i)
	}
	r := Evaluate(NewLinear(10), series)
	if r.NRMSE > 0.05 {
		t.Fatalf("linear on a line: NRMSE = %v, want ~0", r.NRMSE)
	}
}

func TestEvaluateShortSeries(t *testing.T) {
	r := Evaluate(NewLastValue(), []float64{1})
	if r.RMSE != 0 || r.NRMSE != 0 {
		t.Fatal("short series should yield zero result")
	}
}

func TestEvaluateConstantSeries(t *testing.T) {
	r := Evaluate(NewLastValue(), []float64{5, 5, 5, 5})
	if r.RMSE > 1e-9 {
		t.Fatalf("constant series RMSE = %v", r.RMSE)
	}
	if r.NRMSE != 0 {
		t.Fatal("zero-variance series should have NRMSE 0")
	}
}

func TestEvaluateWhiteNoiseIsUnpredictable(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	series := make([]float64, 2000)
	for i := range series {
		series[i] = rng.NormFloat64()
	}
	for _, p := range []Predictor{NewLastValue(), NewLinear(8), NewKStep(1, 0.7, 0.3)} {
		r := Evaluate(p, series)
		if r.NRMSE < 0.9 {
			t.Errorf("%s: NRMSE = %v on white noise, want ~>=1", r.Name, r.NRMSE)
		}
	}
}

// The §3 headline: on real (modeled) cellular throughput at short windows,
// simple predictors fail to track the channel — their error is comparable to
// the channel's own variability.
func TestPredictorsFailOnCellularChannel(t *testing.T) {
	m := cellular.NewModel(cellular.Config{
		Tech: cellular.Tech3G, Scenario: cellular.CampusStationary,
		MeanMbps: 10, Seed: 21,
	})
	tr := m.Trace(2 * time.Minute)
	series := tr.WindowedMbps(20 * time.Millisecond)
	for _, p := range []Predictor{NewLinear(10), NewKStep(5, 0.8, 0.3)} {
		r := Evaluate(p, series)
		if r.NRMSE < 0.6 {
			t.Errorf("%s: NRMSE = %.3f; the modeled channel is too predictable "+
				"to support the paper's §3 claim", r.Name, r.NRMSE)
		}
	}
}
