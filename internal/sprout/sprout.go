// Package sprout implements a stochastic-forecast congestion controller in
// the style of Sprout (Winstein, Sivaraman, Balakrishnan, NSDI 2013), the
// state-of-the-art cellular protocol the Verus paper compares against.
//
// The original Sprout models the cellular link as a Poisson packet-delivery
// process whose rate λ evolves by Brownian motion, maintains a discretized
// Bayesian belief over λ updated every 20 ms tick, and sends only as many
// packets as the *cautious* (5th-percentile) forecast of cumulative
// deliveries over the next several ticks allows. That caution is exactly
// what the Verus paper exploits: under rapidly changing conditions Sprout's
// conservative forecasts under-utilize the channel (paper Fig. 11), while
// its delay stays low (paper Fig. 8).
//
// This implementation reproduces that mechanism end-to-end — discretized
// belief, Brownian diffusion with occasional escapes, Poisson observation
// updates, percentile forecasts — driven by acknowledgement arrivals at the
// sender (the "sendonly" Sprout variant the paper uses). The forecast rate
// is capped at 18 Mbps by default, mirroring the implementation cap the
// paper reports ("the Sprout implementation bandwidth is capped at
// 18 Mbps"), which is what makes Scenario I of Fig. 11 behave as published.
package sprout

import (
	"math"
	"time"

	"repro/internal/cc"
)

// Config parameterizes the forecaster.
type Config struct {
	// Tick is the belief-update interval (20 ms in Sprout).
	Tick time.Duration
	// HorizonTicks is how many ticks ahead the delivery forecast extends
	// (Sprout forecasts ~100 ms; 5 ticks of 20 ms).
	HorizonTicks int
	// Percentile is the cautious quantile of the belief used for
	// forecasting (Sprout uses the 5th percentile).
	Percentile float64
	// MaxRateMbps caps the modeled link rate (the 18 Mbps implementation
	// cap). Packets above this rate are simply never forecast.
	MaxRateMbps float64
	// PacketBytes converts rates to packets.
	PacketBytes int
	// Bins is the resolution of the discretized belief.
	Bins int
	// SigmaMbpsPerSqrtSec is the Brownian-motion volatility of the link
	// rate.
	SigmaMbpsPerSqrtSec float64
	// EscapeProb is the per-tick probability mass spread uniformly to model
	// sudden rate jumps (Sprout's "escape" process).
	EscapeProb float64
}

// DefaultConfig returns parameters matching the published Sprout design.
func DefaultConfig() Config {
	return Config{
		Tick:                20 * time.Millisecond,
		HorizonTicks:        5,
		Percentile:          5,
		MaxRateMbps:         18,
		PacketBytes:         1400,
		Bins:                128,
		SigmaMbpsPerSqrtSec: 5,
		EscapeProb:          0.01,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case c.Tick <= 0:
		return errf("tick must be positive")
	case c.HorizonTicks < 1:
		return errf("horizon must be >= 1 tick")
	case c.Percentile <= 0 || c.Percentile >= 100:
		return errf("percentile must be in (0,100)")
	case c.MaxRateMbps <= 0:
		return errf("max rate must be positive")
	case c.PacketBytes <= 0:
		return errf("packet size must be positive")
	case c.Bins < 8:
		return errf("need at least 8 belief bins")
	case c.SigmaMbpsPerSqrtSec <= 0:
		return errf("volatility must be positive")
	case c.EscapeProb < 0 || c.EscapeProb >= 1:
		return errf("escape probability must be in [0,1)")
	}
	return nil
}

type configError string

func (e configError) Error() string { return "sprout: " + string(e) }

func errf(s string) error { return configError(s) }

// Sprout is the controller state. It implements cc.Controller.
type Sprout struct {
	cfg Config

	// belief[i] is the probability that the link delivers lambda(i)
	// packets per tick.
	belief []float64
	// scratch buffer for diffusion.
	next []float64
	// lambdaStep is packets-per-tick per bin.
	lambdaStep float64
	// sigmaBins is the per-tick diffusion stddev in bins.
	sigmaBins float64

	arrivals int // acks observed in the current tick
	window   int // cautious cumulative forecast, in packets

	// Saturation detection: when RTTs sit near the minimum the link was not
	// the constraint, so an arrival count only lower-bounds λ (censored
	// observation). The receiver-side original knows idle time directly;
	// sender-side, queueing delay is the signal.
	rttMin     time.Duration
	rttSumTick time.Duration
	rttCntTick int
	srtt       time.Duration

	ticks int64
}

var _ cc.Controller = (*Sprout)(nil)

// New returns a Sprout controller; it panics on an invalid config.
func New(cfg Config) *Sprout {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	maxPktPerTick := cfg.MaxRateMbps * 1e6 / 8 / float64(cfg.PacketBytes) * cfg.Tick.Seconds()
	s := &Sprout{
		cfg:        cfg,
		belief:     make([]float64, cfg.Bins),
		next:       make([]float64, cfg.Bins),
		lambdaStep: maxPktPerTick / float64(cfg.Bins-1),
	}
	sigmaPkts := cfg.SigmaMbpsPerSqrtSec * 1e6 / 8 / float64(cfg.PacketBytes) *
		cfg.Tick.Seconds() * math.Sqrt(cfg.Tick.Seconds())
	s.sigmaBins = sigmaPkts / s.lambdaStep
	if s.sigmaBins < 0.5 {
		s.sigmaBins = 0.5
	}
	s.resetBelief()
	// A modest initial window lets the first ticks gather observations.
	s.window = 4
	return s
}

func (s *Sprout) resetBelief() {
	u := 1 / float64(len(s.belief))
	for i := range s.belief {
		s.belief[i] = u
	}
}

// lambda returns the packets-per-tick value of bin i.
func (s *Sprout) lambda(i int) float64 { return float64(i) * s.lambdaStep }

// Name implements cc.Controller.
func (s *Sprout) Name() string { return "sprout" }

// TickInterval implements cc.Controller.
func (s *Sprout) TickInterval() time.Duration { return s.cfg.Tick }

// OnAck implements cc.Controller: each acknowledgement is one observed
// delivery for the current tick's Poisson update.
func (s *Sprout) OnAck(now time.Duration, ack cc.AckSample) {
	s.arrivals++
	if ack.RTT > 0 {
		if s.rttMin == 0 || ack.RTT < s.rttMin {
			s.rttMin = ack.RTT
		}
		s.rttSumTick += ack.RTT
		s.rttCntTick++
		if s.srtt == 0 {
			s.srtt = ack.RTT
		} else {
			s.srtt = (7*s.srtt + ack.RTT) / 8
		}
	}
}

// saturatedTick reports whether the just-finished tick's RTTs show queueing,
// i.e. deliveries were limited by the link rather than by our own window.
func (s *Sprout) saturatedTick() bool {
	if s.rttCntTick == 0 || s.rttMin == 0 {
		return false
	}
	avg := s.rttSumTick / time.Duration(s.rttCntTick)
	slack := s.rttMin / 5
	if slack < 2*time.Millisecond {
		slack = 2 * time.Millisecond
	}
	return avg > s.rttMin+slack
}

// OnLoss implements cc.Controller. Sprout is not loss-driven; stochastic
// losses are absorbed by the delivery model.
func (s *Sprout) OnLoss(time.Duration, cc.LossEvent) {}

// OnTimeout implements cc.Controller: a total stall invalidates the belief.
func (s *Sprout) OnTimeout(time.Duration) {
	s.resetBelief()
	s.window = 1
}

// Tick implements cc.Controller: evolve, observe, forecast.
func (s *Sprout) Tick(now time.Duration) {
	s.ticks++
	s.diffuse(s.belief)
	s.observe(s.arrivals, s.saturatedTick())
	s.arrivals = 0
	s.rttSumTick, s.rttCntTick = 0, 0
	s.window = s.forecast()
}

// diffuse applies one tick of Brownian evolution plus the escape process to
// the given distribution in place.
func (s *Sprout) diffuse(dist []float64) {
	n := len(dist)
	for i := range s.next {
		s.next[i] = 0
	}
	// Gaussian kernel truncated at 3σ.
	radius := int(3*s.sigmaBins) + 1
	var kernel []float64
	var ksum float64
	for k := -radius; k <= radius; k++ {
		w := math.Exp(-float64(k) * float64(k) / (2 * s.sigmaBins * s.sigmaBins))
		kernel = append(kernel, w)
		ksum += w
	}
	for i, p := range dist {
		if p == 0 {
			continue
		}
		for k := -radius; k <= radius; k++ {
			j := i + k
			if j < 0 {
				j = 0 // reflect mass at the boundaries
			}
			if j >= n {
				j = n - 1
			}
			s.next[j] += p * kernel[k+radius] / ksum
		}
	}
	esc := s.cfg.EscapeProb
	u := esc / float64(n)
	var total float64
	for i := range dist {
		dist[i] = s.next[i]*(1-esc) + u
		total += dist[i]
	}
	for i := range dist {
		dist[i] /= total
	}
}

// observe folds the tick's arrival count into the belief. When the link was
// saturated, k arrivals is an exact Poisson observation of λ. Otherwise the
// observation is censored: the link delivered everything offered, so k only
// lower-bounds capacity and the likelihood is the survival P(Poisson(λ) ≥ k).
// Without this distinction the sender's own small window would masquerade as
// evidence of a slow link and the forecast could never grow.
func (s *Sprout) observe(k int, saturated bool) {
	var total float64
	if saturated {
		lgk, _ := math.Lgamma(float64(k) + 1)
		for i := range s.belief {
			lam := s.lambda(i)
			var like float64
			if lam <= 0 {
				if k == 0 {
					like = 1
				} else {
					like = 1e-12
				}
			} else {
				like = math.Exp(float64(k)*math.Log(lam) - lam - lgk)
			}
			s.belief[i] *= like
			total += s.belief[i]
		}
	} else {
		for i := range s.belief {
			like := poissonSurvival(s.lambda(i), k)
			s.belief[i] *= like
			total += s.belief[i]
		}
	}
	if total <= 0 || math.IsNaN(total) {
		s.resetBelief()
		return
	}
	for i := range s.belief {
		s.belief[i] /= total
	}
}

// poissonSurvival returns P(Poisson(lam) >= k).
func poissonSurvival(lam float64, k int) float64 {
	if k <= 0 {
		return 1
	}
	if lam <= 0 {
		return 1e-12
	}
	// 1 - CDF(k-1), computed with an iterative pmf.
	pmf := math.Exp(-lam)
	cdf := pmf
	for j := 1; j < k; j++ {
		pmf *= lam / float64(j)
		cdf += pmf
	}
	surv := 1 - cdf
	if surv < 1e-12 {
		surv = 1e-12
	}
	return surv
}

// forecast returns the cautious cumulative delivery forecast. The in-flight
// budget covers one RTT's worth of cautious deliveries (the amount the pipe
// holds), bounded above by the delay-control horizon: Sprout's contract is
// that everything in flight drains within ~HorizonTicks with high
// probability, so at short RTTs the window must not grow past what one RTT
// clears — otherwise the sender's rate (window/RTT) would blow through the
// modeled rate cap.
func (s *Sprout) forecast() int {
	// Effective horizon in (possibly fractional) ticks: one RTT's worth of
	// deliveries, never more than the delay-control horizon.
	eff := float64(s.cfg.HorizonTicks)
	if s.srtt > 0 {
		if rttTicks := s.srtt.Seconds() / s.cfg.Tick.Seconds(); rttTicks < eff {
			eff = rttTicks
		}
	}
	dist := make([]float64, len(s.belief))
	copy(dist, s.belief)
	var cum float64
	for h := 0; eff > 0; h++ {
		s.diffuse(dist)
		p := s.percentileLambda(dist, s.cfg.Percentile)
		if eff >= 1 {
			cum += p
			eff--
		} else {
			cum += p * eff
			eff = 0
		}
	}
	w := int(cum)
	if w < 1 {
		w = 1 // always keep probing minimally
	}
	return w
}

// percentileLambda returns the p-th percentile of λ under dist.
func (s *Sprout) percentileLambda(dist []float64, p float64) float64 {
	target := p / 100
	var acc float64
	for i, q := range dist {
		acc += q
		if acc >= target {
			return s.lambda(i)
		}
	}
	return s.lambda(len(dist) - 1)
}

// Allowance implements cc.Controller.
func (s *Sprout) Allowance(_ time.Duration, inflight int) int {
	return s.window - inflight
}

// SendTag implements cc.Controller.
func (s *Sprout) SendTag() int { return s.window }

// OnSend implements cc.Controller.
func (s *Sprout) OnSend(time.Duration, int64, int) {}

// Window returns the current cautious forecast window in packets.
func (s *Sprout) Window() int { return s.window }

// BeliefMeanMbps returns the mean of the rate belief in Mbps, for
// instrumentation.
func (s *Sprout) BeliefMeanMbps() float64 {
	var mean float64
	for i, p := range s.belief {
		mean += s.lambda(i) * p
	}
	return mean * float64(s.cfg.PacketBytes) * 8 / s.cfg.Tick.Seconds() / 1e6
}
