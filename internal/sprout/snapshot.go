package sprout

import (
	"fmt"

	"repro/internal/snap"
)

// Snapshot implements snap.Snapshotter: the belief distribution and the
// tick-accumulator state. Derived quantities (lambdaStep, sigmaBins, the
// diffusion scratch) are functions of the config and are rebuilt.
func (s *Sprout) Snapshot(e *snap.Encoder) {
	e.Tag("sprout")
	e.F64s(s.belief)
	e.Int(s.arrivals)
	e.Int(s.window)
	e.Dur(s.rttMin)
	e.Dur(s.rttSumTick)
	e.Int(s.rttCntTick)
	e.Dur(s.srtt)
	e.I64(s.ticks)
}

// Restore implements snap.Snapshotter, cross-checking the belief resolution
// against the rebuilt configuration.
func (s *Sprout) Restore(d *snap.Decoder) {
	d.Expect("sprout")
	belief := d.F64s()
	arrivals := d.Int()
	window := d.Int()
	rttMin := d.Dur()
	rttSumTick := d.Dur()
	rttCntTick := d.Int()
	srtt := d.Dur()
	ticks := d.I64()
	if d.Err() != nil {
		return
	}
	if len(belief) != len(s.belief) {
		d.Fail(fmt.Errorf("sprout: snapshot has %d belief bins, rebuild configured %d", len(belief), len(s.belief)))
		return
	}
	copy(s.belief, belief)
	s.arrivals = arrivals
	s.window = window
	s.rttMin = rttMin
	s.rttSumTick = rttSumTick
	s.rttCntTick = rttCntTick
	s.srtt = srtt
	s.ticks = ticks
}
