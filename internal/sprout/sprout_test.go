package sprout

import (
	"math"
	"testing"
	"time"

	"repro/internal/cc"
	"repro/internal/netsim"
)

func TestConfigValidation(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default invalid: %v", err)
	}
	mutations := []func(*Config){
		func(c *Config) { c.Tick = 0 },
		func(c *Config) { c.HorizonTicks = 0 },
		func(c *Config) { c.Percentile = 0 },
		func(c *Config) { c.Percentile = 100 },
		func(c *Config) { c.MaxRateMbps = 0 },
		func(c *Config) { c.PacketBytes = 0 },
		func(c *Config) { c.Bins = 4 },
		func(c *Config) { c.SigmaMbpsPerSqrtSec = 0 },
		func(c *Config) { c.EscapeProb = 1 },
	}
	for i, mut := range mutations {
		c := DefaultConfig()
		mut(&c)
		if c.Validate() == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestBeliefNormalized(t *testing.T) {
	s := New(DefaultConfig())
	for tick := 0; tick < 100; tick++ {
		for i := 0; i < tick%7; i++ {
			s.OnAck(0, cc.AckSample{})
		}
		s.Tick(0)
		var total float64
		for _, p := range s.belief {
			total += p
		}
		if math.Abs(total-1) > 1e-9 {
			t.Fatalf("belief sums to %v at tick %d", total, tick)
		}
	}
}

// saturatedAcks feeds n acks whose RTTs indicate queueing (so the Poisson
// update is exact, not censored).
func saturatedAcks(s *Sprout, n int) {
	for i := 0; i < n; i++ {
		s.OnAck(0, cc.AckSample{RTT: 60 * time.Millisecond})
	}
}

func TestBeliefTracksArrivalRate(t *testing.T) {
	s := New(DefaultConfig())
	s.OnAck(0, cc.AckSample{RTT: 20 * time.Millisecond}) // establishes rttMin
	s.Tick(0)
	// 10 packets per 20 ms tick of 1400 B = 5.6 Mbps, with queueing RTTs.
	for tick := 0; tick < 200; tick++ {
		saturatedAcks(s, 10)
		s.Tick(0)
	}
	got := s.BeliefMeanMbps()
	if math.Abs(got-5.6) > 2 {
		t.Fatalf("belief mean = %.2f Mbps, want ≈5.6", got)
	}
}

func TestForecastCautious(t *testing.T) {
	s := New(DefaultConfig())
	s.OnAck(0, cc.AckSample{RTT: 20 * time.Millisecond})
	s.Tick(0)
	for tick := 0; tick < 200; tick++ {
		saturatedAcks(s, 10)
		s.Tick(0)
	}
	// 5-tick horizon at ~10 pkt/tick would be 50 if we used the mean; the
	// 5th-percentile forecast must be meaningfully below that.
	if s.Window() >= 50 {
		t.Fatalf("window = %d; forecast not cautious", s.Window())
	}
	if s.Window() < 5 {
		t.Fatalf("window = %d; forecast collapsed", s.Window())
	}
}

func TestWindowNeverBelowOne(t *testing.T) {
	s := New(DefaultConfig())
	for tick := 0; tick < 100; tick++ {
		s.Tick(0) // zero arrivals throughout
	}
	if s.Window() < 1 {
		t.Fatalf("window = %d; must keep probing", s.Window())
	}
}

func TestTimeoutResetsBelief(t *testing.T) {
	s := New(DefaultConfig())
	s.OnAck(0, cc.AckSample{RTT: 20 * time.Millisecond})
	s.Tick(0)
	for tick := 0; tick < 100; tick++ {
		saturatedAcks(s, 20)
		s.Tick(0)
	}
	before := s.BeliefMeanMbps()
	s.OnTimeout(0)
	after := s.BeliefMeanMbps()
	if after >= before {
		t.Fatalf("belief mean %v -> %v; reset should spread it to uniform", before, after)
	}
	if s.Window() != 1 {
		t.Fatalf("window after timeout = %d, want 1", s.Window())
	}
}

func TestRateCapped(t *testing.T) {
	cfg := DefaultConfig()
	s := New(cfg)
	// Hammer with 100 packets per tick (56 Mbps — far above the cap).
	s.OnAck(0, cc.AckSample{RTT: 20 * time.Millisecond})
	s.Tick(0)
	for tick := 0; tick < 300; tick++ {
		saturatedAcks(s, 100)
		s.Tick(0)
	}
	capPktPerTick := cfg.MaxRateMbps * 1e6 / 8 / float64(cfg.PacketBytes) * cfg.Tick.Seconds()
	maxWindow := int(capPktPerTick)*cfg.HorizonTicks + 1
	if s.Window() > maxWindow {
		t.Fatalf("window %d exceeds the 18 Mbps cap (max %d)", s.Window(), maxWindow)
	}
	// The belief mean must saturate near the cap, not beyond it.
	if got := s.BeliefMeanMbps(); got > cfg.MaxRateMbps+1 {
		t.Fatalf("belief mean %.1f Mbps beyond cap", got)
	}
}

func TestSproutOnStableLink(t *testing.T) {
	sim := netsim.NewSim()
	s := New(DefaultConfig())
	d := netsim.NewDumbbell(sim, func(dst netsim.Receiver) netsim.Link {
		return netsim.NewFixedLink(sim, netsim.NewDropTail(1_000_000), 8, 10*time.Millisecond, dst, 1)
	}, 1400, []netsim.FlowSpec{{Ctrl: s, AckDelay: 10 * time.Millisecond}})
	d.Run(30 * time.Second)
	m := d.Metrics[0]
	tput := m.MeanMbps(30 * time.Second)
	if tput < 3 {
		t.Errorf("sprout throughput = %.2f Mbps on 8 Mbps link", tput)
	}
	if p95 := m.Delay.Percentile(95); p95 > 0.2 {
		t.Errorf("sprout p95 delay = %.0f ms; should stay low", p95*1000)
	}
}

// The paper's Fig. 11 mechanism: when capacity jumps far above the cap,
// Sprout cannot use it.
func TestSproutMissesCapacityAboveCap(t *testing.T) {
	sim := netsim.NewSim()
	s := New(DefaultConfig())
	d := netsim.NewDumbbell(sim, func(dst netsim.Receiver) netsim.Link {
		return netsim.NewFixedLink(sim, netsim.NewDropTail(5_000_000), 100, 5*time.Millisecond, dst, 1)
	}, 1400, []netsim.FlowSpec{{Ctrl: s, AckDelay: 5 * time.Millisecond}})
	d.Run(20 * time.Second)
	tput := d.Metrics[0].MeanMbps(20 * time.Second)
	if tput > 20 {
		t.Fatalf("sprout delivered %.1f Mbps; the 18 Mbps cap should bind", tput)
	}
	if tput < 5 {
		t.Fatalf("sprout delivered %.1f Mbps; should at least approach the cap", tput)
	}
}
