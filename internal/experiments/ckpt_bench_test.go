package experiments

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/experiments/runner"
)

// TestMetroCheckpointBench10k measures the checkpoint costs recorded in
// BENCH_pr10.json: snapshot encode+write wall-clock, snapshot size on disk,
// and open+overlay restore wall-clock, all on the DefaultMetroOptions
// 10k-flow Verus trial at a 1 s barrier. Building 10k flows and running a
// second of virtual city time takes real minutes on one core, so the test
// only runs when METRO_CKPT_BENCH is set:
//
//	METRO_CKPT_BENCH=1 go test ./internal/experiments -run MetroCheckpointBench10k -v
func TestMetroCheckpointBench10k(t *testing.T) {
	if os.Getenv("METRO_CKPT_BENCH") == "" {
		t.Skip("set METRO_CKPT_BENCH=1 to run the 10k-flow checkpoint cost benchmark")
	}
	opts := DefaultMetroOptions()
	opts.FlowCounts = []int{10000}
	opts.Parallel = 1
	opts.CheckpointPath = filepath.Join(t.TempDir(), "snap.bin")
	seed := runner.DeriveSeed(opts.Seed, 0)
	barrier := time.Second

	start := time.Now()
	m := metroBuild(opts, metroProtocols()[0], opts.FlowCounts[0], seed)
	buildWall := time.Since(start)

	start = time.Now()
	m.runTo(barrier)
	runWall := time.Since(start)

	start = time.Now()
	size, err := writeMetroCheckpoint(opts, nil, 0, barrier, m)
	writeWall := time.Since(start)
	if err != nil {
		t.Fatalf("checkpoint write: %v", err)
	}
	onDisk, err := os.Stat(opts.CheckpointPath)
	if err != nil {
		t.Fatal(err)
	}

	// Resume cost splits into rebuilding the trial topology from the config
	// echo (same work as a cold start) and overlaying the snapshot.
	start = time.Now()
	r := metroBuild(opts, metroProtocols()[0], opts.FlowCounts[0], seed)
	rebuildWall := time.Since(start)

	ropts := opts
	ropts.ResumeFrom = opts.CheckpointPath
	start = time.Now()
	_, job, gotBarrier, d, _, err := openMetroCheckpoint(&ropts)
	if err != nil {
		t.Fatalf("checkpoint open: %v", err)
	}
	r.Restore(d)
	if err := d.Err(); err != nil {
		t.Fatalf("checkpoint restore: %v", err)
	}
	if err := d.Done(); err != nil {
		t.Fatal(err)
	}
	restoreWall := time.Since(start)
	if job != 0 || gotBarrier != barrier {
		t.Fatalf("checkpoint decoded job %d at %v, want 0 at %v", job, gotBarrier, barrier)
	}

	t.Logf("10k-flow metro trial, barrier %v:", barrier)
	t.Logf("  build            %v", buildWall)
	t.Logf("  run to barrier   %v", runWall)
	t.Logf("  snapshot write   %v (payload %d bytes, %d on disk)", writeWall, size, onDisk.Size())
	t.Logf("  topology rebuild %v", rebuildWall)
	t.Logf("  open+overlay     %v", restoreWall)
}
