package experiments

import (
	"fmt"
	"time"

	"repro/internal/experiments/runner"
	"repro/internal/obs"
	"repro/internal/snap"
	"repro/internal/stats"
)

// Checkpoint/resume for the metro sweep (DESIGN.md §15). A checkpoint file
// is one snap container holding: a config echo (cross-checked on resume — a
// snapshot must only ever be overlaid onto the topology it was taken from),
// the sweep points already completed, the in-flight trial's job index and
// barrier time, and the trial snapshot itself. Resume rebuilds the in-flight
// trial from the echoed configuration's seed, overlays the snapshot, and
// continues the sweep; the result is byte-identical to a run that was never
// interrupted.

// metroJob is one (flow count, protocol) cell of the serial checkpointed
// sweep. Key mirrors the runner.Map job keys exactly, so the derived trial
// seeds — and therefore the rendered points — match the parallel path.
type metroJob struct {
	key   int64
	flows int
	mk    Maker
}

// metroJobs enumerates the sweep in runner submission order.
func metroJobs(opts MetroOptions) []metroJob {
	var jobs []metroJob
	for fi, flows := range opts.FlowCounts {
		for pi, mk := range metroProtocols() {
			jobs = append(jobs, metroJob{key: int64(100*fi + pi), flows: flows, mk: mk})
		}
	}
	return jobs
}

// snapshotMetroPoint writes one completed sweep point.
func snapshotMetroPoint(e *snap.Encoder, p MetroPoint) {
	e.Str(p.Protocol)
	e.Int(p.Flows)
	e.F64(p.AggMbps)
	e.F64s(p.CellJain)
	e.F64s(p.DelayQuantiles)
	e.I64(p.Handovers)
	e.U64(p.CrossMsgs)
	p.Attrib.Snapshot(e)
	e.U32(uint32(len(p.CellAttrib)))
	for i := range p.CellAttrib {
		p.CellAttrib[i].Snapshot(e)
	}
}

// restoreMetroPoint is the inverse of snapshotMetroPoint.
func restoreMetroPoint(d *snap.Decoder) MetroPoint {
	var p MetroPoint
	p.Protocol = d.Str()
	p.Flows = d.Int()
	p.AggMbps = d.F64()
	p.CellJain = d.F64s()
	p.DelayQuantiles = d.F64s()
	p.Handovers = d.I64()
	p.CrossMsgs = d.U64()
	p.Attrib.Restore(d)
	if n := int(d.U32()); d.Err() == nil && n > 0 {
		p.CellAttrib = make([]stats.Attribution, n)
		for i := range p.CellAttrib {
			p.CellAttrib[i].Restore(d)
			if d.Err() != nil {
				break
			}
		}
	}
	return p
}

// writeMetroCheckpoint serializes the sweep state and atomically replaces
// the checkpoint file. It returns the payload size for the observability
// hooks.
func writeMetroCheckpoint(opts MetroOptions, done []MetroPoint, job int, barrier time.Duration, m *metroSim) (int, error) {
	e := snap.NewEncoder()
	e.Tag("metro")
	e.Int(opts.Sectors)
	fc := make([]int64, len(opts.FlowCounts))
	for i, n := range opts.FlowCounts {
		fc[i] = int64(n)
	}
	e.I64s(fc)
	e.Dur(opts.Duration)
	e.Int(opts.Shards)
	e.Int(int(opts.Tech))
	e.F64(opts.HandoverScale)
	e.F64(opts.ChurnFrac)
	e.I64(opts.Seed)
	e.U32(uint32(len(done)))
	for _, p := range done {
		snapshotMetroPoint(e, p)
	}
	e.Int(job)
	e.Dur(barrier)
	m.Snapshot(e)
	if err := e.Err(); err != nil {
		return 0, err
	}
	return e.Len(), snap.WriteFile(opts.CheckpointPath, e, snap.Version)
}

// openMetroCheckpoint validates the container, cross-checks the config echo
// against opts, and decodes everything up to (but not including) the trial
// snapshot, leaving the decoder positioned for metroSim.Restore. Any
// mismatch fails closed before a single component is touched.
//
// The snapshot fixes the topology: the echoed Shards and ChurnFrac are
// adopted into *opts rather than cross-checked, so a resume never has to
// restate them (the CLI rejects -shards/-churn alongside -resume for the
// same reason). Everything else — sectors, flow counts, duration, tech,
// handover scale, seed — is identity-critical and must match exactly.
func openMetroCheckpoint(opts *MetroOptions) (done []MetroPoint, job int, barrier time.Duration, d *snap.Decoder, size int, err error) {
	d, err = snap.ReadFile(opts.ResumeFrom, snap.Version)
	if err != nil {
		return nil, 0, 0, nil, 0, err
	}
	size = d.Remaining()
	d.Expect("metro")
	sectors := d.Int()
	fc := d.I64s()
	dur := d.Dur()
	shards := d.Int()
	tech := d.Int()
	hs := d.F64()
	churn := d.F64()
	seed := d.I64()
	if err := d.Err(); err != nil {
		return nil, 0, 0, nil, 0, err
	}
	same := sectors == opts.Sectors && dur == opts.Duration &&
		tech == int(opts.Tech) && hs == opts.HandoverScale &&
		seed == opts.Seed && len(fc) == len(opts.FlowCounts)
	if same {
		for i, n := range fc {
			if int(n) != opts.FlowCounts[i] {
				same = false
				break
			}
		}
	}
	if !same {
		return nil, 0, 0, nil, 0, fmt.Errorf(
			"experiments: checkpoint %s was taken under a different metro configuration (snapshot: %d sectors, flows %v, %v, %d shards, tech %d, handover %v, churn %v, seed %d)",
			opts.ResumeFrom, sectors, fc, dur, shards, tech, hs, churn, seed)
	}
	opts.Shards = shards
	opts.ChurnFrac = churn
	n := int(d.U32())
	for i := 0; i < n; i++ {
		done = append(done, restoreMetroPoint(d))
	}
	job = d.Int()
	barrier = d.Dur()
	if err := d.Err(); err != nil {
		return nil, 0, 0, nil, 0, err
	}
	if job < 0 || len(done) != job {
		return nil, 0, 0, nil, 0, fmt.Errorf("experiments: checkpoint has %d completed points but claims job index %d", len(done), job)
	}
	if barrier <= 0 || barrier >= opts.Duration {
		return nil, 0, 0, nil, 0, fmt.Errorf("experiments: checkpoint barrier %v outside (0, %v)", barrier, opts.Duration)
	}
	return done, job, barrier, d, size, nil
}

// metroCheckpointed runs the sweep serially, restoring from ResumeFrom when
// set and writing a snapshot at every CheckpointEvery barrier. Trial seeds
// go through runner.DeriveSeed with the runner.Map job keys, so the rendered
// result is byte-identical to the parallel uncheckpointed sweep.
func metroCheckpointed(opts MetroOptions) (MetroResult, error) {
	out := MetroResult{Sectors: opts.Sectors, Duration: opts.Duration, Tech: opts.Tech}
	jobs := metroJobs(opts)
	start := 0
	ordinal := 0
	var cur *metroSim
	var curAt time.Duration
	if opts.ResumeFrom != "" {
		done, job, barrier, d, size, err := openMetroCheckpoint(&opts)
		if err != nil {
			return MetroResult{}, err
		}
		if job >= len(jobs) {
			return MetroResult{}, fmt.Errorf("experiments: checkpoint job index %d outside a sweep of %d trials", job, len(jobs))
		}
		m := metroBuild(opts, jobs[job].mk, jobs[job].flows, runner.DeriveSeed(opts.Seed, jobs[job].key))
		m.Restore(d)
		if err := d.Err(); err != nil {
			return MetroResult{}, err
		}
		if err := d.Done(); err != nil {
			return MetroResult{}, err
		}
		out.Points = append(out.Points, done...)
		start, cur, curAt = job, m, barrier
		opts.Obs.Emit(obs.Event{At: barrier, Kind: obs.KindCheckpointRestore, Flow: -1, Run: m.seed,
			V0: float64(size), V1: barrier.Seconds()})
		if opts.Obs != nil {
			opts.Obs.Counter("ckpt_restores_total").Inc()
			opts.Obs.Gauge("ckpt_barrier_seconds").Set(barrier.Seconds())
		}
	}
	for j := start; j < len(jobs); j++ {
		m, at := cur, curAt
		cur, curAt = nil, 0
		if m == nil {
			m = metroBuild(opts, jobs[j].mk, jobs[j].flows, runner.DeriveSeed(opts.Seed, jobs[j].key))
		}
		if opts.CheckpointEvery > 0 {
			for next := at + opts.CheckpointEvery; next < opts.Duration; next += opts.CheckpointEvery {
				m.runTo(next)
				ordinal++
				size, err := writeMetroCheckpoint(opts, out.Points, j, next, m)
				if err != nil {
					return MetroResult{}, err
				}
				opts.Obs.Emit(obs.Event{At: next, Kind: obs.KindCheckpointWrite, Flow: -1, Run: m.seed,
					V0: float64(size), V1: float64(ordinal), V2: next.Seconds()})
				if opts.Obs != nil {
					opts.Obs.Counter("ckpt_writes_total").Inc()
					opts.Obs.Gauge("ckpt_snapshot_bytes").Set(float64(size))
					opts.Obs.Gauge("ckpt_barrier_seconds").Set(next.Seconds())
				}
				if opts.CheckpointHook != nil {
					opts.CheckpointHook(ordinal, opts.CheckpointPath)
				}
			}
		}
		m.runTo(opts.Duration)
		out.Points = append(out.Points, m.collect())
	}
	return out, nil
}
