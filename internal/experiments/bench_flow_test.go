package experiments

import (
	"testing"
	"time"
)

// BenchmarkSingleFlowEpochRate is the end-to-end hot-path benchmark: one
// Verus flow over a 20 Mbps fixed-rate dumbbell for 30 simulated seconds —
// 6000 epoch ticks, each paying a delay-profile lookup, plus the full
// per-packet event-loop traffic. The metric is simulated epochs per
// wall-clock second; it is the single number the spline/profile/netsim
// optimizations exist to move.
func BenchmarkSingleFlowEpochRate(b *testing.B) {
	const simDur = 30 * time.Second
	epochs := float64(simDur / (5 * time.Millisecond))
	b.ResetTimer()
	start := time.Now()
	for i := 0; i < b.N; i++ {
		FixedRun{
			RateMbps: 20,
			Maker:    VerusMaker(2),
			Flows:    1,
			Duration: simDur,
			Seed:     42,
		}.Run()
	}
	elapsed := time.Since(start).Seconds()
	b.ReportMetric(epochs*float64(b.N)/elapsed, "epochs/s")
}
