package experiments

import (
	"strings"
	"testing"
	"time"
)

// These tests run scaled-down versions of each harness and assert the
// paper's qualitative claims — the "shape" targets of DESIGN.md §3. They are
// the regression net for the reproduction itself.

func TestFigure1BurstsVisible(t *testing.T) {
	r := Figure1(1)
	if len(r.Times) < 50 {
		t.Fatalf("too few packets in window: %d", len(r.Times))
	}
	if r.Bursts < 10 {
		t.Fatalf("bursts = %d; channel not bursty", r.Bursts)
	}
	// Delays must be moderate (no bufferbloat in this setup).
	for _, d := range r.Delays {
		if d > 300*time.Millisecond {
			t.Fatalf("delay %v too high for the Fig. 1 regime", d)
		}
	}
	if !strings.Contains(r.Render(), "Figure 1") {
		t.Error("render missing title")
	}
}

func TestFigure2LTESmallerBursts(t *testing.T) {
	r := Figure2(45*time.Second, 2, 0)
	if len(r.Labels) != 4 {
		t.Fatalf("labels = %v", r.Labels)
	}
	// 3G rows are 0,1; LTE rows are 2,3.
	mean3g := (r.MeanBurstBytes[0] + r.MeanBurstBytes[1]) / 2
	meanLTE := (r.MeanBurstBytes[2] + r.MeanBurstBytes[3]) / 2
	if meanLTE >= mean3g {
		t.Errorf("LTE bursts (%.0f B) should be smaller than 3G (%.0f B)", meanLTE, mean3g)
	}
	gap3g := (r.MeanGapMs[0] + r.MeanGapMs[1]) / 2
	gapLTE := (r.MeanGapMs[2] + r.MeanGapMs[3]) / 2
	if gapLTE >= gap3g {
		t.Errorf("LTE bursts (%.2f ms apart) should be more frequent than 3G (%.2f ms)", gapLTE, gap3g)
	}
}

func TestFigure3CompetitionRaisesDelay(t *testing.T) {
	r := Figure3(3, 0, nil)
	for i := range r.Rates {
		if r.DelayOnMs[i] <= r.DelayOffMs[i] {
			t.Errorf("rate %g: ON delay %.1f <= OFF delay %.1f", r.Rates[i], r.DelayOnMs[i], r.DelayOffMs[i])
		}
	}
	// The effect must grow as user 1's own rate approaches saturation:
	// 10 Mbps user must suffer more than the 1 Mbps user when user 2 is ON.
	if r.DelayOnMs[2] <= r.DelayOnMs[0] {
		t.Errorf("saturation effect missing: ON delays %v", r.DelayOnMs)
	}
}

func TestFigure4ShorterWindowsMoreVariable(t *testing.T) {
	r := Figure4(4)
	if len(r.Window100) == 0 || len(r.Window20) == 0 {
		t.Fatal("empty series")
	}
	if r.CV20 <= r.CV100 {
		t.Errorf("20 ms CV (%.2f) should exceed 100 ms CV (%.2f)", r.CV20, r.CV100)
	}
}

func TestPredictorStudyChannelResistsPrediction(t *testing.T) {
	r := PredictorStudy(5)
	if len(r.Results) != 3 {
		t.Fatalf("results = %d", len(r.Results))
	}
	for _, res := range r.Results {
		if res.NRMSE < 0.6 {
			t.Errorf("%s: NRMSE %.2f — channel too predictable for §3's claim", res.Name, res.NRMSE)
		}
	}
}

func TestFigure5ProfileShape(t *testing.T) {
	r := Figure5(6)
	if len(r.Windows) < 10 || len(r.Curve) < 10 {
		t.Fatalf("profile too small: %d points, curve %d", len(r.Windows), len(r.Curve))
	}
	// The profile must generally rise: delay at the top quarter of windows
	// above delay at the bottom quarter.
	q := len(r.Curve) / 4
	if q > 0 && r.Curve[len(r.Curve)-1-q/2] <= r.Curve[q/2] {
		t.Errorf("profile not increasing: head %.1f ms, tail %.1f ms",
			r.Curve[q/2]*1000, r.Curve[len(r.Curve)-1-q/2]*1000)
	}
}

func TestFigure7ProfileEvolves(t *testing.T) {
	r := Figure7(60*time.Second, 7)
	if len(r.Curves) < 5 {
		t.Fatalf("snapshots = %d", len(r.Curves))
	}
	// The curve must actually change over time (the Fig. 15 mechanism).
	changed := false
	for i := 1; i < len(r.Steepness); i++ {
		if r.Steepness[i] != r.Steepness[0] {
			changed = true
		}
	}
	if !changed {
		t.Error("profile never evolved")
	}
}

func TestFigure8HeadlineShape(t *testing.T) {
	opts := QuickMacroOptions()
	opts.Duration = 40 * time.Second
	// The paper's claim is about rates "averaged across flows and
	// repetitions"; a single repetition is one trace draw and too noisy for
	// the cross-protocol assertions below, so use the paper's rep count.
	opts.Reps = 5
	r := Figure8(opts)
	if len(r.Tech) != 2 {
		t.Fatalf("techs = %v", r.Tech)
	}
	for ti, tech := range r.Tech {
		byName := map[string]ProtocolPoint{}
		for _, p := range r.Points[ti] {
			byName[p.Protocol] = p
		}
		cubic := byName["TCP Cubic"]
		verus := byName["Verus (R=6)"]
		sprout := byName["Sprout"]
		// The headline: order-of-magnitude delay reduction vs Cubic at
		// comparable throughput (allow 4x at this reduced scale).
		if verus.DelaySec*4 > cubic.DelaySec {
			t.Errorf("%s: Verus delay %.0f ms not ≪ Cubic %.0f ms",
				tech, verus.DelaySec*1000, cubic.DelaySec*1000)
		}
		if verus.Mbps < 0.5*cubic.Mbps {
			t.Errorf("%s: Verus tput %.2f not comparable to Cubic %.2f",
				tech, verus.Mbps, cubic.Mbps)
		}
		if sprout.Mbps > verus.Mbps*1.2 {
			t.Errorf("%s: Sprout tput %.2f should not exceed Verus %.2f",
				tech, sprout.Mbps, verus.Mbps)
		}
	}
}

func TestFigure9RTradeoff(t *testing.T) {
	opts := QuickMacroOptions()
	opts.Duration = 40 * time.Second
	r := Figure9(opts)
	for ti, tech := range r.Tech {
		pts := r.Points[ti]
		// R=6 must trade higher delay than R=2; throughput should not
		// collapse with higher R.
		if pts[2].DelaySec <= pts[0].DelaySec {
			t.Errorf("%s: R=6 delay %.0f ms <= R=2 delay %.0f ms",
				tech, pts[2].DelaySec*1000, pts[0].DelaySec*1000)
		}
	}
}

func TestFigure10VerusLowDelayUnderContention(t *testing.T) {
	opts := QuickMacroOptions()
	opts.Duration = 30 * time.Second
	r := Figure10(opts)
	for si, sc := range r.Scenarios {
		byName := map[string]ProtocolPoint{}
		for _, p := range r.Summary[si] {
			byName[p.Protocol] = p
		}
		cubic := byName["TCP Cubic"]
		verus := byName["Verus (R=2)"]
		if verus.DelaySec >= cubic.DelaySec {
			t.Errorf("%s: Verus delay %.0f ms >= Cubic %.0f ms",
				sc, verus.DelaySec*1000, cubic.DelaySec*1000)
		}
	}
}

func TestTable1FairnessBounds(t *testing.T) {
	opts := QuickMacroOptions()
	opts.Duration = 30 * time.Second
	opts.Reps = 2 // two scenarios
	r := Table1(opts)
	if len(r.Users) != 5 || len(r.Protocols) != 3 {
		t.Fatalf("shape: %v users, %v protocols", r.Users, r.Protocols)
	}
	for ui := range r.Users {
		for pi := range r.Protocols {
			v := r.Index[ui][pi]
			if v < 0 || v > 1 {
				t.Errorf("index out of range: %v", v)
			}
		}
	}
	// At 20 users, Verus must stay reasonably fair (paper: 78.6%).
	verusAt20 := r.Index[4][2]
	if verusAt20 < 0.5 {
		t.Errorf("Verus fairness at 20 users = %.2f, want reasonable", verusAt20)
	}
}

func TestFigure11VerusBeatsSproutWhenRapid(t *testing.T) {
	opts := QuickMicroOptions()
	opts.Duration = 90 * time.Second
	r := Figure11(opts, true) // Scenario II
	verus, sprout := r.MeanMbps[0], r.MeanMbps[1]
	if verus <= sprout {
		t.Errorf("Scenario II: Verus %.2f Mbps should exceed Sprout %.2f", verus, sprout)
	}
}

func TestFigure11ScenarioICapBindsSprout(t *testing.T) {
	opts := QuickMicroOptions()
	opts.Duration = 120 * time.Second
	r := Figure11(opts, false)
	byName := map[string]float64{}
	for i, p := range r.Protocols {
		byName[p] = r.MeanMbps[i]
	}
	if byName["Sprout"] > 19 {
		t.Errorf("Sprout %.1f Mbps exceeds its 18 Mbps cap", byName["Sprout"])
	}
	if byName["Verus (R=2)"] < byName["Sprout"]*0.95 {
		t.Errorf("Verus (%.1f) should at least match capped Sprout (%.1f)",
			byName["Verus (R=2)"], byName["Sprout"])
	}
}

func TestFigure12SharesConverge(t *testing.T) {
	opts := QuickMicroOptions()
	r := Figure12(opts)
	if r.FirstFlowAloneMbps < 40 {
		t.Errorf("lone flow only %.1f Mbps of 90", r.FirstFlowAloneMbps)
	}
	// Known deviation from the paper (see EXPERIMENTS.md): convergence of
	// newly arriving flows is slower than published; assert no collapse.
	if r.JainAllActive < 0.25 {
		t.Errorf("Jain with all active = %.3f", r.JainAllActive)
	}
}

func TestFigure13RTTIndependenceApprox(t *testing.T) {
	opts := QuickMicroOptions()
	opts.Duration = 120 * time.Second
	r := Figure13(opts)
	// Known deviation from the paper (see EXPERIMENTS.md): our reproduction
	// does not achieve the published RTT-independence; assert only that the
	// link is used and every flow stays alive.
	var total float64
	for i, m := range r.MeanMbps {
		total += m
		if m < 0.5 {
			t.Errorf("flow with RTT %v starved: %.1f Mbps", r.RTTs[i], m)
		}
	}
	if total < 25 {
		t.Errorf("aggregate %.1f Mbps of 60; link badly underused", total)
	}
}

func TestFigure14NoStarvation(t *testing.T) {
	opts := QuickMicroOptions()
	opts.Duration = 280 * time.Second // give the rolling D_min time to adapt
	r := Figure14(opts)
	// Known deviation from the paper (see EXPERIMENTS.md): against deep
	// Cubic-filled buffers our Verus keeps far less than the published
	// equal share. Assert the link is not wasted and Verus is not fully
	// dead once its delay floor has adapted.
	var total float64
	for _, v := range r.VerusMbps {
		total += v
	}
	for _, c := range r.CubicMbps {
		total += c
	}
	if total < 30 {
		t.Errorf("aggregate %.1f Mbps of 60", total)
	}
}

func TestFigure15UpdatingBeatsStatic(t *testing.T) {
	opts := QuickMicroOptions()
	opts.Duration = 60 * time.Second
	r := Figure15(opts)
	var updWins int
	for i := range r.Scenarios {
		// "Better" = higher throughput or lower delay.
		if r.UpdatingMbps[i] >= r.StaticMbps[i] || r.UpdatingDelay[i] <= r.StaticDelay[i] {
			updWins++
		}
	}
	if updWins < 3 {
		t.Errorf("updating profile wins only %d/%d scenarios", updWins, len(r.Scenarios))
	}
}

func TestSensitivityRowsComplete(t *testing.T) {
	r := Sensitivity(20*time.Second, 9, 0, nil)
	if len(r.Rows) != 14 {
		t.Fatalf("rows = %d, want 14", len(r.Rows))
	}
	for _, row := range r.Rows {
		if row.Mbps <= 0 {
			t.Errorf("%s=%s produced no throughput", row.Param, row.Value)
		}
	}
	if !strings.Contains(r.Render(), "epsilon") {
		t.Error("render missing parameter rows")
	}
}

func TestRendersNonEmpty(t *testing.T) {
	// Smoke-check every Render path not covered above.
	opts := QuickMacroOptions()
	opts.Duration = 15 * time.Second
	for _, s := range []string{
		Figure8(opts).Render(),
		Figure9(opts).Render(),
	} {
		if len(s) < 40 {
			t.Errorf("render too short: %q", s)
		}
	}
}
