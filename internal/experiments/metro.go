package experiments

import (
	"fmt"
	"time"

	"repro/internal/cellular"
	"repro/internal/experiments/runner"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/snap"
	"repro/internal/stats"
)

// The Metro harness is the ISSUE 6 city-scale experiment: N cell sectors on
// a sharded netsim.Mesh, M concurrent flows spread across them, swept over
// flow counts in the thousands for each contender protocol. Each sector is
// an independent trace-driven cell (its own cellular fading, queue, and
// TraceLink); users hand over between sectors on the schedules their §5.3
// mobility scenario generates, and a handed-over user's traffic detours over
// the inter-sector mesh (two backhaul hops) until it returns home. The
// rendered figures are per-cell Jain fairness and the aggregate one-way
// delay CDF — the at-scale CC evaluation matrix ZEUS argues for.
//
// Determinism is executor-independent twice over: trials run through
// runner.Map (serial ≡ parallel-N), and each trial's mesh renders
// byte-identically whether it executes on the single-heap reference or
// sharded across any worker count (the netsim equivalence contract).

// MetroOptions scales the metro sweep.
type MetroOptions struct {
	// Sectors is the cell count (mesh cells). Default 8.
	Sectors int
	// FlowCounts are the sweep points: total concurrent flows spread
	// round-robin across sectors. Default {1000, 4000, 10000}.
	FlowCounts []int
	// Duration per trial.
	Duration time.Duration
	// Shards selects the mesh executor inside each trial: 0 runs the
	// single-heap reference, k > 0 runs the conservative sharded executor
	// with k workers. Rendered output is byte-identical at every setting.
	Shards int
	// Tech picks the radio profile for every sector.
	Tech cellular.Tech
	// HandoverScale compresses the scenarios' handover cadence (see
	// cellular.MetroConfig); zero keeps the natural spacing.
	HandoverScale float64
	// ChurnFrac is the fraction of users that arrive mid-run and/or depart
	// early (see cellular.MetroConfig.ChurnFrac). Zero disables churn and
	// leaves pre-churn topologies byte-identical.
	ChurnFrac float64
	Seed      int64
	// Parallel is the trial worker count (0 = GOMAXPROCS, 1 = serial).
	Parallel int
	// Obs, when non-nil, instruments every sector link and the mesh itself.
	Obs *obs.Observer

	// CheckpointEvery, when positive, runs the sweep serially (Parallel is
	// ignored) and writes a versioned snapshot of the in-flight trial to
	// CheckpointPath at every CheckpointEvery of virtual time — each write
	// lands at a mesh lookahead barrier, where the executors are quiescent.
	// Requires CheckpointPath. The segmented runs render byte-identically to
	// an uncheckpointed sweep (the PR 6 segmentation property).
	CheckpointEvery time.Duration
	// CheckpointPath is the snapshot file; each write atomically replaces it.
	CheckpointPath string
	// ResumeFrom, when set, restores the sweep from a snapshot file and runs
	// it to completion. The other options must match the checkpointed
	// configuration exactly — the file carries a config echo that is
	// cross-checked on open, and any mismatch (or a truncated, corrupted, or
	// wrong-version file) fails closed before any state is touched.
	ResumeFrom string
	// CheckpointHook, when non-nil, runs after each successful checkpoint
	// write. It exists for crash injection: the SIGKILL harness kills the
	// process from inside the hook and then resumes from the file.
	CheckpointHook func(ordinal int, path string)
}

// pool returns the trial executor for these options.
func (o MetroOptions) pool() *runner.Pool { return runner.New(o.Parallel) }

// DefaultMetroOptions is the full city-scale sweep (tens of minutes of wall
// time at the 100k point), with a third of the users churning mid-run.
func DefaultMetroOptions() MetroOptions {
	return MetroOptions{
		Sectors:    8,
		FlowCounts: []int{10000, 40000, 100000},
		Duration:   30 * time.Second,
		Shards:     8,
		Tech:       cellular.TechLTE,
		ChurnFrac:  0.3,
		Seed:       42,
	}
}

// QuickMetroOptions is the reduced scale used by tests and -quick runs.
func QuickMetroOptions() MetroOptions {
	return MetroOptions{
		Sectors:    4,
		FlowCounts: []int{64},
		Duration:   6 * time.Second,
		Shards:     4,
		Tech:       cellular.TechLTE,
		// Natural handover cadence is 12-90 s; compress it so 6 s trials
		// still see inter-cell mobility and cross-shard detours.
		HandoverScale: 0.05,
		Seed:          42,
	}
}

// metroProtocols are the at-scale contenders.
func metroProtocols() []Maker {
	return []Maker{VerusMaker(6), CubicMaker(), SproutMaker()}
}

// metroSectorMbps is the per-sector aggregate capacity, matching the Fig. 8
// cell provisioning.
func metroSectorMbps(tech cellular.Tech) float64 {
	if tech == cellular.TechLTE {
		return 40
	}
	return 16
}

// metroUserState is the home-cell routing state for one user. Every field is
// read and written only from the user's home-cell timeline, so sharded
// execution needs no synchronization.
type metroUserState struct {
	home       int
	cur        int
	stallUntil time.Duration
	sink       netsim.Receiver
}

// MetroPoint is one (flow count, protocol) cell of the sweep.
type MetroPoint struct {
	Protocol string
	Flows    int
	// AggMbps is total delivered throughput across every flow.
	AggMbps float64
	// CellJain[s] is Jain's index over the mean rates of the flows homed in
	// sector s.
	CellJain []float64
	// DelayQuantiles are the aggregate one-way delay CDF points (seconds)
	// at metroCDFQuantiles.
	DelayQuantiles []float64
	// Handovers counts executed inter-cell handovers; CrossMsgs counts mesh
	// messages (detour hops) the trial generated.
	Handovers int64
	CrossMsgs uint64
	// Attrib is the trial-wide one-way delay decomposition, merged across
	// sectors; CellAttrib[s] is sector s's own aggregate. Render ignores
	// both — they feed RenderAttribution, a separate golden figure.
	Attrib     stats.Attribution
	CellAttrib []stats.Attribution
}

// metroCDFQuantiles are the percentiles the delay-CDF figure reports.
var metroCDFQuantiles = []float64{5, 25, 50, 75, 90, 95, 99}

// MetroResult is the rendered sweep.
type MetroResult struct {
	Sectors  int
	Duration time.Duration
	Tech     cellular.Tech
	Points   []MetroPoint
}

// Metro runs the sweep: one trial per (flow count, protocol) on the options'
// worker pool.
func Metro(opts MetroOptions) (MetroResult, error) {
	if opts.Sectors <= 0 {
		opts.Sectors = 8
	}
	if len(opts.FlowCounts) == 0 {
		opts.FlowCounts = []int{1000, 4000, 10000}
	}
	if opts.Duration <= 0 {
		opts.Duration = 30 * time.Second
	}
	for _, n := range opts.FlowCounts {
		if n <= 0 {
			return MetroResult{}, fmt.Errorf("experiments: metro flow count %d must be positive", n)
		}
	}
	if opts.ChurnFrac < 0 || opts.ChurnFrac > 1 {
		return MetroResult{}, fmt.Errorf("experiments: metro churn fraction %v outside [0, 1]", opts.ChurnFrac)
	}
	if opts.CheckpointEvery < 0 {
		return MetroResult{}, fmt.Errorf("experiments: metro checkpoint interval %v must not be negative", opts.CheckpointEvery)
	}
	if opts.CheckpointEvery > 0 && opts.CheckpointPath == "" {
		return MetroResult{}, fmt.Errorf("experiments: metro CheckpointEvery set without a CheckpointPath")
	}
	if opts.CheckpointPath != "" && opts.CheckpointEvery <= 0 {
		return MetroResult{}, fmt.Errorf("experiments: metro CheckpointPath set without a CheckpointEvery interval")
	}
	if opts.CheckpointPath != "" || opts.ResumeFrom != "" {
		return metroCheckpointed(opts)
	}
	out := MetroResult{Sectors: opts.Sectors, Duration: opts.Duration, Tech: opts.Tech}
	protos := metroProtocols()
	var jobs []runner.Job[MetroPoint]
	for fi, flows := range opts.FlowCounts {
		for pi, mk := range protos {
			flows, mk := flows, mk
			jobs = append(jobs, runner.Job[MetroPoint]{
				Key: int64(100*fi + pi),
				Run: func(seed int64) MetroPoint {
					return metroTrial(opts, mk, flows, seed)
				},
			})
		}
	}
	points := runner.Map(opts.pool(), opts.Seed, jobs)
	out.Points = append(out.Points, points...)
	return out, nil
}

// The routing fabric is three persistent receivers per sector — home
// delivery, link egress, and the detour bounce — so packets cross the mesh
// without boxing per-packet closures (the pooled zero-alloc path). They are
// pointer types, not ReceiverFunc closures, because checkpointing requires
// comparable receivers: a pending delivery serializes as the receiver's
// registry id (DESIGN.md §15).

// metroHomeRecv hands a packet to its flow's sink on the home timeline,
// honoring any active handover stall by deferring to the release instant
// (the stall-then-burst delivery signature).
type metroHomeRecv struct {
	sim    *netsim.Sim
	states []*metroUserState
}

// Receive implements netsim.Receiver.
func (r *metroHomeRecv) Receive(p *netsim.Packet) {
	st := r.states[p.Flow]
	if now := r.sim.Now(); now < st.stallUntil {
		// The handover stall defers delivery; the wait is fault hold time,
		// closed by the sink at the release instant.
		p.MarkDelay(now, stats.DelayFaultHold)
		r.sim.SchedulePacketAfter(st.stallUntil-now, st.sink, p)
		return
	}
	st.sink.Receive(p)
}

// metroBounce runs on the serving sector's timeline and sends the packet
// back to its home cell; home is immutable per flow, so reading it from
// another cell's timeline is safe under sharding.
type metroBounce struct {
	s      int
	mesh   *netsim.Mesh
	delay  time.Duration
	states []*metroUserState
	home   []*metroHomeRecv
}

// Receive implements netsim.Receiver.
func (b *metroBounce) Receive(p *netsim.Packet) {
	st := b.states[p.Flow]
	b.mesh.SendPacket(b.s, st.home, b.delay, b.home[st.home], p)
}

// metroLinkRecv is the sector link's egress: home-cell delivery for users
// still served here, or the detour for handed-over users — one backhaul hop
// to the serving sector and one back, both riding the mesh's lookahead
// channels, which is what makes handovers cross-shard traffic.
type metroLinkRecv struct {
	s      int
	sim    *netsim.Sim
	mesh   *netsim.Mesh
	delay  time.Duration
	states []*metroUserState
	home   []*metroHomeRecv
	bounce []*metroBounce
}

// Receive implements netsim.Receiver.
func (r *metroLinkRecv) Receive(p *netsim.Packet) {
	st := r.states[p.Flow]
	if st.cur == r.s {
		r.home[r.s].Receive(p)
		return
	}
	// Both backhaul hops (out to the serving sector and back home) charge to
	// the detour component; the bounce continues the same open interval.
	p.MarkDelay(r.sim.Now(), stats.DelayDetour)
	r.mesh.SendPacket(r.s, st.cur, r.delay, r.bounce[st.cur], p)
}

// metroSim is one fully built metro trial: the mesh, the per-sector
// bottlenecks, and the per-user flow state. Splitting construction from
// execution is what checkpointing needs — a restore re-runs metroBuild (same
// options, same seed) and then overlays the snapshot.
type metroSim struct {
	opts            MetroOptions
	mk              Maker
	flows           int
	seed            int64
	topo            *cellular.Metro
	mesh            *netsim.Mesh
	states          []*metroUserState
	metrics         []*netsim.FlowMetrics
	sources         []*netsim.Source
	handoversByCell []int64
	links           []*netsim.TraceLink
	// attrib[s] aggregates delay attribution for the flows homed in sector
	// s. Sinks run on the home-cell timeline, so each aggregate is touched
	// by exactly one shard — race-free without synchronization, like
	// handoversByCell.
	attrib []*stats.Attribution
}

// metroBuild constructs one full metro simulation: the cellular topology,
// the mesh, per-sector bottlenecks, per-user flows and handover routing.
// Construction is a pure function of (opts, mk, flows, seed); the rebuild
// half of a restore depends on that.
func metroBuild(opts MetroOptions, mk Maker, flows int, seed int64) *metroSim {
	topo, err := cellular.NewMetro(cellular.MetroConfig{
		Sectors:       opts.Sectors,
		Users:         flows,
		Tech:          opts.Tech,
		Operator:      cellular.OperatorB,
		MeanMbps:      metroSectorMbps(opts.Tech),
		Horizon:       opts.Duration,
		HandoverScale: opts.HandoverScale,
		ChurnFrac:     opts.ChurnFrac,
		Seed:          seed,
	})
	if err != nil {
		panic(err) // options were validated; a failure here is a harness bug
	}
	mesh := netsim.NewMesh(opts.Sectors, topo.NeighborDelay)
	mesh.Instrument(opts.Obs, seed)

	m := &metroSim{
		opts:    opts,
		mk:      mk,
		flows:   flows,
		seed:    seed,
		topo:    topo,
		mesh:    mesh,
		states:  make([]*metroUserState, flows),
		metrics: make([]*netsim.FlowMetrics, flows),
		sources: make([]*netsim.Source, flows),
		// Handover counts are kept per home cell — each slot is written only
		// from that cell's timeline, so sharded execution stays race-free —
		// and summed after the run.
		handoversByCell: make([]int64, opts.Sectors),
		links:           make([]*netsim.TraceLink, opts.Sectors),
		attrib:          make([]*stats.Attribution, opts.Sectors),
	}
	for s := 0; s < opts.Sectors; s++ {
		m.attrib[s] = new(stats.Attribution)
	}
	home := make([]*metroHomeRecv, opts.Sectors)
	bounce := make([]*metroBounce, opts.Sectors)
	for s := 0; s < opts.Sectors; s++ {
		home[s] = &metroHomeRecv{sim: mesh.Cell(s), states: m.states}
		mesh.Cell(s).RegisterReceiver(home[s])
	}
	for s := 0; s < opts.Sectors; s++ {
		bounce[s] = &metroBounce{s: s, mesh: mesh, delay: topo.NeighborDelay,
			states: m.states, home: home}
		mesh.Cell(s).RegisterReceiver(bounce[s])
	}
	for s := 0; s < opts.Sectors; s++ {
		sim := mesh.Cell(s)
		recv := &metroLinkRecv{s: s, sim: sim, mesh: mesh, delay: topo.NeighborDelay,
			states: m.states, home: home, bounce: bounce}
		sim.RegisterReceiver(recv)
		model := cellular.NewModel(topo.Sectors[s].Channel)
		tr := model.Trace(opts.Duration)
		m.links[s] = netsim.NewTraceLink(sim, netsim.NewDropTail(bloatBytes), tr,
			10*time.Millisecond, recv, true, topo.Sectors[s].Channel.Seed+1)
		m.links[s].Instrument(opts.Obs, seed)
	}
	for _, users := range topo.UsersBySector() {
		for _, ui := range users {
			u := topo.Users[ui]
			sim := mesh.Cell(u.Home)
			st := &metroUserState{home: u.Home, cur: u.Home}
			m.states[u.ID] = st
			ctrl := mk.New()
			observe(opts.Obs, ctrl, seed, u.ID)
			// Stagger starts so thousands of flows do not slow-start in
			// lockstep; the phase is a pure function of the user id. Churning
			// users shift their whole session window by the same stagger, so
			// session lengths survive and a zero Stop still means "runs to
			// the end" (claiming no extra event keys for non-churners).
			stagger := time.Duration(u.ID%64) * 25 * time.Millisecond
			start := stagger + u.Start
			stop := u.Stop
			if stop > 0 {
				stop += stagger
			}
			src, fm := netsim.NewSource(sim, u.ID, ctrl, m.links[u.Home], MTU,
				10*time.Millisecond, start, stop)
			src.SetAttribution(m.attrib[u.Home])
			src.Instrument(opts.Obs, seed)
			st.sink = src.Sink()
			m.sources[u.ID] = src
			m.metrics[u.ID] = fm
			for _, h := range u.Handovers {
				h := h
				home := u.Home
				sim.ScheduleTracked(h.At, func() {
					st.cur = h.To
					st.stallUntil = h.At + h.Stall
					m.handoversByCell[home]++
				})
			}
		}
	}
	return m
}

// runTo advances the trial to the given virtual time on the options'
// executor. Segmented calls are equivalent to one straight run, and each
// return lands at a quiescent mesh barrier — the only place a snapshot is
// valid.
func (m *metroSim) runTo(until time.Duration) {
	if m.opts.Shards > 0 {
		m.mesh.RunSharded(until, m.opts.Shards)
	} else {
		m.mesh.RunSingle(until)
	}
}

// collect renders the finished trial into its sweep point.
func (m *metroSim) collect() MetroPoint {
	var handovers int64
	for _, n := range m.handoversByCell {
		handovers += n
	}
	pt := MetroPoint{Protocol: m.mk.Name, Flows: m.flows, Handovers: handovers, CrossMsgs: m.mesh.CrossDelivered()}
	delay := stats.NewSummary(4096)
	perCell := make([][]float64, m.opts.Sectors)
	for _, u := range m.topo.Users {
		fm := m.metrics[u.ID]
		mbps := fm.MeanMbps(m.opts.Duration)
		pt.AggMbps += mbps
		perCell[u.Home] = append(perCell[u.Home], mbps)
		delay.Merge(fm.Delay)
	}
	for s := 0; s < m.opts.Sectors; s++ {
		pt.CellJain = append(pt.CellJain, stats.JainIndex(perCell[s]))
	}
	for _, q := range metroCDFQuantiles {
		pt.DelayQuantiles = append(pt.DelayQuantiles, delay.Percentile(q))
	}
	pt.CellAttrib = make([]stats.Attribution, m.opts.Sectors)
	for s, a := range m.attrib {
		pt.CellAttrib[s] = *a
		pt.Attrib.Merge(a)
	}
	return pt
}

// Snapshot implements snap.Snapshotter at a mesh barrier: mesh and cell core
// state first, then every component in construction order, then the heaps —
// mirroring the two-phase restore.
func (m *metroSim) Snapshot(e *snap.Encoder) {
	e.Tag("metrotrial")
	m.mesh.Snapshot(e)
	for _, l := range m.links {
		l.Snapshot(e)
		if e.Err() != nil {
			return
		}
	}
	for id := 0; id < m.flows; id++ {
		st := m.states[id]
		e.Int(st.cur)
		e.Dur(st.stallUntil)
		m.sources[id].Snapshot(e)
		if e.Err() != nil {
			return
		}
	}
	e.I64s(m.handoversByCell)
	for _, a := range m.attrib {
		a.Snapshot(e)
		if e.Err() != nil {
			return
		}
	}
	m.mesh.SnapshotHeaps(e)
}

// Restore implements snap.Snapshotter over a freshly rebuilt trial.
func (m *metroSim) Restore(d *snap.Decoder) {
	d.Expect("metrotrial")
	m.mesh.Restore(d)
	if d.Err() != nil {
		return
	}
	for _, l := range m.links {
		l.Restore(d)
		if d.Err() != nil {
			return
		}
	}
	for id := 0; id < m.flows; id++ {
		st := m.states[id]
		cur := d.Int()
		stall := d.Dur()
		if d.Err() != nil {
			return
		}
		if cur < 0 || cur >= m.opts.Sectors {
			d.Fail(fmt.Errorf("experiments: flow %d checkpointed on sector %d of %d", id, cur, m.opts.Sectors))
			return
		}
		st.cur = cur
		st.stallUntil = stall
		m.sources[id].Restore(d)
		if d.Err() != nil {
			return
		}
	}
	hc := d.I64s()
	if d.Err() != nil {
		return
	}
	if len(hc) != len(m.handoversByCell) {
		d.Fail(fmt.Errorf("experiments: checkpoint has %d handover cells, rebuild has %d", len(hc), len(m.handoversByCell)))
		return
	}
	copy(m.handoversByCell, hc)
	for _, a := range m.attrib {
		a.Restore(d)
		if d.Err() != nil {
			return
		}
	}
	m.mesh.RestoreHeaps(d)
}

// metroTrial builds and runs one full metro trial straight through — the
// runner.Map path.
func metroTrial(opts MetroOptions, mk Maker, flows int, seed int64) MetroPoint {
	m := metroBuild(opts, mk, flows, seed)
	m.runTo(opts.Duration)
	return m.collect()
}

// Render prints the sweep as three figures: the headline
// throughput/fairness table, the per-cell Jain fairness rows, and the
// aggregate one-way delay CDF. Shard and worker counts are deliberately
// absent: the render must be byte-identical across executors.
func (r MetroResult) Render() string {
	s := fmt.Sprintf("Metro sweep: %d sectors (%s), %v per trial, handover-driven cross-cell detours\n",
		r.Sectors, r.Tech, r.Duration)
	var rows [][]string
	for _, p := range r.Points {
		minJ, meanJ := 1.0, 0.0
		for _, j := range p.CellJain {
			if j < minJ {
				minJ = j
			}
			meanJ += j
		}
		if len(p.CellJain) > 0 {
			meanJ /= float64(len(p.CellJain))
		}
		rows = append(rows, []string{
			fmt.Sprintf("%d", p.Flows),
			p.Protocol,
			fmt.Sprintf("%.1f", p.AggMbps),
			fmt.Sprintf("%.3f", meanJ),
			fmt.Sprintf("%.3f", minJ),
			fmt.Sprintf("%d", p.Handovers),
			fmt.Sprintf("%d", p.CrossMsgs),
		})
	}
	s += table([]string{"flows", "protocol", "agg tput (Mbps)", "Jain mean", "Jain min", "handovers", "cross msgs"}, rows)

	s += "\nPer-cell Jain fairness\n"
	header := []string{"flows", "protocol"}
	for c := 0; c < r.Sectors; c++ {
		header = append(header, fmt.Sprintf("cell %d", c))
	}
	rows = nil
	for _, p := range r.Points {
		row := []string{fmt.Sprintf("%d", p.Flows), p.Protocol}
		for _, j := range p.CellJain {
			row = append(row, fmt.Sprintf("%.3f", j))
		}
		rows = append(rows, row)
	}
	s += table(header, rows)

	s += "\nAggregate one-way delay CDF (ms)\n"
	header = []string{"flows", "protocol"}
	for _, q := range metroCDFQuantiles {
		header = append(header, fmt.Sprintf("p%.0f", q))
	}
	rows = nil
	for _, p := range r.Points {
		row := []string{fmt.Sprintf("%d", p.Flows), p.Protocol}
		for _, d := range p.DelayQuantiles {
			row = append(row, fmt.Sprintf("%.1f", d*1000))
		}
		rows = append(rows, row)
	}
	s += table(header, rows)
	return s
}

// RenderAttribution prints the delay-budget figure: per sweep point, each
// component's share of the summed one-way delay, bucket-resolution p95/p99
// upper bounds on the total, and the accounting-identity ledger (violations
// plus negative components — golden-pinned at zero). Like Render, the output
// carries no shard or worker counts: it must be byte-identical across
// executors.
func (r MetroResult) RenderAttribution() string {
	s := fmt.Sprintf("Metro delay attribution: %d sectors (%s), %v per trial; components sum exactly to one-way delay\n",
		r.Sectors, r.Tech, r.Duration)
	header := []string{"flows", "protocol", "pkts", "mean (ms)"}
	for c := 0; c < stats.NumDelayComps; c++ {
		header = append(header, stats.DelayComp(c).String()+" %")
	}
	header = append(header, "p95 (ms)", "p99 (ms)", "viol")
	var rows [][]string
	for _, p := range r.Points {
		row := []string{
			fmt.Sprintf("%d", p.Flows),
			p.Protocol,
			fmt.Sprintf("%d", p.Attrib.Count),
			fmt.Sprintf("%.2f", p.Attrib.MeanTotalSeconds()*1e3),
		}
		for c := 0; c < stats.NumDelayComps; c++ {
			row = append(row, fmt.Sprintf("%.1f", p.Attrib.Share(stats.DelayComp(c))*100))
		}
		row = append(row,
			fmt.Sprintf("%.1f", p.Attrib.TotalQuantileSeconds(95)*1e3),
			fmt.Sprintf("%.1f", p.Attrib.TotalQuantileSeconds(99)*1e3),
			fmt.Sprintf("%d", p.Attrib.Violations+p.Attrib.Negatives))
		rows = append(rows, row)
	}
	s += table(header, rows)

	s += "\nPer-cell fault+detour share of one-way delay (%)\n"
	header = []string{"flows", "protocol"}
	for ci := 0; ci < r.Sectors; ci++ {
		header = append(header, fmt.Sprintf("cell %d", ci))
	}
	rows = nil
	for _, p := range r.Points {
		row := []string{fmt.Sprintf("%d", p.Flows), p.Protocol}
		for ci := range p.CellAttrib {
			a := &p.CellAttrib[ci]
			row = append(row, fmt.Sprintf("%.1f",
				(a.Share(stats.DelayFaultHold)+a.Share(stats.DelayDetour))*100))
		}
		rows = append(rows, row)
	}
	s += table(header, rows)
	return s
}
