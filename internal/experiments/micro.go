package experiments

import (
	"fmt"
	"math"
	"time"

	"repro/internal/cellular"
	"repro/internal/experiments/runner"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/stats"
)

// MicroOptions scale the §7 micro-evaluations.
type MicroOptions struct {
	Duration time.Duration
	Seed     int64
	// Parallel is the trial worker count (0 = GOMAXPROCS, 1 = serial).
	// Output is byte-identical at every setting; see runner.
	Parallel int
	// Obs, when non-nil, is shared by every trial, as in MacroOptions.
	Obs *obs.Observer
}

// pool returns the trial executor for these options.
func (o MicroOptions) pool() *runner.Pool { return runner.New(o.Parallel) }

// DefaultMicroOptions returns the paper's scale (500 s for Fig. 11, shorter
// figures clamp internally).
func DefaultMicroOptions() MicroOptions {
	return MicroOptions{Duration: 500 * time.Second, Seed: 7}
}

// QuickMicroOptions returns a fast configuration.
func QuickMicroOptions() MicroOptions {
	return MicroOptions{Duration: 60 * time.Second, Seed: 7}
}

// Figure11Result holds the rapidly-changing-network comparison.
type Figure11Result struct {
	Scenario  string
	Protocols []string
	MeanMbps  []float64
	DelayMs   []float64
	// Timeline[p] is protocol p's 1-second throughput series.
	Timeline [][]float64
	// DelaySeries[p] is protocol p's 1-second mean delay series (seconds).
	DelaySeries [][]float64
	// Capacity is the link capacity per 5-second segment, Mbps.
	Capacity []float64
}

// figure11Mutator re-draws link capacity, RTT, and loss every 5 seconds from
// the given ranges, deterministically from seed — the paper's §7 "every five
// seconds the whole network parameters ... are changed".
func figure11Mutator(seed int64, lowMbps, highMbps float64, capacity *[]float64) func(l *netsim.FixedLink, flows []*netsim.Source, iter int) {
	rng := runner.NewRand(seed)
	return func(l *netsim.FixedLink, _ []*netsim.Source, _ int) {
		rate := lowMbps + rng.Float64()*(highMbps-lowMbps)
		rtt := time.Duration(10+rng.Float64()*90) * time.Millisecond
		loss := rng.Float64() * 0.01
		l.SetRateMbps(rate)
		l.SetPropDelay(rtt / 2)
		l.SetLossProb(loss)
		*capacity = append(*capacity, rate)
	}
}

// Figure11 runs Scenario I (10-100 Mbps; Verus, Cubic, Vegas, Sprout) or
// Scenario II (2-20 Mbps; Verus vs Sprout) depending on scenarioII.
func Figure11(opts MicroOptions, scenarioII bool) Figure11Result {
	out := Figure11Result{}
	var makers []Maker
	lo, hi := 10.0, 100.0
	if scenarioII {
		out.Scenario = "II (2-20 Mbps)"
		makers = []Maker{VerusMaker(2), SproutMaker()}
		lo, hi = 2, 20
	} else {
		out.Scenario = "I (10-100 Mbps)"
		makers = []Maker{VerusMaker(2), CubicMaker(), VegasMaker(), SproutMaker()}
	}
	type trial struct {
		res      RunResult
		capacity []float64
	}
	var jobs []runner.Job[trial]
	for _, mk := range makers {
		mk := mk
		jobs = append(jobs, runner.Job[trial]{
			// Every protocol shares key 0: the identical derived seed means
			// each one replays the identical parameter path.
			Key: 0,
			Run: func(seed int64) trial {
				var capSeries []float64
				res := FixedRun{
					RateMbps: lo, Maker: mk, Flows: 1,
					Duration:    opts.Duration,
					QueueBytes:  2_000_000,
					BaseOneWay:  10 * time.Millisecond,
					Seed:        seed,
					Mutate:      figure11Mutator(seed, lo, hi, &capSeries),
					MutateEvery: 5 * time.Second,
					Obs:         opts.Obs,
				}.Run()
				return trial{res: res, capacity: capSeries}
			},
		})
	}
	results := runner.Map(opts.pool(), opts.Seed, jobs)
	for i, mk := range makers {
		res := results[i].res
		out.Protocols = append(out.Protocols, mk.Name)
		out.MeanMbps = append(out.MeanMbps, res.Flows[0].Mbps)
		out.DelayMs = append(out.DelayMs, res.Flows[0].DelayMean*1000)
		out.Timeline = append(out.Timeline, res.PerSecondMbps[0])
		out.DelaySeries = append(out.DelaySeries, res.PerSecondDelay[0])
		if out.Capacity == nil {
			out.Capacity = results[i].capacity
		}
	}
	return out
}

// Render prints the Fig. 11 summary.
func (r Figure11Result) Render() string {
	var rows [][]string
	for i, p := range r.Protocols {
		rows = append(rows, []string{
			p, fmt.Sprintf("%.2f", r.MeanMbps[i]), fmt.Sprintf("%.0f", r.DelayMs[i]),
		})
	}
	var capMean float64
	for _, c := range r.Capacity {
		capMean += c
	}
	if len(r.Capacity) > 0 {
		capMean /= float64(len(r.Capacity))
	}
	return fmt.Sprintf("Figure 11, Scenario %s: rapidly changing network (mean capacity %.1f Mbps)\n", r.Scenario, capMean) +
		table([]string{"protocol", "mean tput (Mbps)", "mean delay (ms)"}, rows)
}

// Figure12Result is the newly-arriving-flows experiment: seven Verus flows
// joining a 90 Mbps link every 30 s.
type Figure12Result struct {
	// Timeline[f] is flow f's 1-second throughput series.
	Timeline [][]float64
	// FinalShare[f] is flow f's mean Mbps over the last 30 s.
	FinalShare []float64
	// JainAllActive is the fairness index over the period when all flows run.
	JainAllActive float64
	// FirstFlowAloneMbps is flow 0's rate before others join.
	FirstFlowAloneMbps float64
}

// Figure12 starts a new Verus flow every 30 seconds on a 90 Mbps bottleneck.
func Figure12(opts MicroOptions) Figure12Result {
	const flows = 7
	stagger := 30 * time.Second
	dur := opts.Duration
	if min := stagger*time.Duration(flows) + 20*time.Second; dur < min {
		dur = min
	}
	res := runner.Go(opts.pool(), opts.Seed, 0, func(seed int64) RunResult {
		return FixedRun{
			RateMbps: 90, Maker: VerusMaker(2), Flows: flows,
			Duration: dur, QueueBytes: 2_000_000,
			BaseOneWay: 10 * time.Millisecond, Stagger: stagger, Seed: seed,
			Obs: opts.Obs,
		}.Run()
	})

	out := Figure12Result{Timeline: res.PerSecondMbps}
	lastStart := int((time.Duration(flows-1) * stagger) / time.Second)
	horizonSec := int(dur / time.Second)
	var active [][]float64
	for f := 0; f < flows; f++ {
		series := res.PerSecondMbps[f]
		var sum float64
		var n int
		for w := horizonSec - 30; w < horizonSec && w < len(series); w++ {
			if w >= 0 {
				sum += series[w]
				n++
			}
		}
		if n > 0 {
			out.FinalShare = append(out.FinalShare, sum/float64(n))
		} else {
			out.FinalShare = append(out.FinalShare, 0)
		}
		if lastStart+5 < len(series) {
			active = append(active, series[lastStart+5:])
		}
	}
	out.JainAllActive = stats.WindowedJain(active)
	if len(res.PerSecondMbps[0]) > 25 {
		var s float64
		for _, v := range res.PerSecondMbps[0][5:25] {
			s += v
		}
		out.FirstFlowAloneMbps = s / 20
	}
	return out
}

// Render prints Fig. 12.
func (r Figure12Result) Render() string {
	s := fmt.Sprintf("Figure 12: Verus intra-fairness, staggered joins on 90 Mbps\n"+
		"  flow 0 alone: %.1f Mbps; Jain (all active): %.3f\n  final shares (Mbps):",
		r.FirstFlowAloneMbps, r.JainAllActive)
	for _, v := range r.FinalShare {
		s += fmt.Sprintf(" %.1f", v)
	}
	return s + "\n"
}

// Figure13Result is the RTT-fairness experiment: three Verus flows with
// 20/50/100 ms RTTs on 60 Mbps.
type Figure13Result struct {
	RTTs     []time.Duration
	MeanMbps []float64
	// MaxMinRatio is max/min of the three rates — 1.0 is RTT-independence.
	MaxMinRatio float64
}

// Figure13 runs the varying-RTT experiment.
func Figure13(opts MicroOptions) Figure13Result {
	rtts := []time.Duration{20 * time.Millisecond, 50 * time.Millisecond, 100 * time.Millisecond}
	ackDelays := make([]time.Duration, len(rtts))
	for i, r := range rtts {
		ackDelays[i] = r / 2
	}
	res := runner.Go(opts.pool(), opts.Seed, 0, func(seed int64) RunResult {
		return FixedRun{
			RateMbps: 60, Maker: VerusMaker(2), Flows: 3,
			Duration: opts.Duration, QueueBytes: 2_000_000,
			BaseOneWay: 10 * time.Millisecond, // forward leg; reverse differs per flow
			AckDelays:  ackDelays,
			Seed:       seed,
			Obs:        opts.Obs,
		}.Run()
	})
	out := Figure13Result{RTTs: rtts}
	lo, hi := math.Inf(1), 0.0
	for _, f := range res.Flows {
		out.MeanMbps = append(out.MeanMbps, f.Mbps)
		lo = math.Min(lo, f.Mbps)
		hi = math.Max(hi, f.Mbps)
	}
	if lo > 0 {
		out.MaxMinRatio = hi / lo
	}
	return out
}

// Render prints Fig. 13.
func (r Figure13Result) Render() string {
	var rows [][]string
	for i := range r.RTTs {
		rows = append(rows, []string{r.RTTs[i].String(), fmt.Sprintf("%.1f", r.MeanMbps[i])})
	}
	return "Figure 13: Verus with mixed RTTs on 60 Mbps (max/min = " +
		fmt.Sprintf("%.2f)\n", r.MaxMinRatio) +
		table([]string{"RTT", "tput (Mbps)"}, rows)
}

// Figure14Result is the TCP-friendliness experiment: 3 Verus then 3 Cubic
// flows joining a 60 Mbps link every 30 s.
type Figure14Result struct {
	VerusMbps []float64
	CubicMbps []float64
	// ShareVerus is the Verus aggregate's fraction of total goodput over
	// the period when all six flows are active.
	ShareVerus float64
}

// Figure14 runs the Verus-vs-Cubic coexistence experiment.
func Figure14(opts MicroOptions) Figure14Result {
	stagger := 30 * time.Second
	dur := opts.Duration
	if min := 7 * stagger; dur < min {
		dur = min
	}
	res := runner.Go(opts.pool(), opts.Seed, 0, func(seed int64) RunResult {
		return FixedRun{
			RateMbps: 60, Maker: VerusMaker(2), Flows: 3,
			ExtraMakers: []Maker{CubicMaker(), CubicMaker(), CubicMaker()},
			Duration:    dur, QueueBytes: 1_000_000,
			BaseOneWay: 10 * time.Millisecond, Stagger: stagger, Seed: seed,
			Obs: opts.Obs,
		}.Run()
	})
	out := Figure14Result{}
	allActive := int((5*stagger + 5*time.Second) / time.Second)
	var verusSum, cubicSum float64
	for i, f := range res.Flows {
		var sum float64
		var n int
		series := res.PerSecondMbps[i]
		for w := allActive; w < len(series); w++ {
			sum += series[w]
			n++
		}
		mean := 0.0
		if n > 0 {
			mean = sum / float64(n)
		}
		if i < 3 {
			out.VerusMbps = append(out.VerusMbps, mean)
			verusSum += mean
		} else {
			out.CubicMbps = append(out.CubicMbps, mean)
			cubicSum += mean
		}
		_ = f
	}
	if verusSum+cubicSum > 0 {
		out.ShareVerus = verusSum / (verusSum + cubicSum)
	}
	return out
}

// Render prints Fig. 14.
func (r Figure14Result) Render() string {
	return fmt.Sprintf("Figure 14: 3 Verus + 3 Cubic on 60 Mbps (all-active period)\n"+
		"  Verus flows (Mbps): %.1f %.1f %.1f\n  Cubic flows (Mbps): %.1f %.1f %.1f\n"+
		"  Verus aggregate share: %.2f\n",
		r.VerusMbps[0], r.VerusMbps[1], r.VerusMbps[2],
		r.CubicMbps[0], r.CubicMbps[1], r.CubicMbps[2], r.ShareVerus)
}

// Figure15Result compares Verus with an updating vs static delay profile
// across the five trace scenarios.
type Figure15Result struct {
	Scenarios                  []string
	UpdatingMbps, StaticMbps   []float64
	UpdatingDelay, StaticDelay []float64 // seconds
}

// Figure15 runs the delay-profile ablation (paper Fig. 15) on the five §5.3
// trace scenarios with R = 2.
func Figure15(opts MicroOptions) Figure15Result {
	out := Figure15Result{}
	scenarios := table1Scenarios()
	var jobs []runner.Job[RunResult]
	for si, sc := range scenarios {
		for _, mk := range []Maker{VerusMaker(2), VerusStaticMaker(2)} {
			sc, mk := sc, mk
			jobs = append(jobs, runner.Job[RunResult]{
				// Both variants share the scenario's key: the ablation needs
				// the static profile to face the identical channel.
				Key: int64(si),
				Run: func(seed int64) RunResult {
					tr := cellTrace(cellular.Tech3G, sc, 12, opts.Duration, seed)
					return TraceRun{Trace: tr, Maker: mk, Flows: 1,
						Duration: opts.Duration, QueueBytes: 2_000_000, Seed: seed,
						Obs: opts.Obs}.Run()
				},
			})
		}
	}
	results := runner.Map(opts.pool(), opts.Seed, jobs)
	for si, sc := range scenarios {
		upd, sta := results[2*si], results[2*si+1]
		out.Scenarios = append(out.Scenarios, sc.Name)
		out.UpdatingMbps = append(out.UpdatingMbps, upd.MeanMbps())
		out.StaticMbps = append(out.StaticMbps, sta.MeanMbps())
		out.UpdatingDelay = append(out.UpdatingDelay, upd.MeanDelay())
		out.StaticDelay = append(out.StaticDelay, sta.MeanDelay())
	}
	return out
}

// Render prints Fig. 15.
func (r Figure15Result) Render() string {
	var rows [][]string
	for i, sc := range r.Scenarios {
		rows = append(rows, []string{
			sc,
			fmt.Sprintf("%.2f @ %.0fms", r.UpdatingMbps[i], r.UpdatingDelay[i]*1000),
			fmt.Sprintf("%.2f @ %.0fms", r.StaticMbps[i], r.StaticDelay[i]*1000),
		})
	}
	return "Figure 15: Verus (R=2) with updating vs static delay profile\n" +
		table([]string{"scenario", "updating", "static"}, rows)
}
