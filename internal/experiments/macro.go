package experiments

import (
	"fmt"
	"time"

	"repro/internal/cellular"
	"repro/internal/experiments/runner"
	"repro/internal/obs"
	"repro/internal/stats"
)

// MacroOptions scale the §6 macro-evaluation experiments.
type MacroOptions struct {
	// Duration per run (paper: 2 minutes).
	Duration time.Duration
	// Reps averages over repetitions (paper: 5).
	Reps int
	Seed int64
	// Parallel is the trial worker count (0 = GOMAXPROCS, 1 = serial).
	// Output is byte-identical at every setting; see runner.
	Parallel int
	// Obs, when non-nil, is shared by every trial: events are labeled by the
	// per-trial derived seed (run) and flow index, so one observer can absorb
	// a whole parallel sweep without perturbing results.
	Obs *obs.Observer
}

// pool returns the trial executor for these options.
func (o MacroOptions) pool() *runner.Pool { return runner.New(o.Parallel) }

// DefaultMacroOptions returns the paper's scale.
func DefaultMacroOptions() MacroOptions {
	return MacroOptions{Duration: 2 * time.Minute, Reps: 5, Seed: 42}
}

// QuickMacroOptions returns a fast configuration for tests and benchmarks.
func QuickMacroOptions() MacroOptions {
	return MacroOptions{Duration: 20 * time.Second, Reps: 1, Seed: 42}
}

// bloatBytes sizes the Fig. 8/9 cell buffer. Carriers over-dimension base
// station buffers (the "bufferbloat" of §2: "multi-second delays"); 8 MB at
// a 16 Mbps cell is ~4 s of queue, which is what lets loss-based TCP build
// the order-of-magnitude delay gap the paper reports.
const bloatBytes = 8_000_000

// ProtocolPoint is one protocol's position on a throughput-vs-delay plot.
type ProtocolPoint struct {
	Protocol string
	Mbps     float64
	DelaySec float64
	DelayP95 float64
}

// Figure8Result holds the 3G and LTE throughput-vs-delay comparison of
// paper Fig. 8: Cubic, Vegas, Verus (R=6), and Sprout, nine flows each.
type Figure8Result struct {
	Tech   []string
	Points [][]ProtocolPoint // per tech, per protocol
}

// figure8Protocols are the paper's real-world contenders.
func figure8Protocols() []Maker {
	return []Maker{CubicMaker(), VegasMaker(), VerusMaker(6), SproutMaker()}
}

// Figure8 runs the real-world macro comparison on modeled 3G and LTE cells:
// "Three phones each running three <protocol> flows" → nine flows sharing
// the cell, averaged across flows and repetitions. Every (cell, protocol,
// repetition) triple is one independent trial on the options' worker pool.
func Figure8(opts MacroOptions) Figure8Result {
	out := Figure8Result{}
	cells := []struct {
		name  string
		tech  cellular.Tech
		total float64
	}{
		{"3G", cellular.Tech3G, 16},
		{"LTE", cellular.TechLTE, 40},
	}
	protos := figure8Protocols()
	var jobs []runner.Job[RunResult]
	for ci, cell := range cells {
		for pi, mk := range protos {
			for rep := 0; rep < opts.Reps; rep++ {
				cell, mk := cell, mk
				jobs = append(jobs, runner.Job[RunResult]{
					Key: int64(1000*ci + 100*pi + rep),
					Run: func(seed int64) RunResult {
						tr := cellTrace(cell.tech, cellular.CityStationary, cell.total, opts.Duration, seed)
						return TraceRun{
							Trace: tr, Maker: mk, Flows: 9,
							Duration: opts.Duration, QueueBytes: bloatBytes, Seed: seed,
							Obs: opts.Obs,
						}.Run()
					},
				})
			}
		}
	}
	results := runner.Map(opts.pool(), opts.Seed, jobs)
	k := 0
	for _, cell := range cells {
		var points []ProtocolPoint
		for _, mk := range protos {
			var mbps, delay, p95 float64
			for rep := 0; rep < opts.Reps; rep++ {
				res := results[k]
				k++
				mbps += res.MeanMbps()
				delay += res.MeanDelay()
				var pp float64
				for _, f := range res.Flows {
					pp += f.DelayP95
				}
				p95 += pp / float64(len(res.Flows))
			}
			n := float64(opts.Reps)
			points = append(points, ProtocolPoint{
				Protocol: mk.Name, Mbps: mbps / n, DelaySec: delay / n, DelayP95: p95 / n,
			})
		}
		out.Tech = append(out.Tech, cell.name)
		out.Points = append(out.Points, points)
	}
	return out
}

// Render prints Fig. 8 rows.
func (r Figure8Result) Render() string {
	s := "Figure 8: averaged throughput and delay, 9 flows per protocol\n"
	for i, tech := range r.Tech {
		var rows [][]string
		for _, p := range r.Points[i] {
			rows = append(rows, []string{
				p.Protocol,
				fmt.Sprintf("%.2f", p.Mbps),
				fmt.Sprintf("%.0f", p.DelaySec*1000),
				fmt.Sprintf("%.0f", p.DelayP95*1000),
			})
		}
		s += fmt.Sprintf("-- %s --\n", tech)
		s += table([]string{"protocol", "tput/flow (Mbps)", "mean delay (ms)", "p95 delay (ms)"}, rows)
	}
	return s
}

// Figure9Result holds the Verus R-parameter sweep of paper Fig. 9.
type Figure9Result struct {
	Tech   []string
	Points [][]ProtocolPoint
}

// Figure9 repeats the Fig. 8 setup for Verus with R ∈ {2, 4, 6}: "Depending
// on the value of R, the Verus protocol can be tuned to achieve a trade-off
// between a higher throughput or lower delay."
func Figure9(opts MacroOptions) Figure9Result {
	out := Figure9Result{}
	cells := []struct {
		name  string
		tech  cellular.Tech
		total float64
	}{
		{"3G", cellular.Tech3G, 16},
		{"LTE", cellular.TechLTE, 40},
	}
	rs := []float64{2, 4, 6}
	var jobs []runner.Job[RunResult]
	for ci, cell := range cells {
		for pi, rv := range rs {
			for rep := 0; rep < opts.Reps; rep++ {
				cell, mk := cell, VerusMaker(rv)
				jobs = append(jobs, runner.Job[RunResult]{
					Key: int64(1000*ci + 100*pi + rep),
					Run: func(seed int64) RunResult {
						tr := cellTrace(cell.tech, cellular.CityStationary, cell.total, opts.Duration, seed)
						return TraceRun{
							Trace: tr, Maker: mk, Flows: 9,
							Duration: opts.Duration, QueueBytes: bloatBytes, Seed: seed,
							Obs: opts.Obs,
						}.Run()
					},
				})
			}
		}
	}
	results := runner.Map(opts.pool(), opts.Seed, jobs)
	k := 0
	for _, cell := range cells {
		var points []ProtocolPoint
		for _, rv := range rs {
			var mbps, delay float64
			for rep := 0; rep < opts.Reps; rep++ {
				res := results[k]
				k++
				mbps += res.MeanMbps()
				delay += res.MeanDelay()
			}
			n := float64(opts.Reps)
			points = append(points, ProtocolPoint{Protocol: VerusMaker(rv).Name, Mbps: mbps / n, DelaySec: delay / n})
		}
		out.Tech = append(out.Tech, cell.name)
		out.Points = append(out.Points, points)
	}
	return out
}

// Render prints Fig. 9 rows.
func (r Figure9Result) Render() string {
	s := "Figure 9: Verus R sweep (throughput/delay trade-off)\n"
	for i, tech := range r.Tech {
		var rows [][]string
		for _, p := range r.Points[i] {
			rows = append(rows, []string{
				p.Protocol, fmt.Sprintf("%.2f", p.Mbps), fmt.Sprintf("%.0f", p.DelaySec*1000),
			})
		}
		s += fmt.Sprintf("-- %s --\n", tech)
		s += table([]string{"protocol", "tput/flow (Mbps)", "mean delay (ms)"}, rows)
	}
	return s
}

// Figure10Result is the trace-driven contention evaluation of paper Fig. 10:
// per-flow (delay, throughput) scatter for three mobility patterns, with 10
// concurrent flows behind the paper's RED queue.
type Figure10Result struct {
	Scenarios []string
	// PerFlow[s][p] lists the per-flow points of protocol p in scenario s.
	PerFlow   [][][]ProtocolPoint
	Summary   [][]ProtocolPoint
	Protocols []string
}

// figure10Protocols are the trace-driven contenders.
func figure10Protocols() []Maker {
	return []Maker{CubicMaker(), NewRenoMaker(), VerusMaker(2), VerusMaker(4), VerusMaker(6)}
}

// Figure10 runs 10 flows of each protocol over three mobility scenarios
// through the paper's shared RED queue (3 Mbit min, 9 Mbit max, 10% drop).
func Figure10(opts MacroOptions) Figure10Result {
	out := Figure10Result{}
	scenarios := []cellular.Scenario{
		cellular.CampusPedestrian, cellular.CityDriving, cellular.HighwayDriving,
	}
	for _, mk := range figure10Protocols() {
		out.Protocols = append(out.Protocols, mk.Name)
	}
	protos := figure10Protocols()
	var jobs []runner.Job[RunResult]
	for si, sc := range scenarios {
		for pi, mk := range protos {
			sc, mk := sc, mk
			jobs = append(jobs, runner.Job[RunResult]{
				Key: int64(1000*si + 100*pi),
				Run: func(seed int64) RunResult {
					tr := cellTrace(cellular.Tech3G, sc, 25, opts.Duration, seed)
					return TraceRun{
						Trace: tr, Maker: mk, Flows: 10,
						Duration: opts.Duration, UseRED: true, Seed: seed,
						Obs: opts.Obs,
					}.Run()
				},
			})
		}
	}
	results := runner.Map(opts.pool(), opts.Seed, jobs)
	k := 0
	for _, sc := range scenarios {
		out.Scenarios = append(out.Scenarios, sc.Name)
		var perFlow [][]ProtocolPoint
		var summary []ProtocolPoint
		for _, mk := range protos {
			res := results[k]
			k++
			var pts []ProtocolPoint
			for _, f := range res.Flows {
				pts = append(pts, ProtocolPoint{Protocol: mk.Name, Mbps: f.Mbps, DelaySec: f.DelayMean})
			}
			perFlow = append(perFlow, pts)
			summary = append(summary, ProtocolPoint{Protocol: mk.Name, Mbps: res.MeanMbps(), DelaySec: res.MeanDelay()})
		}
		out.PerFlow = append(out.PerFlow, perFlow)
		out.Summary = append(out.Summary, summary)
	}
	return out
}

// Render prints the Fig. 10 summaries.
func (r Figure10Result) Render() string {
	s := "Figure 10: trace-driven contention (10 flows, shared RED queue)\n"
	for si, sc := range r.Scenarios {
		var rows [][]string
		for _, p := range r.Summary[si] {
			rows = append(rows, []string{
				p.Protocol, fmt.Sprintf("%.2f", p.Mbps), fmt.Sprintf("%.0f", p.DelaySec*1000),
			})
		}
		s += fmt.Sprintf("-- %s --\n", sc)
		s += table([]string{"protocol", "tput/flow (Mbps)", "mean delay (ms)"}, rows)
	}
	return s
}

// Table1Result is Jain's fairness index per protocol and user count (paper
// Table 1), averaged across the five trace scenarios.
type Table1Result struct {
	Users     []int
	Protocols []string
	// Index[u][p] is the averaged fairness index.
	Index [][]float64
}

// table1Scenarios are the "five different scenarios" the paper averages
// over.
func table1Scenarios() []cellular.Scenario {
	return []cellular.Scenario{
		cellular.CampusPedestrian, cellular.CityStationary, cellular.CityDriving,
		cellular.HighwayDriving, cellular.ShoppingMall,
	}
}

// Table1 computes 1-second-windowed Jain fairness for Cubic, NewReno, and
// Verus (R=2) at 2..20 concurrent users.
func Table1(opts MacroOptions) Table1Result {
	makers := []Maker{CubicMaker(), NewRenoMaker(), VerusMaker(2)}
	out := Table1Result{Users: []int{2, 5, 10, 15, 20}}
	for _, m := range makers {
		out.Protocols = append(out.Protocols, m.Name)
	}
	scenarios := table1Scenarios()
	if opts.Reps < len(scenarios) {
		scenarios = scenarios[:opts.Reps]
	}
	var jobs []runner.Job[float64]
	for _, users := range out.Users {
		for pi, mk := range makers {
			for si, sc := range scenarios {
				users, mk, sc := users, mk, sc
				jobs = append(jobs, runner.Job[float64]{
					Key: int64(10000*users + 100*pi + si),
					Run: func(seed int64) float64 {
						tr := cellTrace(cellular.Tech3G, sc, 25, opts.Duration, seed)
						res := TraceRun{
							Trace: tr, Maker: mk, Flows: users,
							Duration: opts.Duration, UseRED: true, Seed: seed,
							Obs: opts.Obs,
						}.Run()
						return stats.WindowedJain(res.PerSecondMbps)
					},
				})
			}
		}
	}
	results := runner.Map(opts.pool(), opts.Seed, jobs)
	k := 0
	for range out.Users {
		row := make([]float64, len(makers))
		for pi := range makers {
			var acc float64
			for range scenarios {
				acc += results[k]
				k++
			}
			row[pi] = acc / float64(len(scenarios))
		}
		out.Index = append(out.Index, row)
	}
	return out
}

// Render prints Table 1.
func (r Table1Result) Render() string {
	header := append([]string{"scenario"}, r.Protocols...)
	var rows [][]string
	for ui, users := range r.Users {
		row := []string{fmt.Sprintf("%d Users", users)}
		for pi := range r.Protocols {
			row = append(row, fmt.Sprintf("%.1f%%", r.Index[ui][pi]*100))
		}
		rows = append(rows, row)
	}
	return "Table 1: Jain's fairness index comparison\n" + table(header, rows)
}
