package experiments

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/cellular"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/snap"
)

// Checkpoint/resume contract (a) of ISSUE 9: run-straight ≡
// checkpoint-then-resume, byte-identical renders, on the single-heap
// reference and sharded-{1,4,8} executors, resumed from multiple distinct
// barrier checkpoints. The scale is deliberately small — the property does
// not depend on it.

// ckptOpts is the base sweep every checkpoint test runs.
func ckptOpts(shards int, churn float64) MetroOptions {
	return MetroOptions{
		Sectors: 4, FlowCounts: []int{16}, Duration: 2 * time.Second,
		Shards: shards, Tech: cellular.TechLTE, HandoverScale: 0.05,
		ChurnFrac: churn, Seed: 123, Parallel: 1,
	}
}

// runCheckpointed runs the sweep with checkpointing at `every`, copying the
// checkpoint file aside at each write so tests can resume from any barrier.
func runCheckpointed(t *testing.T, opts MetroOptions, every time.Duration) (render string, copies []string) {
	t.Helper()
	dir := t.TempDir()
	opts.CheckpointPath = filepath.Join(dir, "snap.bin")
	opts.CheckpointEvery = every
	opts.CheckpointHook = func(ordinal int, path string) {
		b, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("checkpoint %d unreadable: %v", ordinal, err)
		}
		cp := filepath.Join(dir, fmt.Sprintf("snap-%03d.bin", ordinal))
		if err := os.WriteFile(cp, b, 0o644); err != nil {
			t.Fatal(err)
		}
		copies = append(copies, cp)
	}
	res, err := Metro(opts)
	if err != nil {
		t.Fatalf("checkpointed sweep: %v", err)
	}
	return res.Render(), copies
}

func TestMetroCheckpointResumeEquivalence(t *testing.T) {
	cases := []struct {
		name    string
		shards  int
		churn   float64
		every   time.Duration
		resumes int // how many saved barriers to resume from
	}{
		{"singleheap", 0, 0, 500 * time.Millisecond, 3},
		{"sharded1", 1, 0, 600 * time.Millisecond, 1},
		{"sharded4", 4, 0, 500 * time.Millisecond, 3},
		{"sharded8", 8, 0, 700 * time.Millisecond, 1},
		{"sharded4-churn", 4, 0.5, 500 * time.Millisecond, 1},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			opts := ckptOpts(tc.shards, tc.churn)
			straight, err := Metro(opts)
			if err != nil {
				t.Fatal(err)
			}
			want := straight.Render()

			got, copies := runCheckpointed(t, opts, tc.every)
			if got != want {
				t.Errorf("checkpointed sweep render diverges from straight run:\n-- straight --\n%s\n-- checkpointed --\n%s", want, got)
			}
			if len(copies) < 3 {
				t.Fatalf("sweep wrote %d checkpoints, want >= 3 distinct barriers", len(copies))
			}

			// Resume from distinct barriers: the first checkpoint, the last,
			// and one in the middle.
			picks := []int{0, len(copies) / 2, len(copies) - 1}[:tc.resumes]
			if tc.resumes == 1 {
				picks = []int{len(copies) / 2}
			}
			for _, i := range picks {
				rs := opts
				rs.ResumeFrom = copies[i]
				res, err := Metro(rs)
				if err != nil {
					t.Fatalf("resume from %s: %v", copies[i], err)
				}
				if r := res.Render(); r != want {
					t.Errorf("resume from checkpoint %d diverges from straight run:\n-- straight --\n%s\n-- resumed --\n%s", i+1, want, r)
				}
			}
		})
	}
}

// TestMetroCheckpointPoolConservation is the metro side of the pool
// property: the mesh-wide PoolStats survive snapshot→restore exactly, so a
// resumed trial keeps the leak-conservation identity the pooled packet path
// is audited by.
func TestMetroCheckpointPoolConservation(t *testing.T) {
	opts := ckptOpts(4, 0)
	m := metroBuild(opts, metroProtocols()[0], 16, 123)
	m.runTo(time.Second)
	before := m.mesh.PoolStats()
	if before.Live() == 0 {
		t.Fatal("mid-run barrier has no live packets; the property would be vacuous")
	}
	e := snap.NewEncoder()
	m.Snapshot(e)
	if err := e.Err(); err != nil {
		t.Fatal(err)
	}
	blob, err := e.Encode(snap.Version)
	if err != nil {
		t.Fatal(err)
	}
	d, err := snap.Decode(blob, snap.Version)
	if err != nil {
		t.Fatal(err)
	}
	r := metroBuild(opts, metroProtocols()[0], 16, 123)
	r.Restore(d)
	if err := d.Err(); err != nil {
		t.Fatal(err)
	}
	if err := d.Done(); err != nil {
		t.Fatal(err)
	}
	if after := r.mesh.PoolStats(); after != before {
		t.Fatalf("mesh pool stats not conserved through restore: %+v -> %+v", before, after)
	}
	m.runTo(opts.Duration)
	r.runTo(opts.Duration)
	if got, want := r.mesh.PoolStats(), m.mesh.PoolStats(); got != want {
		t.Fatalf("post-restore mesh pool stats diverge: restored %+v, straight %+v", got, want)
	}
	if netsim.PoolDebug {
		t.Log("pooldebug poisoning armed through restore")
	}
}

// TestMetroCheckpointFailClosed pins the fail-closed contract: a truncated,
// corrupted, wrong-version, mismatched-config, or absent snapshot file must
// fail the resume with an error before any trial state is touched — never a
// partial resume.
func TestMetroCheckpointFailClosed(t *testing.T) {
	opts := ckptOpts(4, 0)
	_, copies := runCheckpointed(t, opts, 500*time.Millisecond)
	valid, err := os.ReadFile(copies[0])
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	write := func(name string, b []byte) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, b, 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	truncated := write("truncated.bin", valid[:len(valid)-10])
	corrupted := append([]byte(nil), valid...)
	corrupted[len(corrupted)/2] ^= 0x40
	corruptedPath := write("corrupted.bin", corrupted)
	garbage := write("garbage.bin", []byte("not a snapshot at all"))

	wrongVer := filepath.Join(dir, "wrongver.bin")
	e := snap.NewEncoder()
	e.Tag("metro")
	if err := snap.WriteFile(wrongVer, e, snap.Version+1); err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name string
		mut  func(*MetroOptions)
		want string
	}{
		{"truncated", func(o *MetroOptions) { o.ResumeFrom = truncated }, ""},
		{"corrupted", func(o *MetroOptions) { o.ResumeFrom = corruptedPath }, ""},
		{"garbage", func(o *MetroOptions) { o.ResumeFrom = garbage }, ""},
		{"missing", func(o *MetroOptions) { o.ResumeFrom = filepath.Join(dir, "nope.bin") }, ""},
		{"wrong-version", func(o *MetroOptions) { o.ResumeFrom = wrongVer }, "version"},
		{"config-mismatch-seed", func(o *MetroOptions) { o.ResumeFrom = copies[0]; o.Seed = 999 }, "different metro configuration"},
		{"config-mismatch-duration", func(o *MetroOptions) { o.ResumeFrom = copies[0]; o.Duration = 3 * time.Second }, "different metro configuration"},
		{"config-mismatch-sectors", func(o *MetroOptions) { o.ResumeFrom = copies[0]; o.Sectors = 8 }, "different metro configuration"},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			o := ckptOpts(4, 0)
			tc.mut(&o)
			res, err := Metro(o)
			if err == nil {
				t.Fatal("resume from a bad snapshot succeeded")
			}
			if tc.want != "" && !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
			if len(res.Points) != 0 {
				t.Fatalf("failed resume still produced %d points — partial resume", len(res.Points))
			}
		})
	}
}

// TestMetroCheckpointResumeAdoptsTopology pins the "the snapshot fixes the
// topology" contract: Shards and ChurnFrac come from the checkpoint file on
// resume, so a resume launched without restating them still reproduces the
// interrupted run byte-for-byte.
func TestMetroCheckpointResumeAdoptsTopology(t *testing.T) {
	opts := ckptOpts(4, 0.5)
	straight, err := Metro(opts)
	if err != nil {
		t.Fatal(err)
	}
	want := straight.Render()
	_, copies := runCheckpointed(t, opts, 600*time.Millisecond)

	rs := ckptOpts(0, 0) // wrong shards/churn on purpose: the file overrides
	rs.ResumeFrom = copies[len(copies)/2]
	res, err := Metro(rs)
	if err != nil {
		t.Fatalf("resume without restating shards/churn: %v", err)
	}
	if r := res.Render(); r != want {
		t.Errorf("resume with adopted topology diverges from straight run:\n-- straight --\n%s\n-- resumed --\n%s", want, r)
	}
}

// TestMetroCheckpointOptionValidation covers the option-combination surface
// Metro rejects before running anything.
func TestMetroCheckpointOptionValidation(t *testing.T) {
	bad := []func(*MetroOptions){
		func(o *MetroOptions) { o.CheckpointEvery = -time.Second },
		func(o *MetroOptions) { o.CheckpointEvery = time.Second }, // no path
		func(o *MetroOptions) { o.CheckpointPath = "x.bin" },      // no interval
	}
	for i, mut := range bad {
		o := ckptOpts(0, 0)
		mut(&o)
		if _, err := Metro(o); err == nil {
			t.Errorf("case %d: invalid checkpoint options accepted", i)
		}
	}
}

// TestMetroCheckpointObservability pins satellite 3: a checkpointed +
// resumed sweep emits CheckpointWrite/CheckpointRestore events that survive
// the strict exporter re-parsers, and registers the checkpoint metrics.
func TestMetroCheckpointObservability(t *testing.T) {
	// A small instrumented sweep emits ~200k events; size the ring to hold
	// the checkpointed run plus the resume so barrier events are not evicted.
	o := obs.NewObserver(obs.NewTracer(1<<19), obs.NewRegistry())
	opts := ckptOpts(0, 0)
	opts.Obs = o
	_, copies := runCheckpointed(t, opts, 500*time.Millisecond)
	rs := opts
	rs.ResumeFrom = copies[len(copies)/2]
	if _, err := Metro(rs); err != nil {
		t.Fatal(err)
	}
	var writes, restores int
	for _, ev := range o.Tracer().Snapshot() {
		switch ev.Kind {
		case obs.KindCheckpointWrite:
			writes++
			if ev.V0 <= 0 || ev.V1 <= 0 || ev.V2 <= 0 {
				t.Errorf("ckpt.write event with non-positive fields: %+v", ev)
			}
		case obs.KindCheckpointRestore:
			restores++
			if ev.V0 <= 0 || ev.V1 <= 0 {
				t.Errorf("ckpt.restore event with non-positive fields: %+v", ev)
			}
		}
	}
	if writes == 0 || restores == 0 {
		t.Fatalf("tracer saw %d ckpt.write and %d ckpt.restore events; instrumentation is not wired", writes, restores)
	}

	// Strict re-parse of every export with the new kinds present.
	events := o.Tracer().Snapshot()
	var jsonl strings.Builder
	if err := obs.WriteJSONL(&jsonl, events); err != nil {
		t.Fatal(err)
	}
	back, err := obs.ReadJSONL(strings.NewReader(jsonl.String()))
	if err != nil {
		t.Fatalf("JSONL with checkpoint kinds does not re-parse: %v", err)
	}
	if len(back) != len(events) {
		t.Fatalf("JSONL round trip lost events: %d != %d", len(back), len(events))
	}
	var chrome strings.Builder
	if err := obs.WriteChromeTrace(&chrome, events); err != nil {
		t.Fatalf("Chrome trace with checkpoint kinds: %v", err)
	}
	var prom strings.Builder
	if err := obs.WritePrometheus(&prom, o.Registry()); err != nil {
		t.Fatal(err)
	}
	pm, err := obs.ParsePrometheus(strings.NewReader(prom.String()))
	if err != nil {
		t.Fatalf("exposition with checkpoint metrics does not re-parse: %v", err)
	}
	for _, name := range []string{"ckpt_writes_total", "ckpt_restores_total", "ckpt_snapshot_bytes", "ckpt_barrier_seconds"} {
		if _, ok := pm.Values[name]; !ok {
			t.Errorf("metrics exposition missing %s", name)
		}
	}
}
