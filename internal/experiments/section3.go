package experiments

import (
	"fmt"
	"math"
	"strings"
	"time"

	"repro/internal/cellular"
	"repro/internal/experiments/runner"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/predictor"
	"repro/internal/stats"
)

// Figure1Result is the burst-arrival delay scatter of paper Fig. 1: per-
// packet one-way delays over a short window of an LTE 10 Mbps downlink.
type Figure1Result struct {
	Times  []time.Duration
	Delays []time.Duration
	// Bursts is the number of distinct bursts in the window (arrivals
	// separated by more than 1 ms).
	Bursts int
}

// Figure1 saturates an LTE 10 Mbps channel with a CBR flow and records
// packet arrival times and delays over a 250 ms window mid-run.
func Figure1(seed int64) Figure1Result {
	model := cellular.NewModel(cellular.Config{
		Tech: cellular.TechLTE, Operator: cellular.OperatorB,
		Scenario: cellular.CityStationary, MeanMbps: 10, Seed: seed,
	})
	tr := model.Trace(10 * time.Second)

	sim := netsim.NewSim()
	var rec Figure1Result
	const wStart, wEnd = 5 * time.Second, 5250 * time.Millisecond
	dispatcher := netsim.NewDispatcher()
	// A modest buffer keeps the flow in the regime the paper measured
	// (tens of ms of within-burst queueing, not bufferbloat).
	link := netsim.NewTraceLink(sim, netsim.NewDropTail(120_000), tr, 15*time.Millisecond, dispatcher, false, seed+1)
	var lastArrival time.Duration
	dispatcher.Register(0, netsim.ReceiverFunc(func(p *netsim.Packet) {
		now := sim.Now()
		if now >= wStart && now < wEnd {
			rec.Times = append(rec.Times, now)
			rec.Delays = append(rec.Delays, now-p.SentAt)
			if now-lastArrival > time.Millisecond || len(rec.Times) == 1 {
				rec.Bursts++
			}
			lastArrival = now
		}
	}))
	// Send just below the provisioned rate, as the paper's measurement tool
	// does; the burst structure, not persistent overload, drives the plot.
	netsim.NewCBR(sim, 0, link, MTU, 8.5, 0, 0, 0, 0)
	sim.Run(6 * time.Second)
	return rec
}

// Render prints the Fig. 1 series.
func (r Figure1Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 1: LTE 10 Mbps burst arrivals (250 ms window, %d packets, %d bursts)\n", len(r.Times), r.Bursts)
	for i := range r.Times {
		if i%8 == 0 { // thin the printout
			fmt.Fprintf(&b, "  t=%8.2f ms  delay=%6.2f ms\n",
				float64(r.Times[i].Microseconds())/1000, float64(r.Delays[i].Microseconds())/1000)
		}
	}
	return b.String()
}

// Figure2Result holds the burst-size and inter-arrival PDFs of paper Fig. 2
// for the four operator/technology combinations.
type Figure2Result struct {
	Labels []string
	// SizePDF and GapPDF are (centers, densities) pairs per label.
	SizeCenters, SizeDensity [][]float64
	GapCenters, GapDensity   [][]float64
	MeanBurstBytes           []float64
	MeanGapMs                []float64
}

// Figure2 generates stationary downlink traces for both operators on 3G and
// LTE and reports burst statistics. Each operator/technology combination is
// one trial on a pool of `parallel` workers (0 = GOMAXPROCS, 1 = serial).
func Figure2(d time.Duration, seed int64, parallel int) Figure2Result {
	var out Figure2Result
	configs := []struct {
		op   cellular.Operator
		tech cellular.Tech
	}{
		{cellular.OperatorA, cellular.Tech3G},
		{cellular.OperatorB, cellular.Tech3G},
		{cellular.OperatorA, cellular.TechLTE},
		{cellular.OperatorB, cellular.TechLTE},
	}
	type burstPDFs struct {
		sizeCenters, sizeDensity []float64
		gapCenters, gapDensity   []float64
		meanBurstBytes, meanGap  float64
	}
	var jobs []runner.Job[burstPDFs]
	for i, c := range configs {
		c := c
		jobs = append(jobs, runner.Job[burstPDFs]{
			Key: int64(i),
			Run: func(trialSeed int64) burstPDFs {
				m := cellular.NewModel(cellular.Config{
					Tech: c.tech, Operator: c.op,
					Scenario: cellular.CityStationary, Seed: trialSeed,
				})
				tr := m.Trace(d)
				sizes, gaps := cellular.BurstStats(tr, 200*time.Microsecond)
				sh := stats.NewLogHistogram(100, 1.6, 40) // bytes
				gh := stats.NewLogHistogram(0.5, 1.6, 40) // milliseconds
				var sSum, gSum float64
				for _, s := range sizes {
					sh.Add(s)
					sSum += s
				}
				for _, g := range gaps {
					ms := float64(g.Microseconds()) / 1000
					gh.Add(ms)
					gSum += ms
				}
				var r burstPDFs
				r.sizeCenters, r.sizeDensity = sh.PDF()
				r.gapCenters, r.gapDensity = gh.PDF()
				if len(sizes) > 0 {
					r.meanBurstBytes = sSum / float64(len(sizes))
				}
				if len(gaps) > 0 {
					r.meanGap = gSum / float64(len(gaps))
				}
				return r
			},
		})
	}
	results := runner.Map(runner.New(parallel), seed, jobs)
	for i, c := range configs {
		r := results[i]
		out.Labels = append(out.Labels, fmt.Sprintf("%s %s", c.op, c.tech))
		out.SizeCenters = append(out.SizeCenters, r.sizeCenters)
		out.SizeDensity = append(out.SizeDensity, r.sizeDensity)
		out.GapCenters = append(out.GapCenters, r.gapCenters)
		out.GapDensity = append(out.GapDensity, r.gapDensity)
		out.MeanBurstBytes = append(out.MeanBurstBytes, r.meanBurstBytes)
		out.MeanGapMs = append(out.MeanGapMs, r.meanGap)
	}
	return out
}

// Render prints the Fig. 2 summary.
func (r Figure2Result) Render() string {
	rows := make([][]string, len(r.Labels))
	for i, l := range r.Labels {
		rows[i] = []string{
			l,
			fmt.Sprintf("%.0f", r.MeanBurstBytes[i]),
			fmt.Sprintf("%.2f", r.MeanGapMs[i]),
			fmt.Sprintf("%d", len(r.SizeCenters[i])),
		}
	}
	return "Figure 2: burst size / inter-arrival distributions\n" +
		table([]string{"network", "mean burst (B)", "mean gap (ms)", "pdf buckets"}, rows)
}

// Figure3Result reports user 1's average packet delay with the competing
// user OFF vs ON, for each of user 1's rates (paper Fig. 3).
type Figure3Result struct {
	Rates      []float64 // user 1 rates, Mbps
	DelayOffMs []float64
	DelayOnMs  []float64
}

// Figure3 runs the competing-traffic experiment: user 1 receives at a fixed
// rate while user 2 alternates 10 Mbps ON/OFF in one-minute periods over a
// shared 3G cell near saturation (the paper's combined rates "almost equal
// to the 3G channel capacity"). Each of user 1's rates is one trial on a
// pool of `parallel` workers (0 = GOMAXPROCS, 1 = serial). A non-nil o
// attaches the observability layer to each trial's bottleneck link.
func Figure3(seed int64, parallel int, o *obs.Observer) Figure3Result {
	const cellMbps = 18 // HSPA+ sector capacity: both users ON ≈ saturation
	out := Figure3Result{Rates: []float64{1, 5, 10}}
	type onOff struct{ onMs, offMs float64 }
	var jobs []runner.Job[onOff]
	for i, rate := range out.Rates {
		rate := rate
		jobs = append(jobs, runner.Job[onOff]{
			Key: int64(i),
			Run: func(trialSeed int64) onOff {
				tr := cellTrace(cellular.Tech3G, cellular.CampusStationary, cellMbps, 6*time.Minute, trialSeed)
				sim := netsim.NewSim()
				d := netsim.NewDumbbell(sim, func(dst netsim.Receiver) netsim.Link {
					l := netsim.NewTraceLink(sim, netsim.NewDropTail(2_000_000), tr, 15*time.Millisecond, dst, false, trialSeed+1)
					l.Instrument(o, trialSeed)
					return l
				}, MTU, []netsim.FlowSpec{
					{CBRMbps: rate},
					{CBRMbps: 10, OnFor: time.Minute, OffFor: time.Minute},
				})
				d.Run(6 * time.Minute)
				delays := d.Metrics[0].DelayOverTime.Means()
				var onSum, offSum float64
				var onN, offN int
				for w, dm := range delays {
					if dm == 0 {
						continue
					}
					sec := time.Duration(w) * time.Second
					if (sec/time.Minute)%2 == 0 { // user 2 ON during even minutes
						onSum += dm
						onN++
					} else {
						offSum += dm
						offN++
					}
				}
				var r onOff
				if onN > 0 {
					r.onMs = onSum / float64(onN) * 1000
				}
				if offN > 0 {
					r.offMs = offSum / float64(offN) * 1000
				}
				return r
			},
		})
	}
	for _, r := range runner.Map(runner.New(parallel), seed, jobs) {
		out.DelayOnMs = append(out.DelayOnMs, r.onMs)
		out.DelayOffMs = append(out.DelayOffMs, r.offMs)
	}
	return out
}

// Render prints the Fig. 3 bars.
func (r Figure3Result) Render() string {
	rows := make([][]string, len(r.Rates))
	for i := range r.Rates {
		rows[i] = []string{
			fmt.Sprintf("User1 %g Mbps", r.Rates[i]),
			fmt.Sprintf("%.1f", r.DelayOffMs[i]),
			fmt.Sprintf("%.1f", r.DelayOnMs[i]),
		}
	}
	return "Figure 3: competing-traffic delay on a 3G downlink\n" +
		table([]string{"scenario", "user2 OFF (ms)", "user2 ON (ms)"}, rows)
}

// Figure4Result holds windowed throughput of a saturated 3G downlink at two
// window sizes (paper Fig. 4), plus dispersion statistics.
type Figure4Result struct {
	Window100 []float64 // Mbps per 100 ms window over one minute
	Window20  []float64 // Mbps per 20 ms window over one minute
	CV100     float64   // coefficient of variation
	CV20      float64
}

// Figure4 generates the stationary 3G downlink trace and views it at 100 ms
// and 20 ms windows over the third minute (the paper plots minutes 2.0-3.0).
func Figure4(seed int64) Figure4Result {
	m := cellular.NewModel(cellular.Config{
		Tech: cellular.Tech3G, Operator: cellular.OperatorB,
		Scenario: cellular.CampusStationary, MeanMbps: 10, Seed: seed,
	})
	tr := m.Trace(3 * time.Minute)
	all100 := tr.WindowedMbps(100 * time.Millisecond)
	all20 := tr.WindowedMbps(20 * time.Millisecond)
	var out Figure4Result
	// Minute 2..3 in window indices.
	out.Window100 = sliceRange(all100, 1200, 1800)
	out.Window20 = sliceRange(all20, 6000, 9000)
	out.CV100 = cv(out.Window100)
	out.CV20 = cv(out.Window20)
	return out
}

// Render prints the Fig. 4 dispersion summary.
func (r Figure4Result) Render() string {
	return fmt.Sprintf(
		"Figure 4: 3G stationary downlink throughput variability\n"+
			"  100 ms windows: n=%d cv=%.2f\n   20 ms windows: n=%d cv=%.2f\n",
		len(r.Window100), r.CV100, len(r.Window20), r.CV20)
}

func sliceRange(xs []float64, lo, hi int) []float64 {
	if lo > len(xs) {
		lo = len(xs)
	}
	if hi > len(xs) {
		hi = len(xs)
	}
	return xs[lo:hi]
}

// cv returns stddev/mean of the series.
func cv(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var m float64
	for _, x := range xs {
		m += x
	}
	m /= float64(len(xs))
	if m == 0 {
		return 0
	}
	var v float64
	for _, x := range xs {
		v += (x - m) * (x - m)
	}
	v /= float64(len(xs))
	return math.Sqrt(v) / m
}

// PredictorResult is the §3 "channel unpredictability" study: normalized
// prediction error of simple predictors on short-window cellular throughput.
type PredictorResult struct {
	Window  time.Duration
	Results []predictor.Result
}

// PredictorStudy evaluates the paper's linear and k-step predictors (plus
// the persistence baseline) on the Figure 4 channel at 20 ms windows.
func PredictorStudy(seed int64) PredictorResult {
	f4 := Figure4(seed)
	series := f4.Window20
	out := PredictorResult{Window: 20 * time.Millisecond}
	preds := []predictor.Predictor{
		predictor.NewLastValue(),
		predictor.NewLinear(10),
		predictor.NewKStep(5, 0.8, 0.3),
	}
	for _, p := range preds {
		out.Results = append(out.Results, predictor.Evaluate(p, series))
	}
	return out
}

// Render prints the predictor study.
func (r PredictorResult) Render() string {
	rows := make([][]string, len(r.Results))
	for i, res := range r.Results {
		rows[i] = []string{res.Name, fmt.Sprintf("%.3f", res.RMSE), fmt.Sprintf("%.3f", res.NRMSE)}
	}
	return fmt.Sprintf("§3 predictor study (%v windows): NRMSE ≈ 1 means the channel resists prediction\n", r.Window) +
		table([]string{"predictor", "RMSE (Mbps)", "NRMSE"}, rows)
}
