package experiments

import (
	"strings"
	"testing"
	"time"

	"repro/internal/cellular"
)

// metroTestOptions is a scaled-down sweep that still exercises every moving
// part: multiple sectors, mobile users handing over mid-run, cross-shard
// detour traffic, and all three protocols.
func metroTestOptions(shards int) MetroOptions {
	return MetroOptions{
		Sectors:       4,
		FlowCounts:    []int{24},
		Duration:      2 * time.Second,
		Shards:        shards,
		Tech:          cellular.TechLTE,
		HandoverScale: 0.02,
		Seed:          7,
		Parallel:      2,
	}
}

// TestMetroExecutorEquivalence is the ISSUE acceptance gate in miniature: the
// rendered metro figures must be byte-identical whether each trial's mesh
// runs on the single-heap reference executor (Shards: 0) or sharded across
// any worker count.
func TestMetroExecutorEquivalence(t *testing.T) {
	ref, err := Metro(metroTestOptions(0))
	if err != nil {
		t.Fatal(err)
	}
	want := ref.Render()
	if len(want) < 100 || !strings.Contains(want, "Verus") {
		t.Fatalf("implausible render:\n%s", want)
	}
	for _, p := range ref.Points {
		if p.Handovers == 0 || p.CrossMsgs == 0 {
			t.Errorf("%s point saw %d handovers / %d cross messages; the trial never exercised the mesh",
				p.Protocol, p.Handovers, p.CrossMsgs)
		}
		if p.AggMbps <= 0 {
			t.Errorf("%s delivered nothing", p.Protocol)
		}
	}
	for _, shards := range []int{1, 4, 8} {
		got, err := Metro(metroTestOptions(shards))
		if err != nil {
			t.Fatal(err)
		}
		if g := got.Render(); g != want {
			t.Errorf("sharded-%d render diverges from single-heap reference:\n--- single\n%s\n--- sharded-%d\n%s",
				shards, want, shards, g)
		}
	}
}

// TestMetroChurnEquivalence extends the executor-equivalence gate to user
// churn: with a third of the users arriving and departing mid-run, the render
// must still be byte-identical across the single-heap reference and every
// shard count, and across serial vs pooled trial scheduling. It also proves
// churn is not a no-op (the render differs from the churn-free run) and that
// zero churn leaves the original schedule untouched (ChurnFrac: 0 matches
// the pre-churn construction bit for bit — guaranteed by gating every churn
// RNG draw on ChurnFrac > 0).
func TestMetroChurnEquivalence(t *testing.T) {
	churnOpts := func(shards, parallel int) MetroOptions {
		o := metroTestOptions(shards)
		o.ChurnFrac = 1.0 / 3.0
		o.Parallel = parallel
		return o
	}
	ref, err := Metro(churnOpts(0, 1))
	if err != nil {
		t.Fatal(err)
	}
	want := ref.Render()
	baseline, err := Metro(metroTestOptions(0))
	if err != nil {
		t.Fatal(err)
	}
	if want == baseline.Render() {
		t.Fatal("churn run renders identically to the churn-free run; churn schedule is not wired")
	}
	for _, p := range ref.Points {
		if p.AggMbps <= 0 {
			t.Errorf("%s delivered nothing under churn", p.Protocol)
		}
	}
	for _, shards := range []int{1, 4, 8} {
		got, err := Metro(churnOpts(shards, 2))
		if err != nil {
			t.Fatal(err)
		}
		if g := got.Render(); g != want {
			t.Errorf("churn sharded-%d render diverges from single-heap serial reference:\n--- single\n%s\n--- sharded-%d\n%s",
				shards, want, shards, g)
		}
	}
}

func TestMetroRejectsBadChurn(t *testing.T) {
	for _, c := range []float64{-0.1, 1.5} {
		o := metroTestOptions(0)
		o.ChurnFrac = c
		if _, err := Metro(o); err == nil {
			t.Errorf("churn fraction %v accepted", c)
		}
	}
}

// TestMetroShardStress is the CI metro-smoke workload: a larger topology run
// sharded at 4 and at 8 so the race detector (CI runs this test under -race)
// sweeps the worker handoff paths under real contention, and serial trial
// scheduling (Parallel: 1) must match the default pool.
func TestMetroShardStress(t *testing.T) {
	opts := MetroOptions{
		Sectors:       8,
		FlowCounts:    []int{48},
		Duration:      2 * time.Second,
		Shards:        4,
		Tech:          cellular.Tech3G,
		HandoverScale: 0.02,
		Seed:          11,
	}
	ref, err := Metro(opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Shards = 8
	opts.Parallel = 1
	got, err := Metro(opts)
	if err != nil {
		t.Fatal(err)
	}
	if ref.Render() != got.Render() {
		t.Error("sharded-4/pooled and sharded-8/serial renders diverge")
	}
}

func TestMetroRejectsBadFlowCounts(t *testing.T) {
	for _, n := range []int{0, -5} {
		if _, err := Metro(MetroOptions{FlowCounts: []int{n}}); err == nil {
			t.Errorf("flow count %d accepted", n)
		}
	}
}

// TestQuickMetroOptionsShape pins the reduced profile the -quick CLI path
// uses so an accidental scale-up does not silently make smoke runs minutes
// long.
func TestQuickMetroOptionsShape(t *testing.T) {
	q := QuickMetroOptions()
	if q.Sectors != 4 || len(q.FlowCounts) != 1 || q.FlowCounts[0] != 64 || q.Duration != 6*time.Second {
		t.Errorf("quick profile drifted: %+v", q)
	}
	d := DefaultMetroOptions()
	if d.Sectors != 8 || len(d.FlowCounts) != 3 {
		t.Errorf("default profile drifted: %+v", d)
	}
}
