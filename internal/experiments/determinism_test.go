package experiments

import (
	"testing"
	"time"
)

// These golden tests lock in the runner's determinism contract for every
// converted harness: at a fixed seed, a serial run (-parallel 1), a parallel
// run (-parallel 8), and a second identically-seeded parallel run must all
// render byte-identical tables. Scheduling order, worker count, and
// completion order must never leak into results.

// goldenCases enumerates every harness that submits trials through
// runner.Pool, each at the smallest scale its clamps allow.
func goldenCases() []struct {
	name   string
	render func(parallel int) string
} {
	macro := func(parallel int) MacroOptions {
		return MacroOptions{Duration: 8 * time.Second, Reps: 2, Seed: 123, Parallel: parallel}
	}
	micro := func(parallel int) MicroOptions {
		return MicroOptions{Duration: 12 * time.Second, Seed: 123, Parallel: parallel}
	}
	return []struct {
		name   string
		render func(parallel int) string
	}{
		{"Figure2", func(p int) string { return Figure2(10*time.Second, 123, p).Render() }},
		{"Figure3", func(p int) string { return Figure3(123, p).Render() }},
		{"Figure8", func(p int) string { return Figure8(macro(p)).Render() }},
		{"Figure9", func(p int) string { return Figure9(macro(p)).Render() }},
		{"Figure10", func(p int) string { return Figure10(macro(p)).Render() }},
		{"Table1", func(p int) string { return Table1(macro(p)).Render() }},
		{"Figure11-I", func(p int) string { return Figure11(micro(p), false).Render() }},
		{"Figure11-II", func(p int) string { return Figure11(micro(p), true).Render() }},
		{"Figure12", func(p int) string { return Figure12(micro(p)).Render() }},
		{"Figure13", func(p int) string { return Figure13(micro(p)).Render() }},
		{"Figure14", func(p int) string { return Figure14(micro(p)).Render() }},
		{"Figure15", func(p int) string { return Figure15(micro(p)).Render() }},
		{"Sensitivity", func(p int) string { return Sensitivity(8*time.Second, 123, p).Render() }},
	}
}

func TestGoldenSerialParallelEquivalence(t *testing.T) {
	for _, tc := range goldenCases() {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			serial := tc.render(1)
			parallel := tc.render(8)
			if parallel != serial {
				t.Errorf("parallel output diverges from serial.\n-- serial --\n%s\n-- parallel 8 --\n%s", serial, parallel)
			}
			again := tc.render(8)
			if again != parallel {
				t.Errorf("two identically-seeded parallel runs diverge.\n-- first --\n%s\n-- second --\n%s", parallel, again)
			}
			if len(serial) < 20 {
				t.Errorf("suspiciously short render: %q", serial)
			}
		})
	}
}

// TestGoldenSeedSensitivity guards against the trivial way the equivalence
// test could pass: harnesses ignoring their seed entirely.
func TestGoldenSeedSensitivity(t *testing.T) {
	a := Figure8(MacroOptions{Duration: 8 * time.Second, Reps: 1, Seed: 1, Parallel: 8}).Render()
	b := Figure8(MacroOptions{Duration: 8 * time.Second, Reps: 1, Seed: 2, Parallel: 8}).Render()
	if a == b {
		t.Error("different seeds rendered identical Figure 8 tables; seed plumbing is broken")
	}
}
