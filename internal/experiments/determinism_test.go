package experiments

import (
	"bufio"
	"crypto/sha256"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
	"time"

	"repro/internal/cellular"
	"repro/internal/faults"
	"repro/internal/obs"
)

// These golden tests lock in the runner's determinism contract for every
// converted harness: at a fixed seed, a serial run (-parallel 1), a parallel
// run (-parallel 8), and a second identically-seeded parallel run must all
// render byte-identical tables. Scheduling order, worker count, and
// completion order must never leak into results.

// goldenCases enumerates every harness that submits trials through
// runner.Pool, each at the smallest scale its clamps allow. A non-nil o is
// attached to every harness — the observability-passivity test uses it to
// prove a live tracer and registry leave each digest untouched.
func goldenCases(o *obs.Observer) []struct {
	name   string
	render func(parallel int) string
} {
	macro := func(parallel int) MacroOptions {
		return MacroOptions{Duration: 8 * time.Second, Reps: 2, Seed: 123, Parallel: parallel, Obs: o}
	}
	micro := func(parallel int) MicroOptions {
		return MicroOptions{Duration: 12 * time.Second, Seed: 123, Parallel: parallel, Obs: o}
	}
	// Fault scenarios run longer than the other golden cases so the timed
	// impairments end well inside the run and the recovery column is real.
	fault := func(name string, parallel int) string {
		res, err := FaultScenario(name, MacroOptions{
			Duration: 30 * time.Second, Reps: 1, Seed: 123, Parallel: parallel, Obs: o,
		})
		if err != nil {
			panic(err)
		}
		return res.Render()
	}
	// The two metro cases pin the sharded multi-cell harness from both sides
	// of its executor split: one runs every trial's mesh sharded across 4
	// workers, the other on the single-heap reference. Their renders are
	// digested independently, and TestMetroExecutorEquivalence additionally
	// proves the executors agree byte-for-byte at equal settings.
	metroRes := func(tech cellular.Tech, shards, parallel int, churn float64) MetroResult {
		res, err := Metro(MetroOptions{
			Sectors: 4, FlowCounts: []int{32}, Duration: 4 * time.Second,
			Shards: shards, Tech: tech, HandoverScale: 0.05, ChurnFrac: churn,
			Seed: 123, Parallel: parallel, Obs: o,
		})
		if err != nil {
			panic(err)
		}
		return res
	}
	metro := func(tech cellular.Tech, shards, parallel int, churn float64) string {
		return metroRes(tech, shards, parallel, churn).Render()
	}
	return []struct {
		name   string
		render func(parallel int) string
	}{
		{"Figure2", func(p int) string { return Figure2(10*time.Second, 123, p).Render() }},
		{"Figure3", func(p int) string { return Figure3(123, p, o).Render() }},
		{"Figure8", func(p int) string { return Figure8(macro(p)).Render() }},
		{"Figure9", func(p int) string { return Figure9(macro(p)).Render() }},
		{"Figure10", func(p int) string { return Figure10(macro(p)).Render() }},
		{"Table1", func(p int) string { return Table1(macro(p)).Render() }},
		{"Figure11-I", func(p int) string { return Figure11(micro(p), false).Render() }},
		{"Figure11-II", func(p int) string { return Figure11(micro(p), true).Render() }},
		{"Figure12", func(p int) string { return Figure12(micro(p)).Render() }},
		{"Figure13", func(p int) string { return Figure13(micro(p)).Render() }},
		{"Figure14", func(p int) string { return Figure14(micro(p)).Render() }},
		{"Figure15", func(p int) string { return Figure15(micro(p)).Render() }},
		{"Sensitivity", func(p int) string { return Sensitivity(8*time.Second, 123, p, o).Render() }},
		{"FaultTunnelOutage", func(p int) string { return fault(faults.ScenarioTunnelOutage, p) }},
		{"FaultHighwayHandover", func(p int) string { return fault(faults.ScenarioHighwayHandover, p) }},
		{"FaultCityLoss", func(p int) string { return fault(faults.ScenarioCityLoss, p) }},
		{"MetroLTE-sharded4", func(p int) string { return metro(cellular.TechLTE, 4, p, 0) }},
		{"Metro3G-singleheap", func(p int) string { return metro(cellular.Tech3G, 0, p, 0) }},
		// PR 7: user churn active — half the users arrive/depart mid-run. The
		// digest locks the churn schedule derivation (draw order, window
		// arithmetic) exactly as the two churn-free metro digests lock the
		// handover schedule.
		{"MetroChurnLTE-sharded4", func(p int) string { return metro(cellular.TechLTE, 4, p, 0.5) }},
		// PR 10: the delay-attribution figure, digested from both executor
		// sides like the throughput/fairness renders above. The viol column
		// golden-pins the accounting identity at zero for every sweep point.
		{"MetroAttribLTE-sharded4", func(p int) string {
			return metroRes(cellular.TechLTE, 4, p, 0).RenderAttribution()
		}},
		{"MetroAttrib3G-singleheap", func(p int) string {
			return metroRes(cellular.Tech3G, 0, p, 0).RenderAttribution()
		}},
	}
}

func TestGoldenSerialParallelEquivalence(t *testing.T) {
	for _, tc := range goldenCases(nil) {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			serial := tc.render(1)
			parallel := tc.render(8)
			if parallel != serial {
				t.Errorf("parallel output diverges from serial.\n-- serial --\n%s\n-- parallel 8 --\n%s", serial, parallel)
			}
			again := tc.render(8)
			if again != parallel {
				t.Errorf("two identically-seeded parallel runs diverge.\n-- first --\n%s\n-- second --\n%s", parallel, again)
			}
			if len(serial) < 20 {
				t.Errorf("suspiciously short render: %q", serial)
			}
		})
	}
}

var updateGolden = flag.Bool("update-golden", false,
	"rewrite testdata/golden_digests.txt from the current implementation")

const goldenDigestPath = "testdata/golden_digests.txt"

// TestGoldenReferenceDigests compares every harness render against SHA-256
// digests committed in-repo. The digests were captured before the PR 2
// hot-path optimizations (spline segment precomputation, sorted-slice knot
// store, 4-ary event heap): those rewrites restructure data layout and
// control flow but must not reorder a single floating-point operation, so
// the rendered tables stay byte-identical forever. A digest mismatch means
// some change silently altered the arithmetic — which the serial-vs-parallel
// equivalence test alone cannot see, since both sides would drift together.
//
// After an *intentional* output change (new harness behavior, changed
// clamps), regenerate with:
//
//	go test ./internal/experiments -run TestGoldenReferenceDigests -update-golden
func TestGoldenReferenceDigests(t *testing.T) {
	got := make(map[string]string)
	renders := make(map[string]string)
	var order []string
	for _, tc := range goldenCases(nil) {
		r := tc.render(8)
		sum := sha256.Sum256([]byte(r))
		got[tc.name] = fmt.Sprintf("%x", sum)
		renders[tc.name] = r
		order = append(order, tc.name)
	}
	if *updateGolden {
		var b strings.Builder
		for _, name := range order {
			fmt.Fprintf(&b, "%s %s\n", name, got[name])
		}
		if err := os.MkdirAll(filepath.Dir(goldenDigestPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenDigestPath, []byte(b.String()), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s with %d digests", goldenDigestPath, len(order))
		return
	}
	want := readGoldenDigests(t)
	var mismatched []string
	for _, name := range order {
		w, ok := want[name]
		if !ok {
			t.Errorf("%s: no committed digest (run with -update-golden to add)", name)
			continue
		}
		if got[name] != w {
			t.Errorf("%s: render digest %s != committed %s — output changed from the pre-optimization reference",
				name, got[name][:16], w[:16])
			mismatched = append(mismatched, name)
		}
	}
	if len(mismatched) > 0 {
		writeGoldenFailureArtifacts(t, mismatched, renders, got, want)
	}
	// Stale entries signal a renamed/removed harness whose digest should go.
	var stale []string
	for name := range want {
		if _, ok := got[name]; !ok {
			stale = append(stale, name)
		}
	}
	sort.Strings(stale)
	for _, name := range stale {
		t.Errorf("%s: committed digest has no matching golden case", name)
	}
}

// goldenFailureDir is where a digest mismatch dumps its evidence: the full
// rendered figure for every mismatching case plus a digest diff. CI uploads
// the directory as an artifact, so a red golden run can be diagnosed without
// reproducing it locally.
const goldenFailureDir = "golden-failure"

func writeGoldenFailureArtifacts(t *testing.T, mismatched []string, renders, got, want map[string]string) {
	t.Helper()
	if err := os.MkdirAll(goldenFailureDir, 0o755); err != nil {
		t.Logf("golden-failure artifacts: %v", err)
		return
	}
	var diff strings.Builder
	for _, name := range mismatched {
		fmt.Fprintf(&diff, "%s\n  committed %s\n  computed  %s\n", name, want[name], got[name])
		file := filepath.Join(goldenFailureDir, name+".txt")
		if err := os.WriteFile(file, []byte(renders[name]), 0o644); err != nil {
			t.Logf("golden-failure artifacts: %v", err)
		}
	}
	if err := os.WriteFile(filepath.Join(goldenFailureDir, "digest-diff.txt"), []byte(diff.String()), 0o644); err != nil {
		t.Logf("golden-failure artifacts: %v", err)
	}
	t.Logf("wrote mismatching renders and digest diff to %s/ for artifact upload", goldenFailureDir)
}

func readGoldenDigests(t *testing.T) map[string]string {
	t.Helper()
	f, err := os.Open(goldenDigestPath)
	if err != nil {
		t.Fatalf("no committed golden digests (%v); run with -update-golden first", err)
	}
	defer f.Close()
	want := make(map[string]string)
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) != 2 {
			continue
		}
		want[fields[0]] = fields[1]
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return want
}

// TestGoldenDigestsWithObservability is the observability-passivity
// contract: with a live tracer AND a live metrics registry attached to every
// harness, all committed digests still match — serial and parallel-8 alike.
// Tracing and metrics must never feed back into protocol arithmetic, read
// the wall clock, or draw randomness; a digest shift here means some
// instrumentation point broke that rule. The test also asserts the observer
// actually saw traffic, so it cannot pass vacuously with unwired hooks.
func TestGoldenDigestsWithObservability(t *testing.T) {
	want := readGoldenDigests(t)
	o := obs.NewObserver(obs.NewTracer(1<<14), obs.NewRegistry())
	for _, tc := range goldenCases(o) {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			w, ok := want[tc.name]
			if !ok {
				t.Fatalf("no committed digest for %s", tc.name)
			}
			serial := fmt.Sprintf("%x", sha256.Sum256([]byte(tc.render(1))))
			parallel := fmt.Sprintf("%x", sha256.Sum256([]byte(tc.render(8))))
			if serial != w {
				t.Errorf("serial render with observability attached digests %s != committed %s — tracing/metrics perturbed the run",
					serial[:16], w[:16])
			}
			if parallel != w {
				t.Errorf("parallel-8 render with observability attached digests %s != committed %s — tracing/metrics perturbed the run",
					parallel[:16], w[:16])
			}
		})
	}
	if o.Tracer().Emitted() == 0 {
		t.Error("tracer saw no events across every golden case; instrumentation is not wired")
	}
	if len(o.Registry().Snapshot()) == 0 {
		t.Error("registry holds no series across every golden case; instrumentation is not wired")
	}
}

// TestGoldenSeedSensitivity guards against the trivial way the equivalence
// test could pass: harnesses ignoring their seed entirely.
func TestGoldenSeedSensitivity(t *testing.T) {
	a := Figure8(MacroOptions{Duration: 8 * time.Second, Reps: 1, Seed: 1, Parallel: 8}).Render()
	b := Figure8(MacroOptions{Duration: 8 * time.Second, Reps: 1, Seed: 2, Parallel: 8}).Render()
	if a == b {
		t.Error("different seeds rendered identical Figure 8 tables; seed plumbing is broken")
	}
}
