// Package experiments contains one harness per table and figure of the
// paper's evaluation (§3, §6, §7). Each harness builds its workload from the
// repository's substrates (cellular channel model, network simulator,
// protocol implementations), runs it, and renders the same rows or series
// the paper reports. DESIGN.md carries the experiment index; EXPERIMENTS.md
// records paper-vs-measured outcomes.
//
// Every harness is deterministic given its options (seeded randomness only)
// and scales down gracefully so the same code backs both the full
// reproduction (cmd/verus-bench) and the quick benchmarks (bench_test.go).
package experiments

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/cc"
	"repro/internal/cellular"
	"repro/internal/faults"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/sprout"
	"repro/internal/tcp"
	"repro/internal/trace"
	"repro/internal/verus"
)

// MTU is the paper's packet size.
const MTU = 1400

// Maker constructs a fresh controller per flow.
type Maker struct {
	Name string
	New  func() cc.Controller
}

// VerusMaker returns a Maker for Verus with the given R.
func VerusMaker(r float64) Maker {
	return Maker{
		Name: fmt.Sprintf("Verus (R=%g)", r),
		New: func() cc.Controller {
			cfg := verus.DefaultConfig()
			cfg.R = r
			return verus.New(cfg)
		},
	}
}

// VerusStaticMaker returns Verus with a frozen delay profile (Fig. 15).
func VerusStaticMaker(r float64) Maker {
	return Maker{
		Name: fmt.Sprintf("Verus (R=%g) static", r),
		New: func() cc.Controller {
			cfg := verus.DefaultConfig()
			cfg.R = r
			cfg.StaticProfile = true
			return verus.New(cfg)
		},
	}
}

// CubicMaker returns a Maker for TCP Cubic.
func CubicMaker() Maker {
	return Maker{Name: "TCP Cubic", New: func() cc.Controller { return tcp.NewCubic() }}
}

// NewRenoMaker returns a Maker for TCP NewReno.
func NewRenoMaker() Maker {
	return Maker{Name: "TCP NewReno", New: func() cc.Controller { return tcp.NewNewReno() }}
}

// VegasMaker returns a Maker for TCP Vegas.
func VegasMaker() Maker {
	return Maker{Name: "TCP Vegas", New: func() cc.Controller { return tcp.NewVegas() }}
}

// SproutMaker returns a Maker for the Sprout-like forecaster.
func SproutMaker() Maker {
	return Maker{Name: "Sprout", New: func() cc.Controller { return sprout.New(sprout.DefaultConfig()) }}
}

// FlowResult summarizes one flow of one run.
type FlowResult struct {
	Flow      int
	Mbps      float64
	DelayMean float64 // seconds, one-way
	DelayP95  float64
	Losses    int64
	Timeouts  int64
}

// RunResult summarizes one simulation run.
type RunResult struct {
	Flows []FlowResult
	// PerSecondMbps[i] is flow i's throughput in 1 s windows.
	PerSecondMbps [][]float64
	// PerSecondDelay[i] is flow i's mean delay per 1 s window (seconds).
	PerSecondDelay [][]float64
	// Faults holds the fault-injection counters when the run carried a
	// fault plan; nil otherwise.
	Faults *faults.Counters
}

// MeanMbps returns the mean across flows of per-flow throughput.
func (r RunResult) MeanMbps() float64 {
	if len(r.Flows) == 0 {
		return 0
	}
	var s float64
	for _, f := range r.Flows {
		s += f.Mbps
	}
	return s / float64(len(r.Flows))
}

// MeanDelay returns the mean across flows of per-flow mean one-way delay.
func (r RunResult) MeanDelay() float64 {
	if len(r.Flows) == 0 {
		return 0
	}
	var s float64
	for _, f := range r.Flows {
		s += f.DelayMean
	}
	return s / float64(len(r.Flows))
}

// TraceRun describes a trace-driven dumbbell run: n identical flows of one
// protocol over a shared queue drained by a recorded channel.
type TraceRun struct {
	Trace    *trace.Trace
	Maker    Maker
	Flows    int
	Duration time.Duration
	// QueueBytes sizes a DropTail buffer; ignored when UseRED is set.
	QueueBytes int
	// UseRED selects the paper's OPNET RED configuration (3/9 Mbit, 10%).
	UseRED bool
	// BaseOneWay is the propagation delay each way (default 10 ms).
	BaseOneWay time.Duration
	Seed       int64
	// Faults, when non-nil, wraps the bottleneck link in the fault-injection
	// decorator (internal/faults), seeded from Seed. Nil leaves the link
	// untouched — the exact pre-fault packet arithmetic, which is what keeps
	// the committed golden digests stable.
	Faults *faults.Plan
	// Obs, when non-nil, attaches the observability layer: the bottleneck
	// link traces the packet life cycle, fault windows emit begin/end events,
	// and observable controllers register their counters — all labeled with
	// run=Seed, flow=index. Nil keeps every instrumentation point on its
	// zero-cost fast path.
	Obs *obs.Observer
}

// Run executes the trace-driven dumbbell and collects per-flow results.
func (tr TraceRun) Run() RunResult {
	if tr.BaseOneWay == 0 {
		tr.BaseOneWay = 10 * time.Millisecond
	}
	if tr.QueueBytes == 0 {
		tr.QueueBytes = 1_500_000
	}
	sim := netsim.NewSim()
	specs := make([]netsim.FlowSpec, tr.Flows)
	for i := range specs {
		ctrl := tr.Maker.New()
		observe(tr.Obs, ctrl, tr.Seed, i)
		specs[i] = netsim.FlowSpec{Ctrl: ctrl, AckDelay: tr.BaseOneWay}
	}
	mkInner := func(dst netsim.Receiver) netsim.Link {
		var q netsim.Queue
		if tr.UseRED {
			q = netsim.PaperRED(tr.Seed)
		} else {
			q = netsim.NewDropTail(tr.QueueBytes)
		}
		l := netsim.NewTraceLink(sim, q, tr.Trace, tr.BaseOneWay, dst, true, tr.Seed+1)
		l.Instrument(tr.Obs, tr.Seed)
		return l
	}
	var flink *faults.Link
	d := netsim.NewDumbbell(sim, func(dst netsim.Receiver) netsim.Link {
		if tr.Faults == nil {
			return mkInner(dst)
		}
		flink = faults.Wrap(sim, tr.Faults, tr.Seed+2, dst, mkInner)
		if tr.Obs != nil {
			flink.Instrument(tr.Obs, tr.Seed)
		}
		return flink
	}, MTU, specs)
	instrumentSinks(d, tr.Obs, tr.Seed)
	d.Run(tr.Duration)
	res := collect(d, tr.Duration)
	if flink != nil {
		c := flink.Counters
		res.Faults = &c
	}
	return res
}

// FixedRun describes a fixed-rate dumbbell run (the §7 micro-evaluations).
type FixedRun struct {
	RateMbps   float64
	Maker      Maker
	Flows      int
	Duration   time.Duration
	QueueBytes int
	BaseOneWay time.Duration
	// Stagger starts flow i at i×Stagger.
	Stagger time.Duration
	// AckDelays overrides per-flow reverse delays (Fig. 13's RTT mix).
	AckDelays []time.Duration
	Seed      int64
	// Mutate, when non-nil, is invoked every MutateEvery with the link and
	// an iteration counter (Fig. 11's 5-second parameter re-draws).
	Mutate      func(l *netsim.FixedLink, flows []*netsim.Source, iter int)
	MutateEvery time.Duration
	// ExtraMakers appends differently-controlled flows after the first
	// Flows (Fig. 14's Verus-vs-Cubic mix); they continue the stagger.
	ExtraMakers []Maker
	// Obs attaches the observability layer, as in TraceRun.
	Obs *obs.Observer
}

// Run executes the fixed-rate dumbbell.
func (fr FixedRun) Run() RunResult {
	if fr.BaseOneWay == 0 {
		fr.BaseOneWay = 10 * time.Millisecond
	}
	if fr.QueueBytes == 0 {
		fr.QueueBytes = 1_000_000
	}
	sim := netsim.NewSim()
	var specs []netsim.FlowSpec
	add := func(m Maker, idx int) {
		ackDelay := fr.BaseOneWay
		if idx < len(fr.AckDelays) {
			ackDelay = fr.AckDelays[idx]
		}
		ctrl := m.New()
		observe(fr.Obs, ctrl, fr.Seed, idx)
		specs = append(specs, netsim.FlowSpec{
			Ctrl:     ctrl,
			AckDelay: ackDelay,
			Start:    time.Duration(idx) * fr.Stagger,
		})
	}
	idx := 0
	for i := 0; i < fr.Flows; i++ {
		add(fr.Maker, idx)
		idx++
	}
	for _, m := range fr.ExtraMakers {
		add(m, idx)
		idx++
	}
	var link *netsim.FixedLink
	d := netsim.NewDumbbell(sim, func(dst netsim.Receiver) netsim.Link {
		link = netsim.NewFixedLink(sim, netsim.NewDropTail(fr.QueueBytes), fr.RateMbps, fr.BaseOneWay, dst, fr.Seed)
		link.Instrument(fr.Obs, fr.Seed)
		return link
	}, MTU, specs)
	instrumentSinks(d, fr.Obs, fr.Seed)
	if fr.Mutate != nil && fr.MutateEvery > 0 {
		iter := 0
		sim.Every(fr.MutateEvery, func() {
			iter++
			fr.Mutate(link, d.Sources, iter)
		})
	}
	d.Run(fr.Duration)
	return collect(d, fr.Duration)
}

// observe attaches an observer to a controller when both sides agree: the
// observer is live and the controller implements obs.Observable (Verus does;
// the TCP and Sprout baselines run uninstrumented).
func observe(o *obs.Observer, ctrl cc.Controller, run int64, flow int) {
	if o == nil {
		return
	}
	if ob, ok := ctrl.(obs.Observable); ok {
		ob.Observe(o, run, flow)
	}
}

// instrumentSinks attaches the observer to every flow sink of a dumbbell so
// deliveries emit net.attrib decomposition events. Safe with a nil observer:
// the sink attachment stays nil and the per-delivery path keeps its single
// branch.
func instrumentSinks(d *netsim.Dumbbell, o *obs.Observer, run int64) {
	if o == nil {
		return
	}
	for _, s := range d.Sources {
		if s != nil {
			s.Instrument(o, run)
		}
	}
	for _, c := range d.CBRs {
		if c != nil {
			c.Instrument(o, run)
		}
	}
}

func collect(d *netsim.Dumbbell, horizon time.Duration) RunResult {
	var out RunResult
	for i, m := range d.Metrics {
		out.Flows = append(out.Flows, FlowResult{
			Flow:      i,
			Mbps:      m.MeanMbps(horizon),
			DelayMean: m.Delay.Mean(),
			DelayP95:  m.Delay.Percentile(95),
			Losses:    m.LossDetected,
			Timeouts:  m.Timeouts,
		})
		out.PerSecondMbps = append(out.PerSecondMbps, m.Throughput.Mbps())
		out.PerSecondDelay = append(out.PerSecondDelay, m.DelayOverTime.Means())
	}
	return out
}

// cellTrace generates a shared-cell capacity trace for the given technology
// and scenario at totalMbps aggregate capacity.
func cellTrace(tech cellular.Tech, sc cellular.Scenario, totalMbps float64, d time.Duration, seed int64) *trace.Trace {
	m := cellular.NewModel(cellular.Config{
		Tech:     tech,
		Operator: cellular.OperatorB,
		Scenario: sc,
		MeanMbps: totalMbps / sc.RateFactor, // cancel the scenario factor: totalMbps is the target
		Seed:     seed,
	})
	return m.Trace(d)
}

// table renders rows of label → columns as fixed-width text.
func table(header []string, rows [][]string) string {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, r := range rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cols []string) {
		for i, c := range cols {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(header)
	for _, r := range rows {
		writeRow(r)
	}
	return b.String()
}
