package runner

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

func TestDeriveSeedDeterministic(t *testing.T) {
	for _, base := range []int64{0, 1, 42, -7, 1 << 40} {
		for key := int64(0); key < 100; key++ {
			a := DeriveSeed(base, key)
			b := DeriveSeed(base, key)
			if a != b {
				t.Fatalf("DeriveSeed(%d,%d) not stable: %d vs %d", base, key, a, b)
			}
		}
	}
}

func TestDeriveSeedSpreadsNearbyKeys(t *testing.T) {
	// Sequential keys (rep 0,1,2,...) must not produce sequential seeds —
	// that is the whole point of the splitmix finalizer.
	seen := map[int64]bool{}
	for key := int64(0); key < 1000; key++ {
		s := DeriveSeed(42, key)
		if seen[s] {
			t.Fatalf("seed collision at key %d", key)
		}
		seen[s] = true
		if key > 0 && s == DeriveSeed(42, key-1)+1 {
			t.Fatalf("seeds for keys %d,%d are sequential", key-1, key)
		}
	}
	// Distinct bases must decorrelate too.
	if DeriveSeed(1, 5) == DeriveSeed(2, 5) {
		t.Fatal("different bases produced the same seed")
	}
}

func TestMapOrderAndSeeds(t *testing.T) {
	for _, workers := range []int{1, 2, 8, 64} {
		p := New(workers)
		jobs := make([]Job[string], 100)
		for i := range jobs {
			i := i
			jobs[i] = Job[string]{
				Key: int64(i * 3),
				Run: func(seed int64) string { return fmt.Sprintf("%d:%d", i, seed) },
			}
		}
		got := Map(p, 99, jobs)
		if len(got) != len(jobs) {
			t.Fatalf("workers=%d: got %d results", workers, len(got))
		}
		for i, g := range got {
			want := fmt.Sprintf("%d:%d", i, DeriveSeed(99, int64(i*3)))
			if g != want {
				t.Fatalf("workers=%d: result[%d] = %q, want %q", workers, i, g, want)
			}
		}
	}
}

func TestMapSerialParallelEquivalence(t *testing.T) {
	// A stateful trial (its own RNG seeded from the derived seed) must give
	// identical results at any worker count.
	mk := func(workers int) []float64 {
		jobs := make([]Job[float64], 50)
		for i := range jobs {
			jobs[i] = Job[float64]{Key: int64(i), Run: func(seed int64) float64 {
				rng := rand.New(rand.NewSource(seed))
				var s float64
				for k := 0; k < 1000; k++ {
					s += rng.Float64()
				}
				return s
			}}
		}
		return Map(New(workers), 7, jobs)
	}
	serial := mk(1)
	for _, w := range []int{2, 4, 16} {
		par := mk(w)
		for i := range serial {
			if par[i] != serial[i] {
				t.Fatalf("workers=%d: result[%d] = %v, want %v", w, i, par[i], serial[i])
			}
		}
	}
}

func TestMapEmptyAndSingle(t *testing.T) {
	p := New(4)
	if got := Map[int](p, 1, nil); len(got) != 0 {
		t.Fatalf("empty jobs gave %d results", len(got))
	}
	got := Map(p, 1, []Job[int]{{Key: 9, Run: func(seed int64) int { return int(seed) }}})
	if got[0] != int(DeriveSeed(1, 9)) {
		t.Fatalf("single job seed = %d, want %d", got[0], DeriveSeed(1, 9))
	}
	if g := Go(p, 1, 9, func(seed int64) int { return int(seed) }); g != got[0] {
		t.Fatalf("Go = %d, want %d", g, got[0])
	}
}

func TestMapRunsEachJobOnce(t *testing.T) {
	var mu sync.Mutex
	counts := make([]int, 200)
	jobs := make([]Job[int], len(counts))
	for i := range jobs {
		i := i
		jobs[i] = Job[int]{Key: int64(i), Run: func(int64) int {
			mu.Lock()
			counts[i]++
			mu.Unlock()
			return i
		}}
	}
	Map(New(8), 0, jobs)
	for i, c := range counts {
		if c != 1 {
			t.Fatalf("job %d ran %d times", i, c)
		}
	}
}

func TestMapPropagatesPanic(t *testing.T) {
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("panic in a job did not propagate")
		}
	}()
	jobs := make([]Job[int], 16)
	for i := range jobs {
		i := i
		jobs[i] = Job[int]{Key: int64(i), Run: func(int64) int {
			if i == 7 {
				panic("boom")
			}
			return i
		}}
	}
	Map(New(4), 0, jobs)
}

func TestPoolDefaults(t *testing.T) {
	if New(0).Workers() < 1 {
		t.Fatal("New(0) must select at least one worker")
	}
	if New(-3).Workers() < 1 {
		t.Fatal("negative worker count must clamp")
	}
	if New(5).Workers() != 5 {
		t.Fatal("explicit worker count ignored")
	}
	var p *Pool
	if p.Workers() < 1 {
		t.Fatal("nil pool must still report a usable worker count")
	}
}
