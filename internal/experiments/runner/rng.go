package runner

import "math/rand"

// NewRand returns the canonical trial RNG: a *rand.Rand that is a pure
// function of the given seed, which callers obtain from DeriveSeed (Map and
// Go pass it to every Job.Run).
//
// This constructor is the sanctioned path for randomness in the experiment
// harnesses: the noglobalrand analyzer forbids direct math/rand imports in
// internal/experiments outside this package, so every harness RNG is
// auditable here and in the seed-derivation scheme above it. The underlying
// generator is math/rand's seeded source — byte-compatible with the
// rand.New(rand.NewSource(seed)) calls it replaces, which is what keeps the
// golden digests of DESIGN.md §8 unchanged.
func NewRand(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}
