// Package runner executes independent experiment trials on a pool of worker
// goroutines while preserving deterministic results.
//
// The contract every harness in internal/experiments relies on:
//
//   - Each trial receives a seed derived purely from (baseSeed, Job.Key) via
//     a splitmix64 finalizer — workers never share RNG state, so the seed a
//     trial sees is independent of scheduling order and worker count.
//   - Results are returned in input order regardless of completion order.
//   - A trial runs start-to-finish on a single worker goroutine. Each trial
//     must build its own netsim.Sim (the simulator is single-goroutine); the
//     pool never migrates or shares a trial across workers.
//
// Together these make a Pool of any size produce byte-identical harness
// output: Map with 1 worker and Map with N workers render the same tables.
package runner

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Pool sizes the worker set used by Map. The zero value and New(0) both run
// GOMAXPROCS workers; New(1) reproduces the serial path exactly.
type Pool struct {
	workers int
}

// New returns a pool of n workers. n <= 0 selects GOMAXPROCS.
func New(n int) *Pool {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	return &Pool{workers: n}
}

// Workers reports the pool's worker count.
func (p *Pool) Workers() int {
	if p == nil || p.workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return p.workers
}

// Job is one independent trial. Key feeds seed derivation: the same key
// always yields the same seed, so a harness's seed plan is stable no matter
// how trials are batched. Trials that need independent randomness use
// distinct keys; trials that must replay an identical random environment
// (e.g. every protocol facing the same Fig. 11 parameter path) share one.
type Job[T any] struct {
	// Key identifies the trial within its harness (e.g. an encoding of
	// cell/protocol/repetition indices).
	Key int64
	// Run executes the trial with its derived seed and returns its result.
	Run func(seed int64) T
}

// Map runs all jobs on the pool's workers and returns their results in input
// order. Each job's Run is invoked exactly once, on a single goroutine, with
// DeriveSeed(baseSeed, job.Key). A panic in any job is re-raised on the
// caller's goroutine after the remaining workers drain.
func Map[T any](p *Pool, baseSeed int64, jobs []Job[T]) []T {
	out := make([]T, len(jobs))
	n := p.Workers()
	if n > len(jobs) {
		n = len(jobs)
	}
	if n <= 1 {
		for i, j := range jobs {
			out[i] = j.Run(DeriveSeed(baseSeed, j.Key))
		}
		return out
	}
	var next atomic.Int64
	next.Store(-1)
	var wg sync.WaitGroup
	var panicOnce sync.Once
	var panicked any
	for w := 0; w < n; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panicOnce.Do(func() { panicked = r })
				}
			}()
			for {
				i := next.Add(1)
				if i >= int64(len(jobs)) {
					return
				}
				out[i] = jobs[i].Run(DeriveSeed(baseSeed, jobs[i].Key))
			}
		}()
	}
	wg.Wait()
	if panicked != nil {
		panic(panicked)
	}
	return out
}

// Go runs a single trial through the pool's seed-derivation scheme. It is
// the one-job case of Map, used by harnesses whose workload is a single
// simulation so every experiment shares the same seeding contract.
func Go[T any](p *Pool, baseSeed, key int64, run func(seed int64) T) T {
	return Map(p, baseSeed, []Job[T]{{Key: key, Run: run}})[0]
}

// DeriveSeed maps (base, key) to a trial seed with a splitmix64-style
// finalizer. The mixing guarantees that nearby keys (rep 0, 1, 2, ...) yield
// statistically unrelated seeds while remaining a pure function of the
// inputs — the root of the pool's determinism contract.
func DeriveSeed(base, key int64) int64 {
	z := uint64(base) + 0x9E3779B97F4A7C15*(uint64(key)+1)
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return int64(z ^ (z >> 31))
}
