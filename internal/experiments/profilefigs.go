package experiments

import (
	"fmt"
	"time"

	"repro/internal/cc"
	"repro/internal/cellular"
	"repro/internal/experiments/runner"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/verus"
)

// Figure5Result is an example delay profile (paper Fig. 5): the recorded
// (window, delay) points and the interpolated curve.
type Figure5Result struct {
	Windows []int
	Points  []float64 // seconds, per window point
	Curve   []float64 // seconds, sampled at integer windows 1..len(Curve)
}

// Figure5 runs one Verus flow on a 3G channel for 60 s and snapshots its
// delay profile (long enough for slow-start pollution to age out).
func Figure5(seed int64) Figure5Result {
	tr := cellTrace(cellular.Tech3G, cellular.CampusStationary, 10, 60*time.Second, seed)
	sim := netsim.NewSim()
	v := verus.New(verus.DefaultConfig())
	d := netsim.NewDumbbell(sim, func(dst netsim.Receiver) netsim.Link {
		return netsim.NewTraceLink(sim, netsim.NewDropTail(2_000_000), tr, 10*time.Millisecond, dst, true, seed)
	}, MTU, []netsim.FlowSpec{{Ctrl: v, AckDelay: 10 * time.Millisecond}})
	d.Run(60 * time.Second)
	wins, pts, curve := v.ProfileSnapshot()
	return Figure5Result{Windows: wins, Points: pts, Curve: curve}
}

// Render prints a sketch of the profile.
func (r Figure5Result) Render() string {
	s := fmt.Sprintf("Figure 5: Verus delay profile (%d points, curve to W=%d)\n", len(r.Windows), len(r.Curve))
	step := len(r.Curve)/12 + 1
	for w := 0; w < len(r.Curve); w += step {
		s += fmt.Sprintf("  W=%4d  D=%6.1f ms\n", w+1, r.Curve[w]*1000)
	}
	return s
}

// Figure7Result captures the delay-profile evolution (paper Fig. 7): the
// channel's 1-second throughput and profile snapshots taken every 5 s.
type Figure7Result struct {
	// ChannelMbps is the trace capacity per second.
	ChannelMbps []float64
	// SnapshotAt are the snapshot times.
	SnapshotAt []time.Duration
	// Curves[i] is the interpolated profile at SnapshotAt[i].
	Curves [][]float64
	// Steepness[i] is the mean delay slope (ms per window unit) of curve i —
	// the paper's observation is "the smaller the available throughput is,
	// the steeper the delay profile becomes".
	Steepness []float64
}

// Figure7 runs one Verus flow over an LTE channel for the given duration
// (paper: 200 s) snapshotting the profile every 5 s.
func Figure7(d time.Duration, seed int64) Figure7Result {
	m := cellular.NewModel(cellular.Config{
		Tech: cellular.TechLTE, Operator: cellular.OperatorB,
		Scenario: cellular.CityDriving, MeanMbps: 20, Seed: seed,
	})
	tr := m.Trace(d)
	sim := netsim.NewSim()
	v := verus.New(verus.DefaultConfig())
	db := netsim.NewDumbbell(sim, func(dst netsim.Receiver) netsim.Link {
		return netsim.NewTraceLink(sim, netsim.NewDropTail(2_000_000), tr, 10*time.Millisecond, dst, false, seed)
	}, MTU, []netsim.FlowSpec{{Ctrl: v, AckDelay: 10 * time.Millisecond}})

	out := Figure7Result{ChannelMbps: tr.WindowedMbps(time.Second)}
	sim.Every(5*time.Second, func() {
		_, _, curve := v.ProfileSnapshot()
		if curve == nil {
			return
		}
		out.SnapshotAt = append(out.SnapshotAt, sim.Now())
		cp := make([]float64, len(curve))
		copy(cp, curve)
		out.Curves = append(out.Curves, cp)
		out.Steepness = append(out.Steepness, steepness(cp))
	})
	db.Run(d)
	return out
}

// steepness returns the mean positive slope of the curve in ms per window.
func steepness(curve []float64) float64 {
	if len(curve) < 2 {
		return 0
	}
	return (curve[len(curve)-1] - curve[0]) * 1000 / float64(len(curve)-1)
}

// Render prints the evolution summary.
func (r Figure7Result) Render() string {
	s := fmt.Sprintf("Figure 7: delay-profile evolution (%d snapshots)\n", len(r.Curves))
	for i, at := range r.SnapshotAt {
		sec := int(at / time.Second)
		capMbps := 0.0
		if sec < len(r.ChannelMbps) {
			capMbps = r.ChannelMbps[sec]
		}
		if i%4 == 0 {
			s += fmt.Sprintf("  t=%4ds channel=%5.1f Mbps curve: %d windows, slope %.2f ms/W\n",
				sec, capMbps, len(r.Curves[i]), r.Steepness[i])
		}
	}
	return s
}

// SensitivityResult is the §5.3 parameter study: throughput and delay as
// functions of ε, the profile update interval, and the δ pair.
type SensitivityResult struct {
	Rows []SensitivityRow
}

// SensitivityRow is one parameter setting's outcome.
type SensitivityRow struct {
	Param   string
	Value   string
	Mbps    float64
	DelayMs float64
}

// Sensitivity sweeps ε ∈ {2,5,10,20,50 ms}, update interval ∈
// {0.25,0.5,1,2,5 s}, and δ pairs, one Verus flow on a 3G channel each.
// Every parameter setting is one trial on a pool of `parallel` workers
// (0 = GOMAXPROCS, 1 = serial); all trials share one key so each setting
// faces the identical channel, as the sweep requires. A non-nil o attaches
// the observability layer to every trial.
func Sensitivity(d time.Duration, seed int64, parallel int, o *obs.Observer) SensitivityResult {
	// One trace, generated from the shared trial seed, drives every setting.
	// Trials only read it, so sharing it across workers is safe.
	tr := cellTrace(cellular.Tech3G, cellular.CampusPedestrian, 10, d, runner.DeriveSeed(seed, 0))
	type setting struct {
		param, value string
		mut          func(*verus.Config)
	}
	var settings []setting
	for _, eps := range []time.Duration{2, 5, 10, 20, 50} {
		e := eps * time.Millisecond
		settings = append(settings, setting{"epsilon", e.String(),
			func(c *verus.Config) { c.Epoch = e }})
	}
	for _, ui := range []time.Duration{250, 500, 1000, 2000, 5000} {
		u := ui * time.Millisecond
		settings = append(settings, setting{"update-interval", u.String(),
			func(c *verus.Config) { c.ProfileUpdateEvery = u }})
	}
	for _, dd := range [][2]time.Duration{
		{time.Millisecond, time.Millisecond},
		{time.Millisecond, 2 * time.Millisecond},
		{2 * time.Millisecond, 2 * time.Millisecond},
		{time.Millisecond, 4 * time.Millisecond},
	} {
		d1, d2 := dd[0], dd[1]
		settings = append(settings, setting{"delta", fmt.Sprintf("δ1=%v δ2=%v", d1, d2),
			func(c *verus.Config) { c.Delta1, c.Delta2 = d1, d2 }})
	}
	var jobs []runner.Job[SensitivityRow]
	for _, st := range settings {
		st := st
		jobs = append(jobs, runner.Job[SensitivityRow]{
			Key: 0,
			Run: func(trialSeed int64) SensitivityRow {
				cfg := verus.DefaultConfig()
				st.mut(&cfg)
				mk := Maker{Name: "verus", New: func() cc.Controller { return verus.New(cfg) }}
				res := TraceRun{Trace: tr, Maker: mk, Flows: 1, Duration: d,
					QueueBytes: 2_000_000, Seed: trialSeed, Obs: o}.Run()
				return SensitivityRow{st.param, st.value, res.MeanMbps(), res.MeanDelay() * 1000}
			},
		})
	}
	return SensitivityResult{Rows: runner.Map(runner.New(parallel), seed, jobs)}
}

// Render prints the sensitivity table.
func (r SensitivityResult) Render() string {
	var rows [][]string
	for _, row := range r.Rows {
		rows = append(rows, []string{
			row.Param, row.Value,
			fmt.Sprintf("%.2f", row.Mbps), fmt.Sprintf("%.0f", row.DelayMs),
		})
	}
	return "§5.3 parameter sensitivity (1 Verus flow, 3G pedestrian channel)\n" +
		table([]string{"parameter", "value", "tput (Mbps)", "delay (ms)"}, rows)
}
