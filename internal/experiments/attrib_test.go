package experiments

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/stats"
)

// Attribution contract of ISSUE 10: the delay-attribution figure is
// executor-independent (single-heap ≡ sharded-k, serial ≡ pooled trials),
// the accounting identity holds at metro scale — components sum exactly to
// the measured one-way delay for every delivered packet, across handover
// stalls and cross-shard detours — and the aggregates survive
// checkpoint/resume byte-identically.

func TestMetroAttributionExecutorEquivalence(t *testing.T) {
	ref, err := Metro(metroTestOptions(0))
	if err != nil {
		t.Fatal(err)
	}
	want := ref.RenderAttribution()
	if len(want) < 100 || !strings.Contains(want, "detour") {
		t.Fatalf("implausible attribution render:\n%s", want)
	}
	for _, p := range ref.Points {
		if p.Attrib.Count == 0 {
			t.Fatalf("%s point recorded no deliveries; attribution unwired", p.Protocol)
		}
		if p.Attrib.Violations != 0 || p.Attrib.Negatives != 0 {
			t.Errorf("%s point breaks the accounting identity: %d violations, %d negatives over %d packets",
				p.Protocol, p.Attrib.Violations, p.Attrib.Negatives, p.Attrib.Count)
		}
		var sum int64
		for c := 0; c < stats.NumDelayComps; c++ {
			sum += p.Attrib.CompNs[c]
		}
		if sum != p.Attrib.TotalNs {
			t.Errorf("%s point: component sum %d ns != total %d ns", p.Protocol, sum, p.Attrib.TotalNs)
		}
		// Handovers are active at this scale, so the fault-hold and detour
		// components must both be charged — the stamps this figure exists
		// to surface.
		if p.Attrib.CompNs[stats.DelayFaultHold] == 0 || p.Attrib.CompNs[stats.DelayDetour] == 0 {
			t.Errorf("%s point never charged fault/detour time (%v) despite %d handovers",
				p.Protocol, p.Attrib.CompNs, p.Handovers)
		}
	}
	for _, shards := range []int{1, 4, 8} {
		got, err := Metro(metroTestOptions(shards))
		if err != nil {
			t.Fatal(err)
		}
		if g := got.RenderAttribution(); g != want {
			t.Errorf("sharded-%d attribution render diverges from single-heap reference:\n--- single\n%s\n--- sharded-%d\n%s",
				shards, want, shards, g)
		}
	}
}

func TestMetroAttributionSurvivesCheckpointResume(t *testing.T) {
	opts := ckptOpts(4, 0)
	straight, err := Metro(opts)
	if err != nil {
		t.Fatal(err)
	}
	want := straight.RenderAttribution()

	dir := t.TempDir()
	var copies []string
	co := opts
	co.CheckpointPath = filepath.Join(dir, "snap.bin")
	co.CheckpointEvery = 500 * time.Millisecond
	co.CheckpointHook = func(ordinal int, path string) {
		b, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("checkpoint %d unreadable: %v", ordinal, err)
		}
		cp := filepath.Join(dir, fmt.Sprintf("snap-%03d.bin", ordinal))
		if err := os.WriteFile(cp, b, 0o644); err != nil {
			t.Fatal(err)
		}
		copies = append(copies, cp)
	}
	ckpt, err := Metro(co)
	if err != nil {
		t.Fatalf("checkpointed sweep: %v", err)
	}
	if g := ckpt.RenderAttribution(); g != want {
		t.Errorf("checkpointing alone perturbed the attribution render:\n--- straight\n%s\n--- checkpointed\n%s", want, g)
	}
	if len(copies) == 0 {
		t.Fatal("no checkpoints written; resume check vacuous")
	}
	for _, i := range []int{0, len(copies) / 2, len(copies) - 1} {
		rs := opts
		rs.ResumeFrom = copies[i]
		got, err := Metro(rs)
		if err != nil {
			t.Fatalf("resume from %s: %v", copies[i], err)
		}
		if g := got.RenderAttribution(); g != want {
			t.Errorf("resume from checkpoint %d diverges:\n--- straight\n%s\n--- resumed\n%s", i, want, g)
		}
	}
}
