package experiments

import (
	"fmt"
	"math"
	"time"

	"repro/internal/cc"
	"repro/internal/cellular"
	"repro/internal/experiments/runner"
	"repro/internal/faults"
	"repro/internal/verus"
)

// This harness is the ISSUE 4 chaos evaluation: each canned fault plan
// (internal/faults) is run against the hardened Verus, stock Verus, and the
// TCP baselines over a trace-driven cell, and the table reports what the
// outage/handover/loss train cost each protocol and how quickly it came
// back. Trials run through runner.Map like every other harness, so serial
// and parallel renders are byte-identical.

// VerusResilientMaker returns Verus with the §4.2 recovery extensions
// (timeout-epoch ack filtering and post-outage profile relearning) enabled.
func VerusResilientMaker(r float64) Maker {
	return Maker{
		Name: fmt.Sprintf("Verus (R=%g) resilient", r),
		New: func() cc.Controller {
			cfg := verus.ResilientConfig()
			cfg.R = r
			return verus.New(cfg)
		},
	}
}

// faultProtocols are the chaos contenders: the recovery-enabled Verus, the
// stock Verus as its ablation, and the loss-based baselines.
func faultProtocols() []Maker {
	return []Maker{VerusResilientMaker(2), VerusMaker(2), CubicMaker(), NewRenoMaker()}
}

// faultMobility maps a fault scenario to the cellular mobility pattern that
// produces its underlying capacity trace.
func faultMobility(name string) cellular.Scenario {
	if name == faults.ScenarioHighwayHandover {
		return cellular.HighwayDriving
	}
	return cellular.CityDriving
}

// FaultRow is one protocol's outcome under one fault plan.
type FaultRow struct {
	Protocol  string
	Mbps      float64
	DelayMean float64 // seconds, one-way
	Timeouts  int64   // summed across flows and reps
	// RecoverySec is the worst-flow time from the end of the last timed
	// impairment to the first 1 s window with nonzero delivery, averaged
	// across reps. Negative means some flow never resumed; zero with no
	// timed impairments means "not applicable".
	RecoverySec float64
	// Counters totals the fault layer's ledger across reps.
	Counters faults.Counters
}

// FaultScenarioResult is the chaos table for one canned scenario.
type FaultScenarioResult struct {
	Scenario string
	Duration time.Duration
	// LastImpairment is when the last timed event ends (0 for plans that
	// are purely stochastic).
	LastImpairment time.Duration
	Rows           []FaultRow
}

// FaultScenario runs one canned fault plan against the chaos contenders.
func FaultScenario(name string, opts MacroOptions) (FaultScenarioResult, error) {
	plan, err := faults.ByName(name, opts.Duration)
	if err != nil {
		return FaultScenarioResult{}, err
	}
	out := FaultScenarioResult{
		Scenario:       name,
		Duration:       opts.Duration,
		LastImpairment: plan.LastImpairmentEnd(),
	}
	mobility := faultMobility(name)
	protos := faultProtocols()
	var jobs []runner.Job[RunResult]
	for pi, mk := range protos {
		for rep := 0; rep < opts.Reps; rep++ {
			mk := mk
			jobs = append(jobs, runner.Job[RunResult]{
				Key: int64(100*pi + rep),
				Run: func(seed int64) RunResult {
					tr := cellTrace(cellular.Tech3G, mobility, 25, opts.Duration, seed)
					return TraceRun{
						Trace: tr, Maker: mk, Flows: 4,
						Duration: opts.Duration, Seed: seed, Faults: plan,
						Obs: opts.Obs,
					}.Run()
				},
			})
		}
	}
	results := runner.Map(opts.pool(), opts.Seed, jobs)
	k := 0
	for _, mk := range protos {
		row := FaultRow{Protocol: mk.Name}
		var recSum float64
		recovered := true
		for rep := 0; rep < opts.Reps; rep++ {
			res := results[k]
			k++
			row.Mbps += res.MeanMbps()
			row.DelayMean += res.MeanDelay()
			for _, f := range res.Flows {
				row.Timeouts += f.Timeouts
			}
			if res.Faults != nil {
				row.Counters.Add(*res.Faults)
			}
			if rec := recoveryAfter(res, out.LastImpairment); rec < 0 {
				recovered = false
			} else {
				recSum += rec
			}
		}
		n := float64(opts.Reps)
		row.Mbps /= n
		row.DelayMean /= n
		if recovered {
			row.RecoverySec = recSum / n
		} else {
			row.RecoverySec = -1
		}
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

// recoveryAfter returns the worst-flow delay from the end of the last timed
// impairment to the first whole 1 s window with nonzero delivery. Plans with
// no timed events return 0; a flow that never delivers again returns -1.
func recoveryAfter(res RunResult, lastEnd time.Duration) float64 {
	if lastEnd <= 0 {
		return 0
	}
	start := int(math.Ceil(lastEnd.Seconds()))
	worst := 0.0
	for _, windows := range res.PerSecondMbps {
		found := -1.0
		for w := start; w < len(windows); w++ {
			if windows[w] > 0 {
				found = float64(w) - lastEnd.Seconds()
				break
			}
		}
		if found < 0 {
			return -1
		}
		if found > worst {
			worst = found
		}
	}
	return worst
}

// Render prints the chaos table for one scenario.
func (r FaultScenarioResult) Render() string {
	s := fmt.Sprintf("Fault scenario %q over %v (last timed impairment ends %v)\n",
		r.Scenario, r.Duration, r.LastImpairment)
	var rows [][]string
	for _, row := range r.Rows {
		rec := "n/a"
		switch {
		case row.RecoverySec < 0:
			rec = "never"
		case r.LastImpairment > 0:
			rec = fmt.Sprintf("%.1f", row.RecoverySec)
		}
		c := row.Counters
		rows = append(rows, []string{
			row.Protocol,
			fmt.Sprintf("%.2f", row.Mbps),
			fmt.Sprintf("%.0f", row.DelayMean*1000),
			fmt.Sprintf("%d", row.Timeouts),
			rec,
			fmt.Sprintf("%d", c.SendDropped+c.QueueDrained+c.EgressDropped),
			fmt.Sprintf("%d", c.BurstLost),
			fmt.Sprintf("%d", c.Corrupted),
			fmt.Sprintf("%d", c.Duplicated),
			fmt.Sprintf("%d", c.Reordered),
		})
	}
	return s + table([]string{
		"protocol", "tput/flow (Mbps)", "mean delay (ms)", "timeouts",
		"recovery (s)", "blackholed", "burst-lost", "corrupted", "dup", "reorder",
	}, rows)
}
