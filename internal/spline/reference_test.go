package spline

import (
	"math/rand"
	"sort"
	"testing"
)

// referenceEval is the pre-PR2 Eval, verbatim: binary search with the i--
// fixup, per-call coefficient computation from the second derivatives. It
// exists so the optimized representation (fit-time coefficients, cursor
// scans) is pinned bit-for-bit against the original operation order.
func referenceEval(s *Spline, x float64) float64 {
	n := len(s.xs)
	if x <= s.xs[0] {
		return s.ys[0] + referenceSlopeAt(s, 0)*(x-s.xs[0])
	}
	if x >= s.xs[n-1] {
		return s.ys[n-1] + referenceSlopeAt(s, n-1)*(x-s.xs[n-1])
	}
	i := sort.SearchFloat64s(s.xs, x)
	if i > 0 && (i == n || s.xs[i] > x) {
		i--
	}
	h := s.xs[i+1] - s.xs[i]
	t := (x - s.xs[i]) / h
	a := s.ys[i]
	bcoef := (s.ys[i+1]-s.ys[i])/h - h/6*(2*s.m[i]+s.m[i+1])
	ccoef := s.m[i] / 2
	dcoef := (s.m[i+1] - s.m[i]) / (6 * h)
	dx := t * h
	return a + dx*(bcoef+dx*(ccoef+dx*dcoef))
}

func referenceSlopeAt(s *Spline, i int) float64 {
	n := len(s.xs)
	if n == 2 {
		return (s.ys[1] - s.ys[0]) / (s.xs[1] - s.xs[0])
	}
	if i == 0 {
		h := s.xs[1] - s.xs[0]
		return (s.ys[1]-s.ys[0])/h - h/6*(2*s.m[0]+s.m[1])
	}
	if i == n-1 {
		h := s.xs[n-1] - s.xs[n-2]
		return (s.ys[n-1]-s.ys[n-2])/h + h/6*(s.m[n-2]+2*s.m[n-1])
	}
	h := s.xs[i+1] - s.xs[i]
	return (s.ys[i+1]-s.ys[i])/h - h/6*(2*s.m[i]+s.m[i+1])
}

// TestEvalMatchesReference pins the optimized Eval (and with it the
// precomputed segment coefficients) bit-for-bit against the original
// per-call formulation, on randomized splines including the two-knot
// degenerate case, across interpolation, extrapolation, and knot-exact
// inputs.
func TestEvalMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 200; trial++ {
		k := 2 + rng.Intn(30)
		xs := make([]float64, k)
		ys := make([]float64, k)
		x := 0.0
		for i := range xs {
			x += 0.05 + rng.Float64()*4
			xs[i] = x
			ys[i] = rng.NormFloat64() * 100
		}
		s, err := Fit(xs, ys)
		if err != nil {
			t.Fatal(err)
		}
		probe := func(xq float64) {
			got := s.Eval(xq)
			want := referenceEval(s, xq)
			if got != want {
				t.Fatalf("trial %d (k=%d): Eval(%v) = %v, reference = %v — not bit-identical", trial, k, xq, got, want)
			}
		}
		lo, hi := xs[0]-5, xs[k-1]+5
		for g := 0; g < 100; g++ {
			probe(lo + (hi-lo)*rng.Float64())
		}
		for i := range xs {
			probe(xs[i])
		}
	}
}
