// Package spline implements natural cubic spline interpolation, the
// substrate the Verus delay profile is built on. The paper's prototype used
// the ALGLIB library for the same purpose; this is a from-scratch
// implementation with identical semantics: interpolate a set of (x, y) knots
// with a C² piecewise cubic whose second derivative vanishes at the
// endpoints, and extrapolate linearly beyond the knot range.
package spline

import (
	"errors"
	"sort"
)

// Spline is an immutable natural cubic spline fitted to a set of knots.
type Spline struct {
	xs []float64
	ys []float64
	// second derivatives at the knots (natural boundary: m[0]=m[n-1]=0)
	m []float64
}

// ErrTooFewPoints is returned when fewer than two distinct x values are
// provided.
var ErrTooFewPoints = errors.New("spline: need at least two points with distinct x")

// Fit constructs a natural cubic spline through the given points. The points
// need not be sorted; duplicate x values are collapsed by averaging their y
// values. With exactly two distinct points the spline degenerates to a line.
func Fit(xs, ys []float64) (*Spline, error) {
	if len(xs) != len(ys) {
		return nil, errors.New("spline: xs and ys length mismatch")
	}
	x, y := dedupe(xs, ys)
	n := len(x)
	if n < 2 {
		return nil, ErrTooFewPoints
	}
	m := make([]float64, n)
	if n > 2 {
		solveNatural(x, y, m)
	}
	return &Spline{xs: x, ys: y, m: m}, nil
}

// dedupe sorts points by x and averages the y values of duplicate x.
func dedupe(xs, ys []float64) (x, y []float64) {
	type pt struct{ x, y float64 }
	pts := make([]pt, len(xs))
	for i := range xs {
		pts[i] = pt{xs[i], ys[i]}
	}
	sort.Slice(pts, func(i, j int) bool { return pts[i].x < pts[j].x })
	for i := 0; i < len(pts); {
		j := i
		var sum float64
		for j < len(pts) && pts[j].x == pts[i].x {
			sum += pts[j].y
			j++
		}
		x = append(x, pts[i].x)
		y = append(y, sum/float64(j-i))
		i = j
	}
	return x, y
}

// solveNatural fills m with the second derivatives of the natural cubic
// spline through (x, y) via the standard tridiagonal (Thomas) solve.
func solveNatural(x, y, m []float64) {
	n := len(x)
	// Subdiagonal a, diagonal b, superdiagonal c, rhs d — for interior knots.
	a := make([]float64, n)
	b := make([]float64, n)
	c := make([]float64, n)
	d := make([]float64, n)
	for i := 1; i < n-1; i++ {
		h0 := x[i] - x[i-1]
		h1 := x[i+1] - x[i]
		a[i] = h0
		b[i] = 2 * (h0 + h1)
		c[i] = h1
		d[i] = 6 * ((y[i+1]-y[i])/h1 - (y[i]-y[i-1])/h0)
	}
	// Forward elimination over i = 1..n-2 with natural boundaries m[0]=m[n-1]=0.
	for i := 2; i < n-1; i++ {
		w := a[i] / b[i-1]
		b[i] -= w * c[i-1]
		d[i] -= w * d[i-1]
	}
	// Back substitution.
	for i := n - 2; i >= 1; i-- {
		m[i] = (d[i] - c[i]*m[i+1]) / b[i]
	}
}

// MinX returns the smallest knot x.
func (s *Spline) MinX() float64 { return s.xs[0] }

// MaxX returns the largest knot x.
func (s *Spline) MaxX() float64 { return s.xs[len(s.xs)-1] }

// NumKnots returns the number of distinct knots.
func (s *Spline) NumKnots() int { return len(s.xs) }

// Eval evaluates the spline at x. Outside [MinX, MaxX] the spline is
// extended linearly with the slope at the nearest endpoint.
func (s *Spline) Eval(x float64) float64 {
	n := len(s.xs)
	if x <= s.xs[0] {
		return s.ys[0] + s.slopeAt(0)*(x-s.xs[0])
	}
	if x >= s.xs[n-1] {
		return s.ys[n-1] + s.slopeAt(n-1)*(x-s.xs[n-1])
	}
	// Find segment i with xs[i] <= x < xs[i+1].
	i := sort.SearchFloat64s(s.xs, x)
	if i > 0 && (i == n || s.xs[i] > x) {
		i--
	}
	h := s.xs[i+1] - s.xs[i]
	t := (x - s.xs[i]) / h
	// Cubic Hermite form from second derivatives.
	a := s.ys[i]
	bcoef := (s.ys[i+1]-s.ys[i])/h - h/6*(2*s.m[i]+s.m[i+1])
	ccoef := s.m[i] / 2
	dcoef := (s.m[i+1] - s.m[i]) / (6 * h)
	dx := t * h
	return a + dx*(bcoef+dx*(ccoef+dx*dcoef))
}

// slopeAt returns the first derivative of the spline at knot i, used for
// linear extrapolation.
func (s *Spline) slopeAt(i int) float64 {
	n := len(s.xs)
	if n == 2 {
		return (s.ys[1] - s.ys[0]) / (s.xs[1] - s.xs[0])
	}
	if i == 0 {
		h := s.xs[1] - s.xs[0]
		return (s.ys[1]-s.ys[0])/h - h/6*(2*s.m[0]+s.m[1])
	}
	if i == n-1 {
		h := s.xs[n-1] - s.xs[n-2]
		return (s.ys[n-1]-s.ys[n-2])/h + h/6*(s.m[n-2]+2*s.m[n-1])
	}
	h := s.xs[i+1] - s.xs[i]
	return (s.ys[i+1]-s.ys[i])/h - h/6*(2*s.m[i]+s.m[i+1])
}

// InverseMax returns the largest x in [lo, hi] (scanned on a grid of `steps`
// points) whose spline value does not exceed y. This is the delay-profile
// lookup: the profile maps sending window → delay, and Verus needs the
// largest window whose predicted delay stays within the target. If even the
// value at lo exceeds y, it returns lo; ok reports whether any grid point
// satisfied the bound.
func (s *Spline) InverseMax(y, lo, hi float64, steps int) (x float64, ok bool) {
	if steps < 2 {
		steps = 2
	}
	best := lo
	found := false
	step := (hi - lo) / float64(steps-1)
	for k := 0; k < steps; k++ {
		xk := lo + float64(k)*step
		if s.Eval(xk) <= y {
			best = xk
			found = true
		}
	}
	return best, found
}
