// Package spline implements natural cubic spline interpolation, the
// substrate the Verus delay profile is built on. The paper's prototype used
// the ALGLIB library for the same purpose; this is a from-scratch
// implementation with identical semantics: interpolate a set of (x, y) knots
// with a C² piecewise cubic whose second derivative vanishes at the
// endpoints, and extrapolate linearly beyond the knot range.
//
// The representation is optimized for the delay profiler's access pattern —
// thousands of evaluations on a rising grid per 5 ms epoch, one refit per
// second: all per-segment cubic coefficients are precomputed at fit time, a
// cursor-style Evaluator advances the segment index incrementally across a
// monotone scan (O(n + steps) instead of O(steps·log n)), and RefitSorted
// rebuilds a spline in place with zero allocations once its buffers are
// warm. Every coefficient is computed with the exact floating-point
// expressions the original per-call Eval used, so evaluation results are
// bit-identical to the naive formulation (the equivalence tests pin this).
package spline

import (
	"errors"
	"sort"
)

// Spline is a natural cubic spline fitted to a set of knots. Construct with
// Fit, or refit an existing value in place with RefitSorted. A Spline is
// immutable between refits; it must not be refitted while another goroutine
// evaluates it.
type Spline struct {
	xs []float64
	ys []float64
	// second derivatives at the knots (natural boundary: m[0]=m[n-1]=0)
	m []float64

	// Precomputed per-segment cubic coefficients (len n-1). The value on
	// segment i at x is ys[i] + dx*(b[i] + dx*(c[i] + dx*d[i])) with
	// dx = ((x-xs[i])/h[i])*h[i] — the same operation sequence as computing
	// the coefficients inline at every call, hoisted to fit time.
	h, b, c, d []float64

	// Endpoint slopes for linear extrapolation beyond the knot range.
	slopeLo, slopeHi float64

	// Tridiagonal-solve workspace, reused across refits.
	scratch []float64
}

// ErrTooFewPoints is returned when fewer than two distinct x values are
// provided.
var ErrTooFewPoints = errors.New("spline: need at least two points with distinct x")

// Fit constructs a natural cubic spline through the given points. The points
// need not be sorted; duplicate x values are collapsed by averaging their y
// values. With exactly two distinct points the spline degenerates to a line.
func Fit(xs, ys []float64) (*Spline, error) {
	if len(xs) != len(ys) {
		return nil, errors.New("spline: xs and ys length mismatch")
	}
	x, y := dedupe(xs, ys)
	if len(x) < 2 {
		return nil, ErrTooFewPoints
	}
	s := &Spline{}
	s.refitSorted(x, y)
	return s, nil
}

// RefitSorted refits the spline in place through points whose x values are
// strictly increasing (the delay profiler's knot store maintains exactly
// that invariant). All internal buffers are reused, so a refit at or below
// the high-water-mark point count performs no allocation. The fitted curve
// is identical — bit for bit — to Fit on the same points.
func (s *Spline) RefitSorted(xs, ys []float64) error {
	if len(xs) != len(ys) {
		return errors.New("spline: xs and ys length mismatch")
	}
	if len(xs) < 2 {
		return ErrTooFewPoints
	}
	for i := 1; i < len(xs); i++ {
		if xs[i] <= xs[i-1] {
			return errors.New("spline: RefitSorted requires strictly increasing x")
		}
	}
	s.xs = append(s.xs[:0], xs...)
	s.ys = append(s.ys[:0], ys...)
	s.refitSorted(s.xs, s.ys)
	return nil
}

// refitSorted installs the (sorted, distinct) knots and computes the solve
// plus all per-segment coefficients. The slices are adopted, not copied.
func (s *Spline) refitSorted(x, y []float64) {
	n := len(x)
	s.xs, s.ys = x, y
	s.m = growFloats(s.m, n)
	for i := range s.m {
		s.m[i] = 0
	}
	if n > 2 {
		s.solveNatural()
	}
	s.computeSegments()
}

// growFloats returns a slice of length n, reusing buf's storage when it is
// large enough.
func growFloats(buf []float64, n int) []float64 {
	if cap(buf) < n {
		return make([]float64, n)
	}
	return buf[:n]
}

// dedupe sorts points by x and averages the y values of duplicate x.
func dedupe(xs, ys []float64) (x, y []float64) {
	type pt struct{ x, y float64 }
	pts := make([]pt, len(xs))
	for i := range xs {
		pts[i] = pt{xs[i], ys[i]}
	}
	sort.Slice(pts, func(i, j int) bool { return pts[i].x < pts[j].x })
	for i := 0; i < len(pts); {
		j := i
		var sum float64
		for j < len(pts) && pts[j].x == pts[i].x {
			sum += pts[j].y
			j++
		}
		x = append(x, pts[i].x)
		y = append(y, sum/float64(j-i))
		i = j
	}
	return x, y
}

// solveNatural fills s.m with the second derivatives of the natural cubic
// spline through the knots via the standard tridiagonal (Thomas) solve. The
// a/b/c/d bands live in s.scratch; every entry the elimination reads is
// written by the setup loop first, so stale scratch contents are harmless.
func (s *Spline) solveNatural() {
	x, y, m := s.xs, s.ys, s.m
	n := len(x)
	s.scratch = growFloats(s.scratch, 4*n)
	// Subdiagonal a, diagonal b, superdiagonal c, rhs d — for interior knots.
	a := s.scratch[0:n]
	b := s.scratch[n : 2*n]
	c := s.scratch[2*n : 3*n]
	d := s.scratch[3*n : 4*n]
	for i := 1; i < n-1; i++ {
		h0 := x[i] - x[i-1]
		h1 := x[i+1] - x[i]
		a[i] = h0
		b[i] = 2 * (h0 + h1)
		c[i] = h1
		d[i] = 6 * ((y[i+1]-y[i])/h1 - (y[i]-y[i-1])/h0)
	}
	// Forward elimination over i = 1..n-2 with natural boundaries m[0]=m[n-1]=0.
	for i := 2; i < n-1; i++ {
		w := a[i] / b[i-1]
		b[i] -= w * c[i-1]
		d[i] -= w * d[i-1]
	}
	// Back substitution.
	for i := n - 2; i >= 1; i-- {
		m[i] = (d[i] - c[i]*m[i+1]) / b[i]
	}
}

// computeSegments precomputes the per-segment Hermite coefficients and the
// endpoint slopes, using the exact expressions the pre-computation-free Eval
// and slopeAt used per call.
func (s *Spline) computeSegments() {
	n := len(s.xs)
	s.h = growFloats(s.h, n-1)
	s.b = growFloats(s.b, n-1)
	s.c = growFloats(s.c, n-1)
	s.d = growFloats(s.d, n-1)
	for i := 0; i < n-1; i++ {
		h := s.xs[i+1] - s.xs[i]
		s.h[i] = h
		s.b[i] = (s.ys[i+1]-s.ys[i])/h - h/6*(2*s.m[i]+s.m[i+1])
		s.c[i] = s.m[i] / 2
		s.d[i] = (s.m[i+1] - s.m[i]) / (6 * h)
	}
	// The left extrapolation slope is segment 0's linear coefficient; the
	// right one needs the one-sided form at the last knot. (With n == 2 both
	// reduce to the chord slope: m is all zero, and subtracting h/6·0 leaves
	// the chord term bit-exact.)
	s.slopeLo = s.b[0]
	hn := s.xs[n-1] - s.xs[n-2]
	s.slopeHi = (s.ys[n-1]-s.ys[n-2])/hn + hn/6*(s.m[n-2]+2*s.m[n-1])
}

// MinX returns the smallest knot x.
func (s *Spline) MinX() float64 { return s.xs[0] }

// MaxX returns the largest knot x.
func (s *Spline) MaxX() float64 { return s.xs[len(s.xs)-1] }

// NumKnots returns the number of distinct knots.
func (s *Spline) NumKnots() int { return len(s.xs) }

// Ready reports whether the spline has been fitted (false for a zero value).
func (s *Spline) Ready() bool { return len(s.xs) >= 2 }

// searchSegment returns the index i of the segment [xs[i], xs[i+1]] that
// evaluates x, for xs[0] < x < xs[n-1]. Segments are left-closed: an x
// exactly on knot k starts segment k; an x strictly between knots belongs
// to the segment of the knot on its left.
func (s *Spline) searchSegment(x float64) int {
	// First index with xs[i] >= x; i >= 1 because x > xs[0], and i <= n-1
	// because x < xs[n-1].
	i := sort.SearchFloat64s(s.xs, x)
	if s.xs[i] > x {
		i--
	}
	return i
}

// evalSegment evaluates segment i at x (which must lie in the segment's
// left-closed range for the cubic to be the interpolant).
func (s *Spline) evalSegment(i int, x float64) float64 {
	h := s.h[i]
	dx := (x - s.xs[i]) / h * h
	return s.ys[i] + dx*(s.b[i]+dx*(s.c[i]+dx*s.d[i]))
}

// Eval evaluates the spline at x. Outside [MinX, MaxX] the spline is
// extended linearly with the slope at the nearest endpoint.
func (s *Spline) Eval(x float64) float64 {
	n := len(s.xs)
	if x <= s.xs[0] {
		return s.ys[0] + s.slopeLo*(x-s.xs[0])
	}
	if x >= s.xs[n-1] {
		return s.ys[n-1] + s.slopeHi*(x-s.xs[n-1])
	}
	return s.evalSegment(s.searchSegment(x), x)
}

// Evaluator is a segment cursor for evaluating the spline at many points.
// For a non-decreasing sequence of x values the cursor advances segments
// incrementally, making a full grid scan O(n + steps) rather than
// O(steps·log n); a backwards jump falls back to a binary search, so results
// equal Eval for any input order. The zero Evaluator is not usable; obtain
// one from Spline.Evaluator. It is invalidated by a refit.
type Evaluator struct {
	s   *Spline
	seg int
}

// Evaluator returns a fresh segment cursor positioned at the first segment.
func (s *Spline) Evaluator() Evaluator { return Evaluator{s: s} }

// Eval evaluates the spline at x, identical in value to Spline.Eval.
func (e *Evaluator) Eval(x float64) float64 {
	s := e.s
	n := len(s.xs)
	if x <= s.xs[0] {
		return s.ys[0] + s.slopeLo*(x-s.xs[0])
	}
	if x >= s.xs[n-1] {
		return s.ys[n-1] + s.slopeHi*(x-s.xs[n-1])
	}
	if x < s.xs[e.seg] {
		// Non-monotone use: re-seek instead of returning the wrong segment.
		e.seg = s.searchSegment(x)
		return s.evalSegment(e.seg, x)
	}
	for e.seg < n-2 && x >= s.xs[e.seg+1] {
		e.seg++
	}
	return s.evalSegment(e.seg, x)
}

// EvalGrid evaluates the spline at the grid lo + k*step for
// k = 0..len(out)-1, writing the results into out. Each grid point is
// computed exactly as Eval(lo + float64(k)*step) — same values bit for bit.
// For step >= 0 the grid is non-decreasing, so the scan runs in three
// phases (left extrapolation, interior, right extrapolation) with one
// incremental segment cursor and the current segment's coefficients hoisted
// into a tight inner loop — no per-point search, call, or bounds-checked
// coefficient load. A negative step falls back to point-wise Eval.
func (s *Spline) EvalGrid(lo, step float64, out []float64) {
	if step < 0 {
		for k := range out {
			out[k] = s.Eval(lo + float64(k)*step)
		}
		return
	}
	n := len(s.xs)
	nOut := len(out)
	x0, y0 := s.xs[0], s.ys[0]
	xN, yN := s.xs[n-1], s.ys[n-1]
	k := 0
	for ; k < nOut; k++ {
		x := lo + float64(k)*step
		if !(x <= x0) {
			break
		}
		out[k] = y0 + s.slopeLo*(x-x0)
	}
	seg := 0
	for k < nOut {
		x := lo + float64(k)*step
		if x >= xN {
			break
		}
		for seg < n-2 && x >= s.xs[seg+1] {
			seg++
		}
		// next is the segment's right knot: the inner loop owns every grid
		// point below it. For the last segment next == xN, so the inner loop
		// also yields exactly where right extrapolation takes over.
		next := s.xs[seg+1]
		xi, h := s.xs[seg], s.h[seg]
		yi, bi, ci, di := s.ys[seg], s.b[seg], s.c[seg], s.d[seg]
		for k < nOut {
			x = lo + float64(k)*step
			if x >= next {
				break
			}
			dx := (x - xi) / h * h
			out[k] = yi + dx*(bi+dx*(ci+dx*di))
			k++
		}
	}
	for ; k < nOut; k++ {
		x := lo + float64(k)*step
		out[k] = yN + s.slopeHi*(x-xN)
	}
}
