package spline

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestFitErrors(t *testing.T) {
	if _, err := Fit([]float64{1}, []float64{2, 3}); err == nil {
		t.Error("length mismatch should error")
	}
	if _, err := Fit([]float64{1}, []float64{2}); err != ErrTooFewPoints {
		t.Errorf("single point: got %v, want ErrTooFewPoints", err)
	}
	if _, err := Fit([]float64{1, 1, 1}, []float64{2, 4, 6}); err != ErrTooFewPoints {
		t.Errorf("all-duplicate x: got %v, want ErrTooFewPoints", err)
	}
}

func TestTwoPointLine(t *testing.T) {
	s, err := Fit([]float64{0, 10}, []float64{0, 20})
	if err != nil {
		t.Fatal(err)
	}
	for x := -5.0; x <= 15; x += 0.5 {
		if got, want := s.Eval(x), 2*x; math.Abs(got-want) > 1e-12 {
			t.Fatalf("Eval(%v) = %v, want %v", x, got, want)
		}
	}
}

func TestInterpolatesKnots(t *testing.T) {
	xs := []float64{0, 1, 2.5, 4, 7, 11}
	ys := []float64{3, -1, 4, 4, 0, 8}
	s, err := Fit(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	for i := range xs {
		if got := s.Eval(xs[i]); math.Abs(got-ys[i]) > 1e-9 {
			t.Errorf("Eval(%v) = %v, want %v", xs[i], got, ys[i])
		}
	}
}

func TestDuplicateXAveraged(t *testing.T) {
	s, err := Fit([]float64{0, 1, 1, 2}, []float64{0, 2, 4, 6})
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Eval(1); math.Abs(got-3) > 1e-9 {
		t.Fatalf("duplicate x should average: Eval(1) = %v, want 3", got)
	}
	if s.NumKnots() != 3 {
		t.Fatalf("NumKnots = %d, want 3", s.NumKnots())
	}
}

func TestUnsortedInput(t *testing.T) {
	s1, err := Fit([]float64{3, 1, 2}, []float64{9, 1, 4})
	if err != nil {
		t.Fatal(err)
	}
	s2, err := Fit([]float64{1, 2, 3}, []float64{1, 4, 9})
	if err != nil {
		t.Fatal(err)
	}
	for x := 1.0; x <= 3; x += 0.1 {
		if math.Abs(s1.Eval(x)-s2.Eval(x)) > 1e-12 {
			t.Fatalf("order-dependence at x=%v", x)
		}
	}
}

func TestLinearDataStaysLinear(t *testing.T) {
	// A natural cubic spline through collinear points is that line.
	xs := []float64{0, 1, 2, 3, 4, 5}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 3*x + 1
	}
	s, err := Fit(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	for x := -2.0; x <= 7; x += 0.25 {
		if got, want := s.Eval(x), 3*x+1; math.Abs(got-want) > 1e-9 {
			t.Fatalf("Eval(%v) = %v, want %v", x, got, want)
		}
	}
}

func TestExtrapolationIsLinear(t *testing.T) {
	xs := []float64{0, 1, 2, 3}
	ys := []float64{0, 1, 8, 27}
	s, err := Fit(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	// Beyond MaxX, second differences must vanish (linear growth).
	d1 := s.Eval(5) - s.Eval(4)
	d2 := s.Eval(6) - s.Eval(5)
	if math.Abs(d1-d2) > 1e-9 {
		t.Fatalf("right extrapolation not linear: %v vs %v", d1, d2)
	}
	d1 = s.Eval(-1) - s.Eval(-2)
	d2 = s.Eval(0) - s.Eval(-1)
	if math.Abs(d1-d2) > 1e-9 {
		t.Fatalf("left extrapolation not linear: %v vs %v", d1, d2)
	}
}

func TestContinuityAtKnots(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	xs := make([]float64, 12)
	ys := make([]float64, 12)
	for i := range xs {
		xs[i] = float64(i) + rng.Float64()*0.5
		ys[i] = rng.NormFloat64() * 10
	}
	s, err := Fit(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	const h = 1e-7
	for i := 1; i < len(xs)-1; i++ {
		left := s.Eval(xs[i] - h)
		right := s.Eval(xs[i] + h)
		if math.Abs(left-right) > 1e-4 {
			t.Fatalf("discontinuity at knot %d: %v vs %v", i, left, right)
		}
		// First derivative continuity.
		dl := (s.Eval(xs[i]) - s.Eval(xs[i]-h)) / h
		dr := (s.Eval(xs[i]+h) - s.Eval(xs[i])) / h
		if math.Abs(dl-dr) > 1e-2*(1+math.Abs(dl)) {
			t.Fatalf("derivative jump at knot %d: %v vs %v", i, dl, dr)
		}
	}
}

// Property: the spline always passes through its knots, regardless of input.
func TestQuickKnotInterpolation(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		k := 2 + int(n)%30
		xs := make([]float64, k)
		ys := make([]float64, k)
		x := 0.0
		for i := range xs {
			x += 0.1 + rng.Float64()*5
			xs[i] = x
			ys[i] = rng.NormFloat64() * 100
		}
		s, err := Fit(xs, ys)
		if err != nil {
			return false
		}
		for i := range xs {
			if math.Abs(s.Eval(xs[i])-ys[i]) > 1e-6*(1+math.Abs(ys[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestSearchSegmentBoundaries pins the left-closed segment convention: an x
// exactly on knot k starts segment k, and anything strictly between knots
// belongs to the left knot's segment. (searchSegment is only defined for
// xs[0] < x < xs[n-1]; the endpoints themselves take the extrapolation
// branches of Eval.)
func TestSearchSegmentBoundaries(t *testing.T) {
	s, err := Fit([]float64{0, 1, 2.5, 4, 7}, []float64{0, 1, 2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		x    float64
		want int
	}{
		{"between first two knots", 0.5, 0},
		{"just above first knot", math.Nextafter(0, 1), 0},
		{"just below second knot", math.Nextafter(1, 0), 0},
		{"exactly on interior knot", 1, 1},
		{"just above interior knot", math.Nextafter(1, 2), 1},
		{"mid interior segment", 3.0, 2},
		{"exactly on knot 2.5", 2.5, 2},
		{"exactly on penultimate knot", 4, 3},
		{"just below last knot", math.Nextafter(7, 0), 3},
	}
	for _, tc := range cases {
		if got := s.searchSegment(tc.x); got != tc.want {
			t.Errorf("%s: searchSegment(%v) = %d, want %d", tc.name, tc.x, got, tc.want)
		}
	}
}

// TestEvaluatorMatchesEval pins bit-identity between the cursor evaluator
// and point-wise Eval, on rising grids (the intended use), on reversed
// grids (the re-seek fallback), and across knot-exact points.
func TestEvaluatorMatchesEval(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		k := 2 + rng.Intn(40)
		xs := make([]float64, k)
		ys := make([]float64, k)
		x := 0.0
		for i := range xs {
			x += 0.1 + rng.Float64()*3
			xs[i] = x
			ys[i] = rng.NormFloat64() * 50
		}
		s, err := Fit(xs, ys)
		if err != nil {
			t.Fatal(err)
		}
		lo := s.MinX() - 2
		hi := s.MaxX() + 2
		const steps = 257
		step := (hi - lo) / (steps - 1)
		grid := make([]float64, 0, steps+k)
		for i := 0; i < steps; i++ {
			grid = append(grid, lo+float64(i)*step)
		}
		grid = append(grid, xs...) // knot-exact points
		sort.Float64s(grid)

		e := s.Evaluator()
		for _, g := range grid {
			if got, want := e.Eval(g), s.Eval(g); got != want {
				t.Fatalf("trial %d: cursor Eval(%v) = %v, Eval = %v (must be bit-identical)", trial, g, got, want)
			}
		}
		// Reverse order exercises the re-seek fallback.
		for i := len(grid) - 1; i >= 0; i-- {
			if got, want := e.Eval(grid[i]), s.Eval(grid[i]); got != want {
				t.Fatalf("trial %d: reversed cursor Eval(%v) = %v, Eval = %v", trial, grid[i], got, want)
			}
		}
		out := make([]float64, steps)
		s.EvalGrid(lo, step, out)
		for i := range out {
			if want := s.Eval(lo + float64(i)*step); out[i] != want {
				t.Fatalf("trial %d: EvalGrid[%d] = %v, Eval = %v", trial, i, out[i], want)
			}
		}
	}
}

// TestRefitSortedMatchesFit pins that the in-place refit path produces
// bit-identical curves to a fresh Fit, across successive refits reusing the
// same buffers (growing and shrinking the knot count).
func TestRefitSortedMatchesFit(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	var s Spline
	if s.Ready() {
		t.Fatal("zero Spline reports Ready")
	}
	for trial := 0; trial < 40; trial++ {
		k := 2 + rng.Intn(60)
		xs := make([]float64, k)
		ys := make([]float64, k)
		x := 0.0
		for i := range xs {
			x += 0.5 + rng.Float64()*2
			xs[i] = x
			ys[i] = rng.NormFloat64() * 20
		}
		if err := s.RefitSorted(xs, ys); err != nil {
			t.Fatal(err)
		}
		ref, err := Fit(xs, ys)
		if err != nil {
			t.Fatal(err)
		}
		lo, hi := xs[0]-3, xs[k-1]+3
		for g := 0; g < 200; g++ {
			xq := lo + (hi-lo)*float64(g)/199
			if got, want := s.Eval(xq), ref.Eval(xq); got != want {
				t.Fatalf("trial %d: refit Eval(%v) = %v, Fit Eval = %v", trial, xq, got, want)
			}
		}
	}
}

func TestRefitSortedErrors(t *testing.T) {
	var s Spline
	if err := s.RefitSorted([]float64{1}, []float64{1}); err != ErrTooFewPoints {
		t.Errorf("single point: got %v, want ErrTooFewPoints", err)
	}
	if err := s.RefitSorted([]float64{1, 2}, []float64{1}); err == nil {
		t.Error("length mismatch should error")
	}
	if err := s.RefitSorted([]float64{1, 1}, []float64{1, 2}); err == nil {
		t.Error("non-increasing x should error")
	}
	if err := s.RefitSorted([]float64{2, 1}, []float64{1, 2}); err == nil {
		t.Error("decreasing x should error")
	}
	// A failed refit must not clobber a previously fitted state.
	if err := s.RefitSorted([]float64{0, 1}, []float64{0, 2}); err != nil {
		t.Fatal(err)
	}
	if err := s.RefitSorted([]float64{5, 3}, []float64{0, 0}); err == nil {
		t.Fatal("decreasing x should error")
	}
	if got := s.Eval(0.5); got != 1 {
		t.Errorf("state clobbered by failed refit: Eval(0.5) = %v, want 1", got)
	}
}

// TestRefitSortedZeroAllocs asserts the steady-state refit path allocates
// nothing once buffers are warm.
func TestRefitSortedZeroAllocs(t *testing.T) {
	n := 128
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := range xs {
		xs[i] = float64(i + 1)
		ys[i] = float64(i%7) + 1
	}
	var s Spline
	if err := s.RefitSorted(xs, ys); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if err := s.RefitSorted(xs, ys); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("RefitSorted with warm buffers: %v allocs/run, want 0", allocs)
	}
}
