package spline

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFitErrors(t *testing.T) {
	if _, err := Fit([]float64{1}, []float64{2, 3}); err == nil {
		t.Error("length mismatch should error")
	}
	if _, err := Fit([]float64{1}, []float64{2}); err != ErrTooFewPoints {
		t.Errorf("single point: got %v, want ErrTooFewPoints", err)
	}
	if _, err := Fit([]float64{1, 1, 1}, []float64{2, 4, 6}); err != ErrTooFewPoints {
		t.Errorf("all-duplicate x: got %v, want ErrTooFewPoints", err)
	}
}

func TestTwoPointLine(t *testing.T) {
	s, err := Fit([]float64{0, 10}, []float64{0, 20})
	if err != nil {
		t.Fatal(err)
	}
	for x := -5.0; x <= 15; x += 0.5 {
		if got, want := s.Eval(x), 2*x; math.Abs(got-want) > 1e-12 {
			t.Fatalf("Eval(%v) = %v, want %v", x, got, want)
		}
	}
}

func TestInterpolatesKnots(t *testing.T) {
	xs := []float64{0, 1, 2.5, 4, 7, 11}
	ys := []float64{3, -1, 4, 4, 0, 8}
	s, err := Fit(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	for i := range xs {
		if got := s.Eval(xs[i]); math.Abs(got-ys[i]) > 1e-9 {
			t.Errorf("Eval(%v) = %v, want %v", xs[i], got, ys[i])
		}
	}
}

func TestDuplicateXAveraged(t *testing.T) {
	s, err := Fit([]float64{0, 1, 1, 2}, []float64{0, 2, 4, 6})
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Eval(1); math.Abs(got-3) > 1e-9 {
		t.Fatalf("duplicate x should average: Eval(1) = %v, want 3", got)
	}
	if s.NumKnots() != 3 {
		t.Fatalf("NumKnots = %d, want 3", s.NumKnots())
	}
}

func TestUnsortedInput(t *testing.T) {
	s1, err := Fit([]float64{3, 1, 2}, []float64{9, 1, 4})
	if err != nil {
		t.Fatal(err)
	}
	s2, err := Fit([]float64{1, 2, 3}, []float64{1, 4, 9})
	if err != nil {
		t.Fatal(err)
	}
	for x := 1.0; x <= 3; x += 0.1 {
		if math.Abs(s1.Eval(x)-s2.Eval(x)) > 1e-12 {
			t.Fatalf("order-dependence at x=%v", x)
		}
	}
}

func TestLinearDataStaysLinear(t *testing.T) {
	// A natural cubic spline through collinear points is that line.
	xs := []float64{0, 1, 2, 3, 4, 5}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 3*x + 1
	}
	s, err := Fit(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	for x := -2.0; x <= 7; x += 0.25 {
		if got, want := s.Eval(x), 3*x+1; math.Abs(got-want) > 1e-9 {
			t.Fatalf("Eval(%v) = %v, want %v", x, got, want)
		}
	}
}

func TestExtrapolationIsLinear(t *testing.T) {
	xs := []float64{0, 1, 2, 3}
	ys := []float64{0, 1, 8, 27}
	s, err := Fit(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	// Beyond MaxX, second differences must vanish (linear growth).
	d1 := s.Eval(5) - s.Eval(4)
	d2 := s.Eval(6) - s.Eval(5)
	if math.Abs(d1-d2) > 1e-9 {
		t.Fatalf("right extrapolation not linear: %v vs %v", d1, d2)
	}
	d1 = s.Eval(-1) - s.Eval(-2)
	d2 = s.Eval(0) - s.Eval(-1)
	if math.Abs(d1-d2) > 1e-9 {
		t.Fatalf("left extrapolation not linear: %v vs %v", d1, d2)
	}
}

func TestContinuityAtKnots(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	xs := make([]float64, 12)
	ys := make([]float64, 12)
	for i := range xs {
		xs[i] = float64(i) + rng.Float64()*0.5
		ys[i] = rng.NormFloat64() * 10
	}
	s, err := Fit(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	const h = 1e-7
	for i := 1; i < len(xs)-1; i++ {
		left := s.Eval(xs[i] - h)
		right := s.Eval(xs[i] + h)
		if math.Abs(left-right) > 1e-4 {
			t.Fatalf("discontinuity at knot %d: %v vs %v", i, left, right)
		}
		// First derivative continuity.
		dl := (s.Eval(xs[i]) - s.Eval(xs[i]-h)) / h
		dr := (s.Eval(xs[i]+h) - s.Eval(xs[i])) / h
		if math.Abs(dl-dr) > 1e-2*(1+math.Abs(dl)) {
			t.Fatalf("derivative jump at knot %d: %v vs %v", i, dl, dr)
		}
	}
}

// Property: the spline always passes through its knots, regardless of input.
func TestQuickKnotInterpolation(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		k := 2 + int(n)%30
		xs := make([]float64, k)
		ys := make([]float64, k)
		x := 0.0
		for i := range xs {
			x += 0.1 + rng.Float64()*5
			xs[i] = x
			ys[i] = rng.NormFloat64() * 100
		}
		s, err := Fit(xs, ys)
		if err != nil {
			return false
		}
		for i := range xs {
			if math.Abs(s.Eval(xs[i])-ys[i]) > 1e-6*(1+math.Abs(ys[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestInverseMaxMonotoneCurve(t *testing.T) {
	// Increasing delay profile: delay = w^1.5 over w in [1, 100].
	var xs, ys []float64
	for w := 1.0; w <= 100; w++ {
		xs = append(xs, w)
		ys = append(ys, math.Pow(w, 1.5))
	}
	s, err := Fit(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	// Largest w with w^1.5 <= 125 is 25.
	x, ok := s.InverseMax(125, 1, 100, 400)
	if !ok {
		t.Fatal("expected a feasible window")
	}
	if math.Abs(x-25) > 1 {
		t.Fatalf("InverseMax = %v, want ~25", x)
	}
}

func TestInverseMaxInfeasible(t *testing.T) {
	s, err := Fit([]float64{1, 10}, []float64{100, 200})
	if err != nil {
		t.Fatal(err)
	}
	x, ok := s.InverseMax(50, 1, 10, 50)
	if ok {
		t.Fatal("no window should satisfy delay <= 50")
	}
	if x != 1 {
		t.Fatalf("infeasible lookup should return lo, got %v", x)
	}
}

func TestInverseMaxStepsClamped(t *testing.T) {
	s, err := Fit([]float64{0, 10}, []float64{0, 10})
	if err != nil {
		t.Fatal(err)
	}
	x, ok := s.InverseMax(10, 0, 10, 1) // steps < 2 clamps to 2
	if !ok || x != 10 {
		t.Fatalf("got (%v,%v), want (10,true)", x, ok)
	}
}

// Property: InverseMax result never exceeds hi, never undershoots lo, and the
// spline value at the result respects the bound when ok.
func TestQuickInverseMaxRespectsBound(t *testing.T) {
	f := func(seed int64, target float64) bool {
		if math.IsNaN(target) || math.IsInf(target, 0) {
			return true
		}
		rng := rand.New(rand.NewSource(seed))
		xs := []float64{0, 5, 10, 15, 20}
		ys := make([]float64, len(xs))
		for i := range ys {
			ys[i] = rng.Float64() * 50
		}
		s, err := Fit(xs, ys)
		if err != nil {
			return false
		}
		x, ok := s.InverseMax(target, 0, 20, 100)
		if x < 0 || x > 20 {
			return false
		}
		if ok && s.Eval(x) > target+1e-9 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
