package spline

import (
	"math"
	"testing"
)

// benchSpline fits a delay-profile-shaped spline: knots at integer windows
// 1..n with a gently convex delay curve, matching what delayProfile feeds
// Fit in steady state.
func benchSpline(n int) *Spline {
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := range xs {
		w := float64(i + 1)
		xs[i] = w
		ys[i] = 0.02 + 0.0004*math.Pow(w, 1.3)
	}
	s, err := Fit(xs, ys)
	if err != nil {
		panic(err)
	}
	return s
}

// BenchmarkEval measures a single point evaluation on a 256-knot spline,
// cycling x across the knot range so the segment search cannot be trivially
// predicted.
func BenchmarkEval(b *testing.B) {
	s := benchSpline(256)
	span := s.MaxX() - s.MinX()
	var sink float64
	for i := 0; i < b.N; i++ {
		x := s.MinX() + span*float64(i%97)/97
		sink += s.Eval(x)
	}
	_ = sink
}

// BenchmarkEvalGrid4096 measures the delay-profile lookup workload: 4096
// evaluations on a rising grid spanning the knot range and the linear
// extrapolation beyond it (lookup probes up to 2x the observed window),
// through the cursor-based batch evaluator.
func BenchmarkEvalGrid4096(b *testing.B) {
	s := benchSpline(256)
	const steps = 4096
	lo := 1.0
	hi := s.MaxX() * 2
	step := (hi - lo) / float64(steps-1)
	out := make([]float64, steps)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.EvalGrid(lo, step, out)
	}
	_ = out
}

// BenchmarkEvalGrid4096PointWise is the same grid through point-wise Eval —
// a binary search per step — kept as the baseline the cursor is measured
// against.
func BenchmarkEvalGrid4096PointWise(b *testing.B) {
	s := benchSpline(256)
	const steps = 4096
	lo := 1.0
	hi := s.MaxX() * 2
	step := (hi - lo) / float64(steps-1)
	out := make([]float64, steps)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for k := 0; k < steps; k++ {
			out[k] = s.Eval(lo + float64(k)*step)
		}
	}
	_ = out
}

// BenchmarkFit measures a full 256-knot fit from unsorted input, the cost
// delayProfile pays at every refit.
func BenchmarkFit(b *testing.B) {
	n := 256
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := range xs {
		w := float64(i + 1)
		xs[i] = w
		ys[i] = 0.02 + 0.0004*math.Pow(w, 1.3)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Fit(xs, ys); err != nil {
			b.Fatal(err)
		}
	}
}
