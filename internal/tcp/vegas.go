package tcp

import (
	"time"

	"repro/internal/cc"
)

// Vegas parameters (packets of backlog) from Brakmo & Peterson.
const (
	vegasAlpha = 2
	vegasBeta  = 4
	vegasGamma = 1
)

// Vegas is TCP Vegas's delay-based window dynamics: it estimates the backlog
// it keeps in the bottleneck queue as
//
//	diff = cwnd × (RTT − baseRTT) / RTT
//
// and nudges the window to hold that backlog between α and β packets. It is
// the classic delay-based protocol from which Verus "draws inspiration"
// (paper §2) and one of the paper's real-world baselines (Fig. 8).
type Vegas struct {
	cwnd     float64
	ssthresh float64

	baseRTT time.Duration // minimum observed RTT
	rttSum  time.Duration
	rttCnt  int
	nextAdj int64 // adjust once per RTT: when this seq is acked

	lastSent   int64
	recoverSeq int64
	inRecovery bool
	slowStart  bool
	ssToggle   bool // Vegas doubles every *other* RTT during slow start
}

var _ cc.Controller = (*Vegas)(nil)

// NewVegas returns a Vegas controller with initial window 2.
func NewVegas() *Vegas {
	return &Vegas{cwnd: 2, ssthresh: 1 << 30, recoverSeq: -1, slowStart: true}
}

// Name implements cc.Controller.
func (t *Vegas) Name() string { return "vegas" }

// Cwnd returns the current congestion window in packets.
func (t *Vegas) Cwnd() float64 { return t.cwnd }

// OnAck implements cc.Controller.
func (t *Vegas) OnAck(now time.Duration, ack cc.AckSample) {
	if t.baseRTT == 0 || ack.RTT < t.baseRTT {
		t.baseRTT = ack.RTT
	}
	t.rttSum += ack.RTT
	t.rttCnt++

	if t.inRecovery {
		if ack.Seq >= t.recoverSeq {
			t.inRecovery = false
		} else {
			return
		}
	}
	// Once-per-RTT adjustment: wait until a packet sent after the previous
	// adjustment is acknowledged.
	if ack.Seq < t.nextAdj {
		return
	}
	t.nextAdj = t.lastSent + 1
	if t.rttCnt == 0 {
		return
	}
	avgRTT := t.rttSum / time.Duration(t.rttCnt)
	t.rttSum, t.rttCnt = 0, 0

	diff := t.cwnd * float64(avgRTT-t.baseRTT) / float64(avgRTT)
	if t.slowStart {
		if diff > vegasGamma || t.cwnd >= t.ssthresh {
			t.slowStart = false
			t.cwnd-- // leave slow start one packet lighter, per Vegas
			if t.cwnd < 2 {
				t.cwnd = 2
			}
			return
		}
		// Double every other RTT.
		t.ssToggle = !t.ssToggle
		if t.ssToggle {
			t.cwnd *= 2
		}
		return
	}
	switch {
	case diff < vegasAlpha:
		t.cwnd++
	case diff > vegasBeta:
		t.cwnd--
		if t.cwnd < 2 {
			t.cwnd = 2
		}
	}
}

// OnLoss implements cc.Controller. Vegas retains Reno's halving on loss.
func (t *Vegas) OnLoss(now time.Duration, loss cc.LossEvent) {
	if t.inRecovery {
		return
	}
	t.inRecovery = true
	t.recoverSeq = t.lastSent
	t.cwnd /= 2
	if t.cwnd < 2 {
		t.cwnd = 2
	}
	t.ssthresh = t.cwnd
	t.slowStart = false
}

// OnTimeout implements cc.Controller.
func (t *Vegas) OnTimeout(now time.Duration) {
	t.ssthresh = t.cwnd / 2
	if t.ssthresh < 2 {
		t.ssthresh = 2
	}
	t.cwnd = 2
	t.slowStart = true
	t.inRecovery = false
}

// TickInterval implements cc.Controller (ack-clocked).
func (t *Vegas) TickInterval() time.Duration { return 0 }

// Tick implements cc.Controller.
func (t *Vegas) Tick(time.Duration) {}

// Allowance implements cc.Controller.
func (t *Vegas) Allowance(_ time.Duration, inflight int) int {
	return int(t.cwnd) - inflight
}

// SendTag implements cc.Controller.
func (t *Vegas) SendTag() int { return int(t.cwnd) }

// OnSend implements cc.Controller.
func (t *Vegas) OnSend(_ time.Duration, seq int64, _ int) {
	if seq > t.lastSent {
		t.lastSent = seq
	}
}
