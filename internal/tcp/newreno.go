// Package tcp implements window-dynamics models of the legacy TCP congestion
// controllers the Verus paper compares against: NewReno (RFC 6582 behaviour,
// the paper's "Windows 7" baseline), Cubic (Ha/Rhee/Xu, the "Linux 3.16"
// baseline), and Vegas (Brakmo/O'Malley/Peterson, the classic delay-based
// protocol Verus draws inspiration from).
//
// Each controller implements cc.Controller, so it runs on the simulator's
// Source exactly as Verus does. Loss detection, RTT sampling, and
// retransmission timeouts are host (Source/transport) duties; these types
// model only window evolution.
package tcp

import (
	"time"

	"repro/internal/cc"
)

// NewReno is TCP NewReno's AIMD window dynamics: slow start to ssthresh,
// additive increase of one packet per RTT, halving on loss with
// one-reduction-per-window fast recovery, and a collapse to one packet on
// timeout.
type NewReno struct {
	cwnd     float64
	ssthresh float64

	lastSent   int64 // highest sequence transmitted
	recoverSeq int64 // recovery ends when this sequence is acked
	inRecovery bool
}

var _ cc.Controller = (*NewReno)(nil)

// NewNewReno returns a NewReno controller with initial window 2.
func NewNewReno() *NewReno {
	return &NewReno{cwnd: 2, ssthresh: 1 << 30, recoverSeq: -1}
}

// Name implements cc.Controller.
func (t *NewReno) Name() string { return "newreno" }

// Cwnd returns the current congestion window in packets.
func (t *NewReno) Cwnd() float64 { return t.cwnd }

// InSlowStart reports whether the window is below ssthresh.
func (t *NewReno) InSlowStart() bool { return t.cwnd < t.ssthresh }

// OnAck implements cc.Controller.
func (t *NewReno) OnAck(now time.Duration, ack cc.AckSample) {
	if t.inRecovery {
		if ack.Seq >= t.recoverSeq {
			t.inRecovery = false
		} else {
			return // no growth while recovering
		}
	}
	if t.cwnd < t.ssthresh {
		t.cwnd++
	} else {
		t.cwnd += 1 / t.cwnd
	}
}

// OnLoss implements cc.Controller.
func (t *NewReno) OnLoss(now time.Duration, loss cc.LossEvent) {
	if t.inRecovery {
		return
	}
	t.inRecovery = true
	t.recoverSeq = t.lastSent
	t.ssthresh = t.cwnd / 2
	if t.ssthresh < 2 {
		t.ssthresh = 2
	}
	t.cwnd = t.ssthresh
}

// OnTimeout implements cc.Controller.
func (t *NewReno) OnTimeout(now time.Duration) {
	t.ssthresh = t.cwnd / 2
	if t.ssthresh < 2 {
		t.ssthresh = 2
	}
	t.cwnd = 1
	t.inRecovery = false
}

// TickInterval implements cc.Controller (ack-clocked).
func (t *NewReno) TickInterval() time.Duration { return 0 }

// Tick implements cc.Controller.
func (t *NewReno) Tick(time.Duration) {}

// Allowance implements cc.Controller.
func (t *NewReno) Allowance(_ time.Duration, inflight int) int {
	return int(t.cwnd) - inflight
}

// SendTag implements cc.Controller.
func (t *NewReno) SendTag() int { return int(t.cwnd) }

// OnSend implements cc.Controller.
func (t *NewReno) OnSend(_ time.Duration, seq int64, _ int) {
	if seq > t.lastSent {
		t.lastSent = seq
	}
}
