package tcp

import (
	"math"
	"time"

	"repro/internal/cc"
)

// Cubic parameters from Ha, Rhee, Xu, "CUBIC: A New TCP-Friendly High-Speed
// TCP Variant" and RFC 8312.
const (
	cubicC    = 0.4
	cubicBeta = 0.7
)

// Cubic is TCP Cubic's window dynamics: after a loss the window grows along
// a cubic curve anchored at the pre-loss maximum (concave approach, plateau,
// convex probe), with a TCP-friendly lower bound for low-BDP regimes.
type Cubic struct {
	cwnd     float64
	ssthresh float64

	wMax       float64
	k          float64       // time to return to wMax, seconds
	epochStart time.Duration // when the current growth epoch began
	haveEpoch  bool
	srtt       time.Duration

	lastSent   int64
	recoverSeq int64
	inRecovery bool
}

var _ cc.Controller = (*Cubic)(nil)

// NewCubic returns a Cubic controller with initial window 2.
func NewCubic() *Cubic {
	return &Cubic{cwnd: 2, ssthresh: 1 << 30, recoverSeq: -1}
}

// Name implements cc.Controller.
func (t *Cubic) Name() string { return "cubic" }

// Cwnd returns the current congestion window in packets.
func (t *Cubic) Cwnd() float64 { return t.cwnd }

// OnAck implements cc.Controller.
func (t *Cubic) OnAck(now time.Duration, ack cc.AckSample) {
	if t.srtt == 0 {
		t.srtt = ack.RTT
	} else {
		t.srtt = (7*t.srtt + ack.RTT) / 8
	}
	if t.inRecovery {
		if ack.Seq >= t.recoverSeq {
			t.inRecovery = false
		} else {
			return
		}
	}
	if t.cwnd < t.ssthresh {
		t.cwnd++
		return
	}
	t.congestionAvoidance(now)
}

func (t *Cubic) congestionAvoidance(now time.Duration) {
	if !t.haveEpoch {
		// First congestion-avoidance ack of this epoch.
		t.haveEpoch = true
		t.epochStart = now
		if t.wMax < t.cwnd {
			t.wMax = t.cwnd
			t.k = 0
		} else {
			t.k = math.Cbrt(t.wMax * (1 - cubicBeta) / cubicC)
		}
	}
	et := (now - t.epochStart).Seconds()
	target := cubicC*math.Pow(et-t.k, 3) + t.wMax

	// TCP-friendly region (standard TCP's AIMD estimate over the same
	// epoch).
	rtt := t.srtt.Seconds()
	if rtt <= 0 {
		rtt = 0.1
	}
	wEst := t.wMax*cubicBeta + 3*(1-cubicBeta)/(1+cubicBeta)*et/rtt
	if target < wEst {
		target = wEst
	}
	if target > t.cwnd {
		// Spread the increase over the window's worth of acks.
		t.cwnd += (target - t.cwnd) / t.cwnd
	} else {
		t.cwnd += 0.01 / t.cwnd // minimal probing, per RFC 8312 §4.4 spirit
	}
}

// OnLoss implements cc.Controller.
func (t *Cubic) OnLoss(now time.Duration, loss cc.LossEvent) {
	if t.inRecovery {
		return
	}
	t.inRecovery = true
	t.recoverSeq = t.lastSent
	t.wMax = t.cwnd
	t.cwnd *= cubicBeta
	if t.cwnd < 2 {
		t.cwnd = 2
	}
	t.ssthresh = t.cwnd
	t.haveEpoch = false
}

// OnTimeout implements cc.Controller.
func (t *Cubic) OnTimeout(now time.Duration) {
	t.wMax = t.cwnd
	t.ssthresh = math.Max(2, t.cwnd*cubicBeta)
	t.cwnd = 1
	t.haveEpoch = false
	t.inRecovery = false
}

// TickInterval implements cc.Controller (ack-clocked).
func (t *Cubic) TickInterval() time.Duration { return 0 }

// Tick implements cc.Controller.
func (t *Cubic) Tick(time.Duration) {}

// Allowance implements cc.Controller.
func (t *Cubic) Allowance(_ time.Duration, inflight int) int {
	return int(t.cwnd) - inflight
}

// SendTag implements cc.Controller.
func (t *Cubic) SendTag() int { return int(t.cwnd) }

// OnSend implements cc.Controller.
func (t *Cubic) OnSend(_ time.Duration, seq int64, _ int) {
	if seq > t.lastSent {
		t.lastSent = seq
	}
}
