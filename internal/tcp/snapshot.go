package tcp

import "repro/internal/snap"

// Checkpoint support (DESIGN.md §15): each controller serializes exactly its
// mutable fields, in declaration order. Parameters are compile-time constants
// here, so there is nothing to cross-check against the rebuild.

// Snapshot implements snap.Snapshotter.
func (t *NewReno) Snapshot(e *snap.Encoder) {
	e.Tag("newreno")
	e.F64(t.cwnd)
	e.F64(t.ssthresh)
	e.I64(t.lastSent)
	e.I64(t.recoverSeq)
	e.Bool(t.inRecovery)
}

// Restore implements snap.Snapshotter.
func (t *NewReno) Restore(d *snap.Decoder) {
	d.Expect("newreno")
	t.cwnd = d.F64()
	t.ssthresh = d.F64()
	t.lastSent = d.I64()
	t.recoverSeq = d.I64()
	t.inRecovery = d.Bool()
}

// Snapshot implements snap.Snapshotter.
func (t *Cubic) Snapshot(e *snap.Encoder) {
	e.Tag("cubic")
	e.F64(t.cwnd)
	e.F64(t.ssthresh)
	e.F64(t.wMax)
	e.F64(t.k)
	e.Dur(t.epochStart)
	e.Bool(t.haveEpoch)
	e.Dur(t.srtt)
	e.I64(t.lastSent)
	e.I64(t.recoverSeq)
	e.Bool(t.inRecovery)
}

// Restore implements snap.Snapshotter.
func (t *Cubic) Restore(d *snap.Decoder) {
	d.Expect("cubic")
	t.cwnd = d.F64()
	t.ssthresh = d.F64()
	t.wMax = d.F64()
	t.k = d.F64()
	t.epochStart = d.Dur()
	t.haveEpoch = d.Bool()
	t.srtt = d.Dur()
	t.lastSent = d.I64()
	t.recoverSeq = d.I64()
	t.inRecovery = d.Bool()
}

// Snapshot implements snap.Snapshotter.
func (t *Vegas) Snapshot(e *snap.Encoder) {
	e.Tag("vegas")
	e.F64(t.cwnd)
	e.F64(t.ssthresh)
	e.Dur(t.baseRTT)
	e.Dur(t.rttSum)
	e.Int(t.rttCnt)
	e.I64(t.nextAdj)
	e.I64(t.lastSent)
	e.I64(t.recoverSeq)
	e.Bool(t.inRecovery)
	e.Bool(t.slowStart)
	e.Bool(t.ssToggle)
}

// Restore implements snap.Snapshotter.
func (t *Vegas) Restore(d *snap.Decoder) {
	d.Expect("vegas")
	t.cwnd = d.F64()
	t.ssthresh = d.F64()
	t.baseRTT = d.Dur()
	t.rttSum = d.Dur()
	t.rttCnt = d.Int()
	t.nextAdj = d.I64()
	t.lastSent = d.I64()
	t.recoverSeq = d.I64()
	t.inRecovery = d.Bool()
	t.slowStart = d.Bool()
	t.ssToggle = d.Bool()
}
