package tcp

import (
	"math"
	"testing"
	"time"

	"repro/internal/cc"
	"repro/internal/netsim"
)

func ackAt(seq int64, rtt time.Duration) cc.AckSample {
	return cc.AckSample{Seq: seq, RTT: rtt}
}

func TestNewRenoSlowStartDoubles(t *testing.T) {
	c := NewNewReno()
	w0 := c.Cwnd()
	// Acking a full window in slow start adds one per ack.
	for i := int64(0); i < 10; i++ {
		c.OnSend(0, i, 0)
		c.OnAck(0, ackAt(i, 50*time.Millisecond))
	}
	if got := c.Cwnd(); got != w0+10 {
		t.Fatalf("cwnd = %v, want %v", got, w0+10)
	}
	if !c.InSlowStart() {
		t.Fatal("should be in slow start with huge ssthresh")
	}
}

func TestNewRenoCongestionAvoidanceLinear(t *testing.T) {
	c := NewNewReno()
	c.cwnd = 10
	c.ssthresh = 5
	// One window of acks adds ~1 packet.
	for i := int64(0); i < 10; i++ {
		c.OnSend(0, i, 0)
		c.OnAck(0, ackAt(i, 50*time.Millisecond))
	}
	if got := c.Cwnd(); math.Abs(got-11) > 0.2 {
		t.Fatalf("cwnd after one CA window = %v, want ≈11", got)
	}
}

func TestNewRenoLossHalves(t *testing.T) {
	c := NewNewReno()
	c.cwnd = 20
	c.ssthresh = 5
	c.OnSend(0, 100, 0)
	c.OnLoss(0, cc.LossEvent{Seq: 50})
	if got := c.Cwnd(); got != 10 {
		t.Fatalf("cwnd after loss = %v, want 10", got)
	}
	// Second loss in the same window: no further reduction.
	c.OnLoss(0, cc.LossEvent{Seq: 51})
	if got := c.Cwnd(); got != 10 {
		t.Fatalf("cwnd after in-window loss = %v, want 10", got)
	}
	// No growth while recovering.
	c.OnAck(0, ackAt(60, 50*time.Millisecond))
	if c.Cwnd() != 10 {
		t.Fatal("grew during recovery")
	}
	// Ack beyond the recovery point resumes growth.
	c.OnAck(0, ackAt(101, 50*time.Millisecond))
	if c.Cwnd() <= 10 {
		t.Fatal("did not resume growth after recovery")
	}
}

func TestNewRenoTimeout(t *testing.T) {
	c := NewNewReno()
	c.cwnd = 16
	c.OnTimeout(0)
	if c.Cwnd() != 1 {
		t.Fatalf("cwnd after RTO = %v, want 1", c.Cwnd())
	}
	if c.ssthresh != 8 {
		t.Fatalf("ssthresh = %v, want 8", c.ssthresh)
	}
	if !c.InSlowStart() {
		t.Fatal("should slow-start after RTO")
	}
}

func TestNewRenoAllowance(t *testing.T) {
	c := NewNewReno()
	c.cwnd = 7
	if got := c.Allowance(0, 3); got != 4 {
		t.Fatalf("allowance = %d, want 4", got)
	}
	if got := c.Allowance(0, 10); got >= 0 {
		// Negative allowance is fine (host clamps); just ensure no panic.
		t.Logf("allowance = %d", got)
	}
}

func TestCubicSlowStartThenCubicGrowth(t *testing.T) {
	c := NewCubic()
	c.ssthresh = 10
	now := time.Duration(0)
	seq := int64(0)
	for c.Cwnd() < 10 {
		c.OnSend(now, seq, 0)
		c.OnAck(now, ackAt(seq, 40*time.Millisecond))
		seq++
		now += 4 * time.Millisecond
	}
	// In congestion avoidance now; growth should continue over time.
	w := c.Cwnd()
	for i := 0; i < 500; i++ {
		c.OnSend(now, seq, 0)
		c.OnAck(now, ackAt(seq, 40*time.Millisecond))
		seq++
		now += 4 * time.Millisecond
	}
	if c.Cwnd() <= w {
		t.Fatalf("cubic did not grow: %v -> %v", w, c.Cwnd())
	}
}

func TestCubicLossBeta(t *testing.T) {
	c := NewCubic()
	c.cwnd = 100
	c.ssthresh = 10
	c.OnSend(0, 1000, 0)
	c.OnLoss(0, cc.LossEvent{Seq: 500})
	if got := c.Cwnd(); math.Abs(got-70) > 0.5 {
		t.Fatalf("cwnd after loss = %v, want 70 (β=0.7)", got)
	}
	if c.wMax != 100 {
		t.Fatalf("wMax = %v, want 100", c.wMax)
	}
}

func TestCubicConcaveThenConvex(t *testing.T) {
	// After a loss, growth is fast initially (concave), slows near wMax,
	// then accelerates past it (convex). Use a large wMax so the cubic term
	// dominates the TCP-friendly bound throughout.
	c := NewCubic()
	c.cwnd = 1000
	c.ssthresh = 10
	c.srtt = 40 * time.Millisecond
	c.OnSend(0, 0, 0)
	c.OnLoss(0, cc.LossEvent{})
	now := time.Duration(0)
	seq := int64(1)
	c.OnAck(now, ackAt(seq, 40*time.Millisecond)) // exits recovery (seq >= lastSent)

	var atK float64
	var kDur time.Duration
	for i := 0; ; i++ {
		c.OnSend(now, seq, 0)
		c.OnAck(now, ackAt(seq, 40*time.Millisecond))
		seq++
		now += 2 * time.Millisecond
		if i == 0 {
			// k is set on the first congestion-avoidance ack.
			kDur = time.Duration(c.k * float64(time.Second))
		}
		if atK == 0 && now >= kDur {
			atK = c.Cwnd()
		}
		if now >= kDur+5*time.Second {
			break
		}
	}
	// At t=K the window should be back near wMax = 1000.
	if math.Abs(atK-1000) > 100 {
		t.Fatalf("cwnd at K = %v, want ≈1000 (K=%v)", atK, kDur)
	}
	if c.Cwnd() <= atK {
		t.Fatal("no convex growth past wMax")
	}
}

func TestCubicTimeout(t *testing.T) {
	c := NewCubic()
	c.cwnd = 50
	c.OnTimeout(0)
	if c.Cwnd() != 1 {
		t.Fatalf("cwnd = %v, want 1", c.Cwnd())
	}
}

func TestVegasHoldsSmallBacklog(t *testing.T) {
	// Closed loop on the simulator: Vegas should keep delay near base RTT
	// (small queue) on a stable link.
	sim := netsim.NewSim()
	v := NewVegas()
	d := netsim.NewDumbbell(sim, func(dst netsim.Receiver) netsim.Link {
		return netsim.NewFixedLink(sim, netsim.NewDropTail(1_000_000), 10, 10*time.Millisecond, dst, 1)
	}, 1400, []netsim.FlowSpec{{Ctrl: v, AckDelay: 10 * time.Millisecond}})
	d.Run(20 * time.Second)
	m := d.Metrics[0]
	if tput := m.MeanMbps(20 * time.Second); tput < 5 {
		t.Errorf("vegas throughput = %.2f Mbps, want >= 5", tput)
	}
	// α..β backlog of 2-4 packets ≈ 2-4 × 1.12 ms of queueing.
	if p95 := m.Delay.Percentile(95); p95 > 0.08 {
		t.Errorf("vegas p95 delay = %.0f ms; queue not kept small", p95*1000)
	}
}

func TestVegasDecreasesOnRisingRTT(t *testing.T) {
	v := NewVegas()
	v.slowStart = false
	v.cwnd = 20
	v.baseRTT = 20 * time.Millisecond
	seq := int64(0)
	// Several RTT rounds at high RTT → diff = 20*(60-20)/60 ≈ 13 > β.
	w0 := v.Cwnd()
	for round := 0; round < 5; round++ {
		for i := 0; i < 5; i++ {
			v.OnSend(0, seq, 0)
			v.OnAck(0, ackAt(seq, 60*time.Millisecond))
			seq++
		}
	}
	if v.Cwnd() >= w0 {
		t.Fatalf("vegas did not back off: %v -> %v", w0, v.Cwnd())
	}
}

func TestVegasIncreasesWhenBelowAlpha(t *testing.T) {
	v := NewVegas()
	v.slowStart = false
	v.cwnd = 10
	v.baseRTT = 50 * time.Millisecond
	seq := int64(0)
	w0 := v.Cwnd()
	for round := 0; round < 5; round++ {
		for i := 0; i < 5; i++ {
			v.OnSend(0, seq, 0)
			// RTT barely above base: diff ≈ 10*(52-50)/52 ≈ 0.4 < α.
			v.OnAck(0, ackAt(seq, 52*time.Millisecond))
			seq++
		}
	}
	if v.Cwnd() <= w0 {
		t.Fatalf("vegas did not grow: %v -> %v", w0, v.Cwnd())
	}
}

func TestVegasLossHalves(t *testing.T) {
	v := NewVegas()
	v.cwnd = 30
	v.OnSend(0, 5, 0)
	v.OnLoss(0, cc.LossEvent{})
	if v.Cwnd() != 15 {
		t.Fatalf("cwnd = %v, want 15", v.Cwnd())
	}
}

func TestControllersNeverPanicOnColdEvents(t *testing.T) {
	// Events in odd orders must not panic (host may deliver a timeout
	// before any ack, etc.).
	for _, ctrl := range []cc.Controller{NewNewReno(), NewCubic(), NewVegas()} {
		ctrl.OnTimeout(0)
		ctrl.OnLoss(0, cc.LossEvent{})
		ctrl.OnAck(0, ackAt(0, time.Millisecond))
		ctrl.Tick(0)
		if ctrl.Allowance(0, 0) < 0 {
			t.Errorf("%s: negative allowance with zero inflight", ctrl.Name())
		}
		if ctrl.SendTag() < 0 {
			t.Errorf("%s: negative send tag", ctrl.Name())
		}
	}
}

// The headline qualitative contrast: on a deep-buffered link, Cubic fills
// the queue (bufferbloat) while Vegas does not. This is the §2/§3 backdrop
// for the whole paper.
func TestCubicBufferbloatVsVegas(t *testing.T) {
	run := func(ctrl cc.Controller) *netsim.FlowMetrics {
		sim := netsim.NewSim()
		d := netsim.NewDumbbell(sim, func(dst netsim.Receiver) netsim.Link {
			return netsim.NewFixedLink(sim, netsim.NewDropTail(1_500_000), 8, 15*time.Millisecond, dst, 1)
		}, 1400, []netsim.FlowSpec{{Ctrl: ctrl, AckDelay: 15 * time.Millisecond}})
		d.Run(30 * time.Second)
		return d.Metrics[0]
	}
	cubic := run(NewCubic())
	vegas := run(NewVegas())
	if cubic.MeanMbps(30*time.Second) < 6 {
		t.Errorf("cubic throughput = %.2f, want near link rate", cubic.MeanMbps(30*time.Second))
	}
	if cubic.Delay.Median() < 3*vegas.Delay.Median() {
		t.Errorf("bufferbloat contrast missing: cubic median %.0f ms vs vegas %.0f ms",
			cubic.Delay.Median()*1000, vegas.Delay.Median()*1000)
	}
}
