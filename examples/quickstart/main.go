// Quickstart: run one Verus flow over a synthetic 3G cellular channel in the
// discrete-event simulator and print what the paper's evaluation measures —
// throughput and per-packet delay.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"time"

	"repro/internal/cellular"
	"repro/internal/netsim"
	"repro/internal/verus"
)

func main() {
	// 1. A cellular channel: 8 Mbps mean, campus-stationary fading.
	channel := cellular.NewModel(cellular.Config{
		Tech:     cellular.Tech3G,
		Scenario: cellular.CampusStationary,
		MeanMbps: 8,
		Seed:     1,
	})
	tr := channel.Trace(30 * time.Second)
	fmt.Printf("channel: %.2f Mbps mean over %v\n", tr.MeanMbps(), tr.Duration)

	// 2. A Verus sender (paper defaults, R = 2) on a dumbbell through that
	// channel with 10 ms propagation each way.
	sim := netsim.NewSim()
	v := verus.New(verus.DefaultConfig())
	d := netsim.NewDumbbell(sim, func(dst netsim.Receiver) netsim.Link {
		return netsim.NewTraceLink(sim, netsim.NewDropTail(2_000_000), tr, 10*time.Millisecond, dst, false, 2)
	}, 1400, []netsim.FlowSpec{{Ctrl: v, AckDelay: 10 * time.Millisecond}})

	// 3. Run and report.
	d.Run(30 * time.Second)
	m := d.Metrics[0]
	fmt.Printf("verus:   %.2f Mbps, delay mean %.0f ms / p95 %.0f ms (%d losses, %d timeouts)\n",
		m.MeanMbps(30*time.Second),
		m.Delay.Mean()*1000, m.Delay.Percentile(95)*1000,
		m.LossDetected, m.Timeouts)

	epochs, losses, timeouts, refits := v.Stats()
	fmt.Printf("protocol: %d epochs, %d loss episodes, %d timeouts, %d profile refits\n",
		epochs, losses, timeouts, refits)
}
