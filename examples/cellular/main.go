// Cellular comparison: the paper's headline result on your own machine.
// Runs Verus, TCP Cubic, TCP Vegas, and Sprout over identical bufferbloated
// cellular channels across mobility scenarios and prints the
// throughput-vs-delay table (cf. paper Fig. 8/10).
//
//	go run ./examples/cellular
package main

import (
	"fmt"
	"time"

	"repro/internal/cellular"
	"repro/internal/experiments"
)

func main() {
	scenarios := []cellular.Scenario{
		cellular.CampusStationary,
		cellular.CityDriving,
	}
	protocols := []experiments.Maker{
		experiments.VerusMaker(2),
		experiments.VerusMaker(6),
		experiments.CubicMaker(),
		experiments.VegasMaker(),
		experiments.SproutMaker(),
	}
	const dur = 45 * time.Second

	for _, sc := range scenarios {
		fmt.Printf("== %s (3G, 12 Mbps cell, deep carrier buffer) ==\n", sc.Name)
		fmt.Printf("%-14s %12s %16s %16s\n", "protocol", "tput (Mbps)", "delay mean (ms)", "delay p95 (ms)")
		for pi, mk := range protocols {
			model := cellular.NewModel(cellular.Config{
				Tech: cellular.Tech3G, Scenario: sc, MeanMbps: 12, Seed: int64(100 + pi),
			})
			tr := model.Trace(dur)
			res := experiments.TraceRun{
				Trace: tr, Maker: mk, Flows: 1, Duration: dur,
				QueueBytes: 4_000_000, // carrier-style over-dimensioned buffer
				Seed:       int64(pi),
			}.Run()
			f := res.Flows[0]
			fmt.Printf("%-14s %12.2f %16.0f %16.0f\n", mk.Name, f.Mbps, f.DelayMean*1000, f.DelayP95*1000)
		}
		fmt.Println()
	}
	fmt.Println("Expected shape (paper): Verus ≈ Cubic throughput at a small fraction")
	fmt.Println("of its delay; Vegas/Sprout low delay with less throughput.")
}
