// UDP loopback: the real-network path. Starts the UDP receiver and a Verus
// sender on localhost — the same code path as verus-server/verus-client —
// and prints goodput and RTTs after a short transfer. The exact protocol
// state machine used here also runs inside the simulator.
//
//	go run ./examples/udploopback
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/transport"
	"repro/internal/verus"
)

func main() {
	r, err := transport.NewReceiver("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer r.Close()
	fmt.Printf("receiver on %s\n", r.Addr())

	v := verus.New(verus.DefaultConfig())
	s, err := transport.Dial(r.Addr().String(), v, transport.DefaultSenderConfig())
	if err != nil {
		log.Fatal(err)
	}

	const dur = 3 * time.Second
	fmt.Printf("sending with %s for %v...\n", v.Name(), dur)
	time.Sleep(dur)
	if err := s.Close(); err != nil {
		log.Fatal(err)
	}

	ss := s.Stats()
	rs := r.Stats()
	fmt.Printf("sender:   %d sent, %d acked, %d retransmits, %d losses\n",
		ss.Sent, ss.Acked, ss.Retransmits, ss.Losses)
	fmt.Printf("rtt:      p50 %.2f ms, p95 %.2f ms (n=%d)\n",
		ss.RTT.Median()*1000, ss.RTT.Percentile(95)*1000, ss.RTT.N())
	fmt.Printf("receiver: %d packets (%d unique), %.2f Mbps goodput\n",
		rs.Packets, rs.UniquePackets, rs.MeanMbps())
}
