// Competing flows: N Verus flows share one cell; prints per-flow shares and
// Jain's fairness index over 1-second windows (cf. paper Table 1 and
// Fig. 12).
//
//	go run ./examples/competing
package main

import (
	"fmt"
	"time"

	"repro/internal/cellular"
	"repro/internal/experiments"
	"repro/internal/stats"
)

func main() {
	const (
		flows = 5
		dur   = 60 * time.Second
	)
	model := cellular.NewModel(cellular.Config{
		Tech:     cellular.Tech3G,
		Scenario: cellular.CityStationary,
		MeanMbps: 20,
		Seed:     7,
	})
	tr := model.Trace(dur)
	fmt.Printf("cell: %.1f Mbps mean; %d Verus flows (R=2) behind the paper's RED queue\n\n",
		tr.MeanMbps(), flows)

	res := experiments.TraceRun{
		Trace: tr, Maker: experiments.VerusMaker(2), Flows: flows,
		Duration: dur, UseRED: true, Seed: 7,
	}.Run()

	var total float64
	for _, f := range res.Flows {
		fmt.Printf("flow %d: %5.2f Mbps @ %4.0f ms mean delay\n", f.Flow, f.Mbps, f.DelayMean*1000)
		total += f.Mbps
	}
	jain := stats.WindowedJain(res.PerSecondMbps)
	fmt.Printf("\naggregate: %.2f Mbps (%.0f%% of cell), Jain fairness %.1f%%\n",
		total, total/tr.MeanMbps()*100, jain*100)
}
