package main

// SARIF 2.1.0 output for code-scanning upload. Only the subset GitHub's
// code-scanning ingestion reads is emitted: tool.driver with one
// reportingDescriptor per analyzer (plus the "directive" pseudo-analyzer
// that owns malformed-suppression diagnostics), and one result per
// diagnostic with a physical location.

import (
	"encoding/json"
	"go/token"
	"io"
	"path/filepath"

	"repro/internal/analysis"
)

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name  string      `json:"name"`
	Rules []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string    `json:"id"`
	ShortDescription sarifText `json:"shortDescription"`
}

type sarifText struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifText       `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn"`
}

// WriteSARIF serializes the diagnostics as one SARIF run. Results keep
// the deterministic sort the text output uses, so the report is
// byte-stable for identical inputs.
func WriteSARIF(w io.Writer, fset *token.FileSet, analyzers []*analysis.Analyzer, diags []analysis.Diagnostic) error {
	rules := make([]sarifRule, 0, len(analyzers)+1)
	for _, a := range analyzers {
		rules = append(rules, sarifRule{ID: a.Name, ShortDescription: sarifText{Text: a.Doc}})
	}
	rules = append(rules, sarifRule{
		ID:               "directive",
		ShortDescription: sarifText{Text: "//lint: suppression directives must be well-formed"},
	})
	results := make([]sarifResult, 0, len(diags))
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		results = append(results, sarifResult{
			RuleID:  d.Analyzer,
			Level:   "error",
			Message: sarifText{Text: d.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysical{
					ArtifactLocation: sarifArtifact{URI: filepath.ToSlash(pos.Filename)},
					Region:           sarifRegion{StartLine: pos.Line, StartColumn: pos.Column},
				},
			}},
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "verus-lint", Rules: rules}},
			Results: results,
		}},
	})
}
