// Command verus-lint statically enforces the repository's determinism,
// purity, and ownership contracts (DESIGN.md §9, §14). It runs the
// internal/analysis suite — crossshard, floatorder, maprange,
// nofaultsinprod, noglobalrand, nowalltime, poolleak, poolrelease,
// unusedsuppress — over the given package patterns and exits non-zero on
// any violation, including malformed or stale //lint: suppression
// directives (reported by the "directive" pseudo-analyzer). The list
// above mirrors all.Analyzers(); TestDocCommentListsAllAnalyzers keeps
// it honest.
//
// Ordinary analyzers run concurrently, one goroutine per analyzer over a
// single shared package load; AfterSuite analyzers (unusedsuppress) run
// once the rest have finished, because they read the suppression hits
// the others recorded. Output order is deterministic regardless.
//
// Usage:
//
//	verus-lint [-C dir] [-sarif file] [-timing] [packages...]
//
// With no patterns it lints ./.... -sarif writes a SARIF 2.1.0 report to
// the given file ("-" for stdout) for code-scanning upload; -timing
// prints per-analyzer wall time to stderr. Exit status: 0 clean, 1
// violations found, 2 operational error (unloadable packages, bad flags,
// malformed //lint: directives — a broken suppression means the run's
// verdict cannot be trusted, so it ranks as a configuration error).
package main

import (
	"flag"
	"fmt"
	"go/token"
	"io"
	"os"
	"sync"
	"time"

	"repro/internal/analysis"
	"repro/internal/analysis/all"
	"repro/internal/analysis/load"
)

func main() {
	dir := flag.String("C", ".", "directory to resolve package patterns in")
	sarifPath := flag.String("sarif", "", "write a SARIF 2.1.0 report to this file (\"-\" for stdout)")
	timing := flag.Bool("timing", false, "print per-analyzer wall time to stderr")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: verus-lint [-C dir] [-sarif file] [-timing] [packages...]\n\n")
		fmt.Fprintf(flag.CommandLine.Output(), "Analyzers:\n")
		for _, a := range all.Analyzers() {
			fmt.Fprintf(flag.CommandLine.Output(), "  %-14s %s\n", a.Name, a.Doc)
		}
		flag.PrintDefaults()
	}
	flag.Parse()
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	res, err := Run(*dir, patterns, all.Analyzers())
	if err != nil {
		fmt.Fprintf(os.Stderr, "verus-lint: %v\n", err)
		os.Exit(2)
	}
	for _, d := range res.Diags {
		fmt.Fprintf(os.Stdout, "%s: [%s] %s\n", res.Fset.Position(d.Pos), d.Analyzer, d.Message)
	}
	if *timing {
		for _, tm := range res.Timing {
			fmt.Fprintf(os.Stderr, "verus-lint: timing %-16s %7.1fms\n", tm.Name, float64(tm.Elapsed)/float64(time.Millisecond))
		}
	}
	if *sarifPath != "" {
		if err := emitSARIF(*sarifPath, res); err != nil {
			fmt.Fprintf(os.Stderr, "verus-lint: %v\n", err)
			os.Exit(2)
		}
	}
	if len(res.Diags) > 0 {
		fmt.Fprintf(os.Stderr, "verus-lint: %d violation(s)\n", len(res.Diags))
		os.Exit(exitCode(res.Diags))
	}
}

// exitCode maps a non-empty diagnostic set to the binary's exit status.
// Ordinary violations exit 1. Diagnostics from the "directive"
// pseudo-analyzer mean a //lint: suppression is malformed — the
// machinery that decides what the suite may ignore is itself broken —
// so they rank with the other operational failures at exit 2.
func exitCode(diags []analysis.Diagnostic) int {
	for _, d := range diags {
		if d.Analyzer == "directive" {
			return 2
		}
	}
	return 1
}

func emitSARIF(path string, res *Result) error {
	w := io.Writer(os.Stdout)
	if path != "-" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	return WriteSARIF(w, res.Fset, all.Analyzers(), res.Diags)
}

// AnalyzerTiming is one analyzer's wall time across every package.
type AnalyzerTiming struct {
	Name    string
	Elapsed time.Duration
}

// Result is one lint invocation's outcome: diagnostics in deterministic
// order plus per-analyzer timing in suite order.
type Result struct {
	Fset   *token.FileSet
	Diags  []analysis.Diagnostic
	Timing []AnalyzerTiming
}

// Lint runs the suite and prints diagnostics to w in deterministic
// order, returning the count. It is the single-writer convenience the
// tests (and older callers) use; Run is the full-fat entry point.
func Lint(w io.Writer, dir string, patterns []string, analyzers []*analysis.Analyzer) (int, error) {
	res, err := Run(dir, patterns, analyzers)
	if err != nil {
		return 0, err
	}
	for _, d := range res.Diags {
		fmt.Fprintf(w, "%s: [%s] %s\n", res.Fset.Position(d.Pos), d.Analyzer, d.Message)
	}
	return len(res.Diags), nil
}

// Run loads the patterns once, runs every ordinary analyzer in its own
// goroutine over the shared load, then runs AfterSuite analyzers against
// the accumulated suppression state, and finally validates directives.
// Diagnostics are merged and sorted, so the output is identical to a
// serial run.
func Run(dir string, patterns []string, analyzers []*analysis.Analyzer) (*Result, error) {
	pkgs, fset, err := load.Load(dir, patterns...)
	if err != nil {
		return nil, err
	}
	// One shared directive index per package: every analyzer's pass over
	// pkgs[i] records suppression hits in indexes[i], which is what lets
	// unusedsuppress see the whole suite's usage afterwards.
	indexes := make([]*analysis.Index, len(pkgs))
	for i, pkg := range pkgs {
		indexes[i] = analysis.NewIndex(fset, pkg.Files)
	}

	perAnalyzer := make([][]analysis.Diagnostic, len(analyzers))
	timing := make([]time.Duration, len(analyzers))
	errs := make([]error, len(analyzers))
	runOne := func(i int, a *analysis.Analyzer) {
		start := time.Now()
		for pi, pkg := range pkgs {
			pass := analysis.NewPassShared(a, fset, pkg.Files, pkg.Types, pkg.Info, indexes[pi])
			if err := a.Run(pass); err != nil {
				errs[i] = fmt.Errorf("%s on %s: %v", a.Name, pkg.Path, err)
				return
			}
			perAnalyzer[i] = append(perAnalyzer[i], pass.Diagnostics()...)
		}
		timing[i] = time.Since(start)
	}

	var wg sync.WaitGroup
	for i, a := range analyzers {
		if a.AfterSuite {
			continue
		}
		wg.Add(1)
		go func(i int, a *analysis.Analyzer) {
			defer wg.Done()
			runOne(i, a)
		}(i, a)
	}
	wg.Wait()
	for i, a := range analyzers {
		if a.AfterSuite {
			runOne(i, a)
		}
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	var diags []analysis.Diagnostic
	for _, d := range perAnalyzer {
		diags = append(diags, d...)
	}
	for _, pkg := range pkgs {
		diags = append(diags, analysis.CheckDirectives(fset, pkg.Files, analyzers)...)
	}
	analysis.SortDiagnostics(fset, diags)
	res := &Result{Fset: fset, Diags: diags}
	for i, a := range analyzers {
		res.Timing = append(res.Timing, AnalyzerTiming{Name: a.Name, Elapsed: timing[i]})
	}
	return res, nil
}
