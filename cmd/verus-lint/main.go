// Command verus-lint statically enforces the repository's determinism and
// purity contracts (DESIGN.md §9). It runs the internal/analysis suite —
// nowalltime, noglobalrand, maprange, floatorder — over the given package
// patterns and exits non-zero on any violation, including malformed
// //lint: suppression directives.
//
// Usage:
//
//	verus-lint [-C dir] [packages...]
//
// With no patterns it lints ./.... Exit status: 0 clean, 1 violations
// found, 2 operational error (unloadable packages, bad flags).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/analysis"
	"repro/internal/analysis/all"
	"repro/internal/analysis/load"
)

func main() {
	dir := flag.String("C", ".", "directory to resolve package patterns in")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: verus-lint [-C dir] [packages...]\n\n")
		fmt.Fprintf(flag.CommandLine.Output(), "Analyzers:\n")
		for _, a := range all.Analyzers() {
			fmt.Fprintf(flag.CommandLine.Output(), "  %-14s %s\n", a.Name, a.Doc)
		}
		flag.PrintDefaults()
	}
	flag.Parse()
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	count, err := Lint(os.Stdout, *dir, patterns, all.Analyzers())
	if err != nil {
		fmt.Fprintf(os.Stderr, "verus-lint: %v\n", err)
		os.Exit(2)
	}
	if count > 0 {
		fmt.Fprintf(os.Stderr, "verus-lint: %d violation(s)\n", count)
		os.Exit(1)
	}
}

// Lint loads the patterns, runs every analyzer plus directive validation,
// prints diagnostics to w in deterministic order, and returns the count.
func Lint(w io.Writer, dir string, patterns []string, analyzers []*analysis.Analyzer) (int, error) {
	pkgs, fset, err := load.Load(dir, patterns...)
	if err != nil {
		return 0, err
	}
	var diags []analysis.Diagnostic
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := analysis.NewPass(a, fset, pkg.Files, pkg.Types, pkg.Info)
			if err := a.Run(pass); err != nil {
				return 0, fmt.Errorf("%s on %s: %v", a.Name, pkg.Path, err)
			}
			diags = append(diags, pass.Diagnostics()...)
		}
		diags = append(diags, analysis.CheckDirectives(fset, pkg.Files, analyzers)...)
	}
	analysis.SortDiagnostics(fset, diags)
	for _, d := range diags {
		fmt.Fprintf(w, "%s: [%s] %s\n", fset.Position(d.Pos), d.Analyzer, d.Message)
	}
	return len(diags), nil
}
