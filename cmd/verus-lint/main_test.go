package main

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/analysis/all"
)

// TestRepoIsLintClean is the acceptance smoke test: the full analyzer suite
// over the whole module must report nothing. Every suppression in the tree
// is therefore a reviewed //lint: directive with a justification.
func TestRepoIsLintClean(t *testing.T) {
	var out bytes.Buffer
	count, err := Lint(&out, "../..", []string{"./..."}, all.Analyzers())
	if err != nil {
		t.Fatalf("lint: %v", err)
	}
	if count != 0 {
		t.Fatalf("repo has %d lint violation(s):\n%s", count, out.String())
	}
}

// TestLintFlagsViolations proves the binary's failure path end-to-end: a
// scratch module with one wall-clock read in a simulation-named package
// must yield a non-zero diagnostic count.
func TestLintFlagsViolations(t *testing.T) {
	dir := t.TempDir()
	write := func(name, content string) {
		t.Helper()
		path := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("go.mod", "module scratch\n\ngo 1.22\n")
	write("netsim/clock.go", `package netsim

import "time"

func Now() time.Time { return time.Now() }
`)
	write("netsim/rand.go", `package netsim

import "math/rand"

func Draw() float64 { return rand.Float64() }
`)
	var out bytes.Buffer
	count, err := Lint(&out, dir, []string{"./..."}, all.Analyzers())
	if err != nil {
		t.Fatalf("lint: %v", err)
	}
	if count != 2 {
		t.Fatalf("count = %d, want 2 (nowalltime + noglobalrand); output:\n%s", count, out.String())
	}
	for _, wantSub := range []string{"[nowalltime]", "[noglobalrand]"} {
		if !bytes.Contains(out.Bytes(), []byte(wantSub)) {
			t.Errorf("output missing %s:\n%s", wantSub, out.String())
		}
	}
}

// TestLintErrorOnBadPattern pins the operational-error path (exit 2 in the
// binary): an unloadable pattern is an error, not a clean run.
func TestLintErrorOnBadPattern(t *testing.T) {
	var out bytes.Buffer
	if _, err := Lint(&out, "../..", []string{"./does-not-exist/..."}, all.Analyzers()); err == nil {
		t.Fatal("expected error for nonexistent package pattern")
	}
}
